module routetab

go 1.22
