# Tier-1 verification plus the race-detector and resilience smoke layers.
# `make verify` is the full pre-merge gate (referenced from ROADMAP.md).

GO ?= go

.PHONY: verify vet build test race smoke benchsmoke bench clean

verify: vet build test race smoke benchsmoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick deterministic fault-injection sweep; the full artefact is
# docs/resilience_n64.csv (see EXPERIMENTS.md E13).
smoke:
	$(GO) run ./cmd/routetab resilience -n 32 -seed 1 -pairs 40 \
		-pmax 0.1 -pstep 0.05 -schemes fulltable,fullinfo \
		-out $(or $(TMPDIR),/tmp)/resilience_smoke.csv

# One-iteration pass over every benchmarked path (BFS kernels, distance
# cache, E13 sweep); keeps the bench harness from rotting between releases.
benchsmoke:
	$(GO) run ./cmd/benchjson -quick -out $(or $(TMPDIR),/tmp)/bench_smoke.json

# Regenerates the checked-in PR 2 performance artefact (see EXPERIMENTS.md
# for the methodology; numbers are host-dependent).
bench:
	$(GO) run ./cmd/benchjson -out BENCH_pr2.json

clean:
	$(GO) clean ./...
