# Tier-1 verification plus the race-detector and resilience smoke layers.
# `make verify` is the full pre-merge gate (referenced from ROADMAP.md).

GO ?= go

.PHONY: verify lint vet build test race smoke benchsmoke loadsmoke wiresmoke chaos cluster crash bigsmoke bigcluster shardchaos bench loadbench chaosbench clusterbench crashbench wirebench bigbench bigclusterbench shardbench clean

verify: lint vet build test race smoke benchsmoke loadsmoke wiresmoke chaos cluster crash bigsmoke bigcluster shardchaos

# gofmt -l exits 0 even when files need formatting, so fail on any output.
# The second check is the WAL durability lint: on the journaling path a
# discarded Close or Sync error is a silent durability hole (the process
# keeps serving records the disk never accepted), so `_ = x.Close()` and
# bare `defer x.Close()` / `defer x.Sync()` are banned in the WAL sources.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; \
	fi
	@walfiles=$$(ls internal/cluster/wal.go internal/cluster/recovery.go \
		internal/cluster/walstore/*.go | grep -v _test); \
	if grep -nE '(_ *= *[A-Za-z0-9_.]+\.(Close|Sync|CloseWAL|SyncWAL)\(\)|defer +[A-Za-z0-9_.()]+\.(Close|Sync|CloseWAL|SyncWAL)\(\))' $$walfiles; then \
		echo "WAL path discards a Close/Sync error (see above)"; exit 1; \
	fi
	$(GO) run ./cmd/hotpathlint .
	$(GO) vet ./...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick deterministic fault-injection sweep; the full artefact is
# docs/resilience_n64.csv (see EXPERIMENTS.md E13).
smoke:
	$(GO) run ./cmd/routetab resilience -n 32 -seed 1 -pairs 40 \
		-pmax 0.1 -pstep 0.05 -schemes fulltable,fullinfo \
		-out $(or $(TMPDIR),/tmp)/resilience_smoke.csv

# One-iteration pass over every benchmarked path (BFS kernels, distance
# cache, E13 sweep, serving-layer load); keeps the bench harness from
# rotting between releases.
benchsmoke:
	$(GO) run ./cmd/benchjson -quick -sections bfs,cache,resilience,serve,chaos,cluster,wal,wire,big,bigcluster,shard \
		-out $(or $(TMPDIR),/tmp)/bench_smoke.json

# Seconds-scale serving smoke through routetabd's loadgen mode: fixed seed,
# tiny graph, two mid-load hot-swaps; exits non-zero on any incorrect,
# rejected, or errored lookup, or zero throughput.
loadsmoke:
	$(GO) run ./cmd/routetabd -loadgen -n 32 -seed 1 -lookups 20000 \
		-workers 2 -swaps 2

# Seconds-scale mixed-protocol smoke: JSON-HTTP and RTBIN1 binary-TCP clients
# race the same engine through real loopback listeners while snapshots swap
# mid-load; exits non-zero on any incorrect or errored answer on either wire,
# or if either protocol missed the swaps.
wiresmoke:
	$(GO) run ./cmd/routetabd -wire-chaos -n 24 -seed 1 -lookups 10000 \
		-workers 2 -swaps 2

# Seconds-scale seeded chaos gate: stalls, drops, churn bursts, and a
# kill+restore cycle on a small graph; exits non-zero on any incorrect
# answer, out-of-budget detour, non-identical restore, or broken
# availability budget. The full artefact is docs/chaos_n256.csv (E15).
chaos:
	$(GO) run ./cmd/routetabd -chaos -n 48 -seed 1 -lookups 60000 \
		-workers 4 -chaos-stalls 2 -chaos-drops 2 -chaos-bursts 5 -chaos-kills 1

# Seconds-scale replicated chaos gate: a primary + two replicas on a small
# graph surviving replica partitions, a WAL corruption, a WAL truncation,
# and a primary kill + promotion; exits non-zero on any incorrect answer,
# sub-99% availability, or tables that are not byte-identical at quiesce.
# The full artefact is docs/cluster_n256.csv (E16).
cluster:
	$(GO) run ./cmd/routetabd -cluster-chaos -n 32 -seed 1 -replicas 2 \
		-lookups 40000 -workers 4

# Deterministic crash-recovery matrix (DESIGN.md §13, EXPERIMENTS.md E17):
# every byte boundary of a multi-segment WAL schedule, and every record
# boundary — clean and torn mid-frame — of an engine churn schedule, must
# recover to the exact durable prefix under the original epoch with a
# byte-identical (digest-equal) table; exits non-zero on any violated
# crash point.
crash:
	$(GO) run ./cmd/routetabd -crash -n 24 -seed 5

# Seconds-scale large-graph gate: builds an n=4096 tables-tier landmark
# snapshot over a sparse avg-degree-8 topology — sixteen times past the old
# n=256 ceiling, with no all-pairs matrix anywhere — and serves 10k lookups
# with connectivity-safe hot swaps, every answer eligible for spot grading
# against on-demand BFS ground truth; exits non-zero on any stretch > 3,
# unreachable next hop, or a snapshot that is not o(n²).
bigsmoke:
	$(GO) run ./cmd/routetabd -bigsmoke -n 4096 -seed 1 -lookups 10000 \
		-workers 4 -swaps 2

# Seconds-scale large-graph cluster gate: a three-member tables-tier landmark
# cluster on an n=4096 sparse topology surviving replica partitions, a WAL
# corruption on the wire, a truncation under lag, and a primary kill +
# promotion. Replicas replay edge diffs through full landmark rebuilds and
# verify the scheme-table CRC on every record; exits non-zero on any
# spot-graded stretch-3 violation, blown availability budget, failed
# promotion, or scheme tables that are not byte-identical at quiesce. The
# full artefact is docs/bigcluster_n4096.csv (E20).
bigcluster:
	$(GO) run ./cmd/routetabd -bigcluster -n 4096 -seed 1 -replicas 2 \
		-lookups 20000 -workers 4

# Seconds-scale partitioned-cluster gate: the n=4096 source keyspace split
# across two shard groups (each a tables-tier primary/replica pair) behind
# the scatter-gather front, surviving a live shard split racing churn,
# per-group replica partitions, a wire corruption, and a shard-primary kill +
# in-group promotion. Every sampled answer is graded against BFS ground
# truth and full cross-shard routes are walked at quiesce; exits non-zero on
# one incorrect answer, a stretch-3 violation, a shard below 99%
# availability, or non-converged digests. The full artefact is
# docs/shard_n4096.csv (E21).
shardchaos:
	$(GO) run ./cmd/routetabd -shard-chaos -n 4096 -seed 1 -shard-groups 2 \
		-replicas 1 -lookups 20000 -workers 4

# Regenerates the checked-in PR 2 performance artefact (see EXPERIMENTS.md
# for the methodology; numbers are host-dependent).
bench:
	$(GO) run ./cmd/benchjson -sections bfs,cache,resilience \
		-artefact BENCH_pr2 -out BENCH_pr2.json

# Regenerates the PR 3 serving-layer artefact (EXPERIMENTS.md E14): one
# million validated lookups per scheme on G(256,1/2) with ten snapshot
# hot-swaps mid-load, for fulltable and compact.
loadbench:
	$(GO) run ./cmd/benchjson -sections serve \
		-artefact BENCH_pr3 -out BENCH_pr3.json

# Regenerates the PR 4 chaos artefact (EXPERIMENTS.md E15): one million
# graded lookups per scheme on G(256,1/2) under seeded churn bursts, shard
# stalls, batch drops, and kill+restore cycles.
chaosbench:
	$(GO) run ./cmd/benchjson -sections chaos \
		-artefact BENCH_pr4 -out BENCH_pr4.json

# Regenerates the PR 5 cluster artefact (EXPERIMENTS.md E16): a three-member
# G(256,1/2) cluster per scheme under client-side failover, surviving
# replica partitions, WAL corruption/truncation, and a primary kill +
# promotion — recording per-member QPS, failover latency, and replay lag.
clusterbench:
	$(GO) run ./cmd/benchjson -sections cluster \
		-artefact BENCH_pr5 -out BENCH_pr5.json

# Regenerates the PR 6 durability artefact (EXPERIMENTS.md E17): durable WAL
# append throughput — ns per append and appends/sec — for each fsync policy
# (always / batch / off) on a real on-disk segment store.
crashbench:
	$(GO) run ./cmd/benchjson -sections wal \
		-artefact BENCH_pr6 -out BENCH_pr6.json

# Regenerates the PR 7 wire artefact (EXPERIMENTS.md E18): in-process,
# JSON-HTTP, and RTBIN1 binary-TCP serving throughput on G(256,1/2) at
# GOMAXPROCS 1/4/16, enforcing binary ≥ 2× JSON at GOMAXPROCS=1.
wirebench:
	$(GO) run ./cmd/benchjson -sections wire \
		-artefact BENCH_pr7 -out BENCH_pr7.json

# Regenerates the PR 8 large-graph artefact (EXPERIMENTS.md E19): the tier
# sweep — bytes/node, build time, spot-graded QPS, and observed stretch for
# fulltable vs landmark on sparse topologies up to n=16384 (fulltable capped
# at 4096) plus fulltable vs compact on dense G(n,1/2). Fails unless landmark
# undercuts fulltable on bytes/node at the largest common n with zero
# stretch-3 violations.
bigbench:
	$(GO) run ./cmd/benchjson -sections big \
		-artefact BENCH_pr8 -out BENCH_pr8.json

# Regenerates the PR 9 tables-tier cluster artefact (EXPERIMENTS.md E20): a
# three-member landmark cluster on an n=4096 sparse topology under the full
# replication failure matrix — recording failover latency, availability,
# replay lag, and the resync payload versus the hypothetical n² matrix a
# full-tier cluster would ship.
bigclusterbench:
	$(GO) run ./cmd/benchjson -sections bigcluster \
		-artefact BENCH_pr9 -out BENCH_pr9.json

# Regenerates the PR 10 shard artefact (EXPERIMENTS.md E21): the n=4096
# partitioned cluster under the shard failure matrix against a 3-member
# single-group replicated baseline on the same topology — aggregate QPS,
# per-shard availability, and per-shard resync payloads, enforcing every
# shard's resync bytes strictly below the baseline's.
shardbench:
	$(GO) run ./cmd/benchjson -sections shard \
		-artefact BENCH_pr10 -out BENCH_pr10.json

clean:
	$(GO) clean ./...
