package routetab_test

import (
	"fmt"

	"routetab"
)

// Example demonstrates the core flow: sample, build, route.
func Example() {
	g, err := routetab.RandomGraph(128, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := routetab.Build(g, routetab.Options{
		Model:      routetab.ModelII(routetab.RelabelNone),
		MaxStretch: 1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.Theorem)
	rep, err := res.Verify(g, 500, 7)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("delivered %d/%d, max stretch %.1f\n", rep.Delivered, rep.Pairs, rep.MaxStretch)
	// Output:
	// Theorem 1 (compact, II)
	// delivered 500/500, max stretch 1.0
}

// ExampleBuild_stretchBudget shows the stretch/space trade-off dispatch.
func ExampleBuild_stretchBudget() {
	g, err := routetab.RandomGraph(128, 2)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, budget := range []float64{1, 1.5, 2, 1000} {
		res, err := routetab.Build(g, routetab.Options{
			Model:      routetab.ModelII(routetab.RelabelNone),
			MaxStretch: budget,
		})
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Println(res.Theorem)
	}
	// Output:
	// Theorem 1 (compact, II)
	// Theorem 3 (centres)
	// Theorem 4 (hub)
	// Theorem 5 (walker)
}

// ExampleExtractPermutation runs the Theorem 9 argument end to end.
func ExampleExtractPermutation() {
	gb, err := routetab.NewLowerBoundFamily(12, 3)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := routetab.Build(gb.G, routetab.Options{
		Model:      routetab.ModelIA(routetab.RelabelNone),
		MaxStretch: 1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	sim, err := routetab.NewSim(gb.G, res.Ports, res.Scheme)
	if err != nil {
		fmt.Println(err)
		return
	}
	ex, err := routetab.ExtractPermutation(gb, sim)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("recovered:", routetab.VerifyExtraction(gb, ex) == nil)
	// Output:
	// recovered: true
}
