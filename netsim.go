package routetab

import (
	"io"
	"math/rand"

	"routetab/internal/eval"
	"routetab/internal/faultinject"
	"routetab/internal/gengraph"
	"routetab/internal/lowerbound"
	"routetab/internal/netsim"
	"routetab/internal/portcode"
	"routetab/internal/routing"
	"routetab/internal/schemes/fullinfo"
	"routetab/internal/shortestpath"
	"routetab/internal/stats"
)

// Concurrent network simulation and the lower-bound machinery, re-exported
// for the examples and downstream users.
type (
	// Network is the goroutine-per-node message-passing simulator with
	// fault injection (link failures, node crashes, drops, delays,
	// duplication), per-send deadlines, retries, and degraded routing.
	Network = netsim.Network
	// NetworkOptions configures a Network.
	NetworkOptions = netsim.Options
	// NetworkStats are the network's cumulative counters, including the
	// fault-injection counters (Retries, Dropped, TimedOut, DetourHops,
	// Crashed, Duplicated).
	NetworkStats = netsim.Stats
	// RetryPolicy configures sender-side retries with exponential backoff.
	RetryPolicy = netsim.RetryPolicy
	// FaultHook receives per-hop fault-injection callbacks.
	FaultHook = netsim.FaultHook
	// HopFault is a FaultHook's per-hop verdict (drop, delay, duplicate).
	HopFault = netsim.HopFault
	// FaultPlan is a deterministic schedule of topology events on the
	// logical-tick clock.
	FaultPlan = faultinject.Plan
	// FaultEvent is one scheduled topology fault.
	FaultEvent = faultinject.Event
	// FaultPlanConfig parameterises RandomFaultPlan.
	FaultPlanConfig = faultinject.PlanConfig
	// FaultConfig parameterises an injector's per-hop stochastic faults.
	FaultConfig = faultinject.Config
	// FaultInjector owns the logical clock, applies plan events, and
	// implements FaultHook.
	FaultInjector = faultinject.Injector
	// ResilienceConfig parameterises the fault-injection evaluation sweep.
	ResilienceConfig = eval.ResilienceConfig
	// ResilienceResult is the sweep output (delivery ratio and mean stretch
	// per scheme and failure probability).
	ResilienceResult = eval.ResilienceResult
	// FullInfoScheme is the full-information shortest-path scheme
	// (Theorem 10); it supports failover over alternative shortest paths.
	FullInfoScheme = fullinfo.Scheme
	// LowerBoundFamily is the explicit Figure-1 graph family of Theorem 9.
	LowerBoundFamily = gengraph.GB
	// Extraction is a Theorem 9 permutation-extraction witness.
	Extraction = lowerbound.Extraction
	// Distances is an all-pairs shortest-path matrix.
	Distances = shortestpath.Distances
)

// NewNetwork starts a concurrent simulation of scheme on g. Callers must
// Close the returned network.
func NewNetwork(g *Graph, ports *Ports, scheme Scheme, opts NetworkOptions) (*Network, error) {
	return netsim.New(g, ports, scheme, opts)
}

// NewFaultInjector builds a deterministic fault-injection engine from cfg
// and plan (nil plan = per-hop faults only). Pass it as
// NetworkOptions.Hook, then Bind it to the network and advance its clock.
func NewFaultInjector(cfg FaultConfig, plan *FaultPlan) (*FaultInjector, error) {
	return faultinject.New(cfg, plan)
}

// RandomFaultPlan draws a seed-deterministic fault schedule for g: links
// fail with probability pc.LinkFailProb, nodes crash with pc.NodeCrashProb,
// optionally repaired pc.RepairAfter ticks later.
func RandomFaultPlan(g *Graph, pc FaultPlanConfig, seed int64) (*FaultPlan, error) {
	return faultinject.RandomPlan(g, pc, seed)
}

// DefaultResilienceConfig is the laptop-scale fault-injection sweep.
func DefaultResilienceConfig() ResilienceConfig { return eval.DefaultResilienceConfig() }

// RunResilience sweeps failure probability across routing schemes under the
// fault-injection engine, reporting delivery ratio and mean stretch;
// identical seeds reproduce identical results.
func RunResilience(cfg ResilienceConfig) (*ResilienceResult, error) { return eval.Resilience(cfg) }

// WriteResilienceCSV serialises a sweep byte-deterministically.
func WriteResilienceCSV(res *ResilienceResult, w io.Writer) error { return res.WriteCSV(w) }

// AllPairs computes all-pairs shortest-path distances.
func AllPairs(g *Graph) (*Distances, error) { return shortestpath.AllPairs(g) }

// BuildFullInformation constructs the Theorem 10 full-information scheme,
// which keeps every shortest-path port per destination and can route around
// failed links.
func BuildFullInformation(g *Graph, ports *Ports) (*FullInfoScheme, error) {
	dm, err := shortestpath.AllPairsCached(g)
	if err != nil {
		return nil, err
	}
	return fullinfo.Build(g, ports, dm)
}

// NewLowerBoundFamily builds the Figure-1 graph on 3k nodes with a seeded
// hidden permutation.
func NewLowerBoundFamily(k int, seed int64) (*LowerBoundFamily, error) {
	return gengraph.RandomGB(k, rand.New(rand.NewSource(seed)))
}

// ExtractPermutation reconstructs a LowerBoundFamily's hidden permutation
// from a routing scheme's local functions (Theorem 9's argument).
func ExtractPermutation(gb *LowerBoundFamily, sim *routing.Sim) (*Extraction, error) {
	return lowerbound.ExtractPermutation(gb, sim)
}

// VerifyExtraction checks an extraction against the hidden permutation.
func VerifyExtraction(gb *LowerBoundFamily, ex *Extraction) error {
	return lowerbound.VerifyExtraction(gb, ex)
}

// PermutationEntropyBits returns log₂(k!) — the information content of the
// hidden permutation each bottom node's routing function must carry.
func PermutationEntropyBits(k int) float64 { return stats.Log2Factorial(k) }

// PortCapacityBits returns Σ_v ⌊log₂ d(v)!⌋ — how many payload bits a port
// assignment for g can carry (the paper's footnote to model II).
func PortCapacityBits(g *Graph) int { return portcode.Capacity(g) }

// StoreInPorts hides the first nbits bits of payload in a fresh port
// assignment (footnote to model II: the assignment is free storage).
func StoreInPorts(g *Graph, payload []byte, nbits int) (*Ports, error) {
	return portcode.StoreBits(g, payload, nbits)
}

// LoadFromPorts recovers nbits payload bits from an assignment produced by
// StoreInPorts.
func LoadFromPorts(g *Graph, ports *Ports, nbits int) ([]byte, error) {
	return portcode.LoadBits(g, ports, nbits)
}
