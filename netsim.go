package routetab

import (
	"math/rand"

	"routetab/internal/gengraph"
	"routetab/internal/lowerbound"
	"routetab/internal/netsim"
	"routetab/internal/portcode"
	"routetab/internal/routing"
	"routetab/internal/schemes/fullinfo"
	"routetab/internal/shortestpath"
	"routetab/internal/stats"
)

// Concurrent network simulation and the lower-bound machinery, re-exported
// for the examples and downstream users.
type (
	// Network is the goroutine-per-node message-passing simulator with
	// link-failure injection.
	Network = netsim.Network
	// NetworkOptions configures a Network.
	NetworkOptions = netsim.Options
	// FullInfoScheme is the full-information shortest-path scheme
	// (Theorem 10); it supports failover over alternative shortest paths.
	FullInfoScheme = fullinfo.Scheme
	// LowerBoundFamily is the explicit Figure-1 graph family of Theorem 9.
	LowerBoundFamily = gengraph.GB
	// Extraction is a Theorem 9 permutation-extraction witness.
	Extraction = lowerbound.Extraction
	// Distances is an all-pairs shortest-path matrix.
	Distances = shortestpath.Distances
)

// NewNetwork starts a concurrent simulation of scheme on g. Callers must
// Close the returned network.
func NewNetwork(g *Graph, ports *Ports, scheme Scheme, opts NetworkOptions) (*Network, error) {
	return netsim.New(g, ports, scheme, opts)
}

// AllPairs computes all-pairs shortest-path distances.
func AllPairs(g *Graph) (*Distances, error) { return shortestpath.AllPairs(g) }

// BuildFullInformation constructs the Theorem 10 full-information scheme,
// which keeps every shortest-path port per destination and can route around
// failed links.
func BuildFullInformation(g *Graph, ports *Ports) (*FullInfoScheme, error) {
	dm, err := shortestpath.AllPairs(g)
	if err != nil {
		return nil, err
	}
	return fullinfo.Build(g, ports, dm)
}

// NewLowerBoundFamily builds the Figure-1 graph on 3k nodes with a seeded
// hidden permutation.
func NewLowerBoundFamily(k int, seed int64) (*LowerBoundFamily, error) {
	return gengraph.RandomGB(k, rand.New(rand.NewSource(seed)))
}

// ExtractPermutation reconstructs a LowerBoundFamily's hidden permutation
// from a routing scheme's local functions (Theorem 9's argument).
func ExtractPermutation(gb *LowerBoundFamily, sim *routing.Sim) (*Extraction, error) {
	return lowerbound.ExtractPermutation(gb, sim)
}

// VerifyExtraction checks an extraction against the hidden permutation.
func VerifyExtraction(gb *LowerBoundFamily, ex *Extraction) error {
	return lowerbound.VerifyExtraction(gb, ex)
}

// PermutationEntropyBits returns log₂(k!) — the information content of the
// hidden permutation each bottom node's routing function must carry.
func PermutationEntropyBits(k int) float64 { return stats.Log2Factorial(k) }

// PortCapacityBits returns Σ_v ⌊log₂ d(v)!⌋ — how many payload bits a port
// assignment for g can carry (the paper's footnote to model II).
func PortCapacityBits(g *Graph) int { return portcode.Capacity(g) }

// StoreInPorts hides the first nbits bits of payload in a fresh port
// assignment (footnote to model II: the assignment is free storage).
func StoreInPorts(g *Graph, payload []byte, nbits int) (*Ports, error) {
	return portcode.StoreBits(g, payload, nbits)
}

// LoadFromPorts recovers nbits payload bits from an assignment produced by
// StoreInPorts.
func LoadFromPorts(g *Graph, ports *Ports, nbits int) ([]byte, error) {
	return portcode.LoadBits(g, ports, nbits)
}
