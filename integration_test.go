package routetab

// Integration tests: every construction exercised across graph families,
// port adversaries, and both carriers (reference Sim and concurrent netsim),
// plus the certify→build→verify pipeline and cross-checks between schemes.

import (
	"math/rand"
	"testing"

	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/kolmo"
	"routetab/internal/models"
	"routetab/internal/netsim"
	"routetab/internal/portcode"
	"routetab/internal/routing"
	"routetab/internal/schemes/centers"
	"routetab/internal/schemes/compact"
	"routetab/internal/schemes/fullinfo"
	"routetab/internal/schemes/fulltable"
	"routetab/internal/schemes/hub"
	"routetab/internal/schemes/interval"
	"routetab/internal/schemes/labels"
	"routetab/internal/schemes/walker"
	"routetab/internal/shortestpath"
)

// buildAllSchemes constructs every scheme that applies to g (sorted ports).
func buildAllSchemes(t *testing.T, g *graph.Graph) map[string]routing.Scheme {
	t.Helper()
	ports := graph.SortedPorts(g)
	dm, err := shortestpath.AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]routing.Scheme{}
	if s, err := fulltable.Build(g, ports); err == nil {
		out["fulltable"] = s
	}
	if s, err := compact.Build(g, compact.DefaultOptions()); err == nil {
		out["compact-II"] = s
	}
	ibOpts := compact.Options{Mode: compact.ModeIB, Strategy: compact.LeastFirst, Threshold: compact.ThresholdLogLog}
	if s, err := compact.Build(g, ibOpts); err == nil {
		out["compact-IB"] = s
	}
	if s, err := labels.Build(g, 3); err == nil {
		out["labels"] = s
	}
	if s, err := centers.Build(g, 1); err == nil {
		out["centers"] = s
	}
	if s, err := hub.Build(g, 1); err == nil {
		out["hub"] = s
	}
	if s, err := walker.Build(g, 3); err == nil {
		out["walker"] = s
	}
	if s, err := fullinfo.Build(g, ports, dm); err == nil {
		out["fullinfo"] = s
	}
	if s, err := interval.Build(g, ports, 1); err == nil {
		out["interval"] = s
	}
	return out
}

func TestAllSchemesDeliverOnRandomGraphs(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g, err := gengraph.GnHalf(72, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		ports := graph.SortedPorts(g)
		dm, err := shortestpath.AllPairs(g)
		if err != nil {
			t.Fatal(err)
		}
		schemes := buildAllSchemes(t, g)
		if len(schemes) != 9 {
			t.Fatalf("seed %d: only %d/9 schemes built", seed, len(schemes))
		}
		for name, s := range schemes {
			sim, err := routing.NewSim(g, ports, s)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			rep, err := routing.VerifyAll(sim, dm, routing.DefaultHopLimit(g.N()))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !rep.AllDelivered() {
				t.Fatalf("seed %d, %s: %s %v", seed, name, rep, rep.Failures)
			}
		}
	}
}

func TestShortestPathSchemesAgreeOnStretch(t *testing.T) {
	// The four shortest-path constructions must all report stretch exactly 1
	// on the same graph; the bounded-stretch ones must respect their budget.
	g, err := gengraph.GnHalf(64, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	ports := graph.SortedPorts(g)
	dm, err := shortestpath.AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	budgets := map[string]float64{
		"fulltable": 1, "compact-II": 1, "compact-IB": 1, "labels": 1,
		"fullinfo": 1, "centers": 1.5, "hub": 2,
	}
	for name, s := range buildAllSchemes(t, g) {
		budget, ok := budgets[name]
		if !ok {
			continue
		}
		sim, err := routing.NewSim(g, ports, s)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := routing.VerifyAll(sim, dm, routing.DefaultHopLimit(g.N()))
		if err != nil {
			t.Fatal(err)
		}
		if rep.MaxStretch > budget {
			t.Errorf("%s: stretch %v > %v", name, rep.MaxStretch, budget)
		}
	}
}

func TestSpaceHierarchyOnOneGraph(t *testing.T) {
	// Table 1's ordering on a single certified graph:
	// fullinfo > fulltable > compact > centers > hub > walker.
	g, err := gengraph.GnHalf(128, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	cert, err := kolmo.Certify(g, 3)
	if err != nil || !cert.OK() {
		t.Fatalf("certification: %v %v", cert, err)
	}
	schemes := buildAllSchemes(t, g)
	order := []struct {
		name  string
		model models.Model
	}{
		{"fullinfo", models.IAAlpha},
		{"fulltable", models.IAAlpha},
		{"compact-II", models.IIAlpha},
		{"centers", models.IIAlpha},
		{"hub", models.IIAlpha},
		{"walker", models.IIAlpha},
	}
	prev := 1 << 62
	for _, o := range order {
		sp, err := routing.MeasureSpace(schemes[o.name], o.model)
		if err != nil {
			t.Fatalf("%s: %v", o.name, err)
		}
		if sp.Total >= prev {
			t.Fatalf("%s total %d not below previous %d — hierarchy broken", o.name, sp.Total, prev)
		}
		prev = sp.Total
	}
}

func TestConcurrentCarrierMatchesReferenceCarrier(t *testing.T) {
	// For deterministic schemes, netsim and Sim must produce identical paths.
	g, err := gengraph.GnHalf(48, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	ports := graph.SortedPorts(g)
	s, err := compact.Build(g, compact.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sim, err := routing.NewSim(g, ports, s)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := netsim.New(g, ports, s, netsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	for src := 1; src <= 48; src += 7 {
		for dst := 2; dst <= 48; dst += 5 {
			if src == dst {
				continue
			}
			trSim, err := sim.RouteByNode(src, dst, 32)
			if err != nil {
				t.Fatal(err)
			}
			trNet, err := nw.Send(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if len(trSim.Path) != len(trNet.Path) {
				t.Fatalf("%d→%d: sim %v vs net %v", src, dst, trSim.Path, trNet.Path)
			}
			for i := range trSim.Path {
				if trSim.Path[i] != trNet.Path[i] {
					t.Fatalf("%d→%d: sim %v vs net %v", src, dst, trSim.Path, trNet.Path)
				}
			}
		}
	}
}

func TestFullInfoChaosFailover(t *testing.T) {
	// Randomly fail links; as long as the graph stays connected through
	// shortest-path alternatives at each step, full-info keeps delivering.
	g, err := gengraph.GnHalf(40, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	ports := graph.SortedPorts(g)
	dm, err := shortestpath.AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	s, err := fullinfo.Build(g, ports, dm)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := netsim.New(g, ports, s, netsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	rng := rand.New(rand.NewSource(8))
	edges := g.Edges()
	// Fail 5% of links (full information only covers *shortest-path*
	// alternatives, so heavy failure rates legitimately strand some pairs).
	failed := 0
	for _, e := range edges {
		if rng.Float64() < 0.05 {
			if err := nw.SetLinkDown(e[0], e[1], true); err != nil {
				t.Fatal(err)
			}
			failed++
		}
	}
	if failed == 0 {
		t.Skip("no links failed in sample")
	}
	delivered, attempts := 0, 0
	for i := 0; i < 300; i++ {
		src := rng.Intn(40) + 1
		dst := rng.Intn(40) + 1
		if src == dst {
			continue
		}
		attempts++
		if _, err := nw.Send(src, dst); err == nil {
			delivered++
		}
	}
	// With 10% random failures on a dense diameter-2 graph, nearly all pairs
	// retain an alternative shortest path at the source; demand a high
	// delivery rate rather than perfection (a destination can lose all its
	// shortest-path entries at an intermediate node).
	if float64(delivered) < 0.9*float64(attempts) {
		t.Fatalf("delivered %d/%d with %d failed links", delivered, attempts, failed)
	}
}

func TestPortcodePlusRoutingCoexist(t *testing.T) {
	// Footnote-1 integration: hide a payload in the port assignment, build a
	// routing scheme on those exact ports, verify both the payload and the
	// routes survive.
	g, err := gengraph.GnHalf(36, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("optimal routing tables, PODC 1996")
	nbits := len(payload) * 8
	ports, err := portcode.StoreBits(g, payload, nbits)
	if err != nil {
		t.Fatal(err)
	}
	s, err := fulltable.Build(g, ports)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := shortestpath.AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := routing.NewSim(g, ports, s)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := routing.VerifyAll(sim, dm, 16)
	if err != nil || !rep.AllDelivered() || rep.MaxStretch != 1 {
		t.Fatalf("routing on payload ports: %v %v", rep, err)
	}
	got, err := portcode.LoadBits(g, ports, nbits)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:len(payload)]) != string(payload) {
		t.Fatalf("payload = %q", got[:len(payload)])
	}
}

func TestDenseAndSparseFamilies(t *testing.T) {
	// Constructions that only need diameter 2 must work on non-random
	// diameter-2 graphs too (star, dense Gnp); the trivial table must work
	// everywhere connected.
	families := map[string]func() (*graph.Graph, error){
		"star":     func() (*graph.Graph, error) { return gengraph.Star(40) },
		"dense":    func() (*graph.Graph, error) { return gengraph.Gnp(40, 0.8, rand.New(rand.NewSource(10))) },
		"grid":     func() (*graph.Graph, error) { return gengraph.Grid(5, 8) },
		"tree":     func() (*graph.Graph, error) { return gengraph.RandomTree(40, rand.New(rand.NewSource(11))) },
		"complete": func() (*graph.Graph, error) { return gengraph.Complete(20) },
	}
	for name, mk := range families {
		g, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		ports := graph.SortedPorts(g)
		dm, err := shortestpath.AllPairs(g)
		if err != nil {
			t.Fatal(err)
		}
		s, err := fulltable.Build(g, ports)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sim, err := routing.NewSim(g, ports, s)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := routing.VerifyAll(sim, dm, routing.DefaultHopLimit(g.N()))
		if err != nil || !rep.AllDelivered() || rep.MaxStretch != 1 {
			t.Fatalf("%s: %v %v", name, rep, err)
		}
	}
}

func TestLargeScalePipeline(t *testing.T) {
	// End-to-end at n = 512: certify, build every construction, verify
	// sampled pairs, persist and reload the compact scheme. Guarded because
	// it takes a few seconds.
	if testing.Short() {
		t.Skip("large-scale pipeline in short mode")
	}
	const n = 512
	g, err := gengraph.GnHalf(n, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	cert, err := kolmo.Certify(g, 3)
	if err != nil || !cert.OK() {
		t.Fatalf("certify: %v %v", cert, err)
	}
	ports := graph.SortedPorts(g)
	dm, err := shortestpath.AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	s, err := compact.Build(g, compact.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Persist → reload → verify sampled pairs in parallel.
	blob, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := compact.Unmarshal(blob, g)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := routing.NewSim(g, ports, back)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(100))
	pairs := make([][2]int, 0, 5000)
	for len(pairs) < 5000 {
		u, v := rng.Intn(n)+1, rng.Intn(n)+1
		if u != v {
			pairs = append(pairs, [2]int{u, v})
		}
	}
	rep, err := routing.VerifyPairsParallel(sim, dm, pairs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllDelivered() || rep.MaxStretch != 1 {
		t.Fatalf("n=512 reloaded compact: %s %v", rep, rep.Failures)
	}
	// Per-node budget at scale: |F(u)| ≤ 6n as the paper claims.
	for u := 1; u <= n; u++ {
		if s.FunctionBits(u) > 6*n {
			t.Fatalf("node %d: %d bits > 6n at n=512", u, s.FunctionBits(u))
		}
	}
}
