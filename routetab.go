// Package routetab is a Go implementation of "Optimal Routing Tables"
// (Buhrman, Hoepman, Vitányi; PODC 1996): compact routing schemes for static
// point-to-point networks, the nine cost models the paper analyses, the
// Kolmogorov-random-graph machinery its bounds rest on, and the experiment
// harness that regenerates its evaluation artefacts.
//
// # Quick start
//
//	g, _ := routetab.RandomGraph(256, 1)      // G(n, 1/2), seeded
//	res, _ := routetab.Build(g, routetab.Options{
//	    Model:      routetab.ModelII(routetab.RelabelNone),
//	    MaxStretch: 1,
//	})
//	fmt.Println(res.Theorem, res.Space.Total, "bits")
//	rep, _ := res.Verify(g, 1000, 42)
//	fmt.Println(rep)
//
// The facade re-exports the stable surface of the internal packages; see
// DESIGN.md for the full system inventory and EXPERIMENTS.md for the
// paper-vs-measured record.
package routetab

import (
	"math/rand"

	"routetab/internal/core"
	"routetab/internal/eval"
	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/kolmo"
	"routetab/internal/models"
	"routetab/internal/routing"
)

// Re-exported core types. The aliases keep the public API in one import path
// while the implementation lives in internal packages.
type (
	// Graph is a simple undirected network on nodes {1,…,n}.
	Graph = graph.Graph
	// Ports is a port assignment (the paper's minimal local knowledge).
	Ports = graph.Ports
	// Model is one of the paper's nine cost models.
	Model = models.Model
	// Scheme is a routing scheme: one local routing function per node.
	Scheme = routing.Scheme
	// Label is a node label (ID plus charged γ-model fields).
	Label = routing.Label
	// Space is a scheme's accounted storage.
	Space = routing.Space
	// Report summarises routed pairs, deliveries, and stretch.
	Report = routing.Report
	// Trace is one delivered message's walk.
	Trace = routing.Trace
	// Options configures Build.
	Options = core.Options
	// Result is a built scheme with certificate and accounting.
	Result = core.Result
	// Certificate records which randomness predicates a graph satisfies.
	Certificate = kolmo.Certificate
	// ExperimentConfig parameterises the evaluation sweeps.
	ExperimentConfig = eval.Config
	// ExperimentResults bundles every Table 1 experiment.
	ExperimentResults = eval.Results
)

// Relabelling dimension values (α, β, γ).
const (
	RelabelNone    = models.RelabelNone
	RelabelPermute = models.RelabelPermute
	RelabelFree    = models.RelabelFree
)

// ModelIA returns the IA ∧ r model (fixed ports, neighbours unknown).
func ModelIA(r models.Relabeling) Model { return Model{Ports: models.PortsFixed, Relabel: r} }

// ModelIB returns the IB ∧ r model (free ports, neighbours unknown).
func ModelIB(r models.Relabeling) Model { return Model{Ports: models.PortsFree, Relabel: r} }

// ModelII returns the II ∧ r model (neighbours known).
func ModelII(r models.Relabeling) Model { return Model{Ports: models.NeighborsKnown, Relabel: r} }

// ParseModel resolves names like "II^alpha" or "ib^gamma".
func ParseModel(s string) (Model, error) { return models.Parse(s) }

// AllModels lists the nine models in Table 1 order.
func AllModels() []Model { return models.All() }

// NewGraph returns an edgeless graph on n nodes.
func NewGraph(n int) (*Graph, error) { return graph.New(n) }

// RandomGraph samples a seeded uniform G(n, 1/2) graph — the computable
// stand-in for the paper's Kolmogorov random graphs.
func RandomGraph(n int, seed int64) (*Graph, error) {
	return gengraph.GnHalf(n, rand.New(rand.NewSource(seed)))
}

// SortedPorts builds the canonical model-IB port assignment.
func SortedPorts(g *Graph) *Ports { return graph.SortedPorts(g) }

// AdversarialPorts builds a seeded adversarial (model IA) port assignment.
func AdversarialPorts(g *Graph, seed int64) *Ports {
	return graph.RandomPorts(g, rand.New(rand.NewSource(seed)))
}

// Build certifies g and constructs the paper-optimal scheme for the model
// and stretch budget in opts.
func Build(g *Graph, opts Options) (*Result, error) { return core.Build(g, opts) }

// Certify checks the c·log n-randomness predicates (Definition 3 proxy and
// Lemmas 1–3) on g.
func Certify(g *Graph, c float64) (*Certificate, error) { return kolmo.Certify(g, c) }

// NewSim builds the single-message reference carrier for a scheme.
func NewSim(g *Graph, ports *Ports, scheme Scheme) (*routing.Sim, error) {
	return routing.NewSim(g, ports, scheme)
}

// DefaultExperimentConfig is the laptop-scale evaluation sweep.
func DefaultExperimentConfig() ExperimentConfig { return eval.DefaultConfig() }

// RunExperiments executes the full Table 1 suite.
func RunExperiments(cfg ExperimentConfig) (*ExperimentResults, error) { return eval.RunAll(cfg) }

// RenderTable1 prints the measured analogue of the paper's Table 1.
func RenderTable1(res *ExperimentResults) string { return eval.RenderTable1(res) }
