// Command figures emits the evaluation series as CSV — one block per
// experiment — plus the Figure 1 lower-bound demonstration: the explicit
// graph family, the permutation extraction, and the entropy ledger.
//
// Usage:
//
//	figures [-sizes 64,128,256] [-seed 1] [-out -]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"routetab/internal/eval"
	"routetab/internal/schemes/compact"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	var (
		sizes  = fs.String("sizes", "64,128,256", "comma-separated n sweep")
		trials = fs.Int("trials", 2, "graphs per size")
		seed   = fs.Int64("seed", 1, "experiment seed")
		pairs  = fs.Int("pairs", 1000, "sampled pairs per verification")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := eval.Config{Trials: *trials, Seed: *seed, C: 3, SamplePairs: *pairs}
	for _, part := range strings.Split(*sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("sizes: %w", err)
		}
		cfg.Sizes = append(cfg.Sizes, n)
	}

	// Stretch/space trade-off frontier (Theorems 1–5) + baselines.
	runs := []struct {
		name string
		f    func() (*eval.Series, error)
	}{
		{"theorem1", func() (*eval.Series, error) { return cfg.E1Compact(compact.DefaultOptions()) }},
		{"theorem2", cfg.E2Labels},
		{"theorem3", cfg.E3Centers},
		{"theorem4", cfg.E4Hub},
		{"theorem5", cfg.E5Walker},
		{"theorem10", cfg.E10FullInfo},
		{"fulltable", func() (*eval.Series, error) { return cfg.EFullTableBaseline(true) }},
		{"interval", cfg.EIntervalBaseline},
	}
	for _, r := range runs {
		s, err := r.f()
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		fmt.Fprintln(w, eval.RenderSeriesCSV(s))
	}

	// Figure 1: the Theorem 9 family with permutation extraction.
	e9, err := cfg.E9Family()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# figure1 — Theorem 9 lower-bound family G_B (permutation extraction)")
	fmt.Fprintln(w, "k,n,entropy_bits,extraction_ok,scheme_bits")
	for _, r := range e9 {
		fmt.Fprintf(w, "%d,%d,%.1f,%t,%d\n", r.K, r.N, r.EntropyBits, r.ExtractionOK, r.SchemeBits)
	}
	fmt.Fprintln(w)

	// Theorem 8 adversarial-port ledger.
	pes, ns, err := cfg.E8Ports()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# theorem8 — adversarial port assignment entropy (model IA^alpha)")
	fmt.Fprintln(w, "n,entropy_bits,table_bits,flate_bits")
	for i, pe := range pes {
		fmt.Fprintf(w, "%d,%.1f,%d,%d\n", ns[i], pe.EntropyBits, pe.TableBits, pe.CompressedBits)
	}
	fmt.Fprintln(w)

	// Theorem 7 / Claims 2–3 pattern-codec ledger.
	e7, err := cfg.E7Pattern()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# theorem7 — Claims 2–3 pattern accounting")
	fmt.Fprintln(w, "n,pattern_bits,claim2_budget,round_trips")
	for _, r := range e7 {
		fmt.Fprintf(w, "%d,%d,%d,%t\n", r.N, r.PatternBits, r.Budget, r.RoundTrips)
	}
	fmt.Fprintln(w)

	// Worst-case deterministic families under the universal table.
	wc, err := cfg.EWorstCaseFamilies()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# worstcase — universal table on deterministic families")
	fmt.Fprintln(w, "family,n,total_bits,max_stretch,delivered")
	for _, r := range wc {
		fmt.Fprintf(w, "%s,%d,%d,%.3f,%t\n", r.Family, r.N, r.TotalBits, r.MaxStretch, r.Delivered)
	}
	fmt.Fprintln(w)

	// Lemma validation (E11): certified fraction per size.
	fr, err := cfg.CertifySamples(nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# lemmas — c·log n-randomness certification of uniform samples")
	fmt.Fprintln(w, "n,certified_fraction")
	for _, n := range cfg.Sizes {
		fmt.Fprintf(w, "%d,%.3f\n", n, fr[n])
	}
	return nil
}
