package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunEmitsEverySeries(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-sizes", "32,48,64", "-trials", "1", "-pairs", "100"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Theorem 1", "Theorem 2", "Theorem 3", "Theorem 4", "Theorem 5",
		"Full-information", "Universal full-table", "Interval routing",
		"figure1", "extraction_ok", "theorem8", "entropy_bits",
		"theorem7", "worstcase", "certified_fraction",
		"n,total_bits",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-sizes", "oops"}, &buf); err == nil {
		t.Fatal("bad sizes accepted")
	}
}
