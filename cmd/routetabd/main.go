// Command routetabd is the routing-table query daemon: it builds one scheme
// over a seeded (or file-loaded) topology, keeps it resident behind the
// serving engine's hot-swappable snapshot, and answers next-hop/route
// lookups over HTTP with built-in JSON metrics.
//
// Serving mode:
//
//	routetabd -n 256 -seed 1 -scheme fulltable -addr :7353
//
//	GET  /nexthop?src=3&dst=77      one lookup
//	POST /batch {"pairs":[[3,77],[5,9]]}   batched lookups
//	GET  /route?src=3&dst=77        full path trace
//	GET  /metrics                   metrics registry snapshot (JSON)
//	GET  /healthz                   liveness + snapshot version
//	POST /mutate {"op":"add|remove|toggle","u":1,"v":2}  topology change
//	                                (rebuild off-path, atomic hot swap)
//	POST /swap                      republish unchanged topology
//	POST /fail {"kind":"link","u":1,"v":2,"down":true}   failure event
//	                                (overlay + degraded detours now,
//	                                self-healing rebuild off-path)
//
// With -persist FILE every published snapshot is also saved through an
// atomic checksummed binary file (the RTARENA1 flat arena: one contiguous
// read restores it zero-copy); on startup the daemon warm-boots from it
// (same Seq, byte-identical tables, no cold rebuild) when the file matches
// the requested scheme. Overload rejections carry a Retry-After header and
// a retry_after_ms hint.
//
// With -bin-addr the daemon additionally serves the RTBIN1 length-prefixed
// binary batch protocol on a persistent-TCP listener beside HTTP:
//
//	routetabd -n 256 -addr :7353 -bin-addr :7354
//
// Binary clients (internal/serve/wire.Dial) pipeline framed batches over
// one connection into the same sharded pool, skipping JSON entirely.
// -pprof exposes GET /debug/pprof/* on the HTTP listener for live
// profiling; it is off by default so the daemon never leaks profiling
// endpoints unintentionally.
//
// Wire chaos mode (also the `make verify` wire smoke):
//
//	routetabd -wire-chaos -n 32 -seed 1 -lookups 20000
//
// races JSON-HTTP and binary-TCP clients against the same engine through
// real loopback listeners while snapshots swap mid-load, grading every
// answer on both protocols — exiting non-zero unless zero answers were
// incorrect or errored and both transports observed a swap.
//
// Load-generator mode (also the `make verify` serving smoke):
//
//	routetabd -loadgen -n 64 -seed 1 -lookups 100000 -swaps 4
//
// runs the closed-loop generator in-process against the same engine, prints
// the JSON report, and exits non-zero if any lookup was answered
// incorrectly, rejected, or the run produced no throughput — so a CI lane
// gets a pass/fail signal, not just numbers.
//
// Chaos mode (also the `make chaos` CI gate):
//
//	routetabd -chaos -n 64 -seed 1 -lookups 200000 -chaos-bursts 5 -chaos-kills 2
//
// runs the serve-layer chaos harness in-process: seeded churn bursts driven
// through the self-healing repairer, shard stalls and batch drops through
// the server's chaos hook, and kill+restore cycles through the persistence
// layer — grading every answer and exiting non-zero unless zero lookups were
// answered incorrectly, every detour stayed within the +2-hop budget, every
// restore was byte-identical, and unavailability stayed under budget.
// -chaos-csv additionally writes the EXPERIMENTS.md E15 artefact row.
//
// Cluster mode: a serving daemon is a replication primary by default — every
// snapshot publication and failure event is appended to an in-memory WAL
// that peers stream over GET /cluster/wal, with GET /cluster/state for full
// bootstrap and GET /cluster/digest for anti-entropy checks. A replica joins
// with
//
//	routetabd -join http://primary:7353 -addr :7354
//
// bootstrapping from the primary's state and replaying its WAL (falling back
// to a fresh state fetch on truncation, corruption, or epoch change); it
// serves lookups locally but rejects /mutate, /swap, and /fail with 409 —
// mutation belongs to the primary. When the primary dies,
//
//	routetabd -promote http://replica:7354
//
// asks a replica to take over: POST /promote stops its sync loop, activates
// its repairer, and opens a fresh WAL under a bumped epoch — surviving
// replicas re-pointed at it observe the epoch change and resync.
//
// Cluster chaos mode (also the `make cluster` CI gate):
//
//	routetabd -cluster-chaos -n 64 -seed 1 -replicas 2 -lookups 200000
//
// runs the replicated chaos harness in-process: a primary plus -replicas
// followers under client-side failover, surviving replica partitions, WAL
// corruption and truncation, and a primary kill + promotion — exiting
// non-zero unless zero answers were incorrect, availability stayed within
// budget, and every member's tables were byte-identical at quiesce.
// -cluster-csv writes the EXPERIMENTS.md E16 artefact row.
//
// Large-graph serving (the tables tier, DESIGN.md §15):
//
//	routetabd -scheme landmark -n 4096
//
// -tier auto selects the tables tier for table-capable schemes (landmark):
// snapshots carry the scheme's own o(n²) tables instead of the all-pairs
// matrix, distances are served as stretch-bounded estimates, and /healthz
// and /metrics expose snapshot_bytes and scheme_space_per_node. -topo auto
// switches graph generation from dense G(n,1/2) to a sparse connected
// topology (-avgdeg) above n=512. Tables-tier daemons are full cluster
// citizens: -join, -wal-dir, and -promote work unchanged, with WAL records
// and anti-entropy digests fingerprinting the encoded scheme tables instead
// of the matrix the tier never materialises.
//
// Bigsmoke mode (also the `make bigsmoke` CI gate):
//
//	routetabd -bigsmoke -n 4096 -seed 1 -lookups 10000 -workers 4 -swaps 2
//
// builds an n=4096 tables-tier landmark snapshot over a sparse topology and
// drives spot-graded load with connectivity-safe hot swaps — every sampled
// answer checked against on-demand BFS ground truth — exiting non-zero on
// any answer beyond stretch 3, an unreachable next hop, or a snapshot that
// is not o(n²).
//
// Bigcluster mode (also the `make bigcluster` CI gate):
//
//	routetabd -bigcluster -n 4096 -seed 1 -replicas 2 -lookups 20000
//
// runs the tables-tier replicated chaos harness: a 3-member n=4096 landmark
// cluster over a sparse topology surviving churn bursts, replica partitions,
// a WAL corruption, a WAL truncation, and a primary kill + promotion — every
// sampled answer spot-graded against BFS ground truth — exiting non-zero on
// any spot-grade violation, sub-budget availability, or members whose
// encoded scheme tables are not byte-identical at quiesce. -cluster-csv
// writes the EXPERIMENTS.md E20 artefact row.
//
// Sharded cluster mode (DESIGN.md §17): the source keyspace split across
// shard groups by a versioned consistent-hash shard map (RTSMAP1). Bootstrap
// the map, then start one restricted daemon per group:
//
//	routetabd -shard-map cluster.rtsmap -shard-groups 2 -n 4096
//	routetabd -shard 0 -shard-map cluster.rtsmap -n 4096 -addr :7353
//	routetabd -shard 1 -shard-map cluster.rtsmap -n 4096 -addr :7453
//
// Each group is an ordinary primary (replicas -join it as usual); its engine
// serves only owned sources, answering foreign ones with ErrWrongShard, and
// on the tables tier its snapshots carry only the owned rows — so per-shard
// state, replication, and resync bytes shrink with the shard. /healthz and
// /metrics expose shard_id, shard_count, shard_map_epoch, and
// rebalance_inflight.
//
//	routetabd -split 0 -shard-map cluster.rtsmap
//
// reshapes the map offline: group 0's widest range is halved, the upper half
// moves to a fresh group, and the file is rewritten atomically under a bumped
// epoch. The live in-process split (snapshot transfer, WAL catch-up,
// dual-read handoff) is shard.Cluster.Split.
//
// Shard chaos mode (also the `make shardchaos` CI gate):
//
//	routetabd -shard-chaos -n 4096 -seed 1 -shard-groups 2 -replicas 1 -lookups 20000
//
// runs the partitioned-cluster chaos harness: a sharded tables-tier cluster
// behind the scatter-gather front surviving a live shard split racing churn,
// per-group replica partitions, a wire corruption, and a shard-primary kill +
// promotion — every sampled answer graded, full cross-shard routes walked at
// quiesce — exiting non-zero on one incorrect answer, a stretch-3 violation,
// a shard below its availability floor, or non-converged digests.
// -shard-csv writes the EXPERIMENTS.md E21 artefact row.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"routetab/internal/cluster"
	"routetab/internal/cluster/shard"
	"routetab/internal/cluster/walstore"
	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/keyspace"
	"routetab/internal/serve"
	"routetab/internal/serve/chaos"
	"routetab/internal/serve/httpapi"
	"routetab/internal/serve/loadgen"
	"routetab/internal/serve/wire"

	"math/rand"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "routetabd:", err)
		os.Exit(1)
	}
}

type config struct {
	n       int
	seed    int64
	scheme  string
	tier    string
	topo    string
	avgdeg  float64
	file    string
	addr    string
	binAddr string
	pprofOn bool
	shards  int
	queue   int
	batch   int
	persist string
	// loadgen mode
	loadgen    bool
	lookups    uint64
	duration   time.Duration
	workers    int
	swaps      int
	bigsmoke   bool
	bigcluster bool
	// chaos mode
	chaos       bool
	chaosStalls int
	chaosDrops  int
	chaosBursts int
	chaosKills  int
	chaosBudget float64
	chaosCSV    string
	wireChaos   bool
	// cluster
	join         string
	promote      string
	syncInterval time.Duration
	walKeep      int
	replicas     int
	clusterChaos bool
	clusterCSV   string
	// durable WAL + crash gate
	walDir   string
	walFsync string
	crash    bool
	// partitioned cluster (shard) mode
	shardID     int
	shardMapF   string
	split       int
	shardGroups int
	shardChaos  bool
	shardCSV    string
}

func parseFlags(args []string) (*config, error) {
	fs := flag.NewFlagSet("routetabd", flag.ContinueOnError)
	cfg := &config{}
	fs.IntVar(&cfg.n, "n", 256, "graph size for the seeded G(n,1/2) topology")
	fs.Int64Var(&cfg.seed, "seed", 1, "topology seed")
	fs.StringVar(&cfg.scheme, "scheme", "fulltable", "scheme to serve: "+fmt.Sprint(serve.SchemeNames()))
	fs.StringVar(&cfg.tier, "tier", "auto", "snapshot tier: auto|full|tables (auto picks tables for table-capable schemes like landmark)")
	fs.StringVar(&cfg.topo, "topo", "auto", "seeded topology family: auto|gnhalf|sparse (auto picks sparse above 512 nodes)")
	fs.Float64Var(&cfg.avgdeg, "avgdeg", 8, "sparse topology: target average degree")
	fs.StringVar(&cfg.file, "graph", "", "edge-list file to load instead of generating")
	fs.StringVar(&cfg.addr, "addr", ":7353", "listen address (serving mode)")
	fs.StringVar(&cfg.binAddr, "bin-addr", "", "also serve the RTBIN1 binary batch protocol on this TCP address (empty = HTTP only)")
	fs.BoolVar(&cfg.pprofOn, "pprof", false, "expose GET /debug/pprof/* on the HTTP listener")
	fs.IntVar(&cfg.shards, "shards", 0, "lookup worker shards (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.queue, "queue", 0, "per-shard queue capacity (0 = default)")
	fs.IntVar(&cfg.batch, "batch", 0, "max coalesced jobs per worker wake-up (0 = default)")
	fs.StringVar(&cfg.persist, "persist", "", "snapshot persistence file: save every published snapshot, warm-boot from it on start")
	fs.BoolVar(&cfg.loadgen, "loadgen", false, "run the closed-loop load generator instead of serving HTTP")
	fs.BoolVar(&cfg.bigsmoke, "bigsmoke", false, "run the large-graph spot-graded smoke (tables-tier landmark over a sparse topology) instead of serving HTTP")
	fs.BoolVar(&cfg.bigcluster, "bigcluster", false, "run the tables-tier replicated chaos harness (spot-graded large-graph cluster) instead of serving HTTP")
	fs.BoolVar(&cfg.chaos, "chaos", false, "run the serve-layer chaos harness instead of serving HTTP")
	fs.IntVar(&cfg.chaosStalls, "chaos-stalls", 2, "chaos: shard stall injections (-1 disables)")
	fs.IntVar(&cfg.chaosDrops, "chaos-drops", 2, "chaos: batch drop windows (-1 disables)")
	fs.IntVar(&cfg.chaosBursts, "chaos-bursts", 5, "chaos: churn bursts from the seeded fault plan (-1 disables)")
	fs.IntVar(&cfg.chaosKills, "chaos-kills", 2, "chaos: kill+restore cycles through the persistence layer (-1 disables)")
	fs.Float64Var(&cfg.chaosBudget, "chaos-budget", 0.10, "chaos: max tolerated unavailable fraction")
	fs.StringVar(&cfg.chaosCSV, "chaos-csv", "", "chaos: also append the report as a CSV artefact to this file")
	fs.BoolVar(&cfg.wireChaos, "wire-chaos", false, "run the mixed-protocol (JSON + binary) chaos phase instead of serving HTTP")
	fs.StringVar(&cfg.join, "join", "", "join URL of a primary to replicate from (replica mode)")
	fs.StringVar(&cfg.promote, "promote", "", "ask the replica at this URL to promote itself to primary, then exit")
	fs.DurationVar(&cfg.syncInterval, "sync-interval", 50*time.Millisecond, "replica: WAL poll interval")
	fs.IntVar(&cfg.walKeep, "wal-keep", 4096, "primary: WAL records retained for replicas (older positions force a full resync)")
	fs.IntVar(&cfg.replicas, "replicas", 2, "cluster-chaos: replicas joined behind the primary")
	fs.BoolVar(&cfg.clusterChaos, "cluster-chaos", false, "run the replicated cluster chaos harness instead of serving HTTP")
	fs.StringVar(&cfg.clusterCSV, "cluster-csv", "", "cluster-chaos: also append the report as a CSV artefact to this file")
	fs.StringVar(&cfg.walDir, "wal-dir", "", "primary: durable segmented WAL directory (empty = in-memory WAL only)")
	fs.StringVar(&cfg.walFsync, "wal-fsync", "always", "primary: WAL fsync policy: always|batch|off (non-always policies bump the epoch on every restart)")
	fs.BoolVar(&cfg.crash, "crash", false, "run the crash-recovery matrix gate instead of serving HTTP")
	fs.IntVar(&cfg.shardID, "shard", -1, "serve one shard group: restrict the engine to the keyspace group <id> owns in -shard-map (-1 = unsharded)")
	fs.StringVar(&cfg.shardMapF, "shard-map", "", "shard map file (RTSMAP1); with -shard-groups and neither -shard nor -split, a fresh uniform map is written there")
	fs.IntVar(&cfg.split, "split", -1, "split group <id> in the -shard-map file (new group, atomic epoch bump), rewrite it atomically, and exit")
	fs.IntVar(&cfg.shardGroups, "shard-groups", 0, "shard groups: initial count for -shard-chaos and for -shard-map initialisation (0 = harness default)")
	fs.BoolVar(&cfg.shardChaos, "shard-chaos", false, "run the partitioned-cluster chaos harness instead of serving HTTP")
	fs.StringVar(&cfg.shardCSV, "shard-csv", "", "shard-chaos: also append the report as a CSV artefact to this file")
	lookups := fs.Int64("lookups", 100_000, "loadgen: total lookup target")
	fs.DurationVar(&cfg.duration, "duration", 0, "loadgen: wall-clock cap (0 = none)")
	fs.IntVar(&cfg.workers, "workers", 4, "loadgen: closed-loop client workers")
	fs.IntVar(&cfg.swaps, "swaps", 0, "loadgen: snapshot hot-swaps to perform mid-load")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if *lookups < 0 {
		return nil, fmt.Errorf("-lookups must be ≥ 0")
	}
	cfg.lookups = uint64(*lookups)
	return cfg, nil
}

func loadGraph(cfg *config) (*graph.Graph, error) {
	if cfg.file != "" {
		f, err := os.Open(cfg.file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadEdgeList(f)
	}
	topo := cfg.topo
	if topo == "auto" {
		// A dense G(n,1/2) at thousands of nodes is millions of edges; large
		// graphs get the sparse connected family the tables tier targets.
		if cfg.n > 512 {
			topo = "sparse"
		} else {
			topo = "gnhalf"
		}
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	switch topo {
	case "gnhalf":
		return gengraph.GnHalf(cfg.n, rng)
	case "sparse":
		return gengraph.SparseConnected(cfg.n, cfg.avgdeg, rng)
	default:
		return nil, fmt.Errorf("unknown -topo %q (auto|gnhalf|sparse)", cfg.topo)
	}
}

// resolveTier maps -tier onto a concrete snapshot tier for cfg.scheme:
// "auto" serves table-capable schemes (landmark) from compact tables and
// everything else from the full matrix.
func resolveTier(cfg *config) (string, error) {
	switch cfg.tier {
	case "auto":
		if serve.TableCapable(cfg.scheme) {
			return serve.TierTables, nil
		}
		return serve.TierFull, nil
	case "full":
		return serve.TierFull, nil
	case "tables":
		if !serve.TableCapable(cfg.scheme) {
			return "", fmt.Errorf("-tier tables: scheme %q has no table codec (table-capable: landmark)", cfg.scheme)
		}
		return serve.TierTables, nil
	default:
		return "", fmt.Errorf("unknown -tier %q (auto|full|tables)", cfg.tier)
	}
}

func run(args []string, out *os.File) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	switch {
	case cfg.promote != "":
		return runPromote(cfg, out)
	case cfg.chaos:
		return runChaos(cfg, out)
	case cfg.wireChaos:
		return runWireChaos(cfg, out)
	case cfg.crash:
		return runCrashGate(cfg, out)
	case cfg.clusterChaos:
		return runClusterChaos(cfg, out)
	case cfg.shardChaos:
		return runShardChaos(cfg, out)
	case cfg.split >= 0:
		return runSplitMap(cfg, out)
	case cfg.shardMapF != "" && cfg.shardID < 0 && cfg.join == "":
		return runInitMap(cfg, out)
	case cfg.bigsmoke:
		return runBigSmoke(cfg, out)
	case cfg.bigcluster:
		return runBigCluster(cfg, out)
	case cfg.join != "":
		return runReplica(cfg, out)
	}
	sh, err := loadShardInfo(cfg)
	if err != nil {
		return err
	}
	eng, warm, err := openEngine(cfg, sh, out)
	if err != nil {
		return err
	}
	if cfg.persist != "" && !warm {
		if err := eng.EnablePersist(cfg.persist); err != nil {
			return fmt.Errorf("enable persistence: %w", err)
		}
	}
	srv := serve.NewServer(eng, serve.ServerOptions{
		Shards:   cfg.shards,
		QueueCap: cfg.queue,
		MaxBatch: cfg.batch,
	})
	defer srv.Close()
	registerServingGauges(srv)

	if cfg.loadgen {
		return runLoadgen(srv, cfg, out)
	}
	rep := serve.NewRepairer(srv, serve.RepairOptions{})
	defer rep.Close()
	// A serving daemon is a replication primary by default: the WAL costs
	// nothing unless a peer streams it, and replicas can join at any time.
	// With -wal-dir the WAL is also journaled to durable segment files and
	// the boot runs the crash-recovery state machine: replay the WAL forward
	// over the (possibly older) persisted snapshot and resume the previous
	// epoch when the durability invariant held, else bump it so replicas
	// resync exactly once.
	var walLog *cluster.Log
	epoch := uint64(1)
	if cfg.walDir != "" {
		policy, err := walstore.ParsePolicy(cfg.walFsync)
		if err != nil {
			return err
		}
		log, rpt, err := cluster.RecoverPrimaryLog(eng, rep, cluster.RecoverConfig{
			Dir: cfg.walDir, Fsync: policy,
		})
		if err != nil {
			return fmt.Errorf("wal recovery: %w", err)
		}
		fmt.Fprintf(out, "routetabd: wal %s: epoch=%d bumped=%v replayed=%d overlay=%d skipped=%d torn_bytes=%d resume_seq=%d (%s)\n",
			cfg.walDir, rpt.Epoch, rpt.EpochBumped, rpt.Replayed, rpt.Overlay,
			rpt.SkippedBelowSnap, rpt.TornBytes, rpt.ResumeSeq, rpt.Reason)
		walLog = log
		epoch = rpt.Epoch
	}
	pri, err := cluster.NewPrimaryAt(eng, srv, rep, epoch, walLog)
	if err != nil {
		return err
	}
	defer pri.Close()
	a := &api{srv: srv, rep: rep, pri: pri, wal: walLog, walKeep: cfg.walKeep, shard: sh}
	return serveHTTP(a, cfg, out)
}

// runCrashGate executes the crash-recovery matrix (the `make crash` CI gate)
// in-process and renders a pass/fail verdict, mirroring runChaos.
func runCrashGate(cfg *config, out *os.File) error {
	rep, err := chaos.RunCrash(chaos.CrashConfig{
		N:      cfg.n,
		Seed:   cfg.seed,
		Scheme: cfg.scheme,
	})
	if rep == nil {
		return err
	}
	blob, merr := json.MarshalIndent(rep, "", "  ")
	if merr != nil {
		return merr
	}
	fmt.Fprintln(out, string(blob))
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "crash ok: %s\n", rep)
	return nil
}

// runReplica joins the primary at cfg.join and serves its replicated tables
// until SIGTERM (or an in-place promotion via POST /promote).
func runReplica(cfg *config, out *os.File) error {
	// A shard-group replica inherits its keyspace restriction through state
	// transfer from its primary; -shard/-shard-map here only attach the
	// placement to /healthz and /metrics.
	sh, err := loadShardInfo(cfg)
	if err != nil {
		return err
	}
	src := cluster.NewHTTPSource(cfg.join, nil)
	rpl, err := cluster.JoinReplica(src, cluster.ReplicaOptions{
		Server: serve.ServerOptions{
			Shards:   cfg.shards,
			QueueCap: cfg.queue,
			MaxBatch: cfg.batch,
		},
		SyncInterval: cfg.syncInterval,
	})
	if err != nil {
		return fmt.Errorf("join %s: %w", cfg.join, err)
	}
	defer rpl.Close() // safe after promotion: the stack lives on in the primary
	if cfg.persist != "" {
		if err := rpl.Engine().EnablePersist(cfg.persist); err != nil {
			return fmt.Errorf("enable persistence: %w", err)
		}
	}
	rpl.Start()
	registerServingGauges(rpl.Server())
	fmt.Fprintf(out, "routetabd: joined %s (epoch=%d, wal_seq=%d)\n",
		cfg.join, rpl.Epoch(), rpl.WalSeq())
	a := &api{srv: rpl.Server(), rep: rpl.Repairer(), rpl: rpl, walKeep: cfg.walKeep, shard: sh}
	return serveHTTP(a, cfg, out)
}

// runPromote is the client side of failover: ask the replica at cfg.promote
// to take over as primary, print its answer, exit.
func runPromote(cfg *config, out *os.File) error {
	url := strings.TrimRight(cfg.promote, "/") + "/promote"
	resp, err := http.Post(url, "application/json", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if err != nil {
		return err
	}
	fmt.Fprint(out, string(body))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("promote %s: %s", url, resp.Status)
	}
	return nil
}

// runClusterChaos executes the replicated chaos harness in-process and
// renders a pass/fail verdict, mirroring runChaos.
func runClusterChaos(cfg *config, out *os.File) error {
	// MaxUnavailableFrac is left at the harness default (0.01): the cluster
	// gate's contract is ≥99% availability, not the single-node budget.
	rep, err := chaos.RunCluster(chaos.ClusterConfig{
		N:        cfg.n,
		Seed:     cfg.seed,
		Scheme:   cfg.scheme,
		Replicas: cfg.replicas,
		Lookups:  cfg.lookups,
		Workers:  cfg.workers,
	})
	if rep == nil {
		return err
	}
	blob, merr := json.MarshalIndent(rep, "", "  ")
	if merr != nil {
		return merr
	}
	fmt.Fprintln(out, string(blob))
	if cfg.clusterCSV != "" {
		if werr := appendCSV(cfg.clusterCSV, func(w io.Writer) error {
			return chaos.WriteClusterCSV(w, []*chaos.ClusterReport{rep})
		}); werr != nil {
			return werr
		}
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "cluster chaos ok: %s\n", rep)
	return nil
}

// openEngine builds the serving engine, warm-booting from the persistence
// file when it exists and matches the requested scheme — same Seq,
// byte-identical tables, no cold rebuild. warm reports whether persistence is
// already re-enabled on the restored engine. With -shard the engine is
// keyspace-restricted to the group's owned set and always cold-builds: the
// shard map is the source of truth for ownership, and a persisted snapshot
// may carry a stale owned set from before a rebalance.
func openEngine(cfg *config, sh *shardInfo, out *os.File) (*serve.Engine, bool, error) {
	if sh != nil {
		g, err := loadGraph(cfg)
		if err != nil {
			return nil, false, err
		}
		tier, err := resolveTier(cfg)
		if err != nil {
			return nil, false, err
		}
		eng, err := serve.NewShardEngine(g, cfg.scheme, tier, sh.want)
		if err != nil {
			return nil, false, err
		}
		fmt.Fprintf(out, "routetabd: shard %d/%d (map epoch %d, %d owned sources)\n",
			sh.id, sh.count, sh.epoch, sh.want.Count())
		return eng, false, nil
	}
	if cfg.persist != "" {
		if _, err := os.Stat(cfg.persist); err == nil {
			eng, err := serve.RestoreEngine(cfg.persist)
			switch {
			case err != nil:
				fmt.Fprintf(out, "routetabd: persisted snapshot unusable (%v), cold-building\n", err)
			case eng.Scheme() != cfg.scheme:
				fmt.Fprintf(out, "routetabd: persisted snapshot is %s, want %s; cold-building\n", eng.Scheme(), cfg.scheme)
			default:
				if err := eng.EnablePersist(cfg.persist); err != nil {
					return nil, false, fmt.Errorf("re-enable persistence: %w", err)
				}
				snap := eng.Current()
				fmt.Fprintf(out, "routetabd: warm boot from %s (seq=%d, n=%d)\n", cfg.persist, snap.Seq, snap.N())
				return eng, true, nil
			}
		}
	}
	g, err := loadGraph(cfg)
	if err != nil {
		return nil, false, err
	}
	tier, err := resolveTier(cfg)
	if err != nil {
		return nil, false, err
	}
	var eng *serve.Engine
	if tier == serve.TierTables {
		eng, err = serve.NewTieredEngine(g, cfg.scheme)
	} else {
		eng, err = serve.NewEngine(g, cfg.scheme)
	}
	if err != nil {
		return nil, false, err
	}
	return eng, false, nil
}

// registerServingGauges exposes snapshot-level space figures on /metrics:
// snapshot_bytes is the current snapshot's full arena encoding size, and
// scheme_space_per_node is the routing scheme's own storage in bytes per
// node — the figure the tables tier exists to keep sub-linear in n.
func registerServingGauges(srv *serve.Server) {
	srv.Metrics().GaugeFunc("snapshot_bytes", func() int64 {
		return int64(srv.Engine().Current().ArenaSize())
	})
	srv.Metrics().GaugeFunc("scheme_space_per_node", func() int64 {
		snap := srv.Engine().Current()
		return int64(snap.SpaceBits() / 8 / snap.N())
	})
}

// registerClusterGauges exposes the serving tier and replication position on
// /metrics so operators can graph tables-tier lag alongside QPS: tier (0 =
// full matrix, 1 = scheme tables), wal_seq (primary: last appended record;
// replica: last applied position), and replica_lag_seq (how many records the
// replica was behind at its last sync; 0 on a primary). The gauges read
// through the api's role pointers, so an in-place promotion repoints them.
func registerClusterGauges(a *api) {
	m := a.srv.Metrics()
	m.GaugeFunc("tier", func() int64 {
		if a.srv.Engine().Tier() == serve.TierTables {
			return 1
		}
		return 0
	})
	m.GaugeFunc("wal_seq", func() int64 {
		pri, rpl := a.roles()
		switch {
		case pri != nil:
			return int64(pri.Log().LastSeq())
		case rpl != nil:
			return int64(rpl.WalSeq())
		}
		return 0
	})
	m.GaugeFunc("replica_lag_seq", func() int64 {
		_, rpl := a.roles()
		if rpl == nil {
			return 0
		}
		_, _, lastLag := rpl.Stats()
		return int64(lastLag)
	})
}

// shardInfo is the daemon's view of its place in a partitioned cluster: the
// group it serves, the shard map's shape, and the owned set the map assigns
// to it — kept so observability can report when replicated ownership has
// moved away from what the local map file says (a rebalance in flight).
type shardInfo struct {
	id    int
	count int
	epoch uint64
	want  *keyspace.Set
}

// loadShardInfo reads and validates the -shard-map file and materialises the
// owned set for -shard. Returns nil without -shard.
func loadShardInfo(cfg *config) (*shardInfo, error) {
	if cfg.shardID < 0 {
		return nil, nil
	}
	if cfg.shardMapF == "" {
		return nil, fmt.Errorf("-shard %d requires -shard-map", cfg.shardID)
	}
	blob, err := os.ReadFile(cfg.shardMapF)
	if err != nil {
		return nil, fmt.Errorf("shard map: %w", err)
	}
	m, err := shard.Decode(blob)
	if err != nil {
		return nil, fmt.Errorf("shard map %s: %w", cfg.shardMapF, err)
	}
	owned, err := m.OwnedSet(cfg.shardID)
	if err != nil {
		return nil, fmt.Errorf("shard map %s: %w", cfg.shardMapF, err)
	}
	return &shardInfo{id: cfg.shardID, count: m.Groups, epoch: m.Epoch, want: owned}, nil
}

// writeMapAtomic persists a shard map with the same write-then-rename
// discipline as snapshots: readers see either the old fully-framed map or the
// new one, never a torn file.
func writeMapAtomic(path string, m *shard.Map) error {
	blob, err := m.EncodeBytes()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// runInitMap writes a fresh epoch-1 uniform shard map to -shard-map and
// exits — the bootstrap step before shard-group daemons are started.
func runInitMap(cfg *config, out *os.File) error {
	if cfg.shardGroups < 1 {
		return fmt.Errorf("-shard-map without -shard/-split initialises a map and needs -shard-groups ≥ 1")
	}
	if _, err := os.Stat(cfg.shardMapF); err == nil {
		return fmt.Errorf("shard map %s already exists (use -split to reshape it)", cfg.shardMapF)
	}
	m, err := shard.NewUniform(cfg.n, cfg.shardGroups)
	if err != nil {
		return err
	}
	if err := writeMapAtomic(cfg.shardMapF, m); err != nil {
		return err
	}
	fmt.Fprintf(out, "routetabd: wrote %s: %s\n", cfg.shardMapF, m)
	return nil
}

// runSplitMap carves a new group out of -split's group in the -shard-map
// file: decode, split under a bumped epoch, rewrite atomically, exit. Serving
// daemons pick the new placement up on restart; the in-process live-split
// path (snapshot transfer + WAL catch-up + dual-read handoff) is
// shard.Cluster.Split, exercised by -shard-chaos.
func runSplitMap(cfg *config, out *os.File) error {
	if cfg.shardMapF == "" {
		return fmt.Errorf("-split requires -shard-map")
	}
	blob, err := os.ReadFile(cfg.shardMapF)
	if err != nil {
		return fmt.Errorf("shard map: %w", err)
	}
	m, err := shard.Decode(blob)
	if err != nil {
		return fmt.Errorf("shard map %s: %w", cfg.shardMapF, err)
	}
	next, newID, err := m.Split(cfg.split)
	if err != nil {
		return err
	}
	if err := writeMapAtomic(cfg.shardMapF, next); err != nil {
		return err
	}
	moved, err := next.OwnedSet(newID)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "routetabd: split group %d → new group %d (%d keys moved, epoch %d → %d)\n",
		cfg.split, newID, moved.Count(), m.Epoch, next.Epoch)
	return nil
}

// runShardChaos executes the partitioned-cluster chaos harness (the
// `make shardchaos` CI gate) in-process and renders a pass/fail verdict,
// mirroring runBigCluster.
func runShardChaos(cfg *config, out *os.File) error {
	rep, err := chaos.RunShard(chaos.ShardConfig{
		N:        cfg.n,
		AvgDeg:   cfg.avgdeg,
		Seed:     cfg.seed,
		Groups:   cfg.shardGroups,
		Replicas: cfg.replicas,
		Lookups:  cfg.lookups,
		Workers:  cfg.workers,
	})
	if rep == nil {
		return err
	}
	blob, merr := json.MarshalIndent(rep, "", "  ")
	if merr != nil {
		return merr
	}
	fmt.Fprintln(out, string(blob))
	if cfg.shardCSV != "" {
		if werr := appendCSV(cfg.shardCSV, func(w io.Writer) error {
			return chaos.WriteShardCSV(w, []*chaos.ShardReport{rep})
		}); werr != nil {
			return werr
		}
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "shardchaos ok: %s\n", rep)
	return nil
}

// registerShardGauges exposes the daemon's shard placement on /metrics:
// shard_id / shard_count / shard_map_epoch from the loaded map, and
// rebalance_inflight = 1 while the engine's replicated owned set differs from
// what the local map file assigns this group — a handover has landed (or is
// landing) that the map file does not describe yet. No-op unsharded.
func registerShardGauges(a *api) {
	if a.shard == nil {
		return
	}
	m := a.srv.Metrics()
	m.GaugeFunc("shard_id", func() int64 { return int64(a.shard.id) })
	m.GaugeFunc("shard_count", func() int64 { return int64(a.shard.count) })
	m.GaugeFunc("shard_map_epoch", func() int64 { return int64(a.shard.epoch) })
	m.GaugeFunc("rebalance_inflight", func() int64 { return a.rebalanceInflight() })
}

// runBigSmoke executes the large-graph serving gate in-process and renders a
// pass/fail verdict, mirroring runChaos: a tables-tier landmark build over a
// sparse seeded topology, a spot-graded closed loop with hot swaps, and an
// o(n²) space check.
func runBigSmoke(cfg *config, out *os.File) error {
	rep, err := chaos.RunBig(chaos.BigConfig{
		N:       cfg.n,
		AvgDeg:  cfg.avgdeg,
		Seed:    cfg.seed,
		Lookups: cfg.lookups,
		Workers: cfg.workers,
		Swaps:   cfg.swaps,
	})
	if err != nil {
		return err
	}
	blob, merr := json.MarshalIndent(rep, "", "  ")
	if merr != nil {
		return merr
	}
	fmt.Fprintln(out, string(blob))
	fmt.Fprintf(out, "bigsmoke ok: %s\n", rep)
	return nil
}

// runBigCluster executes the tables-tier replicated chaos harness (the
// `make bigcluster` CI gate) in-process and renders a pass/fail verdict,
// mirroring runClusterChaos.
func runBigCluster(cfg *config, out *os.File) error {
	rep, err := chaos.RunBigCluster(chaos.BigClusterConfig{
		N:        cfg.n,
		AvgDeg:   cfg.avgdeg,
		Seed:     cfg.seed,
		Replicas: cfg.replicas,
		Lookups:  cfg.lookups,
		Workers:  cfg.workers,
	})
	if rep == nil {
		return err
	}
	blob, merr := json.MarshalIndent(rep, "", "  ")
	if merr != nil {
		return merr
	}
	fmt.Fprintln(out, string(blob))
	if cfg.clusterCSV != "" {
		if werr := appendCSV(cfg.clusterCSV, func(w io.Writer) error {
			return chaos.WriteBigClusterCSV(w, []*chaos.BigClusterReport{rep})
		}); werr != nil {
			return werr
		}
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "bigcluster ok: %s\n", rep)
	return nil
}

// runChaos executes the chaos harness in-process and renders a pass/fail
// verdict: the JSON report always prints; a broken invariant exits non-zero.
func runChaos(cfg *config, out *os.File) error {
	rep, err := chaos.Run(chaos.Config{
		N:                  cfg.n,
		Seed:               cfg.seed,
		Scheme:             cfg.scheme,
		Lookups:            cfg.lookups,
		Workers:            cfg.workers,
		Stalls:             cfg.chaosStalls,
		Drops:              cfg.chaosDrops,
		Bursts:             cfg.chaosBursts,
		Kills:              cfg.chaosKills,
		PersistPath:        cfg.persist,
		MaxUnavailableFrac: cfg.chaosBudget,
	})
	if rep == nil {
		return err
	}
	blob, merr := json.MarshalIndent(rep, "", "  ")
	if merr != nil {
		return merr
	}
	fmt.Fprintln(out, string(blob))
	if cfg.chaosCSV != "" {
		if werr := writeChaosCSV(cfg.chaosCSV, rep); werr != nil {
			return werr
		}
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "chaos ok: %s\n", rep)
	return nil
}

// runWireChaos executes the mixed-protocol chaos phase (the `make verify`
// wire smoke) in-process and renders a pass/fail verdict, mirroring runChaos:
// JSON and binary clients race the same engine through real listeners while
// snapshots swap mid-load, and every answer on both wires is graded.
func runWireChaos(cfg *config, out *os.File) error {
	rep, err := chaos.RunWire(chaos.WireConfig{
		N:               cfg.n,
		Seed:            cfg.seed,
		Scheme:          cfg.scheme,
		WorkersPerProto: cfg.workers,
		Lookups:         cfg.lookups,
		Swaps:           cfg.swaps,
	})
	if rep == nil {
		return err
	}
	blob, merr := json.MarshalIndent(rep, "", "  ")
	if merr != nil {
		return merr
	}
	fmt.Fprintln(out, string(blob))
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "wire chaos ok: %s\n", rep)
	return nil
}

// writeChaosCSV appends rep to path, writing the header only when the file
// is new — so a sweep over schemes accumulates one artefact.
func writeChaosCSV(path string, rep *chaos.Report) error {
	return appendCSV(path, func(w io.Writer) error {
		return chaos.WriteCSV(w, []*chaos.Report{rep})
	})
}

// appendCSV appends the rows produced by write (header + body) to path,
// dropping the header row when the file already has content — so repeated
// runs accumulate one artefact.
func appendCSV(path string, write func(io.Writer) error) error {
	if st, err := os.Stat(path); err == nil && st.Size() > 0 {
		f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			return err
		}
		body := buf.String()
		if i := strings.IndexByte(body, '\n'); i >= 0 {
			body = body[i+1:] // drop the header row when appending
		}
		_, err = f.WriteString(body)
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return write(f)
}

// runLoadgen drives the in-process closed loop and renders a pass/fail JSON
// verdict on stdout.
func runLoadgen(srv *serve.Server, cfg *config, out *os.File) error {
	rep, err := loadgen.Run(srv, loadgen.Config{
		Workers:  cfg.workers,
		Lookups:  cfg.lookups,
		Duration: cfg.duration,
		Seed:     cfg.seed,
		HotSwaps: cfg.swaps,
	})
	if err != nil && rep == nil {
		return err
	}
	blob, merr := json.MarshalIndent(rep, "", "  ")
	if merr != nil {
		return merr
	}
	fmt.Fprintln(out, string(blob))
	switch {
	case err != nil:
		return err // incorrect answers: already counted in the report
	case rep.QPS <= 0:
		return fmt.Errorf("loadgen produced no throughput")
	case rep.Rejected > 0:
		return fmt.Errorf("loadgen saw %d rejected lookups", rep.Rejected)
	case rep.Errored > 0:
		return fmt.Errorf("loadgen saw %d errored lookups", rep.Errored)
	}
	fmt.Fprintf(out, "loadgen ok: %s\n", rep)
	return nil
}

// serveHTTP runs the daemon until SIGINT/SIGTERM, then drains gracefully and
// flushes a final persisted snapshot. With -bin-addr an RTBIN1 listener
// serves the binary batch protocol beside HTTP, sharing the same pool.
func serveHTTP(a *api, cfg *config, out *os.File) error {
	registerClusterGauges(a)
	registerShardGauges(a)
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: newHandler(a, cfg.pprofOn)}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	var ws *wire.Server
	if cfg.binAddr != "" {
		binLn, err := net.Listen("tcp", cfg.binAddr)
		if err != nil {
			hs.Close()
			return fmt.Errorf("binary listener: %w", err)
		}
		ws = wire.NewServer(a.srv)
		go func() {
			if err := ws.Serve(binLn); err != nil {
				errc <- fmt.Errorf("binary listener: %w", err)
			}
		}()
		fmt.Fprintf(out, "routetabd: binary protocol (RTBIN1) on %s\n", binLn.Addr())
	}
	srv := a.srv
	fmt.Fprintf(out, "routetabd: serving %s (n=%d, seq=%d, role=%s) on %s\n",
		srv.Engine().Scheme(), srv.Engine().Current().N(), srv.Engine().Current().Seq,
		a.role(), ln.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	select {
	case err := <-errc:
		if ws != nil {
			ws.Close()
		}
		return err
	case sig := <-sigc:
		fmt.Fprintf(out, "routetabd: %v, draining\n", sig)
	}
	return shutdownFlush(hs, ws, a, out)
}

// shutdownFlush is the SIGTERM tail: drain in-flight requests, close the
// binary listener, persist a final snapshot so the daemon warm-boots from
// exactly the state it was serving — even when the last publish-time save
// failed transiently — and fsync + finalize the open WAL segment so the next
// boot recovers a clean (untorn) log and resumes the epoch. No-ops without
// persistence or -wal-dir.
func shutdownFlush(hs *http.Server, ws *wire.Server, a *api, out *os.File) error {
	eng := a.srv.Engine()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return err
	}
	if ws != nil {
		ws.Close()
	}
	if err := eng.FlushPersist(); err != nil {
		return fmt.Errorf("final snapshot flush: %w", err)
	}
	if saves, _, _ := eng.PersistStats(); saves > 0 {
		fmt.Fprintf(out, "routetabd: final snapshot persisted (seq=%d)\n", eng.Current().Seq)
	}
	if a.wal != nil {
		seq := a.wal.LastSeq()
		if err := a.wal.CloseWAL(); err != nil {
			return fmt.Errorf("final WAL finalize: %w", err)
		}
		fmt.Fprintf(out, "routetabd: wal finalized (seq=%d)\n", seq)
	}
	return nil
}

// api is the HTTP facade over one serving stack. Exactly one of pri/rpl is
// set (primary vs replica); a replica's POST /promote swaps rpl out for a
// fresh primary in place, so role reads go through the mutex.
type api struct {
	srv *serve.Server
	rep *serve.Repairer

	mu      sync.Mutex
	pri     *cluster.Primary
	rpl     *cluster.Replica
	wal     *cluster.Log // durable WAL (nil without -wal-dir)
	walKeep int

	shard *shardInfo // partitioned-cluster placement (nil unsharded)

	metricsPool sync.Pool // *bytes.Buffer for /metrics scrapes
}

// rebalanceInflight reports 1 while the engine's owned set has diverged from
// the local shard map's assignment (a replicated ownership handover the map
// file does not describe yet), else 0. An unrestricted engine on a sharded
// daemon also counts as in flight: the restriction has been lifted under it.
func (a *api) rebalanceInflight() int64 {
	if a.shard == nil {
		return 0
	}
	owned := a.srv.Engine().Owned()
	if owned == nil || !owned.Equal(a.shard.want) {
		return 1
	}
	return 0
}

// roles returns the current (primary, replica) pair; at most one is non-nil.
func (a *api) roles() (*cluster.Primary, *cluster.Replica) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.pri, a.rpl
}

func (a *api) role() string {
	switch pri, rpl := a.roles(); {
	case pri != nil:
		return "primary"
	case rpl != nil:
		return "replica"
	default:
		return "standalone"
	}
}

// trimWAL enforces the -wal-keep retention bound after each mutation: a
// replica further behind than walKeep records gets ErrGone and falls back to
// a full state fetch.
func (a *api) trimWAL(pri *cluster.Primary) {
	if pri == nil || a.walKeep <= 0 {
		return
	}
	if last := pri.Log().LastSeq(); last > uint64(a.walKeep) {
		pri.Log().TruncateTo(last - uint64(a.walKeep))
	}
}

// errNotPrimary is the 409 every mutation endpoint returns on a replica:
// mutation belongs to the primary, and applying it locally would fork the
// replicated state.
var errNotPrimary = errors.New("replica: topology mutation belongs to the primary")

func newHandler(a *api, pprofOn bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /nexthop", a.nexthop)
	mux.HandleFunc("GET /route", a.route)
	mux.Handle("POST /batch", httpapi.NewBatchHandler(a.srv))
	mux.HandleFunc("GET /metrics", a.metrics)
	mux.HandleFunc("GET /healthz", a.healthz)
	mux.HandleFunc("POST /mutate", a.mutate)
	mux.HandleFunc("POST /swap", a.swap)
	mux.HandleFunc("POST /fail", a.fail)
	mux.HandleFunc("POST /promote", a.promote)
	mux.Handle("/cluster/", cluster.NewHTTPHandler(func() cluster.Source {
		pri, _ := a.roles()
		if pri == nil {
			return nil
		}
		return pri
	}))
	if pprofOn {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// promote handles POST /promote: turn this replica into the primary under a
// bumped epoch. Idempotence: promoting a member that is already primary
// answers 200 with its current epoch; a standalone daemon answers 409.
func (a *api) promote(w http.ResponseWriter, _ *http.Request) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.pri != nil {
		writeJSON(w, http.StatusOK, map[string]any{
			"ok": true, "role": "primary", "epoch": a.pri.Epoch(), "already": true,
		})
		return
	}
	if a.rpl == nil {
		writeErr(w, http.StatusConflict, fmt.Errorf("not a cluster member"))
		return
	}
	np, err := a.rpl.Promote()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	a.pri, a.rpl = np, nil
	writeJSON(w, http.StatusOK, map[string]any{
		"ok": true, "role": "primary", "epoch": np.Epoch(),
		"snapshot_seq": np.Engine().Current().Seq,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func intParam(r *http.Request, name string) (int, error) {
	v, err := strconv.Atoi(r.URL.Query().Get(name))
	if err != nil {
		return 0, fmt.Errorf("bad %s: %w", name, err)
	}
	return v, nil
}

func (a *api) nexthop(w http.ResponseWriter, r *http.Request) {
	src, err := intParam(r, "src")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	dst, err := intParam(r, "dst")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	res := a.srv.NextHop(src, dst)
	httpapi.SetRetryAfter(w, res)
	writeJSON(w, httpapi.StatusOf(res), httpapi.ToJSON(src, dst, res))
}

func (a *api) route(w http.ResponseWriter, r *http.Request) {
	src, err := intParam(r, "src")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	dst, err := intParam(r, "dst")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	snap := a.srv.Engine().Current()
	tr, err := snap.Route(src, dst)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// DistEstimate is exact on the full tier and a stretch-bounded upper
	// bound on the tables tier, where no all-pairs matrix exists.
	writeJSON(w, http.StatusOK, map[string]any{
		"src": src, "dst": dst, "path": tr.Path, "hops": tr.Hops,
		"dist": snap.DistEstimate(src, dst), "snapshot_seq": snap.Seq,
	})
}

// metrics renders the registry snapshot through a pooled, pre-sized buffer:
// scrapes arrive on a fixed cadence with a near-constant body size, so
// steady-state encoding reuses one buffer instead of growing a fresh one
// per scrape.
func (a *api) metrics(w http.ResponseWriter, _ *http.Request) {
	buf, _ := a.metricsPool.Get().(*bytes.Buffer)
	if buf == nil {
		buf = bytes.NewBuffer(make([]byte, 0, 8<<10))
	}
	defer a.metricsPool.Put(buf)
	buf.Reset()
	enc := json.NewEncoder(buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(a.srv.Metrics().Snapshot()); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

func (a *api) healthz(w http.ResponseWriter, _ *http.Request) {
	eng := a.srv.Engine()
	snap := eng.Current()
	saves, failures, lastErr := eng.PersistStats()
	body := map[string]any{
		"ok":                    true,
		"scheme":                snap.SchemeName(),
		"tier":                  snap.Tier,
		"n":                     snap.N(),
		"snapshot_seq":          snap.Seq,
		"snapshot_codec":        eng.Codec(),
		"swaps":                 eng.Swaps(),
		"space_bits":            snap.SpaceBits(),
		"snapshot_bytes":        snap.ArenaSize(),
		"scheme_space_per_node": int64(snap.SpaceBits() / 8 / snap.N()),
		"persist_saves":         saves,
		"persist_failures":      failures,
	}
	if lastErr != nil {
		body["persist_last_error"] = lastErr.Error()
	}
	if a.rep != nil {
		// Staleness > 0 means the snapshot still routes through failed links
		// and degraded detours are covering the gap until the rebuild lands.
		body["repair_staleness"] = a.rep.Staleness()
		body["degraded"] = a.rep.Staleness() > 0
	}
	if a.shard != nil {
		body["shard_id"] = a.shard.id
		body["shard_count"] = a.shard.count
		body["shard_map_epoch"] = a.shard.epoch
		body["rebalance_inflight"] = a.rebalanceInflight()
	}
	pri, rpl := a.roles()
	body["role"] = a.role()
	switch {
	case pri != nil:
		body["epoch"] = pri.Epoch()
		body["wal_seq"] = pri.Log().LastSeq()
		body["replica_lag_seq"] = 0
		if a.wal != nil {
			durable, walFailures, walErr := a.wal.Durability()
			body["wal_durable"] = durable
			body["wal_failures"] = walFailures
			if walErr != nil {
				body["wal_last_error"] = walErr.Error()
			}
		}
	case rpl != nil:
		applied, resyncs, lastLag := rpl.Stats()
		body["epoch"] = rpl.Epoch()
		body["wal_seq"] = rpl.WalSeq()
		body["wal_applied"] = applied
		body["resyncs"] = resyncs
		body["replay_lag"] = lastLag
		body["replica_lag_seq"] = lastLag
	}
	writeJSON(w, http.StatusOK, body)
}

// failRequest is the POST /fail body: a link or node failure (or repair)
// event, the HTTP face of the faultinject.Target the repairer implements.
type failRequest struct {
	Kind string `json:"kind"` // link | node
	U    int    `json:"u"`
	V    int    `json:"v"`
	Down bool   `json:"down"`
}

func (a *api) fail(w http.ResponseWriter, r *http.Request) {
	if a.rep == nil {
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("no repairer attached"))
		return
	}
	pri, rpl := a.roles()
	if rpl != nil {
		writeErr(w, http.StatusConflict, errNotPrimary)
		return
	}
	var req failRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// Route through the primary when there is one, so the event replicates.
	setLink, setNode := a.rep.SetLinkDown, a.rep.SetNodeDown
	if pri != nil {
		setLink, setNode = pri.SetLinkDown, pri.SetNodeDown
		defer a.trimWAL(pri)
	}
	var err error
	switch req.Kind {
	case "link":
		err = setLink(req.U, req.V, req.Down)
	case "node":
		err = setNode(req.U, req.Down)
	default:
		err = fmt.Errorf("unknown kind %q (link|node)", req.Kind)
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":               true,
		"repair_staleness": a.rep.Staleness(),
	})
}

// mutateRequest is the POST /mutate body.
type mutateRequest struct {
	Op string `json:"op"` // add | remove | toggle
	U  int    `json:"u"`
	V  int    `json:"v"`
}

func (a *api) mutate(w http.ResponseWriter, r *http.Request) {
	pri, rpl := a.roles()
	if rpl != nil {
		writeErr(w, http.StatusConflict, errNotPrimary)
		return
	}
	if pri != nil {
		defer a.trimWAL(pri)
	}
	var req mutateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	snap, err := a.srv.Engine().Mutate(func(g *graph.Graph) error {
		switch req.Op {
		case "add":
			return g.AddEdge(req.U, req.V)
		case "remove":
			return g.RemoveEdge(req.U, req.V)
		case "toggle":
			if g.HasEdge(req.U, req.V) {
				return g.RemoveEdge(req.U, req.V)
			}
			return g.AddEdge(req.U, req.V)
		default:
			return fmt.Errorf("unknown op %q (add|remove|toggle)", req.Op)
		}
	})
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"snapshot_seq": snap.Seq, "edges": snap.Graph.M()})
}

func (a *api) swap(w http.ResponseWriter, _ *http.Request) {
	pri, rpl := a.roles()
	if rpl != nil {
		writeErr(w, http.StatusConflict, errNotPrimary)
		return
	}
	if pri != nil {
		defer a.trimWAL(pri)
	}
	snap, err := a.srv.Engine().Reload()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"snapshot_seq": snap.Seq})
}
