package main

import (
	"bytes"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"testing"

	"routetab/internal/cluster"
	"routetab/internal/cluster/shard"
	"routetab/internal/gengraph"
	"routetab/internal/serve"
	"routetab/internal/serve/chaos"
)

// TestShardMapInitAndSplitCLI drives the map-maintenance commands end to end:
// -shard-map + -shard-groups bootstraps an epoch-1 uniform map, -split
// reshapes it atomically under a bumped epoch, and both refuse nonsense.
func TestShardMapInitAndSplitCLI(t *testing.T) {
	dir := t.TempDir()
	mapPath := dir + "/cluster.rtsmap"
	out, err := os.CreateTemp(dir, "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()

	if err := run([]string{"-shard-map", mapPath, "-shard-groups", "2", "-n", "96"}, out); err != nil {
		t.Fatalf("map init: %v", err)
	}
	blob, err := os.ReadFile(mapPath)
	if err != nil {
		t.Fatal(err)
	}
	m, err := shard.Decode(blob)
	if err != nil {
		t.Fatalf("decode initialised map: %v", err)
	}
	if m.Epoch != 1 || m.Groups != 2 || m.N != 96 {
		t.Fatalf("initialised map: %s", m)
	}
	// Re-initialising over an existing map must be refused, not overwrite.
	if err := run([]string{"-shard-map", mapPath, "-shard-groups", "3", "-n", "96"}, out); err == nil {
		t.Fatal("re-init over an existing map accepted")
	}

	if err := run([]string{"-split", "0", "-shard-map", mapPath}, out); err != nil {
		t.Fatalf("split: %v", err)
	}
	blob, err = os.ReadFile(mapPath)
	if err != nil {
		t.Fatal(err)
	}
	next, err := shard.Decode(blob)
	if err != nil {
		t.Fatalf("decode split map: %v", err)
	}
	if next.Epoch != 2 || next.Groups != 3 {
		t.Fatalf("split map: %s", next)
	}
	// Every node must still land in exactly one live group.
	for u := 1; u <= next.N; u++ {
		if g := next.GroupFor(u); g < 0 || g >= next.Groups {
			t.Fatalf("node %d placed in group %d of %d", u, g, next.Groups)
		}
	}
	if err := run([]string{"-split", "9", "-shard-map", mapPath}, out); err == nil {
		t.Fatal("split of a nonexistent group accepted")
	}
	if err := run([]string{"-split", "0"}, out); err == nil {
		t.Fatal("-split without -shard-map accepted")
	}
	if err := run([]string{"-shard", "0", "-loadgen", "-n", "96"}, out); err == nil {
		t.Fatal("-shard without -shard-map accepted")
	}
}

// shardPrimaryAPI builds a sharded tables-tier daemon facade the way run()
// does for -shard: map loaded from disk, engine restricted to the group's
// owned set, wrapped as a cluster primary.
func shardPrimaryAPI(t *testing.T, n, id, groups int) (*api, *serve.Engine) {
	t.Helper()
	mapPath := t.TempDir() + "/cluster.rtsmap"
	m, err := shard.NewUniform(n, groups)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeMapAtomic(mapPath, m); err != nil {
		t.Fatal(err)
	}
	cfg := &config{n: n, seed: 9, scheme: "landmark", tier: "tables", topo: "sparse",
		avgdeg: 5, shardID: id, shardMapF: mapPath}
	sh, err := loadShardInfo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { devnull.Close() })
	eng, _, err := openEngine(cfg, sh, devnull)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(eng, serve.ServerOptions{Shards: 2})
	rep := serve.NewRepairer(srv, serve.RepairOptions{})
	pri, err := cluster.NewPrimary(eng, srv, rep, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		pri.Close()
		rep.Close()
		srv.Close()
	})
	return &api{srv: srv, rep: rep, pri: pri, shard: sh}, eng
}

// TestShardObservabilitySurfaces: shard_id, shard_count, shard_map_epoch,
// and rebalance_inflight must be visible on /healthz and as /metrics gauges
// (the shard-mode counterpart of TestClusterObservabilitySurfaces), lookups
// must split into owned-served / foreign-refused, and a replicated ownership
// handover the map file does not describe must flip rebalance_inflight.
func TestShardObservabilitySurfaces(t *testing.T) {
	const n, id, groups = 64, 0, 2
	a, eng := shardPrimaryAPI(t, n, id, groups)
	registerClusterGauges(a)
	registerShardGauges(a)
	h := newHandler(a, false)

	code, health := getJSON(t, h, "GET", "/healthz", "")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d %v", code, health)
	}
	if health["shard_id"] != float64(id) || health["shard_count"] != float64(groups) {
		t.Fatalf("healthz placement: id=%v count=%v", health["shard_id"], health["shard_count"])
	}
	if health["shard_map_epoch"] != float64(1) || health["rebalance_inflight"] != float64(0) {
		t.Fatalf("healthz map state: epoch=%v inflight=%v",
			health["shard_map_epoch"], health["rebalance_inflight"])
	}
	_, metrics := getJSON(t, h, "GET", "/metrics", "")
	gauges := metrics["gauges"].(map[string]any)
	if gauges["shard_id"] != float64(id) || gauges["shard_count"] != float64(groups) ||
		gauges["shard_map_epoch"] != float64(1) || gauges["rebalance_inflight"] != float64(0) {
		t.Fatalf("metrics gauges: %v", gauges)
	}
	if gauges["tier"] != float64(1) {
		t.Fatalf("sharded daemon must serve the tables tier: %v", gauges["tier"])
	}

	// An owned source answers; a foreign one is refused with ErrWrongShard.
	owned := eng.Owned()
	var ownedSrc, foreignSrc int
	for u := 1; u <= n; u++ {
		if owned.Has(u) && ownedSrc == 0 {
			ownedSrc = u
		}
		if !owned.Has(u) && foreignSrc == 0 {
			foreignSrc = u
		}
	}
	dst := ownedSrc%n + 1
	if dst == ownedSrc {
		dst = dst%n + 1
	}
	if code, body := getJSON(t, h, "GET",
		"/nexthop?src="+strconv.Itoa(ownedSrc)+"&dst="+strconv.Itoa(dst), ""); code != http.StatusOK {
		t.Fatalf("owned lookup %d→%d: %d %v", ownedSrc, dst, code, body)
	}
	code, body := getJSON(t, h, "GET",
		"/nexthop?src="+strconv.Itoa(foreignSrc)+"&dst="+strconv.Itoa(dst), "")
	if code != http.StatusBadRequest || !strings.Contains(body["error"].(string), "not owned") {
		t.Fatalf("foreign lookup %d→%d: %d %v", foreignSrc, dst, code, body)
	}

	// A handover that moves ownership off what the map file assigns (here:
	// the other group's keyspace, as a split handover would replicate) must
	// flip rebalance_inflight on both surfaces.
	m, err := shard.NewUniform(n, groups)
	if err != nil {
		t.Fatal(err)
	}
	other, err := m.OwnedSet(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.SetOwned(other); err != nil {
		t.Fatal(err)
	}
	if _, health = getJSON(t, h, "GET", "/healthz", ""); health["rebalance_inflight"] != float64(1) {
		t.Fatalf("healthz after handover: inflight=%v", health["rebalance_inflight"])
	}
	_, metrics = getJSON(t, h, "GET", "/metrics", "")
	gauges = metrics["gauges"].(map[string]any)
	if gauges["rebalance_inflight"] != float64(1) {
		t.Fatalf("metrics after handover: %v", gauges["rebalance_inflight"])
	}
}

// TestShardEngineSpaceShrinks pins the economics the shard tier exists for:
// a group's restricted tables-tier snapshot must encode strictly smaller than
// the unrestricted build of the same topology.
func TestShardEngineSpaceShrinks(t *testing.T) {
	const n = 96
	g, err := gengraph.SparseConnected(n, 5, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	full, err := serve.NewTieredEngine(g, "landmark")
	if err != nil {
		t.Fatal(err)
	}
	m, err := shard.NewUniform(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	owned, err := m.OwnedSet(0)
	if err != nil {
		t.Fatal(err)
	}
	restricted, err := serve.NewShardEngine(g, "landmark", serve.TierTables, owned)
	if err != nil {
		t.Fatal(err)
	}
	if fb, rb := full.Current().ArenaSize(), restricted.Current().ArenaSize(); rb >= fb {
		t.Fatalf("restricted snapshot %d bytes, unrestricted %d — no shrink", rb, fb)
	}
}

// TestShardChaosMode runs the partitioned-cluster chaos CLI end to end at a
// CI-friendly n: it must pass, print the verdict, and write the E21 artefact.
func TestShardChaosMode(t *testing.T) {
	dir := t.TempDir()
	csv := dir + "/shard.csv"
	out, err := os.CreateTemp(dir, "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	args := []string{"-shard-chaos", "-n", "192", "-seed", "7", "-shard-groups", "2",
		"-replicas", "1", "-lookups", "6000", "-workers", "3", "-shard-csv", csv}
	if err := run(args, out); err != nil {
		t.Fatalf("shard chaos run: %v", err)
	}
	if _, err := out.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"shardchaos ok", `"spot_violations": 0`, `"split_done": true`,
		`"promoted": true`, `"tables_identical": true`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("shard chaos output missing %q: %s", want, buf.String())
		}
	}
	blob, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(blob)), "\n")
	if len(lines) != 2 || strings.TrimSpace(lines[0]) != chaos.ShardCSVHeader {
		t.Fatalf("csv artefact: %q", string(blob))
	}
}
