package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"routetab/internal/cluster"
	"routetab/internal/gengraph"
	"routetab/internal/serve"
	"routetab/internal/serve/chaos"
)

// primaryAPI builds a full primary daemon facade (engine + server + repairer
// wrapped in a cluster.Primary) the way run() does in serving mode.
func primaryAPI(t *testing.T, n int, walKeep int) (*api, *cluster.Primary) {
	t.Helper()
	g, err := gengraph.GnHalf(n, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := serve.NewEngine(g, "fulltable")
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(eng, serve.ServerOptions{Shards: 2})
	rep := serve.NewRepairer(srv, serve.RepairOptions{})
	pri, err := cluster.NewPrimary(eng, srv, rep, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		pri.Close()
		rep.Close()
		srv.Close()
	})
	return &api{srv: srv, rep: rep, pri: pri, walKeep: walKeep}, pri
}

// TestDaemonRolesAndPromotion exercises the daemon's cluster face end to end
// over real HTTP: a replica joins through /cluster/*, rejects mutation with
// 409, then takes over in place via POST /promote.
func TestDaemonRolesAndPromotion(t *testing.T) {
	pa, pri := primaryAPI(t, 32, 0)
	pts := httptest.NewServer(newHandler(pa, false))
	defer pts.Close()

	rpl, err := cluster.JoinReplica(cluster.NewHTTPSource(pts.URL, nil), cluster.ReplicaOptions{})
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	defer rpl.Close()
	ra := &api{srv: rpl.Server(), rep: rpl.Repairer(), rpl: rpl}
	rh := newHandler(ra, false)

	// Mutation endpoints must 409 on a replica.
	for _, req := range []struct{ target, body string }{
		{"/mutate", `{"op":"toggle","u":1,"v":2}`},
		{"/swap", ""},
		{"/fail", `{"kind":"link","u":1,"v":2,"down":true}`},
	} {
		if code, _ := getJSON(t, rh, "POST", req.target, req.body); code != http.StatusConflict {
			t.Fatalf("POST %s on replica: code %d, want 409", req.target, code)
		}
	}
	// A replica does not feed replication.
	if code, _ := getJSON(t, rh, "GET", "/cluster/digest", ""); code != http.StatusServiceUnavailable {
		t.Fatalf("replica /cluster/digest code %d, want 503", code)
	}

	// Mutations on the primary replicate through the feed.
	if code, _ := getJSON(t, newHandler(pa, false), "POST", "/mutate", `{"op":"toggle","u":1,"v":2}`); code != http.StatusOK {
		t.Fatalf("primary mutate failed: %d", code)
	}
	if err := rpl.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	pd, _ := pri.FetchDigest()
	if rd := rpl.Digest(); !cluster.Converged(pd, rd) {
		t.Fatalf("digests diverge: %v vs %v", pd, rd)
	}
	code, health := getJSON(t, rh, "GET", "/healthz", "")
	if code != http.StatusOK || health["role"] != "replica" || health["epoch"] != float64(1) {
		t.Fatalf("replica healthz: %d %v", code, health)
	}

	// Promotion flips the role in place under a bumped epoch, idempotently.
	code, body := getJSON(t, rh, "POST", "/promote", "")
	if code != http.StatusOK || body["epoch"] != float64(2) {
		t.Fatalf("promote: %d %v", code, body)
	}
	code, body = getJSON(t, rh, "POST", "/promote", "")
	if code != http.StatusOK || body["already"] != true {
		t.Fatalf("second promote: %d %v", code, body)
	}
	if code, _ := getJSON(t, rh, "POST", "/mutate", `{"op":"toggle","u":3,"v":4}`); code != http.StatusOK {
		t.Fatalf("mutate after promotion: code %d, want 200", code)
	}
	if code, _ := getJSON(t, rh, "GET", "/cluster/digest", ""); code != http.StatusOK {
		t.Fatalf("promoted member must feed /cluster/digest")
	}
	if _, health := getJSON(t, rh, "GET", "/healthz", ""); health["role"] != "primary" {
		t.Fatalf("healthz after promotion: %v", health)
	}
	// A standalone daemon (no cluster member at all) cannot promote.
	sa := &api{srv: pa.srv, rep: pa.rep}
	if code, _ := getJSON(t, newHandler(sa, false), "POST", "/promote", ""); code != http.StatusConflict {
		t.Fatalf("standalone promote: code %d, want 409", code)
	}
}

// TestWALKeepTrims checks the -wal-keep retention bound: after enough
// mutations the log's tail is dropped and an old position gets ErrGone.
func TestWALKeepTrims(t *testing.T) {
	pa, pri := primaryAPI(t, 24, 2)
	h := newHandler(pa, false)
	for i := 0; i < 5; i++ {
		if code, _ := getJSON(t, h, "POST", "/mutate", `{"op":"toggle","u":1,"v":2}`); code != http.StatusOK {
			t.Fatalf("mutate %d failed", i)
		}
	}
	if _, err := pri.FetchWAL(0); !errors.Is(err, cluster.ErrGone) {
		t.Fatalf("FetchWAL(0) after trim: %v, want ErrGone", err)
	}
	if last := pri.Log().LastSeq(); last < 5 {
		t.Fatalf("LastSeq = %d, want ≥ 5", last)
	}
	if _, err := pri.FetchWAL(pri.Log().LastSeq() - 2); err != nil {
		t.Fatalf("recent position must stay fetchable: %v", err)
	}
}

// TestSigtermFlushesFinalSnapshot is the shutdown-flush regression test: a
// SIGTERM'd serving daemon must leave a warm-bootable snapshot of exactly
// the state it was serving, even when the publish-time save is missing —
// here the persisted file is deleted mid-run and only the final flush can
// restore it.
func TestSigtermFlushesFinalSnapshot(t *testing.T) {
	dir := t.TempDir()
	persist := dir + "/snap.rtsnap"
	out, err := os.CreateTemp(dir, "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-n", "24", "-seed", "2", "-addr", "127.0.0.1:0",
			"-persist", persist}, out)
	}()

	// The daemon prints its chosen address once the listener is up.
	addrRe := regexp.MustCompile(`on (127\.0\.0\.1:\d+)`)
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatal("daemon never reported its address")
		}
		blob, _ := os.ReadFile(out.Name())
		if m := addrRe.FindSubmatch(blob); m != nil {
			addr = string(m[1])
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	resp, err := http.Post("http://"+addr+"/mutate", "application/json",
		strings.NewReader(`{"op":"toggle","u":1,"v":2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: %s", resp.Status)
	}
	// Wipe the publish-time save so only the SIGTERM flush can recreate it.
	if err := os.Remove(persist); err != nil {
		t.Fatal(err)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit on SIGTERM")
	}

	blob, _ := os.ReadFile(out.Name())
	if !strings.Contains(string(blob), "final snapshot persisted (seq=2)") {
		t.Fatalf("missing flush confirmation in output: %s", blob)
	}
	eng, err := serve.RestoreEngine(persist)
	if err != nil {
		t.Fatalf("warm boot from flushed snapshot: %v", err)
	}
	if snap := eng.Current(); snap.Seq != 2 {
		t.Fatalf("flushed snapshot seq = %d, want 2", snap.Seq)
	}
}

// TestClusterChaosMode runs the replicated chaos CLI end to end with a small
// budget: it must pass and write the E16 CSV artefact.
func TestClusterChaosMode(t *testing.T) {
	dir := t.TempDir()
	csv := dir + "/cluster.csv"
	out, err := os.CreateTemp(dir, "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	args := []string{"-cluster-chaos", "-n", "24", "-seed", "5", "-replicas", "1",
		"-lookups", "10000", "-workers", "2", "-cluster-csv", csv}
	if err := run(args, out); err != nil {
		t.Fatalf("cluster chaos run: %v", err)
	}
	if _, err := out.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cluster chaos ok", `"incorrect": 0`, `"promoted": true`, `"tables_identical": true`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("cluster chaos output missing %q: %s", want, buf.String())
		}
	}
	blob, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(blob)), "\n")
	if len(lines) != 2 || strings.TrimSpace(lines[0]) != strings.TrimSpace(chaos.ClusterCSVHeader) {
		t.Fatalf("csv artefact: %q", string(blob))
	}
}

// TestSigtermFinalizesWAL is the WAL-shutdown regression test (the durable
// counterpart of TestSigtermFlushesFinalSnapshot): a SIGTERM'd primary must
// fsync and finalize its open WAL segment, and the next boot must recover a
// clean log — same epoch, every record replayable, zero torn bytes.
func TestSigtermFinalizesWAL(t *testing.T) {
	dir := t.TempDir()
	walDir := dir + "/wal"
	out, err := os.CreateTemp(dir, "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-n", "24", "-seed", "2", "-addr", "127.0.0.1:0",
			"-wal-dir", walDir}, out)
	}()

	addrRe := regexp.MustCompile(`on (127\.0\.0\.1:\d+)`)
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatal("daemon never reported its address")
		}
		blob, _ := os.ReadFile(out.Name())
		if m := addrRe.FindSubmatch(blob); m != nil {
			addr = string(m[1])
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	for i := 0; i < 2; i++ {
		resp, err := http.Post("http://"+addr+"/mutate", "application/json",
			strings.NewReader(`{"op":"toggle","u":1,"v":2}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mutate %d: %s", i, resp.Status)
		}
	}
	// The healthz surface must report durable journaling with zero failures.
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["wal_durable"] != true || health["wal_failures"] != float64(0) {
		t.Fatalf("healthz wal fields: %v", health)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit on SIGTERM")
	}
	blob, _ := os.ReadFile(out.Name())
	if !strings.Contains(string(blob), "wal finalized (seq=2)") {
		t.Fatalf("missing WAL finalize confirmation in output: %s", blob)
	}

	// Restart path: recovery over the real directory must resume epoch 1
	// with both records replayed and nothing torn or dropped.
	g, err := gengraph.GnHalf(24, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := serve.NewEngine(g, "fulltable")
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(eng, serve.ServerOptions{Shards: 2})
	defer srv.Close()
	rep := serve.NewRepairer(srv, serve.RepairOptions{Debounce: -1})
	defer rep.Close()
	log, rpt, err := cluster.RecoverPrimaryLog(eng, rep, cluster.RecoverConfig{Dir: walDir})
	if err != nil {
		t.Fatalf("recovery after clean shutdown: %v", err)
	}
	defer log.CloseWAL()
	if rpt.EpochBumped || rpt.Epoch != 1 {
		t.Fatalf("clean shutdown must resume epoch 1: %+v", rpt)
	}
	if rpt.Replayed != 2 || rpt.TornBytes != 0 || rpt.DroppedSegments != 0 {
		t.Fatalf("recovery report: %+v", rpt)
	}
	if eng.Current().Seq != 3 {
		t.Fatalf("recovered snapshot seq %d, want 3", eng.Current().Seq)
	}
}

// tablesPrimaryAPI builds a tables-tier daemon facade the way run() does for
// -tier tables with a WAL-less primary: landmark scheme over a sparse
// topology, full cluster citizen.
func tablesPrimaryAPI(t *testing.T, n int) (*api, *cluster.Primary) {
	t.Helper()
	g, err := gengraph.SparseConnected(n, 5, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := serve.NewTieredEngine(g, "landmark")
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(eng, serve.ServerOptions{Shards: 2})
	rep := serve.NewRepairer(srv, serve.RepairOptions{})
	pri, err := cluster.NewPrimary(eng, srv, rep, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		pri.Close()
		rep.Close()
		srv.Close()
	})
	return &api{srv: srv, rep: rep, pri: pri}, pri
}

// TestClusterObservabilitySurfaces: tier, wal_seq, and replica_lag_seq must
// be visible on /healthz and as /metrics gauges, on both halves of a
// tables-tier primary/replica pair.
func TestClusterObservabilitySurfaces(t *testing.T) {
	pa, pri := tablesPrimaryAPI(t, 64)
	registerClusterGauges(pa)
	ph := newHandler(pa, false)
	pts := httptest.NewServer(ph)
	defer pts.Close()

	rpl, err := cluster.JoinReplica(cluster.NewHTTPSource(pts.URL, nil), cluster.ReplicaOptions{})
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	defer rpl.Close()
	ra := &api{srv: rpl.Server(), rep: rpl.Repairer(), rpl: rpl}
	registerClusterGauges(ra)
	rh := newHandler(ra, false)

	// One replicated mutation so wal_seq moves off zero.
	if code, _ := getJSON(t, ph, "POST", "/mutate", `{"op":"toggle","u":1,"v":3}`); code != http.StatusOK {
		t.Fatal("primary mutate failed")
	}
	if err := rpl.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	wantSeq := float64(pri.Log().LastSeq())

	code, health := getJSON(t, ph, "GET", "/healthz", "")
	if code != http.StatusOK || health["tier"] != serve.TierTables {
		t.Fatalf("primary healthz tier: %d %v", code, health["tier"])
	}
	if health["wal_seq"] != wantSeq || health["replica_lag_seq"] != float64(0) {
		t.Fatalf("primary healthz replication fields: wal_seq=%v lag=%v", health["wal_seq"], health["replica_lag_seq"])
	}
	_, metrics := getJSON(t, ph, "GET", "/metrics", "")
	gauges := metrics["gauges"].(map[string]any)
	if gauges["tier"] != float64(1) || gauges["wal_seq"] != wantSeq || gauges["replica_lag_seq"] != float64(0) {
		t.Fatalf("primary metrics gauges: %v", gauges)
	}

	code, health = getJSON(t, rh, "GET", "/healthz", "")
	if code != http.StatusOK || health["tier"] != serve.TierTables || health["role"] != "replica" {
		t.Fatalf("replica healthz: %d %v", code, health)
	}
	if health["wal_seq"] != wantSeq {
		t.Fatalf("replica healthz wal_seq=%v, want %v", health["wal_seq"], wantSeq)
	}
	if _, ok := health["replica_lag_seq"].(float64); !ok {
		t.Fatalf("replica healthz missing replica_lag_seq: %v", health)
	}
	_, metrics = getJSON(t, rh, "GET", "/metrics", "")
	gauges = metrics["gauges"].(map[string]any)
	if gauges["tier"] != float64(1) || gauges["wal_seq"] != wantSeq {
		t.Fatalf("replica metrics gauges: %v", gauges)
	}
	if _, ok := gauges["replica_lag_seq"].(float64); !ok {
		t.Fatalf("replica metrics missing replica_lag_seq: %v", gauges)
	}

	// The full tier reports tier 0 on the same gauge.
	fa, _ := primaryAPI(t, 16, 0)
	registerClusterGauges(fa)
	_, metrics = getJSON(t, newHandler(fa, false), "GET", "/metrics", "")
	gauges = metrics["gauges"].(map[string]any)
	if gauges["tier"] != float64(0) {
		t.Fatalf("full-tier gauge: %v", gauges["tier"])
	}
}
