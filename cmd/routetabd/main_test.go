package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"routetab/internal/gengraph"
	"routetab/internal/serve"
)

func testHandler(t *testing.T, n int, scheme string) (http.Handler, *serve.Server) {
	t.Helper()
	g, err := gengraph.GnHalf(n, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := serve.NewEngine(g, scheme)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(eng, serve.ServerOptions{Shards: 2})
	rep := serve.NewRepairer(srv, serve.RepairOptions{})
	t.Cleanup(func() {
		rep.Close()
		srv.Close()
	})
	return newHandler(&api{srv: srv, rep: rep}, false), srv
}

func getJSON(t *testing.T, h http.Handler, method, target string, body string) (int, map[string]any) {
	t.Helper()
	var r *http.Request
	if body != "" {
		r = httptest.NewRequest(method, target, strings.NewReader(body))
	} else {
		r = httptest.NewRequest(method, target, nil)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	var decoded map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("%s %s: non-JSON response %q", method, target, w.Body.String())
	}
	return w.Code, decoded
}

func TestNextHopEndpoint(t *testing.T) {
	h, _ := testHandler(t, 48, "fulltable")
	code, body := getJSON(t, h, "GET", "/nexthop?src=1&dst=40", "")
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, body)
	}
	next := int(body["next"].(float64))
	dist := int(body["dist"].(float64))
	nextDist := int(body["next_dist"].(float64))
	if next < 1 || nextDist != dist-1 {
		t.Fatalf("answer does not progress: %v", body)
	}
	if code, body := getJSON(t, h, "GET", "/nexthop?src=1&dst=1", ""); code != http.StatusBadRequest {
		t.Fatalf("self lookup: %d %v", code, body)
	}
	if code, _ := getJSON(t, h, "GET", "/nexthop?src=zzz&dst=2", ""); code != http.StatusBadRequest {
		t.Fatalf("bad param accepted: %d", code)
	}
}

func TestRouteEndpoint(t *testing.T) {
	h, _ := testHandler(t, 48, "fulltable")
	code, body := getJSON(t, h, "GET", "/route?src=1&dst=40", "")
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, body)
	}
	path := body["path"].([]any)
	if int(path[0].(float64)) != 1 || int(path[len(path)-1].(float64)) != 40 {
		t.Fatalf("path endpoints: %v", path)
	}
	if int(body["hops"].(float64)) != int(body["dist"].(float64)) {
		t.Fatalf("fulltable route not shortest: %v", body)
	}
}

func TestBatchEndpoint(t *testing.T) {
	h, _ := testHandler(t, 48, "fulltable")
	code, body := getJSON(t, h, "POST", "/batch", `{"pairs":[[1,40],[2,41],[3,42]]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, body)
	}
	results := body["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("results: %v", results)
	}
	for _, raw := range results {
		r := raw.(map[string]any)
		if r["error"] != nil {
			t.Fatalf("batch lookup failed: %v", r)
		}
		if int(r["next_dist"].(float64)) != int(r["dist"].(float64))-1 {
			t.Fatalf("batch answer does not progress: %v", r)
		}
	}
	if code, _ := getJSON(t, h, "POST", "/batch", `{"pairs":[]}`); code != http.StatusBadRequest {
		t.Fatalf("empty batch accepted: %d", code)
	}
	if code, _ := getJSON(t, h, "POST", "/batch", `{`); code != http.StatusBadRequest {
		t.Fatalf("bad JSON accepted: %d", code)
	}
}

func TestMutateSwapHealthMetrics(t *testing.T) {
	h, srv := testHandler(t, 48, "fulltable")
	code, body := getJSON(t, h, "GET", "/healthz", "")
	if code != http.StatusOK || body["ok"] != true || body["scheme"] != "fulltable" {
		t.Fatalf("healthz: %d %v", code, body)
	}
	seq0 := uint64(body["snapshot_seq"].(float64))

	code, body = getJSON(t, h, "POST", "/mutate", `{"op":"toggle","u":1,"v":2}`)
	if code != http.StatusOK {
		t.Fatalf("mutate: %d %v", code, body)
	}
	if got := uint64(body["snapshot_seq"].(float64)); got != seq0+1 {
		t.Fatalf("mutate seq %d after %d", got, seq0)
	}

	code, body = getJSON(t, h, "POST", "/swap", "")
	if code != http.StatusOK || uint64(body["snapshot_seq"].(float64)) != seq0+2 {
		t.Fatalf("swap: %d %v", code, body)
	}

	if code, body = getJSON(t, h, "POST", "/mutate", `{"op":"explode","u":1,"v":2}`); code != http.StatusBadRequest {
		t.Fatalf("bad op accepted: %d %v", code, body)
	}

	// Lookups served so far must be visible in /metrics.
	if res := srv.NextHop(1, 9); res.Err != nil {
		t.Fatal(res.Err)
	}
	code, body = getJSON(t, h, "GET", "/metrics", "")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	counters := body["counters"].(map[string]any)
	if counters["serve_lookups_total"].(float64) < 1 {
		t.Fatalf("metrics counters: %v", counters)
	}
	gauges := body["gauges"].(map[string]any)
	if uint64(gauges["serve_snapshot_seq"].(float64)) != seq0+2 {
		t.Fatalf("metrics gauges: %v", gauges)
	}
}

// TestLoadgenMode runs the CLI's loadgen path end to end: it must print a
// JSON report and succeed on a healthy server.
func TestLoadgenMode(t *testing.T) {
	out, err := os.CreateTemp(t.TempDir(), "loadgen")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	err = run([]string{"-loadgen", "-n", "32", "-seed", "1", "-lookups", "4000", "-workers", "2", "-swaps", "2"}, out)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := out.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(out); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "\"qps\"") || !strings.Contains(text, "loadgen ok") {
		t.Fatalf("loadgen output: %s", text)
	}
}

// TestFailEndpoint drives the repairer over HTTP: a link failure must be
// accepted, reflected in healthz as degraded staleness, and still leave every
// lookup answerable (correct or bounded-degraded); the repair event must
// return the daemon to a healthy state.
func TestFailEndpoint(t *testing.T) {
	h, _ := testHandler(t, 48, "fulltable")
	code, body := getJSON(t, h, "POST", "/fail", `{"kind":"link","u":1,"v":2,"down":true}`)
	if code != http.StatusOK {
		t.Fatalf("fail: %d %v", code, body)
	}
	// Whatever route the scheme picks for 1→2 now, it must not cross 1-2.
	code, body = getJSON(t, h, "GET", "/nexthop?src=1&dst=2", "")
	if code == http.StatusOK && int(body["next"].(float64)) == 2 {
		t.Fatalf("lookup still forwards over the failed link: %v", body)
	}
	code, body = getJSON(t, h, "POST", "/fail", `{"kind":"link","u":1,"v":2,"down":false}`)
	if code != http.StatusOK {
		t.Fatalf("repair: %d %v", code, body)
	}
	if code, body := getJSON(t, h, "POST", "/fail", `{"kind":"teapot","u":1}`); code != http.StatusBadRequest {
		t.Fatalf("bad kind accepted: %d %v", code, body)
	}
	if code, body := getJSON(t, h, "POST", "/fail", `{"kind":"node","u":4900,"down":true}`); code != http.StatusBadRequest {
		t.Fatalf("out-of-range node accepted: %d %v", code, body)
	}
	if code, body := getJSON(t, h, "GET", "/healthz", ""); code != http.StatusOK || body["repair_staleness"] == nil {
		t.Fatalf("healthz missing repair fields: %d %v", code, body)
	}
}

// TestPersistWarmBoot runs the loadgen CLI twice against one persistence
// file: the second run must warm-boot from the snapshot instead of
// cold-building.
func TestPersistWarmBoot(t *testing.T) {
	dir := t.TempDir()
	snap := dir + "/snap.rtsnap"
	for i, want := range []string{"loadgen ok", "warm boot"} {
		out, err := os.CreateTemp(dir, "out")
		if err != nil {
			t.Fatal(err)
		}
		err = run([]string{"-loadgen", "-n", "32", "-seed", "1", "-lookups", "2000",
			"-workers", "2", "-persist", snap}, out)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if _, err := out.Seek(0, 0); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(out); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("run %d output missing %q: %s", i, want, buf.String())
		}
		out.Close()
	}
}

// TestChaosMode runs the chaos CLI end to end with a small budget: it must
// pass, print the verdict, and write the CSV artefact.
func TestChaosMode(t *testing.T) {
	dir := t.TempDir()
	csv := dir + "/chaos.csv"
	out, err := os.CreateTemp(dir, "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	args := []string{"-chaos", "-n", "24", "-seed", "3", "-lookups", "20000", "-workers", "4",
		"-chaos-stalls", "1", "-chaos-drops", "1", "-chaos-bursts", "2", "-chaos-kills", "1",
		"-chaos-csv", csv}
	if err := run(args, out); err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if _, err := out.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "chaos ok") || !strings.Contains(buf.String(), "\"incorrect\": 0") {
		t.Fatalf("chaos output: %s", buf.String())
	}
	// The artefact must accumulate: a second append-run adds a row, one header.
	if err := run(args, out); err != nil {
		t.Fatalf("second chaos run: %v", err)
	}
	blob, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(blob)), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "scheme,") {
		t.Fatalf("csv artefact: %q", string(blob))
	}
}

func TestUnknownSchemeFlag(t *testing.T) {
	if err := run([]string{"-loadgen", "-n", "32", "-scheme", "bogus"}, os.Stdout); err == nil {
		t.Fatal("bogus scheme accepted")
	}
}
