package main

import "testing"

func TestRunSmallSweep(t *testing.T) {
	if err := run([]string{"-sizes", "32,48,64", "-trials", "1", "-pairs", "100"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadSizes(t *testing.T) {
	if err := run([]string{"-sizes", "32,abc"}); err == nil {
		t.Fatal("bad sizes accepted")
	}
	if err := run([]string{"-sizes", "4"}); err == nil {
		t.Fatal("size 4 accepted")
	}
}

func TestRunMarkdown(t *testing.T) {
	if err := run([]string{"-sizes", "32,48,64", "-trials", "1", "-pairs", "100", "-md"}); err != nil {
		t.Fatal(err)
	}
}
