// Command table1 regenerates the paper's Table 1 — the nine-model grid of
// shortest-path routing-scheme sizes — as a measured reproduction on seeded
// uniform random graphs, with growth fits against the claimed bounds.
//
// Usage:
//
//	table1 [-sizes 64,128,256] [-trials 3] [-seed 1] [-pairs 2000]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"routetab/internal/eval"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("table1", flag.ContinueOnError)
	var (
		sizes  = fs.String("sizes", "64,128,256", "comma-separated n sweep")
		trials = fs.Int("trials", 3, "graphs per size")
		seed   = fs.Int64("seed", 1, "experiment seed")
		pairs  = fs.Int("pairs", 2000, "sampled pairs per verification (0 = all)")
		c      = fs.Float64("c", 3, "randomness parameter")
		md     = fs.Bool("md", false, "emit the grid as Markdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := eval.Config{Trials: *trials, Seed: *seed, C: *c, SamplePairs: *pairs}
	for _, part := range strings.Split(*sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("sizes: %w", err)
		}
		cfg.Sizes = append(cfg.Sizes, n)
	}
	res, err := eval.RunAll(cfg)
	if err != nil {
		return err
	}
	if *md {
		fmt.Print(eval.RenderTable1Markdown(res))
	} else {
		fmt.Print(eval.RenderTable1(res))
	}
	fmt.Println()
	averages, err := cfg.Corollary1Averages()
	if err != nil {
		return err
	}
	fmt.Print(eval.RenderAverages(averages))
	fmt.Println()
	fmt.Println("growth fits vs paper claims:")
	for _, s := range []*eval.Series{res.FullTable, res.E1IB, res.E1II, res.E2, res.E3, res.E4, res.E5, res.E10, res.Interval} {
		ok := "MATCH"
		if !s.FitMatchesPaper() {
			ok = fmt.Sprintf("fit %s (paper %s)", s.Fit.Model, s.PaperGrowth)
		}
		fmt.Printf("  %-4s %-45s %s\n", s.ID, s.Title, ok)
	}
	return nil
}
