package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSubcommands(t *testing.T) {
	tests := [][]string{
		{"certify", "-n", "64", "-seed", "1"},
		{"build", "-n", "48", "-model", "II^alpha", "-stretch", "1"},
		{"build", "-n", "48", "-model", "IB^alpha", "-stretch", "1"},
		{"build", "-n", "48", "-model", "IA^alpha", "-stretch", "1"},
		{"build", "-n", "48", "-model", "II^gamma", "-stretch", "1", "-labels"},
		{"route", "-n", "48", "-model", "II^alpha", "-stretch", "2", "-from", "3", "-to", "17"},
		{"verify", "-n", "48", "-model", "II^alpha", "-stretch", "1.5", "-pairs", "200"},
	}
	for _, args := range tests {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		args []string
		want string
	}{
		{nil, "usage"},
		{[]string{"frobnicate"}, "unknown subcommand"},
		{[]string{"build", "-model", "XX^alpha"}, "unknown model"},
		{[]string{"build", "-stretch", "0.5"}, "stretch"},
		{[]string{"route", "-n", "32", "-from", "0"}, ""},
		{[]string{"certify", "-n", "4"}, "too small"},
	}
	for _, tt := range tests {
		err := run(tt.args)
		if err == nil {
			t.Errorf("run(%v): want error", tt.args)
			continue
		}
		if tt.want != "" && !strings.Contains(err.Error(), tt.want) {
			t.Errorf("run(%v): err = %v, want substring %q", tt.args, err, tt.want)
		}
	}
}

func TestRunPortcode(t *testing.T) {
	if err := run([]string{"portcode", "-n", "48", "-pairs", "100", "-payload", "abc"}); err != nil {
		t.Fatal(err)
	}
	// Oversized payload rejected.
	big := strings.Repeat("x", 100000)
	if err := run([]string{"portcode", "-n", "32", "-payload", big}); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestRunResilience(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "resilience.csv")
	args := []string{"resilience", "-n", "32", "-seed", "1", "-pairs", "30",
		"-pmax", "0.1", "-pstep", "0.05", "-schemes", "fulltable,fullinfo", "-out", path}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	csv := string(data)
	if !strings.HasPrefix(csv, "scheme,p,pairs,delivered,delivery_ratio,mean_stretch,") {
		t.Fatalf("csv header: %q", strings.SplitN(csv, "\n", 2)[0])
	}
	// 2 schemes × p ∈ {0, 0.05, 0.10} plus header and trailing newline.
	if lines := strings.Count(csv, "\n"); lines != 7 {
		t.Fatalf("csv lines = %d, want 7:\n%s", lines, csv)
	}
	for _, want := range []string{"fulltable,0.00,", "fullinfo,0.10,"} {
		if !strings.Contains(csv, want) {
			t.Fatalf("csv missing %q:\n%s", want, csv)
		}
	}
	// Identical invocation reproduces the file byte for byte.
	path2 := filepath.Join(dir, "resilience2.csv")
	args[len(args)-1] = path2
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	data2, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("resilience CSV not reproducible across runs")
	}
	// Bad flags surface as errors.
	if err := run([]string{"resilience", "-n", "32", "-pstep", "0"}); err == nil {
		t.Fatal("pstep 0 accepted")
	}
	if err := run([]string{"resilience", "-n", "32", "-schemes", "nonesuch"}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestRunWithGraphFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.edges")
	doc := "n 6\n1 2\n1 3\n1 4\n1 5\n1 6\n2 3\n3 4\n4 5\n5 6\n6 2\n"
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"verify", "-graph", path, "-model", "IA^alpha", "-stretch", "1", "-pairs", "0"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"route", "-graph", path, "-model", "IA^alpha", "-from", "2", "-to", "5"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"build", "-graph", "/nonexistent"}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunGen(t *testing.T) {
	dir := t.TempDir()
	for _, fam := range []string{"gnp", "chain", "cycle", "star", "grid", "tree", "gb"} {
		path := filepath.Join(dir, fam+".edges")
		if err := run([]string{"gen", "-family", fam, "-n", "30", "-out", path}); err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		// Generated files load back through the -graph flag.
		if err := run([]string{"build", "-graph", path, "-model", "IA^alpha"}); err != nil {
			t.Fatalf("%s reload: %v", fam, err)
		}
	}
	if err := run([]string{"gen", "-family", "moebius"}); err == nil {
		t.Fatal("unknown family accepted")
	}
	if err := run([]string{"gen", "-family", "gnp", "-p", "2"}); err == nil {
		t.Fatal("p=2 accepted")
	}
}
