// Command routetab is the library's CLI: generate graphs, certify their
// randomness, build routing schemes per model/stretch, and route messages.
//
// Usage:
//
//	routetab gen     -family gnp -n 256 -seed 1 -out topo.edges
//	routetab certify -n 256 -seed 1 [-c 3]
//	routetab build   -n 256 -seed 1 -model II^alpha -stretch 1
//	routetab route   -n 256 -seed 1 -model II^alpha -stretch 2 -from 3 -to 77
//	routetab verify  -n 256 -seed 1 -model II^gamma -stretch 1 -pairs 2000
//	routetab portcode -n 128 -payload "hidden"
//	routetab resilience -n 64 -seed 1 -pairs 200 -out docs/resilience_n64.csv
//
// Every subcommand accepts -graph <file> to run on an edge-list topology
// instead of a generated one (resilience generates its own seeded graph).
//
// resilience sweeps failure probability p over every requested scheme with
// the deterministic fault-injection engine (link flaps, node crashes,
// per-hop drops/delays/duplication, retries, degraded detours) and reports
// delivery ratio and mean stretch per (scheme, p), as CSV when -out is set.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"

	"routetab/internal/core"
	"routetab/internal/descmethods"
	"routetab/internal/eval"
	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/kolmo"
	"routetab/internal/models"
	"routetab/internal/portcode"
	"routetab/internal/routing"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "routetab:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: routetab <gen|certify|build|route|verify|portcode|resilience> [flags]")
	}
	cmd, rest := args[0], args[1:]

	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	var (
		n       = fs.Int("n", 128, "graph size")
		seed    = fs.Int64("seed", 1, "graph seed (uniform G(n,1/2))")
		c       = fs.Float64("c", 3, "randomness parameter (c·log n)")
		model   = fs.String("model", "II^alpha", "cost model (IA|IB|II)^(alpha|beta|gamma)")
		stretch = fs.Float64("stretch", 1, "stretch budget (≥ 1)")
		from    = fs.Int("from", 1, "route: source node")
		to      = fs.Int("to", 2, "route: destination node")
		pairs   = fs.Int("pairs", 2000, "verify: sampled pairs (0 = all)")
		labels  = fs.Bool("labels", false, "prefer the Theorem 2 label scheme under II^gamma")
		payload = fs.String("payload", "hidden in the port assignment", "portcode: payload to store")
		file    = fs.String("graph", "", "edge-list file to load instead of generating (\"n <count>\" header, \"u v\" lines)")
		family  = fs.String("family", "gnp", "gen: graph family (gnp|chain|cycle|star|grid|tree|gb)")
		p       = fs.Float64("p", 0.5, "gen: edge probability for gnp")
		out     = fs.String("out", "", "gen/resilience: output file (default stdout / none)")
		pmax    = fs.Float64("pmax", 0.2, "resilience: largest failure probability")
		pstep   = fs.Float64("pstep", 0.01, "resilience: failure probability step")
		schemes = fs.String("schemes", "fulltable,compact,hub,interval,fullinfo", "resilience: comma-separated schemes to sweep")
		retries = fs.Int("retries", 3, "resilience: per-send attempt budget")
	)
	if err := fs.Parse(rest); err != nil {
		return err
	}

	if cmd == "gen" {
		return runGen(*family, *n, *p, *seed, *out)
	}
	if cmd == "resilience" {
		return runResilience(*n, *seed, *pairs, *pmax, *pstep, *schemes, *retries, *out)
	}

	var g *graph.Graph
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		defer f.Close()
		if g, err = graph.ReadEdgeList(f); err != nil {
			return err
		}
	} else {
		var err error
		if g, err = gengraph.GnHalf(*n, rand.New(rand.NewSource(*seed))); err != nil {
			return err
		}
	}

	switch cmd {
	case "certify":
		cert, err := kolmo.Certify(g, *c)
		if err != nil {
			return err
		}
		fmt.Println(cert)
		// Run every description method (the paper's proofs as codecs): on a
		// genuinely random graph none of them applies.
		best, derr := kolmo.BestDescription(g, descmethods.AllProofCodecs(*c)...)
		switch {
		case errors.Is(derr, kolmo.ErrNotApplicableCodec):
			fmt.Println("description methods: none applies (incompressible by every proof codec)")
		case derr != nil:
			return derr
		default:
			fmt.Printf("description methods: %s compresses E(G) by %d bits\n", best.Codec, best.Savings)
		}
		if !cert.OK() {
			return fmt.Errorf("graph is not %v·log n-random", *c)
		}
		return nil

	case "build", "route", "verify":
		m, err := models.Parse(*model)
		if err != nil {
			return err
		}
		res, err := core.Build(g, core.Options{
			Model:        m,
			MaxStretch:   *stretch,
			C:            *c,
			PreferLabels: *labels,
		})
		if err != nil {
			return err
		}
		fmt.Printf("construction: %s\n", res.Theorem)
		fmt.Printf("model: %s  n: %d  m: %d edges\n", m, g.N(), g.M())
		fmt.Printf("space: %d bits total (%d function + %d label), max %d bits/node\n",
			res.Space.Total, res.Space.FunctionBits, res.Space.LabelBits, res.Space.MaxFunctionBits)
		if res.Certificate != nil {
			fmt.Printf("certificate: %s\n", res.Certificate)
		}
		switch cmd {
		case "route":
			sim, err := routing.NewSim(g, res.Ports, res.Scheme)
			if err != nil {
				return err
			}
			tr, err := sim.RouteByNode(*from, *to, routing.DefaultHopLimit(g.N()))
			if err != nil {
				return err
			}
			fmt.Printf("route %d→%d: %v (%d hops)\n", *from, *to, tr.Path, tr.Hops)
		case "verify":
			rep, err := res.Verify(g, *pairs, *seed)
			if err != nil {
				return err
			}
			fmt.Println(rep)
			if !rep.AllDelivered() {
				return fmt.Errorf("undelivered pairs: %v", rep.Failures)
			}
		}
		return nil

	case "portcode":
		// The footnote to model II, as a demo: hide the payload in a port
		// assignment, reload it, and confirm routing still works on top.
		data := []byte(*payload)
		nbits := len(data) * 8
		capacity := portcode.Capacity(g)
		if nbits > capacity {
			return fmt.Errorf("payload %d bits exceeds capacity %d", nbits, capacity)
		}
		ports, err := portcode.StoreBits(g, data, nbits)
		if err != nil {
			return err
		}
		back, err := portcode.LoadBits(g, ports, nbits)
		if err != nil {
			return err
		}
		fmt.Printf("capacity: %d bits (Σ ⌊log₂ d(v)!⌋)\n", capacity)
		fmt.Printf("recovered: %q\n", back[:len(data)])
		res, err := core.Build(g, core.Options{Model: models.IAAlpha, MaxStretch: 1, Ports: ports})
		if err != nil {
			return err
		}
		rep, err := res.Verify(g, *pairs, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("routing on payload-carrying ports: %s\n", rep)
		return nil

	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

// runResilience sweeps failure probability across schemes with the
// deterministic fault-injection engine and reports delivery ratio and mean
// stretch per (scheme, p). With -out it also writes the machine-readable CSV
// (identical seeds reproduce it byte for byte).
func runResilience(n int, seed int64, pairs int, pmax, pstep float64, schemes string, retries int, out string) error {
	if pstep <= 0 {
		return fmt.Errorf("resilience: pstep %v must be positive", pstep)
	}
	cfg := eval.DefaultResilienceConfig()
	cfg.N = n
	cfg.Seed = seed
	cfg.Pairs = pairs
	cfg.Retries = retries
	cfg.Probs = nil
	for p := 0.0; p <= pmax+1e-9; p += pstep {
		cfg.Probs = append(cfg.Probs, math.Round(p*1000)/1000)
	}
	cfg.Schemes = nil
	for _, s := range strings.Split(schemes, ",") {
		if s = strings.TrimSpace(s); s != "" {
			cfg.Schemes = append(cfg.Schemes, s)
		}
	}
	res, err := eval.Resilience(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("resilience sweep: n=%d seed=%d pairs=%d retries=%d schemes=%s\n",
		cfg.N, cfg.Seed, cfg.Pairs, cfg.Retries, strings.Join(cfg.Schemes, ","))
	fmt.Print(res)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := res.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("csv written to %s\n", out)
	}
	return nil
}

// runGen generates a graph of the requested family and writes its edge list.
func runGen(family string, n int, p float64, seed int64, out string) error {
	rng := rand.New(rand.NewSource(seed))
	var (
		g   *graph.Graph
		err error
	)
	switch family {
	case "gnp":
		g, err = gengraph.Gnp(n, p, rng)
	case "chain":
		g, err = gengraph.Chain(n)
	case "cycle":
		g, err = gengraph.Cycle(n)
	case "star":
		g, err = gengraph.Star(n)
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		g, err = gengraph.Grid(side, side)
	case "tree":
		g, err = gengraph.RandomTree(n, rng)
	case "gb":
		var gb *gengraph.GB
		if gb, err = gengraph.RandomGB(n/3, rng); err == nil {
			g = gb.G
		}
	default:
		return fmt.Errorf("unknown family %q", family)
	}
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return g.WriteEdgeList(w)
}
