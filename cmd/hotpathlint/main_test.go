package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestLintDirFindsViolations(t *testing.T) {
	dir := filepath.Join("testdata", "hotpkg")
	tagged := map[string]bool{filepath.Clean(filepath.Join(dir, "hot.go")): true}
	vs, err := lintDir(dir, tagged)
	if err != nil {
		t.Fatalf("lintDir: %v", err)
	}
	if len(vs) != 2 {
		t.Fatalf("got %d violations, want 2:\n%s", len(vs), strings.Join(vs, "\n"))
	}
	var sawMap, sawSprintf bool
	for _, v := range vs {
		if !strings.Contains(v, "hot.go") {
			t.Errorf("violation outside the tagged file: %s", v)
		}
		if strings.Contains(v, "map iteration") {
			sawMap = true
		}
		if strings.Contains(v, "fmt.Sprintf") {
			sawSprintf = true
		}
	}
	if !sawMap || !sawSprintf {
		t.Fatalf("missing finding kinds (map=%v sprintf=%v):\n%s", sawMap, sawSprintf, strings.Join(vs, "\n"))
	}
}

func TestHasTag(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"//rt:hotpath\npackage p\n", true},
		{"\t//rt:hotpath extra words\npackage p\n", true},
		{"// prose mentioning //rt:hotpath mid-line\npackage p\n", false},
		{"package p\nconst tag = \"//rt:hotpath\"\n", false},
		{"package p\n", false},
	}
	for _, c := range cases {
		if got := hasTag(c.src); got != c.want {
			t.Errorf("hasTag(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestFindTaggedSkipsTestdata(t *testing.T) {
	files, err := findTagged([]string{"."})
	if err != nil {
		t.Fatalf("findTagged: %v", err)
	}
	for _, f := range files {
		if strings.Contains(f, "testdata") {
			t.Errorf("testdata file tagged: %s", f)
		}
	}
}
