package hotpkg

import "fmt"

// OK lives in the same package without the tag: Sprintf and map ranges are
// fine here and must not be reported.
func OK(m map[int]int) string {
	for k := range m {
		if k == 0 {
			return fmt.Sprintf("zero")
		}
	}
	return ""
}
