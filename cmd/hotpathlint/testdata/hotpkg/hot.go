//rt:hotpath
package hotpkg

import "fmt"

// Bad holds one of each banned construct plus a legal slice range, so the
// linter test can pin exact findings.
func Bad(m map[int]int) string {
	s := ""
	for k, v := range m {
		s += fmt.Sprintf("%d=%d;", k, v)
	}
	for _, v := range []int{1, 2} {
		s += fmt.Sprint(v)
	}
	return s
}
