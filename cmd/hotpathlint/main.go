// Command hotpathlint enforces the //rt:hotpath contract. A file carrying
// the tag has promised an allocation-free steady state (pinned by
// testing.AllocsPerRun), so two constructs are banned there:
//
//   - fmt.Sprintf — allocates its result string on every call, and a format
//     call creeping into a hot loop is the classic way a zero-alloc path
//     quietly regresses (fmt.Errorf on error paths is fine: errors are cold).
//   - range over a map — hides a hash-table walk with randomized order
//     behind innocent syntax; hot paths index slices.
//
// Usage: hotpathlint [dir ...] (default "."). The tool scans every non-test
// .go file under the roots (skipping testdata), type-checks each package
// that contains a tagged file so map detection is exact rather than
// name-based, and prints one file:line per violation, exiting non-zero if
// any were found.
package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

const tag = "//rt:hotpath"

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	tagged, err := findTagged(roots)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotpathlint:", err)
		os.Exit(2)
	}
	byDir := map[string]map[string]bool{}
	for _, f := range tagged {
		dir := filepath.Dir(f)
		if byDir[dir] == nil {
			byDir[dir] = map[string]bool{}
		}
		byDir[dir][f] = true
	}
	dirs := make([]string, 0, len(byDir))
	for d := range byDir {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	var violations []string
	for _, dir := range dirs {
		vs, err := lintDir(dir, byDir[dir])
		if err != nil {
			fmt.Fprintln(os.Stderr, "hotpathlint:", err)
			os.Exit(2)
		}
		violations = append(violations, vs...)
	}
	for _, v := range violations {
		fmt.Println(v)
	}
	if len(violations) > 0 {
		os.Exit(1)
	}
}

// findTagged returns every non-test .go file under the roots whose source
// contains the //rt:hotpath tag, skipping testdata and hidden directories.
func findTagged(roots []string) ([]string, error) {
	var out []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			name := d.Name()
			if d.IsDir() {
				if name == "testdata" || (strings.HasPrefix(name, ".") && name != "." && name != "..") {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				return nil
			}
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			if hasTag(string(src)) {
				out = append(out, filepath.Clean(path))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// hasTag reports whether the source opts in: the tag must begin a comment
// line, so prose or string literals that merely mention it don't tag a file.
func hasTag(src string) bool {
	for _, line := range strings.Split(src, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), tag) {
			return true
		}
	}
	return false
}

// lintDir type-checks the package in dir (all non-test files, so tagged
// files resolve their intra-package references) and walks the tagged files'
// ASTs for banned constructs.
func lintDir(dir string, tagged map[string]bool) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var violations []string
	for _, pkg := range pkgs {
		names := make([]string, 0, len(pkg.Files))
		for name := range pkg.Files {
			names = append(names, name)
		}
		sort.Strings(names)
		files := make([]*ast.File, 0, len(names))
		for _, name := range names {
			files = append(files, pkg.Files[name])
		}
		info := &types.Info{Types: map[ast.Expr]types.TypeAndValue{}, Uses: map[*ast.Ident]types.Object{}}
		conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
		if _, err := conf.Check(dir, fset, files, info); err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", dir, err)
		}
		for _, name := range names {
			if !tagged[filepath.Clean(name)] {
				continue
			}
			violations = append(violations, lintFile(fset, info, pkg.Files[name])...)
		}
	}
	return violations, nil
}

// lintFile reports every fmt.Sprintf call and map range in one tagged file.
func lintFile(fset *token.FileSet, info *types.Info, f *ast.File) []string {
	var out []string
	report := func(pos token.Pos, msg string) {
		out = append(out, fmt.Sprintf("%s: %s", fset.Position(pos), msg))
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sprintf" {
				if id, ok := sel.X.(*ast.Ident); ok && isPackage(info, id, "fmt") {
					report(n.Pos(), "fmt.Sprintf in "+tag+" file (allocates per call; format off the hot path)")
				}
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					report(n.Pos(), "map iteration in "+tag+" file (hash walk, randomized order; index a slice instead)")
				}
			}
		}
		return true
	})
	return out
}

// isPackage reports whether id resolves to the named imported package.
func isPackage(info *types.Info, id *ast.Ident, path string) bool {
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == path
}
