// Command benchjson regenerates the PR 2 performance artefact
// (BENCH_pr2.json): ns/op for the two all-pairs BFS kernels at n ∈ {256,
// 1024}, the shared distance cache cold vs hit, and the E13 resilience-sweep
// wall time. `make bench` writes the checked-in artefact; `make verify` runs
// the -quick one-iteration smoke so the measured paths stay exercised.
//
// Methodology (recorded in EXPERIMENTS.md): every measurement warms up once
// un-timed, then iterates until the time budget is spent (-quick: exactly one
// timed iteration). Graphs are seed-fixed G(n, 1/2) samples, so two runs
// measure the same workload; timings of course vary with the host.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"math/rand"

	"routetab/internal/eval"
	"routetab/internal/gengraph"
	"routetab/internal/shortestpath"
)

// Result is one measurement in the artefact.
type Result struct {
	Name    string  `json:"name"`
	Iters   int     `json:"iters"`
	NsPerOp float64 `json:"ns_per_op"`
}

// Report is the BENCH_pr2.json schema.
type Report struct {
	Artefact   string   `json:"artefact"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Quick      bool     `json:"quick"`
	Results    []Result `json:"results"`
	// BitsetSpeedupN1024 is list ns/op ÷ bitset ns/op on G(1024, 1/2) —
	// the tentpole acceptance ratio (must be ≥ 3).
	BitsetSpeedupN1024 float64 `json:"bitset_speedup_n1024"`
	// CacheSpeedupN256 is uncached ns/op ÷ cached-hit ns/op on G(256, 1/2).
	CacheSpeedupN256 float64 `json:"cache_speedup_n256"`
}

// measure runs fn once un-timed, then iterates until budget is spent
// (budget 0 → exactly one timed iteration).
func measure(name string, budget time.Duration, fn func() error) (Result, error) {
	if err := fn(); err != nil {
		return Result{}, fmt.Errorf("%s warm-up: %w", name, err)
	}
	iters := 0
	start := time.Now()
	for {
		if err := fn(); err != nil {
			return Result{}, fmt.Errorf("%s: %w", name, err)
		}
		iters++
		if time.Since(start) >= budget {
			break
		}
	}
	elapsed := time.Since(start)
	return Result{Name: name, Iters: iters, NsPerOp: float64(elapsed.Nanoseconds()) / float64(iters)}, nil
}

// runSuite produces the full report; split out of main for the smoke test.
func runSuite(quick bool) (*Report, error) {
	budget := 2 * time.Second
	if quick {
		budget = 0
	}
	rep := &Report{
		Artefact:   "BENCH_pr2",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
	}
	var nsPerOp = map[string]float64{}
	add := func(r Result, err error) error {
		if err != nil {
			return err
		}
		nsPerOp[r.Name] = r.NsPerOp
		rep.Results = append(rep.Results, r)
		return nil
	}

	// Old-vs-new BFS: one op = one full n-source all-pairs pass.
	for _, n := range []int{256, 1024} {
		g, err := gengraph.GnHalf(n, rand.New(rand.NewSource(42)))
		if err != nil {
			return nil, err
		}
		g.Neighbors(1)
		for _, k := range []struct {
			name  string
			strat shortestpath.Strategy
		}{
			{"bfs_list", shortestpath.StrategyList},
			{"bfs_bitset", shortestpath.StrategyBitset},
		} {
			k := k
			err := add(measure(fmt.Sprintf("%s_n%d", k.name, n), budget, func() error {
				_, err := shortestpath.AllPairsStrategy(g, k.strat)
				return err
			}))
			if err != nil {
				return nil, err
			}
		}
	}

	// Shared distance cache: cold compute vs (graph, version)-keyed hit.
	{
		g, err := gengraph.GnHalf(256, rand.New(rand.NewSource(43)))
		if err != nil {
			return nil, err
		}
		err = add(measure("allpairs_uncached_n256", budget, func() error {
			_, err := shortestpath.AllPairs(g)
			return err
		}))
		if err != nil {
			return nil, err
		}
		cache := shortestpath.NewCache(2)
		if _, err := cache.AllPairs(g); err != nil {
			return nil, err
		}
		err = add(measure("allpairs_cached_n256", budget, func() error {
			_, err := cache.AllPairs(g)
			return err
		}))
		if err != nil {
			return nil, err
		}
	}

	// E13 resilience sweep wall time (parallel harness end to end). Quick
	// mode mirrors the Makefile smoke scale; full mode runs the two
	// shortest-path schemes at the artefact scale n=64.
	{
		cfg := eval.ResilienceConfig{
			N: 64, Seed: 1, Pairs: 200,
			Probs:   eval.DefaultFailureProbs(),
			Schemes: []string{"fulltable", "fullinfo"},
		}
		name := "e13_sweep_n64"
		if quick {
			cfg = eval.ResilienceConfig{
				N: 32, Seed: 1, Pairs: 40,
				Probs:   []float64{0, 0.05, 0.1},
				Schemes: []string{"fulltable", "fullinfo"},
			}
			name = "e13_sweep_n32"
		}
		err := add(measure(name, 0, func() error { // wall time: one iteration
			_, err := eval.Resilience(cfg)
			return err
		}))
		if err != nil {
			return nil, err
		}
	}

	if l, b := nsPerOp["bfs_list_n1024"], nsPerOp["bfs_bitset_n1024"]; b > 0 {
		rep.BitsetSpeedupN1024 = l / b
	}
	if u, c := nsPerOp["allpairs_uncached_n256"], nsPerOp["allpairs_cached_n256"]; c > 0 {
		rep.CacheSpeedupN256 = u / c
	}
	return rep, nil
}

func run(quick bool, out string) error {
	rep, err := runSuite(quick)
	if err != nil {
		return err
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if out == "" || out == "-" {
		_, err = os.Stdout.Write(blob)
		return err
	}
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("bench artefact written to %s (bitset speedup n=1024: %.1fx)\n",
		out, rep.BitsetSpeedupN1024)
	return nil
}

func main() {
	quick := flag.Bool("quick", false, "one timed iteration per measurement (verify smoke)")
	out := flag.String("out", "-", "output path (default stdout)")
	flag.Parse()
	if err := run(*quick, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
