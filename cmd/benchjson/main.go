// Command benchjson regenerates the checked-in performance artefacts. Each
// run selects measurement sections (-sections) and an artefact name
// (-artefact), so one binary produces both:
//
//	BENCH_pr2.json  (`make bench`):     -sections bfs,cache,resilience
//	  ns/op for the two all-pairs BFS kernels at n ∈ {256, 1024}, the shared
//	  distance cache cold vs hit, and the E13 resilience-sweep wall time.
//	BENCH_pr3.json  (`make loadbench`): -sections serve
//	  closed-loop serving-layer load reports (QPS, p50/p99 latency) for the
//	  fulltable and compact schemes on G(256, 1/2) with ten snapshot
//	  hot-swaps mid-load; the run fails if any lookup is answered
//	  incorrectly, rejected, or errored.
//	BENCH_pr4.json  (`make chaosbench`): -sections chaos
//	  graded chaos-harness reports (availability %, p99 under stall/chaos,
//	  kill-recovery time) for the fulltable and compact schemes on
//	  G(256, 1/2) under seeded churn bursts, shard stalls, batch drops, and
//	  kill+restore cycles; the run fails on any incorrect answer, any detour
//	  beyond +2 hops, any non-byte-identical restore, or a broken
//	  unavailability budget.
//	BENCH_pr5.json  (`make clusterbench`): -sections cluster
//	  replicated cluster chaos reports (per-member QPS, failover latency
//	  after a primary kill + promotion, WAL replay lag, resync count) for a
//	  three-member G(256, 1/2) cluster per scheme, surviving replica
//	  partitions, WAL corruption/truncation, and a primary kill; the run
//	  fails on any incorrect answer, sub-99% availability, or tables that
//	  are not byte-identical at quiesce.
//	BENCH_pr6.json  (`make crashbench`): -sections wal
//	  durable WAL append throughput per fsync policy (always / batch / off)
//	  on a real on-disk segment store: ns per append and the implied
//	  appends/sec, quantifying what PolicyAlways — the only policy that may
//	  resume its epoch after a crash (DESIGN.md §13) — costs per record.
//	BENCH_pr8.json  (`make bigbench`): -sections big
//	  the n-sweep behind the tables tier: bytes/node, build time, spot-graded
//	  serving QPS, and observed stretch for fulltable vs landmark on sparse
//	  topologies up to n=16384 (fulltable capped at 4096 — the all-pairs
//	  ceiling the tier exists to break) plus fulltable vs compact on dense
//	  G(n, 1/2). Fails if landmark does not beat fulltable on bytes/node at
//	  the largest common n or if any spot-graded answer broke stretch 3.
//	BENCH_pr10.json (`make shardbench`): -sections shard
//	  partitioned-cluster chaos vs a single-group baseline at n=4096: a
//	  two-shard-group landmark cluster (live split, partitions, wire
//	  corruption, shard-primary kill) against a 3-member replicated group
//	  on the same topology — aggregate QPS and per-shard resync payloads,
//	  failing unless every shard's resync bytes are strictly below the
//	  baseline's.
//
// `make verify` runs the -quick one-iteration smoke over every section so
// the measured paths stay exercised.
//
// Methodology (recorded in EXPERIMENTS.md): every measurement warms up once
// un-timed, then iterates until the time budget is spent (-quick: exactly one
// timed iteration). Graphs are seed-fixed G(n, 1/2) samples, so two runs
// measure the same workload; timings of course vary with the host.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"math/rand"

	"routetab/internal/cluster/walstore"
	"routetab/internal/eval"
	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/serve"
	"routetab/internal/serve/chaos"
	"routetab/internal/serve/httpapi"
	"routetab/internal/serve/loadgen"
	"routetab/internal/serve/wire"
	"routetab/internal/shortestpath"
)

// WalBench is one fsync policy's measurement in the "wal" section: the cost
// of one durable append (64-byte payload) to an on-disk segment store, and
// the implied sustained append rate.
type WalBench struct {
	Policy        string  `json:"policy"`
	Appends       int     `json:"appends"`
	PayloadBytes  int     `json:"payload_bytes"`
	NsPerAppend   float64 `json:"ns_per_append"`
	AppendsPerSec float64 `json:"appends_per_sec"`
}

// WireBench is one transport's closed-loop measurement in the "wire"
// section: the same seeded workload driven in-process, over JSON HTTP, and
// over the RTBIN1 binary TCP protocol at a given GOMAXPROCS. For the two
// network transports P50/P99 are client-side whole-batch round-trips;
// in-process rows keep the server-side per-job latency (the BENCH_pr3
// convention), so compare transports against each other, not against inproc
// latency.
type WireBench struct {
	Transport  string  `json:"transport"` // inproc | json-http | bin-tcp
	Scheme     string  `json:"scheme"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Lookups    uint64  `json:"lookups"`
	QPS        float64 `json:"qps"`
	P50ns      int64   `json:"p50_ns"`
	P99ns      int64   `json:"p99_ns"`
}

// BigBench is one (family, scheme, n) row in the "big" section: build time,
// snapshot arena size (bytes/node is the o(n²) headline), spot-graded serving
// throughput, and observed stretch ×1000 (1000 = shortest paths).
type BigBench struct {
	Family           string  `json:"family"` // sparse | gnhalf
	N                int     `json:"n"`
	Scheme           string  `json:"scheme"`
	Tier             string  `json:"tier"`
	BuildMs          float64 `json:"build_ms"`
	SnapshotBytes    int     `json:"snapshot_bytes"`
	BytesPerNode     float64 `json:"bytes_per_node"`
	Lookups          uint64  `json:"lookups"`
	QPS              float64 `json:"qps"`
	SpotGraded       uint64  `json:"spot_graded,omitempty"`
	MaxStretchMilli  int64   `json:"max_stretch_milli"`
	MeanStretchMilli int64   `json:"mean_stretch_milli"`
}

// Result is one measurement in the artefact.
type Result struct {
	Name    string  `json:"name"`
	Iters   int     `json:"iters"`
	NsPerOp float64 `json:"ns_per_op"`
}

// ShardBench is the "shard" section's headline row: the sharded cluster's
// aggregate throughput and worst per-shard resync payload against a 3-member
// single-group replicated baseline on the same seeded topology.
type ShardBench struct {
	N                       int     `json:"n"`
	FinalGroups             int     `json:"final_groups"` // groups after the live split
	QPS                     float64 `json:"qps"`
	BaselineQPS             float64 `json:"baseline_qps"`
	MaxShardResyncBytes     int     `json:"max_shard_resync_bytes"`
	BaselineResyncBytes     int     `json:"baseline_resync_bytes"`
	ResyncShrinkPct         float64 `json:"resync_shrink_pct"`
	MinShardAvailabilityPct float64 `json:"min_shard_availability_pct"`
}

// Report is the artefact schema (BENCH_pr2.json, BENCH_pr3.json).
type Report struct {
	Artefact   string   `json:"artefact"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Quick      bool     `json:"quick"`
	Sections   []string `json:"sections"`
	Results    []Result `json:"results,omitempty"`
	// Loadgen carries the serving-layer closed-loop reports (section
	// "serve"): QPS and latency quantiles per scheme, with validation and
	// hot-swap tallies.
	Loadgen []*loadgen.Report `json:"loadgen,omitempty"`
	// Chaos carries the graded chaos-harness reports (section "chaos"):
	// availability, p99 under stall, and kill-recovery time per scheme. The
	// run fails if any lookup was answered incorrectly, any detour exceeded
	// the +2-hop budget, any restore was not byte-identical, or
	// unavailability broke its budget.
	Chaos []*chaos.Report `json:"chaos,omitempty"`
	// Cluster carries the replicated cluster chaos reports (section
	// "cluster"): per-member QPS, failover latency, WAL replay lag, and
	// resync counts for a primary + replicas group surviving partitions,
	// WAL corruption/truncation, and a primary kill + promotion.
	Cluster []*chaos.ClusterReport `json:"cluster,omitempty"`
	// Wire carries the protocol-comparison matrix (section "wire"): the
	// same closed-loop workload over in-process calls, JSON HTTP, and the
	// RTBIN1 binary TCP protocol at GOMAXPROCS 1/4/16. The run fails if the
	// binary transport does not clear 2× the JSON transport's throughput at
	// GOMAXPROCS=1.
	Wire []WireBench `json:"wire,omitempty"`
	// Big carries the large-graph tier sweep (section "big"): bytes/node,
	// build time, and spot-graded serving figures for the tables-tier
	// landmark scheme against full-tier baselines across n up to 16384.
	Big []BigBench `json:"big,omitempty"`
	// BigCluster carries the tables-tier cluster chaos reports (section
	// "bigcluster"): spot-graded availability, failover latency, replay lag,
	// and the resync payload (encoded scheme tables vs the hypothetical n²
	// matrix) for a three-member landmark cluster at n=4096 surviving
	// partitions, WAL corruption/truncation, and a primary kill + promotion.
	BigCluster []*chaos.BigClusterReport `json:"bigcluster,omitempty"`
	// Shard carries the partitioned-cluster chaos reports (section "shard"):
	// a two-shard-group landmark cluster at n=4096 under the shard failure
	// matrix (live split racing churn, per-group partitions, wire
	// corruption, shard-primary kill + promotion), with per-shard
	// availability and resync payloads.
	Shard []*chaos.ShardReport `json:"shard,omitempty"`
	// ShardVsBaseline is the shard section's headline comparison: the
	// sharded cluster's aggregate QPS and worst per-shard resync payload
	// against a 3-member single-group replicated baseline on the same
	// topology. The run fails unless every shard's resync payload is
	// strictly below the baseline's — the byte economics the keyspace
	// partition exists for.
	ShardVsBaseline *ShardBench `json:"shard_vs_baseline,omitempty"`
	// Wal carries the WAL append-throughput measurements (section "wal"):
	// ns per append and appends/sec for each fsync policy on a real on-disk
	// segment store. The fsync=always row is the per-record price of
	// crash-resumable durability.
	Wal []WalBench `json:"wal,omitempty"`
	// BitsetSpeedupN1024 is list ns/op ÷ bitset ns/op on G(1024, 1/2) —
	// the PR 2 tentpole acceptance ratio (must be ≥ 3). Section "bfs".
	BitsetSpeedupN1024 float64 `json:"bitset_speedup_n1024,omitempty"`
	// CacheSpeedupN256 is uncached ns/op ÷ cached-hit ns/op on G(256, 1/2).
	// Section "cache".
	CacheSpeedupN256 float64 `json:"cache_speedup_n256,omitempty"`
}

// knownSections lists every measurement group benchjson understands.
var knownSections = []string{"bfs", "cache", "resilience", "serve", "chaos", "cluster", "wal", "wire", "big", "bigcluster", "shard"}

func parseSections(csv string) (map[string]bool, error) {
	known := map[string]bool{}
	for _, s := range knownSections {
		known[s] = true
	}
	picked := map[string]bool{}
	for _, s := range strings.Split(csv, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		if !known[s] {
			return nil, fmt.Errorf("unknown section %q (have %s)", s, strings.Join(knownSections, ", "))
		}
		picked[s] = true
	}
	if len(picked) == 0 {
		return nil, fmt.Errorf("no sections selected")
	}
	return picked, nil
}

// measure runs fn once un-timed, then iterates until budget is spent
// (budget 0 → exactly one timed iteration).
func measure(name string, budget time.Duration, fn func() error) (Result, error) {
	if err := fn(); err != nil {
		return Result{}, fmt.Errorf("%s warm-up: %w", name, err)
	}
	iters := 0
	start := time.Now()
	for {
		if err := fn(); err != nil {
			return Result{}, fmt.Errorf("%s: %w", name, err)
		}
		iters++
		if time.Since(start) >= budget {
			break
		}
	}
	elapsed := time.Since(start)
	return Result{Name: name, Iters: iters, NsPerOp: float64(elapsed.Nanoseconds()) / float64(iters)}, nil
}

// runSuite produces the report for the selected sections; split out of main
// for the smoke test.
func runSuite(quick bool, artefact string, sections map[string]bool) (*Report, error) {
	budget := 2 * time.Second
	if quick {
		budget = 0
	}
	rep := &Report{
		Artefact:   artefact,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
	}
	for s := range sections {
		rep.Sections = append(rep.Sections, s)
	}
	sort.Strings(rep.Sections)
	var nsPerOp = map[string]float64{}
	add := func(r Result, err error) error {
		if err != nil {
			return err
		}
		nsPerOp[r.Name] = r.NsPerOp
		rep.Results = append(rep.Results, r)
		return nil
	}

	// Old-vs-new BFS: one op = one full n-source all-pairs pass.
	if sections["bfs"] {
		for _, n := range []int{256, 1024} {
			g, err := gengraph.GnHalf(n, rand.New(rand.NewSource(42)))
			if err != nil {
				return nil, err
			}
			g.Neighbors(1)
			for _, k := range []struct {
				name  string
				strat shortestpath.Strategy
			}{
				{"bfs_list", shortestpath.StrategyList},
				{"bfs_bitset", shortestpath.StrategyBitset},
			} {
				k := k
				err := add(measure(fmt.Sprintf("%s_n%d", k.name, n), budget, func() error {
					_, err := shortestpath.AllPairsStrategy(g, k.strat)
					return err
				}))
				if err != nil {
					return nil, err
				}
			}
		}
		if l, b := nsPerOp["bfs_list_n1024"], nsPerOp["bfs_bitset_n1024"]; b > 0 {
			rep.BitsetSpeedupN1024 = l / b
		}
	}

	// Shared distance cache: cold compute vs (graph, version)-keyed hit.
	if sections["cache"] {
		g, err := gengraph.GnHalf(256, rand.New(rand.NewSource(43)))
		if err != nil {
			return nil, err
		}
		err = add(measure("allpairs_uncached_n256", budget, func() error {
			_, err := shortestpath.AllPairs(g)
			return err
		}))
		if err != nil {
			return nil, err
		}
		cache := shortestpath.NewCache(2)
		if _, err := cache.AllPairs(g); err != nil {
			return nil, err
		}
		err = add(measure("allpairs_cached_n256", budget, func() error {
			_, err := cache.AllPairs(g)
			return err
		}))
		if err != nil {
			return nil, err
		}
		if u, c := nsPerOp["allpairs_uncached_n256"], nsPerOp["allpairs_cached_n256"]; c > 0 {
			rep.CacheSpeedupN256 = u / c
		}
	}

	// E13 resilience sweep wall time (parallel harness end to end). Quick
	// mode mirrors the Makefile smoke scale; full mode runs the two
	// shortest-path schemes at the artefact scale n=64.
	if sections["resilience"] {
		cfg := eval.ResilienceConfig{
			N: 64, Seed: 1, Pairs: 200,
			Probs:   eval.DefaultFailureProbs(),
			Schemes: []string{"fulltable", "fullinfo"},
		}
		name := "e13_sweep_n64"
		if quick {
			cfg = eval.ResilienceConfig{
				N: 32, Seed: 1, Pairs: 40,
				Probs:   []float64{0, 0.05, 0.1},
				Schemes: []string{"fulltable", "fullinfo"},
			}
			name = "e13_sweep_n32"
		}
		err := add(measure(name, 0, func() error { // wall time: one iteration
			_, err := eval.Resilience(cfg)
			return err
		}))
		if err != nil {
			return nil, err
		}
	}

	// Serving layer: closed-loop load against routetabd's engine — one
	// million validated lookups per scheme on G(256, 1/2) with ten snapshot
	// hot-swaps mid-load (quick: 20k lookups on G(64, 1/2), two swaps).
	if sections["serve"] {
		n, lookups, swaps := 256, uint64(1_000_000), 10
		if quick {
			n, lookups, swaps = 64, 20_000, 2
		}
		for _, scheme := range []string{"fulltable", "compact"} {
			lrep, err := runLoad(scheme, n, lookups, swaps)
			if err != nil {
				return nil, err
			}
			rep.Loadgen = append(rep.Loadgen, lrep)
		}
	}

	// Chaos harness: graded serving under injected faults — stalls, drops,
	// seeded churn bursts, kill+restore cycles — one million lookups per
	// scheme on G(256, 1/2) (quick: 20k on G(64, 1/2)). The headline figures
	// are availability %, p99 under chaos, and recovery time after a kill.
	if sections["chaos"] {
		n, lookups := 256, uint64(1_000_000)
		if quick {
			n, lookups = 64, 20_000
		}
		for _, scheme := range []string{"fulltable", "compact"} {
			crep, err := chaos.Run(chaos.Config{
				N:       n,
				Seed:    1,
				Scheme:  scheme,
				Lookups: lookups,
			})
			if err != nil {
				return nil, fmt.Errorf("chaos %s: %w", scheme, err)
			}
			rep.Chaos = append(rep.Chaos, crep)
		}
	}

	// Replicated cluster chaos: a primary + two replicas on G(256, 1/2) per
	// scheme under client-side failover, surviving replica partitions, WAL
	// corruption/truncation, and a primary kill + promotion (quick: one
	// replica on G(24, 1/2), 10k lookups). Headline figures are per-member
	// QPS, failover latency, and WAL replay lag.
	if sections["cluster"] {
		n, replicas, lookups, workers := 256, 2, uint64(200_000), 6
		if quick {
			n, replicas, lookups, workers = 24, 1, 10_000, 2
		}
		for _, scheme := range []string{"fulltable", "compact"} {
			crep, err := chaos.RunCluster(chaos.ClusterConfig{
				N:        n,
				Seed:     1,
				Scheme:   scheme,
				Replicas: replicas,
				Lookups:  lookups,
				Workers:  workers,
			})
			if err != nil {
				return nil, fmt.Errorf("cluster %s: %w", scheme, err)
			}
			rep.Cluster = append(rep.Cluster, crep)
		}
	}

	// Protocol matrix (the `make wirebench` artefact BENCH_pr7.json): the
	// same seeded closed loop over in-process calls, JSON HTTP, and binary
	// TCP at GOMAXPROCS 1/4/16 (quick: GOMAXPROCS 1 only). The binary
	// transport must clear 2× JSON throughput at GOMAXPROCS=1 — the
	// tentpole acceptance ratio.
	if sections["wire"] {
		wire, err := runWireMatrix(quick)
		if err != nil {
			return nil, err
		}
		rep.Wire = wire
	}

	// Durable WAL append throughput per fsync policy (the `make crashbench`
	// artefact BENCH_pr6.json): one op = one 64-byte record appended to an
	// on-disk segment store under always / batch / off. fsync=always pays
	// one fdatasync per record — the price of same-epoch crash recovery.
	if sections["wal"] {
		payload := make([]byte, 64)
		for i := range payload {
			payload[i] = byte(i * 37)
		}
		for _, pol := range []walstore.Policy{walstore.PolicyAlways, walstore.PolicyBatch, walstore.PolicyOff} {
			wb, r, err := runWalBench(pol, payload, budget)
			if err != nil {
				return nil, err
			}
			if err := add(r, nil); err != nil {
				return nil, err
			}
			rep.Wal = append(rep.Wal, wb)
		}
	}

	// Large-graph tier sweep (the `make bigbench` artefact BENCH_pr8.json):
	// fulltable (full tier) vs landmark (tables tier) on sparse avg-degree-8
	// topologies across n up to 16384, plus fulltable vs compact on dense
	// G(n, 1/2) where the diameter-2 construction applies. Full-tier rows are
	// strictly validated; tables-tier rows are spot-graded against on-demand
	// BFS ground truth. The headline column is bytes/node: fulltable grows
	// linearly in n (the n² matrix), landmark must not.
	if sections["big"] {
		big, err := runBigSweep(quick)
		if err != nil {
			return nil, err
		}
		rep.Big = big
	}

	// Tables-tier cluster chaos (the `make bigclusterbench` artefact
	// BENCH_pr9.json): a three-member landmark cluster on an n=4096 sparse
	// topology under the full replication failure matrix. The run fails on
	// any spot-graded stretch-3 violation, blown availability budget, failed
	// promotion, or non-identical scheme tables at quiesce.
	if sections["bigcluster"] {
		n, lookups, workers := 4096, 40_000, 4
		if quick {
			n, lookups, workers = 128, 4_000, 2
		}
		bcrep, err := chaos.RunBigCluster(chaos.BigClusterConfig{
			N:        n,
			Seed:     1,
			Replicas: 2,
			Lookups:  uint64(lookups),
			Workers:  workers,
		})
		if err != nil {
			return nil, fmt.Errorf("bigcluster: %w", err)
		}
		rep.BigCluster = append(rep.BigCluster, bcrep)
	}

	// Partitioned-cluster chaos vs the single-group baseline (the
	// `make shardbench` artefact BENCH_pr10.json): the same topology served
	// by a two-shard-group cluster (each group primary + replica behind the
	// scatter-gather front) and by one 3-member replicated group. The run
	// fails on any graded violation in either harness, or if any shard's
	// resync payload is not strictly below the single group's.
	if sections["shard"] {
		n, lookups, workers, seed := 4096, 20_000, 4, int64(1)
		if quick {
			n, lookups, workers, seed = 192, 6_000, 3, 7
		}
		srep, err := chaos.RunShard(chaos.ShardConfig{
			N:        n,
			Seed:     seed,
			Groups:   2,
			Replicas: 1,
			Lookups:  uint64(lookups),
			Workers:  workers,
		})
		if err != nil {
			return nil, fmt.Errorf("shard: %w", err)
		}
		base, err := chaos.RunBigCluster(chaos.BigClusterConfig{
			N:        n,
			Seed:     seed,
			Replicas: 2,
			Lookups:  uint64(lookups),
			Workers:  workers,
		})
		if err != nil {
			return nil, fmt.Errorf("shard baseline: %w", err)
		}
		maxResync, minAvail := 0, 100.0
		for _, s := range srep.PerShard {
			if s.ResyncBytes > maxResync {
				maxResync = s.ResyncBytes
			}
			if s.AvailabilityPct < minAvail {
				minAvail = s.AvailabilityPct
			}
		}
		if maxResync >= base.ResyncBytes {
			return nil, fmt.Errorf("shard: worst per-shard resync payload %d B is not below the single-group baseline %d B",
				maxResync, base.ResyncBytes)
		}
		rep.Shard = append(rep.Shard, srep)
		rep.ShardVsBaseline = &ShardBench{
			N:                       n,
			FinalGroups:             srep.FinalGroups,
			QPS:                     srep.QPS,
			BaselineQPS:             base.QPS,
			MaxShardResyncBytes:     maxResync,
			BaselineResyncBytes:     base.ResyncBytes,
			ResyncShrinkPct:         100 * (1 - float64(maxResync)/float64(base.ResyncBytes)),
			MinShardAvailabilityPct: minAvail,
		}
	}

	return rep, nil
}

// runWalBench times appends under one fsync policy on a throwaway real
// directory, so fsync latency is the disk's, not a memory stub's.
func runWalBench(pol walstore.Policy, payload []byte, budget time.Duration) (WalBench, Result, error) {
	dir, err := os.MkdirTemp("", "walbench-")
	if err != nil {
		return WalBench{}, Result{}, err
	}
	defer os.RemoveAll(dir)
	st, err := walstore.Open(dir, walstore.Options{Fsync: pol})
	if err != nil {
		return WalBench{}, Result{}, err
	}
	name := "wal_append_fsync_" + pol.String()
	seq := uint64(0)
	r, merr := measure(name, budget, func() error {
		seq++
		return st.Append(seq, payload)
	})
	if cerr := st.Close(); cerr != nil && merr == nil {
		merr = fmt.Errorf("%s: close: %w", name, cerr)
	}
	if merr != nil {
		return WalBench{}, Result{}, merr
	}
	return WalBench{
		Policy:        pol.String(),
		Appends:       r.Iters,
		PayloadBytes:  len(payload),
		NsPerAppend:   r.NsPerOp,
		AppendsPerSec: 1e9 / r.NsPerOp,
	}, r, nil
}

// runWireMatrix measures the same fulltable workload across three transports
// at each GOMAXPROCS level, each row on a freshly built server (fresh
// histograms, fresh listeners). GOMAXPROCS is restored afterwards.
func runWireMatrix(quick bool) ([]WireBench, error) {
	const scheme = "fulltable"
	gmps := []int{1, 4, 16}
	n, lookups := 256, uint64(200_000)
	if quick {
		gmps = []int{1}
		n, lookups = 64, 5_000
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var rows []WireBench
	qpsAt := map[[2]any]float64{}
	for _, gmp := range gmps {
		runtime.GOMAXPROCS(gmp)
		for _, transport := range []string{"inproc", "json-http", "bin-tcp"} {
			row, err := runWireRow(transport, scheme, n, gmp, lookups)
			if err != nil {
				return nil, fmt.Errorf("wire %s gomaxprocs=%d: %w", transport, gmp, err)
			}
			rows = append(rows, row)
			qpsAt[[2]any{transport, gmp}] = row.QPS
		}
	}
	// Tentpole acceptance: binary ≥ 2× JSON at GOMAXPROCS=1. Quick mode
	// still checks it — a smoke run that silently loses the headline ratio
	// is worse than a failing one.
	jsonQPS, binQPS := qpsAt[[2]any{"json-http", 1}], qpsAt[[2]any{"bin-tcp", 1}]
	if jsonQPS > 0 && binQPS < 2*jsonQPS {
		return rows, fmt.Errorf("wire: bin-tcp %.0f qps < 2× json-http %.0f qps at GOMAXPROCS=1", binQPS, jsonQPS)
	}
	return rows, nil
}

// runWireRow is one (transport, GOMAXPROCS) measurement. Network transports
// get real loopback listeners and client-side latency; the in-process row is
// the plain loadgen run, shards matched to the GOMAXPROCS level.
func runWireRow(transport, scheme string, n, gmp int, lookups uint64) (WireBench, error) {
	g, err := gengraph.GnHalf(n, rand.New(rand.NewSource(42)))
	if err != nil {
		return WireBench{}, err
	}
	eng, err := serve.NewEngine(g, scheme)
	if err != nil {
		return WireBench{}, err
	}
	srv := serve.NewServer(eng, serve.ServerOptions{Shards: gmp, StretchSampleEvery: -1})
	defer srv.Close()

	cfg := loadgen.Config{Workers: 4, Lookups: lookups, Seed: 1}
	var lrep *loadgen.Report
	switch transport {
	case "inproc":
		lrep, err = loadgen.Run(srv, cfg)
	case "json-http":
		ln, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			return WireBench{}, lerr
		}
		hs := &http.Server{Handler: httpapi.NewBatchHandler(srv)}
		go hs.Serve(ln)
		defer hs.Close()
		client := httpapi.NewBatchClient("http://"+ln.Addr().String(), nil)
		lrep, err = loadgen.RunTarget(client, loadgen.TargetMeta{Scheme: scheme, N: n}, cfg)
	case "bin-tcp":
		ln, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			return WireBench{}, lerr
		}
		ws := wire.NewServer(srv)
		go ws.Serve(ln)
		defer ws.Close()
		client, derr := wire.Dial("bench", ln.Addr().String())
		if derr != nil {
			return WireBench{}, derr
		}
		defer client.Close()
		lrep, err = loadgen.RunTarget(client, loadgen.TargetMeta{Scheme: scheme, N: n}, cfg)
	default:
		return WireBench{}, fmt.Errorf("unknown transport %q", transport)
	}
	if err != nil {
		return WireBench{}, err
	}
	switch {
	case lrep.QPS <= 0:
		return WireBench{}, fmt.Errorf("no throughput")
	case lrep.Incorrect > 0:
		return WireBench{}, fmt.Errorf("%d incorrect lookups", lrep.Incorrect)
	case lrep.Rejected > 0:
		return WireBench{}, fmt.Errorf("%d rejected lookups", lrep.Rejected)
	case lrep.Errored > 0:
		return WireBench{}, fmt.Errorf("%d errored lookups", lrep.Errored)
	}
	return WireBench{
		Transport:  transport,
		Scheme:     scheme,
		GOMAXPROCS: gmp,
		Lookups:    lrep.Lookups,
		QPS:        lrep.QPS,
		P50ns:      lrep.P50ns,
		P99ns:      lrep.P99ns,
	}, nil
}

// runLoad drives one closed-loop load run against a freshly built server and
// fails on any incorrect, rejected, or errored lookup.
func runLoad(scheme string, n int, lookups uint64, swaps int) (*loadgen.Report, error) {
	g, err := gengraph.GnHalf(n, rand.New(rand.NewSource(42)))
	if err != nil {
		return nil, err
	}
	eng, err := serve.NewEngine(g, scheme)
	if err != nil {
		return nil, err
	}
	srv := serve.NewServer(eng, serve.ServerOptions{})
	defer srv.Close()
	rep, err := loadgen.Run(srv, loadgen.Config{
		Workers:  4,
		Lookups:  lookups,
		Seed:     1,
		HotSwaps: swaps,
	})
	if err != nil {
		return rep, fmt.Errorf("serve load %s: %w", scheme, err)
	}
	switch {
	case rep.QPS <= 0:
		return rep, fmt.Errorf("serve load %s: no throughput", scheme)
	case rep.Rejected > 0:
		return rep, fmt.Errorf("serve load %s: %d rejected lookups", scheme, rep.Rejected)
	case rep.Errored > 0:
		return rep, fmt.Errorf("serve load %s: %d errored lookups", scheme, rep.Errored)
	}
	return rep, nil
}

// runBigSweep produces the "big" section rows and enforces the PR-8
// acceptance gates in code: landmark must undercut fulltable on bytes/node at
// the largest n both serve, no spot-graded answer may exceed stretch 3
// (loadgen already fails the row, re-checked here), and in full mode the
// n=16384 landmark row — past the all-pairs ceiling — must build and serve.
func runBigSweep(quick bool) ([]BigBench, error) {
	type rowSpec struct {
		family, scheme string
		tables         bool
		n              int
	}
	var specs []rowSpec
	lookups := uint64(200_000)
	if quick {
		lookups = 10_000
		specs = []rowSpec{
			{"sparse", "fulltable", false, 256},
			{"sparse", "landmark", true, 256},
			{"gnhalf", "fulltable", false, 64},
			{"gnhalf", "compact", false, 64},
		}
	} else {
		for _, n := range []int{256, 1024, 4096} {
			specs = append(specs, rowSpec{"sparse", "fulltable", false, n})
		}
		for _, n := range []int{256, 1024, 4096, 16384} {
			specs = append(specs, rowSpec{"sparse", "landmark", true, n})
		}
		for _, n := range []int{256, 1024} {
			specs = append(specs, rowSpec{"gnhalf", "fulltable", false, n})
			specs = append(specs, rowSpec{"gnhalf", "compact", false, n})
		}
	}
	rows := make([]BigBench, 0, len(specs))
	for _, sp := range specs {
		row, err := runBigRow(sp.family, sp.scheme, sp.tables, sp.n, lookups)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	// Gate 1: at the largest sparse n served by both schemes, the tables
	// tier must be the smaller snapshot per node.
	perNode := func(scheme string) (float64, int) {
		best, bestN := 0.0, 0
		for _, r := range rows {
			if r.Family == "sparse" && r.Scheme == scheme && r.N > bestN {
				best, bestN = r.BytesPerNode, r.N
			}
		}
		return best, bestN
	}
	fullPN, fullN := perNode("fulltable")
	var lmPN float64
	for _, r := range rows {
		if r.Family == "sparse" && r.Scheme == "landmark" && r.N == fullN {
			lmPN = r.BytesPerNode
		}
	}
	if lmPN <= 0 || lmPN >= fullPN {
		return nil, fmt.Errorf("big: landmark %.1f bytes/node does not undercut fulltable %.1f at n=%d", lmPN, fullPN, fullN)
	}
	// Gate 2: zero stretch-3 violations across every spot-graded row.
	for _, r := range rows {
		if r.SpotGraded > 0 && r.MaxStretchMilli > 3000 {
			return nil, fmt.Errorf("big: %s/%s n=%d spot-graded max stretch %d‰ exceeds 3000‰", r.Family, r.Scheme, r.N, r.MaxStretchMilli)
		}
	}
	return rows, nil
}

// runBigRow builds one engine at the requested tier, times the build, and
// drives a validated closed loop against it. Full-tier rows use strict
// grading (observed stretch is exactly 1); tables-tier rows auto-select
// spot grading in loadgen.
func runBigRow(family, scheme string, tables bool, n int, lookups uint64) (BigBench, error) {
	rng := rand.New(rand.NewSource(42))
	var (
		g   *graph.Graph
		err error
	)
	if family == "sparse" {
		g, err = gengraph.SparseConnected(n, 8, rng)
	} else {
		g, err = gengraph.GnHalf(n, rng)
	}
	if err != nil {
		return BigBench{}, fmt.Errorf("big %s/%s n=%d: %w", family, scheme, n, err)
	}
	start := time.Now()
	var eng *serve.Engine
	if tables {
		eng, err = serve.NewTieredEngine(g, scheme)
	} else {
		eng, err = serve.NewEngine(g, scheme)
	}
	if err != nil {
		return BigBench{}, fmt.Errorf("big %s/%s n=%d: %w", family, scheme, n, err)
	}
	build := time.Since(start)
	srv := serve.NewServer(eng, serve.ServerOptions{StretchSampleEvery: -1})
	defer srv.Close()
	lrep, err := loadgen.Run(srv, loadgen.Config{
		Workers: 4,
		Lookups: lookups,
		Seed:    1,
	})
	if err != nil {
		return BigBench{}, fmt.Errorf("big %s/%s n=%d: %w", family, scheme, n, err)
	}
	size := eng.Current().ArenaSize()
	row := BigBench{
		Family:        family,
		N:             n,
		Scheme:        scheme,
		Tier:          eng.Tier(),
		BuildMs:       float64(build.Nanoseconds()) / 1e6,
		SnapshotBytes: size,
		BytesPerNode:  float64(size) / float64(n),
		Lookups:       lrep.Lookups,
		QPS:           lrep.QPS,
		SpotGraded:    lrep.SpotGraded,
	}
	if lrep.SpotGraded > 0 {
		row.MaxStretchMilli = lrep.SpotMaxStretchMilli
		row.MeanStretchMilli = lrep.SpotMeanStretchMilli
	} else {
		// Strictly validated rows answer with exact shortest paths.
		row.MaxStretchMilli, row.MeanStretchMilli = 1000, 1000
	}
	return row, nil
}

func run(quick bool, artefact, sectionsCSV, out string) error {
	sections, err := parseSections(sectionsCSV)
	if err != nil {
		return err
	}
	rep, err := runSuite(quick, artefact, sections)
	if err != nil {
		return err
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if out == "" || out == "-" {
		_, err = os.Stdout.Write(blob)
		return err
	}
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("bench artefact %s written to %s (sections: %s)\n",
		artefact, out, strings.Join(rep.Sections, ","))
	return nil
}

func main() {
	quick := flag.Bool("quick", false, "one timed iteration per measurement (verify smoke)")
	artefact := flag.String("artefact", "BENCH_pr2", "artefact name recorded in the report header")
	sections := flag.String("sections", "bfs,cache,resilience", "comma-separated measurement sections: "+strings.Join(knownSections, ","))
	out := flag.String("out", "-", "output path (default stdout)")
	flag.Parse()
	if err := run(*quick, *artefact, *sections, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
