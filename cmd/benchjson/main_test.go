package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestQuickSuite runs the one-iteration smoke in-process: every measured path
// must succeed and the artefact must carry all expected entries.
func TestQuickSuite(t *testing.T) {
	rep, err := runSuite(true)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"bfs_list_n256": false, "bfs_bitset_n256": false,
		"bfs_list_n1024": false, "bfs_bitset_n1024": false,
		"allpairs_uncached_n256": false, "allpairs_cached_n256": false,
		"e13_sweep_n32": false,
	}
	for _, r := range rep.Results {
		if _, ok := want[r.Name]; !ok {
			t.Errorf("unexpected result %q", r.Name)
			continue
		}
		want[r.Name] = true
		if r.Iters < 1 || r.NsPerOp <= 0 {
			t.Errorf("%s: iters=%d ns/op=%v", r.Name, r.Iters, r.NsPerOp)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("missing result %q", name)
		}
	}
	if rep.BitsetSpeedupN1024 <= 0 || rep.CacheSpeedupN256 <= 0 {
		t.Errorf("speedup ratios not computed: %+v", rep)
	}
}

func TestRunWritesJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run(true, out); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("artefact is not valid JSON: %v", err)
	}
	if rep.Artefact != "BENCH_pr2" || !rep.Quick {
		t.Fatalf("unexpected report header: %+v", rep)
	}
}
