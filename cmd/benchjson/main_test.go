package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func sectionSet(t *testing.T, csv string) map[string]bool {
	t.Helper()
	s, err := parseSections(csv)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestQuickSuite runs the one-iteration smoke in-process over the PR 2
// sections: every measured path must succeed and the artefact must carry all
// expected entries.
func TestQuickSuite(t *testing.T) {
	rep, err := runSuite(true, "BENCH_pr2", sectionSet(t, "bfs,cache,resilience"))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"bfs_list_n256": false, "bfs_bitset_n256": false,
		"bfs_list_n1024": false, "bfs_bitset_n1024": false,
		"allpairs_uncached_n256": false, "allpairs_cached_n256": false,
		"e13_sweep_n32": false,
	}
	for _, r := range rep.Results {
		if _, ok := want[r.Name]; !ok {
			t.Errorf("unexpected result %q", r.Name)
			continue
		}
		want[r.Name] = true
		if r.Iters < 1 || r.NsPerOp <= 0 {
			t.Errorf("%s: iters=%d ns/op=%v", r.Name, r.Iters, r.NsPerOp)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("missing result %q", name)
		}
	}
	if rep.BitsetSpeedupN1024 <= 0 || rep.CacheSpeedupN256 <= 0 {
		t.Errorf("speedup ratios not computed: %+v", rep)
	}
}

// TestServeSection runs the quick serving-layer load section: both schemes
// must report throughput with zero incorrect/rejected/errored lookups and
// the configured hot-swaps performed.
func TestServeSection(t *testing.T) {
	rep, err := runSuite(true, "BENCH_pr3", sectionSet(t, "serve"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Errorf("serve-only run produced ns/op results: %+v", rep.Results)
	}
	if len(rep.Loadgen) != 2 {
		t.Fatalf("loadgen reports: %d", len(rep.Loadgen))
	}
	schemes := map[string]bool{}
	for _, lr := range rep.Loadgen {
		schemes[lr.Scheme] = true
		if lr.QPS <= 0 || lr.Lookups == 0 {
			t.Errorf("%s: no throughput: %+v", lr.Scheme, lr)
		}
		if lr.Incorrect != 0 || lr.Rejected != 0 || lr.Errored != 0 {
			t.Errorf("%s: unhealthy run: %+v", lr.Scheme, lr)
		}
		if lr.Swaps < 2 {
			t.Errorf("%s: swaps = %d", lr.Scheme, lr.Swaps)
		}
	}
	if !schemes["fulltable"] || !schemes["compact"] {
		t.Errorf("schemes covered: %v", schemes)
	}
}

func TestParseSectionsRejectsUnknown(t *testing.T) {
	if _, err := parseSections("bfs,warp"); err == nil {
		t.Fatal("unknown section accepted")
	}
	if _, err := parseSections(""); err == nil {
		t.Fatal("empty section list accepted")
	}
}

func TestRunWritesJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run(true, "BENCH_pr2", "cache", out); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("artefact is not valid JSON: %v", err)
	}
	if rep.Artefact != "BENCH_pr2" || !rep.Quick || len(rep.Sections) != 1 || rep.Sections[0] != "cache" {
		t.Fatalf("unexpected report header: %+v", rep)
	}
}

// TestChaosSection runs the quick chaos section: both schemes must grade
// clean — zero incorrect, bounded detours, byte-identical restores — and
// report the headline recovery/availability figures.
func TestChaosSection(t *testing.T) {
	rep, err := runSuite(true, "BENCH_pr4", sectionSet(t, "chaos"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Chaos) != 2 {
		t.Fatalf("chaos reports: %d, want 2", len(rep.Chaos))
	}
	for _, c := range rep.Chaos {
		if c.Incorrect != 0 {
			t.Errorf("%s: %d incorrect answers", c.Scheme, c.Incorrect)
		}
		if c.MaxDetourExtraHops > 2 {
			t.Errorf("%s: detour extra %d", c.Scheme, c.MaxDetourExtraHops)
		}
		if !c.RestoredIdentical || !c.SelfHealed {
			t.Errorf("%s: restored=%v healed=%v", c.Scheme, c.RestoredIdentical, c.SelfHealed)
		}
		if c.RecoveryNs <= 0 || c.QPS <= 0 {
			t.Errorf("%s: recovery=%d qps=%v", c.Scheme, c.RecoveryNs, c.QPS)
		}
	}
}

// TestClusterSection runs the quick replicated-cluster section: both schemes
// must survive the full chaos sequence (partition, corruption, truncation,
// primary kill + promotion) with zero incorrect answers and byte-identical
// tables, and the failover headline figures must be recorded.
func TestClusterSection(t *testing.T) {
	rep, err := runSuite(true, "BENCH_pr5", sectionSet(t, "cluster"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cluster) != 2 {
		t.Fatalf("cluster reports: %d, want 2", len(rep.Cluster))
	}
	for _, c := range rep.Cluster {
		if c.Incorrect != 0 {
			t.Errorf("%s: %d incorrect answers", c.Scheme, c.Incorrect)
		}
		if !c.Promoted || c.FinalEpoch != 2 {
			t.Errorf("%s: promoted=%v epoch=%d", c.Scheme, c.Promoted, c.FinalEpoch)
		}
		if c.FailoverNs <= 0 {
			t.Errorf("%s: failover latency not measured", c.Scheme)
		}
		if !c.DigestsConverged || !c.TablesIdentical {
			t.Errorf("%s: digests=%v identical=%v", c.Scheme, c.DigestsConverged, c.TablesIdentical)
		}
		if len(c.PerMember) == 0 || c.QPS <= 0 {
			t.Errorf("%s: per-member accounting missing: %+v", c.Scheme, c.PerMember)
		}
	}
}

// TestWalSection runs the quick WAL append-throughput section: all three
// fsync policies must report positive throughput, and the section must
// surface both the per-policy rows and the generic ns/op results.
func TestWalSection(t *testing.T) {
	rep, err := runSuite(true, "BENCH_pr6", sectionSet(t, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Wal) != 3 {
		t.Fatalf("wal rows: %d, want 3 (always/batch/off)", len(rep.Wal))
	}
	policies := map[string]bool{}
	for _, w := range rep.Wal {
		policies[w.Policy] = true
		if w.Appends < 1 || w.NsPerAppend <= 0 || w.AppendsPerSec <= 0 {
			t.Errorf("%s: appends=%d ns=%v qps=%v", w.Policy, w.Appends, w.NsPerAppend, w.AppendsPerSec)
		}
		if w.PayloadBytes != 64 {
			t.Errorf("%s: payload %d bytes", w.Policy, w.PayloadBytes)
		}
	}
	for _, p := range []string{"always", "batch", "off"} {
		if !policies[p] {
			t.Errorf("policy %q missing: %v", p, policies)
		}
	}
	if len(rep.Results) != 3 {
		t.Errorf("wal section results: %+v", rep.Results)
	}
}

// TestBigClusterSection runs the quick tables-tier cluster section: the
// landmark cluster must survive the full failure matrix with zero spot
// violations, record the failover and resync-economics headline figures, and
// ship a resync payload smaller than the hypothetical n² matrix.
func TestBigClusterSection(t *testing.T) {
	rep, err := runSuite(true, "BENCH_pr9", sectionSet(t, "bigcluster"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.BigCluster) != 1 {
		t.Fatalf("bigcluster reports: %d, want 1", len(rep.BigCluster))
	}
	c := rep.BigCluster[0]
	if c.SpotViolations != 0 || c.SpotGraded == 0 {
		t.Errorf("spot grading: graded=%d violations=%d", c.SpotGraded, c.SpotViolations)
	}
	if !c.Promoted || c.FinalEpoch != 2 {
		t.Errorf("promoted=%v epoch=%d", c.Promoted, c.FinalEpoch)
	}
	if c.FailoverNs <= 0 {
		t.Errorf("failover latency not measured")
	}
	if !c.DigestsConverged || !c.TablesIdentical {
		t.Errorf("digests=%v identical=%v", c.DigestsConverged, c.TablesIdentical)
	}
	if c.ResyncBytes <= 0 || uint64(c.ResyncBytes) >= c.MatrixBytes {
		t.Errorf("resync %d B vs matrix %d B: compact tier must undercut the matrix", c.ResyncBytes, c.MatrixBytes)
	}
	if len(c.PerMember) == 0 || c.QPS <= 0 {
		t.Errorf("per-member accounting missing: %+v", c.PerMember)
	}
}
