// Census builds the optimal shortest-path scheme for one graph under each
// of the paper's nine cost models and prints the resulting Table-1-style
// grid, then demonstrates the model II footnote: a port assignment is a free
// side channel worth Σ⌊log₂ d(v)!⌋ bits.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"routetab"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 192
	g, err := routetab.RandomGraph(n, 5)
	if err != nil {
		return err
	}
	cert, err := routetab.Certify(g, 3)
	if err != nil {
		return err
	}
	fmt.Println("graph:", cert)
	fmt.Println()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "model\tconstruction\ttotal bits\tbits/node\tlabel bits")
	for _, m := range routetab.AllModels() {
		opts := routetab.Options{Model: m, MaxStretch: 1}
		// Under γ with neighbours known, the Theorem 2 scheme is the
		// paper's space-optimal choice.
		if m == routetab.ModelII(routetab.RelabelFree) {
			opts.PreferLabels = true
		}
		res, err := routetab.Build(g, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", m, err)
		}
		rep, err := res.Verify(g, 800, 3)
		if err != nil {
			return err
		}
		if !rep.AllDelivered() || rep.MaxStretch != 1 {
			return fmt.Errorf("%s: verification failed: %s", m, rep)
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.1f\t%d\n",
			m, res.Theorem, res.Space.Total,
			float64(res.Space.Total)/float64(n), res.Space.LabelBits)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Footnote to model II: the port assignment itself is log(d!) free bits
	// per node — which is why II must not be combined with free ports.
	capacity := routetab.PortCapacityBits(g)
	payload := []byte("side channel: the port assignment stores this sentence for free")
	ports, err := routetab.StoreInPorts(g, payload, len(payload)*8)
	if err != nil {
		return err
	}
	back, err := routetab.LoadFromPorts(g, ports, len(payload)*8)
	if err != nil {
		return err
	}
	fmt.Printf("\nfootnote demo: port-assignment capacity %d bits (≈ n·log₂((n/2)!))\n", capacity)
	fmt.Printf("stored and recovered through ports alone: %q\n", back[:len(payload)])
	return nil
}
