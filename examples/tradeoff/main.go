// Tradeoff sweeps the paper's stretch/space frontier (Theorems 1–5) on one
// random graph: shortest path costs Θ(n²) bits, stretch 1.5 costs
// Θ(n log n), stretch 2 costs Θ(n loglog n), and stretch O(log n) costs
// Θ(n) — each point verified by actually routing.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"routetab"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 256
	g, err := routetab.RandomGraph(n, 7)
	if err != nil {
		return err
	}
	budgets := []struct {
		name    string
		stretch float64
	}{
		{"shortest path (Thm 1)", 1},
		{"stretch 1.5 (Thm 3)", 1.5},
		{"stretch 2 (Thm 4)", 2},
		{"stretch O(log n) (Thm 5)", 1000},
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "construction\tbudget\ttotal bits\tbits/node\tmeasured max stretch\tmax hops")
	for _, b := range budgets {
		res, err := routetab.Build(g, routetab.Options{
			Model:      routetab.ModelII(routetab.RelabelNone),
			MaxStretch: b.stretch,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", b.name, err)
		}
		rep, err := res.Verify(g, 3000, 1)
		if err != nil {
			return err
		}
		if !rep.AllDelivered() {
			return fmt.Errorf("%s: undelivered pairs %v", b.name, rep.Failures)
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%d\t%.1f\t%.3f\t%d\n",
			b.name, b.stretch, res.Space.Total,
			float64(res.Space.Total)/float64(n), rep.MaxStretch, rep.MaxHops)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// The γ-model alternative: Theorem 2 moves the bits into labels.
	res, err := routetab.Build(g, routetab.Options{
		Model:        routetab.ModelII(routetab.RelabelFree),
		MaxStretch:   1,
		PreferLabels: true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nTheorem 2 (II^gamma): %d function bits + %d label bits = %d total (O(n·log²n))\n",
		res.Space.FunctionBits, res.Space.LabelBits, res.Space.Total)
	return nil
}
