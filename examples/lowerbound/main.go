// Lowerbound demonstrates Theorem 9 end to end: build the explicit Figure-1
// graph family with a hidden random permutation, route on it with stretch
// < 2, and reconstruct the permutation purely from the routing functions'
// answers — proving they carry k·log₂(k!) bits, the paper's Ω(n² log n)
// worst-case floor.
package main

import (
	"fmt"
	"log"

	"routetab"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const k = 60 // n = 3k = 180 nodes
	gb, err := routetab.NewLowerBoundFamily(k, 99)
	if err != nil {
		return err
	}
	fmt.Printf("Figure 1 family: n=%d nodes (k=%d), hidden permutation of {1..%d}\n",
		gb.G.N(), k, k)

	// Any stretch < 2 scheme works; the trivial table routes shortest paths.
	res, err := routetab.Build(gb.G, routetab.Options{
		Model:      routetab.ModelIA(routetab.RelabelNone),
		MaxStretch: 1,
	})
	if err != nil {
		return err
	}
	sim, err := routetab.NewSim(gb.G, res.Ports, res.Scheme)
	if err != nil {
		return err
	}

	// Read the permutation back out of the local routing functions.
	ex, err := routetab.ExtractPermutation(gb, sim)
	if err != nil {
		return err
	}
	if err := routetab.VerifyExtraction(gb, ex); err != nil {
		return fmt.Errorf("extraction mismatch: %w", err)
	}
	fmt.Println("extraction: hidden permutation recovered exactly from routing answers")

	// The entropy ledger.
	perNode := routetab.PermutationEntropyBits(k)
	fmt.Printf("information content: log₂(k!) = %.1f bits per bottom node\n", perNode)
	fmt.Printf("total across k bottom nodes: %.0f bits ≈ (n²/9)·log n — Theorem 9's Ω(n² log n)\n",
		ex.TotalBits)
	fmt.Printf("the scheme actually used %d bits in total (upper bound side)\n", res.Space.Total)

	// Show a couple of the forced routes.
	for _, top := range []int{2*k + 1, 2*k + 2} {
		tr, err := sim.RouteByNode(1, top, 8)
		if err != nil {
			return err
		}
		fmt.Printf("forced route bottom 1 → top %d: %v (unique 2-hop path)\n", top, tr.Path)
	}
	return nil
}
