// Overlay runs a 200-node overlay network on the concurrent goroutine-per-
// node simulator, comparing two memory budgets under live traffic, then
// injects link failures and shows the full-information scheme (Theorem 10)
// routing around them — the failover capability the paper says such schemes
// exist for. A final phase puts the same topology behind the routetabd
// serving engine: batched lookups keep being answered correctly while the
// faulted link is removed via an atomic snapshot hot-swap.
package main

import (
	"fmt"
	"log"
	"sync"

	"routetab"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 200
	g, err := routetab.RandomGraph(n, 11)
	if err != nil {
		return err
	}

	// Phase 1: hub scheme (stretch ≤ 2, ~n·loglog n bits) under concurrent
	// traffic.
	hubRes, err := routetab.Build(g, routetab.Options{
		Model:      routetab.ModelII(routetab.RelabelNone),
		MaxStretch: 2,
	})
	if err != nil {
		return err
	}
	hops, err := pumpTraffic(g, hubRes.Ports, hubRes.Scheme, 2000)
	if err != nil {
		return err
	}
	fmt.Printf("hub scheme: %d bits total, 2000 messages, mean hops %.2f\n",
		hubRes.Space.Total, hops)

	// Phase 2: compact shortest-path scheme (~6n bits/node).
	cmpRes, err := routetab.Build(g, routetab.Options{
		Model:      routetab.ModelII(routetab.RelabelNone),
		MaxStretch: 1,
	})
	if err != nil {
		return err
	}
	hops, err = pumpTraffic(g, cmpRes.Ports, cmpRes.Scheme, 2000)
	if err != nil {
		return err
	}
	fmt.Printf("compact scheme: %d bits total, 2000 messages, mean hops %.2f\n",
		cmpRes.Space.Total, hops)

	// Phase 3: full-information scheme surviving link failures.
	ports := routetab.SortedPorts(g)
	fi, err := routetab.BuildFullInformation(g, ports)
	if err != nil {
		return err
	}
	nw, err := routetab.NewNetwork(g, ports, fi, routetab.NetworkOptions{MaxInFlight: 32})
	if err != nil {
		return err
	}
	defer nw.Close()

	tr, err := nw.Send(1, 100)
	if err != nil {
		return err
	}
	fmt.Printf("full-info before failures: 1→100 via %v\n", tr.Path)
	// Kill the first two hops' links.
	killed := 0
	for i := 1; i < len(tr.Path) && killed < 2; i++ {
		if err := nw.SetLinkDown(tr.Path[i-1], tr.Path[i], true); err != nil {
			return err
		}
		killed++
	}
	tr, err = nw.Send(1, 100)
	if err != nil {
		return fmt.Errorf("full-info should survive 2 link failures: %w", err)
	}
	fmt.Printf("full-info after  failures: 1→100 via %v (rerouted, still %d hops)\n", tr.Path, tr.Hops)
	st := nw.Stats()
	fmt.Printf("network stats: delivered=%d failed=%d (mean hops %.2f, p99 ≤ %d)\n",
		st.Delivered, st.Failed, st.MeanHops(), st.HopQuantile(0.99))

	// Phase 4: the serving layer over the same fault-hit topology. The
	// engine answers batched lookups from an immutable snapshot; removing
	// the first failed link rebuilds off the hot path and hot-swaps the
	// snapshot, and every answer after the swap carries the new version.
	return serveQueries(g, tr.Path)
}

// serveQueries stands up the routetabd engine over g, removes the first link
// of the failed path via an atomic hot-swap, and validates batched answers
// from the new snapshot.
func serveQueries(g *routetab.Graph, failedPath []int) error {
	eng, err := routetab.NewServeEngine(g, "fulltable")
	if err != nil {
		return err
	}
	srv := routetab.NewServeServer(eng, routetab.ServeOptions{Shards: 4})
	defer srv.Close()

	u, v := failedPath[0], failedPath[1]
	snap, err := eng.Mutate(func(g *routetab.Graph) error { return g.RemoveEdge(u, v) })
	if err != nil {
		return err
	}
	pairs := [][2]int{{1, 100}, {u, v}, {50, 150}, {199, 2}}
	out := make([]routetab.LookupResult, len(pairs))
	if err := srv.LookupBatch(pairs, out); err != nil {
		return err
	}
	for i, r := range out {
		if r.Err != nil {
			return fmt.Errorf("lookup %v: %w", pairs[i], r.Err)
		}
		if r.Seq < snap.Seq {
			return fmt.Errorf("lookup %v served by stale snapshot %d < %d", pairs[i], r.Seq, snap.Seq)
		}
		if r.NextDist != r.Dist-1 {
			return fmt.Errorf("lookup %v: next hop does not progress (%+v)", pairs[i], r)
		}
	}
	fmt.Printf("serving layer: link %d-%d removed, snapshot seq %d; batch of %d answered correctly (e.g. %d→%d via %d, dist %d)\n",
		u, v, snap.Seq, len(pairs), pairs[0][0], pairs[0][1], out[0].Next, out[0].Dist)
	return nil
}

// pumpTraffic sends count messages concurrently and returns the mean hops.
func pumpTraffic(g *routetab.Graph, ports *routetab.Ports, scheme routetab.Scheme, count int) (float64, error) {
	nw, err := routetab.NewNetwork(g, ports, scheme, routetab.NetworkOptions{MaxInFlight: 64})
	if err != nil {
		return 0, err
	}
	defer nw.Close()
	var wg sync.WaitGroup
	errs := make(chan error, count)
	n := g.N()
	for i := 0; i < count; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := i%n + 1
			dst := (i*37+91)%n + 1
			if src == dst {
				return
			}
			if _, err := nw.Send(src, dst); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return 0, err
	}
	st := nw.Stats()
	if st.Delivered == 0 {
		return 0, fmt.Errorf("nothing delivered")
	}
	return float64(st.HopsTotal) / float64(st.Delivered), nil
}
