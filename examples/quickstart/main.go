// Quickstart: sample a random network, certify it, build the paper-optimal
// shortest-path scheme under model II, route a message, and print the space
// ledger.
package main

import (
	"fmt"
	"log"

	"routetab"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 256-node uniform random graph — the computable stand-in for the
	// paper's Kolmogorov random graphs.
	g, err := routetab.RandomGraph(256, 1)
	if err != nil {
		return err
	}

	// Certify the structural randomness predicates (Lemmas 1–3 plus the
	// compressibility proxy for Definition 3).
	cert, err := routetab.Certify(g, 3)
	if err != nil {
		return err
	}
	fmt.Println("certificate:", cert)

	// Build the Theorem 1 compact scheme: shortest-path routing in ~6n bits
	// per node under model II ∧ α.
	res, err := routetab.Build(g, routetab.Options{
		Model:      routetab.ModelII(routetab.RelabelNone),
		MaxStretch: 1,
	})
	if err != nil {
		return err
	}
	fmt.Printf("construction: %s\n", res.Theorem)
	fmt.Printf("space: %d bits total, max %d bits/node (n=%d, so %.2f·n per node)\n",
		res.Space.Total, res.Space.MaxFunctionBits, g.N(),
		float64(res.Space.MaxFunctionBits)/float64(g.N()))

	// Route one message with strictly local decisions.
	sim, err := routetab.NewSim(g, res.Ports, res.Scheme)
	if err != nil {
		return err
	}
	tr, err := sim.RouteByNode(3, 77, 16)
	if err != nil {
		return err
	}
	fmt.Printf("route 3→77: %v (%d hops)\n", tr.Path, tr.Hops)

	// Verify deliveries and stretch over sampled pairs.
	rep, err := res.Verify(g, 2000, 42)
	if err != nil {
		return err
	}
	fmt.Println("verification:", rep)
	return nil
}
