package gengraph

import (
	"errors"
	"math/rand"
	"testing"
)

func identityPerm(k int) []int {
	p := make([]int, k+1)
	for i := 1; i <= k; i++ {
		p[i] = i
	}
	return p
}

func TestGBStructure(t *testing.T) {
	k := 5
	gb, err := NewGB(k, identityPerm(k))
	if err != nil {
		t.Fatal(err)
	}
	g := gb.G
	if g.N() != 3*k {
		t.Fatalf("N = %d, want %d", g.N(), 3*k)
	}
	// m = k² (bottom-middle complete bipartite) + k (middle-top pendants).
	if g.M() != k*k+k {
		t.Fatalf("M = %d, want %d", g.M(), k*k+k)
	}
	// Every bottom node adjacent to every middle node, no bottom-bottom or
	// bottom-top edges.
	for b := 1; b <= k; b++ {
		for m := k + 1; m <= 2*k; m++ {
			if !g.HasEdge(b, m) {
				t.Fatalf("missing bottom-middle edge %d-%d", b, m)
			}
		}
		for b2 := b + 1; b2 <= k; b2++ {
			if g.HasEdge(b, b2) {
				t.Fatalf("unexpected bottom-bottom edge %d-%d", b, b2)
			}
		}
		for tp := 2*k + 1; tp <= 3*k; tp++ {
			if g.HasEdge(b, tp) {
				t.Fatalf("unexpected bottom-top edge %d-%d", b, tp)
			}
		}
	}
	// Each top node has degree exactly 1.
	for tp := 2*k + 1; tp <= 3*k; tp++ {
		if g.Degree(tp) != 1 {
			t.Fatalf("top %d degree = %d, want 1", tp, g.Degree(tp))
		}
	}
}

func TestGBPermutationWiring(t *testing.T) {
	k := 4
	// perm sends slot t → top label 2k+perm[t]: use reversal.
	perm := []int{0, 4, 3, 2, 1}
	gb, err := NewGB(k, perm)
	if err != nil {
		t.Fatal(err)
	}
	// Middle k+1 (slot 1) partners top 2k+4 = 12.
	top, err := gb.TopOf(k + 1)
	if err != nil || top != 12 {
		t.Fatalf("TopOf(5) = %d, %v; want 12", top, err)
	}
	if !gb.G.HasEdge(k+1, 12) {
		t.Fatal("edge middle(5)-top(12) missing")
	}
	mid, err := gb.MiddleFor(12)
	if err != nil || mid != k+1 {
		t.Fatalf("MiddleFor(12) = %d, %v; want 5", mid, err)
	}
	// Round trip for every top label.
	for tp := 2*k + 1; tp <= 3*k; tp++ {
		mid, err := gb.MiddleFor(tp)
		if err != nil {
			t.Fatal(err)
		}
		back, err := gb.TopOf(mid)
		if err != nil || back != tp {
			t.Fatalf("TopOf(MiddleFor(%d)) = %d, %v", tp, back, err)
		}
	}
}

func TestGBShortestPathProperty(t *testing.T) {
	// The defining property: bottom→top shortest path has length 2 via the
	// partner middle node, and no other length-2 path exists.
	k := 6
	gb, err := RandomGB(k, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	g := gb.G
	for b := 1; b <= k; b++ {
		for tp := 2*k + 1; tp <= 3*k; tp++ {
			mid, err := gb.MiddleFor(tp)
			if err != nil {
				t.Fatal(err)
			}
			if !g.HasEdge(b, mid) || !g.HasEdge(mid, tp) {
				t.Fatalf("no 2-path %d-%d-%d", b, mid, tp)
			}
			// Uniqueness: no other common neighbour of b and tp.
			for _, w := range g.Neighbors(tp) {
				if w != mid {
					t.Fatalf("top %d has extra neighbour %d", tp, w)
				}
			}
		}
	}
}

func TestGBClassifiers(t *testing.T) {
	gb, err := NewGB(3, identityPerm(3))
	if err != nil {
		t.Fatal(err)
	}
	for u := 1; u <= 3; u++ {
		if !gb.IsBottom(u) || gb.IsMiddle(u) || gb.IsTop(u) {
			t.Fatalf("classification of %d wrong", u)
		}
	}
	for u := 4; u <= 6; u++ {
		if gb.IsBottom(u) || !gb.IsMiddle(u) || gb.IsTop(u) {
			t.Fatalf("classification of %d wrong", u)
		}
	}
	for u := 7; u <= 9; u++ {
		if gb.IsBottom(u) || gb.IsMiddle(u) || !gb.IsTop(u) {
			t.Fatalf("classification of %d wrong", u)
		}
	}
	if gb.IsBottom(0) || gb.IsTop(10) {
		t.Fatal("out-of-range classified as member")
	}
}

func TestGBValidation(t *testing.T) {
	if _, err := NewGB(0, []int{0}); !errors.Is(err, ErrBadParam) {
		t.Errorf("k=0: err = %v, want ErrBadParam", err)
	}
	if _, err := NewGB(3, []int{0, 1, 2}); !errors.Is(err, ErrBadParam) {
		t.Errorf("short perm: err = %v, want ErrBadParam", err)
	}
	if _, err := NewGB(3, []int{0, 1, 1, 2}); !errors.Is(err, ErrBadParam) {
		t.Errorf("dup perm: err = %v, want ErrBadParam", err)
	}
	gb, err := NewGB(3, identityPerm(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gb.MiddleFor(1); !errors.Is(err, ErrBadParam) {
		t.Errorf("MiddleFor(bottom): err = %v, want ErrBadParam", err)
	}
	if _, err := gb.TopOf(1); !errors.Is(err, ErrBadParam) {
		t.Errorf("TopOf(bottom): err = %v, want ErrBadParam", err)
	}
}

func TestGBPermCopied(t *testing.T) {
	perm := identityPerm(3)
	gb, err := NewGB(3, perm)
	if err != nil {
		t.Fatal(err)
	}
	perm[1] = 99
	if gb.Perm[1] != 1 {
		t.Fatal("GB retained caller's permutation slice")
	}
}

func TestGBTrimmedVariants(t *testing.T) {
	// The paper: "For n = 3k−1 or n = 3k−2 we can use G_B, dropping v_k and
	// v_{k−1}."
	k := 5
	for drop := 0; drop <= 2; drop++ {
		gb, err := NewGBTrimmed(k, identityPerm(k), drop)
		if err != nil {
			t.Fatalf("drop %d: %v", drop, err)
		}
		wantN := 3*k - drop
		if gb.G.N() != wantN {
			t.Fatalf("drop %d: N = %d, want %d", drop, gb.G.N(), wantN)
		}
		if gb.B != k-drop {
			t.Fatalf("drop %d: B = %d, want %d", drop, gb.B, k-drop)
		}
		// Structure: every bottom adjacent to every middle; tops pendant.
		for b := 1; b <= gb.B; b++ {
			for m := gb.B + 1; m <= gb.B+k; m++ {
				if !gb.G.HasEdge(b, m) {
					t.Fatalf("drop %d: missing edge %d-%d", drop, b, m)
				}
			}
		}
		lo, hi := gb.TopLabels()
		if hi-lo+1 != k {
			t.Fatalf("drop %d: top range [%d,%d]", drop, lo, hi)
		}
		for tp := lo; tp <= hi; tp++ {
			if gb.G.Degree(tp) != 1 {
				t.Fatalf("drop %d: top %d degree %d", drop, tp, gb.G.Degree(tp))
			}
			mid, err := gb.MiddleFor(tp)
			if err != nil {
				t.Fatal(err)
			}
			back, err := gb.TopOf(mid)
			if err != nil || back != tp {
				t.Fatalf("drop %d: TopOf(MiddleFor(%d)) = %d, %v", drop, tp, back, err)
			}
		}
	}
}

func TestGBTrimmedValidation(t *testing.T) {
	if _, err := NewGBTrimmed(5, identityPerm(5), 3); !errors.Is(err, ErrBadParam) {
		t.Errorf("drop 3: err = %v", err)
	}
	if _, err := NewGBTrimmed(5, identityPerm(5), -1); !errors.Is(err, ErrBadParam) {
		t.Errorf("drop -1: err = %v", err)
	}
	if _, err := NewGBTrimmed(2, identityPerm(2), 2); !errors.Is(err, ErrBadParam) {
		t.Errorf("k=2 drop 2 (no bottoms): err = %v", err)
	}
}
