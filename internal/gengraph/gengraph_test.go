package gengraph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGnpDeterministic(t *testing.T) {
	g1, err := GnHalf(40, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := GnHalf(40, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if !g1.Equal(g2) {
		t.Fatal("same seed produced different graphs")
	}
	g3, err := GnHalf(40, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if g1.Equal(g3) {
		t.Fatal("different seeds produced identical graphs (suspicious)")
	}
}

func TestGnpEdgeDensity(t *testing.T) {
	n := 200
	g, err := GnHalf(n, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	possible := n * (n - 1) / 2
	// Chernoff: |m − possible/2| exceeding 4·sqrt(possible) has prob << 1e-6.
	lo, hi := possible/2-4*141, possible/2+4*141 // sqrt(19900) ≈ 141
	if g.M() < lo || g.M() > hi {
		t.Fatalf("G(200,1/2) has %d edges, want within [%d,%d]", g.M(), lo, hi)
	}
}

func TestGnpParamValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Gnp(5, -0.1, rng); !errors.Is(err, ErrBadParam) {
		t.Errorf("p=-0.1: err = %v, want ErrBadParam", err)
	}
	if _, err := Gnp(5, 1.1, rng); !errors.Is(err, ErrBadParam) {
		t.Errorf("p=1.1: err = %v, want ErrBadParam", err)
	}
	g, err := Gnp(5, 0, rng)
	if err != nil || g.M() != 0 {
		t.Errorf("p=0: m=%d err=%v", g.M(), err)
	}
	g, err = Gnp(5, 1, rng)
	if err != nil || g.M() != 10 {
		t.Errorf("p=1: m=%d err=%v", g.M(), err)
	}
}

func TestCompleteChainCycleStar(t *testing.T) {
	k, err := Complete(6)
	if err != nil || k.M() != 15 {
		t.Fatalf("K6: m=%d err=%v", k.M(), err)
	}
	for u := 1; u <= 6; u++ {
		if k.Degree(u) != 5 {
			t.Fatalf("K6 degree(%d) = %d", u, k.Degree(u))
		}
	}
	c, err := Chain(5)
	if err != nil || c.M() != 4 || !c.IsConnected() {
		t.Fatalf("chain: m=%d err=%v", c.M(), err)
	}
	if c.Degree(1) != 1 || c.Degree(3) != 2 {
		t.Fatal("chain degrees wrong")
	}
	cy, err := Cycle(5)
	if err != nil || cy.M() != 5 {
		t.Fatalf("cycle: m=%d err=%v", cy.M(), err)
	}
	for u := 1; u <= 5; u++ {
		if cy.Degree(u) != 2 {
			t.Fatalf("cycle degree(%d) = %d", u, cy.Degree(u))
		}
	}
	if _, err := Cycle(2); !errors.Is(err, ErrBadParam) {
		t.Errorf("Cycle(2): err = %v, want ErrBadParam", err)
	}
	s, err := Star(7)
	if err != nil || s.M() != 6 || s.Degree(1) != 6 {
		t.Fatalf("star: m=%d err=%v", s.M(), err)
	}
}

func TestGrid(t *testing.T) {
	g, err := Grid(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 {
		t.Fatalf("grid N = %d, want 12", g.N())
	}
	// Edge count: rows*(cols−1) + cols*(rows−1) = 3*3 + 4*2 = 17.
	if g.M() != 17 {
		t.Fatalf("grid M = %d, want 17", g.M())
	}
	if !g.IsConnected() {
		t.Fatal("grid disconnected")
	}
	// Corner degree 2, centre degree 4.
	if g.Degree(1) != 2 {
		t.Fatalf("corner degree = %d", g.Degree(1))
	}
	if g.Degree(6) != 4 { // (1,1) in 0-based = label 6
		t.Fatalf("centre degree = %d", g.Degree(6))
	}
	if _, err := Grid(0, 3); !errors.Is(err, ErrBadParam) {
		t.Errorf("Grid(0,3): err = %v, want ErrBadParam", err)
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 10, 57, 128} {
		g, err := RandomTree(n, rand.New(rand.NewSource(int64(n))))
		if err != nil {
			t.Fatalf("RandomTree(%d): %v", n, err)
		}
		if g.M() != n-1 && n > 0 {
			if !(n == 1 && g.M() == 0) {
				t.Fatalf("RandomTree(%d): m = %d, want %d", n, g.M(), n-1)
			}
		}
		if !g.IsConnected() {
			t.Fatalf("RandomTree(%d) disconnected", n)
		}
	}
	if _, err := RandomTree(0, rand.New(rand.NewSource(1))); !errors.Is(err, ErrBadParam) {
		t.Errorf("RandomTree(0): err = %v, want ErrBadParam", err)
	}
}

func TestRandomTreeQuick(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%60 + 1
		g, err := RandomTree(n, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		return g.M() == n-1 && g.IsConnected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomPermutation(t *testing.T) {
	perm := RandomPermutation(10, rand.New(rand.NewSource(3)))
	if len(perm) != 11 || perm[0] != 0 {
		t.Fatalf("perm = %v", perm)
	}
	seen := make([]bool, 11)
	for i := 1; i <= 10; i++ {
		if perm[i] < 1 || perm[i] > 10 || seen[perm[i]] {
			t.Fatalf("not a permutation: %v", perm)
		}
		seen[perm[i]] = true
	}
}
