// Package gengraph provides deterministic, seeded graph generators for the
// reproduction experiments.
//
// The paper's "almost all graphs" are Kolmogorov random graphs (Definition 3).
// True Kolmogorov randomness is uncomputable, but a uniformly drawn graph —
// every possible edge present with probability 1/2 — is c·log n-random with
// probability at least 1−1/n^c, so seeded uniform sampling (GnHalf) is the
// faithful computable stand-in; internal/kolmo certifies each sample against
// the paper's structural lemmas. Deterministic families (Complete, Chain, …)
// are the maximally compressible contrast cases, and GB builds the explicit
// Figure-1 family underlying Theorem 9's worst-case lower bound.
package gengraph

import (
	"errors"
	"fmt"
	"math/rand"

	"routetab/internal/graph"
)

// ErrBadParam indicates an out-of-range generator parameter.
var ErrBadParam = errors.New("gengraph: bad parameter")

// GnHalf samples a uniform random graph on n nodes: each of the n(n−1)/2
// possible edges is present independently with probability 1/2. This is the
// uniform distribution over all labelled graphs of Definition 5.
func GnHalf(n int, rng *rand.Rand) (*graph.Graph, error) {
	return Gnp(n, 0.5, rng)
}

// Gnp samples an Erdős–Rényi G(n, p) graph.
func Gnp(n int, p float64, rng *rand.Rand) (*graph.Graph, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("%w: p = %v", ErrBadParam, p)
	}
	g, err := graph.New(n)
	if err != nil {
		return nil, err
	}
	for u := 1; u <= n; u++ {
		for v := u + 1; v <= n; v++ {
			if rng.Float64() < p {
				if err := g.AddEdge(u, v); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// Complete returns K_n — the only diameter-1 graph family; it is describable
// in O(1) bits given n, the paper's canonical non-random example (Lemma 2's
// proof).
func Complete(n int) (*graph.Graph, error) {
	g, err := graph.New(n)
	if err != nil {
		return nil, err
	}
	for u := 1; u <= n; u++ {
		for v := u + 1; v <= n; v++ {
			if err := g.AddEdge(u, v); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// Chain returns the path 1−2−…−n, the introduction's example of a graph whose
// routing functions become trivial under relabelling.
func Chain(n int) (*graph.Graph, error) {
	g, err := graph.New(n)
	if err != nil {
		return nil, err
	}
	for u := 1; u < n; u++ {
		if err := g.AddEdge(u, u+1); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Cycle returns the n-cycle (n ≥ 3).
func Cycle(n int) (*graph.Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("%w: cycle needs n ≥ 3, got %d", ErrBadParam, n)
	}
	g, err := Chain(n)
	if err != nil {
		return nil, err
	}
	if err := g.AddEdge(n, 1); err != nil {
		return nil, err
	}
	return g, nil
}

// Star returns the star with centre 1 and leaves 2…n.
func Star(n int) (*graph.Graph, error) {
	g, err := graph.New(n)
	if err != nil {
		return nil, err
	}
	for v := 2; v <= n; v++ {
		if err := g.AddEdge(1, v); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Grid returns the rows×cols grid graph; node (r,c) has label r*cols+c+1 for
// 0-based r, c.
func Grid(rows, cols int) (*graph.Graph, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("%w: grid %dx%d", ErrBadParam, rows, cols)
	}
	g, err := graph.New(rows * cols)
	if err != nil {
		return nil, err
	}
	id := func(r, c int) int { return r*cols + c + 1 }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				if err := g.AddEdge(id(r, c), id(r, c+1)); err != nil {
					return nil, err
				}
			}
			if r+1 < rows {
				if err := g.AddEdge(id(r, c), id(r+1, c)); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// RandomTree samples a uniform labelled tree on n nodes via a random Prüfer
// sequence.
func RandomTree(n int, rng *rand.Rand) (*graph.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: tree needs n ≥ 1, got %d", ErrBadParam, n)
	}
	g, err := graph.New(n)
	if err != nil {
		return nil, err
	}
	if n == 1 {
		return g, nil
	}
	if n == 2 {
		if err := g.AddEdge(1, 2); err != nil {
			return nil, err
		}
		return g, nil
	}
	prufer := make([]int, n-2)
	for i := range prufer {
		prufer[i] = rng.Intn(n) + 1
	}
	degree := make([]int, n+1)
	for u := 1; u <= n; u++ {
		degree[u] = 1
	}
	for _, u := range prufer {
		degree[u]++
	}
	// Standard Prüfer decoding with a pointer+leaf scan.
	ptr := 1
	for degree[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for _, u := range prufer {
		if err := g.AddEdge(leaf, u); err != nil {
			return nil, err
		}
		degree[u]--
		if degree[u] == 1 && u < ptr {
			leaf = u
		} else {
			ptr++
			for degree[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	if err := g.AddEdge(leaf, n); err != nil {
		return nil, err
	}
	return g, nil
}

// SparseConnected samples a connected sparse graph: a uniform random spanning
// tree (so connectivity is guaranteed by construction) plus random extra
// edges until the expected average degree reaches avgDeg. This is the
// large-graph serving regime's topology family — n can reach 16384 without
// the O(n²) edge loop of Gnp, and the diameter collapses to O(log n) once
// avgDeg exceeds ~3, which keeps stretch-3 routes short.
func SparseConnected(n int, avgDeg float64, rng *rand.Rand) (*graph.Graph, error) {
	if avgDeg < 0 {
		return nil, fmt.Errorf("%w: avgDeg = %v", ErrBadParam, avgDeg)
	}
	g, err := RandomTree(n, rng)
	if err != nil {
		return nil, err
	}
	if n < 3 {
		return g, nil
	}
	want := int(avgDeg * float64(n) / 2)
	// The tree contributes n−1 edges; top up with random distinct pairs.
	// Duplicate draws are skipped, so the realised degree is slightly below
	// avgDeg on dense requests — fine for a topology family.
	for extra := want - (n - 1); extra > 0; extra-- {
		u := rng.Intn(n) + 1
		v := rng.Intn(n) + 1
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// RandomPermutation returns a uniform permutation of {1,…,k} as a 1-based
// slice of length k+1 with perm[0]=0.
func RandomPermutation(k int, rng *rand.Rand) []int {
	perm := make([]int, k+1)
	for i := 1; i <= k; i++ {
		perm[i] = i
	}
	rng.Shuffle(k, func(i, j int) { perm[i+1], perm[j+1] = perm[j+1], perm[i+1] })
	return perm
}
