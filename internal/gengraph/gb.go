package gengraph

import (
	"fmt"
	"math/rand"

	"routetab/internal/graph"
)

// GB is the explicit lower-bound family of Figure 1 (Theorem 9) on
// n = B + 2K nodes:
//
//   - bottom nodes v_1 … v_B,
//   - middle nodes v_{B+1} … v_{B+K}, each adjacent to every bottom node
//     and to exactly one top node,
//   - top nodes carrying the labels {B+K+1, …, B+2K} in an order given by a
//     hidden permutation π: the top node attached to middle node v_{B+t}
//     carries label B+K+π(t).
//
// The paper's graph has B = K = k (n = 3k); for n = 3k−1 or 3k−2 it drops
// one or two bottom nodes (NewGBTrimmed), exactly as the proof of Theorem 9
// prescribes.
//
// For any bottom node v_i and top label j, the unique length-2 path runs
// through the middle node whose top partner carries j; every other path has
// length ≥ 4. Hence any routing scheme with stretch < 2 must answer, at each
// bottom node, exactly according to π — its local function encodes the
// permutation, which costs k·log k − O(k) bits (Theorem 9).
type GB struct {
	// K is the block size: K middle and K top nodes, permutation of {1,…,K}.
	K int
	// B is the number of bottom nodes (K for the canonical family, K−1 or
	// K−2 for the trimmed variants).
	B int
	// Perm is the hidden permutation (1-based, Perm[0] = 0): the top node
	// attached to middle node B+t carries label B+K+Perm[t].
	Perm []int
	// G is the resulting labelled graph on B+2K nodes.
	G *graph.Graph
}

// NewGB constructs the canonical Figure-1 graph (B = K = k) for block size
// k ≥ 1 and the given hidden permutation of {1,…,k} (1-based slice of
// length k+1).
func NewGB(k int, perm []int) (*GB, error) {
	return NewGBTrimmed(k, perm, 0)
}

// NewGBTrimmed constructs the Figure-1 graph with `drop` ∈ {0, 1, 2} bottom
// nodes removed — the paper's n = 3k−1 and n = 3k−2 cases.
func NewGBTrimmed(k int, perm []int, drop int) (*GB, error) {
	if k < 1 {
		return nil, fmt.Errorf("%w: GB needs k ≥ 1, got %d", ErrBadParam, k)
	}
	if drop < 0 || drop > 2 || k-drop < 1 {
		return nil, fmt.Errorf("%w: GB drop %d with k=%d", ErrBadParam, drop, k)
	}
	if len(perm) != k+1 {
		return nil, fmt.Errorf("%w: permutation length %d, want %d", ErrBadParam, len(perm), k+1)
	}
	seen := make([]bool, k+1)
	for t := 1; t <= k; t++ {
		p := perm[t]
		if p < 1 || p > k || seen[p] {
			return nil, fmt.Errorf("%w: perm[%d] = %d is not a permutation of 1..%d", ErrBadParam, t, p, k)
		}
		seen[p] = true
	}
	b := k - drop
	g, err := graph.New(b + 2*k)
	if err != nil {
		return nil, err
	}
	for t := 1; t <= k; t++ {
		mid := b + t
		for bt := 1; bt <= b; bt++ {
			if err := g.AddEdge(bt, mid); err != nil {
				return nil, err
			}
		}
		if err := g.AddEdge(mid, b+k+perm[t]); err != nil {
			return nil, err
		}
	}
	pcopy := make([]int, len(perm))
	copy(pcopy, perm)
	return &GB{K: k, B: b, Perm: pcopy, G: g}, nil
}

// RandomGB constructs a canonical GB instance with a uniformly random hidden
// permutation. A 1−1/2^k fraction of these permutations has Kolmogorov
// complexity k·log k − O(k), which is what makes the family a worst case.
func RandomGB(k int, rng *rand.Rand) (*GB, error) {
	return NewGB(k, RandomPermutation(k, rng))
}

// MiddleFor returns the middle node adjacent to the top node with label
// topLabel ∈ {B+K+1,…,B+2K}.
func (gb *GB) MiddleFor(topLabel int) (int, error) {
	t, err := gb.slot(topLabel)
	if err != nil {
		return 0, err
	}
	return gb.B + t, nil
}

// slot returns the t with Perm[t] = topLabel−B−K.
func (gb *GB) slot(topLabel int) (int, error) {
	want := topLabel - gb.B - gb.K
	if want < 1 || want > gb.K {
		return 0, fmt.Errorf("%w: %d is not a top label of GB(k=%d,b=%d)", ErrBadParam, topLabel, gb.K, gb.B)
	}
	for t := 1; t <= gb.K; t++ {
		if gb.Perm[t] == want {
			return t, nil
		}
	}
	return 0, fmt.Errorf("%w: permutation does not cover %d", ErrBadParam, want)
}

// IsBottom reports whether node u is a bottom node v_1…v_B.
func (gb *GB) IsBottom(u int) bool { return u >= 1 && u <= gb.B }

// IsMiddle reports whether node u is a middle node v_{B+1}…v_{B+K}.
func (gb *GB) IsMiddle(u int) bool { return u > gb.B && u <= gb.B+gb.K }

// IsTop reports whether node u is a top node v_{B+K+1}…v_{B+2K}.
func (gb *GB) IsTop(u int) bool { return u > gb.B+gb.K && u <= gb.B+2*gb.K }

// TopOf returns the label of the top node attached to middle node mid.
func (gb *GB) TopOf(mid int) (int, error) {
	if !gb.IsMiddle(mid) {
		return 0, fmt.Errorf("%w: %d is not a middle node of GB(k=%d,b=%d)", ErrBadParam, mid, gb.K, gb.B)
	}
	return gb.B + gb.K + gb.Perm[mid-gb.B], nil
}

// TopLabels returns the top-label range [B+K+1, B+2K] as (lo, hi).
func (gb *GB) TopLabels() (lo, hi int) { return gb.B + gb.K + 1, gb.B + 2*gb.K }
