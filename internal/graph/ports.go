package graph

import (
	"fmt"
	"math/rand"
)

// Ports is a port assignment: for every node u with degree d(u), a bijection
// between its incident edges and port labels 1,…,d(u). This is the minimal
// local knowledge of the paper's introduction — a node can tell its ports
// apart but, in models IA/IB, does not know which neighbour sits behind
// which port.
type Ports struct {
	n          int
	toNeighbor [][]int // toNeighbor[u][p-1] = neighbour behind port p of u
	portOf     []map[int]int
}

// SortedPorts builds the canonical "free" port assignment of model IB: the
// i-th smallest neighbour of u is connected to port i. Theorem 1 uses exactly
// this mapping so that an (n−1)-bit neighbour vector determines every port.
func SortedPorts(g *Graph) *Ports {
	p := &Ports{
		n:          g.N(),
		toNeighbor: make([][]int, g.N()+1),
		portOf:     make([]map[int]int, g.N()+1),
	}
	for u := 1; u <= g.N(); u++ {
		nb := g.Neighbors(u)
		row := make([]int, len(nb))
		copy(row, nb)
		p.toNeighbor[u] = row
		m := make(map[int]int, len(row))
		for i, v := range row {
			m[v] = i + 1
		}
		p.portOf[u] = m
	}
	return p
}

// RandomPorts builds an adversarial fixed port assignment (model IA): each
// node's neighbours are scattered over its ports by a seeded random
// permutation. Theorem 8's lower bound comes precisely from such
// permutations having entropy log₂(d!).
func RandomPorts(g *Graph, rng *rand.Rand) *Ports {
	p := SortedPorts(g)
	for u := 1; u <= g.N(); u++ {
		row := p.toNeighbor[u]
		rng.Shuffle(len(row), func(i, j int) { row[i], row[j] = row[j], row[i] })
		m := make(map[int]int, len(row))
		for i, v := range row {
			m[v] = i + 1
		}
		p.portOf[u] = m
	}
	return p
}

// PermutedPorts applies explicit per-node permutations: perms[u][i] is the
// 0-based index into the sorted neighbour list of the neighbour placed behind
// port i+1. Used by lower-bound experiments that need a specific adversary.
func PermutedPorts(g *Graph, perms [][]int) (*Ports, error) {
	p := SortedPorts(g)
	for u := 1; u <= g.N(); u++ {
		perm := perms[u]
		sorted := g.Neighbors(u)
		if len(perm) != len(sorted) {
			return nil, fmt.Errorf("graph: ports of %d: permutation length %d, want %d", u, len(perm), len(sorted))
		}
		row := make([]int, len(sorted))
		seen := make([]bool, len(sorted))
		for i, idx := range perm {
			if idx < 0 || idx >= len(sorted) || seen[idx] {
				return nil, fmt.Errorf("%w: node %d", ErrBadPermutation, u)
			}
			seen[idx] = true
			row[i] = sorted[idx]
		}
		p.toNeighbor[u] = row
		m := make(map[int]int, len(row))
		for i, v := range row {
			m[v] = i + 1
		}
		p.portOf[u] = m
	}
	return p, nil
}

// Degree returns the number of ports at u.
func (p *Ports) Degree(u int) int {
	if u < 1 || u > p.n {
		return 0
	}
	return len(p.toNeighbor[u])
}

// Neighbor returns the neighbour behind port port of node u, or an error for
// invalid port numbers.
func (p *Ports) Neighbor(u, port int) (int, error) {
	if u < 1 || u > p.n {
		return 0, fmt.Errorf("%w: node %d", ErrNodeRange, u)
	}
	if port < 1 || port > len(p.toNeighbor[u]) {
		return 0, fmt.Errorf("graph: node %d has no port %d (degree %d)", u, port, len(p.toNeighbor[u]))
	}
	return p.toNeighbor[u][port-1], nil
}

// PortTo returns the port of u leading to neighbour v, or an error when v is
// not adjacent to u.
func (p *Ports) PortTo(u, v int) (int, error) {
	if u < 1 || u > p.n {
		return 0, fmt.Errorf("%w: node %d", ErrNodeRange, u)
	}
	port, ok := p.portOf[u][v]
	if !ok {
		return 0, fmt.Errorf("graph: %d is not a neighbour of %d", v, u)
	}
	return port, nil
}

// PortToOK is the allocation-free variant of PortTo for hot paths that probe
// adjacency: a miss reports (0, false) instead of constructing an error.
func (p *Ports) PortToOK(u, v int) (int, bool) {
	if u < 1 || u > p.n {
		return 0, false
	}
	port, ok := p.portOf[u][v]
	return port, ok
}

// NeighborsByPort returns a copy of u's port table: entry i is the neighbour
// behind port i+1.
func (p *Ports) NeighborsByPort(u int) []int {
	if u < 1 || u > p.n {
		return nil
	}
	out := make([]int, len(p.toNeighbor[u]))
	copy(out, p.toNeighbor[u])
	return out
}

// Validate checks the assignment is consistent with g: every port leads to a
// distinct true neighbour and every neighbour is behind exactly one port.
func (p *Ports) Validate(g *Graph) error {
	if p.n != g.N() {
		return fmt.Errorf("graph: port table for n=%d used with n=%d", p.n, g.N())
	}
	for u := 1; u <= g.N(); u++ {
		if len(p.toNeighbor[u]) != g.Degree(u) {
			return fmt.Errorf("graph: node %d has %d ports, degree %d", u, len(p.toNeighbor[u]), g.Degree(u))
		}
		seen := make(map[int]bool, len(p.toNeighbor[u]))
		for i, v := range p.toNeighbor[u] {
			if !g.HasEdge(u, v) {
				return fmt.Errorf("graph: port %d of %d leads to non-neighbour %d", i+1, u, v)
			}
			if seen[v] {
				return fmt.Errorf("graph: neighbour %d behind two ports of %d", v, u)
			}
			seen[v] = true
		}
	}
	return nil
}
