package graph

import (
	"math/bits"
	"sync"
	"testing"
)

// TestNeighborsConcurrentReaders exercises the lazy neighbour-list rebuild
// from many goroutines with the cache cold, so racing builders publish
// concurrently. Run under -race (make verify) this is the regression test
// for the old unsynchronised lists/dirty rebuild.
func TestNeighborsConcurrentReaders(t *testing.T) {
	g := MustNew(200)
	for u := 1; u <= 200; u++ {
		for v := u + 1; v <= 200; v += u {
			if err := g.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	const readers = 16
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := 1 + r%7; u <= 200; u++ {
				nb := g.Neighbors(u)
				if len(nb) != g.Degree(u) {
					t.Errorf("node %d: %d neighbours, degree %d", u, len(nb), g.Degree(u))
					return
				}
				for _, v := range nb {
					if !g.HasEdge(u, v) {
						t.Errorf("phantom neighbour %d of %d", v, u)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestAdjRowMatchesNeighbors(t *testing.T) {
	g := MustNew(130)
	for _, e := range [][2]int{{1, 2}, {1, 129}, {64, 65}, {128, 130}, {3, 70}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if g.Words() != 3 {
		t.Fatalf("Words() = %d, want 3 for n=130", g.Words())
	}
	for u := 1; u <= g.N(); u++ {
		row := g.AdjRow(u)
		if len(row) != g.Words() {
			t.Fatalf("AdjRow(%d) has %d words", u, len(row))
		}
		var fromRow []int
		for wi, w := range row {
			for w != 0 {
				fromRow = append(fromRow, wi*64+bits.TrailingZeros64(w)+1)
				w &= w - 1
			}
		}
		nb := g.Neighbors(u)
		if len(fromRow) != len(nb) {
			t.Fatalf("node %d: row %v, neighbours %v", u, fromRow, nb)
		}
		for i := range nb {
			if fromRow[i] != nb[i] {
				t.Fatalf("node %d: row %v, neighbours %v", u, fromRow, nb)
			}
		}
	}
	if g.AdjRow(0) != nil || g.AdjRow(131) != nil {
		t.Fatal("out-of-range AdjRow should be nil")
	}
}

func TestVersionBumpsOnMutation(t *testing.T) {
	g := MustNew(4)
	v0 := g.Version()
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	v1 := g.Version()
	if v1 == v0 {
		t.Fatal("AddEdge did not bump Version")
	}
	if err := g.AddEdge(1, 2); err != nil { // duplicate: no mutation
		t.Fatal(err)
	}
	if g.Version() != v1 {
		t.Fatal("no-op AddEdge bumped Version")
	}
	if err := g.RemoveEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if g.Version() == v1 {
		t.Fatal("RemoveEdge did not bump Version")
	}
	if err := g.RemoveEdge(1, 2); err != nil { // missing: no mutation
		t.Fatal(err)
	}
}
