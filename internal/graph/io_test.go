package graph

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	g := MustNew(25)
	for u := 1; u <= 25; u++ {
		for v := u + 1; v <= 25; v++ {
			if rng.Intn(2) == 0 {
				if err := g.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(g) {
		t.Fatal("round trip mismatch")
	}
}

func TestReadEdgeListFormat(t *testing.T) {
	doc := `
# a comment
n 5

1 2
2 3
# duplicate tolerated
2 3
5 1
`
	g, err := ReadEdgeList(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 5 || g.M() != 3 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if !g.HasEdge(1, 5) {
		t.Fatal("edge 5-1 missing")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"no header":      "1 2\n",
		"bad header":     "nodes 5\n",
		"negative count": "n -3\n",
		"bad edge arity": "n 3\n1 2 3\n",
		"non-numeric":    "n 3\n1 x\n",
		"out of range":   "n 3\n1 9\n",
		"self loop":      "n 3\n2 2\n",
	}
	for name, doc := range cases {
		if _, err := ReadEdgeList(strings.NewReader(doc)); !errors.Is(err, ErrBadEdgeList) {
			t.Errorf("%s: err = %v, want ErrBadEdgeList", name, err)
		}
	}
}

func TestEdgeListEmptyGraph(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("n 0\n"))
	if err != nil || g.N() != 0 {
		t.Fatalf("empty: %v %v", g, err)
	}
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "n 0" {
		t.Fatalf("output = %q", buf.String())
	}
}
