package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"routetab/internal/bitio"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(-1); !errors.Is(err, ErrNodeRange) {
		t.Fatalf("New(-1): err = %v, want ErrNodeRange", err)
	}
	g, err := New(0)
	if err != nil {
		t.Fatalf("New(0): %v", err)
	}
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph: n=%d m=%d", g.N(), g.M())
	}
}

func TestAddRemoveHasEdge(t *testing.T) {
	g := MustNew(5)
	if err := g.AddEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(1, 3) || !g.HasEdge(3, 1) {
		t.Fatal("edge 1-3 missing after AddEdge")
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	// Idempotent add.
	if err := g.AddEdge(3, 1); err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Fatalf("M after duplicate add = %d, want 1", g.M())
	}
	if err := g.RemoveEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(1, 3) || g.M() != 0 {
		t.Fatal("edge 1-3 present after RemoveEdge")
	}
	// Idempotent remove.
	if err := g.RemoveEdge(1, 3); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeErrors(t *testing.T) {
	g := MustNew(3)
	if err := g.AddEdge(1, 1); !errors.Is(err, ErrSelfLoop) {
		t.Errorf("self loop: err = %v, want ErrSelfLoop", err)
	}
	if err := g.AddEdge(0, 1); !errors.Is(err, ErrNodeRange) {
		t.Errorf("node 0: err = %v, want ErrNodeRange", err)
	}
	if err := g.AddEdge(1, 4); !errors.Is(err, ErrNodeRange) {
		t.Errorf("node 4: err = %v, want ErrNodeRange", err)
	}
	if g.HasEdge(0, 1) || g.HasEdge(1, 4) || g.HasEdge(2, 2) {
		t.Error("HasEdge true for invalid pair")
	}
}

func TestNeighborsSortedAndShared(t *testing.T) {
	g := MustNew(6)
	for _, e := range [][2]int{{4, 2}, {4, 6}, {4, 1}, {4, 5}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	got := g.Neighbors(4)
	want := []int{1, 2, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("Neighbors(4) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors(4) = %v, want %v", got, want)
		}
	}
	// Cache invalidation after mutation.
	if err := g.RemoveEdge(4, 2); err != nil {
		t.Fatal(err)
	}
	got = g.Neighbors(4)
	if len(got) != 3 || got[0] != 1 || got[1] != 5 || got[2] != 6 {
		t.Fatalf("Neighbors(4) after removal = %v, want [1 5 6]", got)
	}
}

func TestFirstNeighbors(t *testing.T) {
	g := MustNew(8)
	for v := 2; v <= 8; v++ {
		if err := g.AddEdge(1, v); err != nil {
			t.Fatal(err)
		}
	}
	if got := g.FirstNeighbors(1, 3); len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Fatalf("FirstNeighbors(1,3) = %v", got)
	}
	if got := g.FirstNeighbors(1, 100); len(got) != 7 {
		t.Fatalf("FirstNeighbors(1,100) = %v", got)
	}
	if got := g.FirstNeighbors(1, -1); len(got) != 0 {
		t.Fatalf("FirstNeighbors(1,-1) = %v", got)
	}
}

func TestDegree(t *testing.T) {
	g := MustNew(70) // spans two bitset words
	for v := 2; v <= 70; v++ {
		if err := g.AddEdge(1, v); err != nil {
			t.Fatal(err)
		}
	}
	if d := g.Degree(1); d != 69 {
		t.Fatalf("Degree(1) = %d, want 69", d)
	}
	if d := g.Degree(2); d != 1 {
		t.Fatalf("Degree(2) = %d, want 1", d)
	}
	if d := g.Degree(0); d != 0 {
		t.Fatalf("Degree(0) = %d, want 0", d)
	}
}

func TestEdgeIndexRoundTripQuick(t *testing.T) {
	const n = 37
	f := func(a, b uint16) bool {
		u := int(a)%n + 1
		v := int(b)%n + 1
		if u == v {
			return true
		}
		idx, err := EdgeIndex(n, u, v)
		if err != nil {
			return false
		}
		gu, gv, err := EdgeFromIndex(n, idx)
		if err != nil {
			return false
		}
		lo, hi := u, v
		if lo > hi {
			lo, hi = hi, lo
		}
		return gu == lo && gv == hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeIndexLexOrder(t *testing.T) {
	// The enumeration must match Definition 2's lexicographic order exactly.
	n := 5
	wantOrder := [][2]int{{1, 2}, {1, 3}, {1, 4}, {1, 5}, {2, 3}, {2, 4}, {2, 5}, {3, 4}, {3, 5}, {4, 5}}
	for i, e := range wantOrder {
		idx, err := EdgeIndex(n, e[0], e[1])
		if err != nil {
			t.Fatal(err)
		}
		if idx != i {
			t.Fatalf("EdgeIndex(%v) = %d, want %d", e, idx, i)
		}
	}
	if EdgeCodeLen(n) != len(wantOrder) {
		t.Fatalf("EdgeCodeLen(5) = %d, want %d", EdgeCodeLen(n), len(wantOrder))
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(40)
		g := MustNew(n)
		for u := 1; u <= n; u++ {
			for v := u + 1; v <= n; v++ {
				if rng.Intn(2) == 1 {
					if err := g.AddEdge(u, v); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		w := g.EncodeBits()
		if w.Len() != EdgeCodeLen(n) {
			t.Fatalf("E(G) length = %d, want %d", w.Len(), EdgeCodeLen(n))
		}
		back, err := DecodeBytes(g.EncodeBytes(), n)
		if err != nil {
			t.Fatalf("DecodeBytes: %v", err)
		}
		if !g.Equal(back) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
	}
}

func TestDecodeShortBuffer(t *testing.T) {
	if _, err := DecodeBytes([]byte{0}, 10); !errors.Is(err, ErrBadEncoding) {
		t.Fatalf("short decode: err = %v, want ErrBadEncoding", err)
	}
}

func TestDecodeLeavesReaderPositioned(t *testing.T) {
	g := MustNew(4)
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	w := g.EncodeBits()
	w.WriteBit(true) // trailing payload after E(G)
	r := bitio.ReaderFor(w)
	back, err := DecodeBits(r, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(g) {
		t.Fatal("decode mismatch")
	}
	if r.Remaining() != 1 {
		t.Fatalf("Remaining = %d, want 1", r.Remaining())
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	g := MustNew(4)
	for _, e := range [][2]int{{1, 2}, {2, 3}, {3, 4}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	// Reverse labels: 1↔4, 2↔3.
	perm := []int{0, 4, 3, 2, 1}
	h, err := g.Relabel(perm)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]int{{4, 3}, {3, 2}, {2, 1}} {
		if !h.HasEdge(e[0], e[1]) {
			t.Fatalf("relabelled graph missing edge %v", e)
		}
	}
	if h.M() != g.M() {
		t.Fatalf("relabelled M = %d, want %d", h.M(), g.M())
	}
	if ds1, ds2 := g.DegreeSequence(), h.DegreeSequence(); len(ds1) == len(ds2) {
		for i := range ds1 {
			if ds1[i] != ds2[i] {
				t.Fatal("degree sequence changed by relabelling")
			}
		}
	}
}

func TestRelabelValidation(t *testing.T) {
	g := MustNew(3)
	if _, err := g.Relabel([]int{0, 1, 2}); !errors.Is(err, ErrBadPermutation) {
		t.Errorf("short perm: err = %v, want ErrBadPermutation", err)
	}
	if _, err := g.Relabel([]int{0, 1, 1, 2}); !errors.Is(err, ErrBadPermutation) {
		t.Errorf("duplicate perm: err = %v, want ErrBadPermutation", err)
	}
	if _, err := g.Relabel([]int{0, 1, 2, 4}); !errors.Is(err, ErrBadPermutation) {
		t.Errorf("out-of-range perm: err = %v, want ErrBadPermutation", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := MustNew(3)
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	h := g.Clone()
	if err := h.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(2, 3) {
		t.Fatal("mutation of clone leaked into original")
	}
	if !h.HasEdge(1, 2) {
		t.Fatal("clone lost edge")
	}
}

func TestEdgesAndConnected(t *testing.T) {
	g := MustNew(4)
	if g.IsConnected() {
		t.Fatal("edgeless 4-node graph reported connected")
	}
	for _, e := range [][2]int{{1, 2}, {2, 3}, {3, 4}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if !g.IsConnected() {
		t.Fatal("chain reported disconnected")
	}
	edges := g.Edges()
	if len(edges) != 3 {
		t.Fatalf("Edges = %v", edges)
	}
	if edges[0] != [2]int{1, 2} || edges[2] != [2]int{3, 4} {
		t.Fatalf("Edges order = %v", edges)
	}
}

func TestEncodeMatchesEdgeIndex(t *testing.T) {
	// Property: bit EdgeIndex(u,v) of E(G) is set iff uv ∈ E.
	rng := rand.New(rand.NewSource(11))
	n := 23
	g := MustNew(n)
	for u := 1; u <= n; u++ {
		for v := u + 1; v <= n; v++ {
			if rng.Intn(3) == 0 {
				if err := g.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	bitstr := g.EncodeBits().BitString()
	for u := 1; u <= n; u++ {
		for v := u + 1; v <= n; v++ {
			idx, err := EdgeIndex(n, u, v)
			if err != nil {
				t.Fatal(err)
			}
			want := byte('0')
			if g.HasEdge(u, v) {
				want = '1'
			}
			if bitstr[idx] != want {
				t.Fatalf("bit %d for edge (%d,%d) = %c, want %c", idx, u, v, bitstr[idx], want)
			}
		}
	}
}

func TestDOTOutput(t *testing.T) {
	g := MustNew(2)
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	dot := g.DOT("g")
	if dot == "" || dot[0] != 'g' {
		t.Fatalf("DOT = %q", dot)
	}
}

func TestComplement(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := MustNew(30)
	for u := 1; u <= 30; u++ {
		for v := u + 1; v <= 30; v++ {
			if rng.Intn(2) == 0 {
				if err := g.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	c := g.Complement()
	if g.M()+c.M() != EdgeCodeLen(30) {
		t.Fatalf("m + m̄ = %d, want %d", g.M()+c.M(), EdgeCodeLen(30))
	}
	for u := 1; u <= 30; u++ {
		for v := u + 1; v <= 30; v++ {
			if g.HasEdge(u, v) == c.HasEdge(u, v) {
				t.Fatalf("edge (%d,%d) equal in both", u, v)
			}
		}
	}
	// Double complement is the identity.
	if !c.Complement().Equal(g) {
		t.Fatal("double complement differs")
	}
	// E(Ḡ) is the bitwise negation of E(G).
	eg := g.EncodeBits().BitString()
	ec := c.EncodeBits().BitString()
	for i := range eg {
		if eg[i] == ec[i] {
			t.Fatalf("bit %d equal in both encodings", i)
		}
	}
}
