package graph

import (
	"math/rand"
	"testing"
)

func ring(t *testing.T, n int) *Graph {
	t.Helper()
	g := MustNew(n)
	for u := 1; u <= n; u++ {
		v := u%n + 1
		if err := g.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestSortedPorts(t *testing.T) {
	g := ring(t, 5)
	p := SortedPorts(g)
	if err := p.Validate(g); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Node 3's neighbours are {2,4}; sorted assignment puts 2 on port 1.
	v, err := p.Neighbor(3, 1)
	if err != nil || v != 2 {
		t.Fatalf("Neighbor(3,1) = %d, %v; want 2", v, err)
	}
	v, err = p.Neighbor(3, 2)
	if err != nil || v != 4 {
		t.Fatalf("Neighbor(3,2) = %d, %v; want 4", v, err)
	}
	port, err := p.PortTo(3, 4)
	if err != nil || port != 2 {
		t.Fatalf("PortTo(3,4) = %d, %v; want 2", port, err)
	}
}

func TestPortErrors(t *testing.T) {
	g := ring(t, 4)
	p := SortedPorts(g)
	if _, err := p.Neighbor(1, 3); err == nil {
		t.Error("Neighbor(1,3) on degree-2 node: want error")
	}
	if _, err := p.Neighbor(0, 1); err == nil {
		t.Error("Neighbor(0,1): want error")
	}
	if _, err := p.PortTo(1, 3); err == nil {
		t.Error("PortTo(1,3) non-neighbour: want error")
	}
	if _, err := p.PortTo(9, 1); err == nil {
		t.Error("PortTo(9,1): want error")
	}
	if p.Degree(0) != 0 || p.Degree(99) != 0 {
		t.Error("Degree of invalid node should be 0")
	}
}

func TestRandomPortsIsPermutation(t *testing.T) {
	g := MustNew(30)
	rng := rand.New(rand.NewSource(3))
	for u := 1; u <= 30; u++ {
		for v := u + 1; v <= 30; v++ {
			if rng.Intn(2) == 0 {
				if err := g.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	p := RandomPorts(g, rand.New(rand.NewSource(4)))
	if err := p.Validate(g); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// PortTo and Neighbor must be inverse.
	for u := 1; u <= 30; u++ {
		for _, v := range g.Neighbors(u) {
			port, err := p.PortTo(u, v)
			if err != nil {
				t.Fatal(err)
			}
			back, err := p.Neighbor(u, port)
			if err != nil || back != v {
				t.Fatalf("Neighbor(%d,%d) = %d, %v; want %d", u, port, back, err, v)
			}
		}
	}
}

func TestRandomPortsDeterministic(t *testing.T) {
	g := ring(t, 20)
	p1 := RandomPorts(g, rand.New(rand.NewSource(99)))
	p2 := RandomPorts(g, rand.New(rand.NewSource(99)))
	for u := 1; u <= 20; u++ {
		for port := 1; port <= p1.Degree(u); port++ {
			v1, _ := p1.Neighbor(u, port)
			v2, _ := p2.Neighbor(u, port)
			if v1 != v2 {
				t.Fatalf("same seed, different assignment at node %d port %d", u, port)
			}
		}
	}
}

func TestPermutedPorts(t *testing.T) {
	g := ring(t, 4) // every node has neighbours {u−1,u+1} mod ring
	perms := make([][]int, 5)
	for u := 1; u <= 4; u++ {
		perms[u] = []int{1, 0} // swap the two neighbours
	}
	p, err := PermutedPorts(g, perms)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Node 2's sorted neighbours are {1,3}; swapped puts 3 on port 1.
	v, err := p.Neighbor(2, 1)
	if err != nil || v != 3 {
		t.Fatalf("Neighbor(2,1) = %d, %v; want 3", v, err)
	}
}

func TestPermutedPortsValidation(t *testing.T) {
	g := ring(t, 3)
	bad := [][]int{nil, {0, 0}, {0, 1}, {0, 1}}
	if _, err := PermutedPorts(g, bad); err == nil {
		t.Fatal("duplicate index permutation accepted")
	}
	short := [][]int{nil, {0}, {0, 1}, {0, 1}}
	if _, err := PermutedPorts(g, short); err == nil {
		t.Fatal("short permutation accepted")
	}
}

func TestNeighborsByPortCopy(t *testing.T) {
	g := ring(t, 4)
	p := SortedPorts(g)
	row := p.NeighborsByPort(1)
	if len(row) != 2 {
		t.Fatalf("NeighborsByPort(1) = %v", row)
	}
	row[0] = 999
	v, err := p.Neighbor(1, 1)
	if err != nil || v == 999 {
		t.Fatal("NeighborsByPort exposes internal state")
	}
	if p.NeighborsByPort(0) != nil {
		t.Fatal("NeighborsByPort(0) should be nil")
	}
}

func TestValidateDetectsMismatch(t *testing.T) {
	g := ring(t, 4)
	p := SortedPorts(g)
	h := ring(t, 5)
	if err := p.Validate(h); err == nil {
		t.Fatal("Validate accepted wrong-size graph")
	}
	// Mutate g after building ports: degree mismatch must be caught.
	if err := g.AddEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g); err == nil {
		t.Fatal("Validate accepted stale port table")
	}
}
