package graph

import "testing"

// FuzzDecodeBytes: arbitrary byte strings of the right length decode into
// *some* graph whose re-encoding reproduces the input bits — the Definition 2
// bijection between {0,1}^{n(n−1)/2} and graphs on n nodes.
func FuzzDecodeBytes(f *testing.F) {
	f.Add([]byte{0b10110000}, 4)
	f.Add([]byte{0xFF, 0xFF}, 6)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n < 0 || n > 48 {
			return
		}
		need := (EdgeCodeLen(n) + 7) / 8
		if len(data) < need {
			return
		}
		g, err := DecodeBytes(data, n)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		enc := g.EncodeBits()
		if enc.Len() != EdgeCodeLen(n) {
			t.Fatalf("encoding length %d", enc.Len())
		}
		// Bit-for-bit equality with the input prefix.
		back := enc.Bytes()
		for i := 0; i < EdgeCodeLen(n); i++ {
			inBit := data[i/8]&(1<<(7-uint(i%8))) != 0
			outBit := back[i/8]&(1<<(7-uint(i%8))) != 0
			if inBit != outBit {
				t.Fatalf("bit %d changed by round trip", i)
			}
		}
	})
}

// FuzzEdgeIndex: the lexicographic edge numbering is a bijection.
func FuzzEdgeIndex(f *testing.F) {
	f.Add(10, 3, 7)
	f.Fuzz(func(t *testing.T, n, u, v int) {
		if n < 2 || n > 1000 || u < 1 || v < 1 || u > n || v > n || u == v {
			return
		}
		idx, err := EdgeIndex(n, u, v)
		if err != nil {
			t.Fatal(err)
		}
		if idx < 0 || idx >= EdgeCodeLen(n) {
			t.Fatalf("index %d out of range", idx)
		}
		a, b, err := EdgeFromIndex(n, idx)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := u, v
		if lo > hi {
			lo, hi = hi, lo
		}
		if a != lo || b != hi {
			t.Fatalf("(%d,%d) → %d → (%d,%d)", u, v, idx, a, b)
		}
	})
}
