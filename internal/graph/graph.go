// Package graph implements the static communication networks of the paper:
// undirected graphs on nodes labelled {1,…,n}, the canonical binary encoding
// E(G) of Definition 2, relabelling, and port assignments.
//
// Every incompressibility argument in the paper manipulates E(G) — the
// length-n(n−1)/2 bit string listing the possible edges in standard
// lexicographic order — so the codec here is bit-exact and its edge
// enumeration order is part of the package contract.
package graph

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync/atomic"

	"routetab/internal/bitio"
)

// Common errors.
var (
	// ErrNodeRange indicates a node label outside {1,…,n}.
	ErrNodeRange = errors.New("graph: node label out of range")
	// ErrSelfLoop indicates an attempted self loop; the paper's networks are
	// simple graphs.
	ErrSelfLoop = errors.New("graph: self loops not allowed")
	// ErrBadEncoding indicates an E(G) string of the wrong length.
	ErrBadEncoding = errors.New("graph: malformed E(G) encoding")
	// ErrBadPermutation indicates a relabelling that is not a permutation of
	// {1,…,n}.
	ErrBadPermutation = errors.New("graph: relabelling is not a permutation")
)

// Graph is a simple undirected graph on nodes {1,…,n}. The zero value is the
// empty graph on zero nodes; use New for anything useful.
//
// Concurrency: any number of goroutines may read a Graph (Neighbors, AdjRow,
// HasEdge, …) concurrently — the lazy neighbour-list cache is published
// atomically. Mutations (AddEdge, RemoveEdge) require external
// synchronisation with respect to all other access.
type Graph struct {
	n     int
	words int // bitset words per adjacency row
	adj   []uint64

	// lists is the lazily built neighbour-list cache, published atomically
	// so concurrent readers never observe a partial rebuild. nil means
	// "stale": the next Neighbors call rebuilds from the bitsets.
	lists atomic.Pointer[[][]int]
	// version counts mutations; the shortestpath cache keys on it.
	version uint64
	edges   int
}

// New returns an edgeless graph on n ≥ 0 nodes labelled 1…n.
func New(n int) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: n = %d", ErrNodeRange, n)
	}
	words := (n + 63) / 64
	return &Graph{
		n:     n,
		words: words,
		adj:   make([]uint64, n*words),
	}, nil
}

// MustNew is New for statically valid sizes; it panics on error and exists
// for tests and internal constructions.
func MustNew(n int) *Graph {
	g, err := New(n)
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.edges }

// Version returns a counter that changes on every successful mutation.
// Caches keyed on (graph, version) — e.g. shortestpath.Cache — use it to
// detect staleness without hashing the edge set.
func (g *Graph) Version() uint64 { return g.version }

// Words returns the number of uint64 words per adjacency bitset row.
func (g *Graph) Words() int { return g.words }

// AdjRow exposes node u's adjacency bitset row (Words() words; bit (v−1) set
// iff uv ∈ E, laid out little-endian within each word). The returned slice
// aliases the graph's storage — callers must treat it as read-only. This is
// the word-parallel substrate of the bitset BFS in internal/shortestpath.
func (g *Graph) AdjRow(u int) []uint64 {
	if g.check(u) != nil {
		return nil
	}
	return g.row(u)
}

func (g *Graph) check(u int) error {
	if u < 1 || u > g.n {
		return fmt.Errorf("%w: %d not in [1,%d]", ErrNodeRange, u, g.n)
	}
	return nil
}

func (g *Graph) row(u int) []uint64 {
	off := (u - 1) * g.words
	return g.adj[off : off+g.words]
}

// AddEdge inserts the undirected edge uv. Adding an existing edge is a no-op.
func (g *Graph) AddEdge(u, v int) error {
	if err := g.check(u); err != nil {
		return err
	}
	if err := g.check(v); err != nil {
		return err
	}
	if u == v {
		return fmt.Errorf("%w: %d", ErrSelfLoop, u)
	}
	if g.HasEdge(u, v) {
		return nil
	}
	g.row(u)[(v-1)/64] |= 1 << uint((v-1)%64)
	g.row(v)[(u-1)/64] |= 1 << uint((u-1)%64)
	g.edges++
	g.invalidate()
	return nil
}

// RemoveEdge deletes the undirected edge uv. Removing a missing edge is a
// no-op.
func (g *Graph) RemoveEdge(u, v int) error {
	if err := g.check(u); err != nil {
		return err
	}
	if err := g.check(v); err != nil {
		return err
	}
	if u == v || !g.HasEdge(u, v) {
		return nil
	}
	g.row(u)[(v-1)/64] &^= 1 << uint((v-1)%64)
	g.row(v)[(u-1)/64] &^= 1 << uint((u-1)%64)
	g.edges--
	g.invalidate()
	return nil
}

// FromAdjWords builds a graph directly from n adjacency bitset rows of
// (n+63)/64 words each — the zero-copy arena snapshot's decode path, which
// ships whole rows instead of the triangular E(G) string. The rows are
// validated structurally (clear diagonal, clear tail bits past column n,
// symmetry) and copied, so the caller's buffer may be reused; the edge count
// is recomputed from the bits rather than trusted.
func FromAdjWords(n int, rows []uint64) (*Graph, error) {
	g, err := New(n)
	if err != nil {
		return nil, err
	}
	if len(rows) != n*g.words {
		return nil, fmt.Errorf("%w: %d adjacency words, want %d", ErrBadEncoding, len(rows), n*g.words)
	}
	copy(g.adj, rows)
	ones := 0
	var tailMask uint64
	if r := uint(n % 64); r != 0 {
		tailMask = ^uint64(0) << r
	}
	for u := 1; u <= n; u++ {
		row := g.row(u)
		if row[(u-1)/64]&(1<<uint((u-1)%64)) != 0 {
			return nil, fmt.Errorf("%w: self loop bit at node %d", ErrSelfLoop, u)
		}
		if tailMask != 0 && row[g.words-1]&tailMask != 0 {
			return nil, fmt.Errorf("%w: node %d has adjacency bits past column %d", ErrBadEncoding, u, n)
		}
		for w, word := range row {
			ones += bits.OnesCount64(word)
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &= word - 1
				v := w*64 + b + 1
				if v > u {
					break // symmetry of the lower triangle already checked from v's row
				}
				if g.row(v)[(u-1)/64]&(1<<uint((u-1)%64)) == 0 {
					return nil, fmt.Errorf("%w: edge %d-%d present only one way", ErrBadEncoding, v, u)
				}
			}
		}
	}
	if ones%2 != 0 {
		return nil, fmt.Errorf("%w: odd adjacency bit count %d", ErrBadEncoding, ones)
	}
	g.edges = ones / 2
	return g, nil
}

// invalidate records a mutation: bumps the version and drops the published
// neighbour-list cache.
func (g *Graph) invalidate() {
	g.version++
	g.lists.Store(nil)
}

// HasEdge reports whether uv ∈ E. Out-of-range labels report false.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 1 || u > g.n || v < 1 || v > g.n || u == v {
		return false
	}
	return g.row(u)[(v-1)/64]&(1<<uint((v-1)%64)) != 0
}

// Degree returns d(u), the number of neighbours of u.
func (g *Graph) Degree(u int) int {
	if g.check(u) != nil {
		return 0
	}
	d := 0
	for _, w := range g.row(u) {
		d += bits.OnesCount64(w)
	}
	return d
}

// ensureLists returns the current neighbour-list snapshot, building and
// publishing it if stale. Safe for concurrent readers: racing builders each
// construct a full snapshot from the (immutable, absent mutation) bitsets and
// atomically publish equivalent values.
func (g *Graph) ensureLists() [][]int {
	if l := g.lists.Load(); l != nil {
		return *l
	}
	lists := make([][]int, g.n+1)
	for u := 1; u <= g.n; u++ {
		row := g.row(u)
		list := make([]int, 0, g.Degree(u))
		for wi, w := range row {
			for w != 0 {
				b := bits.TrailingZeros64(w)
				list = append(list, wi*64+b+1)
				w &= w - 1
			}
		}
		lists[u] = list
	}
	g.lists.Store(&lists)
	return lists
}

// Neighbors returns the neighbours of u in increasing label order. The
// returned slice is shared; callers must not modify it. Safe for concurrent
// readers.
func (g *Graph) Neighbors(u int) []int {
	if g.check(u) != nil {
		return nil
	}
	return g.ensureLists()[u]
}

// FirstNeighbors returns the k least-labelled neighbours of u (all of them if
// d(u) < k). This is the paper's "first (c+3)log n directly adjacent nodes"
// (Lemma 3).
func (g *Graph) FirstNeighbors(u, k int) []int {
	nb := g.Neighbors(u)
	if k < 0 {
		k = 0
	}
	if k > len(nb) {
		k = len(nb)
	}
	return nb[:k]
}

// Nodes returns 1…n (fresh slice).
func (g *Graph) Nodes() []int {
	out := make([]int, g.n)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	cp := &Graph{
		n:     g.n,
		words: g.words,
		adj:   make([]uint64, len(g.adj)),
		edges: g.edges,
	}
	copy(cp.adj, g.adj)
	return cp
}

// Equal reports whether g and h have identical node sets and edge sets.
func (g *Graph) Equal(h *Graph) bool {
	if g.n != h.n {
		return false
	}
	for i := range g.adj {
		if g.adj[i] != h.adj[i] {
			return false
		}
	}
	return true
}

// Relabel returns the graph obtained by renaming node u to perm[u]. perm is
// 1-based (perm[0] ignored) and must be a permutation of {1,…,n}. This is the
// paper's model-β operation.
func (g *Graph) Relabel(perm []int) (*Graph, error) {
	if len(perm) != g.n+1 {
		return nil, fmt.Errorf("%w: length %d, want %d", ErrBadPermutation, len(perm), g.n+1)
	}
	seen := make([]bool, g.n+1)
	for u := 1; u <= g.n; u++ {
		p := perm[u]
		if p < 1 || p > g.n || seen[p] {
			return nil, fmt.Errorf("%w: perm[%d] = %d", ErrBadPermutation, u, p)
		}
		seen[p] = true
	}
	out := MustNew(g.n)
	for u := 1; u <= g.n; u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				if err := out.AddEdge(perm[u], perm[v]); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// EdgeCodeLen returns n(n−1)/2, the length of E(G) for an n-node graph.
func EdgeCodeLen(n int) int { return n * (n - 1) / 2 }

// EdgeIndex returns the 0-based position of the possible edge uv (u≠v) in the
// standard lexicographic enumeration (1,2),(1,3),…,(1,n),(2,3),… used by
// Definition 2.
func EdgeIndex(n, u, v int) (int, error) {
	if u < 1 || u > n || v < 1 || v > n || u == v {
		return 0, fmt.Errorf("%w: edge (%d,%d) in n=%d", ErrNodeRange, u, v, n)
	}
	if u > v {
		u, v = v, u
	}
	// Edges with first endpoint < u precede; then v within u's block.
	return (u-1)*n - u*(u-1)/2 + (v - u - 1), nil
}

// EdgeFromIndex is the inverse of EdgeIndex.
func EdgeFromIndex(n, idx int) (u, v int, err error) {
	if idx < 0 || idx >= EdgeCodeLen(n) {
		return 0, 0, fmt.Errorf("%w: edge index %d in n=%d", ErrNodeRange, idx, n)
	}
	u = 1
	for {
		block := n - u
		if idx < block {
			return u, u + 1 + idx, nil
		}
		idx -= block
		u++
	}
}

// EncodeBits writes E(G) (Definition 2) to a fresh bit writer: bit i is 1 iff
// the i-th possible edge in lexicographic order is present.
func (g *Graph) EncodeBits() *bitio.Writer {
	w := bitio.NewWriter(EdgeCodeLen(g.n))
	for u := 1; u <= g.n; u++ {
		for v := u + 1; v <= g.n; v++ {
			w.WriteBit(g.HasEdge(u, v))
		}
	}
	return w
}

// EncodeBytes returns E(G) packed into bytes (final byte zero-padded).
func (g *Graph) EncodeBytes() []byte { return g.EncodeBits().Bytes() }

// DecodeBits reconstructs a graph on n nodes from an E(G) bit stream.
func DecodeBits(r *bitio.Reader, n int) (*Graph, error) {
	if r.Remaining() < EdgeCodeLen(n) {
		return nil, fmt.Errorf("%w: %d bits remaining, want %d", ErrBadEncoding, r.Remaining(), EdgeCodeLen(n))
	}
	g := MustNew(n)
	for u := 1; u <= n; u++ {
		for v := u + 1; v <= n; v++ {
			b, err := r.ReadBit()
			if err != nil {
				return nil, err
			}
			if b {
				if err := g.AddEdge(u, v); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// DecodeBytes reconstructs a graph on n nodes from packed E(G) bytes.
func DecodeBytes(buf []byte, n int) (*Graph, error) {
	r, err := bitio.NewReader(buf, EdgeCodeLen(n))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEncoding, err)
	}
	return DecodeBits(r, n)
}

// Edges returns all edges (u < v) in lexicographic order.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.edges)
	for u := 1; u <= g.n; u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	return out
}

// String renders a compact human-readable description.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph{n=%d m=%d}", g.n, g.edges)
	return sb.String()
}

// DOT renders the graph in Graphviz format (debugging helper).
func (g *Graph) DOT(name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph %s {\n", name)
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "  %d -- %d;\n", e[0], e[1])
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Complement returns the complement graph: E(Ḡ) is E(G) with every bit
// flipped. Complementation preserves randomness deficiency up to O(1) —
// a graph and its complement are equally (in)compressible — which the kolmo
// tests exploit.
func (g *Graph) Complement() *Graph {
	out := MustNew(g.n)
	for u := 1; u <= g.n; u++ {
		for v := u + 1; v <= g.n; v++ {
			if !g.HasEdge(u, v) {
				// Adding to a fresh graph with valid labels cannot fail.
				if err := out.AddEdge(u, v); err != nil {
					panic(err)
				}
			}
		}
	}
	return out
}

// FirstCommonNeighbor returns the least node adjacent to both u and v, or 0
// if none exists. Runs over the adjacency bitsets word-wise, so diameter-2
// certification (Lemma 2) over all pairs costs O(n³/64).
func (g *Graph) FirstCommonNeighbor(u, v int) int {
	if g.check(u) != nil || g.check(v) != nil {
		return 0
	}
	ru, rv := g.row(u), g.row(v)
	for wi := range ru {
		if w := ru[wi] & rv[wi]; w != 0 {
			return wi*64 + bits.TrailingZeros64(w) + 1
		}
	}
	return 0
}

// CommonNeighborCount returns |N(u) ∩ N(v)|.
func (g *Graph) CommonNeighborCount(u, v int) int {
	if g.check(u) != nil || g.check(v) != nil {
		return 0
	}
	ru, rv := g.row(u), g.row(v)
	count := 0
	for wi := range ru {
		count += bits.OnesCount64(ru[wi] & rv[wi])
	}
	return count
}

// DegreeSequence returns the sorted (descending) degree sequence.
func (g *Graph) DegreeSequence() []int {
	out := make([]int, g.n)
	for u := 1; u <= g.n; u++ {
		out[u-1] = g.Degree(u)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// IsConnected reports whether the graph is connected (vacuously true for
// n ≤ 1).
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	seen := make([]bool, g.n+1)
	queue := []int{1}
	seen[1] = true
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if !seen[v] {
				seen[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	return count == g.n
}
