package graph

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ErrBadEdgeList indicates a malformed edge-list document.
var ErrBadEdgeList = errors.New("graph: malformed edge list")

// ReadEdgeList parses the plain-text edge-list format:
//
//	# comment
//	n <nodes>
//	<u> <v>
//	…
//
// Node labels are 1-based; duplicate edges are tolerated (idempotent add).
// This is the interchange format cmd/routetab accepts, so the tools run on
// real topologies, not just generated ones.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var g *Graph
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if g == nil {
			if len(fields) != 2 || fields[0] != "n" {
				return nil, fmt.Errorf("%w: line %d: want \"n <nodes>\" header, got %q", ErrBadEdgeList, line, text)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("%w: line %d: node count %q", ErrBadEdgeList, line, fields[1])
			}
			var gerr error
			g, gerr = New(n)
			if gerr != nil {
				return nil, gerr
			}
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("%w: line %d: want \"u v\", got %q", ErrBadEdgeList, line, text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadEdgeList, line, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadEdgeList, line, err)
		}
		if err := g.AddEdge(u, v); err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadEdgeList, line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("%w: missing \"n <nodes>\" header", ErrBadEdgeList)
	}
	return g, nil
}

// WriteEdgeList emits the graph in ReadEdgeList's format.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", g.n); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e[0], e[1]); err != nil {
			return err
		}
	}
	return bw.Flush()
}
