// Package models defines the paper's nine cost models for routing schemes:
// the cross product of what a node knows about its ports/neighbours
// (IA, IB, II) and how nodes may be labelled (α, β, γ), together with the
// space-accounting rules each model imposes (Section 1).
package models

import (
	"errors"
	"fmt"
	"strings"
)

// PortKnowledge is the first model dimension.
type PortKnowledge int

const (
	// PortsFixed (IA): nodes do not know their neighbours and the port
	// assignment is fixed by an adversary and cannot be altered.
	PortsFixed PortKnowledge = iota + 1
	// PortsFree (IB): nodes do not know their neighbours but the port
	// assignment may be chosen before the routing scheme is computed.
	PortsFree
	// NeighborsKnown (II): nodes know the labels of their neighbours and
	// over which edge each is reached; this information is free.
	NeighborsKnown
)

// Relabeling is the second model dimension.
type Relabeling int

const (
	// RelabelNone (α): nodes keep their original labels 1,…,n.
	RelabelNone Relabeling = iota + 1
	// RelabelPermute (β): nodes may be permuted within {1,…,n}.
	RelabelPermute
	// RelabelFree (γ): nodes may get arbitrary labels, whose bits are added
	// to the space requirement.
	RelabelFree
)

// Model is one cell of the paper's 3×3 grid.
type Model struct {
	Ports   PortKnowledge
	Relabel Relabeling
}

// The nine models by their paper names.
var (
	IAAlpha = Model{PortsFixed, RelabelNone}
	IABeta  = Model{PortsFixed, RelabelPermute}
	IAGamma = Model{PortsFixed, RelabelFree}
	IBAlpha = Model{PortsFree, RelabelNone}
	IBBeta  = Model{PortsFree, RelabelPermute}
	IBGamma = Model{PortsFree, RelabelFree}
	IIAlpha = Model{NeighborsKnown, RelabelNone}
	IIBeta  = Model{NeighborsKnown, RelabelPermute}
	IIGamma = Model{NeighborsKnown, RelabelFree}
)

// ErrUnknownModel reports an unparsable model name.
var ErrUnknownModel = errors.New("models: unknown model")

// All returns the nine models in Table 1's row-major order (IA, IB, II ×
// α, β, γ).
func All() []Model {
	return []Model{
		IAAlpha, IABeta, IAGamma,
		IBAlpha, IBBeta, IBGamma,
		IIAlpha, IIBeta, IIGamma,
	}
}

// String renders the paper's name for the port dimension.
func (p PortKnowledge) String() string {
	switch p {
	case PortsFixed:
		return "IA"
	case PortsFree:
		return "IB"
	case NeighborsKnown:
		return "II"
	default:
		return fmt.Sprintf("PortKnowledge(%d)", int(p))
	}
}

// String renders the paper's name for the relabelling dimension.
func (r Relabeling) String() string {
	switch r {
	case RelabelNone:
		return "alpha"
	case RelabelPermute:
		return "beta"
	case RelabelFree:
		return "gamma"
	default:
		return fmt.Sprintf("Relabeling(%d)", int(r))
	}
}

// String renders the model as e.g. "II^alpha" (the paper's II ∧ α).
func (m Model) String() string {
	return m.Ports.String() + "^" + m.Relabel.String()
}

// Parse resolves names like "II^alpha", "ia^beta" or "IB^gamma".
func Parse(s string) (Model, error) {
	parts := strings.SplitN(strings.ToLower(strings.TrimSpace(s)), "^", 2)
	if len(parts) != 2 {
		return Model{}, fmt.Errorf("%w: %q (want PORT^RELABEL, e.g. II^alpha)", ErrUnknownModel, s)
	}
	var p PortKnowledge
	switch parts[0] {
	case "ia":
		p = PortsFixed
	case "ib":
		p = PortsFree
	case "ii":
		p = NeighborsKnown
	default:
		return Model{}, fmt.Errorf("%w: port dimension %q", ErrUnknownModel, parts[0])
	}
	var r Relabeling
	switch parts[1] {
	case "alpha", "a":
		r = RelabelNone
	case "beta", "b":
		r = RelabelPermute
	case "gamma", "g":
		r = RelabelFree
	default:
		return Model{}, fmt.Errorf("%w: relabel dimension %q", ErrUnknownModel, parts[1])
	}
	return Model{Ports: p, Relabel: r}, nil
}

// Valid reports whether both dimensions are set to defined values.
func (m Model) Valid() bool {
	return m.Ports >= PortsFixed && m.Ports <= NeighborsKnown &&
		m.Relabel >= RelabelNone && m.Relabel <= RelabelFree
}

// NeighborsFree reports whether neighbour identities come for free (II).
func (m Model) NeighborsFree() bool { return m.Ports == NeighborsKnown }

// PortsReassignable reports whether the scheme may choose the port
// assignment (IB). The paper never combines free ports with free neighbour
// knowledge (footnote to model II): under II the port assignment is
// irrelevant and must not be exploitable, so II does not grant this.
func (m Model) PortsReassignable() bool { return m.Ports == PortsFree }

// MayRelabel reports whether any relabelling is allowed (β or γ).
func (m Model) MayRelabel() bool { return m.Relabel != RelabelNone }

// LabelBitsCharged reports whether label storage is added to the space
// requirement (γ only; under α and β labels stay within {1,…,n} and are the
// uncharged minimum).
func (m Model) LabelBitsCharged() bool { return m.Relabel == RelabelFree }

// Requirements states what a routing-scheme construction needs from a model.
type Requirements struct {
	// NeighborsKnown requires model II.
	NeighborsKnown bool
	// FreePorts requires model IB (or is satisfied vacuously under II when
	// NeighborsOrFreePorts is used instead).
	FreePorts bool
	// NeighborsOrFreePorts requires IB ∨ II (Theorem 1's condition).
	NeighborsOrFreePorts bool
	// ArbitraryLabels requires γ.
	ArbitraryLabels bool
	// AnyRelabel requires β ∨ γ.
	AnyRelabel bool
}

// Supports reports whether model m provides everything req asks for.
func (m Model) Supports(req Requirements) bool {
	if req.NeighborsKnown && !m.NeighborsFree() {
		return false
	}
	if req.FreePorts && !m.PortsReassignable() {
		return false
	}
	if req.NeighborsOrFreePorts && !m.NeighborsFree() && !m.PortsReassignable() {
		return false
	}
	if req.ArbitraryLabels && !m.LabelBitsCharged() {
		return false
	}
	if req.AnyRelabel && !m.MayRelabel() {
		return false
	}
	return true
}
