package models

import (
	"errors"
	"testing"
)

func TestAllNineDistinct(t *testing.T) {
	all := All()
	if len(all) != 9 {
		t.Fatalf("All() returned %d models", len(all))
	}
	seen := map[string]bool{}
	for _, m := range all {
		if !m.Valid() {
			t.Errorf("invalid model %v", m)
		}
		s := m.String()
		if seen[s] {
			t.Errorf("duplicate model %s", s)
		}
		seen[s] = true
	}
}

func TestStringNames(t *testing.T) {
	tests := []struct {
		m    Model
		want string
	}{
		{IAAlpha, "IA^alpha"},
		{IBBeta, "IB^beta"},
		{IIGamma, "II^gamma"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("%v.String() = %q, want %q", tt.m, got, tt.want)
		}
	}
	if (Model{}).String() == "" {
		t.Error("zero model should still render")
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, m := range All() {
		got, err := Parse(m.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", m.String(), err)
		}
		if got != m {
			t.Fatalf("Parse(%q) = %v", m.String(), got)
		}
	}
}

func TestParseVariants(t *testing.T) {
	tests := []struct {
		in   string
		want Model
	}{
		{"ii^alpha", IIAlpha},
		{" IA^beta ", IABeta},
		{"ib^g", IBGamma},
		{"II^a", IIAlpha},
	}
	for _, tt := range tests {
		got, err := Parse(tt.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.in, err)
			continue
		}
		if got != tt.want {
			t.Errorf("Parse(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
	for _, bad := range []string{"", "II", "XX^alpha", "II^delta", "II^alpha^beta"} {
		if _, err := Parse(bad); !errors.Is(err, ErrUnknownModel) {
			t.Errorf("Parse(%q): err = %v, want ErrUnknownModel", bad, err)
		}
	}
}

func TestCapabilities(t *testing.T) {
	if !IIAlpha.NeighborsFree() || IBAlpha.NeighborsFree() || IAAlpha.NeighborsFree() {
		t.Error("NeighborsFree wrong")
	}
	if !IBAlpha.PortsReassignable() || IAAlpha.PortsReassignable() || IIAlpha.PortsReassignable() {
		t.Error("PortsReassignable wrong")
	}
	if IAAlpha.MayRelabel() || !IABeta.MayRelabel() || !IAGamma.MayRelabel() {
		t.Error("MayRelabel wrong")
	}
	if IABeta.LabelBitsCharged() || !IAGamma.LabelBitsCharged() {
		t.Error("LabelBitsCharged wrong")
	}
}

func TestSupports(t *testing.T) {
	theorem1 := Requirements{NeighborsOrFreePorts: true}
	wantTrue := []Model{IBAlpha, IBBeta, IBGamma, IIAlpha, IIBeta, IIGamma}
	wantFalse := []Model{IAAlpha, IABeta, IAGamma}
	for _, m := range wantTrue {
		if !m.Supports(theorem1) {
			t.Errorf("%v should support Theorem 1", m)
		}
	}
	for _, m := range wantFalse {
		if m.Supports(theorem1) {
			t.Errorf("%v should not support Theorem 1", m)
		}
	}

	theorem2 := Requirements{NeighborsKnown: true, ArbitraryLabels: true}
	for _, m := range All() {
		want := m == IIGamma
		if got := m.Supports(theorem2); got != want {
			t.Errorf("%v.Supports(Theorem 2) = %t, want %t", m, got, want)
		}
	}

	if !IAAlpha.Supports(Requirements{}) {
		t.Error("empty requirements must hold everywhere")
	}
	if IAAlpha.Supports(Requirements{FreePorts: true}) {
		t.Error("IA grants free ports")
	}
	if !IBBeta.Supports(Requirements{AnyRelabel: true}) || IBAlpha.Supports(Requirements{AnyRelabel: true}) {
		t.Error("AnyRelabel wrong")
	}
}
