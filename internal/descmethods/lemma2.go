package descmethods

import (
	"routetab/internal/bitio"
	"routetab/internal/graph"
	"routetab/internal/kolmo"
	"routetab/internal/shortestpath"
)

// DistantPairCodec is Lemma 2's description method: if some pair (u, v) has
// distance greater than 2, then no neighbour w of u has an edge to v — all
// those E(G) bits are 0 and can be deleted, saving d(u) bits against a
// 2·log n + (n−1) header. On a o(n)-random graph (degrees ≈ n/2) the savings
// would exceed the randomness deficiency, a contradiction: every random
// graph has diameter 2.
type DistantPairCodec struct{}

var _ kolmo.Codec = DistantPairCodec{}

// Name implements kolmo.Codec.
func (DistantPairCodec) Name() string { return "lemma2-distant-pair" }

// Encode implements kolmo.Codec.
func (DistantPairCodec) Encode(g *graph.Graph) (*bitio.Writer, bool, error) {
	n := g.N()
	u, v := findDistantPair(g)
	if u == 0 {
		return nil, false, nil
	}
	w := bitio.NewWriter(graph.EdgeCodeLen(n))
	if err := writeHeader(w, tagDistantPair); err != nil {
		return nil, false, err
	}
	// The identities of u < v in 2·log n bits.
	if err := writeNode(w, u, n); err != nil {
		return nil, false, err
	}
	if err := writeNode(w, v, n); err != nil {
		return nil, false, err
	}
	// u's neighbourhood row explicitly, so the decoder knows which (w, v)
	// bits were deleted.
	writeRow(w, g, u)
	// Residual: drop u's row (re-encoded above, a wash) and — the actual
	// savings — every bit between a neighbour of u and v, all provably 0.
	copyResidual(w, g, skipDistant(g, u, v))
	return w, true, nil
}

// skipDistant reports the deleted positions: bits incident to u, and bits
// (w, v) with w ∈ N(u).
func skipDistant(g *graph.Graph, u, v int) func(a, b int) bool {
	return func(a, b int) bool {
		if a == u || b == u {
			return true
		}
		if b == v && g.HasEdge(u, a) {
			return true
		}
		if a == v && g.HasEdge(u, b) {
			return true
		}
		return false
	}
}

// Decode implements kolmo.Codec.
func (DistantPairCodec) Decode(r *bitio.Reader, n int) (*graph.Graph, error) {
	if err := readHeader(r, tagDistantPair); err != nil {
		return nil, err
	}
	u, err := readNode(r, n)
	if err != nil {
		return nil, err
	}
	v, err := readNode(r, n)
	if err != nil {
		return nil, err
	}
	isNb, err := readRow(r, u, n)
	if err != nil {
		return nil, err
	}
	skip := func(a, b int) bool {
		if a == u || b == u {
			return true
		}
		if b == v && a != u && isNb[a] {
			return true
		}
		if a == v && b != u && isNb[b] {
			return true
		}
		return false
	}
	known := func(a, b int) bool {
		if a == u {
			return isNb[b]
		}
		if b == u {
			return isNb[a]
		}
		return false // deleted (w, v) bits are all 0
	}
	return restoreResidual(r, n, skip, known)
}

// findDistantPair returns a pair at distance > 2 (0, 0 if none exists —
// i.e. the graph has diameter ≤ 2 componentwise and is connected enough).
func findDistantPair(g *graph.Graph) (int, int) {
	n := g.N()
	for u := 1; u <= n; u++ {
		res, err := shortestpath.BFS(g, u)
		if err != nil {
			return 0, 0
		}
		for v := u + 1; v <= n; v++ {
			if res.Dist[v] > 2 || res.Dist[v] == shortestpath.Unreachable {
				return u, v
			}
		}
	}
	return 0, 0
}
