// Package descmethods implements the paper's incompressibility proofs as
// executable description methods (kolmo.Codec): each lemma/theorem describes
// a way to re-encode E(G) that is shorter than n(n−1)/2 bits exactly when
// some structure (a deviant degree, a distant pair, an uncovered node, a
// small routing function) exists. Every codec here round-trips bit-exactly,
// so the savings it achieves are genuine description lengths — running the
// codec on a graph *is* running the paper's proof on that graph.
//
// The correspondence:
//
//	Lemma 1   → DegreeCodec        (enumerative code for a deviant degree row)
//	Lemma 2   → DistantPairCodec   (zero bits between N(u) and a far node v)
//	Lemma 3   → UncoveredCodec     (zero bits between w and u's first K neighbours)
//	Theorem 6 → RoutingFuncCodec   (shortest-path F(u) reveals one edge per
//	                                non-neighbour)
//	Theorem 10→ FullInfoCodec      (full-information F(u) reveals the whole
//	                                N(u) × V∖N(u) block)
package descmethods

import (
	"fmt"
	"math/big"

	"routetab/internal/bitio"
	"routetab/internal/graph"
	"routetab/internal/kolmo"
)

// writeHeader emits the "description of this discussion in O(1) bits" — a
// fixed 8-bit tag identifying the description method, so concatenated
// descriptions stay parseable.
func writeHeader(w *bitio.Writer, tag uint8) error {
	return w.WriteBits(uint64(tag), 8)
}

// readHeader consumes and checks the method tag.
func readHeader(r *bitio.Reader, tag uint8) error {
	got, err := r.ReadBits(8)
	if err != nil {
		return err
	}
	if got != uint64(tag) {
		return fmt.Errorf("descmethods: tag %d, want %d", got, tag)
	}
	return nil
}

// Method tags.
const (
	tagDegree      = 1
	tagDistantPair = 2
	tagUncovered   = 3
	tagRoutingFunc = 4
	tagFullInfo    = 5
)

// writeNode emits a node label in the paper's ⌈log(n+1)⌉ bits.
func writeNode(w *bitio.Writer, u, n int) error {
	return w.WriteBits(uint64(u), bitio.CeilLogPlus1(n))
}

// readNode consumes a node label.
func readNode(r *bitio.Reader, n int) (int, error) {
	v, err := r.ReadBits(bitio.CeilLogPlus1(n))
	if err != nil {
		return 0, err
	}
	u := int(v)
	if u < 1 || u > n {
		return 0, fmt.Errorf("descmethods: decoded node %d out of [1,%d]", u, n)
	}
	return u, nil
}

// writeRow emits the characteristic sequence of u's neighbourhood over the
// other n−1 nodes, in increasing order (the proofs' "presence or absence of
// edges between u and the other nodes in n−1 bits").
func writeRow(w *bitio.Writer, g *graph.Graph, u int) {
	for v := 1; v <= g.N(); v++ {
		if v != u {
			w.WriteBit(g.HasEdge(u, v))
		}
	}
}

// readRow consumes a neighbourhood row written by writeRow and returns the
// neighbour set as a membership slice (index by node).
func readRow(r *bitio.Reader, u, n int) ([]bool, error) {
	isNb := make([]bool, n+1)
	for v := 1; v <= n; v++ {
		if v == u {
			continue
		}
		b, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		isNb[v] = b
	}
	return isNb, nil
}

// copyResidual writes every E(G) bit whose lexicographic edge position is not
// skipped. skip reports whether the bit for edge (u,v), u < v, is omitted
// (because the decoder can reconstruct it).
func copyResidual(w *bitio.Writer, g *graph.Graph, skip func(u, v int) bool) {
	n := g.N()
	for u := 1; u <= n; u++ {
		for v := u + 1; v <= n; v++ {
			if !skip(u, v) {
				w.WriteBit(g.HasEdge(u, v))
			}
		}
	}
}

// restoreResidual rebuilds a graph: skipped bits come from known(u,v), the
// rest from the stream.
func restoreResidual(r *bitio.Reader, n int, skip func(u, v int) bool, known func(u, v int) bool) (*graph.Graph, error) {
	g, err := graph.New(n)
	if err != nil {
		return nil, err
	}
	for u := 1; u <= n; u++ {
		for v := u + 1; v <= n; v++ {
			var present bool
			if skip(u, v) {
				present = known(u, v)
			} else {
				present, err = r.ReadBit()
				if err != nil {
					return nil, err
				}
			}
			if present {
				if err := g.AddEdge(u, v); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// binomial returns C(n, k) as a big integer (0 for invalid arguments).
func binomial(n, k int) *big.Int {
	if k < 0 || n < 0 || k > n {
		return big.NewInt(0)
	}
	return new(big.Int).Binomial(int64(n), int64(k))
}

// bitsFor returns the field width needed to store values 0…v−1 (⌈log₂ v⌉).
func bitsFor(v *big.Int) int {
	if v.Sign() <= 0 {
		return 0
	}
	m := new(big.Int).Sub(v, big.NewInt(1))
	return m.BitLen()
}

// writeBigInt emits v in a fixed width-bit big-endian field.
func writeBigInt(w *bitio.Writer, v *big.Int, width int) error {
	if v.Sign() < 0 || v.BitLen() > width {
		return fmt.Errorf("descmethods: value %v does not fit %d bits", v, width)
	}
	for i := width - 1; i >= 0; i-- {
		w.WriteBit(v.Bit(i) == 1)
	}
	return nil
}

// readBigInt consumes a fixed-width big-endian field.
func readBigInt(r *bitio.Reader, width int) (*big.Int, error) {
	v := new(big.Int)
	for i := 0; i < width; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		v.Lsh(v, 1)
		if b {
			v.Or(v, big.NewInt(1))
		}
	}
	return v, nil
}

// combRank returns the colex rank of the sorted 0-based position set among
// all d-subsets of {0,…,n−1} — the "index of the interconnection pattern in
// the ensemble" of Lemma 1's proof (an enumerative code).
func combRank(positions []int) *big.Int {
	rank := new(big.Int)
	for i, p := range positions {
		rank.Add(rank, binomial(p, i+1))
	}
	return rank
}

// combUnrank inverts combRank for d-subsets of {0,…,n−1}.
func combUnrank(rank *big.Int, n, d int) ([]int, error) {
	positions := make([]int, d)
	r := new(big.Int).Set(rank)
	p := n - 1
	for i := d; i >= 1; i-- {
		// Largest p with C(p, i) ≤ r.
		for p >= 0 && binomial(p, i).Cmp(r) > 0 {
			p--
		}
		if p < 0 {
			return nil, fmt.Errorf("descmethods: unrank underflow (rank %v, n %d, d %d)", rank, n, d)
		}
		positions[i-1] = p
		r.Sub(r, binomial(p, i))
		p--
	}
	if r.Sign() != 0 {
		return nil, fmt.Errorf("descmethods: unrank residue %v", r)
	}
	return positions, nil
}

// AllProofCodecs returns the standard set of lemma/claim description
// methods with randomness parameter c — the codecs a certification sweep
// runs to show none of them applies to a random graph. (The theorem codecs
// take a routing scheme as input and are constructed separately.)
func AllProofCodecs(c float64) []kolmo.Codec {
	return []kolmo.Codec{
		DegreeCodec{},
		DistantPairCodec{},
		UncoveredCodec{C: c},
		Claim1Codec{},
	}
}
