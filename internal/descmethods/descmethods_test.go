package descmethods

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"routetab/internal/bitio"
	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/kolmo"
)

func TestCombRankUnrankRoundTripQuick(t *testing.T) {
	f := func(seed int64, nn, dd uint8) bool {
		n := int(nn)%40 + 1
		d := int(dd) % (n + 1)
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(n)[:d]
		pos := append([]int(nil), perm...)
		sortInts(pos)
		rank := combRank(pos)
		back, err := combUnrank(rank, n, d)
		if err != nil {
			return false
		}
		if len(back) != len(pos) {
			return false
		}
		for i := range pos {
			if back[i] != pos[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] > xs[j]; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
}

func TestCombRankBounds(t *testing.T) {
	// The rank of any d-subset of n elements is < C(n, d).
	n, d := 20, 7
	max := binomial(n, d)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		pos := rng.Perm(n)[:d]
		sortInts(pos)
		if combRank(pos).Cmp(max) >= 0 {
			t.Fatalf("rank %v ≥ C(%d,%d) = %v", combRank(pos), n, d, max)
		}
	}
	// Extremes: {0..d−1} has rank 0; {n−d..n−1} has rank C(n,d)−1.
	lo := make([]int, d)
	hi := make([]int, d)
	for i := 0; i < d; i++ {
		lo[i] = i
		hi[i] = n - d + i
	}
	if combRank(lo).Sign() != 0 {
		t.Fatalf("rank of least subset = %v", combRank(lo))
	}
	want := new(big.Int).Sub(max, big.NewInt(1))
	if combRank(hi).Cmp(want) != 0 {
		t.Fatalf("rank of greatest subset = %v, want %v", combRank(hi), want)
	}
}

func TestBigIntFieldRoundTrip(t *testing.T) {
	w := bitio.NewWriter(0)
	v := new(big.Int).Lsh(big.NewInt(12345), 100) // > 64 bits
	if err := writeBigInt(w, v, 120); err != nil {
		t.Fatal(err)
	}
	r := bitio.ReaderFor(w)
	got, err := readBigInt(r, 120)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(v) != 0 {
		t.Fatalf("got %v, want %v", got, v)
	}
	if err := writeBigInt(w, v, 50); err == nil {
		t.Fatal("oversize value accepted")
	}
	if err := writeBigInt(w, big.NewInt(-1), 8); err == nil {
		t.Fatal("negative value accepted")
	}
}

func describeOn(t *testing.T, codec kolmo.Codec, g *graph.Graph) *kolmo.Description {
	t.Helper()
	d, err := kolmo.Describe(codec, g)
	if err != nil {
		t.Fatalf("%s: %v", codec.Name(), err)
	}
	return d
}

func TestDegreeCodecOnSkewedGraphs(t *testing.T) {
	// Chain: every degree ≤ 2 ≪ (n−1)/2 — huge savings, exact round trip.
	// (At n = 256 the deviation clears the default Lemma 1 radius ≈ √(4·n·log n).)
	chain, err := gengraph.Chain(256)
	if err != nil {
		t.Fatal(err)
	}
	d := describeOn(t, DegreeCodec{}, chain)
	if d.Savings <= 0 {
		t.Fatalf("chain savings = %d, want > 0", d.Savings)
	}
	// Star centre has degree n−1 — also deviant.
	star, err := gengraph.Star(256)
	if err != nil {
		t.Fatal(err)
	}
	d = describeOn(t, DegreeCodec{}, star)
	if d.Savings <= 0 {
		t.Fatalf("star savings = %d, want > 0", d.Savings)
	}
}

func TestDegreeCodecNotApplicableOnRandom(t *testing.T) {
	g, err := gengraph.GnHalf(128, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if _, applicable, err := (DegreeCodec{}).Encode(g); err != nil || applicable {
		t.Fatalf("random graph: applicable=%t err=%v — Lemma 1 violated?", applicable, err)
	}
}

func TestDegreeCodecCustomThreshold(t *testing.T) {
	// With MinDeviation 1, almost any graph has a qualifying node; the codec
	// must still round-trip even when savings are negative.
	g, err := gengraph.GnHalf(32, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	d := describeOn(t, DegreeCodec{MinDeviation: 1}, g)
	if d.Bits <= 0 {
		t.Fatal("empty description")
	}
}

func TestDistantPairCodec(t *testing.T) {
	// Chain has distance-3 pairs; savings = d(u) − 2·log n − O(1) may be
	// small but the round trip must be exact.
	chain, err := gengraph.Chain(32)
	if err != nil {
		t.Fatal(err)
	}
	d := describeOn(t, DistantPairCodec{}, chain)
	if d.Bits <= 0 {
		t.Fatal("empty description")
	}
	// A dense graph with one far pair: two cliques joined by a path.
	g := graph.MustNew(40)
	for u := 1; u <= 18; u++ {
		for v := u + 1; v <= 18; v++ {
			if err := g.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	for u := 21; u <= 40; u++ {
		for v := u + 1; v <= 40; v++ {
			if err := g.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, e := range [][2]int{{18, 19}, {19, 20}, {20, 21}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	d = describeOn(t, DistantPairCodec{}, g)
	// The far pair's endpoint has clique degree ≈ 17 ≫ 2·log 40 + 8 ≈ 20…
	// savings may hover near zero; exactness is the test, positivity the
	// bonus on the bigger clique side.
	if d.Bits >= graph.EdgeCodeLen(40)+200 {
		t.Fatalf("description absurdly long: %d", d.Bits)
	}
}

func TestDistantPairNotApplicableOnRandom(t *testing.T) {
	g, err := gengraph.GnHalf(128, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if _, applicable, err := (DistantPairCodec{}).Encode(g); err != nil || applicable {
		t.Fatalf("random graph: applicable=%t err=%v — Lemma 2 violated?", applicable, err)
	}
}

func TestUncoveredCodec(t *testing.T) {
	// Chain: node 1's only neighbour is 2, so node 4 is uncovered.
	chain, err := gengraph.Chain(64)
	if err != nil {
		t.Fatal(err)
	}
	d := describeOn(t, UncoveredCodec{C: 3}, chain)
	if d.Bits <= 0 {
		t.Fatal("empty description")
	}
}

func TestUncoveredNotApplicableOnRandom(t *testing.T) {
	g, err := gengraph.GnHalf(128, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if _, applicable, err := (UncoveredCodec{}).Encode(g); err != nil || applicable {
		t.Fatalf("random graph: applicable=%t err=%v — Lemma 3 violated?", applicable, err)
	}
}

func TestRoutingFuncCodecRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g, err := gengraph.GnHalf(48, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		d := describeOn(t, RoutingFuncCodec{U: 1}, g)
		// Ledger: description = E(G) + |F(u)| + headers − (n−1) − #nonNb.
		// With |F(u)| ≈ 6n and #nonNb ≈ n/2 the description must be longer
		// than E(G) (consistent with the lower bound), but not by more than
		// |F(u)|.
		if d.Savings > 0 {
			t.Fatalf("seed %d: positive savings %d with a 6n-bit F(u) — impossible on random graphs", seed, d.Savings)
		}
		if -d.Savings > 8*48+200 {
			t.Fatalf("seed %d: overhead %d exceeds |F(u)| + headers", seed, -d.Savings)
		}
	}
}

func TestRoutingFuncCodecPivots(t *testing.T) {
	g, err := gengraph.GnHalf(40, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []int{1, 17, 40} {
		describeOn(t, RoutingFuncCodec{U: u}, g)
	}
	// Pivot beyond n: not applicable.
	if _, applicable, err := (RoutingFuncCodec{U: 99}).Encode(g); err != nil || applicable {
		t.Fatalf("pivot 99: applicable=%t err=%v", applicable, err)
	}
	// Chain: Theorem 1 construction fails, not applicable.
	chain, err := gengraph.Chain(16)
	if err != nil {
		t.Fatal(err)
	}
	if _, applicable, err := (RoutingFuncCodec{}).Encode(chain); err != nil || applicable {
		t.Fatalf("chain: applicable=%t err=%v", applicable, err)
	}
}

func TestFullInfoCodecRoundTripAndBlockSavings(t *testing.T) {
	g, err := gengraph.GnHalf(48, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	d := describeOn(t, FullInfoCodec{U: 1}, g)
	// The deleted block is d(u)·(n−1−d(u)) ≈ n²/4 ≈ 552; |F(u)| = (n−1)·d(u)
	// ≈ n²/2 ≈ 1104. Net ≈ −n²/4: the description is longer, exactly the
	// Theorem 10 relationship |F(u)| ≥ block.
	if d.Savings > 0 {
		t.Fatalf("positive savings %d — F(u) smaller than the recovered block?", d.Savings)
	}
	deg := g.Degree(1)
	block := deg * (47 - deg)
	fu := 47 * deg
	wantOverhead := fu - block // ≈ n²/4
	slack := 200
	if -d.Savings > wantOverhead+slack || -d.Savings < wantOverhead-slack {
		t.Fatalf("overhead = %d, want ≈ %d (|F(u)| − block)", -d.Savings, wantOverhead)
	}
}

func TestFullInfoCodecNotApplicable(t *testing.T) {
	chain, err := gengraph.Chain(16)
	if err != nil {
		t.Fatal(err)
	}
	if _, applicable, err := (FullInfoCodec{}).Encode(chain); err != nil || applicable {
		t.Fatalf("chain: applicable=%t err=%v (eccentricity > 2)", applicable, err)
	}
	disconnected := graph.MustNew(6)
	if err := disconnected.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, applicable, err := (FullInfoCodec{}).Encode(disconnected); err != nil || applicable {
		t.Fatalf("disconnected: applicable=%t err=%v", applicable, err)
	}
}

func TestHeaderTagMismatch(t *testing.T) {
	g, err := gengraph.Chain(16)
	if err != nil {
		t.Fatal(err)
	}
	enc, applicable, err := (DegreeCodec{MinDeviation: 1}).Encode(g)
	if err != nil || !applicable {
		t.Fatalf("encode: %t %v", applicable, err)
	}
	// Feed a Lemma 1 description to the Lemma 2 decoder.
	if _, err := (DistantPairCodec{}).Decode(bitio.ReaderFor(enc), 16); err == nil {
		t.Fatal("cross-codec decode accepted")
	}
}

func TestAllCodecsRoundTripOnMixedGraphs(t *testing.T) {
	// Wherever applicable, every codec must reproduce the graph exactly
	// (kolmo.Describe enforces this; here we sweep graph families).
	codecs := []kolmo.Codec{
		DegreeCodec{MinDeviation: 1},
		DistantPairCodec{},
		UncoveredCodec{C: 1},
		RoutingFuncCodec{},
		FullInfoCodec{},
	}
	mk := []func() (*graph.Graph, error){
		func() (*graph.Graph, error) { return gengraph.Chain(24) },
		func() (*graph.Graph, error) { return gengraph.Star(24) },
		func() (*graph.Graph, error) { return gengraph.Grid(4, 6) },
		func() (*graph.Graph, error) { return gengraph.GnHalf(24, rand.New(rand.NewSource(8))) },
		func() (*graph.Graph, error) { return gengraph.Gnp(24, 0.8, rand.New(rand.NewSource(9))) },
	}
	for gi, make := range mk {
		g, err := make()
		if err != nil {
			t.Fatal(err)
		}
		for _, codec := range codecs {
			_, applicable, err := codec.Encode(g)
			if err != nil {
				t.Fatalf("graph %d, %s: %v", gi, codec.Name(), err)
			}
			if !applicable {
				continue
			}
			if _, err := kolmo.Describe(codec, g); err != nil {
				t.Fatalf("graph %d, %s: %v", gi, codec.Name(), err)
			}
		}
	}
}

func TestClaim1CodecDeviantCover(t *testing.T) {
	// Node 1 has neighbours {2,3}; its first intermediate (node 2) covers
	// every non-neighbour — a huge upward deviation from half the mass. At
	// n = 64 the saved 61 bits dominate the ~30 header bits.
	g := graph.MustNew(64)
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	for v := 4; v <= 64; v++ {
		if err := g.AddEdge(2, v); err != nil {
			t.Fatal(err)
		}
	}
	d := describeOn(t, Claim1Codec{}, g)
	if d.Savings <= 0 {
		t.Fatalf("deviant cover savings = %d, want > 0", d.Savings)
	}

	// The opposite deviation: the first intermediate covers almost nothing.
	g2 := graph.MustNew(20)
	if err := g2.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g2.AddEdge(2, 4); err != nil {
		t.Fatal(err)
	}
	// Make the rest of the graph dense so the encoding is non-trivial.
	for u := 4; u <= 20; u++ {
		for v := u + 1; v <= 20; v++ {
			if err := g2.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	d = describeOn(t, Claim1Codec{}, g2)
	if d.Bits <= 0 {
		t.Fatal("empty description")
	}
}

func TestClaim1NotApplicableOnRandom(t *testing.T) {
	// On certified random graphs every (above-threshold) level covers about
	// half the remaining mass — the codec must not apply.
	g, err := gengraph.GnHalf(256, rand.New(rand.NewSource(31)))
	if err != nil {
		t.Fatal(err)
	}
	if _, applicable, err := (Claim1Codec{}).Encode(g); err != nil || applicable {
		t.Fatalf("random graph: applicable=%t err=%v — Claim 1 violated?", applicable, err)
	}
}

func TestClaim1DeepLevelRoundTrip(t *testing.T) {
	// Force the deviation at level t = 2: v₁ covers exactly half, v₂ covers
	// everything that remains.
	g := graph.MustNew(24)
	// u = 1 adjacent to 2, 3, 4.
	for v := 2; v <= 4; v++ {
		if err := g.AddEdge(1, v); err != nil {
			t.Fatal(err)
		}
	}
	// Non-neighbours: 5…24 (20 nodes). v₁=2 covers 5…14 (half).
	for v := 5; v <= 14; v++ {
		if err := g.AddEdge(2, v); err != nil {
			t.Fatal(err)
		}
	}
	// v₂=3 covers all of 15…24 — full coverage of the remaining mass.
	for v := 15; v <= 24; v++ {
		if err := g.AddEdge(3, v); err != nil {
			t.Fatal(err)
		}
	}
	enc, applicable, err := (Claim1Codec{}).Encode(g)
	if err != nil || !applicable {
		t.Fatalf("encode: applicable=%t err=%v", applicable, err)
	}
	back, err := (Claim1Codec{}).Decode(bitio.ReaderFor(enc), 24)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(g) {
		t.Fatal("round trip mismatch")
	}
}
