package descmethods

import (
	"fmt"
	"math"

	"routetab/internal/bitio"
	"routetab/internal/graph"
	"routetab/internal/kolmo"
)

// DegreeCodec is Lemma 1's description method: if some node's degree deviates
// from (n−1)/2 by at least MinDeviation, its neighbourhood row lies in a
// small ensemble (few subsets of that size exist), so replacing the row by
// its ⌈log C(n−1,d)⌉-bit enumerative index compresses E(G).
//
// On a δ-random graph the total description cannot drop below
// n(n−1)/2 − δ(n), which forces every degree to within O(√((δ+log n)·n)) of
// (n−1)/2 — Lemma 1's statement. Running the codec shows the two sides: it
// round-trips with real savings on skewed graphs (chains, stars) and is
// inapplicable on certified random graphs.
type DegreeCodec struct {
	// MinDeviation is the applicability threshold; zero defaults to the
	// Lemma 1 radius √((3+1)·log n·n / log e).
	MinDeviation float64
}

var _ kolmo.Codec = DegreeCodec{}

// Name implements kolmo.Codec.
func (DegreeCodec) Name() string { return "lemma1-degree" }

func (c DegreeCodec) threshold(n int) float64 {
	if c.MinDeviation > 0 {
		return c.MinDeviation
	}
	return math.Sqrt(4 * math.Log2(float64(n)) * float64(n) / math.Log2(math.E))
}

// Encode implements kolmo.Codec.
func (c DegreeCodec) Encode(g *graph.Graph) (*bitio.Writer, bool, error) {
	n := g.N()
	if n < 2 {
		return nil, false, nil
	}
	mid := float64(n-1) / 2
	thr := c.threshold(n)
	pick := 0
	for u := 1; u <= n; u++ {
		if math.Abs(float64(g.Degree(u))-mid) >= thr {
			pick = u
			break
		}
	}
	if pick == 0 {
		return nil, false, nil
	}
	w := bitio.NewWriter(graph.EdgeCodeLen(n))
	if err := writeHeader(w, tagDegree); err != nil {
		return nil, false, err
	}
	if err := writeNode(w, pick, n); err != nil {
		return nil, false, err
	}
	d := g.Degree(pick)
	// The value of d in ⌈log(n+1)⌉ bits (proof: "possibly adding
	// non-significant 0's to pad up to this amount").
	if err := w.WriteBits(uint64(d), bitio.CeilLogPlus1(n)); err != nil {
		return nil, false, err
	}
	// The enumerative index of the interconnection pattern among all
	// C(n−1, d) patterns.
	positions := rowPositions(g, pick)
	ensemble := binomial(n-1, d)
	width := bitsFor(ensemble)
	if err := writeBigInt(w, combRank(positions), width); err != nil {
		return nil, false, err
	}
	// The old code with u's bits deleted.
	copyResidual(w, g, func(a, b int) bool { return a == pick || b == pick })
	return w, true, nil
}

// rowPositions returns the 0-based indices, within the n−1 non-u nodes in
// increasing order, of u's neighbours.
func rowPositions(g *graph.Graph, u int) []int {
	var out []int
	idx := 0
	for v := 1; v <= g.N(); v++ {
		if v == u {
			continue
		}
		if g.HasEdge(u, v) {
			out = append(out, idx)
		}
		idx++
	}
	return out
}

// Decode implements kolmo.Codec.
func (DegreeCodec) Decode(r *bitio.Reader, n int) (*graph.Graph, error) {
	if err := readHeader(r, tagDegree); err != nil {
		return nil, err
	}
	u, err := readNode(r, n)
	if err != nil {
		return nil, err
	}
	d64, err := r.ReadBits(bitio.CeilLogPlus1(n))
	if err != nil {
		return nil, err
	}
	d := int(d64)
	if d > n-1 {
		return nil, fmt.Errorf("descmethods: decoded degree %d > n−1", d)
	}
	ensemble := binomial(n-1, d)
	rank, err := readBigInt(r, bitsFor(ensemble))
	if err != nil {
		return nil, err
	}
	positions, err := combUnrank(rank, n-1, d)
	if err != nil {
		return nil, err
	}
	// Map 0-based non-u indices back to node labels.
	isNb := make([]bool, n+1)
	others := make([]int, 0, n-1)
	for v := 1; v <= n; v++ {
		if v != u {
			others = append(others, v)
		}
	}
	for _, p := range positions {
		if p < 0 || p >= len(others) {
			return nil, fmt.Errorf("descmethods: position %d out of range", p)
		}
		isNb[others[p]] = true
	}
	skip := func(a, b int) bool { return a == u || b == u }
	known := func(a, b int) bool {
		if a == u {
			return isNb[b]
		}
		return isNb[a]
	}
	return restoreResidual(r, n, skip, known)
}
