package descmethods

import (
	"fmt"

	"routetab/internal/bitio"
	"routetab/internal/graph"
	"routetab/internal/kolmo"
	"routetab/internal/schemes/fullinfo"
	"routetab/internal/shortestpath"
)

// FullInfoCodec is Theorem 10's description method: a full-information
// shortest-path routing function F(u) determines, for every neighbour v of u
// and every non-neighbour w, whether vw ∈ E — on a diameter-2 graph, vw ∈ E
// iff the edge uv is among the edges F(u) returns for destination w. The
// whole N(u) × (V∖N(u)∖{u}) block of E(G), about n²/4 bits, can therefore be
// deleted once F(u) is written out:
//
//	[u] [row of u] [F(u)] [E(G) − row(u) − N(u)×non-N(u) block]
//
// On a o(n)-random graph the total cannot drop below n(n−1)/2 − o(n), so
// |F(u)| ≥ n²/4 − o(n²): the Θ(n³) total for full-information schemes.
type FullInfoCodec struct {
	// U is the pivot node (default 1).
	U int
}

var _ kolmo.Codec = FullInfoCodec{}

// Name implements kolmo.Codec.
func (FullInfoCodec) Name() string { return "theorem10-full-information" }

func (c FullInfoCodec) pivot() int {
	if c.U >= 1 {
		return c.U
	}
	return 1
}

// Encode implements kolmo.Codec. Applicable when the graph is connected and
// every non-neighbour of the pivot is at distance exactly 2 (Lemma 2 grants
// this on random graphs).
func (c FullInfoCodec) Encode(g *graph.Graph) (*bitio.Writer, bool, error) {
	n := g.N()
	u := c.pivot()
	if u > n {
		return nil, false, nil
	}
	dm, err := shortestpath.AllPairsCached(g)
	if err != nil {
		return nil, false, err
	}
	if dm.Eccentricity(u) > 2 || dm.Eccentricity(u) == shortestpath.Unreachable {
		return nil, false, nil
	}
	if dm.Diameter() == shortestpath.Unreachable {
		return nil, false, nil
	}
	ports := graph.SortedPorts(g)
	scheme, err := fullinfo.Build(g, ports, dm)
	if err != nil {
		return nil, false, nil // disconnected ⇒ not applicable
	}
	fu, err := scheme.EncodeNode(u)
	if err != nil {
		return nil, false, err
	}

	w := bitio.NewWriter(graph.EdgeCodeLen(n) + fu.Len())
	if err := writeHeader(w, tagFullInfo); err != nil {
		return nil, false, err
	}
	if err := writeNode(w, u, n); err != nil {
		return nil, false, err
	}
	writeRow(w, g, u)
	if err := appendBits(w, fu); err != nil {
		return nil, false, err
	}
	// Deleted: u's row and the whole N(u) × non-N(u) block.
	isNb := make([]bool, n+1)
	for _, v := range g.Neighbors(u) {
		isNb[v] = true
	}
	copyResidual(w, g, fullInfoSkip(u, isNb))
	return w, true, nil
}

// fullInfoSkip marks u's row and every pair with exactly one endpoint in
// N(u), the other a non-neighbour (≠ u).
func fullInfoSkip(u int, isNb []bool) func(a, b int) bool {
	return func(a, b int) bool {
		if a == u || b == u {
			return true
		}
		return isNb[a] != isNb[b]
	}
}

// Decode implements kolmo.Codec.
func (c FullInfoCodec) Decode(r *bitio.Reader, n int) (*graph.Graph, error) {
	if err := readHeader(r, tagFullInfo); err != nil {
		return nil, err
	}
	u, err := readNode(r, n)
	if err != nil {
		return nil, err
	}
	isNb, err := readRow(r, u, n)
	if err != nil {
		return nil, err
	}
	var neighbors []int
	for v := 1; v <= n; v++ {
		if isNb[v] {
			neighbors = append(neighbors, v)
		}
	}
	degree := len(neighbors)
	// F(u): fixed (n−1)·d(u) bits, width known from the row.
	fu := bitio.NewWriter((n - 1) * degree)
	for i := 0; i < (n-1)*degree; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		fu.WriteBit(b)
	}
	sets, err := fullinfo.DecodeNode(fu, u, n, degree)
	if err != nil {
		return nil, err
	}
	// portOf[v] = sorted rank of neighbour v (the IB/sorted convention the
	// encoder used).
	portOf := make([]int, n+1)
	for i, v := range neighbors {
		portOf[v] = i + 1
	}
	inPortSet := func(w, port int) bool {
		for _, p := range sets[w] {
			if p == port {
				return true
			}
		}
		return false
	}
	known := func(a, b int) bool {
		if a == u {
			return isNb[b]
		}
		if b == u {
			return isNb[a]
		}
		// Exactly one endpoint is a neighbour; vw ∈ E iff port(v) routes w.
		if isNb[a] && !isNb[b] {
			return inPortSet(b, portOf[a])
		}
		if isNb[b] && !isNb[a] {
			return inPortSet(a, portOf[b])
		}
		return false
	}
	g, err := restoreResidual(r, n, fullInfoSkip(u, isNb), known)
	if err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("descmethods: %d unconsumed bits", r.Remaining())
	}
	return g, nil
}
