package descmethods

import (
	"fmt"
	"math"

	"routetab/internal/bitio"
	"routetab/internal/graph"
	"routetab/internal/kolmo"
)

func log2(x float64) float64 { return math.Log2(x) }

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

const tagClaim1 = 6

// Claim1Codec is Claim 1's description method (inside Theorem 1's proof):
// during the cover construction at node u, if the set A_t covered by the
// t-th intermediate deviates from half the remaining mass m_{t−1} by more
// than m_{t−1}/6, then the characteristic sequence of A_t within the
// remaining set lies in a small ensemble and can be stored as an
// enumerative index of ⌈log C(m_{t−1}, |A_t|)⌉ ≪ m_{t−1} bits:
//
//	[u, v_t] [rows of u, v_1…v_{t−1}] [index of A_t] [residual E(G)]
//
// On a random graph such a deviation would compress E(G) below its
// deficiency — so every intermediate covers about half (paper: at least a
// third) of what remains, which is what keeps Theorem 1's unary table at
// O(n) bits.
type Claim1Codec struct {
	// MaxRelDev is the deviation threshold relative to m_{t−1} (the paper
	// uses 1/6). Zero means 1/6.
	MaxRelDev float64
}

var _ kolmo.Codec = Claim1Codec{}

// Name implements kolmo.Codec.
func (Claim1Codec) Name() string { return "claim1-cover-decay" }

func (c Claim1Codec) relDev() float64 {
	if c.MaxRelDev > 0 {
		return c.MaxRelDev
	}
	return 1.0 / 6.0
}

// deviantLevel scans node u's least-first cover construction for the first
// level whose coverage deviates from half the remaining mass by more than
// relDev·m_{t−1}; it returns the level index t (1-based), the remaining set
// before the level, and the covered subset.
func (c Claim1Codec) deviantLevel(g *graph.Graph, u int) (t int, remaining, covered []int) {
	n := g.N()
	inRemaining := make([]bool, n+1)
	var rem []int
	for v := 1; v <= n; v++ {
		if v != u && !g.HasEdge(u, v) {
			inRemaining[v] = true
			rem = append(rem, v)
		}
	}
	// Claim 1 only speaks about levels with m_{t−1} ≥ n/loglog n (below the
	// threshold the construction defers to table 2 anyway).
	floor := float64(n) / maxf(log2(log2(float64(n))), 1)
	for i, vt := range g.Neighbors(u) {
		if float64(len(rem)) < floor {
			return 0, nil, nil
		}
		var cov []int
		for _, w := range rem {
			if g.HasEdge(vt, w) {
				cov = append(cov, w)
			}
		}
		dev := float64(len(cov)) - float64(len(rem))/2
		if dev < 0 {
			dev = -dev
		}
		if dev > c.relDev()*float64(len(rem)) {
			return i + 1, rem, cov
		}
		next := rem[:0]
		for _, w := range rem {
			if !g.HasEdge(vt, w) {
				next = append(next, w)
			}
		}
		rem = next
	}
	return 0, nil, nil
}

// Encode implements kolmo.Codec. Applicability: some node has a deviant
// cover level.
func (c Claim1Codec) Encode(g *graph.Graph) (*bitio.Writer, bool, error) {
	n := g.N()
	for u := 1; u <= n; u++ {
		t, remaining, covered := c.deviantLevel(g, u)
		if t == 0 {
			continue
		}
		return c.encodeAt(g, u, t, remaining, covered)
	}
	return nil, false, nil
}

func (c Claim1Codec) encodeAt(g *graph.Graph, u, t int, remaining, covered []int) (*bitio.Writer, bool, error) {
	n := g.N()
	w := bitio.NewWriter(graph.EdgeCodeLen(n))
	if err := writeHeader(w, tagClaim1); err != nil {
		return nil, false, err
	}
	if err := writeNode(w, u, n); err != nil {
		return nil, false, err
	}
	// The level index in self-delimiting form (paper: nodes u, v_t).
	if err := w.WriteShortSelfDelimiting(uint64(t)); err != nil {
		return nil, false, err
	}
	// Rows of u and of v_1…v_{t−1} explicitly: they determine `remaining`.
	writeRow(w, g, u)
	prefix := g.Neighbors(u)[:t]
	for _, v := range prefix[:t-1] {
		writeRow(w, g, v)
	}
	// |A_t| and its enumerative index within `remaining`.
	if err := w.WriteShortSelfDelimiting(uint64(len(covered))); err != nil {
		return nil, false, err
	}
	posOf := make(map[int]int, len(remaining))
	for i, v := range remaining {
		posOf[v] = i
	}
	positions := make([]int, 0, len(covered))
	for _, v := range covered {
		positions = append(positions, posOf[v])
	}
	ensemble := binomial(len(remaining), len(covered))
	if err := writeBigInt(w, combRank(positions), bitsFor(ensemble)); err != nil {
		return nil, false, err
	}
	// Residual: drop the rows of u and v_1…v_{t−1} (re-encoded above) and
	// the v_t↔remaining bits (recovered from the index).
	vt := prefix[t-1]
	inRemaining := make([]bool, n+1)
	for _, v := range remaining {
		inRemaining[v] = true
	}
	skip := claim1Skip(u, prefix[:t-1], vt, inRemaining)
	copyResidual(w, g, skip)
	return w, true, nil
}

func claim1Skip(u int, earlier []int, vt int, inRemaining []bool) func(a, b int) bool {
	inEarlier := make(map[int]bool, len(earlier)+1)
	inEarlier[u] = true
	for _, v := range earlier {
		inEarlier[v] = true
	}
	return func(a, b int) bool {
		if inEarlier[a] || inEarlier[b] {
			return true
		}
		if a == vt && inRemaining[b] {
			return true
		}
		if b == vt && inRemaining[a] {
			return true
		}
		return false
	}
}

// Decode implements kolmo.Codec.
func (c Claim1Codec) Decode(r *bitio.Reader, n int) (*graph.Graph, error) {
	if err := readHeader(r, tagClaim1); err != nil {
		return nil, err
	}
	u, err := readNode(r, n)
	if err != nil {
		return nil, err
	}
	t64, err := r.ReadShortSelfDelimiting()
	if err != nil {
		return nil, err
	}
	t := int(t64)
	if t < 1 || t > n {
		return nil, fmt.Errorf("descmethods: decoded level %d", t)
	}
	rowU, err := readRow(r, u, n)
	if err != nil {
		return nil, err
	}
	var neighbors []int
	for v := 1; v <= n; v++ {
		if rowU[v] {
			neighbors = append(neighbors, v)
		}
	}
	if t > len(neighbors) {
		return nil, fmt.Errorf("descmethods: level %d beyond degree %d", t, len(neighbors))
	}
	prefix := neighbors[:t]
	rows := make([][]bool, t-1)
	for i := 0; i < t-1; i++ {
		rows[i], err = readRow(r, prefix[i], n)
		if err != nil {
			return nil, err
		}
	}
	// Replay the construction: remaining = non-neighbours of u not covered
	// by v_1…v_{t−1}.
	var remaining []int
	for v := 1; v <= n; v++ {
		if v == u || rowU[v] {
			continue
		}
		coveredEarlier := false
		for i := 0; i < t-1; i++ {
			if rows[i][v] {
				coveredEarlier = true
				break
			}
		}
		if !coveredEarlier {
			remaining = append(remaining, v)
		}
	}
	sz64, err := r.ReadShortSelfDelimiting()
	if err != nil {
		return nil, err
	}
	size := int(sz64)
	if size > len(remaining) {
		return nil, fmt.Errorf("descmethods: |A_t| = %d > remaining %d", size, len(remaining))
	}
	ensemble := binomial(len(remaining), size)
	rank, err := readBigInt(r, bitsFor(ensemble))
	if err != nil {
		return nil, err
	}
	positions, err := combUnrank(rank, len(remaining), size)
	if err != nil {
		return nil, err
	}
	vt := prefix[t-1]
	vtAdj := make([]bool, n+1)
	for _, p := range positions {
		vtAdj[remaining[p]] = true
	}
	inRemaining := make([]bool, n+1)
	for _, v := range remaining {
		inRemaining[v] = true
	}
	skip := claim1Skip(u, prefix[:t-1], vt, inRemaining)
	known := func(a, b int) bool {
		if a == u {
			return rowU[b]
		}
		if b == u {
			return rowU[a]
		}
		for i := 0; i < t-1; i++ {
			if a == prefix[i] {
				return rows[i][b]
			}
			if b == prefix[i] {
				return rows[i][a]
			}
		}
		if a == vt && inRemaining[b] {
			return vtAdj[b]
		}
		if b == vt && inRemaining[a] {
			return vtAdj[a]
		}
		return false
	}
	return restoreResidual(r, n, skip, known)
}
