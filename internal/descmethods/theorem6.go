package descmethods

import (
	"fmt"

	"routetab/internal/bitio"
	"routetab/internal/graph"
	"routetab/internal/kolmo"
	"routetab/internal/schemes/compact"
)

// RoutingFuncCodec is Theorem 6's description method: a shortest-path local
// routing function F(u) (model II ∧ α) names, for every non-neighbour w, an
// intermediate neighbour v on a length-2 path — so the E(G) bit for edge
// (v, w) is known to be 1 and can be deleted. The description
//
//	[u] [row of u] [F(u)] [E(G) − row(u) − one bit per non-neighbour]
//
// must still be ≥ n(n−1)/2 − o(n) bits on a o(n)-random graph, which forces
// |F(u)| ≥ (#non-neighbours) − O(log n) ≈ n/2 − o(n): the Ω(n²) lower bound.
//
// The codec instantiates F(u) with the paper's own Theorem 1 construction
// (any shortest-path function decodable from its bits would do) and
// round-trips exactly; the experiments read off the achieved ledger.
type RoutingFuncCodec struct {
	// U is the pivot node (default 1).
	U int
	// Opts selects the Theorem 1 variant serialized as F(u); the zero value
	// means compact.DefaultOptions(). ModeII is required (the decoder
	// resolves intermediates against the explicit neighbour row).
	Opts compact.Options
}

var _ kolmo.Codec = RoutingFuncCodec{}

// Name implements kolmo.Codec.
func (RoutingFuncCodec) Name() string { return "theorem6-routing-function" }

func (c RoutingFuncCodec) pivot() int {
	if c.U >= 1 {
		return c.U
	}
	return 1
}

func (c RoutingFuncCodec) opts() compact.Options {
	if c.Opts == (compact.Options{}) {
		return compact.DefaultOptions()
	}
	return c.Opts
}

// Encode implements kolmo.Codec. Applicability requires the Theorem 1
// construction to exist (diameter ≤ 2 through neighbours) and ModeII options.
func (c RoutingFuncCodec) Encode(g *graph.Graph) (*bitio.Writer, bool, error) {
	opts := c.opts()
	if opts.Mode != compact.ModeII {
		return nil, false, fmt.Errorf("descmethods: RoutingFuncCodec requires ModeII options")
	}
	n := g.N()
	u := c.pivot()
	if u > n {
		return nil, false, nil
	}
	scheme, err := compact.Build(g, opts)
	if err != nil {
		return nil, false, nil // not coverable ⇒ method does not apply
	}
	fu, err := scheme.Encoded(u)
	if err != nil {
		return nil, false, err
	}
	inter, cover, err := compact.DecodeNode(fu, u, n, g.Neighbors(u), opts)
	if err != nil {
		return nil, false, err
	}

	w := bitio.NewWriter(graph.EdgeCodeLen(n) + fu.Len())
	if err := writeHeader(w, tagRoutingFunc); err != nil {
		return nil, false, err
	}
	if err := writeNode(w, u, n); err != nil {
		return nil, false, err
	}
	writeRow(w, g, u)
	// F(u), self-delimited.
	if err := w.WriteShortSelfDelimiting(uint64(fu.Len())); err != nil {
		return nil, false, err
	}
	if err := appendBits(w, fu); err != nil {
		return nil, false, err
	}
	// Deleted positions: u's row, plus the (intermediate, destination) edge
	// for every non-neighbour — recoverable because F(u) names the
	// intermediate and the edge must exist on the length-2 shortest path.
	skip, _, err := routingSkipSet(g, u, inter, cover)
	if err != nil {
		return nil, false, err
	}
	copyResidual(w, g, func(a, b int) bool { return skip[pairKey(n, a, b)] })
	return w, true, nil
}

// routingSkipSet computes the deleted pair set and the per-destination
// intermediate, validating the scheme's answers against the graph.
func routingSkipSet(g *graph.Graph, u int, inter []uint16, cover []int) (map[int]bool, []int, error) {
	n := g.N()
	skip := make(map[int]bool)
	via := make([]int, n+1)
	for a := 1; a <= n; a++ {
		if a == u {
			continue
		}
		skip[pairKey(n, u, a)] = true
	}
	for wd := 1; wd <= n; wd++ {
		if wd == u || g.HasEdge(u, wd) {
			continue
		}
		idx := inter[wd]
		if idx == 0 || int(idx) > len(cover) {
			return nil, nil, fmt.Errorf("descmethods: F(%d) has no intermediate for %d", u, wd)
		}
		v := cover[idx-1]
		if !g.HasEdge(v, wd) {
			return nil, nil, fmt.Errorf("descmethods: F(%d) routes %d via non-adjacent %d", u, wd, v)
		}
		via[wd] = v
		skip[pairKey(n, v, wd)] = true
	}
	return skip, via, nil
}

// pairKey maps an unordered pair to its lexicographic edge index.
func pairKey(n, a, b int) int {
	idx, err := graph.EdgeIndex(n, a, b)
	if err != nil {
		return -1
	}
	return idx
}

// appendBits copies every bit of src onto dst.
func appendBits(dst *bitio.Writer, src *bitio.Writer) error {
	r := bitio.ReaderFor(src)
	for r.Remaining() > 0 {
		b, err := r.ReadBit()
		if err != nil {
			return err
		}
		dst.WriteBit(b)
	}
	return nil
}

// Decode implements kolmo.Codec.
func (c RoutingFuncCodec) Decode(r *bitio.Reader, n int) (*graph.Graph, error) {
	opts := c.opts()
	if err := readHeader(r, tagRoutingFunc); err != nil {
		return nil, err
	}
	u, err := readNode(r, n)
	if err != nil {
		return nil, err
	}
	isNb, err := readRow(r, u, n)
	if err != nil {
		return nil, err
	}
	var neighbors []int
	for v := 1; v <= n; v++ {
		if isNb[v] {
			neighbors = append(neighbors, v)
		}
	}
	fuLen, err := r.ReadShortSelfDelimiting()
	if err != nil {
		return nil, err
	}
	fu := bitio.NewWriter(int(fuLen))
	for i := uint64(0); i < fuLen; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		fu.WriteBit(b)
	}
	inter, cover, err := compact.DecodeNode(fu, u, n, neighbors, opts)
	if err != nil {
		return nil, err
	}
	// Recompute the deleted set exactly as the encoder did.
	skip := make(map[int]bool)
	known := make(map[int]bool)
	for a := 1; a <= n; a++ {
		if a == u {
			continue
		}
		k := pairKey(n, u, a)
		skip[k] = true
		known[k] = isNb[a]
	}
	for wd := 1; wd <= n; wd++ {
		if wd == u || isNb[wd] {
			continue
		}
		idx := inter[wd]
		if idx == 0 || int(idx) > len(cover) {
			return nil, fmt.Errorf("descmethods: decoded F(%d) has no intermediate for %d", u, wd)
		}
		k := pairKey(n, cover[idx-1], wd)
		skip[k] = true
		known[k] = true // the shortest-path edge exists by construction
	}
	return restoreResidual(r, n,
		func(a, b int) bool { return skip[pairKey(n, a, b)] },
		func(a, b int) bool { return known[pairKey(n, a, b)] })
}
