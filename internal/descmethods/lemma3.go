package descmethods

import (
	"fmt"
	"math"

	"routetab/internal/bitio"
	"routetab/internal/graph"
	"routetab/internal/kolmo"
)

// UncoveredCodec is Lemma 3's description method: if some node w is neither
// adjacent to u nor to any of the first K = (c+3)·log n neighbours of u,
// then the K bits of w's row towards those neighbours are all 0 and can be
// deleted (together with the redundant rows of u and w, re-encoded
// explicitly). On a c·log n-random graph the K-bit savings beat the
// deficiency — contradiction — so every node is covered within the first
// (c+3)·log n neighbours.
type UncoveredCodec struct {
	// C is the randomness parameter (default 3): K = ⌈(C+3)·log₂ n⌉.
	C float64
}

var _ kolmo.Codec = UncoveredCodec{}

// Name implements kolmo.Codec.
func (UncoveredCodec) Name() string { return "lemma3-uncovered" }

func (c UncoveredCodec) k(n int) int {
	cc := c.C
	if cc <= 0 {
		cc = 3
	}
	k := int(math.Ceil((cc + 3) * math.Log2(float64(n))))
	if k < 1 {
		k = 1
	}
	return k
}

// Encode implements kolmo.Codec.
func (c UncoveredCodec) Encode(g *graph.Graph) (*bitio.Writer, bool, error) {
	n := g.N()
	k := c.k(n)
	u, target := findUncovered(g, k)
	if u == 0 {
		return nil, false, nil
	}
	w := bitio.NewWriter(graph.EdgeCodeLen(n))
	if err := writeHeader(w, tagUncovered); err != nil {
		return nil, false, err
	}
	if err := writeNode(w, u, n); err != nil {
		return nil, false, err
	}
	if err := writeNode(w, target, n); err != nil {
		return nil, false, err
	}
	// u's full row, then w's row with the K cover-prefix bits omitted (they
	// are all 0 by assumption).
	writeRow(w, g, u)
	prefix := g.FirstNeighbors(u, k)
	inPrefix := make([]bool, n+1)
	for _, v := range prefix {
		inPrefix[v] = true
	}
	for v := 1; v <= n; v++ {
		if v == target || v == u || inPrefix[v] {
			continue
		}
		w.WriteBit(g.HasEdge(target, v))
	}
	// Residual E(G) without the rows of u and target.
	copyResidual(w, g, func(a, b int) bool {
		return a == u || b == u || a == target || b == target
	})
	return w, true, nil
}

// Decode implements kolmo.Codec.
func (c UncoveredCodec) Decode(r *bitio.Reader, n int) (*graph.Graph, error) {
	if err := readHeader(r, tagUncovered); err != nil {
		return nil, err
	}
	u, err := readNode(r, n)
	if err != nil {
		return nil, err
	}
	target, err := readNode(r, n)
	if err != nil {
		return nil, err
	}
	isNbU, err := readRow(r, u, n)
	if err != nil {
		return nil, err
	}
	// Reconstruct u's first-K neighbour prefix from the decoded row.
	k := c.k(n)
	inPrefix := make([]bool, n+1)
	count := 0
	for v := 1; v <= n && count < k; v++ {
		if v != u && isNbU[v] {
			inPrefix[v] = true
			count++
		}
	}
	// target's row: explicit bits except the prefix positions (known 0) and
	// the (u, target) position (known from u's row).
	isNbT := make([]bool, n+1)
	for v := 1; v <= n; v++ {
		if v == target || v == u || inPrefix[v] {
			continue
		}
		b, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		isNbT[v] = b
	}
	if isNbU[target] {
		return nil, fmt.Errorf("descmethods: uncovered target %d adjacent to %d", target, u)
	}
	skip := func(a, b int) bool {
		return a == u || b == u || a == target || b == target
	}
	known := func(a, b int) bool {
		if a == u {
			return isNbU[b]
		}
		if b == u {
			return isNbU[a]
		}
		if a == target {
			return isNbT[b]
		}
		return isNbT[a]
	}
	return restoreResidual(r, n, skip, known)
}

// findUncovered returns (u, w) with w not adjacent to u nor to any of u's
// first k neighbours, or zeros.
func findUncovered(g *graph.Graph, k int) (int, int) {
	n := g.N()
	for u := 1; u <= n; u++ {
		prefix := g.FirstNeighbors(u, k)
		for w := 1; w <= n; w++ {
			if w == u || g.HasEdge(u, w) {
				continue
			}
			covered := false
			for _, v := range prefix {
				if g.HasEdge(v, w) {
					covered = true
					break
				}
			}
			if !covered {
				return u, w
			}
		}
	}
	return 0, 0
}
