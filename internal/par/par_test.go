package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsAll(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100} {
		var hits atomic.Int64
		seen := make([]atomic.Bool, n)
		if err := ForEach(n, func(i int) error {
			hits.Add(1)
			seen[i].Store(true)
			return nil
		}); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if hits.Load() != int64(n) {
			t.Fatalf("n=%d: %d calls", n, hits.Load())
		}
		for i := range seen {
			if !seen[i].Load() {
				t.Fatalf("n=%d: index %d never ran", n, i)
			}
		}
	}
}

func TestForEachReturnsLowestIndexedError(t *testing.T) {
	errBoom := errors.New("boom")
	// Sequential path (1 worker): deterministic first error.
	err := ForEachN(10, 1, func(i int) error {
		if i >= 3 {
			return fmt.Errorf("%w at %d", errBoom, i)
		}
		return nil
	})
	if err == nil || err.Error() != "boom at 3" {
		t.Fatalf("err = %v, want boom at 3", err)
	}
	// Parallel path: some boom error must surface.
	err = ForEachN(10, 4, func(i int) error {
		if i%2 == 1 {
			return fmt.Errorf("%w at %d", errBoom, i)
		}
		return nil
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want errBoom", err)
	}
}

// TestForEachAllWorkersFailNoDeadlock is the regression test for the
// dispatcher deadlock: when every worker exits early on an error, the
// dispatcher must not block sending to a pool with no receivers. Before the
// fix, the equivalent loop in shortestpath.AllPairs hung forever.
func TestForEachAllWorkersFailNoDeadlock(t *testing.T) {
	errBoom := errors.New("boom")
	finished := make(chan error, 1)
	go func() {
		finished <- ForEachN(10_000, 4, func(i int) error { return errBoom })
	}()
	select {
	case err := <-finished:
		if !errors.Is(err, errBoom) {
			t.Fatalf("err = %v, want errBoom", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("ForEach deadlocked after all workers failed")
	}
}

func TestForEachCancelsRemainingJobs(t *testing.T) {
	errBoom := errors.New("boom")
	var ran atomic.Int64
	err := ForEachN(100_000, 4, func(i int) error {
		ran.Add(1)
		return errBoom
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v", err)
	}
	// With 4 workers all failing on their first job, dispatch stops almost
	// immediately; allow generous slack for jobs already handed off.
	if ran.Load() > 1000 {
		t.Fatalf("ran %d jobs after first error; cancellation not effective", ran.Load())
	}
}
