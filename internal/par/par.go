// Package par provides the bounded worker pool shared by the parallel
// experiment harness, the all-pairs BFS fan-out, and the parallel scheme
// builders.
//
// The pool is deliberately tiny: jobs are identified by index, results are
// written into caller-owned slots keyed by that index, and aggregation happens
// sequentially afterwards in index order. This is the determinism contract of
// DESIGN.md §8 — a parallel sweep produces output byte-identical to the
// sequential loop it replaced, because no reduction ever depends on worker
// scheduling.
package par

import (
	"runtime"
	"sync"
)

// ForEach runs fn(0), …, fn(n−1) on up to GOMAXPROCS workers and waits for
// completion. On error the remaining un-dispatched jobs are cancelled (jobs
// already started still finish), and the lowest-indexed error observed is
// returned.
//
// The cancellation path is deadlock-free even when every worker exits early:
// the dispatcher selects on a done channel, so it never blocks sending to a
// pool with no receivers.
func ForEach(n int, fn func(i int) error) error {
	return ForEachN(n, runtime.GOMAXPROCS(0), fn)
}

// ForEachN is ForEach with an explicit worker bound (values < 1 mean 1).
func ForEachN(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	jobs := make(chan int)
	done := make(chan struct{})
	var closeDone sync.Once
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := fn(i); err != nil {
					errs[i] = err
					closeDone.Do(func() { close(done) })
					return
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-done:
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
