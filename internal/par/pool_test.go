package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolDeliversEverything: every accepted item is handled exactly once,
// across shards, and Close drains the queues.
func TestPoolDeliversEverything(t *testing.T) {
	var handled atomic.Int64
	var mu sync.Mutex
	seen := make(map[int]int)
	p := NewPool(4, 64, 8, func(_ int, batch []any) {
		mu.Lock()
		for _, it := range batch {
			seen[it.(int)]++
		}
		mu.Unlock()
		handled.Add(int64(len(batch)))
	})
	const items = 1000
	accepted := 0
	for i := 0; i < items; i++ {
		for !p.TrySubmit(i%4, i) {
			// Bounded queue: spin until space. Terminates because workers
			// are draining.
		}
		accepted++
	}
	p.Close()
	if got := handled.Load(); got != int64(accepted) {
		t.Fatalf("handled %d of %d accepted items", got, accepted)
	}
	for i := 0; i < items; i++ {
		if seen[i] != 1 {
			t.Fatalf("item %d handled %d times", i, seen[i])
		}
	}
}

// TestPoolShardAffinity: items submitted to one shard are handled only by
// that shard's worker.
func TestPoolShardAffinity(t *testing.T) {
	var mu sync.Mutex
	byShard := make(map[int][]int)
	p := NewPool(3, 16, 4, func(shard int, batch []any) {
		mu.Lock()
		for _, it := range batch {
			byShard[shard] = append(byShard[shard], it.(int))
		}
		mu.Unlock()
	})
	for i := 0; i < 300; i++ {
		for !p.TrySubmit(i%3, i) {
		}
	}
	p.Close()
	for shard, items := range byShard {
		for _, it := range items {
			if it%3 != shard {
				t.Fatalf("item %d handled on shard %d", it, shard)
			}
		}
	}
}

// TestPoolBackpressure: with no worker progress possible (handler blocked),
// a full queue rejects instead of blocking.
func TestPoolBackpressure(t *testing.T) {
	block := make(chan struct{})
	p := NewPool(1, 2, 1, func(_ int, _ []any) { <-block })
	defer func() { close(block); p.Close() }()
	// Fill: one item in the (blocked) handler, two in the queue; the rest
	// must reject. Allow for the race where the worker hasn't picked up the
	// first item yet by accepting at most queueCap+1.
	accepted := 0
	for i := 0; i < 100; i++ {
		if p.TrySubmit(0, i) {
			accepted++
		}
	}
	if accepted > 3 {
		t.Fatalf("accepted %d items into a capacity-2 queue with a blocked worker", accepted)
	}
	if accepted == 100 {
		t.Fatal("backpressure never engaged")
	}
}

// TestPoolSubmitAfterClose: a closed pool rejects without panicking.
func TestPoolSubmitAfterClose(t *testing.T) {
	p := NewPool(2, 4, 2, func(_ int, _ []any) {})
	p.Close()
	if p.TrySubmit(0, 1) {
		t.Fatal("closed pool accepted an item")
	}
	p.Close() // idempotent
}

// TestPoolCoalesces: queued items are delivered in batches when the worker
// is slower than the submitter.
func TestPoolCoalesces(t *testing.T) {
	release := make(chan struct{}, 64)
	var mu sync.Mutex
	var sizes []int
	p := NewPool(1, 64, 16, func(_ int, batch []any) {
		mu.Lock()
		sizes = append(sizes, len(batch))
		mu.Unlock()
		<-release
	})
	for i := 0; i < 33; i++ {
		for !p.TrySubmit(0, i) {
			release <- struct{}{} // let the worker drain one batch
		}
	}
	// Hand the worker enough tokens to finish every remaining batch, then
	// drain and stop.
	for i := 0; i < cap(release); i++ {
		select {
		case release <- struct{}{}:
		default:
		}
	}
	p.Close()
	mu.Lock()
	defer mu.Unlock()
	total := 0
	sawCoalesced := false
	for _, s := range sizes {
		total += s
		if s > 1 {
			sawCoalesced = true
		}
		if s > 16 {
			t.Fatalf("batch of %d exceeds maxBatch 16", s)
		}
	}
	if total != 33 {
		t.Fatalf("handled %d of 33 items", total)
	}
	if !sawCoalesced {
		t.Fatal("no batch was ever coalesced") // queue had ≥2 items while blocked
	}
}

// TestPoolSurvivesHandlerPanic: a panicking handler loses its batch but must
// not kill the shard worker — later submissions to the same shard are still
// handled, Panics counts the recoveries, OnPanic observes them, and Close
// drains without deadlocking on the shard that panicked.
func TestPoolSurvivesHandlerPanic(t *testing.T) {
	var handled atomic.Int64
	var observed atomic.Int64
	p := NewPool(2, 16, 4, func(_ int, batch []any) {
		for _, it := range batch {
			if it.(int) < 0 {
				panic("poisoned item")
			}
		}
		handled.Add(int64(len(batch)))
	})
	p.OnPanic = func(shard int, recovered any) {
		if recovered == nil {
			t.Error("OnPanic called with nil recovery")
		}
		observed.Add(1)
	}
	// Poison shard 0, then prove the same shard still works afterwards.
	if !p.TrySubmit(0, -1) {
		t.Fatal("poisoned submit rejected")
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Panics() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("panic never recovered")
		}
		time.Sleep(100 * time.Microsecond)
	}
	const items = 200
	accepted := int64(0)
	for i := 0; i < items; i++ {
		for !p.TrySubmit(i%2, i) {
		}
		accepted++
	}
	p.Close() // must not hang on a dead worker
	if got := handled.Load(); got != accepted {
		t.Fatalf("handled %d of %d items submitted after the panic", got, accepted)
	}
	if p.Panics() != 1 || observed.Load() != 1 {
		t.Fatalf("panics=%d observed=%d, want 1/1", p.Panics(), observed.Load())
	}
}

// TestPoolPanicDuringCloseDrain: items already queued behind a poisoned one
// are still handled when the panic happens inside Close's drain.
func TestPoolPanicDuringCloseDrain(t *testing.T) {
	block := make(chan struct{})
	var handled atomic.Int64
	p := NewPool(1, 16, 1, func(_ int, batch []any) {
		<-block
		if batch[0].(int) < 0 {
			panic("poisoned item")
		}
		handled.Add(int64(len(batch)))
	})
	for _, it := range []int{1, -1, 2, 3} {
		if !p.TrySubmit(0, it) {
			t.Fatal("submit rejected")
		}
	}
	close(block)
	p.Close()
	if handled.Load() != 3 || p.Panics() != 1 {
		t.Fatalf("handled=%d panics=%d, want 3 handled with 1 recovery", handled.Load(), p.Panics())
	}
}
