package par

import (
	"sync"
	"sync/atomic"
)

// Pool is the long-running counterpart of ForEach: a fixed set of shard
// workers, each owning one bounded queue, consuming items for as long as the
// pool lives. It exists for serving workloads (internal/serve) where work
// arrives continuously rather than as a fixed grid.
//
// Two properties matter to callers:
//
//   - Backpressure is explicit: TrySubmit never blocks. A full queue returns
//     false immediately, so the submitter — not the pool — decides whether to
//     shed, retry, or fail the request. Nothing is ever silently dropped.
//   - Batching is structural: a worker drains every immediately-available
//     item from its queue (up to maxBatch) and hands the whole run to the
//     handler in one call, so per-batch costs (snapshot acquisition,
//     cache-warm table scans) amortise across queued items under load while
//     an idle pool still dispatches single items with no added latency.
//
// Shard affinity is the caller's tool: submitting all items for one key to
// the same shard serialises them on one worker, giving per-shard cache
// locality without locks.
type Pool struct {
	queues   []chan any
	maxBatch int
	handle   func(shard int, batch []any)

	mu     sync.RWMutex // guards close-vs-submit
	closed bool
	wg     sync.WaitGroup
	depth  []atomic.Int64 // per-shard queue depth (observability)
	panics atomic.Uint64  // recovered handler panics (observability)

	// OnPanic, when set before the first submission, observes every
	// recovered handler panic (shard, recovered value). The worker has
	// already survived by the time it runs; it must not call back into the
	// pool.
	OnPanic func(shard int, recovered any)
}

// NewPool starts one worker per shard, each with a bounded queue of queueCap
// items, delivering batches of at most maxBatch items to handle. Values < 1
// are clamped to 1. The handler runs on the shard's worker goroutine; it must
// not call back into the pool.
func NewPool(shards, queueCap, maxBatch int, handle func(shard int, batch []any)) *Pool {
	if shards < 1 {
		shards = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	if maxBatch < 1 {
		maxBatch = 1
	}
	p := &Pool{
		queues:   make([]chan any, shards),
		maxBatch: maxBatch,
		handle:   handle,
		depth:    make([]atomic.Int64, shards),
	}
	for s := range p.queues {
		p.queues[s] = make(chan any, queueCap)
		s := s
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.runShard(s)
		}()
	}
	return p
}

// Shards returns the number of shard workers.
func (p *Pool) Shards() int { return len(p.queues) }

// Depth returns the current queue depth of one shard.
func (p *Pool) Depth(shard int) int64 { return p.depth[shard].Load() }

// TrySubmit offers item to the given shard's queue without blocking. It
// returns false — and takes no ownership of the item — when the queue is full
// or the pool is closed.
func (p *Pool) TrySubmit(shard int, item any) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	select {
	case p.queues[shard%len(p.queues)] <- item:
		p.depth[shard%len(p.queues)].Add(1)
		return true
	default:
		return false
	}
}

// Close stops accepting new items, drains every queue (already-accepted items
// are still handled — the graceful-shutdown contract), and waits for the
// workers to exit. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	for _, q := range p.queues {
		close(q)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// Panics reports how many handler panics the pool has recovered from.
func (p *Pool) Panics() uint64 { return p.panics.Load() }

// dispatch hands one batch to the handler, surviving a handler panic: the
// batch is lost to the handler (the handler owns per-item completion and
// must arrange its own panic accounting if callers block on items), but the
// worker goroutine lives on and Close's drain cannot deadlock on a dead
// shard.
func (p *Pool) dispatch(shard int, batch []any) {
	defer func() {
		if r := recover(); r != nil {
			p.panics.Add(1)
			if p.OnPanic != nil {
				p.OnPanic(shard, r)
			}
		}
	}()
	p.handle(shard, batch)
}

// runShard is one worker's loop: take one item (blocking), then greedily
// coalesce whatever else is immediately available, and hand the batch over.
func (p *Pool) runShard(shard int) {
	q := p.queues[shard]
	batch := make([]any, 0, p.maxBatch)
	for item := range q {
		batch = append(batch[:0], item)
		for len(batch) < p.maxBatch {
			select {
			case next, ok := <-q:
				if !ok {
					p.depth[shard].Add(-int64(len(batch)))
					p.dispatch(shard, batch)
					return
				}
				batch = append(batch, next)
			default:
				goto full
			}
		}
	full:
		p.depth[shard].Add(-int64(len(batch)))
		p.dispatch(shard, batch)
	}
}
