package cluster

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"routetab/internal/serve"
)

// fakeBackend is a scriptable cluster member for router tests.
type fakeBackend struct {
	name string

	mu        sync.Mutex
	transport error         // non-nil: every lookup fails at transport level
	result    serve.Result  // answer returned otherwise
	delay     time.Duration // service time before answering
	calls     atomic.Uint64
}

func (f *fakeBackend) Name() string { return f.name }

func (f *fakeBackend) Lookup(src, dst int) (serve.Result, error) {
	f.calls.Add(1)
	f.mu.Lock()
	terr, res, delay := f.transport, f.result, f.delay
	f.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if terr != nil {
		return serve.Result{}, terr
	}
	return res, nil
}

func (f *fakeBackend) set(terr error, res serve.Result, delay time.Duration) {
	f.mu.Lock()
	f.transport, f.result, f.delay = terr, res, delay
	f.mu.Unlock()
}

var errConnRefused = errors.New("router_test: connection refused")

func okResult(next int) serve.Result { return serve.Result{Next: next, Dist: 2, NextDist: 1} }

func TestRouterFailsOverOnTransportError(t *testing.T) {
	a := &fakeBackend{name: "a"}
	b := &fakeBackend{name: "b"}
	a.set(errConnRefused, serve.Result{}, 0)
	b.set(nil, okResult(7), 0)
	rt := NewRouter([]Backend{a, b}, RouterOptions{HedgeAfter: -1, ProbeAfter: time.Hour})

	for i := 0; i < 8; i++ {
		res, err := rt.Lookup(1, 9)
		if err != nil {
			t.Fatal(err)
		}
		if res.Err != nil || res.Next != 7 {
			t.Fatalf("lookup %d: %+v", i, res)
		}
	}
	// After the first failure, a is demoted for ProbeAfter (an hour): all
	// later lookups must go straight to b.
	if got := a.calls.Load(); got != 1 {
		t.Fatalf("demoted backend probed %d times, want 1", got)
	}
	served := rt.Served()
	if served["b"] != 8 || served["a"] != 0 {
		t.Fatalf("served = %v", served)
	}
}

func TestRouterProbesDemotedBackendAfterWindow(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	a := &fakeBackend{name: "a"}
	b := &fakeBackend{name: "b"}
	a.set(errConnRefused, serve.Result{}, 0)
	b.set(nil, okResult(3), 0)
	rt := NewRouter([]Backend{a, b}, RouterOptions{HedgeAfter: -1, ProbeAfter: 10 * time.Millisecond, Clock: clock})

	if _, err := rt.Lookup(1, 5); err != nil {
		t.Fatal(err)
	}
	if a.calls.Load() != 1 {
		t.Fatalf("a called %d times", a.calls.Load())
	}

	// a recovers; before the probe window opens it must not be retried.
	a.set(nil, okResult(4), 0)
	if _, err := rt.Lookup(1, 5); err != nil {
		t.Fatal(err)
	}
	if a.calls.Load() != 1 {
		t.Fatal("demoted backend probed inside the backoff window")
	}

	// Advance past the window: a is probed, answers, and is healthy again.
	now = now.Add(20 * time.Millisecond)
	sawA := false
	for i := 0; i < 8 && !sawA; i++ {
		res, err := rt.Lookup(1, 5)
		if err != nil || res.Err != nil {
			t.Fatalf("lookup: %+v %v", res, err)
		}
		sawA = rt.Served()["a"] > 0
	}
	if !sawA {
		t.Fatal("recovered backend never served after probe window opened")
	}
}

func TestRouterHonoursRetryAfter(t *testing.T) {
	now := time.Unix(2000, 0)
	clock := func() time.Time { return now }
	a := &fakeBackend{name: "a"}
	b := &fakeBackend{name: "b"}
	a.set(nil, serve.Result{Err: &serve.OverloadedError{Shard: 0, RetryAfter: 25 * time.Millisecond}}, 0)
	b.set(nil, okResult(2), 0)
	rt := NewRouter([]Backend{a, b}, RouterOptions{HedgeAfter: -1, ProbeAfter: time.Millisecond, Clock: clock})

	res, err := rt.Lookup(1, 5)
	if err != nil || res.Err != nil {
		t.Fatalf("overloaded backend not failed over: %+v %v", res, err)
	}
	aCalls := a.calls.Load()

	// Within RetryAfter the shedding backend is skipped even though
	// ProbeAfter (1ms) has passed — the hint wins.
	now = now.Add(5 * time.Millisecond)
	for i := 0; i < 4; i++ {
		if _, err := rt.Lookup(1, 5); err != nil {
			t.Fatal(err)
		}
	}
	if a.calls.Load() != aCalls {
		t.Fatal("backend retried inside its Retry-After window")
	}

	// Past the hint it gets traffic again.
	a.set(nil, okResult(6), 0)
	now = now.Add(30 * time.Millisecond)
	sawA := false
	for i := 0; i < 8 && !sawA; i++ {
		if _, err := rt.Lookup(1, 5); err != nil {
			t.Fatal(err)
		}
		sawA = rt.Served()["a"] > 0
	}
	if !sawA {
		t.Fatal("backend never recovered after Retry-After elapsed")
	}
}

func TestRouterAllBackendsDown(t *testing.T) {
	a := &fakeBackend{name: "a"}
	b := &fakeBackend{name: "b"}
	a.set(errConnRefused, serve.Result{}, 0)
	b.set(errConnRefused, serve.Result{}, 0)
	rt := NewRouter([]Backend{a, b}, RouterOptions{HedgeAfter: -1})
	if _, err := rt.Lookup(1, 5); !errors.Is(err, ErrNoBackends) {
		t.Fatalf("want ErrNoBackends, got %v", err)
	}
	// All overloaded: the overload answer (with its hint) is surfaced, not
	// ErrNoBackends — the caller can back off and retry.
	a.set(nil, serve.Result{Err: &serve.OverloadedError{RetryAfter: time.Millisecond}}, 0)
	b.set(nil, serve.Result{Err: &serve.OverloadedError{RetryAfter: time.Millisecond}}, 0)
	res, err := rt.Lookup(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Err, serve.ErrOverloaded) {
		t.Fatalf("want overload answer, got %+v", res)
	}
}

func TestRouterHedgesSlowBackend(t *testing.T) {
	a := &fakeBackend{name: "a"}
	b := &fakeBackend{name: "b"}
	a.set(nil, okResult(1), 200*time.Millisecond) // pathologically slow
	b.set(nil, okResult(2), 0)
	rt := NewRouter([]Backend{a, b}, RouterOptions{HedgeAfter: time.Millisecond})

	start := time.Now()
	res, err := rt.Lookup(1, 5)
	if err != nil || res.Err != nil {
		t.Fatalf("hedged lookup: %+v %v", res, err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("hedge did not race the slow backend: %v", elapsed)
	}
	if res.Next != 2 {
		t.Fatalf("expected the hedge's answer, got %+v", res)
	}
}

// ctxBackend is a ContextBackend whose lookups, when stalled, park until the
// router cancels the hedged race — the shape of a wedged peer behind a
// cancellable transport.
type ctxBackend struct {
	fakeBackend
	stall atomic.Bool
}

func (c *ctxBackend) LookupCtx(ctx context.Context, src, dst int) (serve.Result, error) {
	c.calls.Add(1)
	if c.stall.Load() {
		<-ctx.Done()
		return serve.Result{}, ctx.Err()
	}
	c.mu.Lock()
	res := c.result
	c.mu.Unlock()
	return res, nil
}

// TestRouterReapsLosingHedge: when a hedge wins, the losing attempt's
// goroutine must be cancelled and reaped, not left parked inside the stalled
// backend for its full timeout. Regression test for goroutine pile-up under a
// wedged peer — the suite runs it under -race.
func TestRouterReapsLosingHedge(t *testing.T) {
	slow := &ctxBackend{fakeBackend: fakeBackend{name: "slow"}}
	slow.stall.Store(true)
	fast := &fakeBackend{name: "fast"}
	fast.set(nil, okResult(2), 0)
	rt := NewRouter([]Backend{slow, fast}, RouterOptions{HedgeAfter: 100 * time.Microsecond})

	before := runtime.NumGoroutine()
	for i := 0; i < 64; i++ {
		res, err := rt.Lookup(1, 5)
		if err != nil || res.Err != nil || res.Next != 2 {
			t.Fatalf("lookup %d: %+v %v", i, res, err)
		}
	}
	if slow.calls.Load() == 0 {
		t.Fatal("stalled backend never raced — the hedge path was not exercised")
	}
	// Every loser unblocks on the winner's cancel; give the scheduler a
	// moment to reap them, then require the count back at baseline (small
	// slack for runtime housekeeping goroutines).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before hedged lookups, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRouterSetBackendsPreservesHealth(t *testing.T) {
	now := time.Unix(3000, 0)
	clock := func() time.Time { return now }
	a := &fakeBackend{name: "a"}
	b := &fakeBackend{name: "b"}
	a.set(errConnRefused, serve.Result{}, 0)
	b.set(nil, okResult(2), 0)
	rt := NewRouter([]Backend{a, b}, RouterOptions{HedgeAfter: -1, ProbeAfter: time.Hour, Clock: clock})
	if _, err := rt.Lookup(1, 5); err != nil {
		t.Fatal(err)
	}
	if a.calls.Load() != 1 {
		t.Fatal("setup: a not demoted")
	}

	// Reconfigure (promotion): a's demotion survives, c joins healthy.
	c := &fakeBackend{name: "c"}
	c.set(nil, okResult(3), 0)
	rt.SetBackends([]Backend{a, b, c})
	for i := 0; i < 6; i++ {
		if _, err := rt.Lookup(1, 5); err != nil {
			t.Fatal(err)
		}
	}
	if a.calls.Load() != 1 {
		t.Fatal("demotion lost across SetBackends")
	}
	served := rt.Served()
	if served["b"] == 0 || served["c"] == 0 {
		t.Fatalf("round robin skipped a healthy backend: %v", served)
	}
}
