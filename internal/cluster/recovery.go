// The primary's crash-recovery state machine: turn whatever a dead primary
// left in its WAL directory into a log the next incarnation can resume — or
// prove it cannot, and bump the epoch so replicas resync exactly once.
//
// The decision rests on one invariant the write path maintains (wal.go,
// serve.Engine.rebuildLocked): a record becomes replica-visible only after
// the durable store accepted it, and the engine journals a publication
// before persisting its snapshot. Under fsync policy "always" both give:
//
//	replica-visible records ⊆ durable WAL, and WAL frontier ≥ snapshot Seq.
//
// A torn tail is therefore a record nobody ever saw — truncate and resume
// under the same epoch, replaying the WAL forward over the engine's (possibly
// older) persisted snapshot. Anything that breaks the invariant — a weaker
// fsync policy, a dirty marker from wedged journaling, an undecodable WAL, a
// replay gap, or a DistCRC mismatch — forces the epoch-bump path: wipe the
// WAL, stamp epoch+1, and let replicas full-resync off the recovered state.
package cluster

import (
	"fmt"

	"routetab/internal/cluster/walstore"
	"routetab/internal/faultinject"
	"routetab/internal/graph"
	"routetab/internal/serve"
)

// RecoverConfig parameterises RecoverPrimaryLog.
type RecoverConfig struct {
	// Dir is the WAL directory.
	Dir string
	// FS overrides the filesystem (nil = operating system).
	FS faultinject.FS
	// Fsync is the write-side policy for the resumed log.
	Fsync walstore.Policy
	// SegmentBytes overrides the rotation threshold (0 = default).
	SegmentBytes int
	// BatchEvery overrides the PolicyBatch sync interval (0 = default).
	BatchEvery int
	// FreshEpoch is the epoch stamped on a virgin WAL directory (default 1).
	FreshEpoch uint64
}

// RecoveryReport describes one recovery outcome.
type RecoveryReport struct {
	Fresh            bool   `json:"fresh"`            // virgin WAL directory
	Segments         int    `json:"segments"`         // segment files retained by the store scan
	Entries          uint64 `json:"entries"`          // WAL entries retained
	TornBytes        int64  `json:"torn_bytes"`       // bytes cut from the torn tail
	DroppedSegments  int    `json:"dropped_segments"` // unusable files deleted
	Replayed         int    `json:"replayed"`         // publish records replayed onto the engine
	Overlay          int    `json:"overlay"`          // link/node overlay records reapplied
	SkippedBelowSnap int    `json:"skipped"`          // publish records at or below the persisted snapshot
	Epoch            uint64 `json:"epoch"`            // epoch the primary resumes under
	EpochBumped      bool   `json:"epoch_bumped"`     // true on the resync path
	ResumeSeq        uint64 `json:"resume_seq"`       // WAL frontier after recovery
	Reason           string `json:"reason"`           // human-readable outcome
}

// RecoverPrimaryLog opens (and repairs) the WAL directory, replays it
// forward onto eng/rep, and returns the log the next Primary should resume
// with — wire it via NewPrimaryAt. It must run before the publish hook is
// claimed (replayed publications must not re-journal) and, ideally, before
// the repairer starts rebuilding on its own: a rebuild published between
// replay and hook claim is not journaled and costs replicas one resync
// (correctness is unaffected — the gap check catches it).
func RecoverPrimaryLog(eng *serve.Engine, rep *serve.Repairer, cfg RecoverConfig) (*Log, *RecoveryReport, error) {
	if cfg.FreshEpoch == 0 {
		cfg.FreshEpoch = 1
	}
	store, err := walstore.Open(cfg.Dir, walstore.Options{
		FS: cfg.FS, Fsync: cfg.Fsync, SegmentBytes: cfg.SegmentBytes, BatchEvery: cfg.BatchEvery,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: recover: %w", err)
	}
	rec := store.Recovery()
	rpt := &RecoveryReport{
		Segments:        rec.Segments,
		Entries:         rec.Entries,
		TornBytes:       rec.TornBytes,
		DroppedSegments: rec.DroppedSegments,
	}
	bump := func(reason string) (*Log, *RecoveryReport, error) {
		epoch := rec.Epoch + 1
		if epoch < cfg.FreshEpoch {
			epoch = cfg.FreshEpoch
		}
		if err := store.Reset(epoch); err != nil {
			return nil, nil, fmt.Errorf("cluster: recover: %w", err)
		}
		log, err := OpenLog(store)
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: recover: %w", err)
		}
		rpt.Epoch = epoch
		rpt.EpochBumped = true
		rpt.Reason = reason
		return log, rpt, nil
	}
	if rec.Epoch == 0 && rec.LastSeq == 0 && !rec.Dirty {
		if err := store.SetEpoch(cfg.FreshEpoch); err != nil {
			return nil, nil, fmt.Errorf("cluster: recover: %w", err)
		}
		log, err := OpenLog(store)
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: recover: %w", err)
		}
		rpt.Fresh = true
		rpt.Epoch = cfg.FreshEpoch
		rpt.Reason = "fresh WAL directory"
		return log, rpt, nil
	}
	if rec.Dirty {
		return bump("dirty marker: previous writer wedged mid-epoch")
	}
	log, err := OpenLog(store)
	if err != nil {
		return bump(fmt.Sprintf("undecodable WAL: %v", err))
	}
	recs, err := log.Since(log.base)
	if err != nil {
		return bump(fmt.Sprintf("unreadable WAL window: %v", err))
	}
	replayed, overlay, skipped, rerr := replayRecords(eng, rep, recs)
	rpt.Replayed, rpt.Overlay, rpt.SkippedBelowSnap = replayed, overlay, skipped
	if rerr != nil {
		return bump(fmt.Sprintf("replay failed: %v", rerr))
	}
	if rec.Policy != walstore.PolicyAlways {
		return bump(fmt.Sprintf("previous writer fsync policy %q: visible records may not be durable", rec.Policy))
	}
	rpt.Epoch = rec.Epoch
	rpt.ResumeSeq = log.LastSeq()
	rpt.Reason = "resumed epoch: WAL replays forward cleanly under fsync=always"
	return log, rpt, nil
}

// replayRecords applies retained WAL records in log order onto the engine
// and repairer, mirroring Replica.apply: publications below the engine's
// snapshot are idempotently skipped, each replayed publication must land on
// the next snapshot sequence and verify its state CRC (matrix or scheme
// tables by record flavour), and overlay records rebuild the failure view.
func replayRecords(eng *serve.Engine, rep *serve.Repairer, recs []Record) (replayed, overlay, skipped int, err error) {
	for _, rec := range recs {
		switch rec.Kind {
		case RecPublish, RecPublishTables, RecOwned:
			cur := eng.Current()
			if rec.SnapSeq <= cur.Seq {
				skipped++
				continue
			}
			if rec.SnapSeq != cur.Seq+1 {
				return replayed, overlay, skipped, fmt.Errorf("cluster: recover: publish gap: have snap %d, record %d is snap %d", cur.Seq, rec.Seq, rec.SnapSeq)
			}
			diff := func(g *graph.Graph) error {
				for _, e := range rec.Removes {
					if err := g.RemoveEdge(e[0], e[1]); err != nil {
						return err
					}
				}
				for _, e := range rec.Adds {
					if err := g.AddEdge(e[0], e[1]); err != nil {
						return err
					}
				}
				return nil
			}
			var snap *serve.Snapshot
			var merr error
			if rec.Kind == RecOwned {
				// Keyspace handover: replay diff and ownership change in one
				// publication, mirroring Replica.apply.
				owned, oerr := rec.OwnedSet()
				if oerr != nil {
					return replayed, overlay, skipped, fmt.Errorf("cluster: recover: record %d: %w", rec.Seq, oerr)
				}
				snap, merr = eng.MutateOwned(owned, diff)
			} else {
				snap, merr = eng.Mutate(diff)
			}
			if merr != nil {
				return replayed, overlay, skipped, fmt.Errorf("cluster: recover: record %d: %w", rec.Seq, merr)
			}
			if snap.Seq != rec.SnapSeq {
				return replayed, overlay, skipped, fmt.Errorf("cluster: recover: replayed snap %d, record %d says %d", snap.Seq, rec.Seq, rec.SnapSeq)
			}
			if verr := verifyPublish(rec, snap); verr != nil {
				return replayed, overlay, skipped, fmt.Errorf("cluster: recover: record %d: %w", rec.Seq, verr)
			}
			replayed++
			if rep != nil {
				rep.Reconcile()
			}
		case RecLink:
			if rep == nil {
				return replayed, overlay, skipped, fmt.Errorf("cluster: recover: link record %d with no repairer", rec.Seq)
			}
			if err := rep.SetLinkDown(rec.U, rec.V, rec.Down); err != nil {
				return replayed, overlay, skipped, fmt.Errorf("cluster: recover: record %d: %w", rec.Seq, err)
			}
			overlay++
		case RecNode:
			if rep == nil {
				return replayed, overlay, skipped, fmt.Errorf("cluster: recover: node record %d with no repairer", rec.Seq)
			}
			if err := rep.SetNodeDown(rec.U, rec.Down); err != nil {
				return replayed, overlay, skipped, fmt.Errorf("cluster: recover: record %d: %w", rec.Seq, err)
			}
			overlay++
		default:
			return replayed, overlay, skipped, fmt.Errorf("%w: kind %d at seq %d", ErrBadRecord, int(rec.Kind), rec.Seq)
		}
	}
	if rep != nil {
		rep.Reconcile()
	}
	return replayed, overlay, skipped, nil
}
