package cluster

import (
	"testing"
	"time"
)

// TestBackoffDelayBounds pins the resync backoff contract: the steady state
// is exactly the sync interval (no jitter — the healthy cadence must be
// stable), each failure doubles the delay up to the cap, and jitter never
// leaves the ±25% band around the capped nominal delay.
func TestBackoffDelayBounds(t *testing.T) {
	base := 100 * time.Millisecond
	max := 800 * time.Millisecond

	for _, unit := range []float64{0, 0.25, 0.5, 1} {
		if d := backoffDelay(base, max, 0, unit); d != base {
			t.Fatalf("steady state with unit=%v: %v, want exactly %v", unit, d, base)
		}
	}

	for failures := 1; failures <= 12; failures++ {
		nominal := base
		for i := 0; i < failures && nominal < max; i++ {
			nominal *= 2
		}
		if nominal > max {
			nominal = max
		}
		lo := time.Duration(float64(nominal) * 0.75)
		hi := time.Duration(float64(nominal) * 1.25)
		for _, unit := range []float64{0, 0.25, 0.5, 0.999, 1} {
			d := backoffDelay(base, max, failures, unit)
			if d < lo || d > hi {
				t.Fatalf("failures=%d unit=%v: delay %v outside [%v, %v]", failures, unit, d, lo, hi)
			}
		}
		// Jitter is monotone in the random unit at fixed failure count.
		if a, b := backoffDelay(base, max, failures, 0), backoffDelay(base, max, failures, 1); a >= b {
			t.Fatalf("failures=%d: jitter not monotone (%v at unit=0, %v at unit=1)", failures, a, b)
		}
	}

	// Far past the doubling horizon the cap (plus jitter headroom) holds.
	if d := backoffDelay(base, max, 1000, 1); d > time.Duration(float64(max)*1.25) {
		t.Fatalf("capped delay %v exceeds 1.25×cap %v", d, max)
	}
	// The ramp is monotone in failure count until the cap flattens it.
	prev := backoffDelay(base, max, 0, 0.5)
	for failures := 1; failures <= 6; failures++ {
		d := backoffDelay(base, max, failures, 0.5)
		if d < prev {
			t.Fatalf("failures=%d: delay %v shrank from %v", failures, d, prev)
		}
		prev = d
	}
}

// TestBackoffDefaultCap: JoinReplica defaults the cap to 32× the sync
// interval so an unconfigured replica cannot back off unboundedly.
func TestBackoffDefaultCap(t *testing.T) {
	p := testPrimary(t, 16, 5)
	r, err := JoinReplica(p, ReplicaOptions{SyncInterval: 3 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got, want := r.opts.SyncBackoffCap, 32*3*time.Millisecond; got != want {
		t.Fatalf("default SyncBackoffCap = %v, want %v", got, want)
	}
}
