// HTTP transport for replication: NewHTTPHandler exposes a Primary's
// replication feed under /cluster/*, and HTTPSource is the matching client —
// a Source a replica can point at a routetabd peer. The wire bodies are the
// same CRC-framed binary forms used in-process (EncodeState/EncodeWALBatch),
// so a corrupted or truncated response is rejected by the codec and surfaces
// as ErrBadRecord, which drives the replica's full-resync fallback; digests
// travel as JSON. A follower answering the feed endpoints returns 503 — the
// caller treats that like any other transport failure and keeps serving its
// last-adopted state.
package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Replication feed paths, shared by handler and client.
const (
	PathState  = "/cluster/state"
	PathWAL    = "/cluster/wal"
	PathDigest = "/cluster/digest"
)

// SourceProvider returns the Source to feed replicas from, or nil when this
// member is not currently a primary (the endpoints then answer 503). A
// provider instead of a fixed Source lets a daemon change roles — a promoted
// replica starts feeding without remounting its HTTP mux.
type SourceProvider func() Source

// NewHTTPHandler serves a replication feed under /cluster/state, /cluster/wal
// and /cluster/digest. Mount it at the mux root (the paths are absolute).
func NewHTTPHandler(provider SourceProvider) http.Handler {
	h := &httpFeed{provider: provider}
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+PathState, h.state)
	mux.HandleFunc("GET "+PathWAL, h.wal)
	mux.HandleFunc("GET "+PathDigest, h.digest)
	return mux
}

type httpFeed struct {
	provider SourceProvider
}

func (h *httpFeed) source(w http.ResponseWriter) (Source, bool) {
	src := h.provider()
	if src == nil {
		httpError(w, http.StatusServiceUnavailable, errors.New("not primary"))
		return nil, false
	}
	return src, true
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func (h *httpFeed) state(w http.ResponseWriter, _ *http.Request) {
	src, ok := h.source(w)
	if !ok {
		return
	}
	st, err := src.FetchState()
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	// Encode to a buffer first so an encoding failure can still become a 500
	// instead of a torn 200 body.
	var buf bytes.Buffer
	if err := EncodeState(&buf, st); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	_, _ = w.Write(buf.Bytes())
}

func (h *httpFeed) wal(w http.ResponseWriter, r *http.Request) {
	src, ok := h.source(w)
	if !ok {
		return
	}
	after, err := strconv.ParseUint(r.URL.Query().Get("after"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad after: %w", err))
		return
	}
	batch, err := src.FetchWAL(after)
	switch {
	case errors.Is(err, ErrGone):
		// 410 Gone is the wire form of ErrGone: the requested records were
		// truncated, fall back to a full state fetch.
		httpError(w, http.StatusGone, err)
		return
	case err != nil:
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	var buf bytes.Buffer
	if err := EncodeWALBatch(&buf, batch); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	_, _ = w.Write(buf.Bytes())
}

func (h *httpFeed) digest(w http.ResponseWriter, _ *http.Request) {
	src, ok := h.source(w)
	if !ok {
		return
	}
	d, err := src.FetchDigest()
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(d)
}

// HTTPSource implements Source over a peer's /cluster endpoints. Safe for
// concurrent use (the underlying http.Client is).
type HTTPSource struct {
	base string
	c    *http.Client
}

var _ Source = (*HTTPSource)(nil)

// NewHTTPSource builds a Source over the peer at base (e.g.
// "http://127.0.0.1:7353"). client may be nil for a default with a 10s
// timeout.
func NewHTTPSource(base string, client *http.Client) *HTTPSource {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	return &HTTPSource{base: strings.TrimRight(base, "/"), c: client}
}

// Base returns the peer URL this source fetches from.
func (s *HTTPSource) Base() string { return s.base }

// get performs one feed request and hands back the body. Status mapping: 410
// becomes ErrGone; anything else non-200 is a transport-level error carrying
// the peer's message.
func (s *HTTPSource) get(path string) (io.ReadCloser, error) {
	resp, err := s.c.Get(s.base + path)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		msg := readErrBody(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusGone {
			return nil, fmt.Errorf("%w: %s", ErrGone, msg)
		}
		return nil, fmt.Errorf("cluster: %s: %s (%s)", path, resp.Status, msg)
	}
	return resp.Body, nil
}

// readErrBody extracts the handler's JSON error message, falling back to the
// raw (truncated) body.
func readErrBody(r io.Reader) string {
	raw, err := io.ReadAll(io.LimitReader(r, 4096))
	if err != nil || len(raw) == 0 {
		return "no body"
	}
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(raw))
}

// FetchState implements Source.
func (s *HTTPSource) FetchState() (*State, error) {
	body, err := s.get(PathState)
	if err != nil {
		return nil, err
	}
	defer body.Close()
	return DecodeState(body)
}

// FetchWAL implements Source. A truncated-away position surfaces as ErrGone
// (from the peer's 410); a corrupted body is rejected by the codec as
// ErrBadRecord — both drive the replica to a full resync.
func (s *HTTPSource) FetchWAL(after uint64) (*WALBatch, error) {
	body, err := s.get(PathWAL + "?after=" + strconv.FormatUint(after, 10))
	if err != nil {
		return nil, err
	}
	defer body.Close()
	return DecodeWALBatch(body)
}

// FetchDigest implements Source.
func (s *HTTPSource) FetchDigest() (Digest, error) {
	body, err := s.get(PathDigest)
	if err != nil {
		return Digest{}, err
	}
	defer body.Close()
	var d Digest
	if err := json.NewDecoder(body).Decode(&d); err != nil {
		return Digest{}, fmt.Errorf("cluster: digest decode: %w", err)
	}
	return d, nil
}
