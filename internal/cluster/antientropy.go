// Anti-entropy: cheap convergence fingerprints exchanged between cluster
// members. A Digest compresses a member's entire served state — epoch, WAL
// position, snapshot sequence, tier, node count, and the CRC-32C of the
// served tables (the packed distance matrix on the full tier, the encoded
// LMTB1 scheme tables on the tables tier) — into a handful of integers.
// Because rebuilds are deterministic, two members whose digests match are
// serving byte-identical routing tables; a mismatch at equal WAL position
// means divergence and demands a resync, not a shrug.
package cluster

import (
	"fmt"

	"routetab/internal/serve"
)

// Digest fingerprints one member's served state. StateCRC is tier-dependent:
// DistCRC of the packed matrix on the full tier, TablesCRC of the encoded
// scheme tables on the tables tier — so Converged asserts byte-identical
// scheme state, never merely "same sequence number". Tier is part of the
// fingerprint: a full-tier member never converges with a tables-tier one,
// even if both CRCs collide.
type Digest struct {
	Epoch    uint64
	WalSeq   uint64
	SnapSeq  uint64
	Tier     string
	N        int
	StateCRC uint32
}

// String implements fmt.Stringer.
func (d Digest) String() string {
	return fmt.Sprintf("epoch=%d wal=%d snap=%d tier=%s n=%d crc=%08x",
		d.Epoch, d.WalSeq, d.SnapSeq, d.Tier, d.N, d.StateCRC)
}

func digestOf(eng *serve.Engine, epoch, walSeq uint64) Digest {
	cur := eng.Current()
	return Digest{
		Epoch:    epoch,
		WalSeq:   walSeq,
		SnapSeq:  cur.Seq,
		Tier:     cur.Tier,
		N:        cur.N(),
		StateCRC: SnapshotCRC(cur),
	}
}

// Converged reports whether every digest matches the first one exactly. An
// empty or single-element set is trivially converged.
func Converged(ds ...Digest) bool {
	for _, d := range ds[1:] {
		if d != ds[0] {
			return false
		}
	}
	return true
}

// CheckEntropy fetches digests from a primary source and a set of replicas
// and reports whether the cluster has converged; the returned digests are in
// input order (primary first). A fetch error counts as divergence.
func CheckEntropy(primary Source, replicas ...*Replica) (bool, []Digest, error) {
	ds := make([]Digest, 0, 1+len(replicas))
	pd, err := primary.FetchDigest()
	if err != nil {
		return false, nil, fmt.Errorf("cluster: primary digest: %w", err)
	}
	ds = append(ds, pd)
	for _, r := range replicas {
		ds = append(ds, r.Digest())
	}
	return Converged(ds...), ds, nil
}
