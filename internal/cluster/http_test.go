package cluster

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"routetab/internal/graph"
)

// feedServer mounts the replication feed for p behind an httptest server and
// returns a Source pointing at it.
func feedServer(t *testing.T, provider SourceProvider) *HTTPSource {
	t.Helper()
	ts := httptest.NewServer(NewHTTPHandler(provider))
	t.Cleanup(ts.Close)
	return NewHTTPSource(ts.URL, ts.Client())
}

// TestHTTPReplicationEndToEnd drives the full replica lifecycle over real
// HTTP: join from /cluster/state, stream /cluster/wal, fall back through 410
// Gone after truncation, and converge byte-identically throughout.
func TestHTTPReplicationEndToEnd(t *testing.T) {
	p := testPrimary(t, 24, 3)
	src := feedServer(t, func() Source { return p })

	r, err := JoinReplica(src, ReplicaOptions{})
	if err != nil {
		t.Fatalf("join over http: %v", err)
	}
	defer r.Close()
	requireConverged(t, p, r)

	// Incremental replay over the wire.
	edges := p.Engine().Current().Graph.Edges()
	for i := 0; i < 3; i++ {
		e := edges[i*5]
		if _, err := p.Mutate(func(g *graph.Graph) error {
			if g.HasEdge(e[0], e[1]) {
				if err := g.RemoveEdge(e[0], e[1]); err != nil {
					return err
				}
				if !g.IsConnected() {
					return g.AddEdge(e[0], e[1])
				}
				return nil
			}
			return g.AddEdge(e[0], e[1])
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.SetLinkDown(edges[1][0], edges[1][1], true); err != nil {
		t.Fatal(err)
	}
	syncOK(t, r)
	requireConverged(t, p, r)
	if _, resyncs, _ := r.Stats(); resyncs != 0 {
		t.Fatalf("incremental path resynced %d times", resyncs)
	}

	// Truncate the WAL out from under the replica: the peer answers 410, the
	// source surfaces ErrGone, and the replica falls back to a state fetch.
	if _, err := p.Mutate(func(g *graph.Graph) error { return nil }); err != nil {
		t.Fatal(err)
	}
	p.Log().TruncateTo(p.Log().LastSeq())
	syncOK(t, r)
	requireConverged(t, p, r)
	if _, resyncs, _ := r.Stats(); resyncs != 1 {
		t.Fatalf("resyncs = %d, want 1 after truncation", resyncs)
	}
}

// TestHTTPSourceGone checks the 410 → ErrGone mapping directly.
func TestHTTPSourceGone(t *testing.T) {
	p := testPrimary(t, 16, 5)
	src := feedServer(t, func() Source { return p })
	if _, err := p.Mutate(func(g *graph.Graph) error { return nil }); err != nil {
		t.Fatal(err)
	}
	p.Log().TruncateTo(p.Log().LastSeq())
	_, err := src.FetchWAL(0)
	if !errors.Is(err, ErrGone) {
		t.Fatalf("err = %v, want ErrGone", err)
	}
}

// TestHTTPFeedNotPrimary checks that a follower (nil provider) answers 503
// and the client reports it as a plain transport-level error, not ErrGone.
func TestHTTPFeedNotPrimary(t *testing.T) {
	src := feedServer(t, func() Source { return nil })
	if _, err := src.FetchState(); err == nil || errors.Is(err, ErrGone) {
		t.Fatalf("FetchState err = %v, want non-Gone error", err)
	}
	if _, err := src.FetchWAL(0); err == nil || errors.Is(err, ErrGone) {
		t.Fatalf("FetchWAL err = %v, want non-Gone error", err)
	}
	if _, err := src.FetchDigest(); err == nil {
		t.Fatal("FetchDigest succeeded against a follower")
	}
}

// TestHTTPSourceRejectsCorruptBody flips one bit of an otherwise-valid WAL
// response in transit; the codec must reject it as ErrBadRecord so the
// replica's resync fallback fires.
func TestHTTPSourceRejectsCorruptBody(t *testing.T) {
	p := testPrimary(t, 16, 9)
	if _, err := p.Mutate(func(g *graph.Graph) error { return nil }); err != nil {
		t.Fatal(err)
	}

	inner := NewHTTPHandler(func() Source { return p })
	var corrupt atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !corrupt.Load() {
			inner.ServeHTTP(w, r)
			return
		}
		rec := httptest.NewRecorder()
		inner.ServeHTTP(rec, r)
		body, _ := io.ReadAll(rec.Body)
		if len(body) > 12 {
			body[len(body)/2] ^= 0x10
		}
		w.WriteHeader(rec.Code)
		_, _ = w.Write(body)
	}))
	defer ts.Close()
	src := NewHTTPSource(ts.URL, ts.Client())

	if _, err := src.FetchWAL(0); err != nil {
		t.Fatalf("clean fetch: %v", err)
	}
	corrupt.Store(true)
	if _, err := src.FetchWAL(0); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("corrupt fetch err = %v, want ErrBadRecord", err)
	}
}
