package cluster

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"routetab/internal/cluster/walstore"
	"routetab/internal/faultinject"
)

// mustOpenStore opens a small-segment durable store (so truncation actually
// deletes segments) stamped with epoch 1 when virgin.
func mustOpenStore(t *testing.T, fs faultinject.FS) *walstore.Store {
	t.Helper()
	store, err := walstore.Open("w", walstore.Options{FS: fs, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if store.Epoch() == 0 {
		if err := store.SetEpoch(1); err != nil {
			t.Fatal(err)
		}
	}
	return store
}

// TestTruncateRaceSince hammers Append/TruncateTo against concurrent Since
// readers (the FetchState→first-FetchWAL path a bootstrapping replica takes).
// The contract under race: every Since(after) either returns a dense run
// starting at after+1, or fails with ErrGone — never a window with a silent
// gap. Run with -race.
func TestTruncateRaceSince(t *testing.T) {
	log := NewLog()
	const total = 4000
	var wg sync.WaitGroup
	var done atomic.Bool

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for i := 0; i < total; i++ {
			seq := log.Append(Record{Kind: RecLink, U: 1, V: 2, Down: i%2 == 0})
			if seq > 64 && seq%7 == 0 {
				log.TruncateTo(seq - 32)
			}
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				// Mimic FetchState: read the frontier, then ask for the
				// suffix after some position at or below it.
				frontier := log.LastSeq()
				after := uint64(0)
				if frontier > 40 {
					after = frontier - 40
				}
				recs, err := log.Since(after)
				if err != nil {
					if !errors.Is(err, ErrGone) {
						t.Errorf("Since(%d): unexpected error %v", after, err)
						return
					}
					continue // deterministic resync signal — fine
				}
				for i, rec := range recs {
					if rec.Seq != after+uint64(i)+1 {
						t.Errorf("Since(%d): gap at index %d: seq %d", after, i, rec.Seq)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if log.LastSeq() != total {
		t.Fatalf("frontier %d, want %d", log.LastSeq(), total)
	}
}

// TestTruncateRaceSinceDurable repeats the hammer with a durable MemFS-backed
// store attached, covering the disk-truncate path (segment deletion racing
// reads) under the race detector.
func TestTruncateRaceSinceDurable(t *testing.T) {
	fs := faultinject.NewMemFS()
	store := mustOpenStore(t, fs)
	log, err := OpenLog(store)
	if err != nil {
		t.Fatal(err)
	}
	defer log.CloseWAL()

	const total = 1500
	var wg sync.WaitGroup
	var done atomic.Bool

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for i := 0; i < total; i++ {
			seq := log.Append(Record{Kind: RecNode, U: 3, Down: i%2 == 0})
			if seq > 100 && seq%13 == 0 {
				log.TruncateTo(seq - 64)
			}
		}
	}()

	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				frontier := log.LastSeq()
				after := uint64(0)
				if frontier > 20 {
					after = frontier - 20
				}
				recs, err := log.Since(after)
				if err != nil {
					if !errors.Is(err, ErrGone) {
						t.Errorf("Since(%d): unexpected error %v", after, err)
						return
					}
					continue
				}
				for i, rec := range recs {
					if rec.Seq != after+uint64(i)+1 {
						t.Errorf("Since(%d): gap at index %d: seq %d", after, i, rec.Seq)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if durable, failures, derr := log.Durability(); !durable || failures != 0 {
		t.Fatalf("log wedged under race: %v %d %v", durable, failures, derr)
	}
	if log.LastSeq() != total {
		t.Fatalf("frontier %d, want %d", log.LastSeq(), total)
	}
}

// TestSinceAfterReopenTruncatedWindow checks the deterministic ErrGone
// contract across a restart: a replica holding a position below the retained
// window must get ErrGone, never a partial replay.
func TestSinceAfterReopenTruncatedWindow(t *testing.T) {
	fs := faultinject.NewMemFS()
	store := mustOpenStore(t, fs)
	log, err := OpenLog(store)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		log.Append(Record{Kind: RecLink, U: 1, V: 2, Down: i%2 == 0})
	}
	// Truncate at the frontier: every sealed segment is dropped and only the
	// active one survives, so the durable base moves strictly above zero.
	log.TruncateTo(log.LastSeq())
	if store.FirstSeq() <= 1 {
		t.Fatalf("schedule did not rotate: retained first seq %d", store.FirstSeq())
	}
	if err := log.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	store2 := mustOpenStore(t, fs)
	log2, err := OpenLog(store2)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.CloseWAL()
	if log2.LastSeq() != 40 {
		t.Fatalf("frontier %d, want 40", log2.LastSeq())
	}
	if _, err := log2.Since(0); !errors.Is(err, ErrGone) {
		t.Fatalf("Since(0) after truncation: %v, want ErrGone", err)
	}
	base := log2.base
	recs, err := log2.Since(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || recs[0].Seq != base+1 || recs[len(recs)-1].Seq != 40 {
		t.Fatalf("retained window wrong: %d records, first %d", len(recs), recs[0].Seq)
	}
}
