// Package shard partitions a routing cluster's source keyspace across
// replicated serving groups.
//
// The unit of placement is the source node: a lookup (src, dst) is answered
// by the group that owns src, using the keyspace-restricted scheme tables of
// internal/schemes/landmark (LMTB v2) — dst never constrains placement, so
// any split of the sources is a correct split of the work. Ownership is
// decided by a consistent-hash shard map: each node hashes to a point on the
// 64-bit ring and the map is a sorted tiling of [0, 2^64) into half-open
// ranges, each assigned to a group. Splitting a group moves ranges, not
// nodes, so a split relocates only the keys in the moved range and every
// other group's placement is untouched.
//
// The map itself is replicated state: it is versioned by an epoch that bumps
// on every reshape, and it travels in the same CRC-32C framing as the WAL and
// snapshots (serve.WriteFrame), so a torn or bit-flipped map is rejected
// loudly and never partially adopted — the codec returns either a fully
// validated map or an error, nothing in between.
package shard

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"routetab/internal/keyspace"
	"routetab/internal/serve"
)

// ErrBadMap reports a shard map that failed structural validation or CRC.
var ErrBadMap = errors.New("shard: bad shard map")

// maxNodes mirrors the landmark scheme's node-id ceiling (ports and ids are
// uint16 on the wire).
const maxNodes = 65535

// maxRanges bounds decode-side allocation: a map may carry at most this many
// ranges regardless of what its header claims.
const maxRanges = 1 << 16

// Range assigns the half-open hash interval [Start, next.Start) — or
// [Start, 2^64) for the last range — to one group.
type Range struct {
	Start uint64
	Group int
}

// Map is an immutable placement of the source keyspace onto shard groups.
// Mutating operations (Split) return a new Map under a bumped epoch.
type Map struct {
	// Epoch versions the placement; every reshape bumps it. Routers compare
	// epochs to decide which of two maps is newer.
	Epoch uint64
	// N is the number of nodes in the keyspace (ids 1..N).
	N int
	// Groups is the number of shard groups; ids are dense 0..Groups-1.
	Groups int
	// Ranges tile [0, 2^64) sorted by Start; Ranges[0].Start == 0.
	Ranges []Range
}

// HashKey places node u on the 64-bit ring (splitmix64 of the id — cheap,
// stateless, and well-mixed so uniform range splits give near-uniform key
// splits).
func HashKey(u int) uint64 {
	z := uint64(u) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewUniform builds the epoch-1 map: the ring cut into groups equal ranges,
// range i owned by group i.
func NewUniform(n, groups int) (*Map, error) {
	if n < 1 || n > maxNodes {
		return nil, fmt.Errorf("%w: n=%d out of range [1, %d]", ErrBadMap, n, maxNodes)
	}
	if groups < 1 || groups > n {
		return nil, fmt.Errorf("%w: %d groups for %d nodes", ErrBadMap, groups, n)
	}
	ranges := make([]Range, groups)
	step := ^uint64(0)/uint64(groups) + 1
	for g := 0; g < groups; g++ {
		ranges[g] = Range{Start: uint64(g) * step, Group: g}
	}
	m := &Map{Epoch: 1, N: n, Groups: groups, Ranges: ranges}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// GroupFor returns the group owning node u.
func (m *Map) GroupFor(u int) int {
	h := HashKey(u)
	// The last range with Start <= h owns h.
	i := sort.Search(len(m.Ranges), func(i int) bool { return m.Ranges[i].Start > h }) - 1
	return m.Ranges[i].Group
}

// rangeEnd returns the exclusive end of range i (0 means 2^64 for the last).
func (m *Map) rangeEnd(i int) uint64 {
	if i+1 < len(m.Ranges) {
		return m.Ranges[i+1].Start
	}
	return 0 // wraps: treated as 2^64 by width()
}

func (m *Map) width(i int) uint64 {
	w := m.rangeEnd(i) - m.Ranges[i].Start // wraps correctly for the last range
	if w == 0 && len(m.Ranges) == 1 {
		return ^uint64(0) // single full-ring range: 2^64, saturated to max
	}
	return w
}

// OwnedSet materialises the keyspace owned by group g under this map.
func (m *Map) OwnedSet(g int) (*keyspace.Set, error) {
	if g < 0 || g >= m.Groups {
		return nil, fmt.Errorf("%w: group %d of %d", ErrBadMap, g, m.Groups)
	}
	set, err := keyspace.New(m.N)
	if err != nil {
		return nil, err
	}
	for u := 1; u <= m.N; u++ {
		if m.GroupFor(u) == g {
			set.Add(u)
		}
	}
	return set, nil
}

// Split carves a new group out of group g: the widest range owned by g is
// halved, the upper half moves to a fresh group (id = old Groups), and the
// epoch bumps. The receiver is unchanged; the new map and the new group id
// are returned. A split that would move zero keys (the half is empty) is
// still structurally valid — the caller decides whether an empty handover is
// worth an epoch.
func (m *Map) Split(g int) (*Map, int, error) {
	if g < 0 || g >= m.Groups {
		return nil, 0, fmt.Errorf("%w: split group %d of %d", ErrBadMap, g, m.Groups)
	}
	widest, found := -1, false
	for i := range m.Ranges {
		if m.Ranges[i].Group != g {
			continue
		}
		if !found || m.width(i) > m.width(widest) {
			widest, found = i, true
		}
	}
	if !found {
		return nil, 0, fmt.Errorf("%w: group %d owns no range", ErrBadMap, g)
	}
	if m.width(widest) < 2 {
		return nil, 0, fmt.Errorf("%w: group %d's widest range is unsplittable", ErrBadMap, g)
	}
	mid := m.Ranges[widest].Start + m.width(widest)/2
	newGroup := m.Groups
	ranges := make([]Range, 0, len(m.Ranges)+1)
	ranges = append(ranges, m.Ranges[:widest+1]...)
	ranges = append(ranges, Range{Start: mid, Group: newGroup})
	ranges = append(ranges, m.Ranges[widest+1:]...)
	next := &Map{Epoch: m.Epoch + 1, N: m.N, Groups: m.Groups + 1, Ranges: ranges}
	if err := next.validate(); err != nil {
		return nil, 0, err
	}
	return next, newGroup, nil
}

// validate enforces the structural invariants every adopted map must hold.
func (m *Map) validate() error {
	if m.Epoch == 0 {
		return fmt.Errorf("%w: epoch 0", ErrBadMap)
	}
	if m.N < 1 || m.N > maxNodes {
		return fmt.Errorf("%w: n=%d out of range [1, %d]", ErrBadMap, m.N, maxNodes)
	}
	if m.Groups < 1 || m.Groups > maxRanges {
		return fmt.Errorf("%w: %d groups", ErrBadMap, m.Groups)
	}
	if len(m.Ranges) < m.Groups || len(m.Ranges) > maxRanges {
		return fmt.Errorf("%w: %d ranges for %d groups", ErrBadMap, len(m.Ranges), m.Groups)
	}
	if m.Ranges[0].Start != 0 {
		return fmt.Errorf("%w: first range starts at %d, want 0", ErrBadMap, m.Ranges[0].Start)
	}
	seen := make([]bool, m.Groups)
	for i, r := range m.Ranges {
		if i > 0 && r.Start <= m.Ranges[i-1].Start {
			return fmt.Errorf("%w: range starts not strictly increasing at %d", ErrBadMap, i)
		}
		if r.Group < 0 || r.Group >= m.Groups {
			return fmt.Errorf("%w: range %d assigned to group %d of %d", ErrBadMap, i, r.Group, m.Groups)
		}
		seen[r.Group] = true
	}
	for g, ok := range seen {
		if !ok {
			return fmt.Errorf("%w: group %d owns no range", ErrBadMap, g)
		}
	}
	return nil
}

// mapMagic is the codec preamble; frameTag frames the payload in the shared
// snapshot/WAL CRC framing.
var (
	mapMagic = []byte("RTSMAP1\n")
	frameTag = [4]byte{'S', 'M', 'A', 'P'}
)

// Encode writes the map: magic, then one CRC-framed section holding epoch,
// n, groups, and the range list. Output is a pure function of the map.
func (m *Map) Encode(w *bytes.Buffer) error {
	if err := m.validate(); err != nil {
		return err
	}
	payload := make([]byte, 0, 8+4+4+4+12*len(m.Ranges))
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], m.Epoch)
	payload = append(payload, tmp[:]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(m.N))
	payload = append(payload, tmp[:4]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(m.Groups))
	payload = append(payload, tmp[:4]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(m.Ranges)))
	payload = append(payload, tmp[:4]...)
	for _, r := range m.Ranges {
		binary.LittleEndian.PutUint64(tmp[:], r.Start)
		payload = append(payload, tmp[:]...)
		binary.LittleEndian.PutUint32(tmp[:4], uint32(r.Group))
		payload = append(payload, tmp[:4]...)
	}
	w.Write(mapMagic)
	return serve.WriteFrame(w, frameTag, payload)
}

// EncodeBytes returns the encoded map.
func (m *Map) EncodeBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode parses and fully validates an encoded map. Any corruption — torn
// tail, flipped bit, trailing garbage, structural violation — returns
// ErrBadMap (or the frame's CRC error); a partially valid map is never
// returned.
func Decode(data []byte) (*Map, error) {
	if len(data) < len(mapMagic) || !bytes.Equal(data[:len(mapMagic)], mapMagic) {
		return nil, fmt.Errorf("%w: bad magic", ErrBadMap)
	}
	r := bytes.NewReader(data[len(mapMagic):])
	payload, err := serve.ReadFrame(r, frameTag)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMap, err)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadMap, r.Len())
	}
	if len(payload) < 20 {
		return nil, fmt.Errorf("%w: payload %d bytes", ErrBadMap, len(payload))
	}
	m := &Map{
		Epoch:  binary.LittleEndian.Uint64(payload[0:8]),
		N:      int(binary.LittleEndian.Uint32(payload[8:12])),
		Groups: int(binary.LittleEndian.Uint32(payload[12:16])),
	}
	count := int(binary.LittleEndian.Uint32(payload[16:20]))
	if count < 0 || count > maxRanges {
		return nil, fmt.Errorf("%w: %d ranges", ErrBadMap, count)
	}
	if want := 20 + 12*count; len(payload) != want {
		return nil, fmt.Errorf("%w: payload %d bytes, want %d for %d ranges", ErrBadMap, len(payload), want, count)
	}
	m.Ranges = make([]Range, count)
	for i := 0; i < count; i++ {
		off := 20 + 12*i
		m.Ranges[i] = Range{
			Start: binary.LittleEndian.Uint64(payload[off : off+8]),
			Group: int(int32(binary.LittleEndian.Uint32(payload[off+8 : off+12]))),
		}
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Equal reports whether two maps describe the identical placement.
func (m *Map) Equal(o *Map) bool {
	if m == nil || o == nil {
		return m == o
	}
	if m.Epoch != o.Epoch || m.N != o.N || m.Groups != o.Groups || len(m.Ranges) != len(o.Ranges) {
		return false
	}
	for i := range m.Ranges {
		if m.Ranges[i] != o.Ranges[i] {
			return false
		}
	}
	return true
}

func (m *Map) String() string {
	return fmt.Sprintf("shard.Map{epoch %d, n %d, %d groups, %d ranges}", m.Epoch, m.N, m.Groups, len(m.Ranges))
}
