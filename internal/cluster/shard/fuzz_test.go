package shard

import (
	"bytes"
	"testing"
)

// FuzzDecodeShardMap hardens the one codec whose corruption could silently
// misroute an entire keyspace. The seed corpus is the full corruption matrix
// over a valid encoding — every truncation length and a bit flip at every
// byte — plus degenerate inputs; the property is that Decode either returns
// a fully valid map whose re-encoding is a fixed point, or an error, and
// never a partially adopted placement.
func FuzzDecodeShardMap(f *testing.F) {
	m, err := NewUniform(512, 3)
	if err != nil {
		f.Fatal(err)
	}
	m, _, err = m.Split(1)
	if err != nil {
		f.Fatal(err)
	}
	enc, err := m.EncodeBytes()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc)
	for cut := 0; cut <= len(enc); cut++ {
		f.Add(append([]byte(nil), enc[:cut]...))
	}
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x40
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte("RTSMAP1\n"))
	f.Add(append(append([]byte(nil), enc...), 0xFF))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(data)
		if err != nil {
			if got != nil {
				t.Fatal("Decode returned both a map and an error")
			}
			return
		}
		// Accepted ⇒ structurally whole: validation passes, every node
		// resolves to a live group, and the encoding is a fixed point.
		if verr := got.validate(); verr != nil {
			t.Fatalf("accepted map fails validation: %v", verr)
		}
		for u := 1; u <= got.N && u <= 64; u++ {
			if g := got.GroupFor(u); g < 0 || g >= got.Groups {
				t.Fatalf("node %d routed to group %d of %d", u, g, got.Groups)
			}
		}
		re, err := got.EncodeBytes()
		if err != nil {
			t.Fatalf("re-encode of accepted map failed: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatal("accepted encoding is not a fixed point")
		}
	})
}
