// The scatter-gather front of a partitioned cluster: a shard.Router owns the
// current shard map and one failover cluster.Router per group, fans batch
// lookups out by source shard, and degrades honestly — a shard that cannot
// answer after bounded retries yields ErrShardUnavailable for its keys while
// every other shard's answers stand. Group-level failover (hedging, member
// demotion, promotion) stays inside cluster.Router; this layer adds the
// placement decision, per-shard circuit breakers, jittered retry backoff,
// and the dual-read handoff window a live split needs.
package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"routetab/internal/cluster"
	"routetab/internal/serve"
)

// ErrShardUnavailable reports that the shard owning a key could not answer
// within the retry budget. It rides in Result.Err per key: a batch with one
// dead shard still returns every other shard's answers.
var ErrShardUnavailable = errors.New("shard: shard unavailable")

// RouterOptions configures the scatter-gather front.
type RouterOptions struct {
	// Retries is how many additional attempts a failed shard lookup gets
	// before the key degrades to ErrShardUnavailable (default 2; negative
	// disables retries).
	Retries int
	// RetryBase is the first retry's backoff; it doubles per retry with
	// ±25% jitter (default 200µs).
	RetryBase time.Duration
	// BreakerThreshold is how many consecutive shard-level failures open
	// that shard's breaker (default 5).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects lookups before
	// admitting a single half-open probe (default 10ms).
	BreakerCooldown time.Duration
	// Clock overrides time.Now for tests.
	Clock func() time.Time
	// Seed fixes the jitter source (0 = seeded from 1).
	Seed int64
}

func (o *RouterOptions) setDefaults() {
	if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 200 * time.Microsecond
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 10 * time.Millisecond
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// breaker is one shard's circuit breaker, guarded by the router mutex.
type breaker struct {
	fails     int
	openUntil time.Time
	probing   bool
}

// GroupStats is one shard's serving record as the router saw it.
type GroupStats struct {
	Served uint64 `json:"served"`
	Failed uint64 `json:"failed"`
}

// Availability is served/(served+failed), 1 for an idle shard.
func (s GroupStats) Availability() float64 {
	if s.Served+s.Failed == 0 {
		return 1
	}
	return float64(s.Served) / float64(s.Served+s.Failed)
}

// Router is the scatter-gather front. Safe for concurrent use.
type Router struct {
	opts RouterOptions

	mu      sync.Mutex
	smap    *Map
	groups  map[int]*cluster.Router
	breaker map[int]*breaker
	stats   map[int]*GroupStats
	rng     *rand.Rand
	// handoffTo/handoffFrom describe the dual-read window of a live split:
	// while active, keys the map sends to handoffTo may fall back to
	// handoffFrom, which held them before the cutover.
	handoffActive    bool
	handoffTo        int
	handoffFrom      int
	rebalanceCurrent bool
}

// NewRouter builds the front over an initial map and its group routers.
// Every group in the map must have a router.
func NewRouter(m *Map, groups map[int]*cluster.Router, opts RouterOptions) (*Router, error) {
	opts.setDefaults()
	if m == nil {
		return nil, fmt.Errorf("%w: nil map", ErrBadMap)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	r := &Router{
		opts:    opts,
		smap:    m,
		groups:  make(map[int]*cluster.Router, len(groups)),
		breaker: make(map[int]*breaker),
		stats:   make(map[int]*GroupStats),
		rng:     rand.New(rand.NewSource(opts.Seed)),
	}
	for id, rt := range groups {
		r.groups[id] = rt
	}
	for g := 0; g < m.Groups; g++ {
		if r.groups[g] == nil {
			return nil, fmt.Errorf("shard: map names group %d but no router was given", g)
		}
	}
	return r, nil
}

// Map returns the placement currently routed by.
func (r *Router) Map() *Map {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.smap
}

// SetMap adopts a newer placement; an older or equal epoch is ignored (maps
// may arrive out of order during a rebalance).
func (r *Router) SetMap(m *Map) error {
	if m == nil {
		return fmt.Errorf("%w: nil map", ErrBadMap)
	}
	if err := m.validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.Epoch <= r.smap.Epoch {
		return nil
	}
	r.smap = m
	return nil
}

// SetGroup installs (or replaces) a group's failover router — a split adds
// the new group's router before swapping the map in, so no lookup ever
// resolves to a group without one.
func (r *Router) SetGroup(id int, rt *cluster.Router) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.groups[id] = rt
}

// BeginHandoff opens the dual-read window: keys mapped to group to may fall
// back to group from. It also marks a rebalance in flight for metrics.
func (r *Router) BeginHandoff(to, from int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.handoffActive, r.handoffTo, r.handoffFrom = true, to, from
	r.rebalanceCurrent = true
}

// EndHandoff closes the dual-read window.
func (r *Router) EndHandoff() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.handoffActive = false
	r.rebalanceCurrent = false
}

// RebalanceInflight reports whether a split's handoff window is open.
func (r *Router) RebalanceInflight() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rebalanceCurrent
}

// Stats returns a copy of the per-shard serving record.
func (r *Router) Stats() map[int]GroupStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[int]GroupStats, len(r.stats))
	for id, s := range r.stats {
		out[id] = *s
	}
	return out
}

// plan captures the routing decision for one key under the mutex: candidate
// groups in try order with their routers.
type plan struct {
	ids  []int
	rts  []*cluster.Router
	skip []bool // breaker said no (and no probe slot): skip without an attempt
}

func (r *Router) planFor(src int, now time.Time) plan {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.smap.GroupFor(src)
	ids := []int{g}
	if r.handoffActive && g == r.handoffTo {
		ids = append(ids, r.handoffFrom)
	}
	p := plan{ids: ids}
	for _, id := range ids {
		p.rts = append(p.rts, r.groups[id])
		p.skip = append(p.skip, !r.admitLocked(id, now))
	}
	return p
}

// admitLocked consults group id's breaker: closed admits, open rejects, and
// at cooldown expiry exactly one caller wins the half-open probe.
func (r *Router) admitLocked(id int, now time.Time) bool {
	b := r.breaker[id]
	if b == nil {
		b = &breaker{}
		r.breaker[id] = b
	}
	if b.fails < r.opts.BreakerThreshold {
		return true
	}
	if !now.Before(b.openUntil) && !b.probing {
		b.probing = true
		return true
	}
	return false
}

func (r *Router) noteShardOK(id int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if b := r.breaker[id]; b != nil {
		b.fails, b.probing = 0, false
	}
	r.statLocked(id).Served++
}

func (r *Router) noteShardFail(id int, now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.breaker[id]
	if b == nil {
		b = &breaker{}
		r.breaker[id] = b
	}
	b.fails++
	b.probing = false
	if b.fails >= r.opts.BreakerThreshold {
		b.openUntil = now.Add(r.opts.BreakerCooldown)
	}
}

func (r *Router) noteKeyFailed(id int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.statLocked(id).Failed++
}

func (r *Router) statLocked(id int) *GroupStats {
	s := r.stats[id]
	if s == nil {
		s = &GroupStats{}
		r.stats[id] = s
	}
	return s
}

// retryDelay is the jittered exponential backoff before retry attempt (1-based).
func (r *Router) retryDelay(attempt int) time.Duration {
	d := r.opts.RetryBase
	for i := 1; i < attempt; i++ {
		d *= 2
	}
	r.mu.Lock()
	unit := r.rng.Float64()
	r.mu.Unlock()
	return time.Duration(float64(d) * (0.75 + 0.5*unit))
}

// Lookup answers one next-hop query. The error return is nil unless the
// router is misconfigured; per-key degradation (ErrShardUnavailable) and
// service answers ride in Result.Err, so batch callers get uniform per-key
// semantics.
func (r *Router) Lookup(src, dst int) (serve.Result, error) {
	now := r.opts.Clock()
	p := r.planFor(src, now)
	for ci, id := range p.ids {
		rt := p.rts[ci]
		if rt == nil || p.skip[ci] {
			continue
		}
		for attempt := 0; ; attempt++ {
			res, err := rt.Lookup(src, dst)
			switch {
			case err == nil && res.Err == nil:
				r.noteShardOK(id)
				return res, nil
			case err == nil && errors.Is(res.Err, serve.ErrWrongShard):
				// A correct answer from the wrong group — a stale map or a
				// mid-handoff race, not a failure. Fall through to the next
				// candidate group without charging the breaker.
			case err == nil && !errors.Is(res.Err, serve.ErrOverloaded):
				// A definite service-level answer (unavailable destination,
				// self-lookup): every member of every group agrees, return it.
				r.noteShardOK(id)
				return res, nil
			default:
				// Transport-level exhaustion (ErrNoBackends) or overload:
				// the shard is struggling — retry within budget.
				r.noteShardFail(id, r.opts.Clock())
				if attempt < r.opts.Retries {
					time.Sleep(r.retryDelay(attempt + 1))
					continue
				}
			}
			break
		}
	}
	r.noteKeyFailed(p.ids[0])
	return serve.Result{Err: fmt.Errorf("%w: group %d", ErrShardUnavailable, p.ids[0])}, nil
}

// LookupBatch scatter-gathers a batch: keys are fanned to their shards (one
// goroutine per shard touched), answers land at their key's index, and a
// shard that stays down after retries yields ErrShardUnavailable for exactly
// its keys.
func (r *Router) LookupBatch(pairs [][2]int, out []serve.Result) error {
	if len(pairs) != len(out) {
		return fmt.Errorf("shard: LookupBatch pairs (%d) and out (%d) length mismatch", len(pairs), len(out))
	}
	if len(pairs) == 0 {
		return nil
	}
	m := r.Map()
	byGroup := make(map[int][]int)
	for i, pr := range pairs {
		g := m.GroupFor(pr[0])
		byGroup[g] = append(byGroup[g], i)
	}
	var wg sync.WaitGroup
	for _, idxs := range byGroup {
		wg.Add(1)
		go func(idxs []int) {
			defer wg.Done()
			for _, i := range idxs {
				res, err := r.Lookup(pairs[i][0], pairs[i][1])
				if err != nil {
					res = serve.Result{Err: err}
				}
				out[i] = res
			}
		}(idxs)
	}
	wg.Wait()
	return nil
}
