package shard

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"routetab/internal/cluster"
	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/serve"
	"routetab/internal/shortestpath"
)

func testTopology(t *testing.T, n int, seed int64) *graph.Graph {
	t.Helper()
	g, err := gengraph.SparseConnected(n, 6, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testCluster(t *testing.T, n, groups int, seed int64, opts ClusterOptions) *Cluster {
	t.Helper()
	m, err := NewUniform(n, groups)
	if err != nil {
		t.Fatal(err)
	}
	opts.Server.StretchSampleEvery = -1
	c, err := NewCluster(testTopology(t, n, seed), m, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// gradeAll walks every (src, dst) route with src in the sample hop by hop
// through the front — each intermediate node's lookup is routed to the shard
// owning it — and grades against BFS truth: the announced estimate is
// two-sided (d ≤ est ≤ 3d), every hop is a real edge, and the walk reaches
// dst within the scheme's stretch-3 bound. Returns routes graded.
func gradeAll(t *testing.T, c *Cluster, g *graph.Graph, srcs []int) int {
	t.Helper()
	graded := 0
	for _, src := range srcs {
		bfs, err := shortestpath.BFS(g, src)
		if err != nil {
			t.Fatal(err)
		}
		for dst := 1; dst <= g.N(); dst++ {
			if dst == src {
				continue
			}
			d := bfs.Dist[dst]
			res, err := c.Front().Lookup(src, dst)
			if err != nil {
				t.Fatalf("lookup (%d,%d): %v", src, dst, err)
			}
			if res.Err != nil {
				t.Fatalf("lookup (%d,%d): %v", src, dst, res.Err)
			}
			if res.Dist < d || res.Dist > 3*d {
				t.Fatalf("lookup (%d,%d): estimate %d outside [%d, %d]", src, dst, res.Dist, d, 3*d)
			}
			cur, hops := src, 0
			for cur != dst {
				if cur != src {
					if res, err = c.Front().Lookup(cur, dst); err != nil || res.Err != nil {
						t.Fatalf("walk (%d,%d) at %d: %+v %v", src, dst, cur, res, err)
					}
				}
				if !g.HasEdge(cur, res.Next) {
					t.Fatalf("walk (%d,%d) at %d: next %d is not a neighbour", src, dst, cur, res.Next)
				}
				cur = res.Next
				hops++
				if hops > 3*d {
					t.Fatalf("walk (%d,%d): %d hops exceeds stretch-3 bound %d", src, dst, hops, 3*d)
				}
			}
			graded++
		}
	}
	return graded
}

func sampleSources(n, count int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	srcs := make([]int, count)
	for i := range srcs {
		srcs[i] = 1 + rng.Intn(n)
	}
	return srcs
}

func TestClusterServesAcrossShards(t *testing.T) {
	const n = 96
	c := testCluster(t, n, 2, 7, ClusterOptions{})
	g := testTopology(t, n, 7)
	gradeAll(t, c, g, sampleSources(n, 12, 1))
	// Work actually split: both shards served.
	stats := c.Front().Stats()
	if stats[0].Served == 0 || stats[1].Served == 0 {
		t.Fatalf("lookups not fanned across shards: %+v", stats)
	}
	if ok, err := c.CheckEntropy(); err != nil || !ok {
		t.Fatalf("entropy check: ok=%v err=%v", ok, err)
	}
}

func TestClusterMutateFansToAllGroups(t *testing.T) {
	const n = 72
	c := testCluster(t, n, 2, 3, ClusterOptions{})
	g := testTopology(t, n, 3)

	// Toggle an absent edge through every group, replicate, re-grade.
	var e [2]int
	found := false
	for w := 3; w <= n && !found; w++ {
		if !g.HasEdge(1, w) {
			e = [2]int{1, w}
			found = true
		}
	}
	if !found {
		t.Fatal("no absent edge")
	}
	if err := c.Mutate(func(g *graph.Graph) error { return g.AddEdge(e[0], e[1]) }); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(e[0], e[1]); err != nil {
		t.Fatal(err)
	}
	if err := c.SyncAll(); err != nil {
		t.Fatal(err)
	}
	gradeAll(t, c, g, sampleSources(n, 10, 2))
	if ok, err := c.CheckEntropy(); err != nil || !ok {
		t.Fatalf("entropy check after churn: ok=%v err=%v", ok, err)
	}
}

func TestSplitMovesKeyspaceLive(t *testing.T) {
	const n = 128
	c := testCluster(t, n, 2, 11, ClusterOptions{})
	g := testTopology(t, n, 11)

	newID, err := c.Split(1)
	if err != nil {
		t.Fatal(err)
	}
	if newID != 2 {
		t.Fatalf("new group id %d, want 2", newID)
	}
	if c.Map().Epoch != 2 || c.Map().Groups != 3 {
		t.Fatalf("map after split: %+v", c.Map())
	}
	if c.Front().RebalanceInflight() {
		t.Fatal("handoff window left open after split returned")
	}
	// The moved keys answer from the new group; everything still grades.
	gradeAll(t, c, g, sampleSources(n, 14, 3))
	moved, err := c.Map().OwnedSet(newID)
	if err != nil {
		t.Fatal(err)
	}
	movedSrcs := []int{}
	for u := 1; u <= n && len(movedSrcs) < 4; u++ {
		if moved.Has(u) {
			movedSrcs = append(movedSrcs, u)
		}
	}
	if len(movedSrcs) == 0 {
		t.Fatal("split moved no keys")
	}
	gradeAll(t, c, g, movedSrcs)
	if got := c.Front().Stats()[newID].Served; got == 0 {
		t.Fatal("new shard served nothing")
	}
	// The source group shed the moved keys via one RecOwned record, not a
	// resync: its replica applied the handover by log shipping.
	src := c.Group(1)
	for _, r := range src.Replicas() {
		if _, resyncs, _ := r.Stats(); resyncs != 0 {
			t.Fatalf("source replica resynced %d times during split, want 0", resyncs)
		}
	}
	recs, err := src.Primary.Log().Since(0)
	if err != nil {
		t.Fatal(err)
	}
	sawOwned := false
	for _, rec := range recs {
		if rec.Kind == cluster.RecOwned {
			sawOwned = true
		}
	}
	if !sawOwned {
		t.Fatal("source WAL has no RecOwned handover record")
	}
	if ok, err := c.CheckEntropy(); err != nil || !ok {
		t.Fatalf("entropy check after split: ok=%v err=%v", ok, err)
	}

	// Churn after the split reaches all three groups.
	var e [2]int
	for w := 3; w <= n; w++ {
		if !g.HasEdge(2, w) {
			e = [2]int{2, w}
			break
		}
	}
	if err := c.Mutate(func(g *graph.Graph) error { return g.AddEdge(e[0], e[1]) }); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(e[0], e[1]); err != nil {
		t.Fatal(err)
	}
	if err := c.SyncAll(); err != nil {
		t.Fatal(err)
	}
	gradeAll(t, c, g, movedSrcs)
}

func TestSplitRacingChurn(t *testing.T) {
	const n = 128
	c := testCluster(t, n, 2, 5, ClusterOptions{})
	g := testTopology(t, n, 5)

	// Churn continuously while the split runs; mutations and the split
	// serialise on the churn lock but the transfer window overlaps them.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var churns atomic.Int64
	toggles := [][2]int{}
	for w := 3; w <= n && len(toggles) < 4; w++ {
		if !g.HasEdge(1, w) {
			toggles = append(toggles, [2]int{1, w})
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			e := toggles[i%len(toggles)]
			_ = c.Mutate(func(g *graph.Graph) error {
				if g.HasEdge(e[0], e[1]) {
					return g.RemoveEdge(e[0], e[1])
				}
				return g.AddEdge(e[0], e[1])
			})
			churns.Add(1)
			i++
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Let churn get going before the split so the transfer window genuinely
	// overlaps mutations, and keep churning until the split returns.
	for churns.Load() < 3 {
		time.Sleep(100 * time.Microsecond)
	}
	before := churns.Load()
	newID, err := c.Split(0)
	for churns.Load() < before+2 {
		time.Sleep(100 * time.Microsecond)
	}
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	// Re-derive ground truth from any group's current topology; all groups
	// must agree on it.
	cur := c.Group(0).Primary.Engine().Current().Graph
	for _, id := range c.GroupIDs() {
		if !graphsEqual(cur, c.Group(id).Primary.Engine().Current().Graph) {
			t.Fatalf("group %d topology diverged after split under churn", id)
		}
	}
	if err := c.SyncAll(); err != nil {
		t.Fatal(err)
	}
	gradeAll(t, c, cur, sampleSources(n, 10, 9))
	if got := c.Front().Stats()[newID]; got.Served == 0 {
		// Grade at least one moved source explicitly.
		moved, _ := c.Map().OwnedSet(newID)
		for u := 1; u <= n; u++ {
			if moved.Has(u) {
				gradeAll(t, c, cur, []int{u})
				break
			}
		}
	}
	if ok, err := c.CheckEntropy(); err != nil || !ok {
		t.Fatalf("entropy check: ok=%v err=%v", ok, err)
	}
}

func TestPromotionWithinShard(t *testing.T) {
	const n = 96
	c := testCluster(t, n, 2, 13, ClusterOptions{Replicas: 2})
	g := testTopology(t, n, 13)

	if err := c.Promote(1, 0); err != nil {
		t.Fatal(err)
	}
	if got := c.Group(1).Primary.Epoch(); got != 2 {
		t.Fatalf("promoted epoch = %d, want 2", got)
	}
	if got := len(c.Group(1).Replicas()); got != 1 {
		t.Fatalf("group has %d replicas after promotion, want 1", got)
	}
	// The shard keeps serving and churn keeps replicating through the new
	// primary.
	gradeAll(t, c, g, sampleSources(n, 10, 4))
	var e [2]int
	for w := 3; w <= n; w++ {
		if !g.HasEdge(1, w) {
			e = [2]int{1, w}
			break
		}
	}
	if err := c.Mutate(func(g *graph.Graph) error { return g.AddEdge(e[0], e[1]) }); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(e[0], e[1]); err != nil {
		t.Fatal(err)
	}
	if err := c.SyncAll(); err != nil {
		t.Fatal(err)
	}
	gradeAll(t, c, g, sampleSources(n, 8, 5))
	if ok, err := c.CheckEntropy(); err != nil || !ok {
		t.Fatalf("entropy check after promotion: ok=%v err=%v", ok, err)
	}
}

// flakyBackend wraps a backend with a kill switch.
type flakyBackend struct {
	cluster.Backend
	down *atomic.Bool
}

var errShardDown = errors.New("shard_test: member unreachable")

func (b *flakyBackend) Lookup(src, dst int) (serve.Result, error) {
	if b.down.Load() {
		return serve.Result{}, errShardDown
	}
	return b.Backend.Lookup(src, dst)
}

func TestShardUnavailableIsPerKey(t *testing.T) {
	const n = 96
	downG0 := &atomic.Bool{}
	c := testCluster(t, n, 2, 17, ClusterOptions{
		Front:       RouterOptions{Retries: 1, RetryBase: 50 * time.Microsecond, BreakerCooldown: time.Hour},
		GroupRouter: cluster.RouterOptions{HedgeAfter: -1, ProbeAfter: time.Hour},
		WrapBackend: func(group int, name string, b cluster.Backend) cluster.Backend {
			if group == 0 {
				return &flakyBackend{Backend: b, down: downG0}
			}
			return b
		},
	})
	m := c.Map()
	var g0src, g1src int
	for u := 1; u <= n; u++ {
		if m.GroupFor(u) == 0 && g0src == 0 {
			g0src = u
		}
		if m.GroupFor(u) == 1 && g1src == 0 {
			g1src = u
		}
	}

	downG0.Store(true)
	pairs := [][2]int{{g0src, g1src}, {g1src, g0src}}
	out := make([]serve.Result, len(pairs))
	if err := c.Front().LookupBatch(pairs, out); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(out[0].Err, ErrShardUnavailable) {
		t.Fatalf("dead shard's key: %+v, want ErrShardUnavailable", out[0])
	}
	if out[1].Err != nil {
		t.Fatalf("live shard's key degraded with the dead one: %+v", out[1])
	}
	stats := c.Front().Stats()
	if stats[0].Failed == 0 || stats[0].Availability() >= 1 {
		t.Fatalf("dead shard's stats do not show the failure: %+v", stats[0])
	}
	if stats[1].Failed != 0 {
		t.Fatalf("live shard charged with failures: %+v", stats[1])
	}

	// Hammer the dead shard past the breaker threshold: the breaker opens
	// (fast-fail) and, with the hour-long cooldown, stays open.
	for i := 0; i < 10; i++ {
		res, err := c.Front().Lookup(g0src, g1src)
		if err != nil || !errors.Is(res.Err, ErrShardUnavailable) {
			t.Fatalf("lookup %d against dead shard: %+v %v", i, res, err)
		}
	}
	start := time.Now()
	if res, _ := c.Front().Lookup(g0src, g1src); !errors.Is(res.Err, ErrShardUnavailable) {
		t.Fatal("breaker-open lookup did not degrade")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Millisecond {
		t.Fatalf("breaker open but lookup still burned retries: %v", elapsed)
	}

	// Recovery: close the switch; after the (huge) cooldown we can't probe,
	// so reopen via a fresh router option instead — covered by the half-open
	// test below.
	downG0.Store(false)
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	const n = 64
	now := time.Unix(5000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }
	down := &atomic.Bool{}
	c := testCluster(t, n, 1, 19, ClusterOptions{
		Front: RouterOptions{
			Retries: 0, BreakerThreshold: 3, BreakerCooldown: 10 * time.Millisecond, Clock: clock,
		},
		GroupRouter: cluster.RouterOptions{HedgeAfter: -1, ProbeAfter: time.Nanosecond},
		WrapBackend: func(group int, name string, b cluster.Backend) cluster.Backend {
			return &flakyBackend{Backend: b, down: down}
		},
	})
	down.Store(true)
	for i := 0; i < 3; i++ {
		if res, _ := c.Front().Lookup(1, 2); !errors.Is(res.Err, ErrShardUnavailable) {
			t.Fatalf("lookup %d: %+v", i, res)
		}
	}
	// Breaker open: no attempt reaches the backend.
	if res, _ := c.Front().Lookup(1, 2); !errors.Is(res.Err, ErrShardUnavailable) {
		t.Fatal("open breaker did not degrade")
	}
	down.Store(false)
	// Still inside the cooldown: degraded without probing.
	if res, _ := c.Front().Lookup(1, 2); !errors.Is(res.Err, ErrShardUnavailable) {
		t.Fatal("lookup inside cooldown should degrade")
	}
	// Past the cooldown the single half-open probe goes through, succeeds,
	// and closes the breaker.
	advance(20 * time.Millisecond)
	if res, err := c.Front().Lookup(1, 2); err != nil || res.Err != nil {
		t.Fatalf("half-open probe failed: %+v %v", res, err)
	}
	if res, err := c.Front().Lookup(1, 2); err != nil || res.Err != nil {
		t.Fatalf("recovered shard still degraded: %+v %v", res, err)
	}
}

func TestFrontRejectsStaleMap(t *testing.T) {
	const n = 64
	c := testCluster(t, n, 2, 23, ClusterOptions{})
	front := c.Front()
	cur := front.Map()
	older := &Map{Epoch: cur.Epoch, N: cur.N, Groups: cur.Groups, Ranges: cur.Ranges}
	if err := front.SetMap(older); err != nil {
		t.Fatal(err)
	}
	if got := front.Map(); got != cur {
		t.Fatal("equal-epoch map adopted")
	}
	if err := front.SetMap(&Map{}); err == nil {
		t.Fatal("invalid map adopted")
	}
}
