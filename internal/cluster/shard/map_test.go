package shard

import (
	"errors"
	"testing"
)

func TestNewUniformPartitions(t *testing.T) {
	for _, groups := range []int{1, 2, 3, 7} {
		m, err := NewUniform(300, groups)
		if err != nil {
			t.Fatal(err)
		}
		if m.Epoch != 1 || m.Groups != groups || len(m.Ranges) != groups {
			t.Fatalf("groups=%d: %+v", groups, m)
		}
		// Every node lands in exactly one group, every group is non-empty
		// (300 nodes over ≤7 groups makes an empty one vanishingly unlikely
		// and deterministic for these seeds), and the per-group sets tile
		// the keyspace.
		total := 0
		for g := 0; g < groups; g++ {
			set, err := m.OwnedSet(g)
			if err != nil {
				t.Fatal(err)
			}
			if set.Count() == 0 {
				t.Fatalf("groups=%d: group %d owns no keys", groups, g)
			}
			total += set.Count()
			for u := 1; u <= m.N; u++ {
				if set.Has(u) != (m.GroupFor(u) == g) {
					t.Fatalf("groups=%d: node %d set/GroupFor disagree", groups, u)
				}
			}
		}
		if total != m.N {
			t.Fatalf("groups=%d: sets cover %d of %d nodes", groups, total, m.N)
		}
	}
}

func TestSplitMovesOnlyTheCarvedRange(t *testing.T) {
	m, err := NewUniform(500, 2)
	if err != nil {
		t.Fatal(err)
	}
	next, ng, err := m.Split(1)
	if err != nil {
		t.Fatal(err)
	}
	if ng != 2 || next.Epoch != m.Epoch+1 || next.Groups != 3 || len(next.Ranges) != 3 {
		t.Fatalf("split: group %d, %+v", ng, next)
	}
	// The receiver is untouched (immutability).
	if m.Groups != 2 || len(m.Ranges) != 2 || m.Epoch != 1 {
		t.Fatalf("split mutated the original: %+v", m)
	}
	// Group 0's ownership is byte-identical; every moved key came from the
	// split group.
	old0, _ := m.OwnedSet(0)
	new0, _ := next.OwnedSet(0)
	if !old0.Equal(new0) {
		t.Fatal("split of group 1 changed group 0's keys")
	}
	moved, _ := next.OwnedSet(ng)
	was1, _ := m.OwnedSet(1)
	for u := 1; u <= m.N; u++ {
		if moved.Has(u) && !was1.Has(u) {
			t.Fatalf("node %d moved to the new group but was owned by group %d", u, m.GroupFor(u))
		}
	}
	if moved.Count() == 0 {
		t.Fatal("split moved zero keys at n=500")
	}
}

func TestSplitRepeatedlyStaysValid(t *testing.T) {
	m, err := NewUniform(400, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		g := i % m.Groups
		next, _, err := m.Split(g)
		if err != nil {
			t.Fatalf("split %d of group %d: %v", i, g, err)
		}
		m = next
	}
	if m.Groups != 7 || m.Epoch != 7 {
		t.Fatalf("after 6 splits: %+v", m)
	}
	total := 0
	for g := 0; g < m.Groups; g++ {
		set, err := m.OwnedSet(g)
		if err != nil {
			t.Fatal(err)
		}
		total += set.Count()
	}
	if total != m.N {
		t.Fatalf("sets cover %d of %d nodes", total, m.N)
	}
}

func TestMapCodecRoundTrip(t *testing.T) {
	m, err := NewUniform(4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err = m.Split(0)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := m.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", m, got)
	}
	// Encoding is a pure function of the map.
	enc2, err := got.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	if string(enc) != string(enc2) {
		t.Fatal("re-encode is not a fixed point")
	}
}

// TestMapCodecRejectsCorruption: every truncation and every single-bit flip
// of a valid encoding must be rejected — the map is adopted whole or not at
// all.
func TestMapCodecRejectsCorruption(t *testing.T) {
	m, err := NewUniform(512, 3)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := m.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(enc); cut++ {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	for i := range enc {
		for _, bit := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), enc...)
			mut[i] ^= bit
			if _, err := Decode(mut); err == nil {
				t.Fatalf("bit flip %#02x at byte %d accepted", bit, i)
			}
		}
	}
	if _, err := Decode(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestMapValidateRejectsBadShapes(t *testing.T) {
	base := func() *Map {
		m, err := NewUniform(64, 2)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	cases := []struct {
		name  string
		wreck func(*Map)
	}{
		{"epoch zero", func(m *Map) { m.Epoch = 0 }},
		{"n zero", func(m *Map) { m.N = 0 }},
		{"n huge", func(m *Map) { m.N = maxNodes + 1 }},
		{"no groups", func(m *Map) { m.Groups = 0 }},
		{"first start nonzero", func(m *Map) { m.Ranges[0].Start = 1 }},
		{"non-increasing", func(m *Map) { m.Ranges[1].Start = 0 }},
		{"group out of range", func(m *Map) { m.Ranges[1].Group = 9 }},
		{"orphan group", func(m *Map) { m.Ranges[1].Group = 0 }},
	}
	for _, tc := range cases {
		m := base()
		tc.wreck(m)
		if err := m.validate(); !errors.Is(err, ErrBadMap) {
			t.Fatalf("%s: validate = %v, want ErrBadMap", tc.name, err)
		}
		if _, err := m.EncodeBytes(); err == nil {
			t.Fatalf("%s: encode accepted an invalid map", tc.name)
		}
	}
	if _, err := NewUniform(3, 9); !errors.Is(err, ErrBadMap) {
		t.Fatalf("more groups than nodes accepted: %v", err)
	}
	m := base()
	if _, _, err := m.Split(5); !errors.Is(err, ErrBadMap) {
		t.Fatalf("split of unknown group: %v", err)
	}
}
