// The control plane of an in-process partitioned cluster: a shard.Cluster
// owns one replicated Group per shard (each an ordinary cluster.Primary plus
// replicas, restricted to the group's keyspace) and the scatter-gather
// Router in front of them. Topology churn fans to every group — the groups
// serve one shared topology, differing only in which sources they own — and
// a live Split carves a new group out of an existing one while lookups and
// churn continue: snapshot transfer, WAL catch-up, a dual-read handoff
// window, and an atomic map swap under the churn lock. The source group
// sheds the moved keys through one RecOwned WAL record, so its replicas
// follow the handover by log shipping, never by resync.
package shard

import (
	"bytes"
	"errors"
	"fmt"
	"sync"

	"routetab/internal/cluster"
	"routetab/internal/graph"
	"routetab/internal/serve"
)

// ClusterOptions configures NewCluster.
type ClusterOptions struct {
	// Scheme is the compact scheme groups build (default "landmark").
	Scheme string
	// Tier is serve.TierTables (default) or serve.TierFull.
	Tier string
	// Replicas is the replica count per group (default 1).
	Replicas int
	// Server configures every member's lookup server.
	Server serve.ServerOptions
	// Replica configures every replica (its Server field is overridden).
	Replica cluster.ReplicaOptions
	// GroupRouter configures each group's internal failover router.
	GroupRouter cluster.RouterOptions
	// Front configures the scatter-gather router.
	Front RouterOptions
	// WrapSource, if set, wraps the replication feed each replica consumes
	// (chaos gates, wire corruption). name identifies the member.
	WrapSource func(group int, name string, s cluster.Source) cluster.Source
	// WrapBackend, if set, wraps each member's lookup backend (chaos gates).
	WrapBackend func(group int, name string, b cluster.Backend) cluster.Backend
	// StartReplicas runs each replica's background sync loop. Leave false
	// for deterministic tests that drive Sync explicitly.
	StartReplicas bool
}

func (o *ClusterOptions) setDefaults() {
	if o.Scheme == "" {
		o.Scheme = "landmark"
	}
	if o.Tier == "" {
		o.Tier = serve.TierTables
	}
	if o.Replicas <= 0 {
		o.Replicas = 1
	}
}

// retargetableSource lets a replica's feed follow a promotion: the cluster
// repoints survivors at the new primary without rejoining them.
type retargetableSource struct {
	mu     sync.Mutex
	target cluster.Source
}

func (s *retargetableSource) get() cluster.Source {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.target
}

func (s *retargetableSource) set(t cluster.Source) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.target = t
}

func (s *retargetableSource) FetchState() (*cluster.State, error) { return s.get().FetchState() }
func (s *retargetableSource) FetchWAL(after uint64) (*cluster.WALBatch, error) {
	return s.get().FetchWAL(after)
}
func (s *retargetableSource) FetchDigest() (cluster.Digest, error) { return s.get().FetchDigest() }

// localBackend answers lookups straight off a member's in-process server.
type localBackend struct {
	name string
	srv  *serve.Server
}

func (b *localBackend) Name() string { return b.name }
func (b *localBackend) Lookup(src, dst int) (serve.Result, error) {
	return b.srv.NextHop(src, dst), nil
}

// member is one serving seat in a group.
type member struct {
	name    string
	srv     *serve.Server
	backend cluster.Backend
	replica *cluster.Replica    // nil for the primary seat
	source  *retargetableSource // nil for the primary seat
}

// Group is one replicated shard: a primary, its replicas, and the failover
// router the front fans into.
type Group struct {
	ID      int
	Primary *cluster.Primary
	Router  *cluster.Router
	members []*member
}

// Replicas returns the group's live replicas.
func (g *Group) Replicas() []*cluster.Replica {
	var out []*cluster.Replica
	for _, m := range g.members {
		if m.replica != nil {
			out = append(out, m.replica)
		}
	}
	return out
}

func (g *Group) backends() []cluster.Backend {
	out := make([]cluster.Backend, len(g.members))
	for i, m := range g.members {
		out[i] = m.backend
	}
	return out
}

// Cluster is the in-process control plane of a partitioned cluster.
type Cluster struct {
	opts ClusterOptions

	// mu is the churn lock: mutations, splits, and promotions serialise
	// here so a split's cutover sees a quiescent WAL frontier.
	mu        sync.Mutex
	smap      *Map
	groups    map[int]*Group
	front     *Router
	splitting bool
	closed    bool
}

// NewCluster builds a partitioned cluster over topology g under placement m:
// every group gets its own copy of the topology, restricted to the keyspace
// the map assigns it, plus opts.Replicas replicas joined by state transfer.
func NewCluster(g *graph.Graph, m *Map, opts ClusterOptions) (*Cluster, error) {
	opts.setDefaults()
	if m == nil {
		return nil, fmt.Errorf("%w: nil map", ErrBadMap)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	if m.N != g.N() {
		return nil, fmt.Errorf("%w: map over %d nodes, graph has %d", ErrBadMap, m.N, g.N())
	}
	c := &Cluster{opts: opts, smap: m, groups: make(map[int]*Group, m.Groups)}
	groupRouters := make(map[int]*cluster.Router, m.Groups)
	for id := 0; id < m.Groups; id++ {
		owned, err := m.OwnedSet(id)
		if err != nil {
			c.Close()
			return nil, err
		}
		eng, err := serve.NewShardEngine(g.Clone(), opts.Scheme, opts.Tier, owned)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("shard: group %d: %w", id, err)
		}
		grp, err := c.newGroup(id, eng)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.groups[id] = grp
		groupRouters[id] = grp.Router
	}
	front, err := NewRouter(m, groupRouters, opts.Front)
	if err != nil {
		c.Close()
		return nil, err
	}
	c.front = front
	return c, nil
}

// newGroup assembles one group over an already-restricted engine: server,
// primary, replicas, failover router.
func (c *Cluster) newGroup(id int, eng *serve.Engine) (*Group, error) {
	srv := serve.NewServer(eng, c.opts.Server)
	p, err := cluster.NewPrimary(eng, srv, nil, 1)
	if err != nil {
		srv.Close()
		return nil, fmt.Errorf("shard: group %d primary: %w", id, err)
	}
	grp := &Group{ID: id, Primary: p}
	pname := fmt.Sprintf("g%d-m0", id)
	grp.members = append(grp.members, &member{name: pname, srv: srv, backend: c.wrapBackend(id, pname, srv)})
	for i := 0; i < c.opts.Replicas; i++ {
		name := fmt.Sprintf("g%d-m%d", id, i+1)
		src := &retargetableSource{target: p}
		var feed cluster.Source = src
		if c.opts.WrapSource != nil {
			feed = c.opts.WrapSource(id, name, feed)
		}
		ropts := c.opts.Replica
		ropts.Server = c.opts.Server
		r, err := cluster.JoinReplica(feed, ropts)
		if err != nil {
			grp.close()
			return nil, fmt.Errorf("shard: group %d replica %d: %w", id, i, err)
		}
		if c.opts.StartReplicas {
			r.Start()
		}
		grp.members = append(grp.members, &member{
			name: name, srv: r.Server(), backend: c.wrapBackend(id, name, r.Server()),
			replica: r, source: src,
		})
	}
	grp.Router = cluster.NewRouter(grp.backends(), c.opts.GroupRouter)
	return grp, nil
}

func (c *Cluster) wrapBackend(id int, name string, srv *serve.Server) cluster.Backend {
	var b cluster.Backend = &localBackend{name: name, srv: srv}
	if c.opts.WrapBackend != nil {
		b = c.opts.WrapBackend(id, name, b)
	}
	return b
}

func (g *Group) close() {
	for _, m := range g.members {
		if m.replica != nil {
			m.replica.Close() // closes its server too
		}
	}
	if g.Primary != nil {
		g.Primary.Close()
	}
	for _, m := range g.members {
		if m.replica == nil && m.srv != nil {
			m.srv.Close()
		}
	}
}

// Front returns the scatter-gather router.
func (c *Cluster) Front() *Router { return c.front }

// Map returns the current placement.
func (c *Cluster) Map() *Map {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.smap
}

// Group returns group id (nil if unknown).
func (c *Cluster) Group(id int) *Group {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.groups[id]
}

// GroupIDs returns the live group ids in ascending order.
func (c *Cluster) GroupIDs() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]int, 0, len(c.groups))
	for id := range c.groups {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ { // insertion sort: tiny, no extra import
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

// Mutate applies one topology mutation to every group, in group order under
// the churn lock — the shared topology moves in lockstep; each group's
// publication carries its own WAL record and restricted rebuild.
func (c *Cluster) Mutate(fn func(g *graph.Graph) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return cluster.ErrClosed
	}
	for _, id := range c.groupIDsLocked() {
		if _, err := c.groups[id].Primary.Mutate(fn); err != nil {
			return fmt.Errorf("shard: mutate group %d: %w", id, err)
		}
	}
	return nil
}

func (c *Cluster) groupIDsLocked() []int {
	ids := make([]int, 0, len(c.groups))
	for id := range c.groups {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

// SyncAll drives one Sync on every replica (deterministic-test hook).
func (c *Cluster) SyncAll() error {
	c.mu.Lock()
	var reps []*cluster.Replica
	for _, id := range c.groupIDsLocked() {
		reps = append(reps, c.groups[id].Replicas()...)
	}
	c.mu.Unlock()
	var firstErr error
	for _, r := range reps {
		if err := r.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Promote fails group id over to replica idx: the old primary seat is
// removed from the group's rotation, the replica takes over under a bumped
// epoch, and surviving replicas are repointed at it.
func (c *Cluster) Promote(id, idx int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	g := c.groups[id]
	if g == nil {
		return fmt.Errorf("shard: promote: unknown group %d", id)
	}
	var seat *member
	ri := -1
	for _, m := range g.members {
		if m.replica == nil {
			continue
		}
		ri++
		if ri == idx {
			seat = m
			break
		}
	}
	if seat == nil {
		return fmt.Errorf("shard: promote: group %d has no replica %d", id, idx)
	}
	old := g.Primary
	old.Close()
	p2, err := seat.replica.Promote()
	if err != nil {
		return fmt.Errorf("shard: promote group %d: %w", id, err)
	}
	g.Primary = p2
	// Drop the dead primary's seat, convert the promoted seat, repoint
	// survivors.
	kept := g.members[:0]
	for _, m := range g.members {
		switch {
		case m.replica == nil:
			m.srv.Close()
		case m == seat:
			m.replica, m.source = nil, nil
			kept = append(kept, m)
		default:
			m.source.set(p2)
			kept = append(kept, m)
		}
	}
	g.members = kept
	g.Router.SetBackends(g.backends())
	return nil
}

// maxCatchupRounds bounds the unlocked WAL chase during a split; whatever
// remains is drained under the churn lock.
const maxCatchupRounds = 64

// Split carves a new group out of group srcID while the cluster keeps
// serving: snapshot transfer and WAL catch-up run outside the churn lock,
// then the cutover — final drain, caught-up proof, router wiring, map swap,
// and the source's RecOwned handover — happens atomically under it. The new
// group's id is returned.
func (c *Cluster) Split(srcID int) (int, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, cluster.ErrClosed
	}
	if c.splitting {
		c.mu.Unlock()
		return 0, errors.New("shard: split already in flight")
	}
	src := c.groups[srcID]
	if src == nil {
		c.mu.Unlock()
		return 0, fmt.Errorf("shard: split: unknown group %d", srcID)
	}
	newMap, newID, err := c.smap.Split(srcID)
	if err != nil {
		c.mu.Unlock()
		return 0, err
	}
	moving, err := newMap.OwnedSet(newID)
	if err != nil {
		c.mu.Unlock()
		return 0, err
	}
	remaining, err := newMap.OwnedSet(srcID)
	if err != nil {
		c.mu.Unlock()
		return 0, err
	}
	if moving.Count() == 0 || remaining.Count() == 0 {
		c.mu.Unlock()
		return 0, fmt.Errorf("shard: split of group %d would leave an empty shard (%d moving, %d remaining)",
			srcID, moving.Count(), remaining.Count())
	}
	c.splitting = true
	srcPrimary := src.Primary
	c.mu.Unlock()

	fail := func(err error) (int, error) {
		c.mu.Lock()
		c.splitting = false
		c.mu.Unlock()
		return 0, err
	}

	// Phase 1, unlocked: snapshot transfer. The new group's engine is built
	// from the source's current state, restricted to the moving keys.
	state, err := srcPrimary.FetchState()
	if err != nil {
		return fail(fmt.Errorf("shard: split: state transfer: %w", err))
	}
	eng, err := serve.NewShardEngine(state.Snap.Graph.Clone(), c.opts.Scheme, c.opts.Tier, moving)
	if err != nil {
		return fail(fmt.Errorf("shard: split: build moving engine: %w", err))
	}

	// Phase 2, unlocked: WAL catch-up. Publications after the transferred
	// snapshot replay as graph diffs; churn keeps landing while we chase.
	walSeq, snapSeq := state.WalSeq, state.Snap.Seq
	for round := 0; round < maxCatchupRounds; round++ {
		n, err := c.catchUp(eng, srcPrimary, &walSeq, &snapSeq)
		if err != nil {
			return fail(err)
		}
		if n == 0 {
			break
		}
	}

	// Phase 3, locked: cutover. No churn can land now, so one final drain
	// reaches the frontier; the caught-up proof is byte equality of the
	// topologies, not faith in the replay.
	c.mu.Lock()
	defer func() {
		c.splitting = false
		c.mu.Unlock()
	}()
	if c.closed {
		return 0, cluster.ErrClosed
	}
	if _, err := c.catchUp(eng, srcPrimary, &walSeq, &snapSeq); err != nil {
		return 0, err
	}
	if !graphsEqual(eng.Current().Graph, srcPrimary.Engine().Current().Graph) {
		return 0, errors.New("shard: split: transferred topology diverged from source at cutover")
	}
	grp, err := c.newGroup(newID, eng)
	if err != nil {
		return 0, err
	}
	// Wire order matters: the new group's router exists before any lookup
	// can be mapped to it, the dual-read window opens before the map swap,
	// and only then does the source shed the moved keys (one RecOwned record
	// its replicas replay by log shipping).
	c.front.SetGroup(newID, grp.Router)
	c.front.BeginHandoff(newID, srcID)
	if err := c.front.SetMap(newMap); err != nil {
		grp.close()
		return 0, err
	}
	if _, err := srcPrimary.Engine().SetOwned(remaining); err != nil {
		grp.close()
		return 0, fmt.Errorf("shard: split: source handover: %w", err)
	}
	c.groups[newID] = grp
	c.smap = newMap
	// Settle: give source replicas one shot at replaying the handover now;
	// stragglers (a partitioned replica mid-chaos) converge later via their
	// own sync loops, and their unrestricted answers for moved keys are
	// computed from the same topology, so dual-read stays correct meanwhile.
	for _, r := range src.Replicas() {
		_ = r.Sync()
	}
	c.front.EndHandoff()
	return newID, nil
}

// catchUp replays the source WAL above *walSeq onto eng, returning how many
// records it consumed. Publications at or below the already-transferred
// snapshot are skipped idempotently.
func (c *Cluster) catchUp(eng *serve.Engine, src *cluster.Primary, walSeq, snapSeq *uint64) (int, error) {
	batch, err := src.FetchWAL(*walSeq)
	if err != nil {
		return 0, fmt.Errorf("shard: split: WAL catch-up: %w", err)
	}
	n := 0
	for i := range batch.Records {
		rec := batch.Records[i]
		*walSeq = rec.Seq
		n++
		if !rec.Kind.IsPublish() || rec.SnapSeq <= *snapSeq {
			continue
		}
		if _, err := eng.Mutate(func(g *graph.Graph) error {
			for _, e := range rec.Removes {
				if err := g.RemoveEdge(e[0], e[1]); err != nil {
					return err
				}
			}
			for _, e := range rec.Adds {
				if err := g.AddEdge(e[0], e[1]); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return n, fmt.Errorf("shard: split: replay record %d: %w", rec.Seq, err)
		}
		*snapSeq = rec.SnapSeq
	}
	return n, nil
}

// graphsEqual compares topologies by their deterministic edge lists.
func graphsEqual(a, b *graph.Graph) bool {
	if a.N() != b.N() {
		return false
	}
	ae, be := a.Edges(), b.Edges()
	if len(ae) != len(be) {
		return false
	}
	for i := range ae {
		if ae[i] != be[i] {
			return false
		}
	}
	return true
}

// StateBytes returns the encoded size of group id's full replication state —
// what one joining or resyncing replica of that shard actually receives.
func (c *Cluster) StateBytes(id int) (int, error) {
	c.mu.Lock()
	g := c.groups[id]
	c.mu.Unlock()
	if g == nil {
		return 0, fmt.Errorf("shard: unknown group %d", id)
	}
	st, err := g.Primary.FetchState()
	if err != nil {
		return 0, err
	}
	var buf bytes.Buffer
	if err := cluster.EncodeState(&buf, st); err != nil {
		return 0, err
	}
	return buf.Len(), nil
}

// CheckEntropy verifies per-group convergence: within each group, the
// primary and every replica must agree on the digest fingerprint.
func (c *Cluster) CheckEntropy() (bool, error) {
	c.mu.Lock()
	type pair struct {
		p    *cluster.Primary
		reps []*cluster.Replica
	}
	var pairs []pair
	for _, id := range c.groupIDsLocked() {
		g := c.groups[id]
		pairs = append(pairs, pair{p: g.Primary, reps: g.Replicas()})
	}
	c.mu.Unlock()
	for _, pr := range pairs {
		ok, _, err := cluster.CheckEntropy(pr.p, pr.reps...)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// Close tears the whole cluster down.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	groups := make([]*Group, 0, len(c.groups))
	for _, g := range c.groups {
		groups = append(groups, g)
	}
	c.mu.Unlock()
	for _, g := range groups {
		g.close()
	}
}
