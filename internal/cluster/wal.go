// Package cluster replicates a serving engine across a set of peers: one
// primary owns topology mutation and churn repair, ships every published
// snapshot as an incremental write-ahead-log record (the edge diff that
// produced it plus a CRC of the resulting distance matrix), and replicas
// replay those records through their own serve.Engine. The repo-wide
// determinism contract (DESIGN.md §8: tables are a pure function of
// (topology, scheme)) is what makes log shipping sufficient — a replica that
// applies the same mutation sequence rebuilds byte-identical tables, and the
// anti-entropy digests in antientropy.go assert exactly that.
//
// The WAL is dense-sequenced and bounded: records carry consecutive Seq
// numbers, a replica that asks for records the log has truncated away gets
// ErrGone and falls back to a full state fetch, and every frame reuses the
// CRC-32C section framing of the RTSNAP1 snapshot format so torn or
// bit-flipped records are rejected by the same code path everywhere.
package cluster

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"routetab/internal/cluster/walstore"
	"routetab/internal/keyspace"
	"routetab/internal/serve"
	"routetab/internal/shortestpath"
)

// Errors.
var (
	// ErrGone reports a WAL fetch whose start point has been truncated away;
	// the fetcher must fall back to a full state fetch.
	ErrGone = errors.New("cluster: requested WAL records truncated")
	// ErrBadRecord reports a record that failed structural or CRC checks.
	ErrBadRecord = errors.New("cluster: bad WAL record")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// DistCRC is the full-tier convergence fingerprint: CRC-32C over the packed
// row-major distance matrix. Two engines serving byte-identical tables agree
// on it; anti-entropy and per-record verification both compare this value.
func DistCRC(d *shortestpath.Distances) uint32 {
	return crc32.Checksum(d.Packed(), crcTable)
}

// TablesCRC is the tables-tier convergence fingerprint: CRC-32C over the
// encoded scheme tables (the LMTB1 blob for the landmark scheme). The
// incompressibility bound is why the compact tier fingerprints the tables
// themselves — there is no matrix to hash, by design.
func TablesCRC(tables []byte) uint32 {
	return crc32.Checksum(tables, crcTable)
}

// SnapshotCRC returns the convergence fingerprint appropriate to snap's tier:
// DistCRC of the packed matrix on the full tier, TablesCRC of the encoded
// scheme tables on the tables tier. Per-record verification, anti-entropy
// digests, and recovery replay all use this single definition.
func SnapshotCRC(snap *serve.Snapshot) uint32 {
	if snap.Dist == nil {
		return TablesCRC(snap.TablesBytes())
	}
	return DistCRC(snap.Dist)
}

// RecordKind enumerates WAL record types.
type RecordKind uint8

// Record kinds. Publish records carry the topology diff of one snapshot
// publication; link and node records carry overlay (failure view) events
// that have not (yet) been folded into a publication. RecPublishTables is
// the tables-tier flavour of RecPublish: the payload layout is identical but
// the CRC field fingerprints the encoded scheme tables instead of the packed
// matrix. The kind byte is the version sniff — full-tier WALs never contain
// kind 4, so they encode and decode byte-identically to before, and a
// pre-tables decoder rejects a tables-tier log outright instead of
// misinterpreting it.
// RecOwned is the keyspace-handover flavour of a publish: emitted when a
// publication changed the engine's owned source set (a shard split or merge),
// it carries the topology diff AND the new owned bitmap, so replicas replay
// the handover through the same log-shipping path as any other publication —
// no resync storm at cutover. OwnedN == 0 means the restriction was lifted.
// As with RecPublishTables, the kind byte is the version sniff: logs without
// rebalances never contain kind 5, and a pre-shard decoder rejects a
// rebalancing log outright instead of misreading it.
const (
	RecPublish RecordKind = iota + 1
	RecLink
	RecNode
	RecPublishTables
	RecOwned
)

// String implements fmt.Stringer.
func (k RecordKind) String() string {
	switch k {
	case RecPublish:
		return "publish"
	case RecLink:
		return "link"
	case RecNode:
		return "node"
	case RecPublishTables:
		return "publish-tables"
	case RecOwned:
		return "owned"
	}
	return fmt.Sprintf("record-kind-%d", int(k))
}

// IsPublish reports whether k is a publish flavour (full tier, tables tier,
// or a keyspace handover).
func (k RecordKind) IsPublish() bool {
	return k == RecPublish || k == RecPublishTables || k == RecOwned
}

// PublishKindFor returns the publish record kind matching snap's tier.
func PublishKindFor(snap *serve.Snapshot) RecordKind {
	if snap.Dist == nil {
		return RecPublishTables
	}
	return RecPublish
}

// Record is one replicated event. Seq is the dense WAL sequence assigned by
// the primary's log. Publish records describe snapshot SnapSeq as the edge
// diff against snapshot SnapSeq−1, with DistCRC fingerprinting the state the
// rebuild must produce: the packed distance matrix for RecPublish, the
// encoded scheme tables for RecPublishTables. Link/node records update the
// failure overlay: U,V (or U alone) and Down.
type Record struct {
	Seq     uint64
	Kind    RecordKind
	SnapSeq uint64   // publish flavours
	DistCRC uint32   // publish flavours: matrix or scheme-table CRC by kind
	Adds    [][2]int // publish flavours: edges added vs previous snapshot
	Removes [][2]int // publish flavours: edges removed vs previous snapshot
	U, V    int      // link (U,V) / node (U)
	Down    bool     // link/node
	// RecOwned only: the owned keyspace after this publication, as the bitmap
	// word form of keyspace.Set over OwnedN nodes. OwnedN == 0 lifts the
	// restriction (Owned empty).
	OwnedN int
	Owned  []uint64
}

// Frame tags for the WAL codec, disjoint from the RTSNAP1 section tags.
var (
	tagRec      = [4]byte{'W', 'R', 'E', 'C'}
	tagBatchHdr = [4]byte{'W', 'H', 'D', 'R'}
	tagStateHdr = [4]byte{'C', 'H', 'D', 'R'}
	tagOverlay  = [4]byte{'O', 'V', 'L', 'Y'}
)

func putUvarintPair(buf *bytes.Buffer, p [2]int) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(p[0]))])
	buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(p[1]))])
}

// marshalRecord serialises one record's payload bytes — the body of a WREC
// frame, and exactly what the durable walstore journals per entry.
func marshalRecord(rec Record) ([]byte, error) {
	var buf bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	buf.WriteByte(byte(rec.Kind))
	buf.Write(tmp[:binary.PutUvarint(tmp[:], rec.Seq)])
	switch rec.Kind {
	case RecPublish, RecPublishTables, RecOwned:
		buf.Write(tmp[:binary.PutUvarint(tmp[:], rec.SnapSeq)])
		binary.Write(&buf, binary.LittleEndian, rec.DistCRC)
		buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(rec.Adds)))])
		for _, e := range rec.Adds {
			putUvarintPair(&buf, e)
		}
		buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(rec.Removes)))])
		for _, e := range rec.Removes {
			putUvarintPair(&buf, e)
		}
		if rec.Kind == RecOwned {
			buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(rec.OwnedN))])
			if rec.OwnedN > 0 {
				if want := (rec.OwnedN + 63) / 64; len(rec.Owned) != want {
					return nil, fmt.Errorf("%w: owned bitmap %d words for n=%d (want %d)",
						ErrBadRecord, len(rec.Owned), rec.OwnedN, want)
				}
				for _, w := range rec.Owned {
					binary.Write(&buf, binary.LittleEndian, w)
				}
			}
		}
	case RecLink:
		buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(rec.U))])
		buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(rec.V))])
		buf.WriteByte(boolByte(rec.Down))
	case RecNode:
		buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(rec.U))])
		buf.WriteByte(boolByte(rec.Down))
	default:
		return nil, fmt.Errorf("%w: kind %d", ErrBadRecord, rec.Kind)
	}
	return buf.Bytes(), nil
}

// encodeRecord serialises one record as a CRC-framed WREC section.
func encodeRecord(w io.Writer, rec Record) error {
	payload, err := marshalRecord(rec)
	if err != nil {
		return err
	}
	return serve.WriteFrame(w, tagRec, payload)
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func readPair(r *bytes.Reader) ([2]int, error) {
	u, err := binary.ReadUvarint(r)
	if err != nil {
		return [2]int{}, err
	}
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return [2]int{}, err
	}
	return [2]int{int(u), int(v)}, nil
}

// decodeRecord reads one framed record, verifying its CRC.
func decodeRecord(r io.Reader) (Record, error) {
	payload, err := serve.ReadFrame(r, tagRec)
	if err != nil {
		return Record{}, fmt.Errorf("%w: %v", ErrBadRecord, err)
	}
	return unmarshalRecord(payload)
}

// unmarshalRecord parses one record payload (the inverse of marshalRecord).
func unmarshalRecord(payload []byte) (Record, error) {
	br := bytes.NewReader(payload)
	kindByte, err := br.ReadByte()
	if err != nil {
		return Record{}, fmt.Errorf("%w: truncated record", ErrBadRecord)
	}
	rec := Record{Kind: RecordKind(kindByte)}
	if rec.Seq, err = binary.ReadUvarint(br); err != nil {
		return Record{}, fmt.Errorf("%w: truncated seq", ErrBadRecord)
	}
	switch rec.Kind {
	case RecPublish, RecPublishTables, RecOwned:
		if rec.SnapSeq, err = binary.ReadUvarint(br); err != nil {
			return Record{}, fmt.Errorf("%w: truncated snap seq", ErrBadRecord)
		}
		if err = binary.Read(br, binary.LittleEndian, &rec.DistCRC); err != nil {
			return Record{}, fmt.Errorf("%w: truncated state crc", ErrBadRecord)
		}
		for _, dst := range []*[][2]int{&rec.Adds, &rec.Removes} {
			count, err := binary.ReadUvarint(br)
			if err != nil {
				return Record{}, fmt.Errorf("%w: truncated edge count", ErrBadRecord)
			}
			if count > uint64(br.Len()) { // each edge needs ≥2 bytes
				return Record{}, fmt.Errorf("%w: edge count %d exceeds payload", ErrBadRecord, count)
			}
			for i := uint64(0); i < count; i++ {
				e, err := readPair(br)
				if err != nil {
					return Record{}, fmt.Errorf("%w: truncated edge", ErrBadRecord)
				}
				*dst = append(*dst, e)
			}
		}
		if rec.Kind == RecOwned {
			ownedN, err := binary.ReadUvarint(br)
			if err != nil {
				return Record{}, fmt.Errorf("%w: truncated owned n", ErrBadRecord)
			}
			if ownedN > 1<<16 {
				return Record{}, fmt.Errorf("%w: owned n = %d", ErrBadRecord, ownedN)
			}
			rec.OwnedN = int(ownedN)
			if rec.OwnedN > 0 {
				words := (rec.OwnedN + 63) / 64
				if br.Len() < 8*words {
					return Record{}, fmt.Errorf("%w: truncated owned bitmap", ErrBadRecord)
				}
				rec.Owned = make([]uint64, words)
				for i := range rec.Owned {
					if err := binary.Read(br, binary.LittleEndian, &rec.Owned[i]); err != nil {
						return Record{}, fmt.Errorf("%w: truncated owned bitmap", ErrBadRecord)
					}
				}
			}
		}
	case RecLink:
		e, err := readPair(br)
		if err != nil {
			return Record{}, fmt.Errorf("%w: truncated link", ErrBadRecord)
		}
		rec.U, rec.V = e[0], e[1]
		down, err := br.ReadByte()
		if err != nil {
			return Record{}, fmt.Errorf("%w: truncated link state", ErrBadRecord)
		}
		rec.Down = down != 0
	case RecNode:
		u, err := binary.ReadUvarint(br)
		if err != nil {
			return Record{}, fmt.Errorf("%w: truncated node", ErrBadRecord)
		}
		rec.U = int(u)
		down, err := br.ReadByte()
		if err != nil {
			return Record{}, fmt.Errorf("%w: truncated node state", ErrBadRecord)
		}
		rec.Down = down != 0
	default:
		return Record{}, fmt.Errorf("%w: unknown kind %d", ErrBadRecord, kindByte)
	}
	if br.Len() != 0 {
		return Record{}, fmt.Errorf("%w: %d trailing bytes", ErrBadRecord, br.Len())
	}
	return rec, nil
}

// OwnedSet decodes a RecOwned record's bitmap into a keyspace set (nil when
// the record lifts the restriction). The word shape is re-validated, so a
// corrupt bitmap fails loudly instead of restricting to garbage.
func (r *Record) OwnedSet() (*keyspace.Set, error) {
	if r.Kind != RecOwned {
		return nil, fmt.Errorf("%w: OwnedSet on %v record", ErrBadRecord, r.Kind)
	}
	if r.OwnedN == 0 {
		return nil, nil
	}
	set, err := keyspace.FromWords(r.OwnedN, r.Owned)
	if err != nil {
		return nil, fmt.Errorf("%w: owned bitmap: %v", ErrBadRecord, err)
	}
	return set, nil
}

// verifyPublish checks that snap — the engine's state after replaying a
// publish record — matches the record's tier flavour and CRC (and, for
// keyspace handovers, the published owned set). A kind/tier mismatch or a CRC
// mismatch is a determinism-contract violation; callers fall back to a full
// resync (replica) or surface corruption (recovery).
func verifyPublish(rec Record, snap *serve.Snapshot) error {
	if rec.Kind == RecOwned {
		want, err := rec.OwnedSet()
		if err != nil {
			return err
		}
		if got := snap.Owned(); !got.Equal(want) {
			return fmt.Errorf("owned set mismatch after replaying snap %d: got %v want %v",
				rec.SnapSeq, got, want)
		}
	} else if want := PublishKindFor(snap); rec.Kind != want {
		return fmt.Errorf("%v record replayed on a %s-tier engine", rec.Kind, snap.Tier)
	}
	if crc := SnapshotCRC(snap); crc != rec.DistCRC {
		return fmt.Errorf("%v crc mismatch after replaying snap %d: got %08x want %08x",
			rec.Kind, rec.SnapSeq, crc, rec.DistCRC)
	}
	return nil
}

// WALBatch is a contiguous run of records fetched from a primary, stamped
// with the primary's epoch so a replica detects promotion (epoch change →
// its log position is meaningless → full resync).
type WALBatch struct {
	Epoch   uint64
	Records []Record
}

// EncodeWALBatch frames a batch: a WHDR header (epoch, first seq, count)
// followed by one WREC frame per record.
func EncodeWALBatch(w io.Writer, b *WALBatch) error {
	var hdr bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	hdr.Write(tmp[:binary.PutUvarint(tmp[:], b.Epoch)])
	first := uint64(0)
	if len(b.Records) > 0 {
		first = b.Records[0].Seq
	}
	hdr.Write(tmp[:binary.PutUvarint(tmp[:], first)])
	hdr.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(b.Records)))])
	if err := serve.WriteFrame(w, tagBatchHdr, hdr.Bytes()); err != nil {
		return err
	}
	for i := range b.Records {
		if err := encodeRecord(w, b.Records[i]); err != nil {
			return err
		}
	}
	return nil
}

// maxBatchRecords bounds a decoded batch; far above any real fetch, it only
// stops a corrupted count from allocating unbounded memory.
const maxBatchRecords = 1 << 22

// DecodeWALBatch reads one framed batch, verifying every record's CRC and
// that sequences are dense starting at the header's first seq.
func DecodeWALBatch(r io.Reader) (*WALBatch, error) {
	hdr, err := serve.ReadFrame(r, tagBatchHdr)
	if err != nil {
		return nil, fmt.Errorf("%w: batch header: %v", ErrBadRecord, err)
	}
	br := bytes.NewReader(hdr)
	var b WALBatch
	if b.Epoch, err = binary.ReadUvarint(br); err != nil {
		return nil, fmt.Errorf("%w: truncated epoch", ErrBadRecord)
	}
	first, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: truncated first seq", ErrBadRecord)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: truncated count", ErrBadRecord)
	}
	if count > maxBatchRecords {
		return nil, fmt.Errorf("%w: batch of %d records", ErrBadRecord, count)
	}
	b.Records = make([]Record, 0, count)
	for i := uint64(0); i < count; i++ {
		rec, err := decodeRecord(r)
		if err != nil {
			return nil, err
		}
		if rec.Seq != first+i {
			return nil, fmt.Errorf("%w: seq %d at batch position %d (first %d)", ErrBadRecord, rec.Seq, i, first)
		}
		b.Records = append(b.Records, rec)
	}
	return &b, nil
}

// State is a full replication bootstrap: the primary's epoch, the WAL
// position the snapshot+overlay are current as of, the failure overlay, and
// the complete snapshot. A replica adopting a State may then stream WAL
// records after WalSeq; records at or below it replay idempotently.
type State struct {
	Epoch     uint64
	WalSeq    uint64
	DownLinks [][2]int
	DownNodes []int
	Snap      *serve.SnapshotData
}

// EncodeState frames a State: CHDR (epoch, wal seq), OVLY (overlay), then
// the snapshot as one contiguous RTARENA1 arena — a bootstrapping replica
// receives the O(n²) payload as a single CRC-guarded buffer and adopts its
// distance matrix in place. DecodeState sniffs the snapshot magic, so states
// shipped by pre-arena primaries (RTSNAP1 bodies) still decode.
func EncodeState(w io.Writer, st *State) error {
	var hdr bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	hdr.Write(tmp[:binary.PutUvarint(tmp[:], st.Epoch)])
	hdr.Write(tmp[:binary.PutUvarint(tmp[:], st.WalSeq)])
	if err := serve.WriteFrame(w, tagStateHdr, hdr.Bytes()); err != nil {
		return err
	}
	var ov bytes.Buffer
	ov.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(st.DownLinks)))])
	for _, e := range st.DownLinks {
		putUvarintPair(&ov, e)
	}
	ov.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(st.DownNodes)))])
	for _, u := range st.DownNodes {
		ov.Write(tmp[:binary.PutUvarint(tmp[:], uint64(u))])
	}
	if err := serve.WriteFrame(w, tagOverlay, ov.Bytes()); err != nil {
		return err
	}
	return serve.WriteArena(w, st.Snap)
}

// DecodeState reads one framed State.
func DecodeState(r io.Reader) (*State, error) {
	hdr, err := serve.ReadFrame(r, tagStateHdr)
	if err != nil {
		return nil, fmt.Errorf("%w: state header: %v", ErrBadRecord, err)
	}
	br := bytes.NewReader(hdr)
	var st State
	if st.Epoch, err = binary.ReadUvarint(br); err != nil {
		return nil, fmt.Errorf("%w: truncated epoch", ErrBadRecord)
	}
	if st.WalSeq, err = binary.ReadUvarint(br); err != nil {
		return nil, fmt.Errorf("%w: truncated wal seq", ErrBadRecord)
	}
	ovRaw, err := serve.ReadFrame(r, tagOverlay)
	if err != nil {
		return nil, fmt.Errorf("%w: overlay: %v", ErrBadRecord, err)
	}
	ov := bytes.NewReader(ovRaw)
	nLinks, err := binary.ReadUvarint(ov)
	if err != nil || nLinks > uint64(ov.Len()) {
		return nil, fmt.Errorf("%w: bad overlay link count", ErrBadRecord)
	}
	for i := uint64(0); i < nLinks; i++ {
		e, err := readPair(ov)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated overlay link", ErrBadRecord)
		}
		st.DownLinks = append(st.DownLinks, e)
	}
	nNodes, err := binary.ReadUvarint(ov)
	if err != nil || nNodes > uint64(ov.Len())+1 {
		return nil, fmt.Errorf("%w: bad overlay node count", ErrBadRecord)
	}
	for i := uint64(0); i < nNodes; i++ {
		u, err := binary.ReadUvarint(ov)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated overlay node", ErrBadRecord)
		}
		st.DownNodes = append(st.DownNodes, int(u))
	}
	if st.Snap, err = serve.DecodeSnapshot(r); err != nil {
		return nil, fmt.Errorf("%w: snapshot: %v", ErrBadRecord, err)
	}
	return &st, nil
}

// Log is the primary's WAL: dense sequences starting at 1 within an epoch,
// bounded by truncation, optionally backed by a durable walstore.Store. It is
// safe for concurrent use.
//
// Durability ordering is the crash-safety invariant: Append journals to the
// store (which fsyncs under PolicyAlways) before the record becomes visible
// to replicas through Since — visible ⊆ durable. If the store fails,
// availability beats durability: the in-memory log keeps serving, journaling
// wedges permanently (so the on-disk WAL stays a dense prefix), and a dirty
// marker forces the next recovery to bump the epoch instead of resuming.
type Log struct {
	mu   sync.Mutex
	recs []Record
	// base is the seq of recs[0]−1: records 1…base have been truncated away.
	base uint64
	last uint64

	store         *walstore.Store
	storeFailures uint64
	storeErr      error
}

// NewLog returns an empty in-memory log; the first appended record gets Seq 1.
func NewLog() *Log { return &Log{} }

// OpenLog binds a recovered durable store to a log, loading every retained
// record into memory: base and frontier come from the disk WAL, so replicas
// that were ahead of the retained window get ErrGone exactly as they would
// have from the dead primary.
func OpenLog(store *walstore.Store) (*Log, error) {
	l := &Log{store: store}
	if store == nil {
		return l, nil
	}
	first, last := store.FirstSeq(), store.LastSeq()
	if first == 0 {
		// Nothing retained (virgin store, or fully truncated): resume after
		// the frontier.
		l.base, l.last = last, last
		return l, nil
	}
	l.base = first - 1
	l.last = l.base
	err := store.Replay(first, func(seq uint64, payload []byte) error {
		rec, err := unmarshalRecord(payload)
		if err != nil {
			return fmt.Errorf("cluster: wal entry %d: %w", seq, err)
		}
		if seq != l.last+1 || rec.Seq != seq {
			return fmt.Errorf("%w: wal entry %d carries seq %d (want %d)", ErrBadRecord, seq, rec.Seq, l.last+1)
		}
		l.recs = append(l.recs, rec)
		l.last = seq
		return nil
	})
	if err != nil {
		return nil, err
	}
	return l, nil
}

// Append assigns the next dense sequence to rec, journals it durably first
// (when a store is attached and healthy), then stores it in memory, returning
// the assigned sequence.
func (l *Log) Append(rec Record) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.last++
	rec.Seq = l.last
	if l.store != nil && l.storeErr == nil {
		payload, err := marshalRecord(rec)
		if err == nil {
			err = l.store.Append(rec.Seq, payload)
		}
		if err != nil {
			l.wedgeLocked(err)
		}
	}
	l.recs = append(l.recs, rec)
	return rec.Seq
}

// wedgeLocked permanently stops journaling after a store failure and drops
// the dirty marker so the next recovery knows replica-visible records may
// have outrun the durable WAL.
func (l *Log) wedgeLocked(err error) {
	l.storeFailures++
	if l.storeErr != nil {
		return
	}
	l.storeErr = err
	// Best-effort: if even the marker cannot be written the disk is likely
	// gone entirely, and recovery will find an undecodable or empty WAL.
	if merr := l.store.MarkDirty(err.Error()); merr != nil {
		l.storeErr = fmt.Errorf("%v (dirty marker: %v)", err, merr)
	}
}

// Durability reports whether the log is journaling to a durable store, how
// many appends failed to journal, and the error that wedged journaling.
func (l *Log) Durability() (durable bool, failures uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.store != nil && l.storeErr == nil, l.storeFailures, l.storeErr
}

// SyncWAL forces the durable store to disk regardless of fsync policy.
func (l *Log) SyncWAL() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.store == nil || l.storeErr != nil {
		return l.storeErr
	}
	if err := l.store.Sync(); err != nil {
		l.wedgeLocked(err)
		return err
	}
	return nil
}

// CloseWAL syncs and finalizes the durable store (sealing the open segment)
// and detaches it; the in-memory log remains usable. A log without a store
// returns nil.
func (l *Log) CloseWAL() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.store == nil {
		return nil
	}
	err := l.store.Close()
	l.store = nil
	return err
}

// Abandon detaches the durable store without finalizing it, leaving the
// on-disk tail exactly as the last append left it — the kill -9 path used by
// the crash harnesses.
func (l *Log) Abandon() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.store = nil
}

// LastSeq returns the highest assigned sequence (0 when nothing was ever
// appended).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.last
}

// Since returns a copy of every record with Seq > after, in order. If any
// such record has been truncated away it returns ErrGone — the caller cannot
// catch up from the log and must fetch full state.
func (l *Log) Since(after uint64) ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if after < l.base {
		return nil, fmt.Errorf("%w: have %d…%d, asked after %d", ErrGone, l.base+1, l.last, after)
	}
	start := after - l.base
	if start >= uint64(len(l.recs)) {
		return nil, nil
	}
	out := make([]Record, len(l.recs)-int(start))
	copy(out, l.recs[start:])
	return out, nil
}

// TruncateTo drops every record with Seq ≤ seq, bounding memory; replicas
// further behind than seq will get ErrGone from Since and resync. The
// in-memory drop and the base move happen under the same critical section as
// Since, so a concurrent FetchState/Since pair observes either the old bound
// or the new one — never a position that replays a half-truncated window.
// The durable store truncates segment-granularly (lazily) afterwards.
func (l *Log) TruncateTo(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq <= l.base {
		return
	}
	if seq > l.last {
		seq = l.last
	}
	drop := seq - l.base
	l.recs = append([]Record(nil), l.recs[drop:]...)
	l.base = seq
	if l.store != nil && l.storeErr == nil {
		if err := l.store.Truncate(seq); err != nil {
			l.wedgeLocked(err)
		}
	}
}
