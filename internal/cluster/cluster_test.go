package cluster

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/serve"
)

func testGraph(t *testing.T, n int, seed int64) *graph.Graph {
	t.Helper()
	g, err := gengraph.GnHalf(n, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// testPrimary builds a full primary stack over G(n, 1/2).
func testPrimary(t *testing.T, n int, seed int64) *Primary {
	t.Helper()
	eng, err := serve.NewEngine(testGraph(t, n, seed), "fulltable")
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(eng, serve.ServerOptions{})
	rep := serve.NewRepairer(srv, serve.RepairOptions{Debounce: -1})
	p, err := NewPrimary(eng, srv, rep, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		p.Close()
		rep.Close()
		srv.Close()
	})
	return p
}

// testTablesPrimary builds a tables-tier (landmark) mutate-only primary over
// a sparse topology — the large-graph regime where no all-pairs matrix is
// ever materialised.
func testTablesPrimary(t *testing.T, n int, seed int64) *Primary {
	t.Helper()
	g, err := gengraph.SparseConnected(n, 5, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := serve.NewTieredEngine(g, "landmark")
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(eng, serve.ServerOptions{})
	p, err := NewPrimary(eng, srv, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		p.Close()
		srv.Close()
	})
	return p
}

// absentEdge returns an edge missing from the primary's current topology —
// toggling it add/remove can never disconnect the graph, which a landmark
// rebuild would refuse.
func absentEdge(t *testing.T, p *Primary) [2]int {
	t.Helper()
	g := p.Engine().Current().Graph
	for w := 3; w <= g.N(); w++ {
		if !g.HasEdge(1, w) {
			return [2]int{1, w}
		}
	}
	t.Fatal("no absent edge around node 1")
	return [2]int{}
}

func toggleEdge(t *testing.T, p *Primary, e [2]int) {
	t.Helper()
	if _, err := p.Mutate(func(g *graph.Graph) error {
		if g.HasEdge(e[0], e[1]) {
			return g.RemoveEdge(e[0], e[1])
		}
		return g.AddEdge(e[0], e[1])
	}); err != nil {
		t.Fatal(err)
	}
}

// TestTablesTierReplicaFollowsMutations: a tables-tier replica replays edge
// diffs through its own landmark rebuilds, every record carries the
// scheme-table flavour and CRC, and convergence means byte-identical encoded
// tables.
func TestTablesTierReplicaFollowsMutations(t *testing.T) {
	p := testTablesPrimary(t, 64, 3)
	if tier := p.Engine().Tier(); tier != serve.TierTables {
		t.Fatalf("tier = %q, want %q", tier, serve.TierTables)
	}
	r, err := JoinReplica(p, ReplicaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	requireConverged(t, p, r)

	e := absentEdge(t, p)
	for i := 0; i < 5; i++ {
		toggleEdge(t, p, e)
		syncOK(t, r)
		requireConverged(t, p, r)
	}
	applied, resyncs, _ := r.Stats()
	if applied != 5 || resyncs != 0 {
		t.Fatalf("applied=%d resyncs=%d, want 5/0", applied, resyncs)
	}

	// Every publish record must be the tables flavour, fingerprinting the
	// encoded scheme tables (not a matrix the tier never built).
	recs, err := p.Log().Since(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("WAL has %d records, want 5", len(recs))
	}
	for _, rec := range recs {
		if rec.Kind != RecPublishTables {
			t.Fatalf("record %d kind %v, want %v", rec.Seq, rec.Kind, RecPublishTables)
		}
	}
	want := TablesCRC(p.Engine().Current().TablesBytes())
	if got := recs[len(recs)-1].DistCRC; got != want {
		t.Fatalf("last record CRC %08x, want tables CRC %08x", got, want)
	}

	// The digest must carry the tier and the scheme-table CRC.
	d, err := p.FetchDigest()
	if err != nil {
		t.Fatal(err)
	}
	if d.Tier != serve.TierTables || d.StateCRC != want {
		t.Fatalf("digest %+v, want tier=%q crc=%08x", d, serve.TierTables, want)
	}
}

// TestTablesTierResyncAfterTruncation: a lagging tables-tier replica falls
// back to an RTARENA2 full state fetch and still converges byte-identically.
func TestTablesTierResyncAfterTruncation(t *testing.T) {
	p := testTablesPrimary(t, 48, 11)
	r, err := JoinReplica(p, ReplicaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	e := absentEdge(t, p)
	for i := 0; i < 3; i++ {
		toggleEdge(t, p, e)
	}
	p.Log().TruncateTo(p.Log().LastSeq())
	syncOK(t, r)
	requireConverged(t, p, r)
	if _, resyncs, _ := r.Stats(); resyncs != 1 {
		t.Fatalf("resyncs = %d, want 1", resyncs)
	}
}

// TestTablesTierPromotion: a tables-tier replica promotes to primary under a
// bumped epoch and its peers resync against it.
func TestTablesTierPromotion(t *testing.T) {
	p := testTablesPrimary(t, 48, 17)
	r0, err := JoinReplica(p, ReplicaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := JoinReplica(p, ReplicaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()

	e := absentEdge(t, p)
	toggleEdge(t, p, e)
	syncOK(t, r0)
	syncOK(t, r1)

	// Kill the primary; promote r0.
	p.Close()
	np, err := r0.Promote()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		np.Close()
		r0.rep.Close()
		r0.srv.Close()
	}()
	if np.Epoch() != 2 {
		t.Fatalf("promoted epoch %d, want 2", np.Epoch())
	}
	// Re-point the surviving replica and converge on the new primary.
	r1.src = np
	toggleEdge(t, np, e)
	syncOK(t, r1)
	requireConverged(t, np, r1)
	if _, resyncs, _ := r1.Stats(); resyncs != 1 {
		t.Fatalf("resyncs = %d, want 1 (epoch change)", resyncs)
	}
}

// TestVerifyPublishTierMismatch: a publish record of the wrong flavour for
// the replaying engine's tier is a contract violation, as is a CRC mismatch.
func TestVerifyPublishTierMismatch(t *testing.T) {
	tp := testTablesPrimary(t, 48, 23)
	tablesSnap := tp.Engine().Current()
	fp := testPrimary(t, 16, 23)
	fullSnap := fp.Engine().Current()

	if err := verifyPublish(Record{Kind: RecPublish, SnapSeq: tablesSnap.Seq}, tablesSnap); err == nil {
		t.Fatal("full-tier record accepted on a tables-tier engine")
	}
	if err := verifyPublish(Record{Kind: RecPublishTables, SnapSeq: fullSnap.Seq}, fullSnap); err == nil {
		t.Fatal("tables record accepted on a full-tier engine")
	}
	good := Record{Kind: RecPublishTables, SnapSeq: tablesSnap.Seq, DistCRC: TablesCRC(tablesSnap.TablesBytes())}
	if err := verifyPublish(good, tablesSnap); err != nil {
		t.Fatalf("matching record rejected: %v", err)
	}
	good.DistCRC++
	if err := verifyPublish(good, tablesSnap); err == nil {
		t.Fatal("CRC mismatch accepted")
	}
}

func buildTestState(t *testing.T) *State {
	t.Helper()
	p := testPrimary(t, 24, 7)
	if err := p.SetLinkDown(1, 2, true); err != nil {
		t.Fatal(err)
	}
	if err := p.SetNodeDown(5, true); err != nil {
		t.Fatal(err)
	}
	st, err := p.FetchState()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func syncOK(t *testing.T, r *Replica) {
	t.Helper()
	if err := r.Sync(); err != nil {
		t.Fatal(err)
	}
}

func requireConverged(t *testing.T, p *Primary, replicas ...*Replica) {
	t.Helper()
	ok, ds, err := CheckEntropy(p, replicas...)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("digests diverge: %v", ds)
	}
	// Digest agreement must mean byte-identical tables; double-check the
	// actual state bytes, not just their CRC: the packed matrix on the full
	// tier, the encoded scheme tables on the tables tier.
	want := stateBytes(p.Engine().Current())
	for i, r := range replicas {
		got := stateBytes(r.Engine().Current())
		if len(got) != len(want) {
			t.Fatalf("replica %d state length %d, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("replica %d diverges at state byte %d", i, j)
			}
		}
	}
}

func stateBytes(s *serve.Snapshot) []byte {
	if s.Dist == nil {
		return s.TablesBytes()
	}
	return s.Dist.Packed()
}

func TestReplicaFollowsMutations(t *testing.T) {
	p := testPrimary(t, 32, 3)
	r, err := JoinReplica(p, ReplicaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	requireConverged(t, p, r)

	for i := 0; i < 5; i++ {
		if _, err := p.Mutate(func(g *graph.Graph) error {
			if g.HasEdge(1, 2) {
				return g.RemoveEdge(1, 2)
			}
			return g.AddEdge(1, 2)
		}); err != nil {
			t.Fatal(err)
		}
		syncOK(t, r)
		requireConverged(t, p, r)
	}
	applied, resyncs, _ := r.Stats()
	if applied != 5 || resyncs != 0 {
		t.Fatalf("applied=%d resyncs=%d, want 5/0", applied, resyncs)
	}
}

func TestReplicaFollowsChurnRepair(t *testing.T) {
	p := testPrimary(t, 32, 5)
	r, err := JoinReplica(p, ReplicaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Fail a link: primary's repairer (Debounce -1) rebuilds synchronously,
	// so the WAL carries both the overlay record and the publish record.
	if err := p.SetLinkDown(3, 4, true); err != nil {
		t.Fatal(err)
	}
	if err := p.rep.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := p.SetNodeDown(9, true); err != nil {
		t.Fatal(err)
	}
	syncOK(t, r)
	requireConverged(t, p, r)

	// The replica's overlay must agree with the primary's.
	links, nodes := r.rep.DownState()
	wantLinks, wantNodes := p.rep.DownState()
	if len(links) != len(wantLinks) || len(nodes) != len(wantNodes) {
		t.Fatalf("overlay mismatch: replica %v/%v, primary %v/%v", links, nodes, wantLinks, wantNodes)
	}

	// Heal and verify the overlay drains on both sides.
	if err := p.SetLinkDown(3, 4, false); err != nil {
		t.Fatal(err)
	}
	if err := p.SetNodeDown(9, false); err != nil {
		t.Fatal(err)
	}
	if err := p.rep.Flush(); err != nil {
		t.Fatal(err)
	}
	syncOK(t, r)
	requireConverged(t, p, r)
	if links, nodes := r.rep.DownState(); len(links) != 0 || len(nodes) != 0 {
		t.Fatalf("replica overlay not drained: %v / %v", links, nodes)
	}
}

func TestReplicaResyncAfterTruncation(t *testing.T) {
	p := testPrimary(t, 24, 11)
	r, err := JoinReplica(p, ReplicaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	for i := 0; i < 3; i++ {
		if _, err := p.Mutate(func(g *graph.Graph) error {
			if g.HasEdge(1, 3) {
				return g.RemoveEdge(1, 3)
			}
			return g.AddEdge(1, 3)
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Truncate past the replica's position: Sync must fall back to a full
	// state fetch and still converge.
	p.Log().TruncateTo(p.Log().LastSeq())
	syncOK(t, r)
	requireConverged(t, p, r)
	if _, resyncs, _ := r.Stats(); resyncs != 1 {
		t.Fatalf("resyncs = %d, want 1", resyncs)
	}
}

// corruptingSource wraps a Source and corrupts the encoded WAL stream once:
// the batch is encoded, bit-flipped, and decoded, so the replica exercises
// the real codec rejection path end to end.
type corruptingSource struct {
	Source
	mu      sync.Mutex
	corrupt bool
}

func (c *corruptingSource) FetchWAL(after uint64) (*WALBatch, error) {
	b, err := c.Source.FetchWAL(after)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	doCorrupt := c.corrupt && len(b.Records) > 0
	c.corrupt = false
	c.mu.Unlock()
	if !doCorrupt {
		return b, nil
	}
	return nil, roundTripCorrupt(b)
}

func roundTripCorrupt(b *WALBatch) error {
	var buf bytes.Buffer
	if err := EncodeWALBatch(&buf, b); err != nil {
		return err
	}
	raw := buf.Bytes()
	raw[len(raw)/2] ^= 0x10
	if _, err := DecodeWALBatch(bytes.NewReader(raw)); err == nil {
		return errors.New("corrupted batch decoded cleanly")
	}
	return ErrBadRecord
}

func TestReplicaResyncAfterCorruption(t *testing.T) {
	p := testPrimary(t, 24, 13)
	cs := &corruptingSource{Source: p}
	r, err := JoinReplica(cs, ReplicaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if _, err := p.Mutate(func(g *graph.Graph) error {
		if g.HasEdge(2, 5) {
			return g.RemoveEdge(2, 5)
		}
		return g.AddEdge(2, 5)
	}); err != nil {
		t.Fatal(err)
	}
	cs.mu.Lock()
	cs.corrupt = true
	cs.mu.Unlock()
	syncOK(t, r)
	requireConverged(t, p, r)
	if _, resyncs, _ := r.Stats(); resyncs != 1 {
		t.Fatalf("resyncs = %d, want 1 (corruption fallback)", resyncs)
	}
}

func TestPromotionBumpsEpochAndResyncsPeers(t *testing.T) {
	p := testPrimary(t, 24, 17)
	r1, err := JoinReplica(p, ReplicaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := JoinReplica(p, ReplicaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()

	if _, err := p.Mutate(func(g *graph.Graph) error { return g.RemoveEdge(mustEdge(t, p)) }); err != nil {
		t.Fatal(err)
	}
	syncOK(t, r1)
	syncOK(t, r2)

	// Kill the primary; promote r1.
	p.Close()
	np, err := r1.Promote()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		np.Close()
		r1.rep.Close()
		r1.srv.Close()
	}()
	if np.Epoch() != 2 {
		t.Fatalf("promoted epoch %d, want 2", np.Epoch())
	}

	// r2 now follows the new primary; the epoch change forces a resync.
	r2.src = np
	if _, err := np.Mutate(func(g *graph.Graph) error { return g.AddEdge(mustMissingEdge(t, np)) }); err != nil {
		t.Fatal(err)
	}
	syncOK(t, r2)
	requireConverged(t, np, r2)
	if r2.Epoch() != 2 {
		t.Fatalf("follower epoch %d after promotion, want 2", r2.Epoch())
	}
	if _, resyncs, _ := r2.Stats(); resyncs != 1 {
		t.Fatalf("resyncs = %d, want 1 (epoch change)", resyncs)
	}

	// The promoted member keeps serving and mutating.
	res := np.Server().NextHop(1, 9)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
}

func mustEdge(t *testing.T, p *Primary) (int, int) {
	t.Helper()
	edges := p.Engine().Current().Graph.Edges()
	if len(edges) == 0 {
		t.Fatal("no edges")
	}
	e := edges[len(edges)/2]
	return e[0], e[1]
}

func mustMissingEdge(t *testing.T, p *Primary) (int, int) {
	t.Helper()
	g := p.Engine().Current().Graph
	n := g.N()
	for u := 1; u <= n; u++ {
		for v := u + 1; v <= n; v++ {
			if !g.HasEdge(u, v) {
				return u, v
			}
		}
	}
	t.Fatal("complete graph")
	return 0, 0
}

// TestJoinDuringChurn pins the bootstrap race: a replica that joins while
// the primary is publishing must converge via idempotent replay, never
// diverge.
func TestJoinDuringChurn(t *testing.T) {
	p := testPrimary(t, 24, 19)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = p.Mutate(func(g *graph.Graph) error {
				if g.HasEdge(1, 2) {
					return g.RemoveEdge(1, 2)
				}
				return g.AddEdge(1, 2)
			})
		}
	}()

	for i := 0; i < 4; i++ {
		r, err := JoinReplica(p, ReplicaOptions{})
		if err != nil {
			t.Fatal(err)
		}
		syncOK(t, r)
		r.Close()
	}
	close(stop)
	wg.Wait()

	r, err := JoinReplica(p, ReplicaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	syncOK(t, r)
	requireConverged(t, p, r)
}

func TestReplicaServesWhileSourceUnreachable(t *testing.T) {
	p := testPrimary(t, 24, 23)
	gs := &gatedSource{Source: p}
	r, err := JoinReplica(gs, ReplicaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	gs.setDown(true)
	if err := r.Sync(); err == nil {
		t.Fatal("sync through a partition succeeded")
	}
	// Still answering from last applied state.
	res := r.Server().NextHop(1, 9)
	if res.Err != nil {
		t.Fatalf("partitioned replica stopped serving: %v", res.Err)
	}

	// Primary moves on; heal; replica catches up.
	if _, err := p.Mutate(func(g *graph.Graph) error { return g.RemoveEdge(mustEdge(t, p)) }); err != nil {
		t.Fatal(err)
	}
	gs.setDown(false)
	syncOK(t, r)
	requireConverged(t, p, r)
}

// gatedSource simulates a network partition between a replica and its
// source: while down, every fetch fails with a transport error.
type gatedSource struct {
	Source
	mu   sync.Mutex
	down bool
}

var errPartitioned = errors.New("cluster_test: partitioned")

func (g *gatedSource) setDown(d bool) {
	g.mu.Lock()
	g.down = d
	g.mu.Unlock()
}

func (g *gatedSource) isDown() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.down
}

func (g *gatedSource) FetchState() (*State, error) {
	if g.isDown() {
		return nil, errPartitioned
	}
	return g.Source.FetchState()
}

func (g *gatedSource) FetchWAL(after uint64) (*WALBatch, error) {
	if g.isDown() {
		return nil, errPartitioned
	}
	return g.Source.FetchWAL(after)
}

func (g *gatedSource) FetchDigest() (Digest, error) {
	if g.isDown() {
		return Digest{}, errPartitioned
	}
	return g.Source.FetchDigest()
}
