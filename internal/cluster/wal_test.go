package cluster

import (
	"bytes"
	"errors"
	"testing"
)

func sampleRecords() []Record {
	return []Record{
		{Seq: 1, Kind: RecPublish, SnapSeq: 2, DistCRC: 0xDEADBEEF,
			Adds: [][2]int{{1, 2}}, Removes: [][2]int{{3, 4}, {5, 6}}},
		{Seq: 2, Kind: RecLink, U: 7, V: 9, Down: true},
		{Seq: 3, Kind: RecNode, U: 11, Down: true},
		{Seq: 4, Kind: RecLink, U: 7, V: 9, Down: false},
		{Seq: 5, Kind: RecPublish, SnapSeq: 3, DistCRC: 1},
		{Seq: 6, Kind: RecOwned, SnapSeq: 4, DistCRC: 2,
			Removes: [][2]int{{1, 2}}, OwnedN: 70, Owned: []uint64{0x00FF00FF00FF00FF, 0x2A}},
		{Seq: 7, Kind: RecOwned, SnapSeq: 5, DistCRC: 3}, // lifted restriction
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	for _, rec := range sampleRecords() {
		var buf bytes.Buffer
		if err := encodeRecord(&buf, rec); err != nil {
			t.Fatalf("encode %v: %v", rec.Kind, err)
		}
		got, err := decodeRecord(&buf)
		if err != nil {
			t.Fatalf("decode %v: %v", rec.Kind, err)
		}
		if got.Seq != rec.Seq || got.Kind != rec.Kind || got.SnapSeq != rec.SnapSeq ||
			got.DistCRC != rec.DistCRC || got.U != rec.U || got.V != rec.V || got.Down != rec.Down ||
			len(got.Adds) != len(rec.Adds) || len(got.Removes) != len(rec.Removes) ||
			got.OwnedN != rec.OwnedN || len(got.Owned) != len(rec.Owned) {
			t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", rec, got)
		}
		for i := range rec.Owned {
			if got.Owned[i] != rec.Owned[i] {
				t.Fatalf("owned[%d] = %#x, want %#x", i, got.Owned[i], rec.Owned[i])
			}
		}
		for i := range rec.Adds {
			if got.Adds[i] != rec.Adds[i] {
				t.Fatalf("adds[%d] = %v, want %v", i, got.Adds[i], rec.Adds[i])
			}
		}
		for i := range rec.Removes {
			if got.Removes[i] != rec.Removes[i] {
				t.Fatalf("removes[%d] = %v, want %v", i, got.Removes[i], rec.Removes[i])
			}
		}
	}
}

func TestBatchCodecRoundTrip(t *testing.T) {
	b := &WALBatch{Epoch: 3, Records: sampleRecords()}
	var buf bytes.Buffer
	if err := EncodeWALBatch(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeWALBatch(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 3 || len(got.Records) != len(b.Records) {
		t.Fatalf("batch mismatch: epoch %d, %d records", got.Epoch, len(got.Records))
	}

	empty := &WALBatch{Epoch: 1}
	buf.Reset()
	if err := EncodeWALBatch(&buf, empty); err != nil {
		t.Fatal(err)
	}
	if got, err = DecodeWALBatch(&buf); err != nil || got.Epoch != 1 || len(got.Records) != 0 {
		t.Fatalf("empty batch: %+v, %v", got, err)
	}
}

// TestBatchCodecRejectsCorruption flips every byte position in turn and
// requires each corruption to be rejected — the CRC framing must leave no
// silent window.
func TestBatchCodecRejectsCorruption(t *testing.T) {
	b := &WALBatch{Epoch: 2, Records: sampleRecords()}
	var buf bytes.Buffer
	if err := EncodeWALBatch(&buf, b); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	accepted := 0
	for i := range raw {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x40
		if _, err := DecodeWALBatch(bytes.NewReader(mut)); err == nil {
			accepted++
			t.Errorf("corruption at byte %d accepted", i)
		}
	}
	if accepted != 0 {
		t.Fatalf("%d of %d corrupt positions accepted", accepted, len(raw))
	}
	// Truncation at every prefix length must also be rejected.
	for cut := 0; cut < len(raw); cut++ {
		if _, err := DecodeWALBatch(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}

func TestBatchCodecRejectsNonDenseSeqs(t *testing.T) {
	recs := sampleRecords()
	recs[2].Seq = 9 // hole
	var buf bytes.Buffer
	if err := EncodeWALBatch(&buf, &WALBatch{Epoch: 1, Records: recs}); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeWALBatch(&buf); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("gapped batch decoded: %v", err)
	}
}

func TestLogAppendSinceTruncate(t *testing.T) {
	l := NewLog()
	if l.LastSeq() != 0 {
		t.Fatalf("fresh log last seq %d", l.LastSeq())
	}
	for i := 0; i < 10; i++ {
		seq := l.Append(Record{Kind: RecNode, U: i, Down: true})
		if seq != uint64(i+1) {
			t.Fatalf("append %d assigned seq %d", i, seq)
		}
	}
	recs, err := l.Since(0)
	if err != nil || len(recs) != 10 {
		t.Fatalf("since 0: %d recs, %v", len(recs), err)
	}
	recs, err = l.Since(7)
	if err != nil || len(recs) != 3 || recs[0].Seq != 8 {
		t.Fatalf("since 7: %+v, %v", recs, err)
	}
	recs, err = l.Since(10)
	if err != nil || len(recs) != 0 {
		t.Fatalf("since end: %+v, %v", recs, err)
	}

	l.TruncateTo(6)
	if _, err := l.Since(5); !errors.Is(err, ErrGone) {
		t.Fatalf("since truncated point: %v", err)
	}
	recs, err = l.Since(6)
	if err != nil || len(recs) != 4 || recs[0].Seq != 7 {
		t.Fatalf("since 6 after truncate: %d recs (%v), %v", len(recs), recs, err)
	}
	// Appends continue densely after truncation.
	if seq := l.Append(Record{Kind: RecNode, U: 99}); seq != 11 {
		t.Fatalf("post-truncate append seq %d", seq)
	}
	l.TruncateTo(999)
	if _, err := l.Since(10); !errors.Is(err, ErrGone) {
		t.Fatalf("full truncation kept records: %v", err)
	}
	if recs, err := l.Since(11); err != nil || len(recs) != 0 {
		t.Fatalf("since last after full truncation: %v, %v", recs, err)
	}
}

func TestStateCodecRoundTrip(t *testing.T) {
	st := buildTestState(t)
	var buf bytes.Buffer
	if err := EncodeState(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != st.Epoch || got.WalSeq != st.WalSeq {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.DownLinks) != len(st.DownLinks) || len(got.DownNodes) != len(st.DownNodes) {
		t.Fatalf("overlay mismatch: %+v", got)
	}
	if got.Snap.Seq != st.Snap.Seq || !got.Snap.Graph.Equal(st.Snap.Graph) {
		t.Fatal("snapshot mismatch after state round trip")
	}
	if DistCRC(got.Snap.Dist) != DistCRC(st.Snap.Dist) {
		t.Fatal("distance matrix mismatch after state round trip")
	}
}
