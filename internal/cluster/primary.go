// The primary half of replication: wraps a serving stack (engine + server +
// active repairer) and turns every state change into WAL records. Snapshot
// publications are captured by the engine's publish hook — which runs under
// the engine mutex, so records land in exact publication order — as the edge
// diff between consecutive snapshots plus the CRC of the resulting state —
// the distance matrix on the full tier, the encoded scheme tables on the
// tables tier. Overlay events (link/node failures and repairs) are appended after
// they are applied locally; a publication that races ahead of its causing
// link record is harmless because replicas apply both in log order and the
// final state is identical.
package cluster

import (
	"errors"
	"fmt"
	"sync/atomic"

	"routetab/internal/graph"
	"routetab/internal/serve"
)

// ErrClosed reports an operation on a closed cluster member.
var ErrClosed = errors.New("cluster: member closed")

// Source is the replication feed a replica consumes. *Primary implements it
// in-process; HTTPSource implements it over a routetabd peer's /cluster
// endpoints. Transport failures (a partitioned peer) surface as ordinary
// errors; a Source that returns ErrGone from FetchWAL is telling the caller
// to FetchState instead.
type Source interface {
	// FetchState captures a full bootstrap: epoch, WAL position, failure
	// overlay, and snapshot.
	FetchState() (*State, error)
	// FetchWAL returns every record with Seq > after under the current
	// epoch, or ErrGone if those records have been truncated.
	FetchWAL(after uint64) (*WALBatch, error)
	// FetchDigest returns the convergence fingerprint of the peer's
	// currently served state.
	FetchDigest() (Digest, error)
}

// Primary owns mutation for a replicated serving group. Construct it over an
// engine/server/repairer stack with NewPrimary; every snapshot the engine
// publishes and every overlay event routed through SetLinkDown/SetNodeDown
// is appended to the WAL for replicas to stream.
type Primary struct {
	eng   *serve.Engine
	srv   *serve.Server
	rep   *serve.Repairer
	log   *Log
	epoch uint64

	closed atomic.Bool
}

var _ Source = (*Primary)(nil)

// NewPrimary wires a primary over an existing stack. epoch must be strictly
// greater than any epoch this group has seen (1 for a fresh cluster; a
// promotion bumps it). The engine's publish hook is claimed by the primary;
// rep may be nil for a mutate-only primary that never sees churn events.
func NewPrimary(eng *serve.Engine, srv *serve.Server, rep *serve.Repairer, epoch uint64) (*Primary, error) {
	return NewPrimaryAt(eng, srv, rep, epoch, NewLog())
}

// NewPrimaryAt wires a primary over an existing stack and an existing WAL —
// the crash-recovery path: RecoverPrimaryLog rebuilds the log (and replays
// it into the engine) before the publish hook is claimed, so recovery replay
// is never re-journaled and new publications resume at the recovered
// frontier.
func NewPrimaryAt(eng *serve.Engine, srv *serve.Server, rep *serve.Repairer, epoch uint64, log *Log) (*Primary, error) {
	if epoch == 0 {
		return nil, fmt.Errorf("cluster: epoch must be ≥ 1")
	}
	if log == nil {
		log = NewLog()
	}
	p := &Primary{eng: eng, srv: srv, rep: rep, log: log, epoch: epoch}
	eng.SetPublishHook(p.onPublish)
	return p, nil
}

// Epoch returns the primary's epoch.
func (p *Primary) Epoch() uint64 { return p.epoch }

// Engine returns the underlying serving engine.
func (p *Primary) Engine() *serve.Engine { return p.eng }

// Server returns the underlying lookup server.
func (p *Primary) Server() *serve.Server { return p.srv }

// Repairer returns the underlying repairer (nil for a mutate-only primary).
func (p *Primary) Repairer() *serve.Repairer { return p.rep }

// Log exposes the primary's WAL (for truncation policy and tests).
func (p *Primary) Log() *Log { return p.log }

// Close detaches the publish hook. It does not close the underlying stack,
// which the caller owns.
func (p *Primary) Close() {
	if p.closed.CompareAndSwap(false, true) {
		p.eng.SetPublishHook(nil)
	}
}

// onPublish runs under the engine mutex on every snapshot swap: append the
// edge diff prev→cur so replicas can replay the mutation. The record kind
// and CRC follow the snapshot's tier — a tables-tier publication fingerprints
// the encoded scheme tables, which is all the compact tier materialises. A
// publication that changed the engine's owned keyspace (a shard handover)
// becomes a RecOwned record carrying the new bitmap alongside the diff, so
// replicas replay the handover through ordinary log shipping — no resync.
func (p *Primary) onPublish(prev, cur *serve.Snapshot) {
	if p.closed.Load() {
		return
	}
	var adds, removes [][2]int
	if prev != nil {
		adds, removes = graphDiff(prev.Graph, cur.Graph)
	}
	rec := Record{
		Kind:    PublishKindFor(cur),
		SnapSeq: cur.Seq,
		DistCRC: SnapshotCRC(cur),
		Adds:    adds,
		Removes: removes,
	}
	if prev != nil && !prev.Owned().Equal(cur.Owned()) {
		rec.Kind = RecOwned
		if owned := cur.Owned(); owned != nil {
			rec.OwnedN = owned.N()
			rec.Owned = owned.Words()
		}
	}
	p.log.Append(rec)
}

// graphDiff returns the edges present in cur but not prev (adds) and in prev
// but not cur (removes), in Edges() order — deterministic given the graphs.
func graphDiff(prev, cur *graph.Graph) (adds, removes [][2]int) {
	for _, e := range cur.Edges() {
		if !prev.HasEdge(e[0], e[1]) {
			adds = append(adds, e)
		}
	}
	for _, e := range prev.Edges() {
		if !cur.HasEdge(e[0], e[1]) {
			removes = append(removes, e)
		}
	}
	return adds, removes
}

// Mutate applies a topology mutation through the engine; the publish hook
// appends the resulting record.
func (p *Primary) Mutate(fn func(g *graph.Graph) error) (*serve.Snapshot, error) {
	if p.closed.Load() {
		return nil, ErrClosed
	}
	return p.eng.Mutate(fn)
}

// SetLinkDown implements faultinject.Target: route the event through the
// repairer (overlay first, rebuild scheduled) and then replicate it.
func (p *Primary) SetLinkDown(u, v int, isDown bool) error {
	if p.closed.Load() {
		return ErrClosed
	}
	if p.rep == nil {
		return fmt.Errorf("cluster: primary has no repairer for link event")
	}
	if err := p.rep.SetLinkDown(u, v, isDown); err != nil {
		return err
	}
	p.log.Append(Record{Kind: RecLink, U: u, V: v, Down: isDown})
	return nil
}

// SetNodeDown implements faultinject.Target for node crash/recover events.
func (p *Primary) SetNodeDown(u int, isDown bool) error {
	if p.closed.Load() {
		return ErrClosed
	}
	if p.rep == nil {
		return fmt.Errorf("cluster: primary has no repairer for node event")
	}
	if err := p.rep.SetNodeDown(u, isDown); err != nil {
		return err
	}
	p.log.Append(Record{Kind: RecNode, U: u, Down: isDown})
	return nil
}

// FetchState implements Source. Capture order matters: the WAL position is
// read before overlay and snapshot, so anything published concurrently with
// the capture is also present in the WAL after WalSeq — replicas replay
// those records idempotently (publish records at or below the adopted
// snapshot's Seq are skipped; overlay records are last-writer-wins).
func (p *Primary) FetchState() (*State, error) {
	if p.closed.Load() {
		return nil, ErrClosed
	}
	walSeq := p.log.LastSeq()
	var links [][2]int
	var nodes []int
	if p.rep != nil {
		links, nodes = p.rep.DownState()
	}
	cur := p.eng.Current()
	return &State{
		Epoch:     p.epoch,
		WalSeq:    walSeq,
		DownLinks: links,
		DownNodes: nodes,
		Snap: &serve.SnapshotData{
			Seq: cur.Seq, Scheme: cur.Scheme, Graph: cur.Graph, Ports: cur.Ports,
			Dist: cur.Dist, Tables: cur.TablesBytes(),
		},
	}, nil
}

// FetchWAL implements Source.
func (p *Primary) FetchWAL(after uint64) (*WALBatch, error) {
	if p.closed.Load() {
		return nil, ErrClosed
	}
	recs, err := p.log.Since(after)
	if err != nil {
		return nil, err
	}
	return &WALBatch{Epoch: p.epoch, Records: recs}, nil
}

// FetchDigest implements Source.
func (p *Primary) FetchDigest() (Digest, error) {
	if p.closed.Load() {
		return Digest{}, ErrClosed
	}
	return digestOf(p.eng, p.epoch, p.log.LastSeq()), nil
}
