// Client-side failover: a Router fans lookups across cluster members,
// steering around unhealthy ones. Three signals demote a backend — a
// transport error (the peer is partitioned or dead; health-probed back in
// after a backoff), an ErrOverloaded answer (honour the shard's Retry-After
// hint, with the server-side jitter already applied, as the backoff), and a
// hedge timeout (the answer is slow; a second backend is raced and the
// first definite answer wins). Service-level errors other than overload
// (ErrUnavailable, ErrSelfLookup) are answers, not failures: every member
// would say the same thing, so they are returned, not retried.
package cluster

import (
	"context"
	"errors"
	"sync"
	"time"

	"routetab/internal/serve"
)

// ErrNoBackends reports a lookup with every backend unreachable.
var ErrNoBackends = errors.New("cluster: no reachable backend")

// Backend is one routed-to cluster member. Lookup's error return is a
// transport failure (unreachable peer); service-level failures travel
// inside the Result.
type Backend interface {
	Name() string
	Lookup(src, dst int) (serve.Result, error)
}

// ContextBackend is a Backend whose lookups honour cancellation. When a
// hedged race resolves, the Router cancels the losing attempts' context so
// their goroutines unwind immediately instead of riding out a slow transport
// call — without this, every hedge against a stalled peer parks a goroutine
// for the peer's full timeout.
type ContextBackend interface {
	Backend
	LookupCtx(ctx context.Context, src, dst int) (serve.Result, error)
}

// RouterOptions configures a Router.
type RouterOptions struct {
	// HedgeAfter is how long the first backend gets before a second is
	// raced (default 1ms; negative disables hedging).
	HedgeAfter time.Duration
	// ProbeAfter is how long a transport-failed backend stays demoted
	// before a lookup probes it again (default 10ms).
	ProbeAfter time.Duration
	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

func (o *RouterOptions) setDefaults() {
	if o.HedgeAfter == 0 {
		o.HedgeAfter = time.Millisecond
	}
	if o.ProbeAfter <= 0 {
		o.ProbeAfter = 10 * time.Millisecond
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
}

type backendState struct {
	b Backend
	// downUntil is the wall time before which this backend is skipped
	// (zero = healthy). Set by transport failures and Retry-After hints.
	downUntil time.Time
	served    uint64 // lookups answered by this backend
	failed    uint64 // transport failures observed
}

// Router fans lookups across backends with failover and hedging. Safe for
// concurrent use.
type Router struct {
	opts RouterOptions

	mu       sync.Mutex
	backends []*backendState
	rr       int // rotation cursor for load spreading
}

// NewRouter builds a router over backends (order is the initial preference
// order).
func NewRouter(backends []Backend, opts RouterOptions) *Router {
	opts.setDefaults()
	rt := &Router{opts: opts}
	rt.SetBackends(backends)
	return rt
}

// SetBackends replaces the backend set (topology change: promotion, member
// join/leave). Health state of surviving names is preserved.
func (rt *Router) SetBackends(backends []Backend) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	old := make(map[string]*backendState, len(rt.backends))
	for _, bs := range rt.backends {
		old[bs.b.Name()] = bs
	}
	next := make([]*backendState, 0, len(backends))
	for _, b := range backends {
		if prev, ok := old[b.Name()]; ok {
			prev.b = b
			next = append(next, prev)
			continue
		}
		next = append(next, &backendState{b: b})
	}
	rt.backends = next
	rt.rr = 0
}

// Served returns per-backend answer counts, keyed by backend name.
func (rt *Router) Served() map[string]uint64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make(map[string]uint64, len(rt.backends))
	for _, bs := range rt.backends {
		out[bs.b.Name()] = bs.served
	}
	return out
}

// candidate pairs a backend state with the Backend captured under the router
// mutex: lookup goroutines run unlocked, and SetBackends may swap bs.b (a
// promotion rebinding a surviving name) while an attempt is in flight.
type candidate struct {
	bs *backendState
	b  Backend
}

// pick returns candidate backends in try order: ready ones (healthy, or
// demoted with the probe window open — an expired backoff re-enters normal
// rotation so recovered members take traffic again) in round-robin
// rotation, then still-demoted ones as a last resort so a fully demoted
// cluster keeps getting probed rather than failing outright.
func (rt *Router) pick(now time.Time) []candidate {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	n := len(rt.backends)
	if n == 0 {
		return nil
	}
	start := rt.rr
	rt.rr++
	var ready, demoted []candidate
	for i := 0; i < n; i++ {
		bs := rt.backends[(start+i)%n]
		if bs.downUntil.IsZero() || !now.Before(bs.downUntil) {
			ready = append(ready, candidate{bs: bs, b: bs.b})
		} else {
			demoted = append(demoted, candidate{bs: bs, b: bs.b})
		}
	}
	return append(ready, demoted...)
}

func (rt *Router) noteOK(bs *backendState) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	bs.downUntil = time.Time{}
	bs.served++
}

func (rt *Router) noteTransportFail(bs *backendState, now time.Time) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	bs.downUntil = now.Add(rt.opts.ProbeAfter)
	bs.failed++
}

func (rt *Router) noteOverloaded(bs *backendState, now time.Time, retryAfter time.Duration) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if retryAfter <= 0 {
		retryAfter = rt.opts.ProbeAfter
	}
	bs.downUntil = now.Add(retryAfter)
}

type attempt struct {
	bs  *backendState
	res serve.Result
	err error
}

// Lookup answers one next-hop query with failover and hedging. The returned
// error is ErrNoBackends only; service-level failures ride in Result.Err.
func (rt *Router) Lookup(src, dst int) (serve.Result, error) {
	now := rt.opts.Clock()
	order := rt.pick(now)
	if len(order) == 0 {
		return serve.Result{}, ErrNoBackends
	}

	// The buffered channel lets losing attempts complete their send and exit;
	// the context lets ContextBackend losers abandon a stalled transport call
	// the moment a winner returns (cancel runs on every exit path).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	results := make(chan attempt, len(order))
	launch := func(c candidate) {
		go func() {
			var res serve.Result
			var err error
			if cb, ok := c.b.(ContextBackend); ok {
				res, err = cb.LookupCtx(ctx, src, dst)
			} else {
				res, err = c.b.Lookup(src, dst)
			}
			results <- attempt{bs: c.bs, res: res, err: err}
		}()
	}

	next := 0
	launch(order[next])
	next++
	inflight := 1

	var hedge *time.Timer
	var hedgeC <-chan time.Time
	if rt.opts.HedgeAfter > 0 && len(order) > 1 {
		hedge = time.NewTimer(rt.opts.HedgeAfter)
		defer hedge.Stop()
		hedgeC = hedge.C
	}

	var lastOverload serve.Result
	sawOverload := false
	for {
		select {
		case a := <-results:
			inflight--
			now = rt.opts.Clock()
			switch {
			case a.err != nil:
				rt.noteTransportFail(a.bs, now)
			case errors.Is(a.res.Err, serve.ErrOverloaded):
				var oe *serve.OverloadedError
				var retryAfter time.Duration
				if errors.As(a.res.Err, &oe) {
					retryAfter = oe.RetryAfter
				}
				rt.noteOverloaded(a.bs, now, retryAfter)
				lastOverload, sawOverload = a.res, true
			default:
				// A definite answer (including ErrUnavailable/ErrSelfLookup,
				// which every member would repeat) wins.
				rt.noteOK(a.bs)
				return a.res, nil
			}
			// The attempt failed over; try the next candidate immediately.
			if next < len(order) {
				launch(order[next])
				next++
				inflight++
			} else if inflight == 0 {
				if sawOverload {
					return lastOverload, nil
				}
				return serve.Result{}, ErrNoBackends
			}
		case <-hedgeC:
			hedgeC = nil
			if next < len(order) {
				launch(order[next])
				next++
				inflight++
			}
		}
	}
}
