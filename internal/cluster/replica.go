// The replica half of replication: bootstrap from a full State fetch, then
// stream WAL records and replay them through a local serve.Engine. Publish
// records re-run the primary's topology mutation via Engine.Mutate — the
// determinism contract makes the rebuilt tables byte-identical, which every
// apply verifies against the record's DistCRC. Overlay records drive a
// passive repairer (degraded detours with no local rebuilds). Three failure
// modes collapse into one recovery path, a full resync through
// Engine.Adopt: a WAL gap (ErrGone after truncation), an epoch change
// (promotion elsewhere), and any decode or verification failure (corruption,
// divergence).
package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"routetab/internal/graph"
	"routetab/internal/serve"
)

// ReplicaOptions configures JoinReplica.
type ReplicaOptions struct {
	// Server configures the replica's local lookup server.
	Server serve.ServerOptions
	// SyncInterval paces the background Sync loop started by Start
	// (default 2ms).
	SyncInterval time.Duration
	// SyncBackoffCap bounds the exponential backoff the sync loop applies
	// after consecutive Sync failures (transport errors during a partition,
	// resync failures against a dead source). Delays double from SyncInterval
	// up to this cap, with ±25% jitter so healed replicas do not retry in
	// lockstep. Default 32×SyncInterval.
	SyncBackoffCap time.Duration
}

// Replica is a follower: it serves lookups from its own engine and keeps
// that engine converged with a Source by WAL replay.
type Replica struct {
	src  Source
	eng  *serve.Engine
	srv  *serve.Server
	rep  *serve.Repairer
	opts ReplicaOptions

	mu      sync.Mutex
	epoch   uint64
	walSeq  uint64
	applied uint64 // records replayed
	resyncs uint64 // full state fetches after bootstrap
	lastLag uint64 // records behind the source at the start of the last Sync

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// JoinReplica bootstraps a replica from src: fetch full state, build an
// engine + server + passive repairer serving it, and apply the overlay. The
// caller should then call Start (or drive Sync directly) to keep it
// converged, and Close when done.
func JoinReplica(src Source, opts ReplicaOptions) (*Replica, error) {
	if opts.SyncInterval <= 0 {
		opts.SyncInterval = 2 * time.Millisecond
	}
	if opts.SyncBackoffCap <= 0 {
		opts.SyncBackoffCap = 32 * opts.SyncInterval
	}
	st, err := src.FetchState()
	if err != nil {
		return nil, fmt.Errorf("cluster: join: %w", err)
	}
	eng, err := serve.NewEngineFromSnapshot(st.Snap)
	if err != nil {
		return nil, fmt.Errorf("cluster: join: %w", err)
	}
	srv := serve.NewServer(eng, opts.Server)
	rep := serve.NewRepairer(srv, serve.RepairOptions{Passive: true})
	r := &Replica{
		src: src, eng: eng, srv: srv, rep: rep, opts: opts,
		epoch: st.Epoch, walSeq: st.WalSeq,
		stop: make(chan struct{}),
	}
	if err := r.applyOverlay(st.DownLinks, st.DownNodes); err != nil {
		r.Close()
		return nil, fmt.Errorf("cluster: join: %w", err)
	}
	return r, nil
}

// Server returns the replica's local lookup server.
func (r *Replica) Server() *serve.Server { return r.srv }

// Engine returns the replica's engine.
func (r *Replica) Engine() *serve.Engine { return r.eng }

// Repairer returns the replica's (passive) repairer.
func (r *Replica) Repairer() *serve.Repairer { return r.rep }

// Epoch returns the epoch the replica last synced under.
func (r *Replica) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// WalSeq returns the replica's replay position.
func (r *Replica) WalSeq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.walSeq
}

// Stats returns replay counters: records applied, full resyncs since join,
// and the replay lag (records behind the source) observed at the start of
// the most recent Sync.
func (r *Replica) Stats() (applied, resyncs, lastLag uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied, r.resyncs, r.lastLag
}

// Digest returns the replica's convergence fingerprint.
func (r *Replica) Digest() Digest {
	r.mu.Lock()
	epoch, walSeq := r.epoch, r.walSeq
	r.mu.Unlock()
	return digestOf(r.eng, epoch, walSeq)
}

// applyOverlay reconciles the repairer's desired-down state to exactly
// (links, nodes): heal everything no longer down, fail everything newly
// down, then fold the serving topology back into the incorporated set.
func (r *Replica) applyOverlay(links [][2]int, nodes []int) error {
	wantLink := make(map[[2]int]bool, len(links))
	for _, e := range links {
		if e[0] > e[1] {
			e[0], e[1] = e[1], e[0]
		}
		wantLink[e] = true
	}
	wantNode := make(map[int]bool, len(nodes))
	for _, u := range nodes {
		wantNode[u] = true
	}
	curLinks, curNodes := r.rep.DownState()
	for _, e := range curLinks {
		if !wantLink[e] {
			if err := r.rep.SetLinkDown(e[0], e[1], false); err != nil {
				return err
			}
		}
	}
	for _, u := range curNodes {
		if !wantNode[u] {
			if err := r.rep.SetNodeDown(u, false); err != nil {
				return err
			}
		}
	}
	for e := range wantLink {
		if err := r.rep.SetLinkDown(e[0], e[1], true); err != nil {
			return err
		}
	}
	for u := range wantNode {
		if err := r.rep.SetNodeDown(u, true); err != nil {
			return err
		}
	}
	r.rep.Reconcile()
	return nil
}

// Sync performs one replication round: fetch records after the current
// position and replay them. Gap, epoch change, corruption, or divergence
// triggers a full Resync. Transport errors are returned to the caller (the
// source is unreachable — a partition — and the replica keeps serving its
// last applied state).
func (r *Replica) Sync() error {
	r.mu.Lock()
	after := r.walSeq
	epoch := r.epoch
	r.mu.Unlock()

	batch, err := r.src.FetchWAL(after)
	if err != nil {
		if errors.Is(err, ErrGone) || errors.Is(err, ErrBadRecord) {
			return r.Resync()
		}
		return err
	}
	if batch.Epoch != epoch {
		return r.Resync()
	}
	r.mu.Lock()
	r.lastLag = uint64(len(batch.Records))
	r.mu.Unlock()
	for _, rec := range batch.Records {
		if rec.Seq != after+1 {
			// Dense-sequence violation inside a batch: treat as corruption.
			return r.Resync()
		}
		if err := r.apply(rec); err != nil {
			return r.Resync()
		}
		after = rec.Seq
		r.mu.Lock()
		r.walSeq = after
		r.applied++
		r.mu.Unlock()
	}
	return nil
}

// apply replays one record. An error means divergence and must trigger a
// resync in the caller.
func (r *Replica) apply(rec Record) error {
	switch rec.Kind {
	case RecPublish, RecPublishTables, RecOwned:
		cur := r.eng.Current()
		if rec.SnapSeq <= cur.Seq {
			// Already reflected in the snapshot we bootstrapped from (the
			// WAL position was captured before the snapshot) — skip.
			return nil
		}
		if rec.SnapSeq != cur.Seq+1 {
			return fmt.Errorf("cluster: publish gap: have snap %d, record is %d", cur.Seq, rec.SnapSeq)
		}
		diff := func(g *graph.Graph) error {
			for _, e := range rec.Removes {
				if err := g.RemoveEdge(e[0], e[1]); err != nil {
					return err
				}
			}
			for _, e := range rec.Adds {
				if err := g.AddEdge(e[0], e[1]); err != nil {
					return err
				}
			}
			return nil
		}
		var snap *serve.Snapshot
		var err error
		if rec.Kind == RecOwned {
			// Keyspace handover: replay the diff AND the ownership change in
			// one publication, exactly as the primary published them.
			owned, oerr := rec.OwnedSet()
			if oerr != nil {
				return oerr
			}
			snap, err = r.eng.MutateOwned(owned, diff)
		} else {
			snap, err = r.eng.Mutate(diff)
		}
		if err != nil {
			return err
		}
		if snap.Seq != rec.SnapSeq {
			return fmt.Errorf("cluster: replayed snap seq %d, record says %d", snap.Seq, rec.SnapSeq)
		}
		if err := verifyPublish(rec, snap); err != nil {
			return fmt.Errorf("cluster: %w", err)
		}
		// The publication may have incorporated overlay links; recompute
		// the incorporated set from the new serving graph.
		r.rep.Reconcile()
		return nil
	case RecLink:
		return r.rep.SetLinkDown(rec.U, rec.V, rec.Down)
	case RecNode:
		return r.rep.SetNodeDown(rec.U, rec.Down)
	}
	return fmt.Errorf("%w: kind %d", ErrBadRecord, int(rec.Kind))
}

// Resync abandons WAL replay and adopts a full state fetch: the recovery
// path for truncation gaps, epoch changes (promotion), and corruption. The
// replica keeps serving throughout — Adopt swaps the snapshot atomically.
func (r *Replica) Resync() error {
	st, err := r.src.FetchState()
	if err != nil {
		return fmt.Errorf("cluster: resync: %w", err)
	}
	if st.Snap.Seq >= r.eng.Current().Seq || st.Epoch != r.Epoch() {
		if err := r.eng.Adopt(st.Snap); err != nil {
			return fmt.Errorf("cluster: resync: %w", err)
		}
	}
	if err := r.applyOverlay(st.DownLinks, st.DownNodes); err != nil {
		return fmt.Errorf("cluster: resync: %w", err)
	}
	r.mu.Lock()
	r.epoch = st.Epoch
	r.walSeq = st.WalSeq
	r.resyncs++
	r.mu.Unlock()
	return nil
}

// Start launches the background sync loop. Transport errors are retried with
// jittered exponential backoff (SyncInterval doubling up to SyncBackoffCap)
// instead of hammering a partitioned source at full tick rate; the replica
// serves stale-but-correct answers meanwhile and the first success resets the
// pace.
func (r *Replica) Start() {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		failures := 0
		t := time.NewTimer(r.opts.SyncInterval)
		defer t.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-t.C:
				if err := r.Sync(); err != nil {
					failures++
				} else {
					failures = 0
				}
				t.Reset(backoffDelay(r.opts.SyncInterval, r.opts.SyncBackoffCap, failures, rand.Float64()))
			}
		}
	}()
}

// backoffDelay returns the pause before the next sync attempt: base while
// healthy (failures == 0, no jitter — the steady-state pace is exact), else
// base·2^failures capped at max, scaled by ±25% jitter with unit ∈ [0,1).
// Pure so the bound is unit-testable.
func backoffDelay(base, max time.Duration, failures int, unit float64) time.Duration {
	if failures <= 0 {
		return base
	}
	d := base
	for i := 0; i < failures && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return time.Duration(float64(d) * (0.75 + 0.5*unit))
}

// Close stops the sync loop and the replica's serving stack.
func (r *Replica) Close() {
	r.once.Do(func() { close(r.stop) })
	r.wg.Wait()
	r.rep.Close()
	r.srv.Close()
}

// Promote turns a caught-up replica into a primary under a new epoch: the
// passive repairer starts rebuilding locally, the engine's publish hook is
// claimed, and a fresh WAL (sequences restarting at 1) is opened. Other
// replicas pointed at the new primary observe the epoch change and resync.
// The caller must have stopped the replica's sync loop (its old source is
// dead or demoted); the replica's server and engine live on inside the
// returned Primary.
func (r *Replica) Promote() (*Primary, error) {
	r.once.Do(func() { close(r.stop) })
	r.wg.Wait()
	r.rep.Activate()
	p, err := NewPrimary(r.eng, r.srv, r.rep, r.Epoch()+1)
	if err != nil {
		return nil, fmt.Errorf("cluster: promote: %w", err)
	}
	// Fold any overlay-only failures into a rebuilt snapshot now that this
	// member owns rebuilds; a refused rebuild (would disconnect) is not
	// fatal — the repairer keeps retrying as churn continues.
	_ = p.rep.Flush()
	return p, nil
}
