package cluster

import (
	"math/rand"

	"strings"
	"testing"

	"routetab/internal/cluster/walstore"
	"routetab/internal/faultinject"
	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/serve"
)

// recoveryStack builds an engine/server/repairer trio over the deterministic
// test graph — calling it twice with the same seed models a restart that
// cold-rebuilds from the same topology input.
func recoveryStack(t *testing.T, n int, seed int64) (*serve.Engine, *serve.Server, *serve.Repairer) {
	t.Helper()
	eng, err := serve.NewEngine(testGraph(t, n, seed), "fulltable")
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(eng, serve.ServerOptions{})
	rep := serve.NewRepairer(srv, serve.RepairOptions{Debounce: -1})
	t.Cleanup(func() {
		rep.Close()
		srv.Close()
	})
	return eng, srv, rep
}

// missingEdges returns deterministic non-edges of g, used as safe churn
// (adding an edge can never disconnect the graph).
func missingEdges(g *graph.Graph, count int) [][2]int {
	var out [][2]int
	n := g.N()
	for u := 1; u <= n && len(out) < count; u++ {
		for v := u + 1; v <= n && len(out) < count; v++ {
			if !g.HasEdge(u, v) {
				out = append(out, [2]int{u, v})
			}
		}
	}
	return out
}

func mutateAdd(t *testing.T, p *Primary, e [2]int) {
	t.Helper()
	if _, err := p.Mutate(func(g *graph.Graph) error { return g.AddEdge(e[0], e[1]) }); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverFreshThenResumeAfterKill(t *testing.T) {
	fs := faultinject.NewMemFS()
	eng1, srv1, rep1 := recoveryStack(t, 24, 11)
	log1, rpt1, err := RecoverPrimaryLog(eng1, rep1, RecoverConfig{Dir: "w", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if !rpt1.Fresh || rpt1.Epoch != 1 || rpt1.EpochBumped {
		t.Fatalf("fresh recovery: %+v", rpt1)
	}
	p1, err := NewPrimaryAt(eng1, srv1, rep1, rpt1.Epoch, log1)
	if err != nil {
		t.Fatal(err)
	}
	edges := missingEdges(eng1.Current().Graph, 6)
	for _, e := range edges {
		mutateAdd(t, p1, e)
	}
	want, err := p1.FetchDigest()
	if err != nil {
		t.Fatal(err)
	}
	// kill -9: no CloseWAL, no seal — the disk stays as the last append
	// left it.
	log1.Abandon()
	p1.Close()

	eng2, srv2, rep2 := recoveryStack(t, 24, 11)
	log2, rpt2, err := RecoverPrimaryLog(eng2, rep2, RecoverConfig{Dir: "w", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if rpt2.EpochBumped || rpt2.Epoch != 1 {
		t.Fatalf("expected same-epoch resume, got %+v", rpt2)
	}
	if rpt2.Replayed != len(edges) {
		t.Fatalf("replayed %d publications, want %d", rpt2.Replayed, len(edges))
	}
	p2, err := NewPrimaryAt(eng2, srv2, rep2, rpt2.Epoch, log2)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	got, err := p2.FetchDigest()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("recovered digest %v, want %v", got, want)
	}
	// The resumed log continues densely and journals durably.
	before := log2.LastSeq()
	mutateAdd(t, p2, missingEdges(eng2.Current().Graph, 1)[0])
	if log2.LastSeq() != before+1 {
		t.Fatalf("frontier %d after publish, want %d", log2.LastSeq(), before+1)
	}
	if durable, failures, derr := log2.Durability(); !durable || failures != 0 {
		t.Fatalf("resumed log not durable: %v %d %v", durable, failures, derr)
	}
}

func TestRecoverTornTailResumesEpochAndDropsUnseenRecord(t *testing.T) {
	fs := faultinject.NewMemFS()
	eng1, srv1, rep1 := recoveryStack(t, 24, 13)
	log1, rpt1, err := RecoverPrimaryLog(eng1, rep1, RecoverConfig{Dir: "w", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	p1, err := NewPrimaryAt(eng1, srv1, rep1, rpt1.Epoch, log1)
	if err != nil {
		t.Fatal(err)
	}
	edges := missingEdges(eng1.Current().Graph, 5)
	for _, e := range edges[:4] {
		mutateAdd(t, p1, e)
	}
	want, err := p1.FetchDigest()
	if err != nil {
		t.Fatal(err)
	}
	durable := fs.JournalBytes()
	// One more publication, then power loss 6 bytes into its frame: the
	// record was never synced, so (fsync=always ordering) no replica ever
	// saw it.
	mutateAdd(t, p1, edges[4])
	log1.Abandon()
	p1.Close()
	clone := fs.CrashClone(durable + 6)

	eng2, srv2, rep2 := recoveryStack(t, 24, 13)
	log2, rpt2, err := RecoverPrimaryLog(eng2, rep2, RecoverConfig{Dir: "w", FS: clone})
	if err != nil {
		t.Fatal(err)
	}
	if rpt2.EpochBumped || rpt2.Epoch != 1 {
		t.Fatalf("torn tail under fsync=always must resume the epoch: %+v", rpt2)
	}
	if rpt2.TornBytes == 0 {
		t.Fatalf("expected a torn tail, got %+v", rpt2)
	}
	if rpt2.Replayed != 4 {
		t.Fatalf("replayed %d, want 4 (the unseen 5th record is gone)", rpt2.Replayed)
	}
	p2, err := NewPrimaryAt(eng2, srv2, rep2, rpt2.Epoch, log2)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	got, err := p2.FetchDigest()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("recovered digest %v, want pre-tear digest %v", got, want)
	}
}

func TestRecoverDirtyMarkerBumpsEpoch(t *testing.T) {
	fs := faultinject.NewMemFS()
	eng1, srv1, rep1 := recoveryStack(t, 16, 17)
	log1, rpt1, err := RecoverPrimaryLog(eng1, rep1, RecoverConfig{Dir: "w", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	p1, err := NewPrimaryAt(eng1, srv1, rep1, rpt1.Epoch, log1)
	if err != nil {
		t.Fatal(err)
	}
	mutateAdd(t, p1, missingEdges(eng1.Current().Graph, 1)[0])
	// Simulate wedged journaling: the log kept serving replicas while the
	// store stopped accepting appends.
	if err := log1.store.MarkDirty("test wedge"); err != nil {
		t.Fatal(err)
	}
	log1.Abandon()
	p1.Close()

	eng2, _, rep2 := recoveryStack(t, 16, 17)
	log2, rpt2, err := RecoverPrimaryLog(eng2, rep2, RecoverConfig{Dir: "w", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if !rpt2.EpochBumped || rpt2.Epoch != 2 {
		t.Fatalf("dirty marker must bump the epoch: %+v", rpt2)
	}
	if !strings.Contains(rpt2.Reason, "dirty") {
		t.Fatalf("reason %q", rpt2.Reason)
	}
	if log2.LastSeq() != 0 {
		t.Fatalf("bumped epoch must restart the WAL, frontier %d", log2.LastSeq())
	}
}

func TestRecoverWeakFsyncPolicyBumpsEpoch(t *testing.T) {
	fs := faultinject.NewMemFS()
	eng1, srv1, rep1 := recoveryStack(t, 16, 19)
	log1, rpt1, err := RecoverPrimaryLog(eng1, rep1, RecoverConfig{Dir: "w", FS: fs, Fsync: walstore.PolicyBatch})
	if err != nil {
		t.Fatal(err)
	}
	p1, err := NewPrimaryAt(eng1, srv1, rep1, rpt1.Epoch, log1)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range missingEdges(eng1.Current().Graph, 3) {
		mutateAdd(t, p1, e)
	}
	log1.Abandon()
	p1.Close()

	eng2, _, rep2 := recoveryStack(t, 16, 19)
	_, rpt2, err := RecoverPrimaryLog(eng2, rep2, RecoverConfig{Dir: "w", FS: fs, Fsync: walstore.PolicyBatch})
	if err != nil {
		t.Fatal(err)
	}
	if !rpt2.EpochBumped || rpt2.Epoch != 2 {
		t.Fatalf("batch-policy WAL must bump on recovery: %+v", rpt2)
	}
	// The engine still recovered the replayable prefix before bumping.
	if rpt2.Replayed == 0 {
		t.Fatalf("expected replay before bump: %+v", rpt2)
	}
}

func TestRecoverCRCMismatchBumpsEpoch(t *testing.T) {
	fs := faultinject.NewMemFS()
	store, err := walstore.Open("w", walstore.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SetEpoch(1); err != nil {
		t.Fatal(err)
	}
	// A structurally valid record whose DistCRC cannot match any rebuild.
	payload, err := marshalRecord(Record{Seq: 1, Kind: RecPublish, SnapSeq: 2, DistCRC: 0xDEADBEEF, Adds: [][2]int{{1, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Append(1, payload); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	eng, _, rep := recoveryStack(t, 16, 23)
	// Ensure edge (1,2) is absent so the mutation itself succeeds and only
	// the CRC check can object.
	if eng.Current().Graph.HasEdge(1, 2) {
		if _, err := eng.Mutate(func(g *graph.Graph) error { return g.RemoveEdge(1, 2) }); err != nil {
			t.Skipf("cannot clear edge (1,2): %v", err)
		}
	}
	before := eng.Current().Seq
	log2, rpt, err := RecoverPrimaryLog(eng, rep, RecoverConfig{Dir: "w", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if !rpt.EpochBumped || rpt.Epoch != 2 {
		t.Fatalf("CRC mismatch must bump the epoch: %+v", rpt)
	}
	if !strings.Contains(rpt.Reason, "replay failed") {
		t.Fatalf("reason %q", rpt.Reason)
	}
	if log2.LastSeq() != 0 {
		t.Fatalf("bumped WAL must restart, frontier %d", log2.LastSeq())
	}
	// The engine still serves a consistent state (the divergent mutation may
	// have applied; consistency, not equality with the dead WAL, is the
	// contract).
	if eng.Current().Seq < before {
		t.Fatal("engine went backwards")
	}
}

// tablesRecoveryStack is recoveryStack for the tables tier: a landmark-scheme
// engine over a sparse topology, cold-rebuilt deterministically on restart.
func tablesRecoveryStack(t *testing.T, n int, seed int64) (*serve.Engine, *serve.Server, *serve.Repairer) {
	t.Helper()
	g, err := gengraph.SparseConnected(n, 5, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := serve.NewTieredEngine(g, "landmark")
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(eng, serve.ServerOptions{})
	rep := serve.NewRepairer(srv, serve.RepairOptions{Debounce: -1})
	t.Cleanup(func() {
		rep.Close()
		srv.Close()
	})
	return eng, srv, rep
}

// TestRecoverTablesTierResumesEpoch: kill -9 a tables-tier primary and prove
// the next incarnation replays its RecPublishTables records forward — scheme
// tables verified per record — and resumes the same epoch.
func TestRecoverTablesTierResumesEpoch(t *testing.T) {
	fs := faultinject.NewMemFS()
	eng1, srv1, rep1 := tablesRecoveryStack(t, 48, 7)
	log1, rpt1, err := RecoverPrimaryLog(eng1, rep1, RecoverConfig{Dir: "w", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if !rpt1.Fresh || rpt1.Epoch != 1 {
		t.Fatalf("fresh recovery: %+v", rpt1)
	}
	p1, err := NewPrimaryAt(eng1, srv1, rep1, rpt1.Epoch, log1)
	if err != nil {
		t.Fatal(err)
	}
	edges := missingEdges(eng1.Current().Graph, 4)
	for _, e := range edges {
		mutateAdd(t, p1, e)
	}
	recs, err := log1.Since(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.Kind != RecPublishTables {
			t.Fatalf("record %d kind %v, want %v", rec.Seq, rec.Kind, RecPublishTables)
		}
	}
	want, err := p1.FetchDigest()
	if err != nil {
		t.Fatal(err)
	}
	if want.Tier != serve.TierTables {
		t.Fatalf("digest tier %q, want %q", want.Tier, serve.TierTables)
	}
	// kill -9: no CloseWAL, no seal.
	log1.Abandon()
	p1.Close()

	eng2, srv2, rep2 := tablesRecoveryStack(t, 48, 7)
	log2, rpt2, err := RecoverPrimaryLog(eng2, rep2, RecoverConfig{Dir: "w", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if rpt2.EpochBumped || rpt2.Epoch != 1 {
		t.Fatalf("expected same-epoch resume, got %+v", rpt2)
	}
	if rpt2.Replayed != len(edges) {
		t.Fatalf("replayed %d publications, want %d", rpt2.Replayed, len(edges))
	}
	p2, err := NewPrimaryAt(eng2, srv2, rep2, rpt2.Epoch, log2)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	got, err := p2.FetchDigest()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("recovered digest %v, want %v", got, want)
	}
}
