package walstore

import (
	"bytes"
	"testing"

	"routetab/internal/faultinject"
)

// TestCrashMatrixEveryByte is the crash-matrix table test: record a 50-entry
// append schedule under fsync=always (with rotations), then for every write
// boundary k — every byte the disk could have absorbed before power loss —
// clone the disk torn at k, recover, and assert the recovered state is
// exactly the reference prefix of durably appended records: never a torn
// record, never a lost durable one, never divergent bytes.
func TestCrashMatrixEveryByte(t *testing.T) {
	const records = 50
	ref := faultinject.NewMemFS()
	st, err := Open("w", Options{FS: ref, Fsync: PolicyAlways, SegmentBytes: 400})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetEpoch(1); err != nil {
		t.Fatal(err)
	}
	ps := payloads(records)
	// endAt[i] is the cumulative disk-byte offset at which record i+1 is
	// fully on disk (and synced: fsync=always syncs before Append returns).
	endAt := make([]int64, records)
	for i, p := range ps {
		if err := st.Append(uint64(i+1), p); err != nil {
			t.Fatalf("append %d: %v", i+1, err)
		}
		endAt[i] = ref.JournalBytes()
	}
	total := ref.JournalBytes()
	if names, _ := ref.ReadDir("w"); len(names) < 4 {
		t.Fatalf("schedule too small to rotate: %d segments", len(names))
	}

	for k := int64(0); k <= total; k++ {
		clone := ref.CrashClone(k)
		rst, err := Open("w", Options{FS: clone})
		if err != nil {
			t.Fatalf("k=%d: recovery failed: %v", k, err)
		}
		want := 0
		for want < records && endAt[want] <= k {
			want++
		}
		rec := rst.Recovery()
		if rec.Entries != uint64(want) {
			t.Fatalf("k=%d: recovered %d entries, want %d (report %+v)", k, rec.Entries, want, rec)
		}
		if want > 0 && (rec.FirstSeq != 1 || rec.LastSeq != uint64(want)) {
			t.Fatalf("k=%d: recovered window %d..%d, want 1..%d", k, rec.FirstSeq, rec.LastSeq, want)
		}
		next := uint64(1)
		err = rst.Replay(0, func(seq uint64, payload []byte) error {
			if seq != next {
				t.Fatalf("k=%d: replay gap at %d (want %d)", k, seq, next)
			}
			if !bytes.Equal(payload, ps[seq-1]) {
				t.Fatalf("k=%d: record %d diverges from reference", k, seq)
			}
			next++
			return nil
		})
		if err != nil {
			t.Fatalf("k=%d: replay: %v", k, err)
		}
		if next != uint64(want)+1 {
			t.Fatalf("k=%d: replayed %d records, want %d", k, next-1, want)
		}
	}
}

// TestCrashMatrixRecoveredStoreAppends spot-checks that a store recovered at
// an arbitrary tear can keep appending densely and survive a clean reopen.
func TestCrashMatrixRecoveredStoreAppends(t *testing.T) {
	ref := faultinject.NewMemFS()
	st, err := Open("w", Options{FS: ref, SegmentBytes: 300})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetEpoch(4); err != nil {
		t.Fatal(err)
	}
	ps := payloads(20)
	mustAppendAll(t, st, ps)
	total := ref.JournalBytes()
	for _, k := range []int64{0, 1, total / 3, total / 2, total - 1, total} {
		clone := ref.CrashClone(k)
		rst, err := Open("w", Options{FS: clone})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		next := rst.LastSeq() + 1
		if err := rst.Append(next, []byte("resume")); err != nil {
			t.Fatalf("k=%d: append after recovery: %v", k, err)
		}
		if err := rst.Close(); err != nil {
			t.Fatalf("k=%d: close: %v", k, err)
		}
		rst2, err := Open("w", Options{FS: clone})
		if err != nil {
			t.Fatalf("k=%d: reopen: %v", k, err)
		}
		if rec := rst2.Recovery(); !rec.Clean {
			t.Fatalf("k=%d: reopen not clean: %+v", k, rec)
		}
		if rst2.LastSeq() != next {
			t.Fatalf("k=%d: frontier %d, want %d", k, rst2.LastSeq(), next)
		}
	}
}
