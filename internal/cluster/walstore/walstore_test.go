package walstore

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"routetab/internal/faultinject"
)

func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		// Varied sizes, deterministic content.
		size := 1 + (i*37)%61
		p := make([]byte, size)
		for j := range p {
			p[j] = byte(faultinject.Mix64(uint64(i)<<16|uint64(j)) & 0xff)
		}
		out[i] = p
	}
	return out
}

func mustAppendAll(t *testing.T, st *Store, ps [][]byte) {
	t.Helper()
	for i, p := range ps {
		if err := st.Append(uint64(i+1), p); err != nil {
			t.Fatalf("append %d: %v", i+1, err)
		}
	}
}

func replayAll(t *testing.T, st *Store, from uint64) map[uint64][]byte {
	t.Helper()
	got := map[uint64][]byte{}
	prev := uint64(0)
	err := st.Replay(from, func(seq uint64, payload []byte) error {
		if prev != 0 && seq != prev+1 {
			t.Fatalf("replay gap: %d after %d", seq, prev)
		}
		prev = seq
		got[seq] = append([]byte(nil), payload...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestAppendReplayRoundtrip(t *testing.T) {
	fs := faultinject.NewMemFS()
	st, err := Open("w", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetEpoch(7); err != nil {
		t.Fatal(err)
	}
	ps := payloads(10)
	mustAppendAll(t, st, ps)
	if st.FirstSeq() != 1 || st.LastSeq() != 10 || st.Entries() != 10 {
		t.Fatalf("bounds: first=%d last=%d entries=%d", st.FirstSeq(), st.LastSeq(), st.Entries())
	}
	got := replayAll(t, st, 0)
	for i, p := range ps {
		if !bytes.Equal(got[uint64(i+1)], p) {
			t.Fatalf("payload %d mismatch", i+1)
		}
	}
	if got := replayAll(t, st, 6); len(got) != 5 {
		t.Fatalf("replay from 6: %d entries, want 5", len(got))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(11, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
}

func TestRotationAndReopen(t *testing.T) {
	fs := faultinject.NewMemFS()
	st, err := Open("w", Options{FS: fs, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetEpoch(3); err != nil {
		t.Fatal(err)
	}
	ps := payloads(40)
	mustAppendAll(t, st, ps)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := fs.ReadDir("w")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 3 {
		t.Fatalf("expected multiple segments, got %v", names)
	}

	st2, err := Open("w", Options{FS: fs, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	rec := st2.Recovery()
	if !rec.Clean || rec.Entries != 40 || rec.Epoch != 3 || rec.FirstSeq != 1 || rec.LastSeq != 40 {
		t.Fatalf("recovery after clean close: %+v", rec)
	}
	if rec.Policy != PolicyAlways {
		t.Fatalf("recovered policy %v", rec.Policy)
	}
	got := replayAll(t, st2, 0)
	if len(got) != 40 {
		t.Fatalf("recovered %d entries", len(got))
	}
	for i, p := range ps {
		if !bytes.Equal(got[uint64(i+1)], p) {
			t.Fatalf("payload %d mismatch after reopen", i+1)
		}
	}
	// Appends resume densely in a fresh segment.
	if err := st2.Append(40, []byte("dup")); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("duplicate seq: %v", err)
	}
	if err := st2.Append(42, []byte("gap")); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("gapped seq: %v", err)
	}
	if err := st2.Append(41, []byte("next")); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}

// tearTail opens a fault FS that crashes mid-write after budget extra bytes,
// returning the underlying MemFS for recovery.
func TestTornTailTruncated(t *testing.T) {
	fs := faultinject.NewMemFS()
	st, err := Open("w", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetEpoch(1); err != nil {
		t.Fatal(err)
	}
	ps := payloads(5)
	mustAppendAll(t, st, ps)
	durable := fs.JournalBytes()
	if err := st.Append(6, payloads(7)[6]); err != nil {
		t.Fatal(err)
	}
	// Power loss 5 bytes into record 6's frame.
	clone := fs.CrashClone(durable + 5)

	st2, err := Open("w", Options{FS: clone})
	if err != nil {
		t.Fatal(err)
	}
	rec := st2.Recovery()
	if rec.Clean || rec.TornBytes == 0 {
		t.Fatalf("expected torn recovery, got %+v", rec)
	}
	if rec.Entries != 5 || rec.LastSeq != 5 {
		t.Fatalf("recovered %d entries to seq %d, want 5", rec.Entries, rec.LastSeq)
	}
	got := replayAll(t, st2, 0)
	for i, p := range ps {
		if !bytes.Equal(got[uint64(i+1)], p) {
			t.Fatalf("payload %d corrupted by tail repair", i+1)
		}
	}
	// Idempotent: a second recovery over the repaired dir is clean.
	st3, err := Open("w", Options{FS: clone})
	if err != nil {
		t.Fatal(err)
	}
	if rec := st3.Recovery(); !rec.Clean || rec.Entries != 5 {
		t.Fatalf("second recovery not clean: %+v", rec)
	}
}

func TestHeaderlessTailRemoved(t *testing.T) {
	fs := faultinject.NewMemFS()
	st, err := Open("w", Options{FS: fs, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetEpoch(1); err != nil {
		t.Fatal(err)
	}
	// 20-byte payloads → 33-byte entry frames after the 23-byte segment
	// prefix: entries 1–2 fill the first segment past the 64-byte rotation
	// threshold, so record 3 seals it and opens a fresh segment.
	p := bytes.Repeat([]byte{0xAB}, 20)
	if err := st.Append(1, p); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(2, p); err != nil {
		t.Fatal(err)
	}
	durable := fs.JournalBytes()
	// Crash 3 bytes into the new segment's magic+header write.
	if err := st.Append(3, p); err != nil {
		t.Fatal(err)
	}
	clone := fs.CrashClone(durable + 3)
	st2, err := Open("w", Options{FS: clone})
	if err != nil {
		t.Fatal(err)
	}
	rec := st2.Recovery()
	if rec.DroppedSegments != 1 {
		t.Fatalf("expected headerless tail dropped, got %+v", rec)
	}
	if rec.LastSeq != 2 || rec.Entries != 2 {
		t.Fatalf("recovered to %d with %d entries, want 2", rec.LastSeq, rec.Entries)
	}
}

func TestTruncateRetention(t *testing.T) {
	fs := faultinject.NewMemFS()
	st, err := Open("w", Options{FS: fs, SegmentBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetEpoch(1); err != nil {
		t.Fatal(err)
	}
	mustAppendAll(t, st, payloads(30))
	segsBefore, _ := fs.ReadDir("w")
	if err := st.Truncate(20); err != nil {
		t.Fatal(err)
	}
	segsAfter, _ := fs.ReadDir("w")
	if len(segsAfter) >= len(segsBefore) {
		t.Fatalf("truncate removed nothing: %d → %d files", len(segsBefore), len(segsAfter))
	}
	first := st.FirstSeq()
	if first == 0 || first > 21 {
		t.Fatalf("FirstSeq after truncate = %d", first)
	}
	// Everything from the new first seq must still replay densely.
	got := replayAll(t, st, first)
	if uint64(len(got)) != 30-first+1 {
		t.Fatalf("replay from %d: %d entries", first, len(got))
	}
	// The active segment is never truncated even when fully covered.
	if err := st.Truncate(30); err != nil {
		t.Fatal(err)
	}
	if st.LastSeq() != 30 {
		t.Fatalf("frontier lost: %d", st.LastSeq())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: the retained window persists, and the next append is dense.
	st2, err := Open("w", Options{FS: fs, SegmentBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	if st2.LastSeq() != 30 {
		t.Fatalf("reopened frontier %d, want 30", st2.LastSeq())
	}
	if err := st2.Append(31, []byte("next")); err != nil {
		t.Fatal(err)
	}
}

func TestSetEpochAndReset(t *testing.T) {
	fs := faultinject.NewMemFS()
	st, err := Open("w", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetEpoch(2); err != nil {
		t.Fatal(err)
	}
	mustAppendAll(t, st, payloads(3))
	if err := st.SetEpoch(5); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("SetEpoch on non-empty: %v", err)
	}
	if err := st.Reset(9); err != nil {
		t.Fatal(err)
	}
	if st.Epoch() != 9 || st.LastSeq() != 0 || st.Entries() != 0 {
		t.Fatalf("post-reset state: epoch=%d last=%d", st.Epoch(), st.LastSeq())
	}
	names, _ := fs.ReadDir("w")
	if len(names) != 0 {
		t.Fatalf("reset left files: %v", names)
	}
	if err := st.Append(1, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open("w", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Epoch() != 9 || st2.LastSeq() != 1 {
		t.Fatalf("reopened epoch=%d last=%d, want 9/1", st2.Epoch(), st2.LastSeq())
	}
}

func TestDirtyMarker(t *testing.T) {
	fs := faultinject.NewMemFS()
	st, err := Open("w", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetEpoch(1); err != nil {
		t.Fatal(err)
	}
	mustAppendAll(t, st, payloads(2))
	if err := st.MarkDirty("journal wedged in test"); err != nil {
		t.Fatal(err)
	}
	st2, err := Open("w", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	rec := st2.Recovery()
	if !rec.Dirty || rec.Clean {
		t.Fatalf("dirty marker not surfaced: %+v", rec)
	}
	if err := st2.Reset(2); err != nil {
		t.Fatal(err)
	}
	st3, err := Open("w", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if rec := st3.Recovery(); rec.Dirty {
		t.Fatalf("reset did not clear the marker: %+v", rec)
	}
}

// failNthWriteFS fails the nth Write through the FS with a one-shot error.
type failNthWriteFS struct {
	faultinject.FS
	n     int
	count int
}

type failNthFile struct {
	faultinject.File
	fs *failNthWriteFS
}

func (f *failNthWriteFS) Create(name string) (faultinject.File, error) {
	file, err := f.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &failNthFile{File: file, fs: f}, nil
}

func (f *failNthFile) Write(p []byte) (int, error) {
	f.fs.count++
	if f.fs.count == f.fs.n {
		// Torn: half the frame reaches the disk.
		n, _ := f.File.Write(p[:len(p)/2])
		return n, fmt.Errorf("injected one-shot write failure")
	}
	return f.File.Write(p)
}

func TestAppendFailureRepairedAndRetryable(t *testing.T) {
	mem := faultinject.NewMemFS()
	// Writes: 1 = segment header, 2..4 = entries 1..3; fail entry 3.
	ffs := &failNthWriteFS{FS: mem, n: 4}
	st, err := Open("w", Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetEpoch(1); err != nil {
		t.Fatal(err)
	}
	ps := payloads(4)
	if err := st.Append(1, ps[0]); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(2, ps[1]); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(3, ps[2]); err == nil {
		t.Fatal("expected injected append failure")
	}
	// The torn frame was repaired: the same sequence can be retried and the
	// store is not wedged.
	if err := st.Append(3, ps[2]); err != nil {
		t.Fatalf("retry after repair: %v", err)
	}
	if err := st.Append(4, ps[3]); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open("w", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	rec := st2.Recovery()
	if !rec.Clean || rec.Entries != 4 || rec.LastSeq != 4 {
		t.Fatalf("recovery after repaired tear: %+v", rec)
	}
	got := replayAll(t, st2, 0)
	for i, p := range ps {
		if !bytes.Equal(got[uint64(i+1)], p) {
			t.Fatalf("payload %d mismatch", i+1)
		}
	}
}

func TestForeignEpochSuffixDropped(t *testing.T) {
	fs := faultinject.NewMemFS()
	st, err := Open("w", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetEpoch(1); err != nil {
		t.Fatal(err)
	}
	mustAppendAll(t, st, payloads(3))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Forge a continuation segment under a different epoch (as if a file
	// from another incarnation were copied in).
	other := faultinject.NewMemFS()
	st2, err := Open("x", Options{FS: other})
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.SetEpoch(2); err != nil {
		t.Fatal(err)
	}
	for i := 4; i <= 6; i++ {
		if err := st2.Append(uint64(i), []byte("foreign")); err != nil {
			t.Fatal(err)
		}
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := other.ReadDir("x")
	for _, name := range names {
		data, err := other.ReadFile("x/" + name)
		if err != nil {
			t.Fatal(err)
		}
		f, err := fs.Create("w/" + name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}

	st3, err := Open("w", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	rec := st3.Recovery()
	if rec.Epoch != 1 || rec.LastSeq != 3 || rec.DroppedSegments == 0 {
		t.Fatalf("foreign suffix survived: %+v", rec)
	}
}
