package walstore

import (
	"bytes"
	"testing"

	"routetab/internal/faultinject"
)

// buildSegmentBytes produces a well-formed segment file's bytes for fuzz
// seeding.
func buildSegmentBytes(tb testing.TB, entries int) []byte {
	tb.Helper()
	fs := faultinject.NewMemFS()
	st, err := Open("w", Options{FS: fs})
	if err != nil {
		tb.Fatal(err)
	}
	if err := st.SetEpoch(1); err != nil {
		tb.Fatal(err)
	}
	for i, p := range payloads(entries) {
		if err := st.Append(uint64(i+1), p); err != nil {
			tb.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		tb.Fatal(err)
	}
	names, err := fs.ReadDir("w")
	if err != nil || len(names) != 1 {
		tb.Fatalf("want one segment, got %v (%v)", names, err)
	}
	data, err := fs.ReadFile("w/" + names[0])
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzSegmentScan feeds arbitrary bytes to the segment decoder as the sole
// (and therefore tail) segment of a WAL directory. Recovery must never
// panic, must never surface an entry that fails frame verification (asserted
// by re-walking every recovered entry), and must converge: a second recovery
// over the repaired directory is clean and yields identical state.
func FuzzSegmentScan(f *testing.F) {
	valid := buildSegmentBytes(f, 8)
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)/2])                                // truncated tail
	f.Add(append(append([]byte(nil), valid...), valid[8:]...)) // duplicated frames
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-3] ^= 0x40 // flipped CRC/payload byte near the tail
	f.Add(flipped)
	flippedHdr := append([]byte(nil), valid...)
	flippedHdr[9] ^= 0x01 // flipped byte inside the SHDR frame
	f.Add(flippedHdr)

	f.Fuzz(func(t *testing.T, data []byte) {
		fs := faultinject.NewMemFS()
		file, err := fs.Create("w/wal-0000000000000001.seg")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := file.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := file.Close(); err != nil {
			t.Fatal(err)
		}
		st, err := Open("w", Options{FS: fs})
		if err != nil {
			t.Fatalf("recovery must repair, not fail: %v", err)
		}
		rec := st.Recovery()
		// Every recovered entry must re-verify through the framed decoder
		// and be dense from FirstSeq.
		next := rec.FirstSeq
		count := uint64(0)
		got := map[uint64][]byte{}
		if err := st.Replay(0, func(seq uint64, payload []byte) error {
			if seq != next {
				t.Fatalf("non-dense recovered entry %d (want %d)", seq, next)
			}
			got[seq] = append([]byte(nil), payload...)
			next++
			count++
			return nil
		}); err != nil {
			t.Fatalf("recovered entries failed re-verification: %v", err)
		}
		if count != rec.Entries {
			t.Fatalf("recovery reports %d entries, replay yields %d", rec.Entries, count)
		}
		if count > 0 && rec.LastSeq != rec.FirstSeq+count-1 {
			t.Fatalf("window %d..%d inconsistent with %d entries", rec.FirstSeq, rec.LastSeq, count)
		}
		// Convergence: recovery is idempotent once it has repaired the dir.
		st2, err := Open("w", Options{FS: fs})
		if err != nil {
			t.Fatalf("second recovery: %v", err)
		}
		rec2 := st2.Recovery()
		if !rec2.Clean {
			t.Fatalf("second recovery not clean: %+v (first %+v)", rec2, rec)
		}
		if rec2.Entries != rec.Entries || rec2.FirstSeq != rec.FirstSeq || rec2.LastSeq != rec.LastSeq || rec2.Epoch != rec.Epoch {
			t.Fatalf("recovery not idempotent: %+v then %+v", rec, rec2)
		}
		if err := st2.Replay(0, func(seq uint64, payload []byte) error {
			if !bytes.Equal(got[seq], payload) {
				t.Fatalf("entry %d bytes differ across recoveries", seq)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	})
}
