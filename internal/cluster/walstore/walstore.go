// Package walstore persists the cluster WAL as CRC-32C-framed append-only
// segment files, giving the primary's replication log a disk life that
// survives the process. Each segment is RTWALS1 magic, an SHDR header frame
// (epoch, first sequence, writer fsync policy), then WENT entry frames
// (sequence + opaque record payload), all framed by the same CRC-32C section
// codec as RTSNAP1 snapshots — torn and bit-flipped frames are rejected by
// the identical code path everywhere.
//
// Recovery is the crash half of the contract: Open scans segments in name
// order (names embed the first sequence, so name order is sequence order),
// keeps the longest valid prefix, truncates a torn tail on the final segment
// at the last valid frame boundary, and deletes anything after the first
// unusable point. Recovered segments are sealed; the next append always
// starts a fresh segment, so finalization is atomic and no file is ever
// reopened for append. The fsync policy of the previous writer is recorded
// in every segment header — recovery reports it so the crash-recovery state
// machine in internal/cluster can decide whether a torn tail was ever
// replica-visible (it cannot have been under PolicyAlways, because the store
// syncs before the in-memory log publishes).
package walstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"regexp"
	"sync"

	"routetab/internal/faultinject"
	"routetab/internal/serve"
)

// Errors.
var (
	// ErrClosed reports use of a closed store.
	ErrClosed = errors.New("walstore: store closed")
	// ErrWedged reports a store disabled by an unrepairable write failure;
	// appends stop so the on-disk WAL stays a dense, well-formed prefix.
	ErrWedged = errors.New("walstore: store wedged by unrepaired write failure")
	// ErrOutOfOrder reports a non-dense append sequence.
	ErrOutOfOrder = errors.New("walstore: non-dense append sequence")
	// ErrNotEmpty reports SetEpoch on a store that already has records.
	ErrNotEmpty = errors.New("walstore: epoch change on non-empty store")
	// ErrCorrupt reports an undecodable segment encountered outside recovery
	// (recovery itself repairs rather than fails).
	ErrCorrupt = errors.New("walstore: corrupt segment")
)

// Segment file format constants.
var (
	magic     = [8]byte{'R', 'T', 'W', 'A', 'L', 'S', '1', '\n'}
	tagSegHdr = [4]byte{'S', 'H', 'D', 'R'}
	tagEntry  = [4]byte{'W', 'E', 'N', 'T'}
)

var segNameRE = regexp.MustCompile(`^wal-[0-9a-f]{16}\.seg$`)

// Defaults.
const (
	DefaultSegmentBytes = 1 << 20
	DefaultBatchEvery   = 32
)

// Policy selects when appended entries are fsynced.
type Policy uint8

// Fsync policies. PolicyAlways syncs every append (the only policy under
// which a crashed primary may resume its epoch); PolicyBatch syncs every
// BatchEvery appends and at rotation/close; PolicyOff syncs only at
// rotation/close.
const (
	PolicyAlways Policy = iota
	PolicyBatch
	PolicyOff
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyAlways:
		return "always"
	case PolicyBatch:
		return "batch"
	case PolicyOff:
		return "off"
	}
	return fmt.Sprintf("policy-%d", uint8(p))
}

// ParsePolicy parses "always", "batch", or "off".
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return PolicyAlways, nil
	case "batch":
		return PolicyBatch, nil
	case "off":
		return PolicyOff, nil
	}
	return 0, fmt.Errorf("walstore: unknown fsync policy %q (want always|batch|off)", s)
}

// Options configures a store.
type Options struct {
	// FS is the filesystem seam; nil means the operating system.
	FS faultinject.FS
	// Fsync is the write-side durability policy (default PolicyAlways).
	Fsync Policy
	// SegmentBytes is the rotation threshold (default 1 MiB).
	SegmentBytes int
	// BatchEvery is the PolicyBatch sync interval in appends (default 32).
	BatchEvery int
}

// Recovery reports what Open found and repaired.
type Recovery struct {
	Segments        int    // segment files retained
	Entries         uint64 // entries retained
	FirstSeq        uint64 // lowest retained sequence (0 when empty)
	LastSeq         uint64 // highest retained sequence (0 when empty)
	Epoch           uint64 // epoch recorded in the retained headers
	Policy          Policy // fsync policy of the previous writer's final segment
	TornBytes       int64  // bytes truncated from the final segment's torn tail
	DroppedSegments int    // unusable files deleted (headerless tails, corrupt suffix)
	Dirty           bool   // previous writer marked the WAL dirty (wedged journaling)
	Clean           bool   // nothing truncated, dropped, or dirty
}

type segMeta struct {
	name    string
	first   uint64
	last    uint64
	entries uint64
}

// Store is a segmented append-only WAL. All methods are safe for concurrent
// use; Replay must not re-enter the store from its callback.
type Store struct {
	dir  string
	fs   faultinject.FS
	opts Options

	mu       sync.Mutex
	segs     []segMeta
	epoch    uint64
	first    uint64
	last     uint64
	entries  uint64
	cur      faultinject.File
	curName  string
	curMeta  segMeta
	curBytes int64
	unsynced int
	wedged   error
	closed   bool
	rec      Recovery
}

// dirtyMarker is the file a wedged writer leaves behind so recovery knows
// replica-visible records may have outrun the durable WAL.
const dirtyMarker = "dirty"

// Open scans dir, repairs it per the recovery rules in the package comment,
// and returns a store whose recovered segments are sealed. Only I/O errors
// fail Open; corruption is repaired and reported via Recovery.
func Open(dir string, opts Options) (*Store, error) {
	if opts.FS == nil {
		opts.FS = faultinject.OSFS{}
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.BatchEvery <= 0 {
		opts.BatchEvery = DefaultBatchEvery
	}
	s := &Store{dir: dir, fs: opts.FS, opts: opts}
	if err := s.fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("walstore: mkdir %s: %w", dir, err)
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

type scannedSeg struct {
	name      string
	size      int64
	hdrOK     bool
	epoch     uint64
	policy    Policy
	first     uint64
	lastSeq   uint64
	entries   uint64
	goodBytes int64
	torn      bool
}

// readFrameAt decodes one CRC-framed section at data[off:], returning the
// payload and the offset one past the frame. The declared length is bounded
// by the remaining bytes before ReadFrame allocates, so a corrupt length
// field in a torn tail cannot demand a huge buffer.
func readFrameAt(data []byte, off int, tag [4]byte) ([]byte, int, error) {
	rem := len(data) - off
	if rem < 12 {
		return nil, off, io.ErrUnexpectedEOF
	}
	if length := binary.LittleEndian.Uint32(data[off+4 : off+8]); int64(length) > int64(rem-12) {
		return nil, off, io.ErrUnexpectedEOF
	}
	r := bytes.NewReader(data[off:])
	payload, err := serve.ReadFrame(r, tag)
	if err != nil {
		return nil, off, err
	}
	return payload, off + (len(data) - off - r.Len()), nil
}

// scanSegment walks one segment file. Entries stop at the first frame that
// fails CRC/structural checks or breaks sequence density; goodBytes is the
// byte offset of the last valid frame boundary.
func scanSegment(data []byte) scannedSeg {
	s := scannedSeg{size: int64(len(data))}
	if len(data) < len(magic) || !bytes.Equal(data[:len(magic)], magic[:]) {
		return s
	}
	hdr, off, err := readFrameAt(data, len(magic), tagSegHdr)
	if err != nil {
		return s
	}
	hr := bytes.NewReader(hdr)
	epoch, err1 := binary.ReadUvarint(hr)
	first, err2 := binary.ReadUvarint(hr)
	pol, err3 := hr.ReadByte()
	if err1 != nil || err2 != nil || err3 != nil || hr.Len() != 0 || first == 0 || Policy(pol) > PolicyOff {
		return s
	}
	s.hdrOK, s.epoch, s.first, s.policy, s.goodBytes = true, epoch, first, Policy(pol), int64(off)
	next := first
	for off < len(data) {
		payload, end, err := readFrameAt(data, off, tagEntry)
		if err != nil {
			s.torn = true
			return s
		}
		seq, n := binary.Uvarint(payload)
		if n <= 0 || seq != next {
			// Duplicated, reordered, or malformed entry: treat it as the
			// tear point — everything before it is still a valid prefix.
			s.torn = true
			return s
		}
		s.entries++
		s.lastSeq = seq
		s.goodBytes = int64(end)
		next = seq + 1
		off = end
	}
	return s
}

// recover implements Open's scan-repair-seal pass.
func (s *Store) recover() error {
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("walstore: scan %s: %w", s.dir, err)
	}
	var scanned []scannedSeg
	dirty := false
	for _, name := range names {
		if name == dirtyMarker {
			dirty = true
			continue
		}
		if !segNameRE.MatchString(name) {
			continue
		}
		full := filepath.Join(s.dir, name)
		data, err := s.fs.ReadFile(full)
		if err != nil {
			return fmt.Errorf("walstore: read %s: %w", full, err)
		}
		sc := scanSegment(data)
		sc.name = full
		scanned = append(scanned, sc)
	}
	var kept []scannedSeg
	dropFrom := len(scanned)
	expect := uint64(0)
	for i, sc := range scanned {
		lastFile := i == len(scanned)-1
		usable := sc.hdrOK
		if usable && len(kept) > 0 && (sc.epoch != kept[0].epoch || sc.first != expect) {
			usable = false
		}
		if usable && !lastFile && (sc.torn || sc.entries == 0) {
			// An interior segment must be complete: the writer seals a
			// segment before opening the next, so a torn or empty interior
			// file means external corruption — cut the log here.
			usable = false
		}
		if usable && lastFile && sc.entries == 0 {
			// Crash between segment creation and first entry: the file
			// holds no data, drop it.
			usable = false
		}
		if !usable {
			dropFrom = i
			break
		}
		kept = append(kept, sc)
		expect = sc.lastSeq + 1
	}
	dropped := 0
	for _, sc := range scanned[dropFrom:] {
		if err := s.fs.Remove(sc.name); err != nil {
			return fmt.Errorf("walstore: drop %s: %w", sc.name, err)
		}
		dropped++
	}
	var torn int64
	if n := len(kept); n > 0 && kept[n-1].torn {
		tail := kept[n-1]
		torn = tail.size - tail.goodBytes
		if err := s.fs.Truncate(tail.name, tail.goodBytes); err != nil {
			return fmt.Errorf("walstore: truncate torn tail %s: %w", tail.name, err)
		}
	}
	if dropped > 0 || torn > 0 {
		if err := s.fs.SyncDir(s.dir); err != nil {
			return fmt.Errorf("walstore: sync dir %s: %w", s.dir, err)
		}
	}
	for _, sc := range kept {
		s.segs = append(s.segs, segMeta{name: sc.name, first: sc.first, last: sc.lastSeq, entries: sc.entries})
		s.entries += sc.entries
	}
	if len(kept) > 0 {
		s.epoch = kept[0].epoch
		s.first = kept[0].first
		s.last = kept[len(kept)-1].lastSeq
		s.rec.Policy = kept[len(kept)-1].policy
	}
	s.rec.Segments = len(kept)
	s.rec.Entries = s.entries
	s.rec.FirstSeq = s.first
	s.rec.LastSeq = s.last
	s.rec.Epoch = s.epoch
	s.rec.TornBytes = torn
	s.rec.DroppedSegments = dropped
	s.rec.Dirty = dirty
	s.rec.Clean = torn == 0 && dropped == 0 && !dirty
	return nil
}

// Recovery returns what Open found and repaired.
func (s *Store) Recovery() Recovery {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec
}

// Epoch returns the store's epoch (0 before SetEpoch on a virgin store).
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// FirstSeq returns the lowest retained sequence, 0 when nothing is retained.
func (s *Store) FirstSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.first
}

// LastSeq returns the highest sequence ever appended or recovered (0 when
// the store has never held a record).
func (s *Store) LastSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// Entries returns the number of retained entries.
func (s *Store) Entries() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.entries
}

// SetEpoch stamps the epoch used in segment headers. It is only legal while
// the store holds no records (a virgin directory or right after Reset).
func (s *Store) SetEpoch(epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.last != 0 || len(s.segs) > 0 || s.cur != nil {
		return ErrNotEmpty
	}
	s.epoch = epoch
	return nil
}

// Reset deletes every segment and the dirty marker, clears all state, and
// stamps a new epoch — the epoch-bump path of the crash-recovery state
// machine.
func (s *Store) Reset(epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.cur != nil {
		if err := s.cur.Close(); err != nil {
			return fmt.Errorf("walstore: reset close active: %w", err)
		}
		if err := s.fs.Remove(s.curName); err != nil {
			return fmt.Errorf("walstore: reset remove active: %w", err)
		}
		s.cur, s.curName, s.curBytes = nil, "", 0
	}
	for _, seg := range s.segs {
		if err := s.fs.Remove(seg.name); err != nil {
			return fmt.Errorf("walstore: reset remove %s: %w", seg.name, err)
		}
	}
	if s.rec.Dirty {
		if err := s.fs.Remove(filepath.Join(s.dir, dirtyMarker)); err != nil {
			return fmt.Errorf("walstore: reset remove dirty marker: %w", err)
		}
		s.rec.Dirty = false
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return fmt.Errorf("walstore: reset sync dir: %w", err)
	}
	s.segs, s.first, s.last, s.entries, s.unsynced = nil, 0, 0, 0, 0
	s.wedged = nil
	s.epoch = epoch
	return nil
}

// MarkDirty durably drops a marker file recording that journaling wedged
// while the in-memory log kept publishing: replica-visible records may have
// outrun the durable WAL, so the next recovery must bump the epoch.
func (s *Store) MarkDirty(reason string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	name := filepath.Join(s.dir, dirtyMarker)
	f, err := s.fs.Create(name)
	if err != nil {
		return fmt.Errorf("walstore: dirty marker: %w", err)
	}
	if _, err := f.Write([]byte(reason + "\n")); err != nil {
		if cerr := f.Close(); cerr != nil {
			return fmt.Errorf("walstore: dirty marker write: %w (close: %v)", err, cerr)
		}
		return fmt.Errorf("walstore: dirty marker write: %w", err)
	}
	if err := f.Sync(); err != nil {
		if cerr := f.Close(); cerr != nil {
			return fmt.Errorf("walstore: dirty marker sync: %w (close: %v)", err, cerr)
		}
		return fmt.Errorf("walstore: dirty marker sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("walstore: dirty marker close: %w", err)
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return fmt.Errorf("walstore: dirty marker dir sync: %w", err)
	}
	s.rec.Dirty = true
	return nil
}

func segName(dir string, first uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.seg", first))
}

// buildFrame frames payload with tag via the shared section codec.
func buildFrame(tag [4]byte, payload []byte) ([]byte, error) {
	var buf bytes.Buffer
	if err := serve.WriteFrame(&buf, tag, payload); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// openSegmentLocked creates a fresh segment whose first entry will be seq,
// writing magic and header in a single write so a crash leaves either a
// recognisable header or a file recovery deletes.
func (s *Store) openSegmentLocked(seq uint64) error {
	name := segName(s.dir, seq)
	var hdr bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	hdr.Write(tmp[:binary.PutUvarint(tmp[:], s.epoch)])
	hdr.Write(tmp[:binary.PutUvarint(tmp[:], seq)])
	hdr.WriteByte(byte(s.opts.Fsync))
	frame, err := buildFrame(tagSegHdr, hdr.Bytes())
	if err != nil {
		return err
	}
	prefix := append(append([]byte(nil), magic[:]...), frame...)
	f, err := s.fs.Create(name)
	if err != nil {
		return fmt.Errorf("walstore: create %s: %w", name, err)
	}
	if n, err := f.Write(prefix); err != nil || n != len(prefix) {
		if err == nil {
			err = io.ErrShortWrite
		}
		if cerr := f.Close(); cerr != nil {
			return fmt.Errorf("walstore: segment header %s: %w (close: %v)", name, err, cerr)
		}
		if rerr := s.fs.Remove(name); rerr != nil {
			s.wedged = fmt.Errorf("%w: headerless segment %s not removable: %v", ErrWedged, name, rerr)
		}
		return fmt.Errorf("walstore: segment header %s: %w", name, err)
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		if cerr := f.Close(); cerr != nil {
			return fmt.Errorf("walstore: sync dir for %s: %w (close: %v)", name, err, cerr)
		}
		if rerr := s.fs.Remove(name); rerr != nil {
			s.wedged = fmt.Errorf("%w: unsynced segment %s not removable: %v", ErrWedged, name, rerr)
		}
		return fmt.Errorf("walstore: sync dir for %s: %w", name, err)
	}
	s.cur, s.curName, s.curBytes = f, name, int64(len(prefix))
	s.curMeta = segMeta{name: name, first: seq, last: seq - 1}
	return nil
}

// sealLocked syncs and closes the active segment — atomic finalization: a
// sealed segment is complete by construction and is never written again.
func (s *Store) sealLocked() error {
	if s.cur == nil {
		return nil
	}
	if err := s.cur.Sync(); err != nil {
		s.wedged = fmt.Errorf("%w: seal sync %s: %v", ErrWedged, s.curName, err)
		return s.wedged
	}
	if err := s.cur.Close(); err != nil {
		s.wedged = fmt.Errorf("%w: seal close %s: %v", ErrWedged, s.curName, err)
		return s.wedged
	}
	s.segs = append(s.segs, s.curMeta)
	s.cur, s.curName, s.curBytes, s.unsynced = nil, "", 0, 0
	return nil
}

// repairTearLocked cuts a torn frame off the active segment after a failed
// append: the valid prefix is sealed (or the file removed when empty) so the
// store can keep appending into a fresh segment.
func (s *Store) repairTearLocked() error {
	cerr := s.cur.Close()
	name, meta, good := s.curName, s.curMeta, s.curBytes
	s.cur, s.curName, s.curBytes, s.unsynced = nil, "", 0, 0
	if meta.entries == 0 {
		if err := s.fs.Remove(name); err != nil {
			return err
		}
	} else {
		if err := s.fs.Truncate(name, good); err != nil {
			return err
		}
		s.segs = append(s.segs, meta)
	}
	return cerr
}

// Append journals one entry under the configured fsync policy. Sequences
// must be dense; the first append after Open or Reset fixes the base. On a
// torn write the store repairs the tail and returns the write error — the
// same sequence may be retried; if repair itself fails the store wedges.
func (s *Store) Append(seq uint64, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.wedged != nil {
		return s.wedged
	}
	if seq == 0 || (s.last != 0 && seq != s.last+1) {
		return fmt.Errorf("%w: append %d after %d", ErrOutOfOrder, seq, s.last)
	}
	if s.cur != nil && s.curBytes >= int64(s.opts.SegmentBytes) {
		if err := s.sealLocked(); err != nil {
			return err
		}
	}
	if s.cur == nil {
		if err := s.openSegmentLocked(seq); err != nil {
			return err
		}
	}
	var ent bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	ent.Write(tmp[:binary.PutUvarint(tmp[:], seq)])
	ent.Write(payload)
	frame, err := buildFrame(tagEntry, ent.Bytes())
	if err != nil {
		return err
	}
	if n, werr := s.cur.Write(frame); werr != nil || n != len(frame) {
		if werr == nil {
			werr = io.ErrShortWrite
		}
		if rerr := s.repairTearLocked(); rerr != nil {
			s.wedged = fmt.Errorf("%w: torn append seq %d unrepaired: %v (write: %v)", ErrWedged, seq, rerr, werr)
			return s.wedged
		}
		return fmt.Errorf("walstore: append seq %d: %w", seq, werr)
	}
	s.curBytes += int64(len(frame))
	s.curMeta.last = seq
	s.curMeta.entries++
	if s.first == 0 {
		s.first = seq
	}
	s.last = seq
	s.entries++
	switch s.opts.Fsync {
	case PolicyAlways:
		if err := s.cur.Sync(); err != nil {
			// The frame is written but its durability is unknown; under
			// PolicyAlways that breaks the visible⊆durable invariant, so
			// fail-stop.
			s.wedged = fmt.Errorf("%w: sync seq %d: %v", ErrWedged, seq, err)
			return s.wedged
		}
	case PolicyBatch:
		s.unsynced++
		if s.unsynced >= s.opts.BatchEvery {
			if err := s.cur.Sync(); err != nil {
				s.wedged = fmt.Errorf("%w: batch sync at seq %d: %v", ErrWedged, seq, err)
				return s.wedged
			}
			s.unsynced = 0
		}
	}
	return nil
}

// Sync forces the active segment to disk regardless of policy.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.wedged != nil {
		return s.wedged
	}
	if s.cur == nil {
		return nil
	}
	if err := s.cur.Sync(); err != nil {
		s.wedged = fmt.Errorf("%w: sync %s: %v", ErrWedged, s.curName, err)
		return s.wedged
	}
	s.unsynced = 0
	return nil
}

// Replay streams every retained entry with sequence ≥ from through fn in
// order. The callback must not re-enter the store.
func (s *Store) Replay(from uint64, fn func(seq uint64, payload []byte) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	files := make([]segMeta, 0, len(s.segs)+1)
	files = append(files, s.segs...)
	if s.cur != nil {
		files = append(files, s.curMeta)
	}
	for _, seg := range files {
		if seg.entries == 0 || seg.last < from {
			continue
		}
		data, err := s.fs.ReadFile(seg.name)
		if err != nil {
			return fmt.Errorf("walstore: replay read %s: %w", seg.name, err)
		}
		sc := scanSegment(data)
		if !sc.hdrOK || sc.torn || sc.entries < seg.entries {
			return fmt.Errorf("%w: %s changed under replay", ErrCorrupt, seg.name)
		}
		// Re-walk the entries, this time handing payloads out.
		pos := len(magic)
		_, pos, err = readFrameAt(data, pos, tagSegHdr)
		if err != nil {
			return fmt.Errorf("%w: %s header", ErrCorrupt, seg.name)
		}
		for pos < int(sc.goodBytes) {
			payload, end, err := readFrameAt(data, pos, tagEntry)
			if err != nil {
				return fmt.Errorf("%w: %s entry at %d", ErrCorrupt, seg.name, pos)
			}
			seq, n := binary.Uvarint(payload)
			if n <= 0 {
				return fmt.Errorf("%w: %s entry seq at %d", ErrCorrupt, seg.name, pos)
			}
			if seq >= from {
				if err := fn(seq, payload[n:]); err != nil {
					return err
				}
			}
			pos = end
		}
	}
	return nil
}

// Truncate deletes sealed segments wholly covered by upTo (every entry
// sequence ≤ upTo). The active segment is never touched, so truncation is
// segment-granular and lazy — exactly the -wal-keep retention semantics.
func (s *Store) Truncate(upTo uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	removed := 0
	for len(s.segs) > 0 && s.segs[0].last <= upTo {
		seg := s.segs[0]
		if err := s.fs.Remove(seg.name); err != nil {
			return fmt.Errorf("walstore: truncate remove %s: %w", seg.name, err)
		}
		s.entries -= seg.entries
		s.segs = s.segs[1:]
		removed++
	}
	if removed == 0 {
		return nil
	}
	switch {
	case len(s.segs) > 0:
		s.first = s.segs[0].first
	case s.cur != nil && s.curMeta.entries > 0:
		s.first = s.curMeta.first
	default:
		s.first = 0
	}
	if s.opts.Fsync != PolicyOff {
		if err := s.fs.SyncDir(s.dir); err != nil {
			return fmt.Errorf("walstore: truncate sync dir: %w", err)
		}
	}
	return nil
}

// Close seals the active segment and finalizes the store. Further use
// returns ErrClosed. Close is not idempotent on error — a failed seal
// wedges, and the error reports what was lost.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	err := s.sealLocked()
	s.closed = true
	return err
}
