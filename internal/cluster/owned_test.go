package cluster

import (
	"errors"
	"testing"

	"routetab/internal/keyspace"
	"routetab/internal/serve"
)

// TestOwnedRecordSet: the bitmap round-trips through a RecOwned record,
// OwnedN == 0 decodes as a lifted restriction, and malformed bitmaps or
// wrong-kind records are rejected.
func TestOwnedRecordSet(t *testing.T) {
	want, err := keyspace.New(70)
	if err != nil {
		t.Fatal(err)
	}
	for u := 1; u <= 35; u++ {
		want.Add(u)
	}
	rec := Record{Kind: RecOwned, OwnedN: 70, Owned: want.Words()}
	got, err := rec.OwnedSet()
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || !got.Equal(want) {
		t.Fatalf("decoded set %v, want %v", got, want)
	}

	lift := Record{Kind: RecOwned}
	if set, err := lift.OwnedSet(); err != nil || set != nil {
		t.Fatalf("lift record: set=%v err=%v, want nil/nil", set, err)
	}

	if _, err := (&Record{Kind: RecPublish}).OwnedSet(); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("OwnedSet on publish record: %v, want ErrBadRecord", err)
	}
	// A set bit past n (tail garbage) must not decode into a keyspace.
	bad := Record{Kind: RecOwned, OwnedN: 70, Owned: []uint64{0, 1 << 63}}
	if _, err := bad.OwnedSet(); err == nil {
		t.Fatal("tail garbage in owned bitmap accepted")
	}
}

// TestOwnedHandoverReplication: a keyspace handover on a tables-tier primary
// ships to the replica as one RecOwned WAL record — no resync — after which
// the replica enforces the restriction on its own serving path, follows
// further churn under the restriction, and replays the lift the same way.
func TestOwnedHandoverReplication(t *testing.T) {
	const n = 64
	p := testTablesPrimary(t, n, 3)
	r, err := JoinReplica(p, ReplicaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	requireConverged(t, p, r)

	owned, err := keyspace.New(n)
	if err != nil {
		t.Fatal(err)
	}
	for u := 1; u <= n/2; u++ {
		owned.Add(u)
	}
	if _, err := p.Engine().SetOwned(owned); err != nil {
		t.Fatal(err)
	}
	syncOK(t, r)
	requireConverged(t, p, r)
	applied, resyncs, _ := r.Stats()
	if applied != 1 || resyncs != 0 {
		t.Fatalf("handover: applied=%d resyncs=%d, want 1/0 (log shipping, not resync)", applied, resyncs)
	}
	recs, err := p.Log().Since(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Kind != RecOwned {
		t.Fatalf("WAL after handover: %+v, want one RecOwned", recs)
	}
	if got := r.Engine().Owned(); got == nil || !got.Equal(owned) {
		t.Fatalf("replica owned = %v, want %v", got, owned)
	}

	// The replica's server now refuses sources outside the shard and keeps
	// answering for owned ones.
	out := make([]serve.Result, 2)
	if err := r.Server().LookupBatch([][2]int{{n - 1, 1}, {2, n - 1}}, out); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(out[0].Err, serve.ErrWrongShard) {
		t.Fatalf("non-owned source answered: %+v", out[0])
	}
	if out[1].Err != nil {
		t.Fatalf("owned source refused: %+v", out[1])
	}

	// Churn under the restriction still log-ships and converges to
	// byte-identical restricted tables.
	e := absentEdge(t, p)
	for i := 0; i < 3; i++ {
		toggleEdge(t, p, e)
		syncOK(t, r)
		requireConverged(t, p, r)
	}
	if applied, resyncs, _ = r.Stats(); applied != 4 || resyncs != 0 {
		t.Fatalf("churn under restriction: applied=%d resyncs=%d, want 4/0", applied, resyncs)
	}

	// Lifting the restriction replays the same way (OwnedN == 0).
	if _, err := p.Engine().SetOwned(nil); err != nil {
		t.Fatal(err)
	}
	syncOK(t, r)
	requireConverged(t, p, r)
	if got := r.Engine().Owned(); got != nil {
		t.Fatalf("replica owned after lift = %v, want nil", got)
	}
	if err := r.Server().LookupBatch([][2]int{{n - 1, 1}}, out[:1]); err != nil {
		t.Fatal(err)
	}
	if out[0].Err != nil {
		t.Fatalf("source refused after lift: %+v", out[0])
	}
}

// TestOwnedHandoverSurvivesPromotion: a replica that followed a handover can
// be promoted and keeps enforcing (and journaling under) the restriction.
func TestOwnedHandoverSurvivesPromotion(t *testing.T) {
	const n = 48
	p := testTablesPrimary(t, n, 11)
	r, err := JoinReplica(p, ReplicaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	owned, err := keyspace.New(n)
	if err != nil {
		t.Fatal(err)
	}
	for u := 1; u <= n/3; u++ {
		owned.Add(u)
	}
	if _, err := p.Engine().SetOwned(owned); err != nil {
		t.Fatal(err)
	}
	syncOK(t, r)

	p.Close()
	p2, err := r.Promote()
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := p2.Engine().Owned(); got == nil || !got.Equal(owned) {
		t.Fatalf("promoted primary owned = %v, want %v", got, owned)
	}
	if p2.Epoch() != 2 {
		t.Fatalf("promoted epoch = %d, want 2", p2.Epoch())
	}
	// Mutations under the new primary keep the restriction.
	toggleEdge(t, p2, absentEdge(t, p2))
	if got := p2.Engine().Owned(); got == nil || !got.Equal(owned) {
		t.Fatalf("owned lost across post-promotion mutation: %v", got)
	}
}
