// Package core is the top-level orchestration of the library: given a graph,
// a cost model, and a stretch budget, it certifies the graph and builds the
// paper-optimal routing scheme for that cell of Table 1.
//
// The dispatch mirrors the paper's results:
//
//	stretch 1, model II            → Theorem 1 compact scheme (6n bits/node)
//	stretch 1, model IB            → Theorem 1 compact scheme, IB variant
//	stretch 1, model IA            → trivial full table (optimal by Thm 8)
//	stretch 1, model II ∧ γ        → Theorem 2 label scheme (O(n log² n))
//	1.5 ≤ stretch < 2, model II    → Theorem 3 centre scheme (O(n log n))
//	2 ≤ stretch < (c+3)log n, II   → Theorem 4 hub scheme (n loglog n + 6n)
//	stretch ≥ (c+3)log n, model II → Theorem 5 walker (O(n))
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"routetab/internal/graph"
	"routetab/internal/kolmo"
	"routetab/internal/models"
	"routetab/internal/routing"
	"routetab/internal/schemes/centers"
	"routetab/internal/schemes/compact"
	"routetab/internal/schemes/fulltable"
	"routetab/internal/schemes/hub"
	"routetab/internal/schemes/labels"
	"routetab/internal/schemes/walker"
	"routetab/internal/shortestpath"
)

// ErrNotCertified indicates the graph failed randomness certification and
// Options.RequireCertified was set.
var ErrNotCertified = errors.New("core: graph failed c·log n-randomness certification")

// Options configures Build.
type Options struct {
	// Model is the cost model to target.
	Model models.Model
	// MaxStretch is the stretch budget (≥ 1). 1 requests shortest paths.
	MaxStretch float64
	// C is the randomness parameter (default 3).
	C float64
	// RequireCertified makes Build fail unless the graph passes full
	// c·log n-randomness certification. Otherwise the certificate is
	// attached to the result but only hard construction errors abort.
	RequireCertified bool
	// PreferLabels selects the Theorem 2 scheme for shortest-path routing
	// under II ∧ γ (minimal space, labels charged) instead of Theorem 1.
	PreferLabels bool
	// Ports supplies the (fixed) port assignment for model IA. Ignored
	// elsewhere: IB/II constructions use sorted ports.
	Ports *graph.Ports
}

// Result is a built scheme with its paperwork.
type Result struct {
	Scheme routing.Scheme
	// Ports is the port assignment the scheme was built against.
	Ports *graph.Ports
	// Space is the model-accounted storage.
	Space routing.Space
	// Certificate is the randomness certificate of the input graph.
	Certificate *kolmo.Certificate
	// Theorem names the construction used.
	Theorem string
}

// Build certifies g and constructs the optimal scheme for the requested
// model and stretch budget.
func Build(g *graph.Graph, opts Options) (*Result, error) {
	if !opts.Model.Valid() {
		return nil, fmt.Errorf("core: invalid model %v", opts.Model)
	}
	if opts.MaxStretch < 1 {
		return nil, fmt.Errorf("core: stretch budget %v < 1", opts.MaxStretch)
	}
	c := opts.C
	if c <= 0 {
		c = 3
	}
	cert, err := kolmo.Certify(g, c)
	if err != nil && !errors.Is(err, kolmo.ErrNotApplicable) {
		return nil, err
	}
	if opts.RequireCertified && (cert == nil || !cert.OK()) {
		return nil, fmt.Errorf("%w: %v", ErrNotCertified, cert)
	}

	scheme, ports, theorem, err := dispatch(g, opts, c)
	if err != nil {
		return nil, err
	}
	space, err := routing.MeasureSpace(scheme, opts.Model)
	if err != nil {
		return nil, err
	}
	return &Result{
		Scheme:      scheme,
		Ports:       ports,
		Space:       space,
		Certificate: cert,
		Theorem:     theorem,
	}, nil
}

func dispatch(g *graph.Graph, opts Options, c float64) (routing.Scheme, *graph.Ports, string, error) {
	logStretch := (c + 3) * math.Log2(math.Max(float64(g.N()), 2))
	switch {
	case opts.MaxStretch >= logStretch && opts.Model.NeighborsFree():
		s, err := walker.Build(g, c)
		return s, graph.SortedPorts(g), "Theorem 5 (walker)", err

	case opts.MaxStretch >= 2 && opts.Model.NeighborsFree():
		s, err := hub.Build(g, 1)
		return s, graph.SortedPorts(g), "Theorem 4 (hub)", err

	case opts.MaxStretch >= 1.5 && opts.Model.NeighborsFree():
		s, err := centers.Build(g, 1)
		return s, graph.SortedPorts(g), "Theorem 3 (centres)", err

	case opts.Model.NeighborsFree() && opts.Model.LabelBitsCharged() && opts.PreferLabels:
		s, err := labels.Build(g, c)
		return s, graph.SortedPorts(g), "Theorem 2 (labels)", err

	case opts.Model.NeighborsFree():
		s, err := compact.Build(g, compact.DefaultOptions())
		return s, graph.SortedPorts(g), "Theorem 1 (compact, II)", err

	case opts.Model.PortsReassignable():
		ibOpts := compact.Options{Mode: compact.ModeIB, Strategy: compact.LeastFirst, Threshold: compact.ThresholdLogLog}
		s, err := compact.Build(g, ibOpts)
		return s, graph.SortedPorts(g), "Theorem 1 (compact, IB)", err

	default: // model IA: the trivial table is optimal (Theorem 8)
		ports := opts.Ports
		if ports == nil {
			ports = graph.SortedPorts(g)
		}
		s, err := fulltable.Build(g, ports)
		return s, ports, "Trivial table (optimal under IA ∧ α by Theorem 8)", err
	}
}

// Verify routes sampled or all pairs of the built result and reports
// delivery and stretch, using the library's reference carrier.
func (r *Result) Verify(g *graph.Graph, samplePairs int, seed int64) (*routing.Report, error) {
	sim, err := routing.NewSim(g, r.Ports, r.Scheme)
	if err != nil {
		return nil, err
	}
	dm, err := shortestpath.AllPairsCached(g)
	if err != nil {
		return nil, err
	}
	limit := routing.DefaultHopLimit(g.N())
	if samplePairs > 0 && g.N()*(g.N()-1) > samplePairs {
		return routing.VerifySampled(sim, dm, samplePairs, newRand(seed), limit)
	}
	return routing.VerifyAll(sim, dm, limit)
}

// newRand isolates the single math/rand dependency of Verify.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
