package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/models"
)

func randomGraph(t *testing.T, n int, seed int64) *graph.Graph {
	t.Helper()
	g, err := gengraph.GnHalf(n, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDispatchTable(t *testing.T) {
	g := randomGraph(t, 64, 1)
	tests := []struct {
		name        string
		opts        Options
		wantTheorem string
		wantStretch float64
	}{
		{"II shortest path", Options{Model: models.IIAlpha, MaxStretch: 1}, "Theorem 1 (compact, II)", 1},
		{"IB shortest path", Options{Model: models.IBAlpha, MaxStretch: 1}, "Theorem 1 (compact, IB)", 1},
		{"IA shortest path", Options{Model: models.IAAlpha, MaxStretch: 1}, "Trivial table", 1},
		{"II gamma labels", Options{Model: models.IIGamma, MaxStretch: 1, PreferLabels: true}, "Theorem 2 (labels)", 1},
		{"stretch 1.5", Options{Model: models.IIAlpha, MaxStretch: 1.5}, "Theorem 3 (centres)", 1.5},
		{"stretch 2", Options{Model: models.IIAlpha, MaxStretch: 2}, "Theorem 4 (hub)", 2},
		{"stretch log n", Options{Model: models.IIAlpha, MaxStretch: 100}, "Theorem 5 (walker)", 100},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := Build(g, tt.opts)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.HasPrefix(res.Theorem, tt.wantTheorem) {
				t.Fatalf("theorem = %q, want prefix %q", res.Theorem, tt.wantTheorem)
			}
			rep, err := res.Verify(g, 500, 42)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.AllDelivered() {
				t.Fatalf("undelivered: %s %v", rep, rep.Failures)
			}
			if rep.MaxStretch > tt.wantStretch {
				t.Fatalf("stretch %v > budget %v", rep.MaxStretch, tt.wantStretch)
			}
			if res.Space.Total <= 0 {
				t.Fatal("zero space accounted")
			}
			if res.Certificate == nil || !res.Certificate.OK() {
				t.Fatalf("certificate = %v", res.Certificate)
			}
		})
	}
}

func TestSpaceOrdering(t *testing.T) {
	// The stretch/space trade-off must be monotone: more stretch, less space.
	g := randomGraph(t, 128, 2)
	budgets := []float64{1, 1.5, 2, 1000}
	var totals []int
	for _, b := range budgets {
		res, err := Build(g, Options{Model: models.IIAlpha, MaxStretch: b})
		if err != nil {
			t.Fatal(err)
		}
		totals = append(totals, res.Space.Total)
	}
	for i := 1; i < len(totals); i++ {
		if totals[i] >= totals[i-1] {
			t.Fatalf("space not decreasing along stretch budgets: %v", totals)
		}
	}
}

func TestRequireCertified(t *testing.T) {
	chain, err := gengraph.Chain(64)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Build(chain, Options{Model: models.IAAlpha, MaxStretch: 1, RequireCertified: true})
	if !errors.Is(err, ErrNotCertified) {
		t.Fatalf("err = %v, want ErrNotCertified", err)
	}
	// Without the flag, IA's trivial table still works on a chain.
	res, err := Build(chain, Options{Model: models.IAAlpha, MaxStretch: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := res.Verify(chain, 0, 0)
	if err != nil || !rep.AllDelivered() || rep.MaxStretch != 1 {
		t.Fatalf("chain table: %v %v", rep, err)
	}
	if res.Certificate.OK() {
		t.Fatal("chain certified as random")
	}
}

func TestBuildValidation(t *testing.T) {
	g := randomGraph(t, 32, 3)
	if _, err := Build(g, Options{Model: models.Model{}, MaxStretch: 1}); err == nil {
		t.Error("invalid model accepted")
	}
	if _, err := Build(g, Options{Model: models.IIAlpha, MaxStretch: 0.5}); err == nil {
		t.Error("stretch < 1 accepted")
	}
}

func TestIAWithAdversarialPorts(t *testing.T) {
	g := randomGraph(t, 40, 4)
	ports := graph.RandomPorts(g, rand.New(rand.NewSource(5)))
	res, err := Build(g, Options{Model: models.IAAlpha, MaxStretch: 1, Ports: ports})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ports != ports {
		t.Fatal("supplied ports ignored")
	}
	rep, err := res.Verify(g, 400, 6)
	if err != nil || !rep.AllDelivered() || rep.MaxStretch != 1 {
		t.Fatalf("report = %v err = %v", rep, err)
	}
}

func TestGammaWithoutPreferLabelsUsesCompact(t *testing.T) {
	g := randomGraph(t, 48, 7)
	res, err := Build(g, Options{Model: models.IIGamma, MaxStretch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.Theorem, "Theorem 1") {
		t.Fatalf("theorem = %q", res.Theorem)
	}
}

func TestSmallGraphNoCertificate(t *testing.T) {
	g, err := gengraph.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(g, Options{Model: models.IIAlpha, MaxStretch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Certificate != nil {
		t.Fatal("certificate on n<8 graph")
	}
}
