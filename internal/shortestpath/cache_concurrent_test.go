package shortestpath

import (
	"math/rand"
	"sync"
	"testing"

	"routetab/internal/gengraph"
	"routetab/internal/graph"
)

// TestCacheConcurrentMutateAndQuery drives the serving-layer access pattern
// under the race detector: one writer repeatedly mutates a graph (bumping its
// Version) while reader goroutines fetch the all-pairs matrix through a
// shared Cache. The mutate-and-read halves are serialised by an RWMutex —
// exactly how the serving engine publishes snapshots — and every reader
// asserts its matrix matches the graph state it observed: a stale matrix for
// a newer version would report the toggled edge's distance wrong.
func TestCacheConcurrentMutateAndQuery(t *testing.T) {
	g, err := gengraph.GnHalf(32, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(2)
	var topo sync.RWMutex // guards g's edge set, like the engine's mutex

	const (
		readers = 8
		rounds  = 40
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				topo.RLock()
				has := g.HasEdge(1, 2)
				dm, err := cache.AllPairs(g)
				topo.RUnlock()
				if err != nil {
					t.Error(err)
					return
				}
				// Freshness: the matrix must reflect the edge state read
				// under the same lock hold — d(1,2)=1 iff the edge exists
				// (G(32,1/2) stays diameter ≤ 2 with and without it).
				d := dm.Dist(1, 2)
				if has && d != 1 {
					t.Errorf("stale matrix: edge (1,2) present but d=%d", d)
					return
				}
				if !has && d == 1 {
					t.Error("stale matrix: edge (1,2) absent but d=1")
					return
				}
			}
		}()
	}

	for i := 0; i < rounds; i++ {
		topo.Lock()
		var merr error
		if g.HasEdge(1, 2) {
			merr = g.RemoveEdge(1, 2)
		} else {
			merr = g.AddEdge(1, 2)
		}
		topo.Unlock()
		if merr != nil {
			t.Fatal(merr)
		}
	}
	close(stop)
	wg.Wait()

	if cache.Len() > 2 {
		t.Fatalf("cache over capacity: %d", cache.Len())
	}
}

// TestCacheVersionBumpInvalidates: a mutation between two single-threaded
// AllPairs calls must yield a recomputed matrix, never the cached one.
func TestCacheVersionBumpInvalidates(t *testing.T) {
	g, err := graph.New(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]int{{1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 8}, {8, 1}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	cache := NewCache(1)
	dm, err := cache.AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	if d := dm.Dist(1, 5); d != 4 {
		t.Fatalf("d(1,5) = %d on the 8-cycle", d)
	}
	if err := g.AddEdge(1, 5); err != nil {
		t.Fatal(err)
	}
	dm2, err := cache.AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	if d := dm2.Dist(1, 5); d != 1 {
		t.Fatalf("d(1,5) = %d after adding the chord (stale cache?)", d)
	}
	if dm.Dist(1, 5) != 4 {
		t.Fatal("old matrix mutated in place")
	}
}
