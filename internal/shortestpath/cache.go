package shortestpath

import (
	"sync"

	"routetab/internal/graph"
)

// Cache memoises all-pairs matrices per graph so one trial's Build, Verify
// and sweep code paths compute the matrix once instead of once per call site.
//
// Entries are keyed on graph identity plus the graph's mutation Version();
// mutating a cached graph invalidates its entry on the next lookup. The cache
// keeps a strong reference to each cached graph, which both bounds staleness
// (an entry can never outlive its key's address) and caps memory via a small
// LRU. Safe for concurrent use; concurrent requests for the same graph
// compute the matrix once (single-flight per entry).
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries []*cacheEntry // front = most recently used
}

type cacheEntry struct {
	g       *graph.Graph
	version uint64
	once    sync.Once
	dm      *Distances
	err     error
}

// NewCache returns a cache holding up to capacity matrices (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{cap: capacity}
}

// AllPairs returns g's all-pairs matrix, computing it at most once per
// (graph, version) while cached.
func (c *Cache) AllPairs(g *graph.Graph) (*Distances, error) {
	e := c.entry(g)
	e.once.Do(func() { e.dm, e.err = AllPairs(g) })
	return e.dm, e.err
}

// entry finds or installs the cache slot for g, refreshing LRU order and
// evicting the coldest entry past capacity. The (potentially slow) matrix
// computation happens outside the lock, guarded by the entry's once.
func (c *Cache) entry(g *graph.Graph) *cacheEntry {
	version := g.Version()
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, e := range c.entries {
		if e.g != g {
			continue
		}
		if e.version == version {
			c.entries = append(c.entries[:i], c.entries[i+1:]...)
			c.entries = append([]*cacheEntry{e}, c.entries...)
			return e
		}
		// Same graph mutated since caching: drop the stale entry.
		c.entries = append(c.entries[:i], c.entries[i+1:]...)
		break
	}
	e := &cacheEntry{g: g, version: version}
	c.entries = append([]*cacheEntry{e}, c.entries...)
	if len(c.entries) > c.cap {
		c.entries = c.entries[:c.cap]
	}
	return e
}

// Put seeds the cache with a precomputed matrix for g at its current version,
// so later AllPairs calls hit instead of recomputing. A snapshot restored from
// disk uses this to hand its persisted matrix to the engine's cache — the
// "no cold rebuild on restart" half of the persistence contract. Put is a
// no-op when an entry for (g, version) already exists.
func (c *Cache) Put(g *graph.Graph, dm *Distances) {
	e := c.entry(g)
	e.once.Do(func() { e.dm = dm })
}

// Len reports the number of cached matrices (for tests).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// shared is the process-wide cache used by the evaluation harness, core
// verification, and the Theorem 10 description method: one trial's graph is
// rebuilt against by several call sites, and they all want the same matrix.
// Capacity 4 bounds worst-case residency at 4·n² bytes (64 MiB at n = 4096).
var shared = NewCache(4)

// AllPairsCached computes g's all-pairs matrix through the process-wide
// shared cache. Callers must not mutate the returned matrix.
func AllPairsCached(g *graph.Graph) (*Distances, error) {
	return shared.AllPairs(g)
}
