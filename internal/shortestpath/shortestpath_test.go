package shortestpath

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"routetab/internal/gengraph"
	"routetab/internal/graph"
)

func TestBFSChain(t *testing.T) {
	g, err := gengraph.Chain(6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BFS(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{-99, 1, 0, 1, 2, 3, 4} // index 0 unused
	for v := 1; v <= 6; v++ {
		if res.Dist[v] != want[v] {
			t.Fatalf("Dist[%d] = %d, want %d", v, res.Dist[v], want[v])
		}
	}
	path := res.PathTo(6)
	wantPath := []int{2, 3, 4, 5, 6}
	if len(path) != len(wantPath) {
		t.Fatalf("PathTo(6) = %v", path)
	}
	for i := range path {
		if path[i] != wantPath[i] {
			t.Fatalf("PathTo(6) = %v, want %v", path, wantPath)
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := graph.MustNew(4)
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	res, err := BFS(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist[3] != Unreachable || res.Dist[4] != Unreachable {
		t.Fatalf("Dist = %v, want unreachable for 3,4", res.Dist)
	}
	if res.PathTo(3) != nil {
		t.Fatal("PathTo(unreachable) should be nil")
	}
	if res.PathTo(0) != nil || res.PathTo(99) != nil {
		t.Fatal("PathTo(out of range) should be nil")
	}
}

func TestBFSSourceValidation(t *testing.T) {
	g := graph.MustNew(3)
	if _, err := BFS(g, 0); !errors.Is(err, ErrNodeRange) {
		t.Errorf("BFS(0): err = %v, want ErrNodeRange", err)
	}
	if _, err := BFS(g, 4); !errors.Is(err, ErrNodeRange) {
		t.Errorf("BFS(4): err = %v, want ErrNodeRange", err)
	}
}

func TestAllPairsMatchesBFS(t *testing.T) {
	g, err := gengraph.GnHalf(50, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	dm, err := AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	for src := 1; src <= 50; src += 7 {
		res, err := BFS(g, src)
		if err != nil {
			t.Fatal(err)
		}
		for v := 1; v <= 50; v++ {
			if dm.Dist(src, v) != res.Dist[v] {
				t.Fatalf("Dist(%d,%d) = %d, BFS = %d", src, v, dm.Dist(src, v), res.Dist[v])
			}
		}
	}
}

func TestAllPairsSymmetryQuick(t *testing.T) {
	g, err := gengraph.GnHalf(30, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	dm, err := AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint8) bool {
		u := int(a)%30 + 1
		v := int(b)%30 + 1
		return dm.Dist(u, v) == dm.Dist(v, u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequalityQuick(t *testing.T) {
	g, err := gengraph.Gnp(40, 0.2, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	dm, err := AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b, c uint8) bool {
		u, v, w := int(a)%40+1, int(b)%40+1, int(c)%40+1
		duv, duw, dwv := dm.Dist(u, v), dm.Dist(u, w), dm.Dist(w, v)
		if duw == Unreachable || dwv == Unreachable {
			return true
		}
		return duv != Unreachable && duv <= duw+dwv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestDiameterKnownGraphs(t *testing.T) {
	tests := []struct {
		name string
		make func() (*graph.Graph, error)
		want int
	}{
		{"K5", func() (*graph.Graph, error) { return gengraph.Complete(5) }, 1},
		{"chain6", func() (*graph.Graph, error) { return gengraph.Chain(6) }, 5},
		{"cycle8", func() (*graph.Graph, error) { return gengraph.Cycle(8) }, 4},
		{"star9", func() (*graph.Graph, error) { return gengraph.Star(9) }, 2},
		{"grid3x4", func() (*graph.Graph, error) { return gengraph.Grid(3, 4) }, 5},
		{"single", func() (*graph.Graph, error) { return graph.New(1) }, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, err := tt.make()
			if err != nil {
				t.Fatal(err)
			}
			dm, err := AllPairs(g)
			if err != nil {
				t.Fatal(err)
			}
			if got := dm.Diameter(); got != tt.want {
				t.Fatalf("Diameter = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestDiameterDisconnected(t *testing.T) {
	g := graph.MustNew(3)
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	dm, err := AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	if dm.Diameter() != Unreachable {
		t.Fatalf("Diameter = %d, want Unreachable", dm.Diameter())
	}
	if dm.Eccentricity(1) != Unreachable {
		t.Fatalf("Eccentricity(1) = %d, want Unreachable", dm.Eccentricity(1))
	}
}

func TestDistInvalid(t *testing.T) {
	g := graph.MustNew(2)
	dm, err := AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	if dm.Dist(0, 1) != Unreachable || dm.Dist(1, 3) != Unreachable {
		t.Fatal("invalid pair should be Unreachable")
	}
	if dm.Eccentricity(0) != Unreachable {
		t.Fatal("invalid eccentricity should be Unreachable")
	}
}

func TestAllPairsEmpty(t *testing.T) {
	g := graph.MustNew(0)
	dm, err := AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	if dm.N() != 0 || dm.Diameter() != 0 {
		t.Fatalf("empty graph: N=%d diam=%d", dm.N(), dm.Diameter())
	}
}

func TestFirstEdges(t *testing.T) {
	// Square 1-2-4-3-1: from 1 to 4 both neighbours 2 and 3 are first edges.
	g := graph.MustNew(4)
	for _, e := range [][2]int{{1, 2}, {2, 4}, {4, 3}, {3, 1}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	dm, err := AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	fe, err := FirstEdges(g, dm, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fe[4]) != 2 || fe[4][0] != 2 || fe[4][1] != 3 {
		t.Fatalf("FirstEdges(1)[4] = %v, want [2 3]", fe[4])
	}
	if len(fe[2]) != 1 || fe[2][0] != 2 {
		t.Fatalf("FirstEdges(1)[2] = %v, want [2]", fe[2])
	}
	if fe[1] != nil {
		t.Fatalf("FirstEdges(1)[1] = %v, want nil", fe[1])
	}
}

func TestFirstEdgesPropertyRandom(t *testing.T) {
	// Property: every listed first edge strictly decreases distance, and at
	// least one exists for every reachable destination.
	g, err := gengraph.Gnp(35, 0.15, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	dm, err := AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	for u := 1; u <= 35; u++ {
		fe, err := FirstEdges(g, dm, u)
		if err != nil {
			t.Fatal(err)
		}
		for v := 1; v <= 35; v++ {
			if v == u {
				continue
			}
			duv := dm.Dist(u, v)
			if duv == Unreachable {
				if fe[v] != nil {
					t.Fatalf("unreachable %d→%d has first edges %v", u, v, fe[v])
				}
				continue
			}
			if len(fe[v]) == 0 {
				t.Fatalf("reachable %d→%d has no first edges", u, v)
			}
			for _, w := range fe[v] {
				if !g.HasEdge(u, w) {
					t.Fatalf("first edge %d→%d not adjacent", u, w)
				}
				if dm.Dist(w, v) != duv-1 {
					t.Fatalf("first edge %d→%d→%d does not decrease distance", u, w, v)
				}
			}
		}
	}
}

func TestFirstEdgesValidation(t *testing.T) {
	g := graph.MustNew(3)
	dm, err := AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FirstEdges(g, dm, 0); !errors.Is(err, ErrNodeRange) {
		t.Errorf("source 0: err = %v, want ErrNodeRange", err)
	}
	g2 := graph.MustNew(4)
	if _, err := FirstEdges(g2, dm, 1); err == nil {
		t.Error("size mismatch accepted")
	}
}
