// Package shortestpath provides BFS-based distance machinery: single-source
// and all-pairs shortest paths, diameter, and the per-source shortest-path
// first-edge sets that full-information routing schemes (Theorem 10) store.
//
// All graphs in the paper are unweighted, so BFS is exact. All-pairs runs one
// BFS per source, fanned out over a bounded worker pool.
package shortestpath

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"routetab/internal/graph"
)

// Unreachable is the distance reported for disconnected pairs.
const Unreachable = -1

// ErrNodeRange indicates a node label outside {1,…,n}.
var ErrNodeRange = errors.New("shortestpath: node label out of range")

// BFSResult holds single-source shortest-path output. Slices are indexed by
// node label (entry 0 unused).
type BFSResult struct {
	Source int
	// Dist[v] is d(Source, v); Unreachable if v is not reachable.
	Dist []int
	// Parent[v] is the predecessor of v on one shortest path from Source
	// (0 for the source itself and for unreachable nodes).
	Parent []int
}

// BFS runs breadth-first search from src.
func BFS(g *graph.Graph, src int) (*BFSResult, error) {
	n := g.N()
	if src < 1 || src > n {
		return nil, fmt.Errorf("%w: source %d", ErrNodeRange, src)
	}
	res := &BFSResult{
		Source: src,
		Dist:   make([]int, n+1),
		Parent: make([]int, n+1),
	}
	for v := range res.Dist {
		res.Dist[v] = Unreachable
	}
	res.Dist[src] = 0
	queue := make([]int, 0, n)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if res.Dist[v] == Unreachable {
				res.Dist[v] = res.Dist[u] + 1
				res.Parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return res, nil
}

// PathTo reconstructs one shortest path Source→v (inclusive), or nil if v is
// unreachable or out of range.
func (r *BFSResult) PathTo(v int) []int {
	if v < 1 || v >= len(r.Dist) || r.Dist[v] == Unreachable {
		return nil
	}
	path := make([]int, r.Dist[v]+1)
	for i := len(path) - 1; i >= 0; i-- {
		path[i] = v
		v = r.Parent[v]
	}
	return path
}

// Distances is an all-pairs shortest-path matrix.
type Distances struct {
	n int
	d []int32 // row-major (u−1)*n + (v−1)
}

// AllPairs computes all-pairs shortest paths with one BFS per source, run on
// up to GOMAXPROCS workers.
func AllPairs(g *graph.Graph) (*Distances, error) {
	n := g.N()
	dm := &Distances{n: n, d: make([]int32, n*n)}
	if n == 0 {
		return dm, nil
	}
	g.Neighbors(1) // build adjacency lists once, before fan-out

	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	sources := make(chan int)
	errOnce := make(chan error, 1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for src := range sources {
				res, err := BFS(g, src)
				if err != nil {
					select {
					case errOnce <- err:
					default:
					}
					return
				}
				row := dm.d[(src-1)*n : src*n]
				for v := 1; v <= n; v++ {
					row[v-1] = int32(res.Dist[v])
				}
			}
		}()
	}
	for src := 1; src <= n; src++ {
		sources <- src
	}
	close(sources)
	wg.Wait()
	select {
	case err := <-errOnce:
		return nil, err
	default:
	}
	return dm, nil
}

// N returns the number of nodes the matrix covers.
func (d *Distances) N() int { return d.n }

// Dist returns d(u,v), or Unreachable for disconnected or invalid pairs.
func (d *Distances) Dist(u, v int) int {
	if u < 1 || u > d.n || v < 1 || v > d.n {
		return Unreachable
	}
	return int(d.d[(u-1)*d.n+(v-1)])
}

// Eccentricity returns the maximum finite distance from u, or Unreachable if
// some node is unreachable from u.
func (d *Distances) Eccentricity(u int) int {
	if u < 1 || u > d.n {
		return Unreachable
	}
	ecc := 0
	for v := 1; v <= d.n; v++ {
		dist := d.Dist(u, v)
		if dist == Unreachable {
			return Unreachable
		}
		if dist > ecc {
			ecc = dist
		}
	}
	return ecc
}

// Diameter returns the largest pairwise distance, or Unreachable for a
// disconnected graph. The empty and one-node graphs have diameter 0.
func (d *Distances) Diameter() int {
	diam := 0
	for u := 1; u <= d.n; u++ {
		ecc := d.Eccentricity(u)
		if ecc == Unreachable {
			return Unreachable
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam
}

// FirstEdges lists, for source u and every destination v, all neighbours w of
// u that lie on a shortest u→v path (d(w,v) = d(u,v) − 1). This is exactly
// the information a full-information shortest-path routing function must
// return (Theorem 10): every shortest-path-consistent outgoing edge.
//
// Entry v of the result is nil for v = u and for unreachable v.
func FirstEdges(g *graph.Graph, dm *Distances, u int) ([][]int, error) {
	n := g.N()
	if u < 1 || u > n {
		return nil, fmt.Errorf("%w: source %d", ErrNodeRange, u)
	}
	if dm.N() != n {
		return nil, fmt.Errorf("shortestpath: distance matrix for n=%d used with n=%d", dm.N(), n)
	}
	out := make([][]int, n+1)
	nb := g.Neighbors(u)
	for v := 1; v <= n; v++ {
		if v == u {
			continue
		}
		duv := dm.Dist(u, v)
		if duv == Unreachable {
			continue
		}
		var firsts []int
		for _, w := range nb {
			if dm.Dist(w, v) == duv-1 {
				firsts = append(firsts, w)
			}
		}
		out[v] = firsts
	}
	return out, nil
}
