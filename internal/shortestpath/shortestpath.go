// Package shortestpath provides BFS-based distance machinery: single-source
// and all-pairs shortest paths, diameter, and the per-source shortest-path
// first-edge sets that full-information routing schemes (Theorem 10) store.
//
// All graphs in the paper are unweighted, so BFS is exact. All-pairs runs one
// BFS per source, fanned out over a bounded worker pool, and picks between
// two kernels by density: the classic neighbour-list BFS, and a word-parallel
// bitset BFS that expands the whole frontier with uint64 sweeps over the
// graph's adjacency rows (bitset.go). The packed matrix stores one byte per
// pair — diameter is 2 on the paper's δ-random graphs (Lemma 2), and longer
// distances saturate at MaxDistance.
package shortestpath

import (
	"errors"
	"fmt"

	"routetab/internal/graph"
	"routetab/internal/par"
)

// Unreachable is the distance reported for disconnected pairs.
const Unreachable = -1

// MaxDistance is the largest finite distance the packed all-pairs matrix can
// represent; longer shortest paths saturate to it. Distances, Eccentricity
// and Diameter are exact for every graph of diameter ≤ MaxDistance (the
// paper's random graphs have diameter 2).
const MaxDistance = 254

// unreachable8 is the packed-byte sentinel for disconnected pairs.
const unreachable8 = 0xFF

// ErrNodeRange indicates a node label outside {1,…,n}.
var ErrNodeRange = errors.New("shortestpath: node label out of range")

// BFSResult holds single-source shortest-path output. Slices are indexed by
// node label (entry 0 unused).
type BFSResult struct {
	Source int
	// Dist[v] is d(Source, v); Unreachable if v is not reachable.
	Dist []int
	// Parent[v] is the predecessor of v on one shortest path from Source
	// (0 for the source itself and for unreachable nodes).
	Parent []int
}

// BFS runs breadth-first search from src.
func BFS(g *graph.Graph, src int) (*BFSResult, error) {
	n := g.N()
	if src < 1 || src > n {
		return nil, fmt.Errorf("%w: source %d", ErrNodeRange, src)
	}
	res := &BFSResult{
		Source: src,
		Dist:   make([]int, n+1),
		Parent: make([]int, n+1),
	}
	for v := range res.Dist {
		res.Dist[v] = Unreachable
	}
	res.Dist[src] = 0
	queue := make([]int, 0, n)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if res.Dist[v] == Unreachable {
				res.Dist[v] = res.Dist[u] + 1
				res.Parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return res, nil
}

// PathTo reconstructs one shortest path Source→v (inclusive), or nil if v is
// unreachable or out of range.
func (r *BFSResult) PathTo(v int) []int {
	if v < 1 || v >= len(r.Dist) || r.Dist[v] == Unreachable {
		return nil
	}
	path := make([]int, r.Dist[v]+1)
	for i := len(path) - 1; i >= 0; i-- {
		path[i] = v
		v = r.Parent[v]
	}
	return path
}

// Distances is an all-pairs shortest-path matrix, packed one byte per pair
// (4× smaller than the previous int32 layout, so n=4096 sweeps hold the full
// 16 MiB matrix comfortably).
type Distances struct {
	n int
	d []uint8 // row-major (u−1)*n + (v−1); unreachable8 = disconnected
}

// Strategy selects the per-source BFS kernel used by AllPairsStrategy.
type Strategy uint8

const (
	// StrategyAuto picks by density: bitset on dense graphs, lists elsewhere.
	StrategyAuto Strategy = iota
	// StrategyList forces the classic neighbour-list BFS.
	StrategyList
	// StrategyBitset forces the word-parallel bitset BFS.
	StrategyBitset
)

// testRowErr, when non-nil, lets tests inject per-source failures into the
// AllPairs fan-out (the production kernels cannot fail on in-range sources).
var testRowErr func(src int) error

// AllPairs computes all-pairs shortest paths with one BFS per source, fanned
// out over a bounded worker pool. The kernel is chosen automatically
// (StrategyAuto): on dense graphs every frontier expansion runs word-parallel
// over the adjacency bitsets.
func AllPairs(g *graph.Graph) (*Distances, error) {
	return AllPairsStrategy(g, StrategyAuto)
}

// useBitset is the StrategyAuto selection rule: the bitset kernel costs
// Θ(diam·n²/64) per source independent of density, the list kernel Θ(n+m), so
// bitsets win once the graph carries more than ~n²/64 edges (average degree
// above n/32). The n ≥ 64 guard keeps tiny graphs on the allocation-light
// list path.
func useBitset(g *graph.Graph) bool {
	n := g.N()
	return n >= 64 && g.M() >= n*n/64
}

// AllPairsStrategy is AllPairs with an explicit kernel choice; benchmarks and
// the differential tests use it to compare the two kernels.
func AllPairsStrategy(g *graph.Graph, strat Strategy) (*Distances, error) {
	n := g.N()
	dm := &Distances{n: n, d: make([]uint8, n*n)}
	if n == 0 {
		return dm, nil
	}
	bitset := strat == StrategyBitset || (strat == StrategyAuto && useBitset(g))
	if !bitset {
		g.Neighbors(1) // one up-front rebuild saves n racing (safe) rebuilds
	}
	err := par.ForEach(n, func(i int) error {
		src := i + 1
		if testRowErr != nil {
			if err := testRowErr(src); err != nil {
				return err
			}
		}
		row := dm.d[i*n : (i+1)*n]
		if bitset {
			bitsetRow(g, src, row)
			return nil
		}
		return listRow(g, src, row)
	})
	if err != nil {
		return nil, err
	}
	return dm, nil
}

// listRow fills one packed matrix row using the neighbour-list BFS.
func listRow(g *graph.Graph, src int, row []uint8) error {
	res, err := BFS(g, src)
	if err != nil {
		return err
	}
	for v := 1; v < len(res.Dist); v++ {
		row[v-1] = packDist(res.Dist[v])
	}
	return nil
}

// packDist converts a BFS distance to the packed byte encoding, saturating
// finite distances at MaxDistance.
func packDist(d int) uint8 {
	switch {
	case d == Unreachable:
		return unreachable8
	case d > MaxDistance:
		return MaxDistance
	default:
		return uint8(d)
	}
}

// N returns the number of nodes the matrix covers.
func (d *Distances) N() int { return d.n }

// Packed exposes the matrix's row-major packed byte form (one byte per pair,
// unreachable pairs as 0xFF). The returned slice aliases the matrix's storage
// — callers must treat it as read-only. The serving layer's crash-safe
// snapshot persistence writes exactly these bytes, which is what makes its
// "byte-identical recovery" contract checkable.
func (d *Distances) Packed() []uint8 { return d.d }

// FromPacked wraps a packed row-major byte matrix (as produced by Packed) for
// n nodes. The slice is adopted, not copied; the caller must not mutate it
// afterwards.
func FromPacked(n int, packed []uint8) (*Distances, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: n = %d", ErrNodeRange, n)
	}
	if len(packed) != n*n {
		return nil, fmt.Errorf("shortestpath: packed matrix has %d bytes, want %d for n=%d", len(packed), n*n, n)
	}
	return &Distances{n: n, d: packed}, nil
}

// Dist returns d(u,v) (saturated at MaxDistance), or Unreachable for
// disconnected or invalid pairs.
func (d *Distances) Dist(u, v int) int {
	if u < 1 || u > d.n || v < 1 || v > d.n {
		return Unreachable
	}
	b := d.d[(u-1)*d.n+(v-1)]
	if b == unreachable8 {
		return Unreachable
	}
	return int(b)
}

// Eccentricity returns the maximum finite distance from u, or Unreachable if
// some node is unreachable from u.
func (d *Distances) Eccentricity(u int) int {
	if u < 1 || u > d.n {
		return Unreachable
	}
	ecc := 0
	for v := 1; v <= d.n; v++ {
		dist := d.Dist(u, v)
		if dist == Unreachable {
			return Unreachable
		}
		if dist > ecc {
			ecc = dist
		}
	}
	return ecc
}

// Diameter returns the largest pairwise distance, or Unreachable for a
// disconnected graph. The empty and one-node graphs have diameter 0.
func (d *Distances) Diameter() int {
	diam := 0
	for u := 1; u <= d.n; u++ {
		ecc := d.Eccentricity(u)
		if ecc == Unreachable {
			return Unreachable
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam
}

// FirstEdges lists, for source u and every destination v, all neighbours w of
// u that lie on a shortest u→v path (d(w,v) = d(u,v) − 1). This is exactly
// the information a full-information shortest-path routing function must
// return (Theorem 10): every shortest-path-consistent outgoing edge.
//
// Entry v of the result is nil for v = u and for unreachable v. Exact only on
// graphs of diameter ≤ MaxDistance (the matrix saturates beyond that).
func FirstEdges(g *graph.Graph, dm *Distances, u int) ([][]int, error) {
	n := g.N()
	if u < 1 || u > n {
		return nil, fmt.Errorf("%w: source %d", ErrNodeRange, u)
	}
	if dm.N() != n {
		return nil, fmt.Errorf("shortestpath: distance matrix for n=%d used with n=%d", dm.N(), n)
	}
	out := make([][]int, n+1)
	nb := g.Neighbors(u)
	for v := 1; v <= n; v++ {
		if v == u {
			continue
		}
		duv := dm.Dist(u, v)
		if duv == Unreachable {
			continue
		}
		var firsts []int
		for _, w := range nb {
			if dm.Dist(w, v) == duv-1 {
				firsts = append(firsts, w)
			}
		}
		out[v] = firsts
	}
	return out, nil
}
