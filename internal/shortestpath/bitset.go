package shortestpath

import (
	"math/bits"
	"sync"

	"routetab/internal/graph"
)

// bitsetScratch holds the three per-BFS frontier bitsets. AllPairs runs one
// BFS per source over a worker pool, so the scratch is pooled instead of
// reallocated n times.
type bitsetScratch struct {
	visited, frontier, next []uint64
}

var scratchPool = sync.Pool{New: func() any { return &bitsetScratch{} }}

func (s *bitsetScratch) reset(words int) {
	if cap(s.visited) < words {
		s.visited = make([]uint64, words)
		s.frontier = make([]uint64, words)
		s.next = make([]uint64, words)
		return
	}
	s.visited = s.visited[:words]
	s.frontier = s.frontier[:words]
	s.next = s.next[:words]
	clear(s.visited)
	clear(s.frontier)
	clear(s.next)
}

// bitsetRow fills one packed matrix row with a word-parallel BFS from src:
// each level ORs the adjacency bitset rows of every frontier node into the
// next-frontier bitset, then strips already-visited nodes with one ANDNOT
// sweep. Per level the work is Θ(|frontier|·n/64) regardless of edge count —
// on G(n, 1/2), where Lemma 1 pins every degree near n/2 and Lemma 2 pins the
// diameter at 2, that beats the Θ(n+m) list BFS by roughly the word width.
//
// Adjacency rows never carry bits ≥ n, so no end-of-row masking is needed.
func bitsetRow(g *graph.Graph, src int, row []uint8) {
	n := g.N()
	words := g.Words()
	s := scratchPool.Get().(*bitsetScratch)
	defer scratchPool.Put(s)
	s.reset(words)

	for i := range row {
		row[i] = unreachable8
	}
	sb := src - 1
	row[sb] = 0
	s.visited[sb/64] = 1 << uint(sb%64)
	s.frontier[sb/64] = 1 << uint(sb%64)

	for dist := 1; ; dist++ {
		d8 := uint8(dist)
		if dist > MaxDistance {
			d8 = MaxDistance
		}
		// next = ∪ AdjRow(u) over frontier u.
		clear(s.next)
		for wi, w := range s.frontier {
			for w != 0 {
				u := wi*64 + bits.TrailingZeros64(w)
				w &= w - 1
				ru := g.AdjRow(u + 1)
				for k := range s.next {
					s.next[k] |= ru[k]
				}
			}
		}
		// Strip visited, mark distances, advance.
		grew := false
		for k := range s.next {
			nw := s.next[k] &^ s.visited[k]
			s.next[k] = nw
			if nw == 0 {
				continue
			}
			grew = true
			s.visited[k] |= nw
			base := k * 64
			for nw != 0 {
				v := base + bits.TrailingZeros64(nw)
				nw &= nw - 1
				row[v] = d8
			}
		}
		if !grew {
			return
		}
		s.frontier, s.next = s.next, s.frontier
		if dist >= n { // safety: no simple path exceeds n−1 edges
			return
		}
	}
}
