package shortestpath

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"routetab/internal/gengraph"
	"routetab/internal/graph"
)

// diffGraphs builds the differential-test corpus: random graphs at several
// densities plus the deterministic worst-case families.
func diffGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	out := map[string]*graph.Graph{}
	mk := func(name string) func(*graph.Graph, error) {
		return func(g *graph.Graph, err error) {
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			out[name] = g
		}
	}
	mk("gnhalf96")(gengraph.GnHalf(96, rand.New(rand.NewSource(1))))
	mk("gnp70-sparse")(gengraph.Gnp(70, 0.05, rand.New(rand.NewSource(2))))
	mk("gnp70-dense")(gengraph.Gnp(70, 0.6, rand.New(rand.NewSource(3))))
	mk("chain80")(gengraph.Chain(80))
	mk("cycle81")(gengraph.Cycle(81))
	mk("star80")(gengraph.Star(80))
	mk("grid9x9")(gengraph.Grid(9, 9))
	mk("tree77")(gengraph.RandomTree(77, rand.New(rand.NewSource(4))))
	mk("complete65")(gengraph.Complete(65))
	disc := graph.MustNew(70)
	for u := 1; u < 35; u++ {
		if err := disc.AddEdge(u, u+1); err != nil {
			t.Fatal(err)
		}
	}
	for u := 36; u < 70; u++ {
		if err := disc.AddEdge(u, u+1); err != nil {
			t.Fatal(err)
		}
	}
	out["disconnected70"] = disc
	return out
}

// TestBitsetVsListDifferential checks the two kernels agree pair-for-pair,
// and that Eccentricity/Diameter computed from either matrix match.
func TestBitsetVsListDifferential(t *testing.T) {
	for name, g := range diffGraphs(t) {
		t.Run(name, func(t *testing.T) {
			byList, err := AllPairsStrategy(g, StrategyList)
			if err != nil {
				t.Fatal(err)
			}
			byBitset, err := AllPairsStrategy(g, StrategyBitset)
			if err != nil {
				t.Fatal(err)
			}
			n := g.N()
			for u := 1; u <= n; u++ {
				for v := 1; v <= n; v++ {
					if byList.Dist(u, v) != byBitset.Dist(u, v) {
						t.Fatalf("Dist(%d,%d): list %d, bitset %d",
							u, v, byList.Dist(u, v), byBitset.Dist(u, v))
					}
				}
				if byList.Eccentricity(u) != byBitset.Eccentricity(u) {
					t.Fatalf("Eccentricity(%d): list %d, bitset %d",
						u, byList.Eccentricity(u), byBitset.Eccentricity(u))
				}
			}
			if byList.Diameter() != byBitset.Diameter() {
				t.Fatalf("Diameter: list %d, bitset %d", byList.Diameter(), byBitset.Diameter())
			}
		})
	}
}

// TestAutoStrategyMatchesForced checks StrategyAuto picks a kernel that
// agrees with both forced kernels on a dense and a sparse graph.
func TestAutoStrategyMatchesForced(t *testing.T) {
	dense, err := gengraph.GnHalf(80, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := gengraph.Chain(80)
	if err != nil {
		t.Fatal(err)
	}
	if !useBitset(dense) {
		t.Error("G(80,1/2) should select the bitset kernel")
	}
	if useBitset(sparse) {
		t.Error("chain80 should select the list kernel")
	}
	for _, g := range []*graph.Graph{dense, sparse} {
		auto, err := AllPairs(g)
		if err != nil {
			t.Fatal(err)
		}
		forced, err := AllPairsStrategy(g, StrategyList)
		if err != nil {
			t.Fatal(err)
		}
		for u := 1; u <= g.N(); u++ {
			for v := 1; v <= g.N(); v++ {
				if auto.Dist(u, v) != forced.Dist(u, v) {
					t.Fatalf("auto Dist(%d,%d) = %d, want %d", u, v, auto.Dist(u, v), forced.Dist(u, v))
				}
			}
		}
	}
}

// TestDistancesSaturation covers the uint8 packing: on a chain longer than
// MaxDistance hops, far pairs saturate to exactly MaxDistance (never wrap,
// never collide with Unreachable), and both kernels saturate identically.
func TestDistancesSaturation(t *testing.T) {
	const n = MaxDistance + 47 // distances up to 300 > MaxDistance
	g, err := gengraph.Chain(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{StrategyList, StrategyBitset} {
		dm, err := AllPairsStrategy(g, strat)
		if err != nil {
			t.Fatal(err)
		}
		for v := 1; v <= n; v++ {
			want := v - 1
			if want > MaxDistance {
				want = MaxDistance
			}
			if got := dm.Dist(1, v); got != want {
				t.Fatalf("strategy %d: Dist(1,%d) = %d, want %d", strat, v, got, want)
			}
		}
		// The true diameter n−1 saturates; saturation must also flow through
		// Eccentricity and Diameter consistently.
		if ecc := dm.Eccentricity(1); ecc != MaxDistance {
			t.Fatalf("strategy %d: Eccentricity(1) = %d, want %d", strat, ecc, MaxDistance)
		}
		if diam := dm.Diameter(); diam != MaxDistance {
			t.Fatalf("strategy %d: Diameter = %d, want %d", strat, diam, MaxDistance)
		}
	}
}

// TestUnreachableRoundTrip checks the Unreachable sentinel survives packing
// under both kernels and keeps its Eccentricity/Diameter semantics.
func TestUnreachableRoundTrip(t *testing.T) {
	g := graph.MustNew(300)
	for u := 1; u < 150; u++ {
		if err := g.AddEdge(u, u+1); err != nil {
			t.Fatal(err)
		}
	}
	// Nodes 151…300 are isolated from component one (151-…-300 chained).
	for u := 151; u < 300; u++ {
		if err := g.AddEdge(u, u+1); err != nil {
			t.Fatal(err)
		}
	}
	for _, strat := range []Strategy{StrategyList, StrategyBitset} {
		dm, err := AllPairsStrategy(g, strat)
		if err != nil {
			t.Fatal(err)
		}
		if d := dm.Dist(1, 300); d != Unreachable {
			t.Fatalf("strategy %d: cross-component Dist = %d, want Unreachable", strat, d)
		}
		if d := dm.Dist(1, 150); d != 149 {
			t.Fatalf("strategy %d: within-component Dist = %d, want 149", strat, d)
		}
		if d := dm.Dist(151, 300); d != 149 {
			t.Fatalf("strategy %d: second-component Dist = %d, want 149", strat, d)
		}
		if ecc := dm.Eccentricity(1); ecc != Unreachable {
			t.Fatalf("strategy %d: Eccentricity = %d, want Unreachable", strat, ecc)
		}
		if diam := dm.Diameter(); diam != Unreachable {
			t.Fatalf("strategy %d: Diameter = %d, want Unreachable", strat, diam)
		}
	}
}

// TestAllPairsErrorNoDeadlock is the regression test for the fan-out
// deadlock: when every worker dies on a row error, the old dispatcher blocked
// forever on `sources <- src`. The injected failure must surface as the
// returned error, promptly.
func TestAllPairsErrorNoDeadlock(t *testing.T) {
	errBoom := errors.New("boom")
	testRowErr = func(src int) error { return fmt.Errorf("%w: src %d", errBoom, src) }
	defer func() { testRowErr = nil }()

	g, err := gengraph.GnHalf(128, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	finished := make(chan error, 1)
	go func() {
		_, err := AllPairs(g)
		finished <- err
	}()
	select {
	case err := <-finished:
		if !errors.Is(err, errBoom) {
			t.Fatalf("err = %v, want injected error", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("AllPairs deadlocked on worker error")
	}
}

func TestCacheHitsAndInvalidation(t *testing.T) {
	c := NewCache(2)
	g, err := gengraph.GnHalf(40, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	dm1, err := c.AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	dm2, err := c.AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	if dm1 != dm2 {
		t.Fatal("second lookup recomputed the matrix")
	}
	// Mutation bumps Version and must invalidate.
	u, v := 1, 2
	if g.HasEdge(u, v) {
		err = g.RemoveEdge(u, v)
	} else {
		err = g.AddEdge(u, v)
	}
	if err != nil {
		t.Fatal(err)
	}
	dm3, err := c.AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	if dm3 == dm1 {
		t.Fatal("mutated graph served a stale matrix")
	}
	fresh, err := AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	for a := 1; a <= g.N(); a++ {
		for b := 1; b <= g.N(); b++ {
			if dm3.Dist(a, b) != fresh.Dist(a, b) {
				t.Fatalf("cached Dist(%d,%d) = %d, want %d", a, b, dm3.Dist(a, b), fresh.Dist(a, b))
			}
		}
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewCache(2)
	var graphs []*graph.Graph
	for i := 0; i < 3; i++ {
		g, err := gengraph.GnHalf(24, rand.New(rand.NewSource(int64(10+i))))
		if err != nil {
			t.Fatal(err)
		}
		graphs = append(graphs, g)
		if _, err := c.AllPairs(g); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.Len())
	}
	// graphs[0] was evicted (LRU); re-requesting recomputes without error.
	if _, err := c.AllPairs(graphs[0]); err != nil {
		t.Fatal(err)
	}
}

// TestCacheConcurrentSingleFlight hammers the shared entry from many
// goroutines; run under -race this also exercises the graph's concurrent
// lazy neighbour-list publish.
func TestCacheConcurrentSingleFlight(t *testing.T) {
	c := NewCache(4)
	g, err := gengraph.GnHalf(64, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	results := make(chan *Distances, 16)
	for i := 0; i < 16; i++ {
		go func() {
			dm, err := c.AllPairs(g)
			if err != nil {
				t.Error(err)
			}
			results <- dm
		}()
	}
	first := <-results
	for i := 1; i < 16; i++ {
		if dm := <-results; dm != first {
			t.Fatal("concurrent lookups returned different matrices")
		}
	}
}
