package portcode

import (
	"bytes"
	"errors"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/schemes/fulltable"
)

func TestPermutationRankKnownValues(t *testing.T) {
	tests := []struct {
		perm []int
		want int64
	}{
		{[]int{}, 0},
		{[]int{0}, 0},
		{[]int{0, 1}, 0},
		{[]int{1, 0}, 1},
		{[]int{0, 1, 2}, 0},
		{[]int{0, 2, 1}, 1},
		{[]int{1, 0, 2}, 2},
		{[]int{2, 1, 0}, 5},
	}
	for _, tt := range tests {
		rank, err := PermutationRank(tt.perm)
		if err != nil {
			t.Fatalf("%v: %v", tt.perm, err)
		}
		if rank.Int64() != tt.want {
			t.Errorf("rank(%v) = %v, want %d", tt.perm, rank, tt.want)
		}
	}
}

func TestPermutationRankUnrankQuick(t *testing.T) {
	f := func(seed int64, dd uint8) bool {
		d := int(dd) % 12
		perm := rand.New(rand.NewSource(seed)).Perm(d)
		rank, err := PermutationRank(perm)
		if err != nil {
			return false
		}
		back, err := PermutationUnrank(rank, d)
		if err != nil {
			return false
		}
		for i := range perm {
			if back[i] != perm[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUnrankExhaustiveD4(t *testing.T) {
	// All 24 ranks give distinct valid permutations, in lexicographic order.
	var prev []int
	for r := 0; r < 24; r++ {
		perm, err := PermutationUnrank(big.NewInt(int64(r)), 4)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && !lexLess(prev, perm) {
			t.Fatalf("rank %d: %v not after %v", r, perm, prev)
		}
		prev = perm
	}
	if _, err := PermutationUnrank(big.NewInt(24), 4); !errors.Is(err, ErrBadPermutation) {
		t.Fatal("rank 24 accepted for d=4")
	}
	if _, err := PermutationUnrank(big.NewInt(-1), 4); !errors.Is(err, ErrBadPermutation) {
		t.Fatal("negative rank accepted")
	}
}

func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func TestRankRejectsNonPermutations(t *testing.T) {
	for _, bad := range [][]int{{0, 0}, {1, 2}, {-1, 0}, {0, 2}} {
		if _, err := PermutationRank(bad); !errors.Is(err, ErrBadPermutation) {
			t.Errorf("%v accepted", bad)
		}
	}
}

func TestNodeCapacity(t *testing.T) {
	tests := []struct{ d, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 4}, {5, 6}, {6, 9},
	}
	for _, tt := range tests {
		if got := NodeCapacity(tt.d); got != tt.want {
			t.Errorf("NodeCapacity(%d) = %d, want %d (⌊log₂ %d!⌋)", tt.d, got, tt.want, tt.d)
		}
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	g, err := gengraph.GnHalf(40, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	capBits := Capacity(g)
	// Footnote: capacity ≈ Σ d log d ≈ n·(n/2)·log(n/2) — substantial.
	if capBits < 40*10 {
		t.Fatalf("capacity = %d, implausibly small", capBits)
	}
	payload := make([]byte, (capBits+7)/8)
	rand.New(rand.NewSource(2)).Read(payload)
	nbits := capBits - 3 // not byte-aligned on purpose

	ports, err := StoreBits(g, payload, nbits)
	if err != nil {
		t.Fatal(err)
	}
	if err := ports.Validate(g); err != nil {
		t.Fatalf("stored assignment invalid: %v", err)
	}
	got, err := LoadBits(g, ports, nbits)
	if err != nil {
		t.Fatal(err)
	}
	// Compare the first nbits bits.
	for i := 0; i < nbits; i++ {
		wb := payload[i/8]&(1<<(7-uint(i%8))) != 0
		gb := got[i/8]&(1<<(7-uint(i%8))) != 0
		if wb != gb {
			t.Fatalf("bit %d: got %t, want %t", i, gb, wb)
		}
	}
}

func TestStoreBitsCapacityEnforced(t *testing.T) {
	g, err := gengraph.Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	capBits := Capacity(g)
	payload := make([]byte, capBits/8+2)
	if _, err := StoreBits(g, payload, capBits+1); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("err = %v, want ErrPayloadTooLarge", err)
	}
	if _, err := LoadBits(g, graph.SortedPorts(g), capBits+1); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("load: err = %v, want ErrPayloadTooLarge", err)
	}
}

func TestStoredPortsStillRoute(t *testing.T) {
	// The footnote's point: the assignment carries data *and* the network
	// still works — routing is unaffected by which permutation is chosen.
	g, err := gengraph.GnHalf(24, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("routing tables are optimal")
	nbits := len(payload) * 8
	if nbits > Capacity(g) {
		t.Fatalf("payload %d bits > capacity %d", nbits, Capacity(g))
	}
	ports, err := StoreBits(g, payload, nbits)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fulltable.Build(g, ports); err != nil {
		t.Fatalf("scheme on payload-carrying ports: %v", err)
	}
	got, err := LoadBits(g, ports, nbits)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:len(payload)], payload) {
		t.Fatalf("payload = %q, want %q", got[:len(payload)], payload)
	}
}

func TestCapacityScalesAsN2LogN(t *testing.T) {
	// Σ log(d!) with d≈n/2 ⇒ ≈ n²/2·log(n/2): the footnote's free bits are
	// exactly Theorem 8's entropy.
	c64 := capacityOf(t, 64)
	c128 := capacityOf(t, 128)
	ratio := float64(c128) / float64(c64)
	// n²log n scaling predicts ≈ 4·(7/6) ≈ 4.67.
	if ratio < 3.5 || ratio > 6 {
		t.Fatalf("capacity ratio 128/64 = %v, want ≈ 4.7", ratio)
	}
}

func capacityOf(t *testing.T, n int) int {
	t.Helper()
	g, err := gengraph.GnHalf(n, rand.New(rand.NewSource(int64(n))))
	if err != nil {
		t.Fatal(err)
	}
	return Capacity(g)
}

func TestZeroPayload(t *testing.T) {
	g, err := gengraph.Star(6)
	if err != nil {
		t.Fatal(err)
	}
	ports, err := StoreBits(g, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Zero payload ⇒ identity permutations ⇒ sorted ports.
	for p := 1; p <= g.Degree(1); p++ {
		want, err := graph.SortedPorts(g).Neighbor(1, p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ports.Neighbor(1, p)
		if err != nil || got != want {
			t.Fatalf("port %d: %d, want %d", p, got, want)
		}
	}
	out, err := LoadBits(g, ports, 0)
	if err != nil || len(out) != 0 {
		t.Fatalf("LoadBits(0) = %v, %v", out, err)
	}
}
