// Package portcode implements the paper's footnote to model II: "given a
// labelling of the edges by the nodes they connect to, the actual port
// assignment doesn't matter at all, and can in fact be used to represent
// d(v)·log d(v) bits of the routing function. Namely, each assignment of
// ports corresponds to a permutation of the ranks of the neighbours."
//
// The package makes that observation executable: it ranks/unranks port
// assignments as permutations (Lehmer codes over a factorial number system)
// and provides StoreBits/LoadBits, which smuggle an arbitrary payload of up
// to Σ_v ⌊log₂ d(v)!⌋ bits into a graph's port assignment and recover it.
// This is exactly why the paper's model II must not be combined with free
// port assignment — the combination gives every node log(d!) bits of free
// storage, which this package demonstrates constructively. It is also the
// entropy source behind Theorem 8's adversary.
package portcode

import (
	"errors"
	"fmt"
	"math/big"

	"routetab/internal/bitio"
	"routetab/internal/graph"
)

// Errors.
var (
	// ErrPayloadTooLarge indicates more payload bits than the assignment's
	// capacity.
	ErrPayloadTooLarge = errors.New("portcode: payload exceeds port-assignment capacity")
	// ErrBadPermutation indicates an unrankable index.
	ErrBadPermutation = errors.New("portcode: permutation index out of range")
)

// PermutationRank returns the Lehmer-code rank of perm (a permutation of
// 0…d−1) in lexicographic order, in [0, d!).
func PermutationRank(perm []int) (*big.Int, error) {
	d := len(perm)
	seen := make([]bool, d)
	rank := new(big.Int)
	fact := factorial(d)
	for i, p := range perm {
		if p < 0 || p >= d || seen[p] {
			return nil, fmt.Errorf("%w: element %d at %d", ErrBadPermutation, p, i)
		}
		seen[p] = true
		// Count unused elements smaller than p.
		smaller := 0
		for q := 0; q < p; q++ {
			if !seen[q] {
				smaller++
			}
		}
		if d-i > 0 {
			fact.Div(fact, big.NewInt(int64(d-i)))
		}
		rank.Add(rank, new(big.Int).Mul(big.NewInt(int64(smaller)), fact))
	}
	return rank, nil
}

// PermutationUnrank inverts PermutationRank for permutations of 0…d−1.
func PermutationUnrank(rank *big.Int, d int) ([]int, error) {
	if rank.Sign() < 0 || rank.Cmp(factorial(d)) >= 0 {
		return nil, fmt.Errorf("%w: rank %v for d=%d", ErrBadPermutation, rank, d)
	}
	avail := make([]int, d)
	for i := range avail {
		avail[i] = i
	}
	perm := make([]int, d)
	r := new(big.Int).Set(rank)
	fact := factorial(d)
	for i := 0; i < d; i++ {
		fact.Div(fact, big.NewInt(int64(d-i)))
		idx := new(big.Int)
		idx.DivMod(r, fact, r)
		j := int(idx.Int64())
		perm[i] = avail[j]
		avail = append(avail[:j], avail[j+1:]...)
	}
	return perm, nil
}

func factorial(d int) *big.Int {
	f := big.NewInt(1)
	for i := 2; i <= d; i++ {
		f.Mul(f, big.NewInt(int64(i)))
	}
	return f
}

// NodeCapacity returns ⌊log₂ d!⌋ — the bits one node of degree d can hide
// in its port assignment.
func NodeCapacity(d int) int {
	f := factorial(d)
	if f.BitLen() <= 1 {
		return 0
	}
	// ⌊log₂ d!⌋: d! has BitLen b ⇒ 2^(b−1) ≤ d!; values 0…2^(b−1)−1 fit
	// strictly below d! only when d! is not a power of two (true for d ≥ 3;
	// for d=2, d!=2 gives exactly 1 bit).
	return f.BitLen() - 1
}

// Capacity returns Σ_v NodeCapacity(d(v)) for the whole graph — the paper's
// "d(v) log d(v) bits of the routing function" per node, summed.
func Capacity(g *graph.Graph) int {
	total := 0
	for v := 1; v <= g.N(); v++ {
		total += NodeCapacity(g.Degree(v))
	}
	return total
}

// StoreBits hides the first nbits bits of payload in a fresh port
// assignment for g: node by node (increasing label), each node's slice of
// the payload selects which permutation of its sorted neighbours becomes
// its port table. The payload must fit Capacity(g).
func StoreBits(g *graph.Graph, payload []byte, nbits int) (*graph.Ports, error) {
	if nbits > Capacity(g) {
		return nil, fmt.Errorf("%w: %d > %d", ErrPayloadTooLarge, nbits, Capacity(g))
	}
	r, err := bitio.NewReader(payload, nbits)
	if err != nil {
		return nil, fmt.Errorf("portcode: %w", err)
	}
	perms := make([][]int, g.N()+1)
	for v := 1; v <= g.N(); v++ {
		d := g.Degree(v)
		take := NodeCapacity(d)
		if take > r.Remaining() {
			take = r.Remaining()
		}
		var rank *big.Int
		if take == 0 {
			rank = new(big.Int)
		} else {
			chunk, err := readBig(r, take)
			if err != nil {
				return nil, err
			}
			rank = chunk
		}
		perm, err := PermutationUnrank(rank, d)
		if err != nil {
			return nil, err
		}
		perms[v] = perm
	}
	ports, err := graph.PermutedPorts(g, perms)
	if err != nil {
		return nil, err
	}
	return ports, nil
}

// LoadBits recovers nbits payload bits from a port assignment produced by
// StoreBits.
func LoadBits(g *graph.Graph, ports *graph.Ports, nbits int) ([]byte, error) {
	if nbits > Capacity(g) {
		return nil, fmt.Errorf("%w: %d > %d", ErrPayloadTooLarge, nbits, Capacity(g))
	}
	w := bitio.NewWriter(nbits)
	remaining := nbits
	for v := 1; v <= g.N() && remaining > 0; v++ {
		d := g.Degree(v)
		take := NodeCapacity(d)
		if take > remaining {
			take = remaining
		}
		if take == 0 {
			continue
		}
		perm, err := permOf(g, ports, v)
		if err != nil {
			return nil, err
		}
		rank, err := PermutationRank(perm)
		if err != nil {
			return nil, err
		}
		if rank.BitLen() > take {
			return nil, fmt.Errorf("%w: node %d rank needs %d bits, slot %d", ErrBadPermutation, v, rank.BitLen(), take)
		}
		if err := writeBig(w, rank, take); err != nil {
			return nil, err
		}
		remaining -= take
	}
	return w.Bytes(), nil
}

// permOf recovers the 0-based neighbour-rank permutation a port table
// realises at node v.
func permOf(g *graph.Graph, ports *graph.Ports, v int) ([]int, error) {
	sorted := g.Neighbors(v)
	rankOf := make(map[int]int, len(sorted))
	for i, w := range sorted {
		rankOf[w] = i
	}
	perm := make([]int, len(sorted))
	for p := 1; p <= len(sorted); p++ {
		nb, err := ports.Neighbor(v, p)
		if err != nil {
			return nil, err
		}
		perm[p-1] = rankOf[nb]
	}
	return perm, nil
}

func readBig(r *bitio.Reader, width int) (*big.Int, error) {
	v := new(big.Int)
	for i := 0; i < width; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		v.Lsh(v, 1)
		if b {
			v.Or(v, big.NewInt(1))
		}
	}
	return v, nil
}

func writeBig(w *bitio.Writer, v *big.Int, width int) error {
	for i := width - 1; i >= 0; i-- {
		w.WriteBit(v.Bit(i) == 1)
	}
	return nil
}
