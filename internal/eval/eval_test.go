package eval

import (
	"errors"
	"strings"
	"testing"

	"routetab/internal/schemes/compact"
	"routetab/internal/stats"
)

// smallConfig keeps unit-test sweeps quick; the growth fits need a wider
// spread, used only in the dedicated fit tests.
func smallConfig() Config {
	return Config{Sizes: []int{32, 64, 96}, Trials: 1, Seed: 7, C: 3, SamplePairs: 300}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Sizes: []int{8}, Trials: 1, C: 3},
		{Sizes: []int{32}, Trials: 0, C: 3},
		{Sizes: []int{32}, Trials: 1, C: 0},
	}
	for i, cfg := range bad {
		if _, err := cfg.E2Labels(); !errors.Is(err, ErrBadConfig) {
			t.Errorf("config %d: err = %v, want ErrBadConfig", i, err)
		}
	}
}

func TestE1CompactStretchOneAndQuadratic(t *testing.T) {
	cfg := Config{Sizes: []int{32, 64, 128, 256}, Trials: 1, Seed: 3, C: 3, SamplePairs: 300}
	s, err := cfg.E1Compact(compact.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Points {
		if p.MaxStretch != 1 {
			t.Fatalf("n=%d: stretch %v", p.N, p.MaxStretch)
		}
		if p.MaxPerNodeBits > 8*float64(p.N) {
			t.Fatalf("n=%d: per-node %v > 8n", p.N, p.MaxPerNodeBits)
		}
	}
	if s.Fit.Model != stats.GrowthN2 {
		t.Fatalf("fit = %v, want n² (spread %v)", s.Fit.Model, s.Fit.Spread)
	}
	if !s.FitMatchesPaper() {
		t.Fatal("FitMatchesPaper false")
	}
}

func TestE4HubShape(t *testing.T) {
	cfg := Config{Sizes: []int{64, 128, 256, 512}, Trials: 1, Seed: 4, C: 3, SamplePairs: 300}
	s, err := cfg.E4Hub()
	if err != nil {
		t.Fatal(err)
	}
	// n·loglog n is hard to separate from n at these sizes; accept either
	// neighbouring shape but reject anything ≥ n log n.
	switch s.Fit.Model {
	case stats.GrowthN, stats.GrowthNLogLogN:
	default:
		t.Fatalf("hub fit = %v", s.Fit.Model)
	}
	for _, p := range s.Points {
		if p.MaxStretch > 2 {
			t.Fatalf("n=%d: stretch %v", p.N, p.MaxStretch)
		}
	}
}

func TestE5WalkerLinearExact(t *testing.T) {
	cfg := smallConfig()
	s, err := cfg.E5Walker()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Points {
		if p.TotalBits != 2*float64(p.N) {
			t.Fatalf("n=%d: total %v, want exactly 2n", p.N, p.TotalBits)
		}
	}
	if s.Fit.Model != stats.GrowthN {
		t.Fatalf("fit = %v, want n", s.Fit.Model)
	}
}

func TestE6ImpliedFloor(t *testing.T) {
	cfg := smallConfig()
	rs, err := cfg.E6RoutingCodec()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("results = %v", rs)
	}
	for _, r := range rs {
		if !r.CodecValid {
			t.Fatalf("n=%d: codec did not round-trip", r.N)
		}
		// Floor ≈ n/2 − headers; must stay below the measured 6n-bit F(u)
		// (consistency) and above a token fraction of n for larger sizes.
		if r.MeasuredPerNode < r.ImpliedFloorPerNode {
			t.Fatalf("n=%d: measured %v < implied floor %v — bound violated", r.N, r.MeasuredPerNode, r.ImpliedFloorPerNode)
		}
	}
	// The floor grows linearly with n.
	if rs[2].ImpliedFloorPerNode <= rs[0].ImpliedFloorPerNode {
		t.Fatal("implied floor not increasing with n")
	}
}

func TestE8EntropyDominatesAndIsRecovered(t *testing.T) {
	cfg := smallConfig()
	pes, ns, err := cfg.E8Ports()
	if err != nil {
		t.Fatal(err)
	}
	if len(pes) != len(ns) || len(pes) == 0 {
		t.Fatal("empty results")
	}
	for i, pe := range pes {
		if float64(pe.TableBits) < pe.EntropyBits {
			t.Fatalf("n=%d: table %d < entropy %v", ns[i], pe.TableBits, pe.EntropyBits)
		}
	}
}

func TestE9ExtractionAtEverySize(t *testing.T) {
	cfg := smallConfig()
	rs, err := cfg.E9Family()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no E9 results")
	}
	for _, r := range rs {
		if !r.ExtractionOK {
			t.Fatalf("k=%d: extraction failed", r.K)
		}
		if r.EntropyBits <= 0 || r.SchemeBits <= 0 {
			t.Fatalf("k=%d: degenerate ledger %+v", r.K, r)
		}
	}
}

func TestCertifySamples(t *testing.T) {
	cfg := Config{Sizes: []int{64, 128}, Trials: 2, Seed: 9, C: 3, SamplePairs: 100}
	fr, err := cfg.CertifySamples(sampleUniform)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform samples should essentially always certify (1−1/n³ mass).
	for n, f := range fr {
		if f < 0.5 {
			t.Fatalf("n=%d: certified fraction %v", n, f)
		}
	}
}

func TestRenderSeriesCSV(t *testing.T) {
	cfg := smallConfig()
	s, err := cfg.E5Walker()
	if err != nil {
		t.Fatal(err)
	}
	csv := RenderSeriesCSV(s)
	if !strings.Contains(csv, "n,total_bits") || !strings.Contains(csv, "\n32,") {
		t.Fatalf("csv = %q", csv)
	}
}

func TestRunAllAndRenderTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in short mode")
	}
	cfg := Config{Sizes: []int{32, 48, 64}, Trials: 1, Seed: 5, C: 3, SamplePairs: 200}
	res, err := RunAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTable1(res)
	for _, want := range []string{
		"Table 1",
		"average upper",
		"average lower",
		"worst case lower",
		"Thm 1", "Thm 2", "Thm 6", "Thm 8", "Thm 9", "Thm 10",
		"II^alpha", "IA^alpha", "II^gamma",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q", want)
		}
	}
	if res.E1II == nil || res.E9 == nil || res.CertifiedFraction == nil {
		t.Fatal("incomplete results")
	}
}

func TestCorollary1Averages(t *testing.T) {
	cfg := Config{Sizes: []int{32, 64}, Trials: 3, Seed: 11, C: 3, SamplePairs: 100}
	entries, err := cfg.Corollary1Averages()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("entries = %d, want 5", len(entries))
	}
	for _, e := range entries {
		if len(e.Points) != 2 {
			t.Fatalf("%s: %d points", e.Name, len(e.Points))
		}
		for _, p := range e.Points {
			if p.Built == 0 {
				t.Fatalf("%s n=%d: nothing built", e.Name, p.N)
			}
			if p.Mean <= 0 {
				t.Fatalf("%s n=%d: mean %v", e.Name, p.N, p.Mean)
			}
			if p.CI95 < 0 {
				t.Fatalf("%s n=%d: CI %v", e.Name, p.N, p.CI95)
			}
		}
		// Averages must grow with n.
		if e.Points[1].Mean <= e.Points[0].Mean {
			t.Fatalf("%s: average not increasing: %v", e.Name, e.Points)
		}
	}
	out := RenderAverages(entries)
	if !strings.Contains(out, "theorem1-compact") || !strings.Contains(out, "95% CI") {
		t.Fatalf("render = %q", out)
	}
}

func TestCorollary1FallbackOnHostileSamples(t *testing.T) {
	// Force fallbacks by using a sparse sampler through the exported
	// machinery: a direct check that trivialTableBits dominates the paper's
	// trivial bound shape.
	if trivialTableBits(64) < 64*63*6 {
		t.Fatal("trivial fallback below n(n−1)log n")
	}
}

func TestE7PatternWithinBudget(t *testing.T) {
	cfg := smallConfig()
	rs, err := cfg.E7Pattern()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("results = %v", rs)
	}
	for _, r := range rs {
		if !r.RoundTrips {
			t.Fatalf("n=%d: pattern codec failed to round-trip", r.N)
		}
		if r.PatternBits > r.Budget {
			t.Fatalf("n=%d: pattern bits %d exceed Claim 2 budget %d", r.N, r.PatternBits, r.Budget)
		}
		if r.PatternBits <= 0 {
			t.Fatalf("n=%d: degenerate pattern bits", r.N)
		}
	}
}

func TestWorstCaseFamilies(t *testing.T) {
	cfg := Config{Sizes: []int{30, 60}, Trials: 1, Seed: 13, C: 3, SamplePairs: 150}
	rs, err := cfg.EWorstCaseFamilies()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 12 { // 6 families × 2 sizes
		t.Fatalf("results = %d", len(rs))
	}
	for _, r := range rs {
		if !r.Delivered {
			t.Fatalf("%s n=%d: undelivered", r.Family, r.N)
		}
		if r.MaxStretch != 1 {
			t.Fatalf("%s n=%d: stretch %v (universal table must be shortest path)", r.Family, r.N, r.MaxStretch)
		}
		if r.TotalBits <= 0 {
			t.Fatalf("%s n=%d: no bits", r.Family, r.N)
		}
	}
}

func TestExperimentsAreDeterministic(t *testing.T) {
	// Seeded configs must reproduce bit-identical results across runs — the
	// property that makes EXPERIMENTS.md regenerable.
	cfg := Config{Sizes: []int{32, 48, 64}, Trials: 2, Seed: 21, C: 3, SamplePairs: 200}
	a, err := cfg.E1Compact(compact.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.E1Compact(compact.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, a.Points[i], b.Points[i])
		}
	}
	e9a, err := cfg.E9Family()
	if err != nil {
		t.Fatal(err)
	}
	e9b, err := cfg.E9Family()
	if err != nil {
		t.Fatal(err)
	}
	for i := range e9a {
		if e9a[i] != e9b[i] {
			t.Fatalf("E9 %d differs", i)
		}
	}
}
