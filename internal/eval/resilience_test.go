package eval

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func smallResilienceConfig() ResilienceConfig {
	return ResilienceConfig{
		N:            32,
		Seed:         5,
		Pairs:        40,
		Probs:        []float64{0, 0.05, 0.15},
		Schemes:      []string{"fulltable", "fullinfo"},
		Retries:      3,
		TimeoutTicks: 64,
	}
}

func TestResilienceDeterministicCSV(t *testing.T) {
	// Acceptance criterion: identical seed + fault plan ⇒ byte-identical CSV
	// across two full runs.
	var a, b bytes.Buffer
	for i, buf := range []*bytes.Buffer{&a, &b} {
		res, err := Resilience(smallResilienceConfig())
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if err := res.WriteCSV(buf); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("CSV not reproducible:\n--- run 1 ---\n%s--- run 2 ---\n%s", a.String(), b.String())
	}
}

func TestResilienceSweepShape(t *testing.T) {
	cfg := smallResilienceConfig()
	res, err := Resilience(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(cfg.Schemes)*len(cfg.Probs) {
		t.Fatalf("points = %d, want %d", len(res.Points), len(cfg.Schemes)*len(cfg.Probs))
	}
	byKey := map[string]ResiliencePoint{}
	for _, pt := range res.Points {
		byKey[pt.Scheme] = pt // last wins; p=0 checked below
		if pt.Pairs != cfg.Pairs {
			t.Fatalf("%s p=%.2f: pairs = %d", pt.Scheme, pt.P, pt.Pairs)
		}
		if pt.DeliveryRatio() < 0 || pt.DeliveryRatio() > 1 {
			t.Fatalf("ratio %v out of range", pt.DeliveryRatio())
		}
		if pt.P == 0 {
			if pt.DeliveryRatio() != 1 {
				t.Fatalf("%s: delivery ratio %.3f at p=0, want 1.0", pt.Scheme, pt.DeliveryRatio())
			}
			if pt.Stats.Dropped != 0 || pt.Stats.Crashed != 0 {
				t.Fatalf("%s: faults at p=0: %+v", pt.Scheme, pt.Stats)
			}
			if pt.MeanStretch < 1 {
				t.Fatalf("%s: stretch %.3f < 1 at p=0", pt.Scheme, pt.MeanStretch)
			}
		} else if pt.Stats.Dropped == 0 && pt.Stats.Retries == 0 && pt.Stats.DetourHops == 0 {
			t.Fatalf("%s p=%.2f: no fault activity recorded: %+v", pt.Scheme, pt.P, pt.Stats)
		}
	}
	// The CSV covers every scheme.
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	csv := buf.String()
	if !strings.HasPrefix(csv, "scheme,p,") {
		t.Fatalf("csv header: %q", strings.SplitN(csv, "\n", 2)[0])
	}
	for _, s := range cfg.Schemes {
		if !strings.Contains(csv, s+",") {
			t.Fatalf("scheme %s missing from CSV", s)
		}
	}
	if res.String() == "" || !strings.Contains(res.String(), "ratio") {
		t.Fatal("summary table empty")
	}
}

func TestResilienceConfigValidation(t *testing.T) {
	for _, cfg := range []ResilienceConfig{
		{N: 8, Pairs: 10, Probs: []float64{0}, Schemes: []string{"fulltable"}},
		{N: 32, Pairs: 0, Probs: []float64{0}, Schemes: []string{"fulltable"}},
		{N: 32, Pairs: 10, Probs: nil, Schemes: []string{"fulltable"}},
		{N: 32, Pairs: 10, Probs: []float64{1.5}, Schemes: []string{"fulltable"}},
		{N: 32, Pairs: 10, Probs: []float64{0}, Schemes: nil},
		{N: 32, Pairs: 10, Probs: []float64{0}, Schemes: []string{"nonesuch"}},
	} {
		if _, err := Resilience(cfg); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
	if got := len(DefaultFailureProbs()); got != 21 {
		t.Fatalf("default probs = %d, want 21 (0 … 0.2)", got)
	}
	if DefaultFailureProbs()[20] != 0.2 {
		t.Fatalf("last prob = %v", DefaultFailureProbs()[20])
	}
}
