// Package eval is the experiment harness: it regenerates the paper's
// evaluation artefacts — Table 1's nine-model bound grid and the Figure 1
// lower-bound family — as measured series with growth fits. DESIGN.md's
// experiment index (E1…E12) maps one runner to every table cell and figure.
package eval

import (
	"errors"
	"fmt"
	"math/rand"

	"routetab/internal/graph"
	"routetab/internal/kolmo"
	"routetab/internal/models"
	"routetab/internal/par"
	"routetab/internal/routing"
	"routetab/internal/shortestpath"
	"routetab/internal/stats"
)

// ErrBadConfig reports invalid sweep parameters.
var ErrBadConfig = errors.New("eval: bad config")

// Config parameterises every experiment sweep.
type Config struct {
	// Sizes is the n sweep (each ≥ 16).
	Sizes []int
	// Trials is the number of seeded graphs per size.
	Trials int
	// Seed derives all graph seeds (deterministic experiments).
	Seed int64
	// C is the randomness parameter (c·log n-random graphs; default 3).
	C float64
	// SamplePairs bounds the routed pairs per verification (0 = all pairs).
	SamplePairs int
}

// DefaultConfig is a laptop-scale sweep.
func DefaultConfig() Config {
	return Config{
		Sizes:       []int{64, 128, 256},
		Trials:      3,
		Seed:        1,
		C:           3,
		SamplePairs: 2000,
	}
}

func (c Config) validate() error {
	if len(c.Sizes) == 0 {
		return fmt.Errorf("%w: empty size sweep", ErrBadConfig)
	}
	for _, n := range c.Sizes {
		if n < 16 {
			return fmt.Errorf("%w: size %d < 16", ErrBadConfig, n)
		}
	}
	if c.Trials < 1 {
		return fmt.Errorf("%w: trials %d", ErrBadConfig, c.Trials)
	}
	if c.C <= 0 {
		return fmt.Errorf("%w: c = %v", ErrBadConfig, c.C)
	}
	return nil
}

func (c Config) rng(size int, trial int) *rand.Rand {
	return rand.New(rand.NewSource(c.Seed*1_000_003 + int64(size)*1009 + int64(trial)))
}

// Point is one measurement of a sweep.
type Point struct {
	N int
	// TotalBits is the mean total scheme size across trials.
	TotalBits float64
	// MaxPerNodeBits is the worst per-node function size observed.
	MaxPerNodeBits float64
	// MaxStretch and MaxHops are the worst routing behaviour observed.
	MaxStretch float64
	MaxHops    int
}

// Series is one experiment's output: measured points plus the growth fit and
// the paper's claimed bound for EXPERIMENTS.md.
type Series struct {
	ID    string
	Title string
	Model string
	// PaperBound is the bound the paper claims for this cell.
	PaperBound string
	// PaperGrowth is the claimed growth shape, checked against the fit.
	PaperGrowth stats.GrowthModel
	Points      []Point
	Fit         stats.GrowthFit
}

// FitMatchesPaper reports whether the measured growth fit selected the
// paper's claimed shape.
func (s *Series) FitMatchesPaper() bool { return s.Fit.Model == s.PaperGrowth }

// fitSeries fills in the growth fit from the measured points.
func fitSeries(s *Series) error {
	ns := make([]int, len(s.Points))
	ys := make([]float64, len(s.Points))
	for i, p := range s.Points {
		ns[i] = p.N
		ys[i] = p.TotalBits
	}
	fit, err := stats.FitGrowth(ns, ys)
	if err != nil {
		return err
	}
	s.Fit = fit
	return nil
}

// SchemeBuilder builds a scheme for one sampled graph.
type SchemeBuilder func(g *graph.Graph, rng *rand.Rand) (routing.Scheme, *graph.Ports, error)

// trialOut is one (size, trial) cell's measurement, produced by a pool
// worker and reduced sequentially afterwards.
type trialOut struct {
	totalBits  float64
	maxPerNode float64
	maxStretch float64
	maxHops    int
}

// sweepScheme runs the generic size×trial sweep for one construction:
// sample graph, build scheme, measure space under model m, route and record
// worst-case behaviour. The (size, trial) grid fans out over a bounded worker
// pool — every cell owns its seeded RNG (c.rng) and writes only its own slot,
// and the reduction below runs sequentially in trial order, so the points are
// byte-identical to the sequential sweep this replaced.
func (c Config) sweepScheme(m models.Model, build SchemeBuilder, sample func(n int, rng *rand.Rand) (*graph.Graph, error)) ([]Point, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	cells := make([]trialOut, len(c.Sizes)*c.Trials)
	err := par.ForEach(len(cells), func(idx int) error {
		n := c.Sizes[idx/c.Trials]
		trial := idx % c.Trials
		rng := c.rng(n, trial)
		g, err := sample(n, rng)
		if err != nil {
			return err
		}
		scheme, ports, err := build(g, rng)
		if err != nil {
			return fmt.Errorf("eval: n=%d trial %d: %w", n, trial, err)
		}
		sp, err := routing.MeasureSpace(scheme, m)
		if err != nil {
			return err
		}
		rep, err := c.verify(g, ports, scheme)
		if err != nil {
			return err
		}
		if !rep.AllDelivered() {
			return fmt.Errorf("eval: n=%d trial %d: %d/%d undelivered (%v)",
				n, trial, rep.Pairs-rep.Delivered, rep.Pairs, rep.Failures)
		}
		cells[idx] = trialOut{
			totalBits:  float64(sp.Total),
			maxPerNode: float64(sp.MaxFunctionBits),
			maxStretch: rep.MaxStretch,
			maxHops:    rep.MaxHops,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	points := make([]Point, 0, len(c.Sizes))
	for si, n := range c.Sizes {
		var totalSum float64
		pt := Point{N: n}
		for trial := 0; trial < c.Trials; trial++ {
			cell := cells[si*c.Trials+trial]
			totalSum += cell.totalBits
			if cell.maxPerNode > pt.MaxPerNodeBits {
				pt.MaxPerNodeBits = cell.maxPerNode
			}
			if cell.maxStretch > pt.MaxStretch {
				pt.MaxStretch = cell.maxStretch
			}
			if cell.maxHops > pt.MaxHops {
				pt.MaxHops = cell.maxHops
			}
		}
		pt.TotalBits = totalSum / float64(c.Trials)
		points = append(points, pt)
	}
	return points, nil
}

func (c Config) verify(g *graph.Graph, ports *graph.Ports, scheme routing.Scheme) (*routing.Report, error) {
	sim, err := routing.NewSim(g, ports, scheme)
	if err != nil {
		return nil, err
	}
	// Cached: scheme builders (e.g. E10's fullinfo) request the same matrix.
	dm, err := shortestpath.AllPairsCached(g)
	if err != nil {
		return nil, err
	}
	limit := routing.DefaultHopLimit(g.N())
	n := g.N()
	var pairs [][2]int
	if c.SamplePairs > 0 && n*(n-1) > c.SamplePairs {
		rng := rand.New(rand.NewSource(c.Seed + int64(n)))
		for len(pairs) < c.SamplePairs {
			u := rng.Intn(n) + 1
			v := rng.Intn(n) + 1
			if u != v {
				pairs = append(pairs, [2]int{u, v})
			}
		}
	} else {
		for u := 1; u <= n; u++ {
			for v := 1; v <= n; v++ {
				if u != v {
					pairs = append(pairs, [2]int{u, v})
				}
			}
		}
	}
	return routing.VerifyPairsParallel(sim, dm, pairs, limit)
}

// CertifySamples certifies each sampled graph of the sweep as
// c·log n-random; experiments report the certified fraction (E11). A nil
// sampler means uniform G(n, 1/2).
func (c Config) CertifySamples(sample func(n int, rng *rand.Rand) (*graph.Graph, error)) (map[int]float64, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	if sample == nil {
		sample = sampleUniform
	}
	out := make(map[int]float64, len(c.Sizes))
	for _, n := range c.Sizes {
		pass := 0
		for trial := 0; trial < c.Trials; trial++ {
			g, err := sample(n, c.rng(n, trial))
			if err != nil {
				return nil, err
			}
			cert, err := kolmo.Certify(g, c.C)
			if err != nil {
				return nil, err
			}
			if cert.OK() {
				pass++
			}
		}
		out[n] = float64(pass) / float64(c.Trials)
	}
	return out, nil
}
