package eval

import (
	"fmt"
	"math/rand"

	"routetab/internal/bitio"
	"routetab/internal/descmethods"
	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/kolmo"
	"routetab/internal/lowerbound"
	"routetab/internal/models"
	"routetab/internal/routing"
	"routetab/internal/schemes/centers"
	"routetab/internal/schemes/compact"
	"routetab/internal/schemes/fullinfo"
	"routetab/internal/schemes/fulltable"
	"routetab/internal/schemes/hub"
	"routetab/internal/schemes/interval"
	"routetab/internal/schemes/labels"
	"routetab/internal/schemes/walker"
	"routetab/internal/shortestpath"
	"routetab/internal/stats"
)

func sampleUniform(n int, rng *rand.Rand) (*graph.Graph, error) {
	return gengraph.GnHalf(n, rng)
}

// E1Compact measures the Theorem 1 construction (Table 1 "average upper
// O(n²)" in IB ∨ II).
func (c Config) E1Compact(opts compact.Options) (*Series, error) {
	m := models.IIAlpha
	if opts.Mode == compact.ModeIB {
		m = models.IBAlpha
	}
	pts, err := c.sweepScheme(m, func(g *graph.Graph, _ *rand.Rand) (routing.Scheme, *graph.Ports, error) {
		s, err := compact.Build(g, opts)
		return s, graph.SortedPorts(g), err
	}, sampleUniform)
	if err != nil {
		return nil, err
	}
	s := &Series{
		ID:          "E1",
		Title:       "Theorem 1 compact scheme (shortest path)",
		Model:       m.String(),
		PaperBound:  "6n² bits total (6n per node)",
		PaperGrowth: stats.GrowthN2,
		Points:      pts,
	}
	return s, fitSeries(s)
}

// E2Labels measures the Theorem 2 construction (Table 1 "average upper
// O(n log² n)" in II ∧ γ).
func (c Config) E2Labels() (*Series, error) {
	pts, err := c.sweepScheme(models.IIGamma, func(g *graph.Graph, _ *rand.Rand) (routing.Scheme, *graph.Ports, error) {
		s, err := labels.Build(g, c.C)
		return s, graph.SortedPorts(g), err
	}, sampleUniform)
	if err != nil {
		return nil, err
	}
	s := &Series{
		ID:          "E2",
		Title:       "Theorem 2 label scheme (shortest path)",
		Model:       models.IIGamma.String(),
		PaperBound:  "(c+3)·n·log²n + n·log n + O(n) bits",
		PaperGrowth: stats.GrowthNLog2N,
		Points:      pts,
	}
	return s, fitSeries(s)
}

// E3Centers measures Theorem 3 (stretch 1.5 → O(n log n)).
func (c Config) E3Centers() (*Series, error) {
	pts, err := c.sweepScheme(models.IIAlpha, func(g *graph.Graph, _ *rand.Rand) (routing.Scheme, *graph.Ports, error) {
		s, err := centers.Build(g, 1)
		return s, graph.SortedPorts(g), err
	}, sampleUniform)
	if err != nil {
		return nil, err
	}
	for _, p := range pts {
		if p.MaxStretch > 1.5 {
			return nil, fmt.Errorf("eval: E3 stretch %v > 1.5 at n=%d", p.MaxStretch, p.N)
		}
	}
	s := &Series{
		ID:          "E3",
		Title:       "Theorem 3 centre scheme (stretch 1.5)",
		Model:       models.IIAlpha.String(),
		PaperBound:  "< (6c+20)·n·log n bits",
		PaperGrowth: stats.GrowthNLogN,
		Points:      pts,
	}
	return s, fitSeries(s)
}

// E4Hub measures Theorem 4 (stretch 2 → n loglog n + 6n).
func (c Config) E4Hub() (*Series, error) {
	pts, err := c.sweepScheme(models.IIAlpha, func(g *graph.Graph, _ *rand.Rand) (routing.Scheme, *graph.Ports, error) {
		s, err := hub.Build(g, 1)
		return s, graph.SortedPorts(g), err
	}, sampleUniform)
	if err != nil {
		return nil, err
	}
	for _, p := range pts {
		if p.MaxStretch > 2 {
			return nil, fmt.Errorf("eval: E4 stretch %v > 2 at n=%d", p.MaxStretch, p.N)
		}
	}
	s := &Series{
		ID:          "E4",
		Title:       "Theorem 4 hub scheme (stretch 2)",
		Model:       models.IIAlpha.String(),
		PaperBound:  "n·loglog n + 6n bits",
		PaperGrowth: stats.GrowthNLogLogN,
		Points:      pts,
	}
	return s, fitSeries(s)
}

// E5Walker measures Theorem 5 (stretch (c+3)log n → O(n)).
func (c Config) E5Walker() (*Series, error) {
	pts, err := c.sweepScheme(models.IIAlpha, func(g *graph.Graph, _ *rand.Rand) (routing.Scheme, *graph.Ports, error) {
		s, err := walker.Build(g, c.C)
		return s, graph.SortedPorts(g), err
	}, sampleUniform)
	if err != nil {
		return nil, err
	}
	s := &Series{
		ID:          "E5",
		Title:       "Theorem 5 walker scheme (stretch O(log n))",
		Model:       models.IIAlpha.String(),
		PaperBound:  "O(n) bits total (O(1) per node)",
		PaperGrowth: stats.GrowthN,
		Points:      pts,
	}
	return s, fitSeries(s)
}

// E6Result is the Theorem 6 codec ledger at one size.
type E6Result struct {
	N int
	// ImpliedFloorPerNode is (#non-neighbours − header bits): the size any
	// shortest-path F(u) must have on this graph by the codec argument,
	// ≈ n/2 − o(n).
	ImpliedFloorPerNode float64
	// MeasuredPerNode is the Theorem 1 F(u) actually serialized.
	MeasuredPerNode float64
	// CodecValid records that the description round-tripped exactly.
	CodecValid bool
}

// E6RoutingCodec runs Theorem 6's description method (Table 1 "average lower
// Ω(n²)" in II ∧ α).
func (c Config) E6RoutingCodec() ([]E6Result, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	var out []E6Result
	for _, n := range c.Sizes {
		g, err := sampleUniform(n, c.rng(n, 0))
		if err != nil {
			return nil, err
		}
		codec := descmethods.RoutingFuncCodec{U: 1}
		desc, err := kolmo.Describe(codec, g)
		if err != nil {
			return nil, err
		}
		scheme, err := compact.Build(g, compact.DefaultOptions())
		if err != nil {
			return nil, err
		}
		// Exact header cost of the Theorem 6 description: 8-bit method tag,
		// ⌈log(n+1)⌉-bit pivot, and the self-delimited |F(u)| length field.
		headers := 8 + bitio.CeilLogPlus1(n) +
			bitio.ShortSelfDelimitingLen(uint64(scheme.FunctionBits(1)))
		out = append(out, E6Result{
			N:                   n,
			ImpliedFloorPerNode: float64(n - 1 - g.Degree(1) - headers),
			MeasuredPerNode:     float64(scheme.FunctionBits(1)),
			CodecValid:          desc.Bits > 0,
		})
	}
	return out, nil
}

// WorstCaseFamilyResult records the universal table's cost on one
// deterministic (worst-case) family — the "worst case upper bound" side of
// Table 1: the trivial O(n² log n) table works for *every* graph, not just
// the random ones.
type WorstCaseFamilyResult struct {
	Family     string
	N          int
	TotalBits  int
	MaxStretch float64
	Delivered  bool
}

// EWorstCaseFamilies measures the universal full-table scheme on
// deterministic families (chain, cycle, star, grid, tree, and the Figure 1
// family G_B) at each sweep size.
func (c Config) EWorstCaseFamilies() ([]WorstCaseFamilyResult, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	families := []struct {
		name string
		mk   func(n int, rng *rand.Rand) (*graph.Graph, error)
	}{
		{"chain", func(n int, _ *rand.Rand) (*graph.Graph, error) { return gengraph.Chain(n) }},
		{"cycle", func(n int, _ *rand.Rand) (*graph.Graph, error) { return gengraph.Cycle(n) }},
		{"star", func(n int, _ *rand.Rand) (*graph.Graph, error) { return gengraph.Star(n) }},
		{"grid", func(n int, _ *rand.Rand) (*graph.Graph, error) {
			side := 1
			for side*side < n {
				side++
			}
			return gengraph.Grid(side, side)
		}},
		{"tree", func(n int, rng *rand.Rand) (*graph.Graph, error) { return gengraph.RandomTree(n, rng) }},
		{"figure1", func(n int, rng *rand.Rand) (*graph.Graph, error) {
			gb, err := gengraph.RandomGB(n/3, rng)
			if err != nil {
				return nil, err
			}
			return gb.G, nil
		}},
	}
	var out []WorstCaseFamilyResult
	for _, n := range c.Sizes {
		for _, fam := range families {
			g, err := fam.mk(n, c.rng(n, 0))
			if err != nil {
				return nil, err
			}
			ports := graph.SortedPorts(g)
			s, err := fulltable.Build(g, ports)
			if err != nil {
				return nil, err
			}
			sp, err := routing.MeasureSpace(s, models.IAAlpha)
			if err != nil {
				return nil, err
			}
			rep, err := c.verify(g, ports, s)
			if err != nil {
				return nil, err
			}
			out = append(out, WorstCaseFamilyResult{
				Family:     fam.name,
				N:          g.N(),
				TotalBits:  sp.Total,
				MaxStretch: rep.MaxStretch,
				Delivered:  rep.AllDelivered(),
			})
		}
	}
	return out, nil
}

// E7Result is the Claims 2–3 ledger at one size.
type E7Result struct {
	N int
	// PatternBits is Σ_u (Claim 3 pattern bits): the extra cost of turning
	// all local routing functions into full interconnection knowledge.
	PatternBits int
	// Budget is Σ_u (n−1−d(u)), the Claim 2 ceiling.
	Budget int
	// RoundTrips records that every node's pattern decoded exactly.
	RoundTrips bool
}

// E7Pattern runs the Theorem 7 accounting (Claims 2–3) on adversarially
// ported uniform graphs: every node's interconnection pattern is encoded
// from its routing function plus Σ⌈log xᵢ⌉ bits and decoded back.
func (c Config) E7Pattern() ([]E7Result, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	var out []E7Result
	for _, n := range c.Sizes {
		rng := c.rng(n, 0)
		g, err := sampleUniform(n, rng)
		if err != nil {
			return nil, err
		}
		ports := graph.RandomPorts(g, rng)
		s, err := fulltable.Build(g, ports)
		if err != nil {
			return nil, err
		}
		res := E7Result{N: n, RoundTrips: true}
		for u := 1; u <= n; u++ {
			codec := lowerbound.PatternCodec{Scheme: s, Degree: g.Degree(u), U: u}
			enc, err := codec.EncodePattern(g, ports)
			if err != nil {
				return nil, err
			}
			dec, err := codec.DecodePattern(bitio.ReaderFor(enc))
			if err != nil {
				return nil, err
			}
			for p := 1; p <= g.Degree(u); p++ {
				want, err := ports.Neighbor(u, p)
				if err != nil {
					return nil, err
				}
				if dec[p] != want {
					res.RoundTrips = false
				}
			}
			res.PatternBits += enc.Len()
			res.Budget += lowerbound.Claim3Budget(n, g.Degree(u))
		}
		out = append(out, res)
	}
	return out, nil
}

// E8Ports runs the Theorem 8 adversarial-port experiment (Table 1 "average
// lower Ω(n² log n)" in IA ∧ α).
func (c Config) E8Ports() ([]lowerbound.PortEntropy, []int, error) {
	if err := c.validate(); err != nil {
		return nil, nil, err
	}
	var out []lowerbound.PortEntropy
	var ns []int
	for _, n := range c.Sizes {
		rng := c.rng(n, 0)
		g, err := sampleUniform(n, rng)
		if err != nil {
			return nil, nil, err
		}
		ports := graph.RandomPorts(g, rng)
		pe, err := lowerbound.MeasurePortEntropy(g, ports)
		if err != nil {
			return nil, nil, err
		}
		// The decoding step must actually recover the adversary's
		// permutation from the tables.
		s, err := fulltable.Build(g, ports)
		if err != nil {
			return nil, nil, err
		}
		rec, err := lowerbound.RecoverPortAssignment(g, s)
		if err != nil {
			return nil, nil, err
		}
		if err := lowerbound.VerifyRecoveredPorts(g, ports, rec); err != nil {
			return nil, nil, err
		}
		out = append(out, *pe)
		ns = append(ns, n)
	}
	return out, ns, nil
}

// E9Result is the Figure 1 / Theorem 9 ledger at one block size.
type E9Result struct {
	K, N int
	// EntropyBits is k·log₂(k!) ≈ (n²/9)·log n: the worst-case floor.
	EntropyBits float64
	// ExtractionOK records that the hidden permutation was recovered from
	// the scheme's local functions alone.
	ExtractionOK bool
	// SchemeBits is the total size of the (universal) scheme used.
	SchemeBits int
}

// E9Family runs the Figure 1 experiment for block sizes derived from the
// configured sweep (k = n/3).
func (c Config) E9Family() ([]E9Result, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	var out []E9Result
	for _, n := range c.Sizes {
		k := n / 3
		if k < 2 {
			continue
		}
		rng := c.rng(n, 0)
		gb, err := gengraph.RandomGB(k, rng)
		if err != nil {
			return nil, err
		}
		ports := graph.SortedPorts(gb.G)
		scheme, err := fulltable.Build(gb.G, ports)
		if err != nil {
			return nil, err
		}
		sim, err := routing.NewSim(gb.G, ports, scheme)
		if err != nil {
			return nil, err
		}
		ex, err := lowerbound.ExtractPermutation(gb, sim)
		if err != nil {
			return nil, err
		}
		sp, err := routing.MeasureSpace(scheme, models.IAAlpha)
		if err != nil {
			return nil, err
		}
		out = append(out, E9Result{
			K:            k,
			N:            gb.G.N(),
			EntropyBits:  ex.TotalBits,
			ExtractionOK: lowerbound.VerifyExtraction(gb, ex) == nil,
			SchemeBits:   sp.Total,
		})
	}
	return out, nil
}

// E10FullInfo measures the full-information scheme (Theorem 10, Θ(n³)).
func (c Config) E10FullInfo() (*Series, error) {
	pts, err := c.sweepScheme(models.IAAlpha, func(g *graph.Graph, _ *rand.Rand) (routing.Scheme, *graph.Ports, error) {
		ports := graph.SortedPorts(g)
		// Cached: Config.verify needs the same graph's matrix right after.
		dm, err := shortestpath.AllPairsCached(g)
		if err != nil {
			return nil, nil, err
		}
		s, err := fullinfo.Build(g, ports, dm)
		return s, ports, err
	}, sampleUniform)
	if err != nil {
		return nil, err
	}
	s := &Series{
		ID:          "E10",
		Title:       "Full-information shortest-path scheme",
		Model:       models.IAAlpha.String(),
		PaperBound:  "Θ(n³) total (≥ n³/4 − o(n³))",
		PaperGrowth: stats.GrowthN3,
		Points:      pts,
	}
	return s, fitSeries(s)
}

// EIntervalBaseline measures the related-work interval-routing baseline.
func (c Config) EIntervalBaseline() (*Series, error) {
	pts, err := c.sweepScheme(models.IABeta, func(g *graph.Graph, _ *rand.Rand) (routing.Scheme, *graph.Ports, error) {
		ports := graph.SortedPorts(g)
		s, err := interval.Build(g, ports, 1)
		return s, ports, err
	}, sampleUniform)
	if err != nil {
		return nil, err
	}
	s := &Series{
		ID:          "EB",
		Title:       "Interval routing baseline (spanning tree)",
		Model:       models.IABeta.String(),
		PaperBound:  "O(n log n) bits, unbounded stretch (related work [1,6])",
		PaperGrowth: stats.GrowthNLogN,
		Points:      pts,
	}
	return s, fitSeries(s)
}

// EFullTableBaseline measures the trivial universal table (Theorem 8's
// matching upper bound).
func (c Config) EFullTableBaseline(adversarialPorts bool) (*Series, error) {
	pts, err := c.sweepScheme(models.IAAlpha, func(g *graph.Graph, rng *rand.Rand) (routing.Scheme, *graph.Ports, error) {
		var ports *graph.Ports
		if adversarialPorts {
			ports = graph.RandomPorts(g, rng)
		} else {
			ports = graph.SortedPorts(g)
		}
		s, err := fulltable.Build(g, ports)
		return s, ports, err
	}, sampleUniform)
	if err != nil {
		return nil, err
	}
	s := &Series{
		ID:          "E8u",
		Title:       "Universal full-table scheme",
		Model:       models.IAAlpha.String(),
		PaperBound:  "O(n² log n) bits (optimal under IA ∧ α, Theorem 8)",
		PaperGrowth: stats.GrowthN2LogN,
		Points:      pts,
	}
	return s, fitSeries(s)
}
