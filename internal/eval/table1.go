package eval

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"routetab/internal/schemes/compact"
)

// Results bundles every experiment needed to regenerate Table 1 and the
// figure-level artefacts.
type Results struct {
	Config Config

	E1II, E1IB *Series // Theorem 1 under II and IB
	E2         *Series // Theorem 2
	E3         *Series // Theorem 3
	E4         *Series // Theorem 4
	E5         *Series // Theorem 5
	E10        *Series // Theorem 10
	FullTable  *Series // trivial table (Theorem 8 upper)
	Interval   *Series // related-work baseline

	E6 []E6Result            // Theorem 6 codec ledger
	E7 []E7Result            // Theorem 7 / Claims 2–3 pattern accounting
	E8 []PortEntropyWithSize // Theorem 8 adversarial ports
	E9 []E9Result            // Theorem 9 / Figure 1
	// CertifiedFraction is the E11/E12 mass estimate: fraction of sampled
	// graphs passing full c·log n-randomness certification per size.
	CertifiedFraction map[int]float64
}

// PortEntropyWithSize pairs the Theorem 8 ledger with its size.
type PortEntropyWithSize struct {
	N              int
	EntropyBits    float64
	TableBits      int
	CompressedBits int
}

// RunAll executes the full experiment suite.
func RunAll(cfg Config) (*Results, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	res := &Results{Config: cfg}
	var err error
	if res.E1II, err = cfg.E1Compact(compact.DefaultOptions()); err != nil {
		return nil, fmt.Errorf("E1/II: %w", err)
	}
	ibOpts := compact.Options{Mode: compact.ModeIB, Strategy: compact.LeastFirst, Threshold: compact.ThresholdLogLog}
	if res.E1IB, err = cfg.E1Compact(ibOpts); err != nil {
		return nil, fmt.Errorf("E1/IB: %w", err)
	}
	if res.E2, err = cfg.E2Labels(); err != nil {
		return nil, fmt.Errorf("E2: %w", err)
	}
	if res.E3, err = cfg.E3Centers(); err != nil {
		return nil, fmt.Errorf("E3: %w", err)
	}
	if res.E4, err = cfg.E4Hub(); err != nil {
		return nil, fmt.Errorf("E4: %w", err)
	}
	if res.E5, err = cfg.E5Walker(); err != nil {
		return nil, fmt.Errorf("E5: %w", err)
	}
	if res.E10, err = cfg.E10FullInfo(); err != nil {
		return nil, fmt.Errorf("E10: %w", err)
	}
	if res.FullTable, err = cfg.EFullTableBaseline(true); err != nil {
		return nil, fmt.Errorf("fulltable: %w", err)
	}
	if res.Interval, err = cfg.EIntervalBaseline(); err != nil {
		return nil, fmt.Errorf("interval: %w", err)
	}
	if res.E6, err = cfg.E6RoutingCodec(); err != nil {
		return nil, fmt.Errorf("E6: %w", err)
	}
	if res.E7, err = cfg.E7Pattern(); err != nil {
		return nil, fmt.Errorf("E7: %w", err)
	}
	pes, ns, err := cfg.E8Ports()
	if err != nil {
		return nil, fmt.Errorf("E8: %w", err)
	}
	for i, pe := range pes {
		res.E8 = append(res.E8, PortEntropyWithSize{
			N:              ns[i],
			EntropyBits:    pe.EntropyBits,
			TableBits:      pe.TableBits,
			CompressedBits: pe.CompressedBits,
		})
	}
	if res.E9, err = cfg.E9Family(); err != nil {
		return nil, fmt.Errorf("E9: %w", err)
	}
	if res.CertifiedFraction, err = cfg.CertifySamples(sampleUniform); err != nil {
		return nil, fmt.Errorf("certify: %w", err)
	}
	return res, nil
}

// lastPoint formats a series' largest-n measurement plus its fitted shape.
func lastPoint(s *Series) string {
	if s == nil || len(s.Points) == 0 {
		return "—"
	}
	p := s.Points[len(s.Points)-1]
	return fmt.Sprintf("%.0f bits @ n=%d, fits %s (×%.2f)", p.TotalBits, p.N, s.Fit.Model, s.Fit.Constant)
}

// RenderTable1 prints the measured analogue of the paper's Table 1: the
// nine-model grid of shortest-path routing-scheme sizes, with paper bounds
// and our measurements side by side.
func RenderTable1(res *Results) string {
	var sb strings.Builder
	sb.WriteString("Table 1 — size of shortest path routing schemes (measured reproduction)\n")
	sb.WriteString("Graphs: uniform G(n,1/2) (Kolmogorov-random proxy); certified fraction per size: ")
	for _, n := range res.Config.Sizes {
		fmt.Fprintf(&sb, "n=%d:%.0f%% ", n, 100*res.CertifiedFraction[n])
	}
	sb.WriteString("\n\n")
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "section\tmodel\tpaper bound\tmeasured")

	fmt.Fprintln(tw, "average upper\tIA^alpha\tO(n²·log n) (trivial table)\t"+lastPoint(res.FullTable))
	fmt.Fprintln(tw, "average upper\tIB^alpha\tO(n²) (Thm 1)\t"+lastPoint(res.E1IB))
	fmt.Fprintln(tw, "average upper\tII^alpha\tO(n²) (Thm 1)\t"+lastPoint(res.E1II))
	fmt.Fprintln(tw, "average upper\tII^gamma\tO(n·log²n) (Thm 2)\t"+lastPoint(res.E2))

	for _, e6 := range res.E6 {
		fmt.Fprintf(tw, "average lower\tII^alpha\tΩ(n²): |F(u)| ≥ n/2−o(n) (Thm 6)\timplied floor %.0f bits/node @ n=%d (codec round-trip %t)\n",
			e6.ImpliedFloorPerNode, e6.N, e6.CodecValid)
	}
	for _, e7 := range res.E7 {
		fmt.Fprintf(tw, "average lower\tIA∨IB\tΩ(n²): pattern from F(u)+n/2+o(n) bits (Thm 7)\tpattern %d ≤ budget %d bits @ n=%d (round-trip %t)\n",
			e7.PatternBits, e7.Budget, e7.N, e7.RoundTrips)
	}
	for _, e8 := range res.E8 {
		fmt.Fprintf(tw, "average lower\tIA^alpha\tΩ(n²·log n) (Thm 8)\tport entropy %.0f bits ≤ table %d bits (flate %d) @ n=%d\n",
			e8.EntropyBits, e8.TableBits, e8.CompressedBits, e8.N)
	}
	for _, e9 := range res.E9 {
		fmt.Fprintf(tw, "worst case lower\talpha (stretch<2)\tΩ(n²·log n) (Thm 9, Fig. 1)\tk·log₂(k!)=%.0f bits @ n=%d, extraction ok=%t\n",
			e9.EntropyBits, e9.N, e9.ExtractionOK)
	}

	fmt.Fprintln(tw, "stretch 1.5\tII\tO(n·log n) (Thm 3)\t"+lastPoint(res.E3))
	fmt.Fprintln(tw, "stretch 2\tII\tn·loglog n + 6n (Thm 4)\t"+lastPoint(res.E4))
	fmt.Fprintln(tw, "stretch (c+3)log n\tII\tO(n) (Thm 5)\t"+lastPoint(res.E5))
	fmt.Fprintln(tw, "full information\talpha\tΘ(n³) (Thm 10)\t"+lastPoint(res.E10))
	fmt.Fprintln(tw, "related work\tbeta\tinterval routing [1,6]\t"+lastPoint(res.Interval))
	if err := tw.Flush(); err != nil {
		return sb.String()
	}
	return sb.String()
}

// RenderTable1Markdown renders the measured grid as a Markdown table, the
// format EXPERIMENTS.md embeds.
func RenderTable1Markdown(res *Results) string {
	var sb strings.Builder
	sb.WriteString("| section | model | paper bound | measured |\n|---|---|---|---|\n")
	row := func(section, model, bound, measured string) {
		fmt.Fprintf(&sb, "| %s | %s | %s | %s |\n", section, model, bound, measured)
	}
	row("average upper", "IA^alpha", "O(n²·log n) (trivial table)", lastPoint(res.FullTable))
	row("average upper", "IB^alpha", "O(n²) (Thm 1)", lastPoint(res.E1IB))
	row("average upper", "II^alpha", "O(n²) (Thm 1)", lastPoint(res.E1II))
	row("average upper", "II^gamma", "O(n·log²n) (Thm 2)", lastPoint(res.E2))
	for _, e6 := range res.E6 {
		row("average lower", "II^alpha", "Ω(n²) (Thm 6)",
			fmt.Sprintf("implied floor %.0f bits/node @ n=%d", e6.ImpliedFloorPerNode, e6.N))
	}
	for _, e7 := range res.E7 {
		row("average lower", "IA∨IB", "Ω(n²) (Thm 7)",
			fmt.Sprintf("pattern %d ≤ budget %d @ n=%d", e7.PatternBits, e7.Budget, e7.N))
	}
	for _, e8 := range res.E8 {
		row("average lower", "IA^alpha", "Ω(n²·log n) (Thm 8)",
			fmt.Sprintf("entropy %.0f ≤ table %d bits @ n=%d", e8.EntropyBits, e8.TableBits, e8.N))
	}
	for _, e9 := range res.E9 {
		row("worst case lower", "alpha, stretch<2", "Ω(n²·log n) (Thm 9)",
			fmt.Sprintf("k·log₂(k!)=%.0f bits @ n=%d, extracted=%t", e9.EntropyBits, e9.N, e9.ExtractionOK))
	}
	row("stretch 1.5", "II", "O(n·log n) (Thm 3)", lastPoint(res.E3))
	row("stretch 2", "II", "n·loglog n + 6n (Thm 4)", lastPoint(res.E4))
	row("stretch (c+3)log n", "II", "O(n) (Thm 5)", lastPoint(res.E5))
	row("full information", "alpha", "Θ(n³) (Thm 10)", lastPoint(res.E10))
	row("related work", "beta", "interval routing [1,6]", lastPoint(res.Interval))
	return sb.String()
}

// RenderSeriesCSV emits one experiment as CSV (n,total_bits,max_per_node,
// max_stretch,max_hops) for the figures tool.
func RenderSeriesCSV(s *Series) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s — %s [%s], paper: %s; fit: %s ×%.3f (spread %.3f)\n",
		s.ID, s.Title, s.Model, s.PaperBound, s.Fit.Model, s.Fit.Constant, s.Fit.Spread)
	sb.WriteString("n,total_bits,max_per_node_bits,max_stretch,max_hops\n")
	for _, p := range s.Points {
		fmt.Fprintf(&sb, "%d,%.1f,%.0f,%.3f,%d\n", p.N, p.TotalBits, p.MaxPerNodeBits, p.MaxStretch, p.MaxHops)
	}
	return sb.String()
}
