package eval

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"routetab/internal/faultinject"
	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/netsim"
	"routetab/internal/par"
	"routetab/internal/routing"
	"routetab/internal/serve"
	"routetab/internal/shortestpath"
)

// ResilienceConfig parameterises the fault-injection sweep (E13): how every
// scheme degrades as the δ-random graph loses links and nodes.
type ResilienceConfig struct {
	// N is the graph size (≥ 16).
	N int
	// Seed derives the graph, the pair sample, the fault plans, and the
	// per-hop fault hashes; identical seeds reproduce byte-identical CSVs.
	Seed int64
	// Pairs is the number of routed (src,dst) samples per point.
	Pairs int
	// Probs is the failure-probability sweep (default 0, 0.01, …, 0.2).
	Probs []float64
	// Schemes names the constructions to sweep (see ResilienceSchemes).
	Schemes []string
	// Retries is the sender's attempt budget per pair (default 3).
	Retries int
	// TimeoutTicks is the per-send logical deadline (default 64).
	TimeoutTicks int
}

// ResilienceSchemes lists the scheme names the sweep understands — the same
// registry the serving layer dispatches through (serve.BuildScheme).
func ResilienceSchemes() []string {
	return serve.SchemeNames()
}

// DefaultResilienceConfig is a laptop-scale sweep covering the five headline
// constructions.
func DefaultResilienceConfig() ResilienceConfig {
	return ResilienceConfig{
		N:            64,
		Seed:         1,
		Pairs:        200,
		Probs:        DefaultFailureProbs(),
		Schemes:      []string{"fulltable", "compact", "hub", "interval", "fullinfo"},
		Retries:      3,
		TimeoutTicks: 64,
	}
}

// DefaultFailureProbs is the paper-motivated sweep p ∈ {0, 0.01, …, 0.2}.
func DefaultFailureProbs() []float64 {
	probs := make([]float64, 21)
	for i := range probs {
		probs[i] = float64(i) / 100
	}
	return probs
}

func (c ResilienceConfig) validate() error {
	if c.N < 16 {
		return fmt.Errorf("%w: n %d < 16", ErrBadConfig, c.N)
	}
	if c.Pairs < 1 {
		return fmt.Errorf("%w: pairs %d", ErrBadConfig, c.Pairs)
	}
	if len(c.Probs) == 0 {
		return fmt.Errorf("%w: empty probability sweep", ErrBadConfig)
	}
	for _, p := range c.Probs {
		if p < 0 || p >= 1 {
			return fmt.Errorf("%w: probability %v", ErrBadConfig, p)
		}
	}
	if len(c.Schemes) == 0 {
		return fmt.Errorf("%w: no schemes", ErrBadConfig)
	}
	known := map[string]bool{}
	for _, s := range ResilienceSchemes() {
		known[s] = true
	}
	for _, s := range c.Schemes {
		if !known[s] {
			return fmt.Errorf("%w: unknown scheme %q (have %s)",
				ErrBadConfig, s, strings.Join(ResilienceSchemes(), ", "))
		}
	}
	return nil
}

// ResiliencePoint is one (scheme, p) measurement.
type ResiliencePoint struct {
	Scheme string
	// P is the failure probability driving this point's fault plan: each
	// link fails with probability P (flapping back up mid-run), each node
	// crashes with probability P/8, and each hop drops the message with
	// probability P/2 before retries.
	P float64
	// Pairs and Delivered give the delivery ratio.
	Pairs, Delivered int
	// MeanStretch averages hops/dist over delivered pairs (detours count).
	MeanStretch float64
	// Stats is the network's quiesced counter snapshot.
	Stats netsim.Stats
}

// DeliveryRatio returns Delivered/Pairs.
func (p ResiliencePoint) DeliveryRatio() float64 {
	if p.Pairs == 0 {
		return 0
	}
	return float64(p.Delivered) / float64(p.Pairs)
}

// ResilienceResult is the full sweep output.
type ResilienceResult struct {
	Config ResilienceConfig
	Points []ResiliencePoint
}

// resilienceBuilder constructs one named scheme for the sweep graph through
// the shared scheme registry.
func resilienceBuilder(name string, g *graph.Graph, ports *graph.Ports, dm *shortestpath.Distances) (routing.Scheme, error) {
	if !serve.KnownScheme(name) {
		return nil, fmt.Errorf("%w: unknown scheme %q", ErrBadConfig, name)
	}
	return serve.BuildScheme(name, g, ports, dm)
}

// Resilience runs the fault-injection sweep: for every scheme and failure
// probability it draws a deterministic fault plan (link flaps, node crashes)
// and per-hop fault stream (drops, delays, ghost duplicates), routes the
// sampled pairs sequentially on a degraded-mode network with retries, and
// reports delivery ratio and mean stretch. Everything is keyed on
// Config.Seed; two runs produce identical results byte for byte.
//
// The (scheme, p) grid fans out over a bounded worker pool: every point's
// fault plan and hop-fault stream are seeded purely by (Seed, p), each point
// runs on its own network against the read-only shared scheme, and points
// land in grid-order slots — so the output is byte-identical to the
// sequential sweep (docs/resilience_n64.csv predates the parallel harness).
func Resilience(cfg ResilienceConfig) (*ResilienceResult, error) {
	if cfg.Retries < 1 {
		cfg.Retries = 3
	}
	if cfg.TimeoutTicks <= 0 {
		cfg.TimeoutTicks = 64
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g, err := gengraph.GnHalf(cfg.N, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}
	ports := graph.SortedPorts(g)
	dm, err := shortestpath.AllPairsCached(g)
	if err != nil {
		return nil, err
	}
	pairs := samplePairs(cfg.N, cfg.Pairs, cfg.Seed)

	schemes := make([]routing.Scheme, len(cfg.Schemes))
	for i, name := range cfg.Schemes {
		scheme, err := resilienceBuilder(name, g, ports, dm)
		if err != nil {
			return nil, fmt.Errorf("eval: building %s: %w", name, err)
		}
		schemes[i] = scheme
	}
	points := make([]ResiliencePoint, len(cfg.Schemes)*len(cfg.Probs))
	err = par.ForEach(len(points), func(idx int) error {
		si, pi := idx/len(cfg.Probs), idx%len(cfg.Probs)
		name, p := cfg.Schemes[si], cfg.Probs[pi]
		pt, err := cfg.runPoint(g, ports, dm, schemes[si], name, p, pairs)
		if err != nil {
			return fmt.Errorf("eval: %s at p=%.2f: %w", name, p, err)
		}
		points[idx] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &ResilienceResult{Config: cfg, Points: points}, nil
}

// runPoint measures one (scheme, p) cell: fresh network, fresh injector,
// strictly sequential sends with the injector's clock advancing one tick per
// pair so mid-run flaps and repairs fire deterministically.
func (cfg ResilienceConfig) runPoint(g *graph.Graph, ports *graph.Ports, dm *shortestpath.Distances,
	scheme routing.Scheme, name string, p float64, pairs [][2]int) (ResiliencePoint, error) {
	pt := ResiliencePoint{Scheme: name, P: p, Pairs: len(pairs)}
	planSeed := cfg.Seed*1_000_003 + int64(p*1000)*7919
	plan, err := faultinject.RandomPlan(g, faultinject.PlanConfig{
		LinkFailProb:  p,
		NodeCrashProb: p / 8,
		Horizon:       max(1, len(pairs)/2),
		RepairAfter:   max(1, len(pairs)/4),
	}, planSeed)
	if err != nil {
		return pt, err
	}
	inj, err := faultinject.New(faultinject.Config{
		Seed:          planSeed + 1,
		DropProb:      p / 2,
		DupProb:       p / 8,
		MaxDelayTicks: 2,
	}, plan)
	if err != nil {
		return pt, err
	}
	nw, err := netsim.New(g, ports, scheme, netsim.Options{
		Degraded:     true,
		TimeoutTicks: cfg.TimeoutTicks,
		Retry: netsim.RetryPolicy{
			MaxAttempts: cfg.Retries,
			BaseBackoff: 50 * time.Microsecond,
			MaxBackoff:  2 * time.Millisecond,
			Jitter:      0.5,
		},
		Hook: inj,
	})
	if err != nil {
		return pt, err
	}
	defer nw.Close()
	inj.Bind(nw)

	var stretchSum float64
	var stretched int
	for i, pr := range pairs {
		if err := inj.AdvanceTo(i); err != nil {
			return pt, err
		}
		tr, err := nw.Send(pr[0], pr[1])
		if err != nil {
			continue
		}
		pt.Delivered++
		if d := dm.Dist(pr[0], pr[1]); d > 0 {
			stretchSum += float64(tr.Hops) / float64(d)
			stretched++
		}
	}
	if stretched > 0 {
		pt.MeanStretch = stretchSum / float64(stretched)
	}
	nw.Quiesce()
	pt.Stats = nw.Stats()
	return pt, nil
}

// samplePairs draws the deterministic routed sample: distinct (src,dst)
// pairs, duplicates allowed across draws.
func samplePairs(n, count int, seed int64) [][2]int {
	rng := rand.New(rand.NewSource(seed*31 + 17))
	pairs := make([][2]int, 0, count)
	for len(pairs) < count {
		u := rng.Intn(n) + 1
		v := rng.Intn(n) + 1
		if u != v {
			pairs = append(pairs, [2]int{u, v})
		}
	}
	return pairs
}

// WriteCSV emits the sweep as CSV (stable field formatting, so identical
// sweeps serialise byte-identically).
func (r *ResilienceResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "scheme,p,pairs,delivered,delivery_ratio,mean_stretch,retries,dropped,timed_out,detour_hops,crashed,duplicated"); err != nil {
		return err
	}
	for _, pt := range r.Points {
		if _, err := fmt.Fprintf(w, "%s,%.2f,%d,%d,%.4f,%.4f,%d,%d,%d,%d,%d,%d\n",
			pt.Scheme, pt.P, pt.Pairs, pt.Delivered, pt.DeliveryRatio(), pt.MeanStretch,
			pt.Stats.Retries, pt.Stats.Dropped, pt.Stats.TimedOut,
			pt.Stats.DetourHops, pt.Stats.Crashed, pt.Stats.Duplicated); err != nil {
			return err
		}
	}
	return nil
}

// String renders a per-scheme summary table: delivery ratio and mean stretch
// at the extremes of the sweep.
func (r *ResilienceResult) String() string {
	byScheme := map[string][]ResiliencePoint{}
	var order []string
	for _, pt := range r.Points {
		if _, ok := byScheme[pt.Scheme]; !ok {
			order = append(order, pt.Scheme)
		}
		byScheme[pt.Scheme] = append(byScheme[pt.Scheme], pt)
	}
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\tp\tdelivered\tratio\tstretch\tretries\tdetours")
	for _, name := range order {
		pts := byScheme[name]
		sort.Slice(pts, func(i, j int) bool { return pts[i].P < pts[j].P })
		for _, pt := range pts {
			fmt.Fprintf(tw, "%s\t%.2f\t%d/%d\t%.3f\t%.3f\t%d\t%d\n",
				pt.Scheme, pt.P, pt.Delivered, pt.Pairs, pt.DeliveryRatio(),
				pt.MeanStretch, pt.Stats.Retries, pt.Stats.DetourHops)
		}
	}
	tw.Flush()
	return b.String()
}
