package eval

import (
	"fmt"
	"math"

	"routetab/internal/graph"
	"routetab/internal/models"
	"routetab/internal/routing"
	"routetab/internal/schemes/centers"
	"routetab/internal/schemes/compact"
	"routetab/internal/schemes/hub"
	"routetab/internal/schemes/labels"
	"routetab/internal/schemes/walker"
	"routetab/internal/stats"
)

// AveragePoint is a Definition 5 estimate: the uniform average of T(G) over
// labelled graphs on n nodes, estimated from Trials independent samples.
type AveragePoint struct {
	N int
	// Mean and StdDev are over the sampled graphs' totals.
	Mean, StdDev float64
	// CI95 is the half-width of the 95% normal confidence interval.
	CI95 float64
	// Built is the number of samples the construction succeeded on
	// (failures count toward the trivial-table fallback mass, mirroring
	// Corollary 1's "1−1/n³ of all graphs" argument).
	Built, Fallback int
}

// AverageEntry names one Corollary 1 row.
type AverageEntry struct {
	Name       string
	Model      models.Model
	PaperBound string
	Points     []AveragePoint
}

// Corollary1Averages estimates the average-case rows of Corollary 1 by
// uniform sampling: for each construction, the mean total over independent
// G(n,1/2) samples, falling back to the trivial-table bound on the (rare)
// samples where the random-graph construction does not apply — exactly the
// paper's averaging argument, where the non-random 1/n³ mass is charged the
// trivial O(n² log n) table.
func (c Config) Corollary1Averages() ([]AverageEntry, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	rows := []struct {
		name  string
		model models.Model
		bound string
		build func(g *graph.Graph) (routing.Scheme, error)
	}{
		{"theorem1-compact", models.IIAlpha, "O(n²)", func(g *graph.Graph) (routing.Scheme, error) {
			return compact.Build(g, compact.DefaultOptions())
		}},
		{"theorem2-labels", models.IIGamma, "O(n·log²n)", func(g *graph.Graph) (routing.Scheme, error) {
			return labels.Build(g, c.C)
		}},
		{"theorem3-centers", models.IIAlpha, "O(n·log n)", func(g *graph.Graph) (routing.Scheme, error) {
			return centers.Build(g, 1)
		}},
		{"theorem4-hub", models.IIAlpha, "O(n·loglog n)", func(g *graph.Graph) (routing.Scheme, error) {
			return hub.Build(g, 1)
		}},
		{"theorem5-walker", models.IIAlpha, "O(n)", func(g *graph.Graph) (routing.Scheme, error) {
			return walker.Build(g, c.C)
		}},
	}
	out := make([]AverageEntry, 0, len(rows))
	for _, row := range rows {
		entry := AverageEntry{Name: row.name, Model: row.model, PaperBound: row.bound}
		for _, n := range c.Sizes {
			var totals []float64
			pt := AveragePoint{N: n}
			for trial := 0; trial < c.Trials; trial++ {
				g, err := sampleUniform(n, c.rng(n, trial))
				if err != nil {
					return nil, err
				}
				scheme, err := row.build(g)
				if err != nil {
					// Corollary 1 charges such graphs the trivial bound.
					pt.Fallback++
					totals = append(totals, trivialTableBits(n))
					continue
				}
				sp, err := routing.MeasureSpace(scheme, row.model)
				if err != nil {
					return nil, err
				}
				pt.Built++
				totals = append(totals, float64(sp.Total))
			}
			mean, err := stats.Mean(totals)
			if err != nil {
				return nil, err
			}
			sd, err := stats.StdDev(totals)
			if err != nil {
				return nil, err
			}
			pt.Mean = mean
			pt.StdDev = sd
			pt.CI95 = 1.96 * sd / math.Sqrt(float64(len(totals)))
			entry.Points = append(entry.Points, pt)
		}
		out = append(out, entry)
	}
	return out, nil
}

// trivialTableBits is the universal fallback cost n·(n−1)·⌈log(n+1)⌉ used
// for the non-random sample mass.
func trivialTableBits(n int) float64 {
	lg := 0
	for v := n; v > 0; v >>= 1 {
		lg++
	}
	return float64(n * (n - 1) * lg)
}

// RenderAverages formats the Corollary 1 estimates.
func RenderAverages(entries []AverageEntry) string {
	out := "Corollary 1 — average-case totals over uniform samples\n"
	for _, e := range entries {
		out += fmt.Sprintf("%s [%s], paper %s:\n", e.Name, e.Model, e.PaperBound)
		for _, p := range e.Points {
			out += fmt.Sprintf("  n=%-5d mean=%.0f ±%.0f (95%% CI), built %d/%d\n",
				p.N, p.Mean, p.CI95, p.Built, p.Built+p.Fallback)
		}
	}
	return out
}
