// Package stats provides the small numerical toolkit the experiments need:
// summary statistics, log-log slope estimation, growth-model fitting against
// the paper's bound shapes (n², n log² n, n log n, n log log n, n, n³, …),
// permutation entropy log₂(k!), and the Chernoff tail bound of Eq. (3).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty indicates a statistic of an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// StdDev returns the sample standard deviation (n−1 denominator); zero for
// samples of size one.
func StdDev(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if len(xs) == 1 {
		return 0, nil
	}
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1)), nil
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) with linear interpolation.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median is the 0.5-quantile.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// Max returns the maximum of a non-empty sample.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Log2Factorial returns log₂(k!) computed via the log-gamma function. This is
// the information content of a uniform permutation of k items — the quantity
// behind Theorems 8 and 9 (a 1−1/2^k fraction of permutations has Kolmogorov
// complexity k log k − O(k) ≈ log₂ k!).
func Log2Factorial(k int) float64 {
	if k < 2 {
		return 0
	}
	lg, _ := math.Lgamma(float64(k) + 1)
	return lg / math.Ln2
}

// ChernoffTail returns the paper's Eq. (3) bound 2·e^{−k²/(4npq)} on
// Pr(|S_n − np| ≥ k) for a Binomial(n, p) variable.
func ChernoffTail(n int, p float64, k float64) float64 {
	if n <= 0 || p <= 0 || p >= 1 {
		return 1
	}
	q := 1 - p
	return 2 * math.Exp(-k*k/(4*float64(n)*p*q))
}

// DegreeDeviationBound returns the Lemma 1 deviation radius for δ-random
// graphs: the k with k² ≈ (δ(n)+O(log n))·n, using the explicit constant from
// the proof (k = √((δ(n)+c·log n)·n / log₂e)); degrees of a δ-random graph
// satisfy |d − (n−1)/2| = O(k).
func DegreeDeviationBound(n int, delta float64, clog float64) float64 {
	if n <= 1 {
		return 0
	}
	logn := math.Log2(float64(n))
	return math.Sqrt((delta + clog*logn) * float64(n) / math.Log2(math.E))
}

// LinearFit returns the least-squares slope, intercept and R² of y against x.
func LinearFit(xs, ys []float64) (slope, intercept, r2 float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, 0, fmt.Errorf("stats: mismatched lengths %d, %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, 0, 0, fmt.Errorf("%w: need ≥ 2 points", ErrEmpty)
	}
	mx, _ := Mean(xs)
	my, _ := Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, 0, 0, errors.New("stats: degenerate x values")
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		return slope, intercept, 1, nil
	}
	r2 = sxy * sxy / (sxx * syy)
	return slope, intercept, r2, nil
}

// LogLogSlope estimates the power-law exponent of y(n) by regressing
// log y on log n; ns and ys must be positive.
func LogLogSlope(ns []int, ys []float64) (float64, error) {
	if len(ns) != len(ys) {
		return 0, fmt.Errorf("stats: mismatched lengths %d, %d", len(ns), len(ys))
	}
	xs := make([]float64, len(ns))
	ls := make([]float64, len(ys))
	for i := range ns {
		if ns[i] <= 0 || ys[i] <= 0 {
			return 0, fmt.Errorf("stats: log-log fit needs positive data, got (%d, %v)", ns[i], ys[i])
		}
		xs[i] = math.Log(float64(ns[i]))
		ls[i] = math.Log(ys[i])
	}
	slope, _, _, err := LinearFit(xs, ls)
	return slope, err
}
