package stats

import (
	"fmt"
	"math"
)

// GrowthModel is one of the asymptotic shapes appearing in Table 1.
type GrowthModel int

// The candidate growth laws of the paper's bounds, in increasing order of
// growth.
const (
	GrowthConst GrowthModel = iota + 1
	GrowthN
	GrowthNLogLogN
	GrowthNLogN
	GrowthNLog2N
	GrowthN2
	GrowthN2LogN
	GrowthN3
)

// AllGrowthModels lists every candidate in increasing order of growth.
func AllGrowthModels() []GrowthModel {
	return []GrowthModel{
		GrowthConst, GrowthN, GrowthNLogLogN, GrowthNLogN,
		GrowthNLog2N, GrowthN2, GrowthN2LogN, GrowthN3,
	}
}

// String renders the model in the paper's notation.
func (m GrowthModel) String() string {
	switch m {
	case GrowthConst:
		return "O(1)"
	case GrowthN:
		return "n"
	case GrowthNLogLogN:
		return "n·loglog n"
	case GrowthNLogN:
		return "n·log n"
	case GrowthNLog2N:
		return "n·log² n"
	case GrowthN2:
		return "n²"
	case GrowthN2LogN:
		return "n²·log n"
	case GrowthN3:
		return "n³"
	default:
		return fmt.Sprintf("GrowthModel(%d)", int(m))
	}
}

// Eval computes the model's value at n (natural log-free, base-2 logs,
// matching the paper's bit counts). Models are defined for n ≥ 4 to keep
// loglog positive; smaller n clamps to n = 4.
func (m GrowthModel) Eval(n int) float64 {
	if n < 4 {
		n = 4
	}
	fn := float64(n)
	lg := math.Log2(fn)
	switch m {
	case GrowthConst:
		return 1
	case GrowthN:
		return fn
	case GrowthNLogLogN:
		return fn * math.Log2(lg)
	case GrowthNLogN:
		return fn * lg
	case GrowthNLog2N:
		return fn * lg * lg
	case GrowthN2:
		return fn * fn
	case GrowthN2LogN:
		return fn * fn * lg
	case GrowthN3:
		return fn * fn * fn
	default:
		return math.NaN()
	}
}

// GrowthFit reports how well measured sizes track a growth model.
type GrowthFit struct {
	Model GrowthModel
	// Constant is the fitted multiplicative constant (median of y/f(n)).
	Constant float64
	// Spread is the relative spread of y/f(n) across the sweep: max/min − 1.
	// A flat ratio (small spread) means the model matches the data shape.
	Spread float64
}

// FitGrowth selects the candidate model whose ratio y/f(n) stays flattest
// over the sweep. It needs at least three distinct n values; data must be
// positive.
func FitGrowth(ns []int, ys []float64) (GrowthFit, error) {
	if len(ns) != len(ys) {
		return GrowthFit{}, fmt.Errorf("stats: mismatched lengths %d, %d", len(ns), len(ys))
	}
	if len(ns) < 3 {
		return GrowthFit{}, fmt.Errorf("%w: growth fit needs ≥ 3 points", ErrEmpty)
	}
	for i := range ns {
		if ns[i] < 4 || ys[i] <= 0 {
			return GrowthFit{}, fmt.Errorf("stats: growth fit needs n ≥ 4 and y > 0, got (%d, %v)", ns[i], ys[i])
		}
	}
	best := GrowthFit{Spread: math.Inf(1)}
	for _, m := range AllGrowthModels() {
		ratios := make([]float64, len(ns))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range ns {
			r := ys[i] / m.Eval(ns[i])
			ratios[i] = r
			if r < lo {
				lo = r
			}
			if r > hi {
				hi = r
			}
		}
		spread := hi/lo - 1
		if spread < best.Spread {
			med, err := Median(ratios)
			if err != nil {
				return GrowthFit{}, err
			}
			best = GrowthFit{Model: m, Constant: med, Spread: spread}
		}
	}
	return best, nil
}

// RatioAgainst returns y_i / f(n_i) for a fixed model — used to report the
// measured constants of each theorem (e.g. Theorem 1's "6n bits per node").
func RatioAgainst(m GrowthModel, ns []int, ys []float64) ([]float64, error) {
	if len(ns) != len(ys) {
		return nil, fmt.Errorf("stats: mismatched lengths %d, %d", len(ns), len(ys))
	}
	out := make([]float64, len(ns))
	for i := range ns {
		out[i] = ys[i] / m.Eval(ns[i])
	}
	return out, nil
}
