package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, err := Mean(xs)
	if err != nil || !almostEq(m, 5, 1e-12) {
		t.Fatalf("Mean = %v, %v", m, err)
	}
	s, err := StdDev(xs)
	if err != nil || !almostEq(s, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("StdDev = %v, %v", s, err)
	}
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Mean(nil): err = %v, want ErrEmpty", err)
	}
	if _, err := StdDev(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("StdDev(nil): err = %v, want ErrEmpty", err)
	}
	s, err = StdDev([]float64{42})
	if err != nil || s != 0 {
		t.Errorf("StdDev singleton = %v, %v", s, err)
	}
}

func TestQuantileMedianMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	med, err := Median(xs)
	if err != nil || !almostEq(med, 3.5, 1e-12) {
		t.Fatalf("Median = %v, %v", med, err)
	}
	q0, _ := Quantile(xs, 0)
	q1, _ := Quantile(xs, 1)
	if q0 != 1 || q1 != 9 {
		t.Fatalf("Quantile extremes = %v, %v", q0, q1)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("Quantile(1.5) accepted")
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Errorf("Quantile(nil): err = %v", err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 9 {
		t.Fatalf("Max = %v, %v", mx, err)
	}
	if _, err := Max(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Max(nil): err = %v", err)
	}
	// Quantile must not mutate its input.
	if xs[0] != 3 {
		t.Fatal("Quantile sorted the caller's slice")
	}
}

func TestLog2Factorial(t *testing.T) {
	// 5! = 120, log2 ≈ 6.9069.
	if got := Log2Factorial(5); !almostEq(got, math.Log2(120), 1e-9) {
		t.Fatalf("Log2Factorial(5) = %v", got)
	}
	if Log2Factorial(0) != 0 || Log2Factorial(1) != 0 {
		t.Fatal("Log2Factorial of 0/1 should be 0")
	}
	// Stirling sanity: log2(k!) ≈ k·log2(k/e) for large k, within 1%.
	k := 1000
	approx := float64(k) * math.Log2(float64(k)/math.E)
	if got := Log2Factorial(k); math.Abs(got-approx)/got > 0.01 {
		t.Fatalf("Log2Factorial(1000) = %v, Stirling %v", got, approx)
	}
}

func TestChernoffTail(t *testing.T) {
	// Known value: n=100, p=1/2, k=10 → 2e^{-100/100} = 2/e.
	if got := ChernoffTail(100, 0.5, 10); !almostEq(got, 2/math.E, 1e-12) {
		t.Fatalf("ChernoffTail = %v", got)
	}
	if got := ChernoffTail(0, 0.5, 1); got != 1 {
		t.Fatalf("degenerate tail = %v, want 1", got)
	}
	// Monotone in k.
	if ChernoffTail(100, 0.5, 20) >= ChernoffTail(100, 0.5, 10) {
		t.Fatal("tail not decreasing in k")
	}
}

func TestDegreeDeviationBound(t *testing.T) {
	if DegreeDeviationBound(1, 0, 1) != 0 {
		t.Fatal("n=1 bound should be 0")
	}
	// Grows like sqrt(n log n) for δ=0.
	b100 := DegreeDeviationBound(100, 0, 3)
	b400 := DegreeDeviationBound(400, 0, 3)
	if b400 <= b100 {
		t.Fatal("bound not increasing in n")
	}
	ratio := b400 / b100
	want := math.Sqrt(400 * math.Log2(400) / (100 * math.Log2(100)))
	if !almostEq(ratio, want, 1e-9) {
		t.Fatalf("ratio = %v, want %v", ratio, want)
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	slope, intercept, r2, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(slope, 2, 1e-12) || !almostEq(intercept, 1, 1e-12) || !almostEq(r2, 1, 1e-12) {
		t.Fatalf("fit = %v, %v, %v", slope, intercept, r2)
	}
	if _, _, _, err := LinearFit([]float64{1}, []float64{2}); err == nil {
		t.Error("single point accepted")
	}
	if _, _, _, err := LinearFit([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("degenerate x accepted")
	}
	if _, _, _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestLogLogSlopePowerLaws(t *testing.T) {
	ns := []int{64, 128, 256, 512, 1024}
	for _, exp := range []float64{1, 2, 3} {
		ys := make([]float64, len(ns))
		for i, n := range ns {
			ys[i] = 7 * math.Pow(float64(n), exp)
		}
		slope, err := LogLogSlope(ns, ys)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(slope, exp, 1e-9) {
			t.Fatalf("slope for n^%v = %v", exp, slope)
		}
	}
	if _, err := LogLogSlope([]int{1, -2, 3}, []float64{1, 2, 3}); err == nil {
		t.Error("negative n accepted")
	}
}

func TestFitGrowthRecoversEachModel(t *testing.T) {
	ns := []int{32, 64, 128, 256, 512, 1024}
	for _, m := range AllGrowthModels() {
		ys := make([]float64, len(ns))
		for i, n := range ns {
			ys[i] = 3.7 * m.Eval(n)
		}
		fit, err := FitGrowth(ns, ys)
		if err != nil {
			t.Fatal(err)
		}
		if fit.Model != m {
			t.Fatalf("exact %v data fitted as %v (spread %v)", m, fit.Model, fit.Spread)
		}
		if !almostEq(fit.Constant, 3.7, 1e-9) {
			t.Fatalf("constant for %v = %v", m, fit.Constant)
		}
		if fit.Spread > 1e-9 {
			t.Fatalf("spread for exact %v data = %v", m, fit.Spread)
		}
	}
}

func TestFitGrowthNoisyN2(t *testing.T) {
	// ±10% noise on an n² law must still fit as n² over a wide sweep.
	ns := []int{64, 128, 256, 512, 1024, 2048}
	noise := []float64{1.1, 0.9, 1.05, 0.95, 1.08, 0.92}
	ys := make([]float64, len(ns))
	for i, n := range ns {
		ys[i] = 2 * GrowthN2.Eval(n) * noise[i]
	}
	fit, err := FitGrowth(ns, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Model != GrowthN2 {
		t.Fatalf("noisy n² fitted as %v", fit.Model)
	}
}

func TestFitGrowthValidation(t *testing.T) {
	if _, err := FitGrowth([]int{10, 20}, []float64{1, 2}); err == nil {
		t.Error("two points accepted")
	}
	if _, err := FitGrowth([]int{10, 20, 30}, []float64{1, -2, 3}); err == nil {
		t.Error("negative y accepted")
	}
	if _, err := FitGrowth([]int{2, 20, 30}, []float64{1, 2, 3}); err == nil {
		t.Error("n < 4 accepted")
	}
}

func TestGrowthModelStringsDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range AllGrowthModels() {
		s := m.String()
		if seen[s] {
			t.Fatalf("duplicate model name %q", s)
		}
		seen[s] = true
	}
	if GrowthModel(99).String() == "" {
		t.Fatal("unknown model should still render")
	}
}

func TestGrowthModelMonotoneQuick(t *testing.T) {
	// Every model is nondecreasing in n for n ≥ 4.
	f := func(a uint16) bool {
		n := int(a)%5000 + 4
		for _, m := range AllGrowthModels() {
			if m.Eval(n+1) < m.Eval(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRatioAgainst(t *testing.T) {
	ns := []int{10, 100}
	ys := []float64{600, 60000}
	rs, err := RatioAgainst(GrowthN2, ns, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(rs[0], 6, 1e-12) || !almostEq(rs[1], 6, 1e-12) {
		t.Fatalf("ratios = %v", rs)
	}
	if _, err := RatioAgainst(GrowthN2, []int{1}, nil); err == nil {
		t.Error("mismatched lengths accepted")
	}
}
