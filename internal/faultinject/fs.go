// Disk-fault injection: a narrow filesystem seam (FS / File) that the WAL
// store writes through, an in-memory implementation whose global write
// journal can be cut at any byte to model power loss (MemFS.CrashClone), and
// a seeded fault wrapper (FaultFS) that injects short writes, write/sync
// errors, silent bit flips, and a hard crash point at a chosen cumulative
// byte offset. Fault decisions follow the package's determinism contract:
// every decision is a pure hash of (seed, operation index) — identical seed
// and operation sequence yields identical faults.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path"
	"sort"
	"strings"
	"sync"
)

// Disk-fault errors.
var (
	// ErrInjected reports a deterministically injected I/O fault.
	ErrInjected = errors.New("faultinject: injected I/O fault")
	// ErrCrashed reports that the simulated crash point was reached; every
	// subsequent mutation through the FS fails with it.
	ErrCrashed = errors.New("faultinject: simulated crash point reached")
)

// File is the narrow writable-file surface the WAL store needs.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the filesystem seam: enough surface for an append-only segmented
// store (create, whole-file read, directory listing, remove, truncate,
// directory sync). Implementations must return sorted names from ReadDir.
type FS interface {
	MkdirAll(dir string) error
	Create(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	ReadDir(dir string) ([]string, error)
	Remove(name string) error
	Truncate(name string, size int64) error
	SyncDir(dir string) error
}

// OSFS is the real operating-system filesystem.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Create implements FS.
func (OSFS) Create(name string) (File, error) { return os.Create(name) }

// ReadFile implements FS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// ReadDir implements FS, returning base names (os.ReadDir sorts them).
func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// Truncate implements FS.
func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// SyncDir fsyncs the directory so renames, creates, and removes inside it
// are durable.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// memOp kinds for the MemFS write journal.
const (
	memCreate = iota
	memWrite
	memRemove
	memTruncate
)

type memOp struct {
	kind int
	name string
	data []byte // memWrite payload
	size int64  // memTruncate size
}

// MemFS is an in-memory FS that journals every mutation in global order.
// CrashClone replays that journal up to a cumulative written-byte budget,
// tearing the straddling write — the power-loss model the crash-matrix
// tests sweep. The zero value is not usable; call NewMemFS.
type MemFS struct {
	mu      sync.Mutex
	files   map[string][]byte
	journal []memOp
	written int64
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string][]byte)}
}

// MkdirAll implements FS (directories are implicit in MemFS).
func (m *MemFS) MkdirAll(string) error { return nil }

// Create implements FS, truncating any existing file.
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = nil
	m.journal = append(m.journal, memOp{kind: memCreate, name: name})
	return &memFile{fs: m, name: name}, nil
}

// ReadFile implements FS.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[name]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	return append([]byte(nil), data...), nil
}

// ReadDir implements FS, listing direct children of dir in sorted order.
func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := strings.TrimSuffix(dir, "/") + "/"
	var names []string
	for name := range m.files {
		if strings.HasPrefix(name, prefix) && !strings.Contains(name[len(prefix):], "/") {
			names = append(names, path.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.files, name)
	m.journal = append(m.journal, memOp{kind: memRemove, name: name})
	return nil
}

// Truncate implements FS.
func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[name]
	if !ok {
		return &fs.PathError{Op: "truncate", Path: name, Err: fs.ErrNotExist}
	}
	if size < 0 || size > int64(len(data)) {
		return &fs.PathError{Op: "truncate", Path: name, Err: fs.ErrInvalid}
	}
	m.files[name] = data[:size:size]
	m.journal = append(m.journal, memOp{kind: memTruncate, name: name, size: size})
	return nil
}

// SyncDir implements FS (MemFS mutations are immediately visible).
func (m *MemFS) SyncDir(string) error { return nil }

// JournalBytes returns the cumulative payload bytes written through the
// filesystem — the axis CrashClone budgets against.
func (m *MemFS) JournalBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.written
}

// CrashClone replays the write journal into a fresh MemFS, stopping the
// instant cumulative written bytes would exceed budget: the straddling write
// is torn mid-payload and every later operation never happened. The clone is
// an independent, fully functional filesystem (its own journal starts
// empty), modelling the disk a restarted process finds after power loss.
func (m *MemFS) CrashClone(budget int64) *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := NewMemFS()
	for _, op := range m.journal {
		switch op.kind {
		case memCreate:
			c.files[op.name] = nil
		case memWrite:
			n := int64(len(op.data))
			if n > budget {
				c.files[op.name] = append(c.files[op.name], op.data[:budget]...)
				return c
			}
			c.files[op.name] = append(c.files[op.name], op.data...)
			budget -= n
		case memRemove:
			delete(c.files, op.name)
		case memTruncate:
			if data, ok := c.files[op.name]; ok && op.size <= int64(len(data)) {
				c.files[op.name] = data[:op.size:op.size]
			}
		}
	}
	return c
}

type memFile struct {
	fs     *MemFS
	name   string
	closed bool
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, fs.ErrClosed
	}
	f.fs.files[f.name] = append(f.fs.files[f.name], p...)
	f.fs.journal = append(f.fs.journal, memOp{kind: memWrite, name: f.name, data: append([]byte(nil), p...)})
	f.fs.written += int64(len(p))
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return fs.ErrClosed
	}
	return nil
}

func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return fs.ErrClosed
	}
	f.closed = true
	return nil
}

// Hash salts for the independent per-operation disk-fault decisions.
const (
	saltFSWriteErr = 0xD6E8FEB86659FD93
	saltFSSyncErr  = 0xC2B2AE3D27D4EB4F
	saltFSShort    = 0x9AE16A3B2F90404F
	saltFSShortLen = 0x85EBCA77C2B2AE63
	saltFSFlip     = 0x27D4EB2F165667C5
	saltFSFlipPos  = 0x165667B19E3779F9
)

// DiskFaultConfig parameterises the deterministic disk faults. CrashAtBytes
// is a hard crash point on the cumulative-written-bytes axis: the write that
// would cross it is torn at the boundary and every later mutation fails with
// ErrCrashed. Zero or negative disables the crash point (use MemFS.CrashClone
// for a crash at byte zero).
type DiskFaultConfig struct {
	Seed           int64
	WriteErrProb   float64 // whole write fails, nothing reaches the disk
	SyncErrProb    float64 // fsync fails
	ShortWriteProb float64 // a strict prefix of the write reaches the disk
	BitFlipProb    float64 // one bit of the write is silently flipped
	CrashAtBytes   int64
}

func (c DiskFaultConfig) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"write-error", c.WriteErrProb},
		{"sync-error", c.SyncErrProb},
		{"short-write", c.ShortWriteProb},
		{"bit-flip", c.BitFlipProb},
	} {
		if p.v < 0 || p.v >= 1 {
			return fmt.Errorf("%w: %s probability %v", ErrBadConfig, p.name, p.v)
		}
	}
	return nil
}

// FaultFS wraps a base FS and injects the configured disk faults into writes
// and syncs. Reads and directory listings always pass through — a recovering
// process may inspect the disk a crashed writer left behind.
type FaultFS struct {
	base FS
	cfg  DiskFaultConfig
	seed uint64

	mu      sync.Mutex
	ops     uint64
	written int64
	crashed bool
}

// NewFaultFS validates cfg and wraps base.
func NewFaultFS(base FS, cfg DiskFaultConfig) (*FaultFS, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &FaultFS{base: base, cfg: cfg, seed: Mix64(uint64(cfg.Seed) ^ 0x5851F42D4C957F2D)}, nil
}

// WrittenBytes returns the cumulative bytes accepted by writes so far.
func (f *FaultFS) WrittenBytes() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written
}

// Crashed reports whether the crash point has been reached.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// CrashAt rearms (or disarms, with a non-positive value) the crash point, on
// the same cumulative-written-bytes axis as WrittenBytes.
func (f *FaultFS) CrashAt(bytes int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cfg.CrashAtBytes = bytes
	if bytes > 0 && f.written < bytes {
		f.crashed = false
	}
}

func (f *FaultFS) mutable() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(dir string) error {
	if err := f.mutable(); err != nil {
		return err
	}
	return f.base.MkdirAll(dir)
}

// Create implements FS.
func (f *FaultFS) Create(name string) (File, error) {
	if err := f.mutable(); err != nil {
		return nil, err
	}
	file, err := f.base.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, base: file}, nil
}

// ReadFile implements FS (reads are never faulted).
func (f *FaultFS) ReadFile(name string) ([]byte, error) { return f.base.ReadFile(name) }

// ReadDir implements FS (reads are never faulted).
func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.base.ReadDir(dir) }

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	if err := f.mutable(); err != nil {
		return err
	}
	return f.base.Remove(name)
}

// Truncate implements FS.
func (f *FaultFS) Truncate(name string, size int64) error {
	if err := f.mutable(); err != nil {
		return err
	}
	return f.base.Truncate(name, size)
}

// SyncDir implements FS.
func (f *FaultFS) SyncDir(dir string) error {
	if err := f.mutable(); err != nil {
		return err
	}
	return f.base.SyncDir(dir)
}

type faultFile struct {
	fs   *FaultFS
	base File
}

// Write injects, in priority order: the crash point (torn at the exact byte
// budget), whole-write errors, short writes, and silent single-bit flips.
// The decision hash depends only on (seed, operation index).
func (f *faultFile) Write(p []byte) (int, error) {
	fs := f.fs
	fs.mu.Lock()
	if fs.crashed {
		fs.mu.Unlock()
		return 0, ErrCrashed
	}
	op := fs.ops
	fs.ops++
	if fs.cfg.CrashAtBytes > 0 && fs.written+int64(len(p)) > fs.cfg.CrashAtBytes {
		n := int(fs.cfg.CrashAtBytes - fs.written)
		fs.crashed = true
		fs.written += int64(n)
		fs.mu.Unlock()
		if n > 0 {
			if m, err := f.base.Write(p[:n]); err != nil {
				return m, err
			}
		}
		return n, ErrCrashed
	}
	h := fs.seed ^ Mix64(op)
	cfg := fs.cfg
	if cfg.WriteErrProb > 0 && unit(Mix64(h^saltFSWriteErr)) < cfg.WriteErrProb {
		fs.mu.Unlock()
		return 0, fmt.Errorf("%w: write op %d", ErrInjected, op)
	}
	if cfg.ShortWriteProb > 0 && len(p) > 1 && unit(Mix64(h^saltFSShort)) < cfg.ShortWriteProb {
		n := 1 + int(Mix64(h^saltFSShortLen)%uint64(len(p)-1))
		fs.written += int64(n)
		fs.mu.Unlock()
		if m, err := f.base.Write(p[:n]); err != nil {
			return m, err
		}
		return n, fmt.Errorf("%w: short write (%d of %d bytes) op %d", ErrInjected, n, len(p), op)
	}
	if cfg.BitFlipProb > 0 && len(p) > 0 && unit(Mix64(h^saltFSFlip)) < cfg.BitFlipProb {
		q := append([]byte(nil), p...)
		bit := Mix64(h^saltFSFlipPos) % uint64(len(q)*8)
		q[bit/8] ^= 1 << (bit % 8)
		fs.written += int64(len(q))
		fs.mu.Unlock()
		if m, err := f.base.Write(q); err != nil {
			return m, err
		}
		return len(p), nil
	}
	fs.written += int64(len(p))
	fs.mu.Unlock()
	return f.base.Write(p)
}

func (f *faultFile) Sync() error {
	fs := f.fs
	fs.mu.Lock()
	if fs.crashed {
		fs.mu.Unlock()
		return ErrCrashed
	}
	op := fs.ops
	fs.ops++
	h := fs.seed ^ Mix64(op)
	if fs.cfg.SyncErrProb > 0 && unit(Mix64(h^saltFSSyncErr)) < fs.cfg.SyncErrProb {
		fs.mu.Unlock()
		return fmt.Errorf("%w: sync op %d", ErrInjected, op)
	}
	fs.mu.Unlock()
	return f.base.Sync()
}

func (f *faultFile) Close() error {
	if f.fs.Crashed() {
		return ErrCrashed
	}
	return f.base.Close()
}
