package faultinject

import (
	"bytes"
	"errors"
	"io/fs"
	"testing"
)

func TestMemFSBasics(t *testing.T) {
	m := NewMemFS()
	if err := m.MkdirAll("w"); err != nil {
		t.Fatal(err)
	}
	f, err := m.Create("w/b.seg")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, fs.ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
	g, err := m.Create("w/a.seg")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write([]byte("second")); err != nil {
		t.Fatal(err)
	}
	names, err := m.ReadDir("w")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a.seg" || names[1] != "b.seg" {
		t.Fatalf("ReadDir = %v, want sorted [a.seg b.seg]", names)
	}
	data, err := m.ReadFile("w/b.seg")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello world" {
		t.Fatalf("content %q", data)
	}
	if err := m.Truncate("w/b.seg", 5); err != nil {
		t.Fatal(err)
	}
	data, _ = m.ReadFile("w/b.seg")
	if string(data) != "hello" {
		t.Fatalf("after truncate: %q", data)
	}
	if err := m.Remove("w/a.seg"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadFile("w/a.seg"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("read removed: %v", err)
	}
	if err := m.Remove("w/a.seg"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("double remove: %v", err)
	}
}

func TestMemFSCrashClone(t *testing.T) {
	m := NewMemFS()
	f, _ := m.Create("w/x")
	if _, err := f.Write([]byte("abcd")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("efgh")); err != nil {
		t.Fatal(err)
	}
	g, _ := m.Create("w/y")
	if _, err := g.Write([]byte("1234")); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("w/x"); err != nil {
		t.Fatal(err)
	}
	if got := m.JournalBytes(); got != 12 {
		t.Fatalf("JournalBytes = %d, want 12", got)
	}
	// Full budget: the clone reflects every operation, including the remove.
	c := m.CrashClone(12)
	if _, err := c.ReadFile("w/x"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("remove should have replayed at full budget")
	}
	if data, _ := c.ReadFile("w/y"); string(data) != "1234" {
		t.Fatalf("y = %q", data)
	}
	// Budget 6 tears the second write of x mid-payload; the remove and the
	// y write never happened.
	c = m.CrashClone(6)
	if data, _ := c.ReadFile("w/x"); string(data) != "abcdef" {
		t.Fatalf("torn x = %q, want abcdef", data)
	}
	if _, err := c.ReadFile("w/y"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("y should not exist before the crash point")
	}
	// Clones are independent: mutating the clone leaves the source alone.
	if err := c.Truncate("w/x", 1); err != nil {
		t.Fatal(err)
	}
	if data, _ := m.ReadFile("w/y"); string(data) != "1234" {
		t.Fatalf("source mutated: %q", data)
	}
}

// collectFaults drives an identical operation sequence through a fresh
// FaultFS and records each outcome, for determinism comparison.
func collectFaults(t *testing.T, seed int64) ([]string, []byte) {
	t.Helper()
	base := NewMemFS()
	ffs, err := NewFaultFS(base, DiskFaultConfig{
		Seed:           seed,
		WriteErrProb:   0.2,
		SyncErrProb:    0.1,
		ShortWriteProb: 0.2,
		BitFlipProb:    0.1,
		CrashAtBytes:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := ffs.Create("w/f")
	if err != nil {
		t.Fatal(err)
	}
	var outcomes []string
	for i := 0; i < 64; i++ {
		n, err := f.Write([]byte("0123456789abcdef"))
		outcomes = append(outcomes, errString(err), string(rune('0'+n%10)))
		serr := f.Sync()
		outcomes = append(outcomes, errString(serr))
	}
	data, err := base.ReadFile("w/f")
	if err != nil {
		t.Fatal(err)
	}
	return outcomes, data
}

func errString(err error) string {
	if err == nil {
		return "ok"
	}
	return err.Error()
}

func TestFaultFSDeterministic(t *testing.T) {
	o1, d1 := collectFaults(t, 42)
	o2, d2 := collectFaults(t, 42)
	if len(o1) != len(o2) {
		t.Fatalf("outcome lengths differ: %d vs %d", len(o1), len(o2))
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("outcome %d differs: %q vs %q", i, o1[i], o2[i])
		}
	}
	if !bytes.Equal(d1, d2) {
		t.Fatal("resulting file bytes differ across identical runs")
	}
	o3, _ := collectFaults(t, 43)
	same := true
	for i := range o1 {
		if o1[i] != o3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestFaultFSCrashPoint(t *testing.T) {
	base := NewMemFS()
	ffs, err := NewFaultFS(base, DiskFaultConfig{CrashAtBytes: 10})
	if err != nil {
		t.Fatal(err)
	}
	f, err := ffs.Create("w/f")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := f.Write([]byte("01234567")); n != 8 || err != nil {
		t.Fatalf("first write: n=%d err=%v", n, err)
	}
	n, err := f.Write([]byte("89abcdef"))
	if n != 2 || !errors.Is(err, ErrCrashed) {
		t.Fatalf("crossing write: n=%d err=%v, want torn at 2 bytes with ErrCrashed", n, err)
	}
	if !ffs.Crashed() {
		t.Fatal("fs should be crashed")
	}
	if got := ffs.WrittenBytes(); got != 10 {
		t.Fatalf("WrittenBytes = %d, want 10", got)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync: %v", err)
	}
	if _, err := ffs.Create("w/g"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash create: %v", err)
	}
	if err := ffs.Remove("w/f"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash remove: %v", err)
	}
	// Reads still pass through: a recovering process inspects the torn disk.
	data, err := ffs.ReadFile("w/f")
	if err != nil || string(data) != "0123456789" {
		t.Fatalf("post-crash read: %q, %v", data, err)
	}
}

func TestFaultFSShortWriteAndBitFlip(t *testing.T) {
	base := NewMemFS()
	ffs, err := NewFaultFS(base, DiskFaultConfig{ShortWriteProb: 0.999, CrashAtBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := ffs.Create("w/f")
	n, werr := f.Write([]byte("0123456789"))
	if werr == nil || !errors.Is(werr, ErrInjected) || n <= 0 || n >= 10 {
		t.Fatalf("short write: n=%d err=%v, want strict prefix with ErrInjected", n, werr)
	}
	data, _ := base.ReadFile("w/f")
	if string(data) != "0123456789"[:n] {
		t.Fatalf("disk holds %q, reported n=%d", data, n)
	}

	base2 := NewMemFS()
	ffs2, err := NewFaultFS(base2, DiskFaultConfig{BitFlipProb: 0.999, CrashAtBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	g, _ := ffs2.Create("w/g")
	payload := []byte("0123456789")
	if n, err := g.Write(payload); n != len(payload) || err != nil {
		t.Fatalf("bit-flip write must report silent success, got n=%d err=%v", n, err)
	}
	got, _ := base2.ReadFile("w/g")
	diff := 0
	for i := range got {
		diff += popcount8(got[i] ^ payload[i])
	}
	if diff != 1 {
		t.Fatalf("%d flipped bits, want exactly 1 (disk=%q)", diff, got)
	}
	if !bytes.Equal(payload, []byte("0123456789")) {
		t.Fatal("caller's buffer was mutated")
	}
}

func popcount8(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

func TestFaultFSBadConfig(t *testing.T) {
	if _, err := NewFaultFS(NewMemFS(), DiskFaultConfig{WriteErrProb: 1.5}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("want ErrBadConfig, got %v", err)
	}
	if _, err := NewFaultFS(NewMemFS(), DiskFaultConfig{SyncErrProb: -0.1}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("want ErrBadConfig, got %v", err)
	}
}
