package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/netsim"
	"routetab/internal/schemes/fulltable"
)

// recorder is a Target that logs applied events.
type recorder struct {
	log []string
}

func (r *recorder) SetLinkDown(u, v int, down bool) error {
	r.log = append(r.log, fmt.Sprintf("link %d-%d %v", u, v, down))
	return nil
}

func (r *recorder) SetNodeDown(u int, down bool) error {
	r.log = append(r.log, fmt.Sprintf("node %d %v", u, down))
	return nil
}

func TestInjectorAppliesEventsInTickOrder(t *testing.T) {
	plan := &Plan{Events: []Event{
		{Tick: 2, Kind: NodeCrash, U: 7},
		{Tick: 0, Kind: LinkDown, U: 1, V: 2},
		{Tick: 2, Kind: LinkUp, U: 1, V: 2},
		{Tick: 5, Kind: NodeRecover, U: 7},
	}}
	in, err := New(Config{Seed: 1}, plan)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	in.Bind(rec)
	if err := in.AdvanceTo(0); err != nil {
		t.Fatal(err)
	}
	if want := []string{"link 1-2 true"}; !reflect.DeepEqual(rec.log, want) {
		t.Fatalf("log = %v, want %v", rec.log, want)
	}
	if err := in.Step(); err != nil { // tick 1: nothing due
		t.Fatal(err)
	}
	if len(rec.log) != 1 {
		t.Fatalf("log = %v", rec.log)
	}
	if err := in.Step(); err != nil { // tick 2: crash 7, repair 1-2, in plan order
		t.Fatal(err)
	}
	want := []string{"link 1-2 true", "node 7 true", "link 1-2 false"}
	if !reflect.DeepEqual(rec.log, want) {
		t.Fatalf("log = %v, want %v", rec.log, want)
	}
	if in.Tick() != 2 {
		t.Fatalf("tick = %d", in.Tick())
	}
	if err := in.Finish(); err != nil {
		t.Fatal(err)
	}
	if rec.log[len(rec.log)-1] != "node 7 false" {
		t.Fatalf("log = %v", rec.log)
	}
}

func TestInjectorUnboundAndBadConfig(t *testing.T) {
	in, err := New(Config{Seed: 1}, &Plan{Events: []Event{{Tick: 0, Kind: LinkDown, U: 1, V: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.AdvanceTo(3); !errors.Is(err, ErrUnbound) {
		t.Fatalf("err = %v, want ErrUnbound", err)
	}
	// An event-free injector never needs a target.
	free, err := New(Config{Seed: 1, DropProb: 0.5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := free.AdvanceTo(10); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{
		{DropProb: -0.1},
		{DropProb: 1},
		{DupProb: 2},
		{MaxDelayTicks: -1},
	} {
		if _, err := New(bad, nil); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("config %+v accepted", bad)
		}
	}
	if _, err := RandomPlan(graph.MustNew(4), PlanConfig{LinkFailProb: 1.5}, 1); !errors.Is(err, ErrBadConfig) {
		t.Fatal("bad plan config accepted")
	}
}

func TestOnHopIsPureAndSeedSensitive(t *testing.T) {
	cfg := Config{Seed: 42, DropProb: 0.3, DupProb: 0.2, MaxDelayTicks: 4}
	a, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 43
	c, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	same, diff := 0, 0
	for i := 0; i < 2000; i++ {
		id := Mix64(uint64(i))
		fa := a.OnHop(id, i%50, i%7)
		fb := b.OnHop(id, i%50, i%7)
		fc := c.OnHop(id, i%50, i%7)
		if fa != fb {
			t.Fatalf("same seed diverged at %d: %+v vs %+v", i, fa, fb)
		}
		if fa == fc {
			same++
		} else {
			diff++
		}
		if fa.DelayTicks < 0 || fa.DelayTicks > 4 {
			t.Fatalf("delay %d out of range", fa.DelayTicks)
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical fault streams")
	}
	// Rates should be in the right ballpark (binomial, 2000 draws).
	drops := 0
	for i := 0; i < 2000; i++ {
		if a.OnHop(Mix64(uint64(i)^0xBEEF), 1, 0).Drop {
			drops++
		}
	}
	if drops < 450 || drops > 750 {
		t.Fatalf("drop rate %d/2000, want ≈ 600", drops)
	}
}

func TestRandomPlanDeterministicAndCanonical(t *testing.T) {
	g, err := gengraph.GnHalf(32, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	pc := PlanConfig{LinkFailProb: 0.1, NodeCrashProb: 0.1, Horizon: 20, RepairAfter: 5}
	p1, err := RandomPlan(g, pc, 7)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := RandomPlan(g, pc, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("same seed produced different plans")
	}
	if len(p1.Events) == 0 {
		t.Fatal("empty plan at p=0.1 on 32 nodes")
	}
	p3, err := RandomPlan(g, pc, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(p1, p3) {
		t.Fatal("different seeds produced identical plans")
	}
	for i := 1; i < len(p1.Events); i++ {
		if p1.Events[i].Tick < p1.Events[i-1].Tick {
			t.Fatalf("events out of order: %v before %v", p1.Events[i-1], p1.Events[i])
		}
	}
	for _, e := range p1.Events {
		if e.Tick < 0 || e.Tick >= pc.Horizon+pc.RepairAfter {
			t.Fatalf("event %v outside horizon", e)
		}
	}
	// Repairs pair up: every down/crash has its up/recover RepairAfter later.
	down, up := 0, 0
	for _, e := range p1.Events {
		switch e.Kind {
		case LinkDown, NodeCrash:
			down++
		case LinkUp, NodeRecover:
			up++
		}
	}
	if down != up {
		t.Fatalf("%d failures but %d repairs", down, up)
	}
	// Zero probabilities ⇒ empty plan.
	empty, err := RandomPlan(g, PlanConfig{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Events) != 0 {
		t.Fatalf("plan = %v, want empty", empty.Events)
	}
}

func TestInjectorDrivesRealNetwork(t *testing.T) {
	// End-to-end: a plan that kills a chain's only middle link makes the far
	// end unreachable exactly when the clock passes the event, and the flap
	// repairs it again.
	g := graph.MustNew(3)
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	ports := graph.SortedPorts(g)
	s, err := fulltable.Build(g, ports)
	if err != nil {
		t.Fatal(err)
	}
	plan := &Plan{Events: []Event{
		{Tick: 1, Kind: LinkDown, U: 2, V: 3},
		{Tick: 2, Kind: LinkUp, U: 2, V: 3},
	}}
	in, err := New(Config{Seed: 3}, plan)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := netsim.New(g, ports, s, netsim.Options{Hook: in})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	in.Bind(nw)

	if err := in.AdvanceTo(0); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Send(1, 3); err != nil {
		t.Fatalf("tick 0: %v", err)
	}
	if err := in.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Send(1, 3); !errors.Is(err, netsim.ErrLinkDown) {
		t.Fatalf("tick 1: err = %v, want ErrLinkDown", err)
	}
	if err := in.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Send(1, 3); err != nil {
		t.Fatalf("tick 2 (repaired): %v", err)
	}
}

// TestPlanDeterministicUnderGOMAXPROCS: a plan — and the event sequence an
// injector applies from it — is a pure function of (graph, config, seed),
// independent of how many OS threads the runtime schedules on. This is the
// contract that makes a chaos run's fault schedule reproducible on any CI
// box.
func TestPlanDeterministicUnderGOMAXPROCS(t *testing.T) {
	g, err := gengraph.GnHalf(64, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	pc := PlanConfig{LinkFailProb: 0.05, NodeCrashProb: 0.05, Horizon: 8, RepairAfter: 2}

	runOnce := func(procs int) ([]Event, []string) {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		plan, err := RandomPlan(g, pc, 77)
		if err != nil {
			t.Fatal(err)
		}
		inj, err := New(Config{Seed: 77}, plan)
		if err != nil {
			t.Fatal(err)
		}
		rec := &recorder{}
		inj.Bind(rec)
		for tick := 0; tick <= pc.Horizon; tick += 2 {
			if err := inj.AdvanceTo(tick); err != nil {
				t.Fatal(err)
			}
		}
		if err := inj.Finish(); err != nil {
			t.Fatal(err)
		}
		return plan.Events, rec.log
	}

	wantEvents, wantLog := runOnce(1)
	if len(wantEvents) == 0 {
		t.Fatal("plan scheduled no events; determinism test is vacuous")
	}
	for _, procs := range []int{2, runtime.NumCPU()} {
		events, log := runOnce(procs)
		if !reflect.DeepEqual(events, wantEvents) {
			t.Fatalf("GOMAXPROCS=%d changed the plan (%d vs %d events)", procs, len(events), len(wantEvents))
		}
		if !reflect.DeepEqual(log, wantLog) {
			t.Fatalf("GOMAXPROCS=%d changed the applied event sequence", procs)
		}
	}
}
