package faultinject

import (
	"errors"
	"testing"
)

// peerRecorder implements Target + PeerTarget and records peer transitions.
type peerRecorder struct {
	events []Event
	down   map[int]bool
}

func (r *peerRecorder) SetLinkDown(u, v int, isDown bool) error { return nil }
func (r *peerRecorder) SetNodeDown(u int, isDown bool) error    { return nil }
func (r *peerRecorder) SetPeerDown(peer int, isDown bool) error {
	kind := PeerHeal
	if isDown {
		kind = PeerIsolate
	}
	r.events = append(r.events, Event{Kind: kind, U: peer})
	if r.down == nil {
		r.down = make(map[int]bool)
	}
	r.down[peer] = isDown
	return nil
}

func TestRandomPartitionPlanDeterministic(t *testing.T) {
	pc := PartitionConfig{Peers: 8, IsolateProb: 0.6, Horizon: 5, HealAfter: 2}
	a, err := RandomPartitionPlan(pc, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomPartitionPlan(pc, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("plan lengths differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a.Events[i], b.Events[i])
		}
	}
	if len(a.Events) == 0 {
		t.Fatal("p=0.6 over 8 peers drew an empty plan")
	}
	// Every isolation has its heal exactly HealAfter ticks later.
	heals := make(map[int]int)
	for _, e := range a.Events {
		switch e.Kind {
		case PeerIsolate:
			heals[e.U] = e.Tick + pc.HealAfter
		case PeerHeal:
			if want, ok := heals[e.U]; !ok || e.Tick != want {
				t.Fatalf("heal of peer %d at tick %d, want %d", e.U, e.Tick, want)
			}
		default:
			t.Fatalf("unexpected kind %v in partition plan", e.Kind)
		}
	}
}

func TestPartitionPlanDrivesPeerTarget(t *testing.T) {
	plan := &Plan{Events: []Event{
		{Tick: 0, Kind: PeerIsolate, U: 1},
		{Tick: 1, Kind: PeerIsolate, U: 2},
		{Tick: 2, Kind: PeerHeal, U: 1},
		{Tick: 3, Kind: PeerHeal, U: 2},
	}}
	in, err := New(Config{Seed: 1}, plan)
	if err != nil {
		t.Fatal(err)
	}
	rec := &peerRecorder{}
	in.Bind(rec)
	if err := in.AdvanceTo(1); err != nil {
		t.Fatal(err)
	}
	if len(rec.events) != 2 || !rec.down[1] || !rec.down[2] {
		t.Fatalf("after tick 1: events=%v down=%v", rec.events, rec.down)
	}
	if err := in.Finish(); err != nil {
		t.Fatal(err)
	}
	if rec.down[1] || rec.down[2] {
		t.Fatalf("peers not healed at finish: %v", rec.down)
	}
}

// TestPartitionPlanRejectsPlainTarget pins the mismatch failure mode: a plan
// with peer events applied to a target without SetPeerDown must error, not
// silently skip the partition.
func TestPartitionPlanRejectsPlainTarget(t *testing.T) {
	plan := &Plan{Events: []Event{{Tick: 0, Kind: PeerIsolate, U: 0}}}
	in, err := New(Config{Seed: 1}, plan)
	if err != nil {
		t.Fatal(err)
	}
	in.Bind(nopTarget{})
	if err := in.Step(); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("plain target accepted peer event: %v", err)
	}
}

type nopTarget struct{}

func (nopTarget) SetLinkDown(u, v int, isDown bool) error { return nil }
func (nopTarget) SetNodeDown(u int, isDown bool) error    { return nil }

func TestPartitionConfigValidation(t *testing.T) {
	bad := []PartitionConfig{
		{Peers: 0, IsolateProb: 0.5},
		{Peers: 3, IsolateProb: -0.1},
		{Peers: 3, IsolateProb: 1.0},
		{Peers: 3, IsolateProb: 0.5, Horizon: -1},
		{Peers: 3, IsolateProb: 0.5, HealAfter: -1},
	}
	for _, pc := range bad {
		if _, err := RandomPartitionPlan(pc, 1); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("config %+v accepted", pc)
		}
	}
}
