// Link-level partition plans: scheduled isolation of cluster peers from
// their replication feed (and their clients), the failure mode the serving
// layer's replication harness injects. Where the topology events in plan.go
// fail links *inside* the served graph, a partition event severs the link
// *between cluster members* — a replica keeps answering from its last
// applied state, falls behind the primary's WAL, and must catch up (or fall
// back to a full snapshot fetch) once the partition heals.
//
// Partition events ride the same Plan/Injector machinery: they are ordinary
// Events with peer-scoped kinds, fire on the logical-tick clock, and apply
// through the optional PeerTarget extension of Target — determinism is
// inherited wholesale.
package faultinject

import (
	"fmt"
	"math/rand"
)

// Peer-scoped event kinds. PeerIsolate severs peer U's links to the rest of
// the cluster (replication feed and client traffic); PeerHeal restores them.
const (
	PeerIsolate EventKind = iota + 5
	PeerHeal
)

// PeerTarget is the optional control surface for cluster-level partitions.
// A Target that also implements PeerTarget can be driven by plans containing
// PeerIsolate/PeerHeal events; applying such an event to a plain Target is a
// plan/target mismatch and fails loudly.
type PeerTarget interface {
	SetPeerDown(peer int, isDown bool) error
}

// PartitionConfig parameterises RandomPartitionPlan.
type PartitionConfig struct {
	// Peers is how many cluster members the plan covers, indexed 0…Peers-1.
	Peers int
	// IsolateProb is the probability each peer is partitioned away during
	// the plan.
	IsolateProb float64
	// Horizon is the tick range isolations are scheduled in, as in
	// PlanConfig.
	Horizon int
	// HealAfter, when positive, schedules the matching PeerHeal event
	// HealAfter ticks after each isolation; 0 leaves partitions in place
	// for the run.
	HealAfter int
}

func (pc PartitionConfig) validate() error {
	if pc.Peers < 1 {
		return fmt.Errorf("%w: %d peers", ErrBadConfig, pc.Peers)
	}
	if pc.IsolateProb < 0 || pc.IsolateProb >= 1 {
		return fmt.Errorf("%w: isolate probability %v", ErrBadConfig, pc.IsolateProb)
	}
	if pc.Horizon < 0 || pc.HealAfter < 0 {
		return fmt.Errorf("%w: horizon %d, heal-after %d", ErrBadConfig, pc.Horizon, pc.HealAfter)
	}
	return nil
}

// RandomPartitionPlan draws a partition schedule over a cluster: every peer
// is isolated independently with probability IsolateProb at a uniform tick
// within the horizon, optionally healed HealAfter ticks later. Peers are
// visited in index order, so the plan is a pure function of (pc, seed) —
// identical across runs, exactly like RandomPlan.
func RandomPartitionPlan(pc PartitionConfig, seed int64) (*Plan, error) {
	if err := pc.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	var plan Plan
	for p := 0; p < pc.Peers; p++ {
		if rng.Float64() >= pc.IsolateProb {
			continue
		}
		t := 0
		if pc.Horizon > 1 {
			t = rng.Intn(pc.Horizon)
		}
		plan.Events = append(plan.Events, Event{Tick: t, Kind: PeerIsolate, U: p})
		if pc.HealAfter > 0 {
			plan.Events = append(plan.Events, Event{Tick: t + pc.HealAfter, Kind: PeerHeal, U: p})
		}
	}
	plan.Sort()
	return &plan, nil
}
