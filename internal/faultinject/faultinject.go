// Package faultinject is the deterministic fault-injection engine for
// internal/netsim: a seed-driven Plan of scheduled topology events (link
// flaps, node crashes and recoveries) on a logical-tick clock, plus an
// Injector that applies the plan to a running network through a narrow
// Target interface and perturbs per-hop message handling (probabilistic
// drops, bounded random delays, duplication) as a netsim.FaultHook.
//
// Determinism is the design centre: every per-hop decision is a pure hash of
// (seed, message ID, node, hop count) — never of wall-clock time, goroutine
// scheduling, or shared RNG state — and plan events fire only when the
// driver advances the logical clock. Identical seed + plan therefore yields
// identical outcomes, which the resilience sweep in internal/eval turns into
// byte-identical CSVs.
package faultinject

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"routetab/internal/netsim"
)

// Errors.
var (
	// ErrBadConfig reports invalid injector or plan parameters.
	ErrBadConfig = errors.New("faultinject: bad config")
	// ErrUnbound indicates clock advancement before Bind.
	ErrUnbound = errors.New("faultinject: injector not bound to a target")
)

// EventKind enumerates scheduled topology faults.
type EventKind int

// Event kinds.
const (
	LinkDown EventKind = iota + 1
	LinkUp
	NodeCrash
	NodeRecover
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case NodeCrash:
		return "node-crash"
	case NodeRecover:
		return "node-recover"
	case PeerIsolate:
		return "peer-isolate"
	case PeerHeal:
		return "peer-heal"
	}
	return fmt.Sprintf("event-kind-%d", int(k))
}

// Event is one scheduled topology fault. Link events use U and V; node
// events use U only.
type Event struct {
	Tick int
	Kind EventKind
	U, V int
}

// String implements fmt.Stringer.
func (e Event) String() string {
	if e.Kind == LinkDown || e.Kind == LinkUp {
		return fmt.Sprintf("t=%d %s %d-%d", e.Tick, e.Kind, e.U, e.V)
	}
	return fmt.Sprintf("t=%d %s %d", e.Tick, e.Kind, e.U)
}

// Plan is a schedule of topology events on the logical-tick clock. Events at
// the same tick apply in slice order (the order is part of the plan's
// identity, so plans replay deterministically).
type Plan struct {
	Events []Event
}

// Sort stably orders the events by tick, preserving same-tick input order.
func (p *Plan) Sort() {
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].Tick < p.Events[j].Tick })
}

// Horizon returns one past the last scheduled tick (0 for an empty plan).
func (p *Plan) Horizon() int {
	h := 0
	for _, e := range p.Events {
		if e.Tick+1 > h {
			h = e.Tick + 1
		}
	}
	return h
}

// Target is the narrow control surface the injector drives a network
// through. *netsim.Network satisfies it.
type Target interface {
	SetLinkDown(u, v int, isDown bool) error
	SetNodeDown(u int, isDown bool) error
}

// Config parameterises the per-hop stochastic faults.
type Config struct {
	// Seed keys every per-hop hash decision.
	Seed int64
	// DropProb is the per-hop probability a message is discarded.
	DropProb float64
	// DupProb is the per-hop probability a ghost duplicate is forwarded.
	DupProb float64
	// MaxDelayTicks bounds the uniform per-hop logical delay (0 = none).
	MaxDelayTicks int
}

func (c Config) validate() error {
	if c.DropProb < 0 || c.DropProb >= 1 {
		return fmt.Errorf("%w: drop probability %v", ErrBadConfig, c.DropProb)
	}
	if c.DupProb < 0 || c.DupProb >= 1 {
		return fmt.Errorf("%w: duplication probability %v", ErrBadConfig, c.DupProb)
	}
	if c.MaxDelayTicks < 0 {
		return fmt.Errorf("%w: max delay %d", ErrBadConfig, c.MaxDelayTicks)
	}
	return nil
}

// Injector owns the logical clock, applies plan events as the clock
// advances, and implements netsim.FaultHook for per-hop faults.
type Injector struct {
	cfg  Config
	seed uint64

	mu     sync.Mutex
	events []Event
	next   int
	tick   int
	target Target
}

var _ netsim.FaultHook = (*Injector)(nil)

// New validates cfg and builds an injector for plan (nil means no scheduled
// events). Bind it to a network before advancing the clock.
func New(cfg Config, plan *Plan) (*Injector, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var events []Event
	if plan != nil {
		events = make([]Event, len(plan.Events))
		copy(events, plan.Events)
		sort.SliceStable(events, func(i, j int) bool { return events[i].Tick < events[j].Tick })
	}
	return &Injector{
		cfg:    cfg,
		seed:   Mix64(uint64(cfg.Seed) ^ 0xA24BAED4963EE407),
		events: events,
	}, nil
}

// Bind attaches the target the plan's events are applied to. It is required
// before Step/AdvanceTo because the network must exist first (the network in
// turn is constructed with the injector as its Options.Hook).
func (in *Injector) Bind(t Target) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.target = t
}

// Tick returns the current logical time.
func (in *Injector) Tick() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.tick
}

// Step advances the clock by one tick, applying every event due at or before
// the new time.
func (in *Injector) Step() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.advanceTo(in.tick + 1)
}

// AdvanceTo moves the clock to tick (monotone: earlier times are a no-op)
// and applies every event with Event.Tick ≤ tick in schedule order.
func (in *Injector) AdvanceTo(tick int) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.advanceTo(tick)
}

func (in *Injector) advanceTo(tick int) error {
	if tick > in.tick {
		in.tick = tick
	}
	if in.next >= len(in.events) {
		return nil
	}
	if in.target == nil {
		return ErrUnbound
	}
	for in.next < len(in.events) && in.events[in.next].Tick <= in.tick {
		e := in.events[in.next]
		in.next++
		var err error
		switch e.Kind {
		case LinkDown:
			err = in.target.SetLinkDown(e.U, e.V, true)
		case LinkUp:
			err = in.target.SetLinkDown(e.U, e.V, false)
		case NodeCrash:
			err = in.target.SetNodeDown(e.U, true)
		case NodeRecover:
			err = in.target.SetNodeDown(e.U, false)
		case PeerIsolate, PeerHeal:
			pt, ok := in.target.(PeerTarget)
			if !ok {
				err = fmt.Errorf("%w: plan contains %s but target %T is not a PeerTarget", ErrBadConfig, e.Kind, in.target)
				break
			}
			err = pt.SetPeerDown(e.U, e.Kind == PeerIsolate)
		default:
			err = fmt.Errorf("%w: unknown event kind %d", ErrBadConfig, int(e.Kind))
		}
		if err != nil {
			return fmt.Errorf("faultinject: applying %s: %w", e, err)
		}
	}
	return nil
}

// Finish applies every remaining scheduled event regardless of tick — useful
// to restore a repaired end state before reusing a network.
func (in *Injector) Finish() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	h := 0
	for _, e := range in.events {
		if e.Tick+1 > h {
			h = e.Tick + 1
		}
	}
	return in.advanceTo(h)
}

// Hash salts for the independent per-hop decisions.
const (
	saltDrop  = 0x8CB92BA72F3D8DD7
	saltDup   = 0xAEF17502108EF2D9
	saltDelay = 0xE7037ED1A0B428DB
)

// OnHop implements netsim.FaultHook: a pure hash of (seed, message ID, node,
// hop count), safe for concurrent use, identical across runs.
func (in *Injector) OnHop(msgID uint64, node, hops int) netsim.HopFault {
	base := in.seed ^ Mix64(msgID) ^ Mix64(uint64(hops)*0x100000001B3+uint64(node))
	var f netsim.HopFault
	if in.cfg.DropProb > 0 && unit(Mix64(base^saltDrop)) < in.cfg.DropProb {
		f.Drop = true
		return f
	}
	if in.cfg.DupProb > 0 && unit(Mix64(base^saltDup)) < in.cfg.DupProb {
		f.Duplicate = true
	}
	if in.cfg.MaxDelayTicks > 0 {
		f.DelayTicks = int(Mix64(base^saltDelay) % uint64(in.cfg.MaxDelayTicks+1))
	}
	return f
}

// Mix64 is the SplitMix64 finaliser — the engine's deterministic hash.
func Mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// unit maps a hash to [0,1) with 53 uniform bits.
func unit(x uint64) float64 { return float64(x>>11) / (1 << 53) }
