package faultinject

import (
	"fmt"
	"math/rand"

	"routetab/internal/graph"
)

// PlanConfig parameterises RandomPlan.
type PlanConfig struct {
	// LinkFailProb is the probability each link fails during the plan.
	LinkFailProb float64
	// NodeCrashProb is the probability each node crashes during the plan.
	NodeCrashProb float64
	// Horizon is the tick range failures are scheduled in: each selected
	// fault starts at a uniform tick in [0, Horizon). Horizon ≤ 1 schedules
	// everything at tick 0.
	Horizon int
	// RepairAfter, when positive, schedules the matching repair event
	// RepairAfter ticks after each failure (flaps); 0 makes failures
	// permanent for the run.
	RepairAfter int
}

func (pc PlanConfig) validate() error {
	if pc.LinkFailProb < 0 || pc.LinkFailProb >= 1 {
		return fmt.Errorf("%w: link failure probability %v", ErrBadConfig, pc.LinkFailProb)
	}
	if pc.NodeCrashProb < 0 || pc.NodeCrashProb >= 1 {
		return fmt.Errorf("%w: node crash probability %v", ErrBadConfig, pc.NodeCrashProb)
	}
	if pc.Horizon < 0 || pc.RepairAfter < 0 {
		return fmt.Errorf("%w: horizon %d, repair-after %d", ErrBadConfig, pc.Horizon, pc.RepairAfter)
	}
	return nil
}

// RandomPlan draws a δ-random fault schedule for g: every link fails
// independently with probability LinkFailProb and every node crashes with
// probability NodeCrashProb, each at a uniform tick within the horizon,
// optionally repaired RepairAfter ticks later. Links and nodes are visited
// in canonical order (edges with u < v ascending, then nodes), so the plan
// is a pure function of (g, pc, seed).
func RandomPlan(g *graph.Graph, pc PlanConfig, seed int64) (*Plan, error) {
	if err := pc.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	tick := func() int {
		if pc.Horizon <= 1 {
			return 0
		}
		return rng.Intn(pc.Horizon)
	}
	var plan Plan
	for u := 1; u <= g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if v <= u {
				continue
			}
			if rng.Float64() >= pc.LinkFailProb {
				continue
			}
			t := tick()
			plan.Events = append(plan.Events, Event{Tick: t, Kind: LinkDown, U: u, V: v})
			if pc.RepairAfter > 0 {
				plan.Events = append(plan.Events, Event{Tick: t + pc.RepairAfter, Kind: LinkUp, U: u, V: v})
			}
		}
	}
	for u := 1; u <= g.N(); u++ {
		if rng.Float64() >= pc.NodeCrashProb {
			continue
		}
		t := tick()
		plan.Events = append(plan.Events, Event{Tick: t, Kind: NodeCrash, U: u})
		if pc.RepairAfter > 0 {
			plan.Events = append(plan.Events, Event{Tick: t + pc.RepairAfter, Kind: NodeRecover, U: u})
		}
	}
	plan.Sort()
	return &plan, nil
}
