// Package bitio provides bit-exact binary encoding primitives used throughout
// routetab to measure routing-table sizes in bits, not bytes.
//
// The paper ("Optimal Routing Tables", PODC'96) charges every routing scheme
// by the exact number of bits needed to store its local routing functions, and
// its incompressibility proofs manipulate bit strings directly: characteristic
// sequences (Definition 2, footnote 7), unary codes, and the self-delimiting
// codes z̄ = 1^{|z|} 0 z and z′ = |z|̄ z of Definition 4. This package
// implements all of them with exact-cost accounting so that encoded sizes can
// be compared against the paper's bounds bit for bit.
package bitio

import (
	"errors"
	"fmt"
	"math/bits"
)

// Common decoding errors.
var (
	// ErrOutOfBits indicates a read past the end of the bit stream.
	ErrOutOfBits = errors.New("bitio: out of bits")
	// ErrWidthRange indicates a fixed width outside [0, 64].
	ErrWidthRange = errors.New("bitio: width out of range [0,64]")
	// ErrValueRange indicates a value that does not fit the requested width.
	ErrValueRange = errors.New("bitio: value does not fit width")
)

// Writer accumulates bits most-significant-first into a growable buffer.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	nbit int // total bits written
}

// NewWriter returns a Writer with capacity preallocated for sizeHint bits.
func NewWriter(sizeHint int) *Writer {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &Writer{buf: make([]byte, 0, (sizeHint+7)/8)}
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.nbit }

// Bytes returns the packed bits; the final byte is zero-padded. The returned
// slice is a copy and safe to retain.
func (w *Writer) Bytes() []byte {
	out := make([]byte, len(w.buf))
	copy(out, w.buf)
	return out
}

// BitString renders the written bits as a "0101…" string (testing helper).
func (w *Writer) BitString() string {
	out := make([]byte, w.nbit)
	for i := 0; i < w.nbit; i++ {
		if w.buf[i/8]&(1<<(7-uint(i%8))) != 0 {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}

// WriteBit appends a single bit.
func (w *Writer) WriteBit(b bool) {
	if w.nbit%8 == 0 {
		w.buf = append(w.buf, 0)
	}
	if b {
		w.buf[w.nbit/8] |= 1 << (7 - uint(w.nbit%8))
	}
	w.nbit++
}

// WriteBits appends the width lowest-order bits of v, most significant first.
// Width must lie in [0, 64] and v must fit in width bits.
func (w *Writer) WriteBits(v uint64, width int) error {
	if width < 0 || width > 64 {
		return fmt.Errorf("%w: %d", ErrWidthRange, width)
	}
	if width < 64 && v>>uint(width) != 0 {
		return fmt.Errorf("%w: value %d, width %d", ErrValueRange, v, width)
	}
	for i := width - 1; i >= 0; i-- {
		w.WriteBit(v&(1<<uint(i)) != 0)
	}
	return nil
}

// WriteUnary appends the paper's unary code for v ≥ 0: v ones followed by a
// terminating zero (Theorem 1 uses this for intermediate-node indices; note
// that value 0 encodes as the single bit "0", which Theorem 1 reuses as the
// "see second table" marker).
func (w *Writer) WriteUnary(v int) error {
	if v < 0 {
		return fmt.Errorf("%w: unary of negative %d", ErrValueRange, v)
	}
	for i := 0; i < v; i++ {
		w.WriteBit(true)
	}
	w.WriteBit(false)
	return nil
}

// WriteSelfDelimiting appends z̄ = 1^{|z|} 0 z where z is the minimal binary
// representation of v (Definition 4). Cost: 2|z|+1 bits. Values must be
// below 2⁶⁴−1 (the bijective code of MaxUint64 needs a 64-bit length that
// the reader rejects).
func (w *Writer) WriteSelfDelimiting(v uint64) error {
	if v == 1<<64-1 {
		return fmt.Errorf("%w: self-delimiting value %d", ErrValueRange, v)
	}
	z := minimalBinary(v)
	for range z {
		w.WriteBit(true)
	}
	w.WriteBit(false)
	for _, bit := range z {
		w.WriteBit(bit)
	}
	return nil
}

// WriteShortSelfDelimiting appends z′ = |z|̄ z (Definition 4): the length of
// z in the z̄ code followed by z itself. Cost: |z| + 2⌈log(|z|+1)⌉ + 1 bits.
func (w *Writer) WriteShortSelfDelimiting(v uint64) error {
	z := minimalBinary(v)
	if err := w.WriteSelfDelimiting(uint64(len(z))); err != nil {
		return err
	}
	for _, bit := range z {
		w.WriteBit(bit)
	}
	return nil
}

// WriteCharacteristic appends the characteristic sequence of the set members
// within a universe of size universe: bit v−1 is 1 iff v ∈ members (labels
// are 1-based, matching the paper's node labels {1,…,n}). Cost: universe bits.
func (w *Writer) WriteCharacteristic(members []int, universe int) error {
	in := make([]bool, universe)
	for _, m := range members {
		if m < 1 || m > universe {
			return fmt.Errorf("%w: member %d outside universe [1,%d]", ErrValueRange, m, universe)
		}
		in[m-1] = true
	}
	for _, b := range in {
		w.WriteBit(b)
	}
	return nil
}

// Reader consumes bits most-significant-first from a packed buffer.
type Reader struct {
	buf  []byte
	nbit int // total readable bits
	pos  int
}

// NewReader returns a Reader over the first nbit bits of buf.
func NewReader(buf []byte, nbit int) (*Reader, error) {
	if nbit < 0 || nbit > len(buf)*8 {
		return nil, fmt.Errorf("%w: %d bits in %d bytes", ErrOutOfBits, nbit, len(buf))
	}
	return &Reader{buf: buf, nbit: nbit}, nil
}

// ReaderFor returns a Reader over everything a Writer has produced.
func ReaderFor(w *Writer) *Reader {
	return &Reader{buf: w.Bytes(), nbit: w.Len()}
}

// Pos returns the number of bits consumed so far.
func (r *Reader) Pos() int { return r.pos }

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.nbit - r.pos }

// ReadBit consumes one bit.
func (r *Reader) ReadBit() (bool, error) {
	if r.pos >= r.nbit {
		return false, ErrOutOfBits
	}
	b := r.buf[r.pos/8]&(1<<(7-uint(r.pos%8))) != 0
	r.pos++
	return b, nil
}

// ReadBits consumes width bits and returns them as an unsigned value.
func (r *Reader) ReadBits(width int) (uint64, error) {
	if width < 0 || width > 64 {
		return 0, fmt.Errorf("%w: %d", ErrWidthRange, width)
	}
	var v uint64
	for i := 0; i < width; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v <<= 1
		if b {
			v |= 1
		}
	}
	return v, nil
}

// ReadUnary consumes a unary code (v ones then a zero) and returns v.
func (r *Reader) ReadUnary() (int, error) {
	v := 0
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if !b {
			return v, nil
		}
		v++
	}
}

// ReadSelfDelimiting consumes a z̄ code and returns the encoded value.
func (r *Reader) ReadSelfDelimiting() (uint64, error) {
	n, err := r.ReadUnary()
	if err != nil {
		return 0, err
	}
	if n > 63 {
		return 0, fmt.Errorf("%w: self-delimiting length %d", ErrWidthRange, n)
	}
	return r.readMinimalBinary(n)
}

// ReadShortSelfDelimiting consumes a z′ code and returns the encoded value.
func (r *Reader) ReadShortSelfDelimiting() (uint64, error) {
	zlen, err := r.ReadSelfDelimiting()
	if err != nil {
		return 0, err
	}
	if zlen > 63 {
		return 0, fmt.Errorf("%w: short self-delimiting length %d", ErrWidthRange, zlen)
	}
	return r.readMinimalBinary(int(zlen))
}

// ReadCharacteristic consumes universe bits and returns the 1-based labels of
// the set members.
func (r *Reader) ReadCharacteristic(universe int) ([]int, error) {
	var members []int
	for v := 1; v <= universe; v++ {
		b, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		if b {
			members = append(members, v)
		}
	}
	return members, nil
}

// readMinimalBinary reads n bits interpreted as the minimal-binary code
// produced by minimalBinary.
func (r *Reader) readMinimalBinary(n int) (uint64, error) {
	bs, err := r.ReadBits(n)
	if err != nil {
		return 0, err
	}
	// minimalBinary maps 0→ε, 1→"0", 2→"1", 3→"00", … : value = bits read
	// interpreted in base 2, plus (2^n − 1) to undo the bijection offset.
	return bs + (1<<uint(n) - 1), nil
}

// minimalBinary returns the bijective binary code of v under the paper's
// correspondence (0,ε), (1,"0"), (2,"1"), (3,"00"), (4,"01"), … . The code of
// v has ⌊log₂(v+1)⌋ bits.
func minimalBinary(v uint64) []bool {
	n := bits.Len64(v+1) - 1
	rem := v - (1<<uint(n) - 1)
	out := make([]bool, n)
	for i := n - 1; i >= 0; i-- {
		out[i] = rem&1 == 1
		rem >>= 1
	}
	return out
}

// MinimalBinaryLen returns |z| for the paper's bijective binary code of v.
func MinimalBinaryLen(v uint64) int { return bits.Len64(v+1) - 1 }

// SelfDelimitingLen returns the exact cost in bits of WriteSelfDelimiting(v):
// 2|z| + 1.
func SelfDelimitingLen(v uint64) int { return 2*MinimalBinaryLen(v) + 1 }

// ShortSelfDelimitingLen returns the exact cost in bits of
// WriteShortSelfDelimiting(v): |z| + 2⌈log(|z|+1)⌉-ish per Definition 4; the
// exact value follows the nested z̄ code of |z|.
func ShortSelfDelimitingLen(v uint64) int {
	zlen := MinimalBinaryLen(v)
	return SelfDelimitingLen(uint64(zlen)) + zlen
}

// UnaryLen returns the exact cost in bits of WriteUnary(v): v + 1.
func UnaryLen(v int) int { return v + 1 }

// CeilLog2 returns ⌈log₂ v⌉ for v ≥ 1; by the paper's convention (footnote 6)
// "log n" in table widths means ⌈log(n+1)⌉, provided by CeilLogPlus1.
func CeilLog2(v int) int {
	if v <= 1 {
		return 0
	}
	return bits.Len64(uint64(v - 1))
}

// CeilLogPlus1 returns ⌈log₂(v+1)⌉, the paper's ⌈log(n+1)⌉ field width for
// values in {0,…,v} (footnote 6).
func CeilLogPlus1(v int) int {
	if v < 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}
