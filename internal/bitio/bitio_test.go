package bitio

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriterZeroValue(t *testing.T) {
	var w Writer
	if w.Len() != 0 {
		t.Fatalf("zero-value Writer Len = %d, want 0", w.Len())
	}
	w.WriteBit(true)
	if w.Len() != 1 {
		t.Fatalf("Len after one bit = %d, want 1", w.Len())
	}
}

func TestWriteReadBitRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := NewWriter(1000)
	want := make([]bool, 1000)
	for i := range want {
		want[i] = rng.Intn(2) == 1
		w.WriteBit(want[i])
	}
	r := ReaderFor(w)
	for i, wb := range want {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("ReadBit %d: %v", i, err)
		}
		if got != wb {
			t.Fatalf("bit %d = %v, want %v", i, got, wb)
		}
	}
	if _, err := r.ReadBit(); !errors.Is(err, ErrOutOfBits) {
		t.Fatalf("read past end: err = %v, want ErrOutOfBits", err)
	}
}

func TestBitString(t *testing.T) {
	w := NewWriter(8)
	for _, b := range []bool{true, false, true, true, false} {
		w.WriteBit(b)
	}
	if got, want := w.BitString(), "10110"; got != want {
		t.Fatalf("BitString = %q, want %q", got, want)
	}
}

func TestWriteBitsWidths(t *testing.T) {
	tests := []struct {
		name  string
		v     uint64
		width int
		want  string
	}{
		{"zero width", 0, 0, ""},
		{"one bit", 1, 1, "1"},
		{"padded", 5, 6, "000101"},
		{"exact", 5, 3, "101"},
		{"full width", 1<<63 | 1, 64, "1" + repeat("0", 62) + "1"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			w := NewWriter(64)
			if err := w.WriteBits(tt.v, tt.width); err != nil {
				t.Fatalf("WriteBits: %v", err)
			}
			if got := w.BitString(); got != tt.want {
				t.Fatalf("bits = %q, want %q", got, tt.want)
			}
		})
	}
}

func repeat(s string, n int) string {
	out := ""
	for i := 0; i < n; i++ {
		out += s
	}
	return out
}

func TestWriteBitsErrors(t *testing.T) {
	w := NewWriter(0)
	if err := w.WriteBits(0, -1); !errors.Is(err, ErrWidthRange) {
		t.Errorf("width -1: err = %v, want ErrWidthRange", err)
	}
	if err := w.WriteBits(0, 65); !errors.Is(err, ErrWidthRange) {
		t.Errorf("width 65: err = %v, want ErrWidthRange", err)
	}
	if err := w.WriteBits(8, 3); !errors.Is(err, ErrValueRange) {
		t.Errorf("value 8 width 3: err = %v, want ErrValueRange", err)
	}
}

func TestReadBitsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	type item struct {
		v     uint64
		width int
	}
	w := NewWriter(0)
	var items []item
	for i := 0; i < 500; i++ {
		width := rng.Intn(65)
		var v uint64
		if width > 0 {
			v = rng.Uint64()
			if width < 64 {
				v &= 1<<uint(width) - 1
			}
		}
		if err := w.WriteBits(v, width); err != nil {
			t.Fatalf("WriteBits(%d,%d): %v", v, width, err)
		}
		items = append(items, item{v, width})
	}
	r := ReaderFor(w)
	for i, it := range items {
		got, err := r.ReadBits(it.width)
		if err != nil {
			t.Fatalf("ReadBits %d: %v", i, err)
		}
		if got != it.v {
			t.Fatalf("item %d = %d, want %d (width %d)", i, got, it.v, it.width)
		}
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", r.Remaining())
	}
}

func TestUnaryRoundTrip(t *testing.T) {
	w := NewWriter(0)
	values := []int{0, 1, 2, 3, 10, 100}
	for _, v := range values {
		if err := w.WriteUnary(v); err != nil {
			t.Fatalf("WriteUnary(%d): %v", v, err)
		}
	}
	wantBits := 0
	for _, v := range values {
		wantBits += UnaryLen(v)
	}
	if w.Len() != wantBits {
		t.Fatalf("unary stream = %d bits, want %d", w.Len(), wantBits)
	}
	r := ReaderFor(w)
	for _, v := range values {
		got, err := r.ReadUnary()
		if err != nil {
			t.Fatalf("ReadUnary: %v", err)
		}
		if got != v {
			t.Fatalf("unary = %d, want %d", got, v)
		}
	}
}

func TestUnaryNegative(t *testing.T) {
	w := NewWriter(0)
	if err := w.WriteUnary(-1); !errors.Is(err, ErrValueRange) {
		t.Fatalf("WriteUnary(-1): err = %v, want ErrValueRange", err)
	}
}

func TestSelfDelimitingKnownCodes(t *testing.T) {
	// Paper correspondence: (0,ε),(1,"0"),(2,"1"),(3,"00"),(4,"01").
	tests := []struct {
		v    uint64
		want string
	}{
		{0, "0"},
		{1, "100"},
		{2, "101"},
		{3, "11000"},
		{4, "11001"},
		{6, "11011"},
	}
	for _, tt := range tests {
		w := NewWriter(0)
		if err := w.WriteSelfDelimiting(tt.v); err != nil {
			t.Fatalf("WriteSelfDelimiting(%d): %v", tt.v, err)
		}
		if got := w.BitString(); got != tt.want {
			t.Errorf("z̄(%d) = %q, want %q", tt.v, got, tt.want)
		}
		if got := w.Len(); got != SelfDelimitingLen(tt.v) {
			t.Errorf("len z̄(%d) = %d, want %d", tt.v, got, SelfDelimitingLen(tt.v))
		}
	}
}

func TestSelfDelimitingRoundTripQuick(t *testing.T) {
	f := func(v uint64) bool {
		if v == 1<<64-1 {
			return true
		}
		w := NewWriter(0)
		if err := w.WriteSelfDelimiting(v); err != nil {
			return false
		}
		r := ReaderFor(w)
		got, err := r.ReadSelfDelimiting()
		return err == nil && got == v && r.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestShortSelfDelimitingRoundTripQuick(t *testing.T) {
	f := func(v uint64) bool {
		w := NewWriter(0)
		if err := w.WriteShortSelfDelimiting(v); err != nil {
			return false
		}
		if w.Len() != ShortSelfDelimitingLen(v) {
			return false
		}
		r := ReaderFor(w)
		got, err := r.ReadShortSelfDelimiting()
		return err == nil && got == v && r.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSelfDelimitingConcatenationParses(t *testing.T) {
	// Definition 4: the form x′…y′z lets concatenated descriptions be
	// unpacked unambiguously. Emulate with several z̄ codes back to back.
	values := []uint64{0, 5, 1, 1023, 42, 7}
	w := NewWriter(0)
	for _, v := range values {
		if err := w.WriteSelfDelimiting(v); err != nil {
			t.Fatalf("write %d: %v", v, err)
		}
	}
	r := ReaderFor(w)
	for i, v := range values {
		got, err := r.ReadSelfDelimiting()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got != v {
			t.Fatalf("value %d = %d, want %d", i, got, v)
		}
	}
}

func TestCharacteristicRoundTrip(t *testing.T) {
	w := NewWriter(0)
	members := []int{1, 3, 4, 10}
	if err := w.WriteCharacteristic(members, 10); err != nil {
		t.Fatalf("WriteCharacteristic: %v", err)
	}
	if w.Len() != 10 {
		t.Fatalf("characteristic length = %d, want 10", w.Len())
	}
	r := ReaderFor(w)
	got, err := r.ReadCharacteristic(10)
	if err != nil {
		t.Fatalf("ReadCharacteristic: %v", err)
	}
	if len(got) != len(members) {
		t.Fatalf("members = %v, want %v", got, members)
	}
	for i := range got {
		if got[i] != members[i] {
			t.Fatalf("members = %v, want %v", got, members)
		}
	}
}

func TestCharacteristicOutOfUniverse(t *testing.T) {
	w := NewWriter(0)
	if err := w.WriteCharacteristic([]int{0}, 5); !errors.Is(err, ErrValueRange) {
		t.Errorf("member 0: err = %v, want ErrValueRange", err)
	}
	if err := w.WriteCharacteristic([]int{6}, 5); !errors.Is(err, ErrValueRange) {
		t.Errorf("member 6: err = %v, want ErrValueRange", err)
	}
}

func TestMinimalBinaryLen(t *testing.T) {
	tests := []struct {
		v    uint64
		want int
	}{{0, 0}, {1, 1}, {2, 1}, {3, 2}, {6, 2}, {7, 3}, {14, 3}, {15, 4}}
	for _, tt := range tests {
		if got := MinimalBinaryLen(tt.v); got != tt.want {
			t.Errorf("MinimalBinaryLen(%d) = %d, want %d", tt.v, got, tt.want)
		}
	}
}

func TestCeilLog(t *testing.T) {
	tests := []struct {
		v     int
		ceil  int
		plus1 int
	}{{0, 0, 0}, {1, 0, 1}, {2, 1, 2}, {3, 2, 2}, {4, 2, 3}, {5, 3, 3}, {8, 3, 4}, {9, 4, 4}, {1024, 10, 11}}
	for _, tt := range tests {
		if got := CeilLog2(tt.v); got != tt.ceil {
			t.Errorf("CeilLog2(%d) = %d, want %d", tt.v, got, tt.ceil)
		}
		if got := CeilLogPlus1(tt.v); got != tt.plus1 {
			t.Errorf("CeilLogPlus1(%d) = %d, want %d", tt.v, got, tt.plus1)
		}
	}
}

func TestNewReaderValidation(t *testing.T) {
	if _, err := NewReader([]byte{0}, 9); !errors.Is(err, ErrOutOfBits) {
		t.Errorf("9 bits in 1 byte: err = %v, want ErrOutOfBits", err)
	}
	if _, err := NewReader(nil, 0); err != nil {
		t.Errorf("empty reader: err = %v, want nil", err)
	}
}

func TestMixedStreamRoundTrip(t *testing.T) {
	// A stream mixing every code, as the Theorem 1 tables do.
	w := NewWriter(0)
	if err := w.WriteUnary(3); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBits(29, 5); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSelfDelimiting(77); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteCharacteristic([]int{2, 3}, 4); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteShortSelfDelimiting(123456); err != nil {
		t.Fatal(err)
	}
	r := ReaderFor(w)
	if v, err := r.ReadUnary(); err != nil || v != 3 {
		t.Fatalf("unary = %d, %v", v, err)
	}
	if v, err := r.ReadBits(5); err != nil || v != 29 {
		t.Fatalf("bits = %d, %v", v, err)
	}
	if v, err := r.ReadSelfDelimiting(); err != nil || v != 77 {
		t.Fatalf("z̄ = %d, %v", v, err)
	}
	if m, err := r.ReadCharacteristic(4); err != nil || len(m) != 2 || m[0] != 2 || m[1] != 3 {
		t.Fatalf("characteristic = %v, %v", m, err)
	}
	if v, err := r.ReadShortSelfDelimiting(); err != nil || v != 123456 {
		t.Fatalf("z′ = %d, %v", v, err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", r.Remaining())
	}
}
