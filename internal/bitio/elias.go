package bitio

import "fmt"

// Elias universal codes for positive integers. The paper's own
// self-delimiting codes (z̄, z′) are implemented in bitio.go; the Elias
// codes are the textbook alternative with the same asymptotics
// (γ: 2⌊log v⌋+1 bits, δ: ⌊log v⌋ + O(loglog v) bits) and are used by the
// compressor cost models and available for scheme encodings that prefer
// standard codes.

// WriteEliasGamma appends the Elias γ code of v ≥ 1: ⌊log₂ v⌋ zeros, then
// v's ⌊log₂ v⌋+1-bit binary representation (which starts with a 1).
func (w *Writer) WriteEliasGamma(v uint64) error {
	if v == 0 {
		return fmt.Errorf("%w: Elias gamma of 0", ErrValueRange)
	}
	nbits := bitLen(v)
	for i := 0; i < nbits-1; i++ {
		w.WriteBit(false)
	}
	return w.WriteBits(v, nbits)
}

// ReadEliasGamma consumes an Elias γ code.
func (r *Reader) ReadEliasGamma() (uint64, error) {
	zeros := 0
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b {
			break
		}
		zeros++
		if zeros > 63 {
			return 0, fmt.Errorf("%w: gamma prefix %d", ErrWidthRange, zeros)
		}
	}
	rest, err := r.ReadBits(zeros)
	if err != nil {
		return 0, err
	}
	return 1<<uint(zeros) | rest, nil
}

// WriteEliasDelta appends the Elias δ code of v ≥ 1: the γ code of
// ⌊log₂ v⌋+1 followed by v's binary digits below the leading 1.
func (w *Writer) WriteEliasDelta(v uint64) error {
	if v == 0 {
		return fmt.Errorf("%w: Elias delta of 0", ErrValueRange)
	}
	nbits := bitLen(v)
	if err := w.WriteEliasGamma(uint64(nbits)); err != nil {
		return err
	}
	if nbits == 1 {
		return nil
	}
	return w.WriteBits(v&(1<<uint(nbits-1)-1), nbits-1)
}

// ReadEliasDelta consumes an Elias δ code.
func (r *Reader) ReadEliasDelta() (uint64, error) {
	nbits64, err := r.ReadEliasGamma()
	if err != nil {
		return 0, err
	}
	if nbits64 == 0 || nbits64 > 64 {
		return 0, fmt.Errorf("%w: delta length %d", ErrWidthRange, nbits64)
	}
	nbits := int(nbits64)
	if nbits == 1 {
		return 1, nil
	}
	rest, err := r.ReadBits(nbits - 1)
	if err != nil {
		return 0, err
	}
	return 1<<uint(nbits-1) | rest, nil
}

// EliasGammaLen returns the exact cost of WriteEliasGamma(v): 2⌊log₂ v⌋+1.
func EliasGammaLen(v uint64) int {
	if v == 0 {
		return 0
	}
	return 2*bitLen(v) - 1
}

// EliasDeltaLen returns the exact cost of WriteEliasDelta(v).
func EliasDeltaLen(v uint64) int {
	if v == 0 {
		return 0
	}
	nbits := bitLen(v)
	return EliasGammaLen(uint64(nbits)) + nbits - 1
}

func bitLen(v uint64) int {
	n := 0
	for v > 0 {
		v >>= 1
		n++
	}
	return n
}
