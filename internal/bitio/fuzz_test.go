package bitio

import (
	"bytes"
	"testing"
)

// Fuzz targets double as robustness tests for the decoders: arbitrary byte
// streams must never panic, and whatever decodes must re-encode to the same
// bits.

func FuzzReadSelfDelimiting(f *testing.F) {
	f.Add([]byte{0b01000000}, 8)
	f.Add([]byte{0b10100000}, 8)
	f.Add([]byte{0xFF, 0xFF}, 16)
	f.Fuzz(func(t *testing.T, data []byte, nbits int) {
		if nbits < 0 || nbits > len(data)*8 {
			return
		}
		r, err := NewReader(data, nbits)
		if err != nil {
			t.Fatal(err)
		}
		v, err := r.ReadSelfDelimiting()
		if err != nil {
			return // malformed input is allowed to error, not panic
		}
		// Round-trip: re-encoding must reproduce the consumed prefix.
		w := NewWriter(0)
		if err := w.WriteSelfDelimiting(v); err != nil {
			t.Fatalf("re-encode %d: %v", v, err)
		}
		if w.Len() != r.Pos() {
			t.Fatalf("consumed %d bits, re-encoded %d", r.Pos(), w.Len())
		}
	})
}

func FuzzReadEliasDelta(f *testing.F) {
	f.Add([]byte{0b10000000})
	f.Add([]byte{0b01000000})
	f.Add([]byte{0x00, 0xFF, 0x13})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(data, len(data)*8)
		if err != nil {
			t.Fatal(err)
		}
		v, err := r.ReadEliasDelta()
		if err != nil {
			return
		}
		w := NewWriter(0)
		if err := w.WriteEliasDelta(v); err != nil {
			t.Fatalf("re-encode %d: %v", v, err)
		}
		if w.Len() != r.Pos() {
			t.Fatalf("consumed %d bits, re-encoded %d", r.Pos(), w.Len())
		}
	})
}

func FuzzWriterReaderMirror(f *testing.F) {
	f.Add([]byte("hello"), 13)
	f.Fuzz(func(t *testing.T, data []byte, nbits int) {
		if nbits < 0 || nbits > len(data)*8 {
			return
		}
		r, err := NewReader(data, nbits)
		if err != nil {
			t.Fatal(err)
		}
		w := NewWriter(nbits)
		for r.Remaining() > 0 {
			b, err := r.ReadBit()
			if err != nil {
				t.Fatal(err)
			}
			w.WriteBit(b)
		}
		if w.Len() != nbits {
			t.Fatalf("copied %d bits, want %d", w.Len(), nbits)
		}
		// The packed copy must equal the original prefix.
		full := nbits / 8
		if !bytes.Equal(w.Bytes()[:full], data[:full]) {
			t.Fatal("byte mismatch after bit copy")
		}
	})
}
