package bitio

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestEliasGammaKnownCodes(t *testing.T) {
	tests := []struct {
		v    uint64
		want string
	}{
		{1, "1"},
		{2, "010"},
		{3, "011"},
		{4, "00100"},
		{7, "00111"},
		{8, "0001000"},
	}
	for _, tt := range tests {
		w := NewWriter(0)
		if err := w.WriteEliasGamma(tt.v); err != nil {
			t.Fatalf("gamma(%d): %v", tt.v, err)
		}
		if got := w.BitString(); got != tt.want {
			t.Errorf("gamma(%d) = %q, want %q", tt.v, got, tt.want)
		}
		if w.Len() != EliasGammaLen(tt.v) {
			t.Errorf("gamma(%d) length = %d, want %d", tt.v, w.Len(), EliasGammaLen(tt.v))
		}
	}
}

func TestEliasDeltaKnownCodes(t *testing.T) {
	tests := []struct {
		v    uint64
		want string
	}{
		{1, "1"},
		{2, "0100"},
		{3, "0101"},
		{4, "01100"},
		{8, "00100000"},
	}
	for _, tt := range tests {
		w := NewWriter(0)
		if err := w.WriteEliasDelta(tt.v); err != nil {
			t.Fatalf("delta(%d): %v", tt.v, err)
		}
		if got := w.BitString(); got != tt.want {
			t.Errorf("delta(%d) = %q, want %q", tt.v, got, tt.want)
		}
		if w.Len() != EliasDeltaLen(tt.v) {
			t.Errorf("delta(%d) length = %d, want %d", tt.v, w.Len(), EliasDeltaLen(tt.v))
		}
	}
}

func TestEliasRoundTripQuick(t *testing.T) {
	f := func(v uint64) bool {
		if v == 0 {
			v = 1
		}
		w := NewWriter(0)
		if err := w.WriteEliasGamma(v); err != nil {
			return false
		}
		if err := w.WriteEliasDelta(v); err != nil {
			return false
		}
		r := ReaderFor(w)
		g, err := r.ReadEliasGamma()
		if err != nil || g != v {
			return false
		}
		d, err := r.ReadEliasDelta()
		return err == nil && d == v && r.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEliasZeroRejected(t *testing.T) {
	w := NewWriter(0)
	if err := w.WriteEliasGamma(0); !errors.Is(err, ErrValueRange) {
		t.Errorf("gamma(0): err = %v", err)
	}
	if err := w.WriteEliasDelta(0); !errors.Is(err, ErrValueRange) {
		t.Errorf("delta(0): err = %v", err)
	}
	if EliasGammaLen(0) != 0 || EliasDeltaLen(0) != 0 {
		t.Error("lengths of 0 should be 0")
	}
}

func TestEliasDeltaShorterForLargeValues(t *testing.T) {
	// δ beats γ asymptotically: already at 2^20 it is strictly shorter.
	v := uint64(1) << 20
	if EliasDeltaLen(v) >= EliasGammaLen(v) {
		t.Fatalf("delta %d ≥ gamma %d at v=2^20", EliasDeltaLen(v), EliasGammaLen(v))
	}
}

func TestEliasGammaMalformedStream(t *testing.T) {
	// 64+ zeros is not a valid gamma prefix.
	w := NewWriter(0)
	for i := 0; i < 70; i++ {
		w.WriteBit(false)
	}
	w.WriteBit(true)
	r := ReaderFor(w)
	if _, err := r.ReadEliasGamma(); !errors.Is(err, ErrWidthRange) {
		t.Fatalf("err = %v, want ErrWidthRange", err)
	}
}
