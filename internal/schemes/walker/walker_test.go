package walker

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/models"
	"routetab/internal/routing"
	"routetab/internal/shortestpath"
)

func fixture(t *testing.T, n int, seed int64) (*graph.Graph, *Scheme, *routing.Sim, *shortestpath.Distances) {
	t.Helper()
	g, err := gengraph.GnHalf(n, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	ports := graph.SortedPorts(g)
	sim, err := routing.NewSim(g, ports, s)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := shortestpath.AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	return g, s, sim, dm
}

func TestDeliversWithinProbeBudget(t *testing.T) {
	_, s, sim, dm := fixture(t, 64, 1)
	rep, err := routing.VerifyAll(sim, dm, s.MaxHops())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllDelivered() {
		t.Fatalf("undelivered: %s %v", rep, rep.Failures)
	}
	// Theorem 5: at most 2(c+3)·log n edge traversals.
	if rep.MaxHops > s.MaxHops() {
		t.Fatalf("maxHops = %d > budget %d", rep.MaxHops, s.MaxHops())
	}
	// Stretch bound (c+3)·log n (+1 slack for the final hop at distance 2).
	bound := 6*math.Log2(64) + 1
	if rep.MaxStretch > bound {
		t.Fatalf("stretch = %v > (c+3)log n = %v", rep.MaxStretch, bound)
	}
}

func TestWalkIsGenuine(t *testing.T) {
	// Traces must be actual walks that bounce back through the origin.
	g, s, sim, dm := fixture(t, 64, 2)
	sawBounce := false
	for dst := 2; dst <= 64; dst++ {
		if dm.Dist(1, dst) != 2 {
			continue
		}
		tr, err := sim.RouteByNode(1, dst, s.MaxHops())
		if err != nil {
			t.Fatal(err)
		}
		if err := routing.VerifyTraceIsWalk(g, tr); err != nil {
			t.Fatal(err)
		}
		if tr.Hops > 2 {
			sawBounce = true
			// A bouncing walk revisits the origin: 1 appears again.
			count := 0
			for _, v := range tr.Path {
				if v == 1 {
					count++
				}
			}
			if count < 2 {
				t.Fatalf("long walk %v does not revisit origin", tr.Path)
			}
		}
	}
	if !sawBounce {
		t.Log("no probe ever failed (dense graph) — bounce path untested here")
	}
}

func TestConstantSpace(t *testing.T) {
	for _, n := range []int{64, 128, 256} {
		g, err := gengraph.GnHalf(n, rand.New(rand.NewSource(int64(n))))
		if err != nil {
			t.Fatal(err)
		}
		s, err := Build(g, 3)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := routing.MeasureSpace(s, models.IIAlpha)
		if err != nil {
			t.Fatal(err)
		}
		if sp.Total != n*FunctionBits {
			t.Errorf("n=%d: total = %d, want %d (O(n) bits)", n, sp.Total, n*FunctionBits)
		}
		if sp.MaxFunctionBits != FunctionBits {
			t.Errorf("n=%d: per-node = %d, want O(1)", n, sp.MaxFunctionBits)
		}
	}
}

func TestProbeBudgetFormula(t *testing.T) {
	g, err := gengraph.GnHalf(128, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := int(math.Ceil(6 * math.Log2(128)))
	if s.ProbeBudget() != want {
		t.Fatalf("ProbeBudget = %d, want %d", s.ProbeBudget(), want)
	}
	if s.MaxHops() != 2*want+2 {
		t.Fatalf("MaxHops = %d, want %d", s.MaxHops(), 2*want+2)
	}
}

func TestModelII(t *testing.T) {
	_, s, _, _ := fixture(t, 32, 4)
	for _, m := range models.All() {
		_, err := routing.MeasureSpace(s, m)
		if m.NeighborsFree() {
			if err != nil {
				t.Errorf("model %s rejected: %v", m, err)
			}
		} else if err == nil {
			t.Errorf("model %s accepted", m)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	g, err := gengraph.GnHalf(32, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(g, 0); err == nil {
		t.Error("c=0 accepted")
	}
	if _, err := Build(g, -1); err == nil {
		t.Error("c=-1 accepted")
	}
	chain, err := gengraph.Chain(16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(chain, 3); err == nil {
		t.Error("chain accepted")
	}
}

func TestCorruptHeaderRejected(t *testing.T) {
	_, s, sim, _ := fixture(t, 32, 6)
	_ = sim
	if _, _, err := s.Route(1, badEnv{}, routing.Label{ID: 2}, 3, 0); !errors.Is(err, routing.ErrNoRoute) {
		t.Fatalf("corrupt header: err = %v, want ErrNoRoute", err)
	}
	if _, _, err := s.Route(0, badEnv{}, routing.Label{ID: 2}, 0, 0); !errors.Is(err, routing.ErrNoRoute) {
		t.Fatalf("bad node: err = %v", err)
	}
	// Probe phase with no arrival port is corrupt.
	if _, _, err := s.Route(1, badEnv{}, routing.Label{ID: 2}, 1, 0); !errors.Is(err, routing.ErrNoRoute) {
		t.Fatalf("probe without arrival: err = %v", err)
	}
}

// badEnv denies everything — simulates a non-II environment.
type badEnv struct{}

func (badEnv) Node() int                                     { return 1 }
func (badEnv) Degree() int                                   { return 0 }
func (badEnv) NeighborLabelByPort(int) (routing.Label, bool) { return routing.Label{}, false }
func (badEnv) PortOfNeighbor(int) (int, bool)                { return 0, false }
func (badEnv) KnownNeighborIDs() ([]int, bool)               { return nil, false }

func TestDeniedEnvironmentFails(t *testing.T) {
	_, s, _, _ := fixture(t, 32, 7)
	if _, _, err := s.Route(1, badEnv{}, routing.Label{ID: 9}, 0, 0); !errors.Is(err, routing.ErrNoRoute) {
		t.Fatalf("denied env: err = %v, want ErrNoRoute", err)
	}
}

func TestMetadata(t *testing.T) {
	_, s, _, _ := fixture(t, 32, 8)
	if s.Name() == "" || s.N() != 32 {
		t.Error("metadata wrong")
	}
	if s.Label(5).ID != 5 || s.LabelBits(5) != 0 {
		t.Error("labels wrong")
	}
	if s.FunctionBits(0) != 0 || s.FunctionBits(5) != FunctionBits {
		t.Error("function bits wrong")
	}
}
