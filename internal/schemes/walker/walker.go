// Package walker implements the Theorem 5 routing scheme: stretch
// (c+3)·log n on Kolmogorov random graphs with O(1) bits per node — O(n)
// bits total — in model II.
//
// Construction (paper, proof of Theorem 5). The local routing function is a
// constant program: route directly to the target if it is a neighbour;
// otherwise traverse the first (c+3)·log n incident edges of the starting
// node one by one, asking each visited neighbour whether the target is
// adjacent to it. If so the message is forwarded and delivered; if not it is
// returned to the starting node, which tries the next neighbour. Lemma 3
// guarantees a probe succeeds within the prefix; each distance-2 delivery
// traverses at most 2(c+3)·log n edges.
//
// The probe index travels in the message header (2 flag bits + counter) and
// the bounce uses the arrival port — both physically local information that
// costs no table storage.
package walker

import (
	"errors"
	"fmt"
	"math"

	"routetab/internal/graph"
	"routetab/internal/kolmo"
	"routetab/internal/models"
	"routetab/internal/routing"
)

// ErrCoverTooLarge indicates some node's Lemma 3 cover prefix exceeds the
// (c+3)·log n probe budget.
var ErrCoverTooLarge = errors.New("walker: cover prefix exceeds (c+3)·log n probe budget")

// FunctionBits is the constant charged per node for the O(1)-bit program.
const FunctionBits = 2

// Header phases (low 2 bits of the message header).
const (
	phaseStart  = 0 // at the origin, nothing tried yet
	phaseProbe  = 1 // travelling to / arriving at a probe neighbour
	phaseBounce = 2 // returning from a failed probe
)

// Scheme is a built Theorem 5 scheme.
type Scheme struct {
	n int
	c float64
	k int // probe budget ⌈(c+3)·log₂ n⌉
}

var _ routing.Scheme = (*Scheme)(nil)

// Build verifies the Lemma 3 probe property and returns the scheme. All the
// routing logic is the constant program; only the probe budget depends on
// (n, c).
func Build(g *graph.Graph, c float64) (*Scheme, error) {
	n := g.N()
	if c <= 0 {
		return nil, fmt.Errorf("walker: c must be positive, got %v", c)
	}
	k := int(math.Ceil((c + 3) * math.Log2(float64(n))))
	if k < 1 {
		k = 1
	}
	for u := 1; u <= n; u++ {
		prefix, err := kolmo.CoverPrefix(g, u)
		if err != nil {
			return nil, fmt.Errorf("walker: node %d: %w", u, err)
		}
		if prefix > k {
			return nil, fmt.Errorf("%w: node %d needs %d > %d", ErrCoverTooLarge, u, prefix, k)
		}
	}
	return &Scheme{n: n, c: c, k: k}, nil
}

// Name implements routing.Scheme.
func (s *Scheme) Name() string { return "theorem5-walker" }

// N implements routing.Scheme.
func (s *Scheme) N() int { return s.n }

// ProbeBudget returns (c+3)·log n, the maximum number of probes.
func (s *Scheme) ProbeBudget() int { return s.k }

// Requirements implements routing.Scheme: model II.
func (s *Scheme) Requirements() models.Requirements {
	return models.Requirements{NeighborsKnown: true}
}

// Label implements routing.Scheme: original labels.
func (s *Scheme) Label(u int) routing.Label { return routing.Label{ID: u} }

// LabelBits implements routing.Scheme.
func (s *Scheme) LabelBits(int) int { return 0 }

// FunctionBits implements routing.Scheme: O(1).
func (s *Scheme) FunctionBits(u int) int {
	if u < 1 || u > s.n {
		return 0
	}
	return FunctionBits
}

// Route implements routing.Scheme — the constant probe-and-return program.
func (s *Scheme) Route(u int, env routing.Env, dest routing.Label, hdr uint64, arrival int) (int, uint64, error) {
	if u < 1 || u > s.n || dest.ID < 1 || dest.ID > s.n {
		return 0, 0, fmt.Errorf("%w: %d→%d", routing.ErrNoRoute, u, dest.ID)
	}
	// Anyone holding the message forwards directly when the target is a
	// neighbour (free knowledge under II). This both delivers probes and
	// short-circuits the origin's distance-1 case.
	if port, ok := env.PortOfNeighbor(dest.ID); ok {
		return port, 0, nil
	}
	phase := hdr & 3
	t := int(hdr >> 2)
	switch phase {
	case phaseProbe:
		// Failed probe: bounce back over the arrival port, keeping t.
		if arrival < 1 {
			return 0, 0, fmt.Errorf("%w: probe at %d with no arrival port", routing.ErrNoRoute, u)
		}
		return arrival, uint64(phaseBounce) | uint64(t)<<2, nil
	case phaseBounce:
		t++
		fallthrough
	case phaseStart:
		nbs, ok := env.KnownNeighborIDs()
		if !ok {
			return 0, 0, fmt.Errorf("%w: neighbour knowledge denied at %d", routing.ErrNoRoute, u)
		}
		if t >= s.k || t >= len(nbs) {
			return 0, 0, fmt.Errorf("%w: %d→%d probes exhausted after %d", routing.ErrNoRoute, u, dest.ID, t)
		}
		port, ok := env.PortOfNeighbor(nbs[t])
		if !ok {
			return 0, 0, fmt.Errorf("%w: probe neighbour %d not resolvable at %d", routing.ErrNoRoute, nbs[t], u)
		}
		return port, uint64(phaseProbe) | uint64(t)<<2, nil
	default:
		return 0, 0, fmt.Errorf("%w: corrupt header %#x at %d", routing.ErrNoRoute, hdr, u)
	}
}

// MaxHops returns the paper's traversal bound 2(c+3)·log n for a distance-2
// delivery (plus the final hop into the target).
func (s *Scheme) MaxHops() int { return 2*s.k + 2 }
