package interval

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/models"
	"routetab/internal/routing"
	"routetab/internal/shortestpath"
)

func fixture(t *testing.T, g *graph.Graph, root int) (*Scheme, *routing.Sim, *shortestpath.Distances) {
	t.Helper()
	ports := graph.SortedPorts(g)
	s, err := Build(g, ports, root)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := routing.NewSim(g, ports, s)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := shortestpath.AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	return s, sim, dm
}

func TestOptimalOnTrees(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g, err := gengraph.RandomTree(40, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		_, sim, dm := fixture(t, g, 1)
		rep, err := routing.VerifyAll(sim, dm, 100)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.AllDelivered() {
			t.Fatalf("seed %d: undelivered: %s %v", seed, rep, rep.Failures)
		}
		if rep.MaxStretch != 1 {
			t.Fatalf("seed %d: stretch = %v on a tree, want 1", seed, rep.MaxStretch)
		}
	}
}

func TestOptimalOnChainAnyRoot(t *testing.T) {
	g, err := gengraph.Chain(15)
	if err != nil {
		t.Fatal(err)
	}
	for _, root := range []int{1, 7, 15} {
		_, sim, dm := fixture(t, g, root)
		rep, err := routing.VerifyAll(sim, dm, 100)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.AllDelivered() || rep.MaxStretch != 1 {
			t.Fatalf("root %d: %s %v", root, rep, rep.Failures)
		}
	}
}

func TestDeliversOnGeneralGraphsWithStretch(t *testing.T) {
	g, err := gengraph.GnHalf(50, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	_, sim, dm := fixture(t, g, 1)
	rep, err := routing.VerifyAll(sim, dm, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllDelivered() {
		t.Fatalf("undelivered: %s %v", rep, rep.Failures)
	}
	// Tree routing on a diameter-2 graph has real stretch; it must still be
	// bounded by the tree depth ≤ 2·BFS-depth.
	if rep.MaxStretch < 1 {
		t.Fatalf("stretch = %v < 1?", rep.MaxStretch)
	}
	if rep.MaxHops > 2*3 { // BFS tree of a diameter-2 graph has depth ≤ 2
		t.Logf("maxHops = %d (tree detours)", rep.MaxHops)
	}
}

func TestDFSNumbersAreAPermutation(t *testing.T) {
	g, err := gengraph.GnHalf(30, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	s, _, _ := fixture(t, g, 1)
	seen := make([]bool, 31)
	for u := 1; u <= 30; u++ {
		d, err := s.DFSNumber(u)
		if err != nil {
			t.Fatal(err)
		}
		if d < 1 || d > 30 || seen[d] {
			t.Fatalf("DFS numbers not a permutation: dfs[%d]=%d", u, d)
		}
		seen[d] = true
		if s.Label(u).ID != d {
			t.Fatalf("Label(%d).ID = %d, want dfs %d", u, s.Label(u).ID, d)
		}
	}
	if _, err := s.DFSNumber(0); err == nil {
		t.Error("DFSNumber(0) accepted")
	}
}

func TestSpaceIsNLogN(t *testing.T) {
	n := 128
	g, err := gengraph.GnHalf(n, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	s, _, _ := fixture(t, g, 1)
	sp, err := routing.MeasureSpace(s, models.IABeta)
	if err != nil {
		t.Fatal(err)
	}
	// 2(n−1) tree-edge entries, each ≈ 2·log n + a port field.
	bound := 6 * float64(n) * math.Log2(float64(n))
	if float64(sp.Total) > bound {
		t.Fatalf("total = %d > %v", sp.Total, bound)
	}
	if sp.Total < n { // sanity floor
		t.Fatalf("total = %d too small", sp.Total)
	}
}

func TestModelBetaRequired(t *testing.T) {
	g, err := gengraph.Complete(8)
	if err != nil {
		t.Fatal(err)
	}
	s, _, _ := fixture(t, g, 1)
	if _, err := routing.MeasureSpace(s, models.IAAlpha); err == nil {
		t.Error("α model accepted a relabelling scheme")
	}
	for _, m := range []models.Model{models.IABeta, models.IBBeta, models.IIBeta, models.IIGamma} {
		if _, err := routing.MeasureSpace(s, m); err != nil {
			t.Errorf("model %s rejected: %v", m, err)
		}
	}
}

func TestValidation(t *testing.T) {
	g := graph.MustNew(4)
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	ports := graph.SortedPorts(g)
	if _, err := Build(g, ports, 1); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("disconnected: err = %v", err)
	}
	if _, err := Build(g, ports, 0); err == nil {
		t.Error("root 0 accepted")
	}
	if _, err := Build(g, ports, 9); err == nil {
		t.Error("root 9 accepted")
	}
}

func TestRouteErrors(t *testing.T) {
	g, err := gengraph.Chain(5)
	if err != nil {
		t.Fatal(err)
	}
	s, _, _ := fixture(t, g, 1)
	if _, _, err := s.Route(0, nil, routing.Label{ID: 2}, 0, 0); !errors.Is(err, routing.ErrNoRoute) {
		t.Errorf("bad node: %v", err)
	}
	if _, _, err := s.Route(1, nil, routing.Label{ID: 99}, 0, 0); !errors.Is(err, routing.ErrNoRoute) {
		t.Errorf("bad dest: %v", err)
	}
	if s.FunctionBits(0) != 0 || s.LabelBits(2) != 0 {
		t.Error("accounting wrong")
	}
	if s.Label(0).ID != 0 {
		t.Error("out-of-range label should be zero")
	}
	if s.Name() == "" || s.N() != 5 {
		t.Error("metadata wrong")
	}
}

func TestSingleNodeTree(t *testing.T) {
	g := graph.MustNew(1)
	ports := graph.SortedPorts(g)
	s, err := Build(g, ports, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 1 || s.FunctionBits(1) != 0 {
		t.Fatalf("single node: n=%d bits=%d", s.N(), s.FunctionBits(1))
	}
}
