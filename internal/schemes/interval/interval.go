// Package interval implements interval routing on a spanning tree — the
// related-work baseline of the paper's references [1, 6] (Flammini, van
// Leeuwen, Marchetti-Spaccamela; Kranakis, Krizanc, Urrutia).
//
// Nodes are relabelled by DFS (discovery) number over a BFS spanning tree —
// a permutation of {1,…,n}, so the scheme lives in model β. Each tree edge
// at a node carries one interval of DFS numbers: the child's subtree range
// for downward edges, the complement for the parent edge. A node stores, per
// incident tree edge, the interval endpoints and the port — Θ(log n) bits per
// tree edge, O(n log n) bits in total.
//
// On trees the scheme routes along shortest paths; on general graphs it
// routes along the spanning tree, with measurable stretch — the contrast the
// stretch/space experiments (E3–E5) quantify against the paper's
// constructions.
package interval

import (
	"errors"
	"fmt"

	"routetab/internal/bitio"
	"routetab/internal/graph"
	"routetab/internal/models"
	"routetab/internal/routing"
	"routetab/internal/shortestpath"
)

// ErrDisconnected indicates no spanning tree exists.
var ErrDisconnected = errors.New("interval: graph is disconnected")

type edgeEntry struct {
	lo, hi int // DFS-number interval, inclusive; may wrap (parent edge)
	wrap   bool
	port   int
}

type nodeData struct {
	entries []edgeEntry
}

// Scheme is a built interval routing scheme.
type Scheme struct {
	n     int
	dfs   []int // dfs[u] = DFS number of node u (the β relabelling)
	nodes []nodeData
}

var _ routing.Scheme = (*Scheme)(nil)

// Build constructs interval routing over a BFS spanning tree rooted at root.
func Build(g *graph.Graph, ports *graph.Ports, root int) (*Scheme, error) {
	n := g.N()
	if root < 1 || root > n {
		return nil, fmt.Errorf("interval: root %d out of range", root)
	}
	if err := ports.Validate(g); err != nil {
		return nil, fmt.Errorf("interval: %w", err)
	}
	bfs, err := shortestpath.BFS(g, root)
	if err != nil {
		return nil, err
	}
	children := make([][]int, n+1)
	for v := 1; v <= n; v++ {
		if v == root {
			continue
		}
		if bfs.Dist[v] == shortestpath.Unreachable {
			return nil, fmt.Errorf("%w: node %d unreachable from root %d", ErrDisconnected, v, root)
		}
		p := bfs.Parent[v]
		children[p] = append(children[p], v)
	}

	// Iterative DFS assigning discovery numbers and subtree ranges.
	dfs := make([]int, n+1)
	subHi := make([]int, n+1) // highest DFS number in v's subtree
	next := 1
	type frame struct {
		node, idx int
	}
	stack := []frame{{root, 0}}
	dfs[root] = next
	next++
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.idx < len(children[f.node]) {
			c := children[f.node][f.idx]
			f.idx++
			dfs[c] = next
			next++
			stack = append(stack, frame{c, 0})
			continue
		}
		subHi[f.node] = next - 1
		stack = stack[:len(stack)-1]
	}

	s := &Scheme{n: n, dfs: dfs, nodes: make([]nodeData, n+1)}
	for u := 1; u <= n; u++ {
		var entries []edgeEntry
		for _, c := range children[u] {
			port, err := ports.PortTo(u, c)
			if err != nil {
				return nil, err
			}
			entries = append(entries, edgeEntry{lo: dfs[c], hi: subHi[c], port: port})
		}
		if u != root {
			port, err := ports.PortTo(u, bfs.Parent[u])
			if err != nil {
				return nil, err
			}
			// Complement of u's subtree: wraps around the DFS circle.
			entries = append(entries, edgeEntry{lo: subHi[u] + 1, hi: dfs[u] - 1, wrap: true, port: port})
		}
		s.nodes[u] = nodeData{entries: entries}
	}
	return s, nil
}

// Name implements routing.Scheme.
func (s *Scheme) Name() string { return "interval-tree" }

// N implements routing.Scheme.
func (s *Scheme) N() int { return s.n }

// Requirements implements routing.Scheme: the DFS numbering is a permutation
// relabelling (β).
func (s *Scheme) Requirements() models.Requirements {
	return models.Requirements{AnyRelabel: true}
}

// Label implements routing.Scheme: the DFS number.
func (s *Scheme) Label(u int) routing.Label {
	if u < 1 || u > s.n {
		return routing.Label{}
	}
	return routing.Label{ID: s.dfs[u]}
}

// LabelBits implements routing.Scheme: β labels stay within {1,…,n} and are
// uncharged.
func (s *Scheme) LabelBits(int) int { return 0 }

// FunctionBits implements routing.Scheme: per tree edge, two ⌈log(n+1)⌉
// interval endpoints plus a ⌈log(d+1)⌉ port.
func (s *Scheme) FunctionBits(u int) int {
	if u < 1 || u > s.n {
		return 0
	}
	logn := bitio.CeilLogPlus1(s.n)
	total := 0
	for range s.nodes[u].entries {
		total += 2*logn + bitio.CeilLogPlus1(len(s.nodes[u].entries))
	}
	return total
}

// Route implements routing.Scheme: find the interval containing the
// destination's DFS number.
func (s *Scheme) Route(u int, _ routing.Env, dest routing.Label, hdr uint64, _ int) (int, uint64, error) {
	if u < 1 || u > s.n || dest.ID < 1 || dest.ID > s.n {
		return 0, 0, fmt.Errorf("%w: %d→dfs %d", routing.ErrNoRoute, u, dest.ID)
	}
	for _, e := range s.nodes[u].entries {
		if e.contains(dest.ID, s.n) {
			return e.port, hdr, nil
		}
	}
	return 0, 0, fmt.Errorf("%w: dfs %d not in any interval at %d", routing.ErrNoRoute, dest.ID, u)
}

func (e edgeEntry) contains(x, n int) bool {
	if !e.wrap {
		return e.lo <= x && x <= e.hi
	}
	// Wrapping interval [lo, n] ∪ [1, hi].
	return x >= e.lo || x <= e.hi
}

// DFSNumber returns the β relabelling of node u.
func (s *Scheme) DFSNumber(u int) (int, error) {
	if u < 1 || u > s.n {
		return 0, fmt.Errorf("interval: node %d out of range", u)
	}
	return s.dfs[u], nil
}
