// Package fulltable implements the trivial universal routing scheme: every
// node stores, for every destination, the outgoing port on a shortest path.
//
// This is the paper's O(n² log n) baseline — the upper bound that Theorem 8
// shows is optimal in model IA ∧ α, where neither relabelling nor port
// re-assignment can simplify anything. It works in all nine models because it
// assumes nothing: destinations index directly into a packed port table.
package fulltable

import (
	"errors"
	"fmt"

	"routetab/internal/bitio"
	"routetab/internal/graph"
	"routetab/internal/models"
	"routetab/internal/par"
	"routetab/internal/routing"
	"routetab/internal/shortestpath"
)

// ErrDisconnected indicates the graph has unreachable pairs; the scheme
// requires a connected graph so that every table entry is meaningful.
var ErrDisconnected = errors.New("fulltable: graph is disconnected")

// Scheme is a full shortest-path port table.
type Scheme struct {
	n int
	// table[u][v] is the 1-based port at u on a shortest path to v; 0 on the
	// diagonal.
	table [][]uint16
	// width[u] is the fixed field width ⌈log(d(u)+1)⌉ used to charge node
	// u's table: n−1 entries of width bits each.
	width []int
	// encoded[u] is the exact packed encoding whose length FunctionBits
	// reports; kept so tests can round-trip it.
	encoded []*bitio.Writer
}

var _ routing.Scheme = (*Scheme)(nil)

// Build constructs the table from per-source BFS trees, using the given port
// assignment verbatim (it never re-assigns ports, hence IA-compatibility).
// The per-source trees are independent, so construction fans out over a
// bounded worker pool; every worker writes only its own source's slots.
func Build(g *graph.Graph, ports *graph.Ports) (*Scheme, error) {
	if err := ports.Validate(g); err != nil {
		return nil, fmt.Errorf("fulltable: %w", err)
	}
	n := g.N()
	s := &Scheme{
		n:       n,
		table:   make([][]uint16, n+1),
		width:   make([]int, n+1),
		encoded: make([]*bitio.Writer, n+1),
	}
	g.Neighbors(1) // one up-front rebuild instead of n racing (safe) rebuilds
	err := par.ForEach(n, func(i int) error {
		u := i + 1
		res, err := shortestpath.BFS(g, u)
		if err != nil {
			return err
		}
		row := make([]uint16, n+1)
		for v := 1; v <= n; v++ {
			if v == u {
				continue
			}
			if res.Dist[v] == shortestpath.Unreachable {
				return fmt.Errorf("%w: no path %d→%d", ErrDisconnected, u, v)
			}
			w := v
			for res.Parent[w] != u {
				w = res.Parent[w]
			}
			port, err := ports.PortTo(u, w)
			if err != nil {
				return err
			}
			row[v] = uint16(port)
		}
		s.table[u] = row
		s.width[u] = bitio.CeilLogPlus1(g.Degree(u))
		enc, err := encodeRow(row, u, s.width[u])
		if err != nil {
			return err
		}
		s.encoded[u] = enc
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// encodeRow packs the n−1 port entries (skipping the diagonal) at fixed
// width.
func encodeRow(row []uint16, u, width int) (*bitio.Writer, error) {
	w := bitio.NewWriter((len(row) - 1) * width)
	for v := 1; v < len(row); v++ {
		if v == u {
			continue
		}
		if err := w.WriteBits(uint64(row[v]-1), width); err != nil {
			return nil, fmt.Errorf("fulltable: encode port of %d→%d: %w", u, v, err)
		}
	}
	return w, nil
}

// DecodeRow unpacks an encoded row; exported for the round-trip tests and
// the Theorem 8 experiment, which measures how compressible these rows are
// under adversarial port assignments.
func DecodeRow(enc *bitio.Writer, u, n, width int) ([]uint16, error) {
	r := bitio.ReaderFor(enc)
	row := make([]uint16, n+1)
	for v := 1; v <= n; v++ {
		if v == u {
			continue
		}
		p, err := r.ReadBits(width)
		if err != nil {
			return nil, err
		}
		row[v] = uint16(p + 1)
	}
	return row, nil
}

// Name implements routing.Scheme.
func (s *Scheme) Name() string { return "fulltable" }

// N implements routing.Scheme.
func (s *Scheme) N() int { return s.n }

// Requirements implements routing.Scheme: none — the scheme is valid in every
// model, including IA ∧ α.
func (s *Scheme) Requirements() models.Requirements { return models.Requirements{} }

// Label implements routing.Scheme: original labels.
func (s *Scheme) Label(u int) routing.Label { return routing.Label{ID: u} }

// Route implements routing.Scheme by table lookup.
func (s *Scheme) Route(u int, _ routing.Env, dest routing.Label, hdr uint64, _ int) (int, uint64, error) {
	if u < 1 || u > s.n || dest.ID < 1 || dest.ID > s.n {
		return 0, 0, fmt.Errorf("%w: %d→%d", routing.ErrNoRoute, u, dest.ID)
	}
	port := s.table[u][dest.ID]
	if port == 0 {
		return 0, 0, fmt.Errorf("%w: %d→%d", routing.ErrNoRoute, u, dest.ID)
	}
	return int(port), hdr, nil
}

// FunctionBits implements routing.Scheme: the exact packed table size,
// (n−1)·⌈log(d(u)+1)⌉ bits.
func (s *Scheme) FunctionBits(u int) int {
	if u < 1 || u > s.n {
		return 0
	}
	return s.encoded[u].Len()
}

// LabelBits implements routing.Scheme: labels stay in {1,…,n}.
func (s *Scheme) LabelBits(int) int { return 0 }

// EncodedRow exposes node u's packed table for compressibility experiments.
func (s *Scheme) EncodedRow(u int) (*bitio.Writer, int, error) {
	if u < 1 || u > s.n {
		return nil, 0, fmt.Errorf("fulltable: node %d out of range", u)
	}
	return s.encoded[u], s.width[u], nil
}
