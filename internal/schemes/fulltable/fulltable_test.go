package fulltable

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/models"
	"routetab/internal/routing"
	"routetab/internal/shortestpath"
)

func buildOn(t *testing.T, g *graph.Graph) (*Scheme, *routing.Sim, *shortestpath.Distances) {
	t.Helper()
	ports := graph.SortedPorts(g)
	s, err := Build(g, ports)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := routing.NewSim(g, ports, s)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := shortestpath.AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	return s, sim, dm
}

func TestShortestPathOnRandomGraph(t *testing.T) {
	g, err := gengraph.GnHalf(40, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	_, sim, dm := buildOn(t, g)
	rep, err := routing.VerifyAll(sim, dm, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllDelivered() {
		t.Fatalf("undelivered: %s %v", rep, rep.Failures)
	}
	if rep.MaxStretch != 1 {
		t.Fatalf("stretch = %v, want exactly 1", rep.MaxStretch)
	}
}

func TestShortestPathOnSparseGraph(t *testing.T) {
	g, err := gengraph.Grid(5, 6)
	if err != nil {
		t.Fatal(err)
	}
	_, sim, dm := buildOn(t, g)
	rep, err := routing.VerifyAll(sim, dm, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllDelivered() || rep.MaxStretch != 1 {
		t.Fatalf("report = %s", rep)
	}
}

func TestWorksUnderAdversarialPorts(t *testing.T) {
	// IA: random port permutations must not affect correctness.
	g, err := gengraph.GnHalf(30, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	ports := graph.RandomPorts(g, rand.New(rand.NewSource(3)))
	s, err := Build(g, ports)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := routing.NewSim(g, ports, s)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := shortestpath.AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := routing.VerifyAll(sim, dm, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllDelivered() || rep.MaxStretch != 1 {
		t.Fatalf("report = %s", rep)
	}
}

func TestValidInAllNineModels(t *testing.T) {
	g, err := gengraph.GnHalf(20, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	s, _, _ := buildOn(t, g)
	for _, m := range models.All() {
		if _, err := routing.MeasureSpace(s, m); err != nil {
			t.Errorf("model %s: %v", m, err)
		}
	}
}

func TestSpaceIsNSquaredLogN(t *testing.T) {
	// Per node: (n−1)·⌈log(d+1)⌉ bits with d ≈ n/2 → total ≈ n²·log(n/2).
	n := 64
	g, err := gengraph.GnHalf(n, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	s, _, _ := buildOn(t, g)
	sp, err := routing.MeasureSpace(s, models.IAAlpha)
	if err != nil {
		t.Fatal(err)
	}
	lo := float64(n*(n-1)) * math.Log2(float64(n)/4)
	hi := float64(n*(n-1)) * math.Log2(float64(n))
	if float64(sp.Total) < lo || float64(sp.Total) > hi {
		t.Fatalf("total = %d, want within [%v, %v]", sp.Total, lo, hi)
	}
}

func TestFunctionBitsMatchesEncoding(t *testing.T) {
	g, err := gengraph.GnHalf(25, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	s, _, _ := buildOn(t, g)
	for u := 1; u <= 25; u++ {
		enc, width, err := s.EncodedRow(u)
		if err != nil {
			t.Fatal(err)
		}
		if s.FunctionBits(u) != enc.Len() {
			t.Fatalf("FunctionBits(%d) = %d, encoding = %d", u, s.FunctionBits(u), enc.Len())
		}
		row, err := DecodeRow(enc, u, 25, width)
		if err != nil {
			t.Fatal(err)
		}
		for v := 1; v <= 25; v++ {
			if row[v] != s.table[u][v] {
				t.Fatalf("decoded table[%d][%d] = %d, want %d", u, v, row[v], s.table[u][v])
			}
		}
	}
	if s.FunctionBits(0) != 0 || s.FunctionBits(99) != 0 {
		t.Error("out-of-range FunctionBits should be 0")
	}
	if _, _, err := s.EncodedRow(0); err == nil {
		t.Error("EncodedRow(0) accepted")
	}
}

func TestDisconnectedRejected(t *testing.T) {
	g := graph.MustNew(4)
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	_, err := Build(g, graph.SortedPorts(g))
	if !errors.Is(err, ErrDisconnected) {
		t.Fatalf("err = %v, want ErrDisconnected", err)
	}
}

func TestStalePortsRejected(t *testing.T) {
	g, err := gengraph.Chain(5)
	if err != nil {
		t.Fatal(err)
	}
	ports := graph.SortedPorts(g)
	if err := g.AddEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(g, ports); err == nil {
		t.Fatal("stale ports accepted")
	}
}

func TestRouteErrors(t *testing.T) {
	g, err := gengraph.Chain(4)
	if err != nil {
		t.Fatal(err)
	}
	s, _, _ := buildOn(t, g)
	if _, _, err := s.Route(0, nil, routing.Label{ID: 2}, 0, 0); !errors.Is(err, routing.ErrNoRoute) {
		t.Errorf("bad node: err = %v", err)
	}
	if _, _, err := s.Route(1, nil, routing.Label{ID: 99}, 0, 0); !errors.Is(err, routing.ErrNoRoute) {
		t.Errorf("bad dest: err = %v", err)
	}
	if _, _, err := s.Route(1, nil, routing.Label{ID: 1}, 0, 0); !errors.Is(err, routing.ErrNoRoute) {
		t.Errorf("self dest: err = %v", err)
	}
}

func TestLabelsAreOriginal(t *testing.T) {
	g, err := gengraph.Chain(4)
	if err != nil {
		t.Fatal(err)
	}
	s, _, _ := buildOn(t, g)
	for u := 1; u <= 4; u++ {
		if l := s.Label(u); l.ID != u || len(l.Aux) != 0 {
			t.Fatalf("Label(%d) = %v", u, l)
		}
		if s.LabelBits(u) != 0 {
			t.Fatalf("LabelBits(%d) = %d", u, s.LabelBits(u))
		}
	}
	if s.Name() == "" {
		t.Error("empty name")
	}
}
