// Package hub implements the Theorem 4 routing scheme: stretch ≤ 2 on
// Kolmogorov random graphs with n·loglog n + 6n total bits, in model II.
//
// Construction (paper, proof of Theorem 4). Node 1 (the hub) stores a full
// shortest-path routing function (the 6n-bit Theorem 1 construction). Every
// other node stores only a shortest path towards the hub:
//
//   - direct neighbours of the hub store nothing (O(1) bits): they forward
//     non-neighbour destinations straight to the hub;
//   - distance-2 nodes store the loglog n-bit index, within their first
//     (c+3)·log n neighbours (Lemma 3), of a neighbour adjacent to the hub.
//
// Routing u→w: direct neighbours in 1 step; otherwise ≤ 2 steps to the hub
// and ≤ 2 shortest-path steps out — ≤ 4 hops against a true distance of 2,
// stretch 2. En-route nodes that see the destination as a direct neighbour
// shortcut immediately.
package hub

import (
	"errors"
	"fmt"

	"routetab/internal/bitio"
	"routetab/internal/graph"
	"routetab/internal/models"
	"routetab/internal/routing"
	"routetab/internal/schemes/compact"
)

// ErrNoPathToHub indicates some node is at distance > 2 from the hub, so the
// loglog n-bit towards-hub pointers cannot be built.
var ErrNoPathToHub = errors.New("hub: node at distance > 2 from hub")

// Scheme is a built Theorem 4 scheme.
type Scheme struct {
	n   int
	hub int
	// towards[v] is the neighbour v forwards hub-bound traffic to: the hub
	// itself for its neighbours, a hub-adjacent neighbour for distance-2
	// nodes, 0 for the hub.
	towards []int
	// towardsIdx[v] is the 0-based index of towards[v] within v's sorted
	// neighbour list — the quantity actually charged (loglog n bits).
	towardsIdx []int
	inner      *compact.Scheme
}

var _ routing.Scheme = (*Scheme)(nil)

// Build constructs the scheme with the given hub node (the paper uses node 1).
func Build(g *graph.Graph, hubNode int) (*Scheme, error) {
	n := g.N()
	if hubNode < 1 || hubNode > n {
		return nil, fmt.Errorf("hub: hub %d out of range", hubNode)
	}
	inner, err := compact.Build(g, compact.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("hub: %w", err)
	}
	s := &Scheme{
		n:          n,
		hub:        hubNode,
		towards:    make([]int, n+1),
		towardsIdx: make([]int, n+1),
		inner:      inner,
	}
	for v := 1; v <= n; v++ {
		if v == hubNode {
			continue
		}
		if g.HasEdge(v, hubNode) {
			s.towards[v] = hubNode
			continue
		}
		// Distance-2 node: least neighbour adjacent to the hub (Lemma 3
		// bounds its index by (c+3)·log n, hence loglog n storage bits).
		found := false
		for i, w := range g.Neighbors(v) {
			if g.HasEdge(w, hubNode) {
				s.towards[v] = w
				s.towardsIdx[v] = i
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("%w: node %d", ErrNoPathToHub, v)
		}
	}
	return s, nil
}

// Name implements routing.Scheme.
func (s *Scheme) Name() string { return "theorem4-hub" }

// N implements routing.Scheme.
func (s *Scheme) N() int { return s.n }

// Hub returns the hub node.
func (s *Scheme) Hub() int { return s.hub }

// Requirements implements routing.Scheme: model II.
func (s *Scheme) Requirements() models.Requirements {
	return models.Requirements{NeighborsKnown: true}
}

// Label implements routing.Scheme: original labels.
func (s *Scheme) Label(u int) routing.Label { return routing.Label{ID: u} }

// LabelBits implements routing.Scheme.
func (s *Scheme) LabelBits(int) int { return 0 }

// FunctionBits implements routing.Scheme: Theorem 1 bits at the hub, O(1)
// for its neighbours, ⌈log(idx+1)⌉ within a loglog n field for distance-2
// nodes — charged at the fixed Lemma 3 field width ⌈log((c+3)log n + 1)⌉ + 1.
func (s *Scheme) FunctionBits(u int) int {
	if u < 1 || u > s.n {
		return 0
	}
	if u == s.hub {
		return s.inner.FunctionBits(u)
	}
	if s.towards[u] == s.hub {
		return 1 // O(1): "forward to hub"
	}
	// loglog n + O(1): index into the first (c+3)·log n neighbours.
	budget := 6 * bitio.CeilLogPlus1(s.n) // (c+3)·log n with c = 3
	return bitio.CeilLogPlus1(budget) + 1
}

// Route implements routing.Scheme.
func (s *Scheme) Route(u int, env routing.Env, dest routing.Label, hdr uint64, arrival int) (int, uint64, error) {
	if u < 1 || u > s.n || dest.ID < 1 || dest.ID > s.n {
		return 0, 0, fmt.Errorf("%w: %d→%d", routing.ErrNoRoute, u, dest.ID)
	}
	if port, ok := env.PortOfNeighbor(dest.ID); ok {
		return port, hdr, nil
	}
	if u == s.hub {
		return s.inner.Route(u, env, dest, hdr, arrival)
	}
	port, ok := env.PortOfNeighbor(s.towards[u])
	if !ok {
		return 0, 0, fmt.Errorf("%w: hub pointer %d not resolvable at %d", routing.ErrNoRoute, s.towards[u], u)
	}
	return port, hdr, nil
}
