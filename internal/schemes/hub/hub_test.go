package hub

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/models"
	"routetab/internal/routing"
	"routetab/internal/shortestpath"
)

func fixture(t *testing.T, n int, seed int64) (*graph.Graph, *Scheme, *routing.Sim, *shortestpath.Distances) {
	t.Helper()
	g, err := gengraph.GnHalf(n, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	ports := graph.SortedPorts(g)
	sim, err := routing.NewSim(g, ports, s)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := shortestpath.AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	return g, s, sim, dm
}

func TestStretchAtMostTwo(t *testing.T) {
	_, _, sim, dm := fixture(t, 64, 1)
	rep, err := routing.VerifyAll(sim, dm, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllDelivered() {
		t.Fatalf("undelivered: %s %v", rep, rep.Failures)
	}
	if rep.MaxStretch > 2 {
		t.Fatalf("stretch = %v, want ≤ 2 (Theorem 4)", rep.MaxStretch)
	}
	if rep.MaxHops > 4 {
		t.Fatalf("maxHops = %d, want ≤ 4 on a diameter-2 graph", rep.MaxHops)
	}
}

func TestSpaceIsNLogLogN(t *testing.T) {
	for _, n := range []int{64, 128, 256} {
		g, err := gengraph.GnHalf(n, rand.New(rand.NewSource(int64(n))))
		if err != nil {
			t.Fatal(err)
		}
		s, err := Build(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := routing.MeasureSpace(s, models.IIAlpha)
		if err != nil {
			t.Fatal(err)
		}
		// Paper: n·loglog n + 6n. Allow constant slack.
		bound := 3*float64(n)*math.Log2(math.Log2(float64(n))) + 10*float64(n)
		if float64(sp.Total) > bound {
			t.Errorf("n=%d: total = %d > n·loglog n + O(n) bound %v", n, sp.Total, bound)
		}
		// The hub carries the only Θ(n) function.
		if sp.MaxFunctionBits != s.FunctionBits(s.Hub()) {
			t.Errorf("n=%d: max function bits %d not at hub", n, sp.MaxFunctionBits)
		}
	}
}

func TestPerNodeAccounting(t *testing.T) {
	g, s, _, _ := fixture(t, 64, 2)
	for u := 1; u <= 64; u++ {
		fb := s.FunctionBits(u)
		switch {
		case u == s.Hub():
			if fb < 64/4 {
				t.Fatalf("hub bits = %d, suspiciously small", fb)
			}
		case g.HasEdge(u, s.Hub()):
			if fb != 1 {
				t.Fatalf("hub-neighbour %d bits = %d, want 1", u, fb)
			}
		default:
			// loglog-sized pointer field.
			if fb < 2 || fb > 16 {
				t.Fatalf("distance-2 node %d bits = %d, want small loglog field", u, fb)
			}
		}
	}
}

func TestTowardsPointersValid(t *testing.T) {
	g, s, _, _ := fixture(t, 64, 3)
	for v := 1; v <= 64; v++ {
		if v == s.Hub() {
			continue
		}
		w := s.towards[v]
		if !g.HasEdge(v, w) {
			t.Fatalf("towards[%d] = %d is not a neighbour", v, w)
		}
		if w != s.Hub() && !g.HasEdge(w, s.Hub()) {
			t.Fatalf("towards[%d] = %d not adjacent to hub", v, w)
		}
	}
}

func TestModelII(t *testing.T) {
	_, s, _, _ := fixture(t, 32, 4)
	for _, m := range models.All() {
		_, err := routing.MeasureSpace(s, m)
		if m.NeighborsFree() {
			if err != nil {
				t.Errorf("model %s rejected: %v", m, err)
			}
		} else if err == nil {
			t.Errorf("model %s accepted", m)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	g, err := gengraph.GnHalf(32, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(g, 0); err == nil {
		t.Error("hub 0 accepted")
	}
	if _, err := Build(g, 99); err == nil {
		t.Error("hub 99 accepted")
	}
	chain, err := gengraph.Chain(16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(chain, 1); err == nil {
		t.Error("chain accepted (hub unreachable in ≤ 2)")
	}
}

func TestStarWithHubAtCenter(t *testing.T) {
	g, err := gengraph.Star(15)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	ports := graph.SortedPorts(g)
	sim, err := routing.NewSim(g, ports, s)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := shortestpath.AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := routing.VerifyAll(sim, dm, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllDelivered() || rep.MaxStretch > 2 {
		t.Fatalf("report = %s %v", rep, rep.Failures)
	}
}

func TestRouteErrors(t *testing.T) {
	_, s, _, _ := fixture(t, 32, 6)
	if _, _, err := s.Route(0, nil, routing.Label{ID: 3}, 0, 0); !errors.Is(err, routing.ErrNoRoute) {
		t.Errorf("bad node: %v", err)
	}
	if s.FunctionBits(99) != 0 || s.LabelBits(5) != 0 {
		t.Error("bits accounting wrong on edge cases")
	}
	if s.Label(7).ID != 7 || s.N() != 32 || s.Name() == "" {
		t.Error("metadata wrong")
	}
}
