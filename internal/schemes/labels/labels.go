// Package labels implements the Theorem 2 routing scheme: shortest-path
// routing with O(1)-bit local routing functions by moving the routing
// information into the node labels — model II ∧ γ (neighbours known,
// arbitrary relabelling, label bits charged).
//
// Construction (paper, proof of Theorem 2). Relabel every node u as the pair
// (u, f(u)) where f(u) lists the original labels of u's first (c+3)·log n
// neighbours (Lemma 3's cover set). To route u→v:
//
//   - if v is a direct neighbour, route to it (free knowledge under II);
//   - otherwise u is adjacent to some w ∈ f(v) (Lemma 3 applied at v), and
//     w is adjacent to v — so forwarding to the first such w in v's label
//     reaches v in exactly 2 hops, a shortest path on diameter-2 graphs.
//
// The local function is the constant program above; all the stored bits are
// in the labels: (1 + (c+3)log n)·log n per node.
package labels

import (
	"errors"
	"fmt"
	"math"

	"routetab/internal/graph"
	"routetab/internal/kolmo"
	"routetab/internal/models"
	"routetab/internal/routing"
)

// ErrCoverTooLarge indicates some node's Lemma 3 cover prefix exceeds the
// (c+3)·log n label budget, so the graph is not c·log n-random enough for
// the construction.
var ErrCoverTooLarge = errors.New("labels: cover prefix exceeds (c+3)·log n label budget")

// FunctionBits is the constant charged for the O(1)-bit local routing
// function (a 2-bit program selector, per the paper's O(1)).
const FunctionBits = 2

// Scheme is a built Theorem 2 scheme.
type Scheme struct {
	n      int
	c      float64
	k      int // label list length: ⌈(c+3)·log₂ n⌉ (capped by max degree)
	labels []routing.Label
}

var _ routing.Scheme = (*Scheme)(nil)

// Build constructs the scheme with randomness parameter c (the paper's
// c·log n-random graphs; c = 3 matches the 1−1/n³ mass statement).
func Build(g *graph.Graph, c float64) (*Scheme, error) {
	n := g.N()
	if c <= 0 {
		return nil, fmt.Errorf("labels: c must be positive, got %v", c)
	}
	k := int(math.Ceil((c + 3) * math.Log2(float64(n))))
	if k < 1 {
		k = 1
	}
	s := &Scheme{n: n, c: c, k: k, labels: make([]routing.Label, n+1)}
	for u := 1; u <= n; u++ {
		prefix, err := kolmo.CoverPrefix(g, u)
		if err != nil {
			return nil, fmt.Errorf("labels: node %d: %w", u, err)
		}
		if prefix > k {
			return nil, fmt.Errorf("%w: node %d needs %d > %d", ErrCoverTooLarge, u, prefix, k)
		}
		aux := g.FirstNeighbors(u, k)
		cp := make([]int, len(aux))
		copy(cp, aux)
		s.labels[u] = routing.Label{ID: u, Aux: cp}
	}
	return s, nil
}

// Name implements routing.Scheme.
func (s *Scheme) Name() string { return "theorem2-labels" }

// N implements routing.Scheme.
func (s *Scheme) N() int { return s.n }

// K returns the label list length (c+3)·log n.
func (s *Scheme) K() int { return s.k }

// Requirements implements routing.Scheme: II ∧ γ.
func (s *Scheme) Requirements() models.Requirements {
	return models.Requirements{NeighborsKnown: true, ArbitraryLabels: true}
}

// Label implements routing.Scheme: the (u, f(u)) pair.
func (s *Scheme) Label(u int) routing.Label {
	if u < 1 || u > s.n {
		return routing.Label{}
	}
	return s.labels[u]
}

// LabelBits implements routing.Scheme: (1+|f(u)|)·⌈log(n+1)⌉, the paper's
// (1+(c+3)log n)·log n.
func (s *Scheme) LabelBits(u int) int {
	if u < 1 || u > s.n {
		return 0
	}
	return s.labels[u].Bits(s.n)
}

// FunctionBits implements routing.Scheme: O(1).
func (s *Scheme) FunctionBits(u int) int {
	if u < 1 || u > s.n {
		return 0
	}
	return FunctionBits
}

// Route implements routing.Scheme: the constant program of Theorem 2.
func (s *Scheme) Route(u int, env routing.Env, dest routing.Label, hdr uint64, _ int) (int, uint64, error) {
	if u < 1 || u > s.n {
		return 0, 0, fmt.Errorf("%w: node %d", routing.ErrNoRoute, u)
	}
	if port, ok := env.PortOfNeighbor(dest.ID); ok {
		return port, hdr, nil
	}
	for _, w := range dest.Aux {
		if port, ok := env.PortOfNeighbor(w); ok {
			return port, hdr, nil
		}
	}
	return 0, 0, fmt.Errorf("%w: %d→%d (no common cover neighbour)", routing.ErrNoRoute, u, dest.ID)
}
