package labels

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/models"
	"routetab/internal/routing"
	"routetab/internal/shortestpath"
)

func fixture(t *testing.T, n int, seed int64) (*graph.Graph, *Scheme, *routing.Sim, *shortestpath.Distances) {
	t.Helper()
	g, err := gengraph.GnHalf(n, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	ports := graph.SortedPorts(g)
	sim, err := routing.NewSim(g, ports, s)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := shortestpath.AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	return g, s, sim, dm
}

func TestShortestPathRouting(t *testing.T) {
	_, _, sim, dm := fixture(t, 64, 1)
	rep, err := routing.VerifyAll(sim, dm, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllDelivered() {
		t.Fatalf("undelivered: %s %v", rep, rep.Failures)
	}
	if rep.MaxStretch != 1 {
		t.Fatalf("stretch = %v, want exactly 1 (Theorem 2 is shortest path)", rep.MaxStretch)
	}
}

func TestLabelContents(t *testing.T) {
	g, s, _, _ := fixture(t, 64, 2)
	for u := 1; u <= 64; u++ {
		l := s.Label(u)
		if l.ID != u {
			t.Fatalf("Label(%d).ID = %d", u, l.ID)
		}
		if len(l.Aux) > s.K() {
			t.Fatalf("Label(%d) has %d aux entries > k=%d", u, len(l.Aux), s.K())
		}
		// Every aux entry must be a true neighbour, in increasing order.
		prev := 0
		for _, w := range l.Aux {
			if !g.HasEdge(u, w) {
				t.Fatalf("Label(%d) lists non-neighbour %d", u, w)
			}
			if w <= prev {
				t.Fatalf("Label(%d) aux not increasing: %v", u, l.Aux)
			}
			prev = w
		}
	}
}

func TestSpaceAccountingMatchesPaper(t *testing.T) {
	// Total = n·O(1) function bits + Σ (1+k)·⌈log(n+1)⌉ label bits
	//       ≈ (c+3)·n·log²n + n·log n (Theorem 2's statement).
	n := 128
	_, s, _, _ := fixture(t, n, 3)
	sp, err := routing.MeasureSpace(s, models.IIGamma)
	if err != nil {
		t.Fatal(err)
	}
	if sp.FunctionBits != n*FunctionBits {
		t.Fatalf("function bits = %d, want %d", sp.FunctionBits, n*FunctionBits)
	}
	logn := bitsLog(n)
	wantLabels := n * (1 + s.K()) * logn
	if sp.LabelBits != wantLabels {
		t.Fatalf("label bits = %d, want %d", sp.LabelBits, wantLabels)
	}
	if sp.Total != sp.FunctionBits+sp.LabelBits {
		t.Fatalf("γ total %d must charge labels", sp.Total)
	}
	// Shape: total within a constant of (c+3)·n·log²n.
	bound := 6.0 * float64(n) * math.Pow(math.Log2(float64(n)), 2) * 1.5
	if float64(sp.Total) > bound {
		t.Fatalf("total %d exceeds 1.5·(c+3)·n·log²n = %v", sp.Total, bound)
	}
}

func bitsLog(n int) int {
	l := 0
	for v := n; v > 0; v >>= 1 {
		l++
	}
	return l
}

func TestOnlyModelIIGamma(t *testing.T) {
	_, s, _, _ := fixture(t, 32, 4)
	for _, m := range models.All() {
		_, err := routing.MeasureSpace(s, m)
		if m == models.IIGamma {
			if err != nil {
				t.Errorf("II^gamma rejected: %v", err)
			}
		} else if err == nil {
			t.Errorf("model %s accepted", m)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	g, err := gengraph.GnHalf(32, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(g, 0); err == nil {
		t.Error("c=0 accepted")
	}
	chain, err := gengraph.Chain(32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(chain, 3); err == nil {
		t.Error("chain (diameter 31) accepted")
	}
}

func TestCoverBudgetEnforced(t *testing.T) {
	// A star with one distant appendage: 1 is centre; node n is attached to
	// a leaf only, so leaves need the appendage's neighbour in their cover —
	// still fine. Build a graph where the cover prefix is forced high: a
	// "sunflower": centre 1 adjacent to all; node k covered only via the
	// very last neighbour of node 2. Simpler: verify ErrCoverTooLarge is
	// reachable with tiny c on a sparse random graph.
	g, err := gengraph.Gnp(64, 0.12, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Build(g, 0.001)
	if err == nil {
		t.Skip("sparse graph happened to have tiny covers")
	}
	if !errors.Is(err, ErrCoverTooLarge) && err != nil {
		// Distance > 2 is also a legitimate failure for sparse graphs.
		t.Logf("failure mode: %v", err)
	}
}

func TestRouteErrors(t *testing.T) {
	_, s, _, _ := fixture(t, 32, 7)
	if _, _, err := s.Route(0, nil, routing.Label{ID: 5}, 0, 0); !errors.Is(err, routing.ErrNoRoute) {
		t.Errorf("bad node: %v", err)
	}
	if s.FunctionBits(0) != 0 || s.LabelBits(0) != 0 {
		t.Error("out-of-range bits should be 0")
	}
	if l := s.Label(99); l.ID != 0 {
		t.Error("out-of-range label should be zero")
	}
	if s.Name() == "" {
		t.Error("empty name")
	}
}
