package landmark

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/keyspace"
	"routetab/internal/routing"
	"routetab/internal/shortestpath"
)

func restrictTestGraph(t *testing.T) (*graph.Graph, *graph.Ports) {
	t.Helper()
	g, err := gengraph.SparseConnected(72, 5, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	return g, graph.SortedPorts(g)
}

func evenOwned(t *testing.T, n int) *keyspace.Set {
	t.Helper()
	owned, err := keyspace.New(n)
	if err != nil {
		t.Fatal(err)
	}
	for u := 2; u <= n; u += 2 {
		owned.Add(u)
	}
	return owned
}

// TestRestrictDeterminism: restriction is a pure function of (build, owned) —
// two independent builds restricted to the same shard encode byte-identically,
// which is what scheme-table anti-entropy digests across a shard group rely
// on.
func TestRestrictDeterminism(t *testing.T) {
	g, ports := restrictTestGraph(t)
	owned := evenOwned(t, g.N())
	var encs [][]byte
	for i := 0; i < 2; i++ {
		s, err := Build(g, ports, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Restrict(owned); err != nil {
			t.Fatal(err)
		}
		encs = append(encs, s.EncodeTables())
	}
	if !bytes.Equal(encs[0], encs[1]) {
		t.Fatal("restricted encodings differ across identical builds")
	}
}

// TestRestrictRouteAndEstimate: owned sources keep the exact first hop of the
// unrestricted scheme and the stretch-3 estimate bound; non-owned sources are
// refused with ErrNotOwned instead of forwarding on zeroed rows.
func TestRestrictRouteAndEstimate(t *testing.T) {
	g, ports := restrictTestGraph(t)
	n := g.N()
	full, err := Build(g, ports, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(g, ports, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	owned := evenOwned(t, n)
	if err := s.Restrict(owned); err != nil {
		t.Fatal(err)
	}
	if err := s.Restrict(owned); err == nil {
		t.Fatal("double restriction accepted")
	}
	sim, err := routing.NewSim(g, ports, s)
	if err != nil {
		t.Fatal(err)
	}
	fullSim, err := routing.NewSim(g, ports, full)
	if err != nil {
		t.Fatal(err)
	}
	for src := 1; src <= n; src++ {
		res, err := shortestpath.BFS(g, src)
		if err != nil {
			t.Fatal(err)
		}
		for dst := 1; dst <= n; dst++ {
			if dst == src {
				continue
			}
			next, rerr := sim.FirstHop(src, dst)
			if !owned.Has(src) {
				if !errors.Is(rerr, ErrNotOwned) {
					t.Fatalf("FirstHop(%d,%d) from non-owned source: err = %v, want ErrNotOwned", src, dst, rerr)
				}
				continue
			}
			fnext, ferr := fullSim.FirstHop(src, dst)
			if rerr != nil || ferr != nil {
				t.Fatalf("FirstHop(%d,%d): restricted err %v, full err %v", src, dst, rerr, ferr)
			}
			if next != fnext {
				t.Fatalf("FirstHop(%d,%d): restricted hop %d != full hop %d", src, dst, next, fnext)
			}
			d := res.Dist[dst]
			est := s.EstimateDist(src, dst)
			if est < d {
				t.Fatalf("EstimateDist(%d,%d) = %d below true distance %d", src, dst, est, d)
			}
			if d >= 2 && est > 3*d {
				t.Fatalf("EstimateDist(%d,%d) = %d exceeds 3·d = %d", src, dst, est, 3*d)
			}
		}
	}
}

// TestRestrictCodecRoundTrip: the v2 encoding round-trips byte-identically,
// carries the owned set, and is strictly smaller than the unrestricted
// encoding — the per-shard resync-bytes win the sharded tier exists for.
func TestRestrictCodecRoundTrip(t *testing.T) {
	g, ports := restrictTestGraph(t)
	s, err := Build(g, ports, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	fullEnc := s.EncodeTables()
	owned := evenOwned(t, g.N())
	if err := s.Restrict(owned); err != nil {
		t.Fatal(err)
	}
	enc := s.EncodeTables()
	if len(enc) >= len(fullEnc) {
		t.Fatalf("restricted encoding %dB not below full %dB", len(enc), len(fullEnc))
	}
	dec, err := DecodeTables(g, ports, enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Owned() == nil || !dec.Owned().Equal(owned) {
		t.Fatalf("decoded owned set %v != %v", dec.Owned(), owned)
	}
	if !bytes.Equal(dec.EncodeTables(), enc) {
		t.Fatal("v2 decode→encode is not a fixed point")
	}
}

// TestRestrictCodecRejectsCorruption is the v2 corruption matrix: every
// truncation, a bit flip in every header and owned-section byte, and targeted
// semantic corruptions (popcount mismatch, tail bits, smuggled non-owned
// cluster rows) must all be rejected with ErrBadTables — a corrupt restricted
// blob is never partially adopted.
func TestRestrictCodecRejectsCorruption(t *testing.T) {
	g, ports := restrictTestGraph(t)
	s, err := Build(g, ports, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	owned := evenOwned(t, g.N())
	if err := s.Restrict(owned); err != nil {
		t.Fatal(err)
	}
	enc := s.EncodeTables()
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeTables(g, ports, enc[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", cut)
		} else if !errors.Is(err, ErrBadTables) && cut >= tablesHdrLen {
			t.Fatalf("truncation to %d bytes: err %v not ErrBadTables", cut, err)
		}
	}
	// Header + ownedCount + every bitmap byte: any flip must fail loudly.
	ownedSection := tablesHdrLen + 4 + 8*len(owned.Words())
	for off := 0; off < ownedSection; off++ {
		bad := bytes.Clone(enc)
		bad[off] ^= 0x40
		if _, err := DecodeTables(g, ports, bad); err == nil {
			t.Fatalf("owned-section byte %d flip decoded successfully", off)
		}
	}
	// Tail bit beyond n in the last bitmap word.
	bad := bytes.Clone(enc)
	lastWord := tablesHdrLen + 4 + 8*(len(owned.Words())-1)
	bad[lastWord+7] |= 0x80 // bit 127 of a 2-word bitmap over n=72
	if _, err := DecodeTables(g, ports, bad); !errors.Is(err, ErrBadTables) {
		t.Fatalf("tail bit beyond n: err %v, want ErrBadTables", err)
	}
}

// TestRestrictRejectsBadArgs covers the Restrict precondition errors.
func TestRestrictRejectsBadArgs(t *testing.T) {
	g, ports := restrictTestGraph(t)
	s, err := Build(g, ports, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Restrict(nil); err == nil {
		t.Error("nil owned set accepted")
	}
	empty, _ := keyspace.New(g.N())
	if err := s.Restrict(empty); err == nil {
		t.Error("empty owned set accepted")
	}
	wrongN, _ := keyspace.All(g.N() + 1)
	if err := s.Restrict(wrongN); err == nil {
		t.Error("owned set over wrong n accepted")
	}
	if s.Owned() != nil {
		t.Error("failed Restrict left scheme restricted")
	}
}
