// Package landmark implements a seeded, deterministic Thorup–Zwick-style
// stretch-3 landmark routing scheme — the sublinear-space construction the
// large-graph serving tier is built on (PAPERS.md: "Compact Routing on
// Internet-Like Graphs", Krioukov/Fall/Yang; "Compact routing schemes",
// Thorup–Zwick).
//
// Construction. A seeded sample A of k ≈ ⌈√n⌉ landmarks is drawn as a pure
// function of (n, seed, k) — never of the edge set, so topology mutations
// cannot perturb the sample. For every node v, ℓ(v) is its nearest landmark
// (ties to the smallest landmark id), and home(v) = d(v, ℓ(v)). Every node u
// stores:
//
//   - a landmark table: the first port on a shortest path from u toward every
//     landmark, with the exact distance (2k entries);
//   - a cluster table: for every destination v with d(u, v) < home(v) and
//     d(u, v) ≥ 2, the first port on a shortest path u→v with the exact
//     distance. (Distance-1 destinations are resolved by the model-II
//     neighbour check and stored nowhere.)
//
// The label of v carries (v, ℓ(v), eport) where eport is the port at ℓ(v)
// toward v. Routing u→v tries, in order: direct neighbour; cluster hit
// (exact shortest path from there on); u == ℓ(v) → eport; otherwise forward
// toward ℓ(v). Every case strictly decreases either d(·, v) or d(·, ℓ(v)),
// so routes terminate, and the detour through ℓ(v) costs at most
// d(u, ℓ(v)) + d(ℓ(v), v) ≤ 3·d(u, v) when v is outside u's cluster — the
// classic stretch-3 argument.
//
// Space. E[Σ_v |C(v)|] ≈ n²/(k+1) for a random landmark sample, so total
// space is O(n·k + n²/k) = O(n^{3/2}) at k = √n — o(n²), the whole point.
// All stored distances are exact int32 BFS distances: the packed uint8
// saturation sentinel of shortestpath.Distances never enters these tables
// (landmark_test.go audits this on diameter ≫ 254 topologies).
package landmark

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"routetab/internal/bitio"
	"routetab/internal/graph"
	"routetab/internal/keyspace"
	"routetab/internal/models"
	"routetab/internal/routing"
	"routetab/internal/shortestpath"
)

// Errors.
var (
	// ErrDisconnected indicates the graph has unreachable pairs; landmark
	// tables require every node to reach every landmark.
	ErrDisconnected = errors.New("landmark: graph is disconnected")
	// ErrTooLarge indicates n exceeds the codec's u16 field ceiling.
	ErrTooLarge = errors.New("landmark: n exceeds 65535")
	// ErrBadTables indicates an encoded table blob that failed validation.
	ErrBadTables = errors.New("landmark: bad table encoding")
)

// Options parameterises a build.
type Options struct {
	// Seed derives the landmark sample (with n and K). Fixed per deployment:
	// two engines with the same topology and options build identical tables.
	Seed int64
	// K is the landmark count; 0 means ⌈√n⌉.
	K int
}

// DefaultOptions is what the serve registry builds with.
func DefaultOptions() Options { return Options{Seed: 0x52544c4d} } // "RTLM"

// Scheme is a built landmark scheme. All tables are flat int32 arrays so the
// lookup path (route.go) runs allocation-free.
type Scheme struct {
	n int
	k int

	// landmarks holds the k landmark node ids, sorted ascending.
	landmarks []int32
	// homeIdx[v] is the index in landmarks of ℓ(v); homeDist[v] = d(v, ℓ(v)).
	homeIdx  []int32
	homeDist []int32
	// eport[v] is the port at ℓ(v) on a shortest path toward v (0 when v is
	// its own landmark).
	eport []int32
	// lmIdx[u] is u's index in landmarks, or −1 for non-landmarks.
	lmIdx []int32

	// Landmark table, row-major (u−1)*k + j: first port at u toward
	// landmarks[j] (0 when u is that landmark) and the exact distance.
	lmPort []int32
	lmDist []int32

	// Cluster tables in CSR form: node u's entries are
	// clusterDst/Port/Dist[clusterStart[u-1]:clusterStart[u]], sorted by
	// destination id. An entry (u, v) exists iff 2 ≤ d(u,v) < homeDist[v].
	clusterStart []int32
	clusterDst   []int32
	clusterPort  []int32
	clusterDist  []int32

	// labels pre-builds every node's routing.Label (Aux backed by labelAux)
	// so Label(u) is a plain struct copy on the zero-alloc hot path.
	labels   []routing.Label
	labelAux []int

	// owned restricts the per-source tables to a keyspace shard (restrict.go);
	// nil means every node's tables are present. Non-owned nodes have zeroed
	// lmPort rows and empty cluster rows, and Route refuses them as sources.
	owned *keyspace.Set
}

var _ routing.Scheme = (*Scheme)(nil)

// Build constructs the scheme. The result is a pure function of
// (g, ports, opt): landmark sampling uses only (n, opt), BFS explores sorted
// neighbour lists, and cluster entries are canonically ordered.
func Build(g *graph.Graph, ports *graph.Ports, opt Options) (*Scheme, error) {
	n := g.N()
	if n < 1 {
		return nil, fmt.Errorf("landmark: empty graph")
	}
	if n > 65535 {
		return nil, fmt.Errorf("%w: n = %d", ErrTooLarge, n)
	}
	if err := ports.Validate(g); err != nil {
		return nil, fmt.Errorf("landmark: %w", err)
	}
	k := opt.K
	if k <= 0 {
		k = int(math.Ceil(math.Sqrt(float64(n))))
	}
	if k > n {
		k = n
	}
	s := &Scheme{
		n:         n,
		k:         k,
		landmarks: sampleLandmarks(n, k, opt.Seed),
		homeIdx:   make([]int32, n+1),
		homeDist:  make([]int32, n+1),
		eport:     make([]int32, n+1),
		lmIdx:     make([]int32, n+1),
		lmPort:    make([]int32, n*k),
		lmDist:    make([]int32, n*k),
	}
	for v := range s.lmIdx {
		s.lmIdx[v] = -1
	}
	for j, a := range s.landmarks {
		s.lmIdx[a] = int32(j)
	}

	// Pass 1: one BFS per landmark fills the distance/port columns.
	for j, a := range s.landmarks {
		res, err := shortestpath.BFS(g, int(a))
		if err != nil {
			return nil, fmt.Errorf("landmark: %w", err)
		}
		for u := 1; u <= n; u++ {
			d := res.Dist[u]
			if d == shortestpath.Unreachable {
				return nil, fmt.Errorf("%w: node %d cannot reach landmark %d", ErrDisconnected, u, a)
			}
			at := (u-1)*k + j
			s.lmDist[at] = int32(d)
			if u != int(a) {
				// Parent[u] is u's neighbour one step closer to the landmark.
				port, err := ports.PortTo(u, res.Parent[u])
				if err != nil {
					return nil, fmt.Errorf("landmark: %w", err)
				}
				s.lmPort[at] = int32(port)
			}
		}
	}

	// Nearest landmark per node; ties resolve to the smallest landmark id
	// because landmarks are sorted and the scan keeps strict improvements.
	for v := 1; v <= n; v++ {
		best := int32(0)
		for j := 1; j < k; j++ {
			if s.lmDist[(v-1)*k+j] < s.lmDist[(v-1)*k+int(best)] {
				best = int32(j)
			}
		}
		s.homeIdx[v] = best
		s.homeDist[v] = s.lmDist[(v-1)*k+int(best)]
	}

	// Pass 2: one more BFS per landmark recovers eport(v) — the first hop at
	// ℓ(v) toward v — for the nodes homed there, by walking the BFS parent
	// chain from v up to the landmark's child.
	for j, a := range s.landmarks {
		res, err := shortestpath.BFS(g, int(a))
		if err != nil {
			return nil, fmt.Errorf("landmark: %w", err)
		}
		for v := 1; v <= n; v++ {
			if s.homeIdx[v] != int32(j) || v == int(a) {
				continue
			}
			x := v
			for res.Parent[x] != int(a) {
				x = res.Parent[x]
			}
			port, err := ports.PortTo(int(a), x)
			if err != nil {
				return nil, fmt.Errorf("landmark: %w", err)
			}
			s.eport[v] = int32(port)
		}
	}

	if err := s.buildClusters(g, ports); err != nil {
		return nil, err
	}
	s.buildLabels()
	return s, nil
}

// sampleLandmarks draws k distinct node ids by seeded shuffle — a pure
// function of (n, k, seed), independent of the edge set — and sorts them.
func sampleLandmarks(n, k int, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed ^ int64(n)*0x9E3779B9))
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i + 1)
	}
	rng.Shuffle(n, func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	lm := ids[:k:k]
	sort.Slice(lm, func(i, j int) bool { return lm[i] < lm[j] })
	return lm
}

// clusterEntry is one (holder, destination) pair during construction.
type clusterEntry struct{ w, v, port, dist int32 }

// buildClusters runs a truncated BFS from every destination v to depth
// home(v)−1: each discovered node w with 2 ≤ d(v,w) < home(v) stores an
// entry for v whose port is w's BFS parent edge (a first hop on a shortest
// w→v path). Entries are then sorted into per-node CSR rows.
func (s *Scheme) buildClusters(g *graph.Graph, ports *graph.Ports) error {
	n := s.n
	dist := make([]int32, n+1)
	parent := make([]int32, n+1)
	queue := make([]int32, 0, n)
	touched := make([]int32, 0, n)
	for i := range dist {
		dist[i] = -1
	}
	var entries []clusterEntry
	for v := 1; v <= n; v++ {
		limit := s.homeDist[v] - 1
		if limit < 2 {
			continue // cluster holds only the neighbours, which store nothing
		}
		queue = queue[:0]
		touched = touched[:0]
		dist[v] = 0
		queue = append(queue, int32(v))
		touched = append(touched, int32(v))
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			du := dist[u]
			if du == limit {
				continue
			}
			for _, w := range g.Neighbors(int(u)) {
				if dist[w] >= 0 {
					continue
				}
				dist[w] = du + 1
				parent[w] = u
				queue = append(queue, int32(w))
				touched = append(touched, int32(w))
				if dist[w] >= 2 {
					port, err := ports.PortTo(w, int(parent[w]))
					if err != nil {
						return fmt.Errorf("landmark: %w", err)
					}
					entries = append(entries, clusterEntry{
						w: int32(w), v: int32(v), port: int32(port), dist: dist[w],
					})
				}
			}
		}
		for _, t := range touched {
			dist[t] = -1
		}
	}
	// Canonical order: by holder, then destination. Keys are unique, so the
	// result is deterministic regardless of discovery order.
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].w != entries[j].w {
			return entries[i].w < entries[j].w
		}
		return entries[i].v < entries[j].v
	})
	s.clusterStart = make([]int32, n+1)
	s.clusterDst = make([]int32, len(entries))
	s.clusterPort = make([]int32, len(entries))
	s.clusterDist = make([]int32, len(entries))
	for i, e := range entries {
		s.clusterStart[e.w]++
		s.clusterDst[i] = e.v
		s.clusterPort[i] = e.port
		s.clusterDist[i] = e.dist
	}
	for u := 1; u <= n; u++ {
		s.clusterStart[u] += s.clusterStart[u-1]
	}
	return nil
}

// buildLabels pre-builds every node's label: ID v with Aux [ℓ(v), eport(v)].
func (s *Scheme) buildLabels() {
	s.labelAux = make([]int, 2*(s.n+1))
	s.labels = make([]routing.Label, s.n+1)
	for v := 1; v <= s.n; v++ {
		aux := s.labelAux[2*v : 2*v+2 : 2*v+2]
		aux[0] = int(s.landmarks[s.homeIdx[v]])
		aux[1] = int(s.eport[v])
		s.labels[v] = routing.Label{ID: v, Aux: aux}
	}
}

// Name implements routing.Scheme.
func (s *Scheme) Name() string { return "landmark-stretch3" }

// N implements routing.Scheme.
func (s *Scheme) N() int { return s.n }

// K returns the landmark count.
func (s *Scheme) K() int { return s.k }

// Landmarks returns the sorted landmark ids (a copy).
func (s *Scheme) Landmarks() []int {
	out := make([]int, s.k)
	for i, a := range s.landmarks {
		out[i] = int(a)
	}
	return out
}

// Home returns v's landmark and exact distance to it.
func (s *Scheme) Home(v int) (landmark, dist int) {
	return int(s.landmarks[s.homeIdx[v]]), int(s.homeDist[v])
}

// ClusterSize returns the number of cluster entries node u stores.
func (s *Scheme) ClusterSize(u int) int {
	return int(s.clusterStart[u] - s.clusterStart[u-1])
}

// TotalClusterEntries returns Σ_u ClusterSize(u) — the o(n²) quantity.
func (s *Scheme) TotalClusterEntries() int { return len(s.clusterDst) }

// Requirements implements routing.Scheme: model II (the neighbour check).
func (s *Scheme) Requirements() models.Requirements {
	return models.Requirements{NeighborsKnown: true}
}

// Label implements routing.Scheme: pre-built, allocation-free.
func (s *Scheme) Label(u int) routing.Label { return s.labels[u] }

// LabelBits implements routing.Scheme: (1+2) fields of ⌈log(n+1)⌉ bits.
func (s *Scheme) LabelBits(u int) int {
	if u < 1 || u > s.n {
		return 0
	}
	return s.labels[u].Bits(s.n)
}

// FunctionBits implements routing.Scheme: 2k landmark-table fields plus three
// fields per cluster entry, each ⌈log(n+1)⌉ bits.
func (s *Scheme) FunctionBits(u int) int {
	if u < 1 || u > s.n {
		return 0
	}
	f := bitio.CeilLogPlus1(s.n)
	return (2*s.k + 3*s.ClusterSize(u)) * f
}
