package landmark

import (
	"bytes"
	"math/rand"
	"testing"

	"routetab/internal/gengraph"
	"routetab/internal/graph"
)

// FuzzDecodeLandmarkTables mirrors the arena/WAL fuzz pattern: whatever bytes
// arrive as an LMTB1 blob, DecodeTables must either reject them or return a
// scheme whose tables are internally consistent — never panic, never
// over-read, never serve out-of-range entries. The seed corpus is the
// corruption matrix from TestLandmarkCodecRejectsCorruption: the valid
// encoding, truncations, and a bit flip in every header field, as a resyncing
// replica would see them after wire corruption.
func FuzzDecodeLandmarkTables(f *testing.F) {
	g, err := gengraph.SparseConnected(48, 5, rand.New(rand.NewSource(13)))
	if err != nil {
		f.Fatal(err)
	}
	ports := graph.SortedPorts(g)
	s, err := Build(g, ports, DefaultOptions())
	if err != nil {
		f.Fatal(err)
	}
	enc := s.EncodeTables()
	f.Add(enc)
	f.Add(enc[:tablesHdrLen])
	f.Add(enc[:len(enc)/2])
	f.Add(enc[:len(enc)-1])
	for off := 0; off < tablesHdrLen; off += 4 {
		bad := bytes.Clone(enc)
		bad[off] ^= 0x40
		f.Add(bad)
	}
	mid := bytes.Clone(enc)
	mid[len(mid)/2] ^= 0x01
	f.Add(mid)
	f.Add([]byte("LMTB"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := DecodeTables(g, ports, data)
		if err != nil {
			return
		}
		// A successful decode must re-encode deterministically and round-trip
		// byte-identically — the property replication's CRC verification and
		// quiesce-time table comparison both lean on.
		enc2 := dec.EncodeTables()
		dec2, err := DecodeTables(g, ports, enc2)
		if err != nil {
			t.Fatalf("re-encoded tables rejected: %v", err)
		}
		if !bytes.Equal(dec2.EncodeTables(), enc2) {
			t.Fatal("decode→encode is not a fixed point")
		}
		// Accepted tables must answer in-range for arbitrary pairs.
		n := g.N()
		for _, pair := range [][2]int{{1, 2}, {1, n}, {n / 2, n}} {
			d := dec.EstimateDist(pair[0], pair[1])
			if d < 1 || d > 3*n {
				t.Fatalf("EstimateDist(%d,%d) = %d out of range", pair[0], pair[1], d)
			}
		}
	})
}
