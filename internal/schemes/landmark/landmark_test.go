package landmark

import (
	"bytes"
	"math/rand"
	"testing"

	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/routing"
	"routetab/internal/shortestpath"
)

func buildOn(t *testing.T, g *graph.Graph) (*Scheme, *graph.Ports) {
	t.Helper()
	ports := graph.SortedPorts(g)
	s, err := Build(g, ports, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return s, ports
}

// checkAllPairs routes every ordered pair and asserts delivery, stretch ≤ 3,
// and the EstimateDist upper-bound contract against BFS ground truth.
func checkAllPairs(t *testing.T, g *graph.Graph, s *Scheme, ports *graph.Ports) {
	t.Helper()
	sim, err := routing.NewSim(g, ports, s)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	maxHops := 4 * n
	for src := 1; src <= n; src++ {
		res, err := shortestpath.BFS(g, src)
		if err != nil {
			t.Fatal(err)
		}
		for dst := 1; dst <= n; dst++ {
			if dst == src {
				continue
			}
			d := res.Dist[dst]
			tr, err := sim.RouteByNode(src, dst, maxHops)
			if err != nil {
				t.Fatalf("route %d->%d: %v", src, dst, err)
			}
			if tr.Hops > 3*d {
				t.Fatalf("route %d->%d: %d hops for distance %d (stretch %.2f)",
					src, dst, tr.Hops, d, float64(tr.Hops)/float64(d))
			}
			est := s.EstimateDist(src, dst)
			if est < d {
				t.Fatalf("EstimateDist(%d,%d) = %d below true distance %d", src, dst, est, d)
			}
			if d >= 2 && est > 3*d {
				t.Fatalf("EstimateDist(%d,%d) = %d exceeds 3·d = %d", src, dst, est, 3*d)
			}
		}
	}
}

func TestLandmarkStretch3Families(t *testing.T) {
	families := []struct {
		name string
		gen  func() (*graph.Graph, error)
	}{
		{"gnhalf64", func() (*graph.Graph, error) { return gengraph.GnHalf(64, rand.New(rand.NewSource(7))) }},
		{"sparse150", func() (*graph.Graph, error) {
			return gengraph.SparseConnected(150, 6, rand.New(rand.NewSource(9)))
		}},
		{"grid8x8", func() (*graph.Graph, error) { return gengraph.Grid(8, 8) }},
		{"tree100", func() (*graph.Graph, error) { return gengraph.RandomTree(100, rand.New(rand.NewSource(3))) }},
		{"cycle37", func() (*graph.Graph, error) { return gengraph.Cycle(37) }},
	}
	for _, f := range families {
		f := f
		t.Run(f.name, func(t *testing.T) {
			g, err := f.gen()
			if err != nil {
				t.Fatal(err)
			}
			s, ports := buildOn(t, g)
			checkAllPairs(t, g, s, ports)
		})
	}
}

// TestLandmarkSaturationAudit is the packed-uint8 audit the issue demands: on
// a diameter-399 chain — far past shortestpath.MaxDistance (254), where the
// packed all-pairs codec legitimately saturates — every distance the landmark
// tables store must be the exact BFS distance. A silent clamp through the
// uint8 representation would either cap values at 254 or alias the
// unreachable sentinel; both are asserted absent, and routes past the
// saturation horizon still deliver within stretch 3.
func TestLandmarkSaturationAudit(t *testing.T) {
	const n = 400
	g, err := gengraph.Chain(n)
	if err != nil {
		t.Fatal(err)
	}
	s, ports := buildOn(t, g)

	// Exact ground truth per landmark, straight from the int-valued BFS.
	maxSeen := int32(0)
	for j, a := range s.Landmarks() {
		res, err := shortestpath.BFS(g, a)
		if err != nil {
			t.Fatal(err)
		}
		for u := 1; u <= n; u++ {
			got := s.lmDist[(u-1)*s.k+j]
			if int(got) != res.Dist[u] {
				t.Fatalf("lmDist[%d][landmark %d] = %d, BFS says %d", u, a, got, res.Dist[u])
			}
			if got > maxSeen {
				maxSeen = got
			}
		}
	}
	if maxSeen <= int32(shortestpath.MaxDistance) {
		t.Fatalf("audit vacuous: max stored distance %d never exceeds the packed saturation point %d",
			maxSeen, shortestpath.MaxDistance)
	}

	// Cluster distances are exact too, and homeDist matches its landmark row.
	for u := 1; u <= n; u++ {
		res, err := shortestpath.BFS(g, u)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := s.clusterStart[u-1], s.clusterStart[u]
		for i := lo; i < hi; i++ {
			v := int(s.clusterDst[i])
			if int(s.clusterDist[i]) != res.Dist[v] {
				t.Fatalf("cluster (%d,%d) stores distance %d, BFS says %d", u, v, s.clusterDist[i], res.Dist[v])
			}
		}
		lm, hd := s.Home(u)
		if hd != res.Dist[lm] {
			t.Fatalf("homeDist[%d] = %d, BFS to landmark %d says %d", u, hd, lm, res.Dist[lm])
		}
	}

	// End-to-end: the longest route in the graph delivers within stretch 3.
	sim, err := routing.NewSim(g, ports, s)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.RouteByNode(1, n, 4*n)
	if err != nil {
		t.Fatal(err)
	}
	if d := n - 1; tr.Hops > 3*d {
		t.Fatalf("chain route 1->%d took %d hops for distance %d", n, tr.Hops, d)
	}
	if est := s.EstimateDist(1, n); est < n-1 || est > 3*(n-1) {
		t.Fatalf("EstimateDist(1,%d) = %d outside [%d, %d]", n, est, n-1, 3*(n-1))
	}
}

func TestLandmarkDeterminism(t *testing.T) {
	gen := func() *graph.Graph {
		g, err := gengraph.SparseConnected(300, 6, rand.New(rand.NewSource(21)))
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	g1, g2 := gen(), gen()
	s1, _ := buildOn(t, g1)
	s2, _ := buildOn(t, g2)
	if !bytes.Equal(s1.EncodeTables(), s2.EncodeTables()) {
		t.Fatal("two builds of the same topology encode differently")
	}
}

func TestLandmarkSampleIsEdgeIndependent(t *testing.T) {
	a := sampleLandmarks(500, 23, 42)
	b := sampleLandmarks(500, 23, 42)
	if len(a) != 23 {
		t.Fatalf("want 23 landmarks, got %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("landmark sample not deterministic")
		}
		if i > 0 && a[i] <= a[i-1] {
			t.Fatal("landmark sample not sorted/unique")
		}
	}
}

func TestLandmarkCodecRoundTrip(t *testing.T) {
	g, err := gengraph.SparseConnected(200, 6, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	s, ports := buildOn(t, g)
	enc := s.EncodeTables()
	dec, err := DecodeTables(g, ports, enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.EncodeTables(), enc) {
		t.Fatal("decode→encode is not byte-identical")
	}
	// The decoded scheme answers identically.
	for src := 1; src <= g.N(); src += 7 {
		for dst := 1; dst <= g.N(); dst += 11 {
			if src == dst {
				continue
			}
			if a, b := s.EstimateDist(src, dst), dec.EstimateDist(src, dst); a != b {
				t.Fatalf("EstimateDist(%d,%d) diverges after round-trip: %d vs %d", src, dst, a, b)
			}
		}
	}
	checkAllPairs(t, g, dec, ports)
}

// TestLandmarkCodecRejectsCorruption truncates the encoding at every length
// and flips a byte in every header field: all must be rejected, never decoded
// into a scheme with out-of-range tables.
func TestLandmarkCodecRejectsCorruption(t *testing.T) {
	g, err := gengraph.SparseConnected(48, 5, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	s, ports := buildOn(t, g)
	enc := s.EncodeTables()
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeTables(g, ports, enc[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", cut)
		}
	}
	for off := 0; off < tablesHdrLen; off++ {
		bad := append([]byte(nil), enc...)
		bad[off] ^= 0x40
		if _, err := DecodeTables(g, ports, bad); err == nil {
			// A header flip that survives must still decode to identical bytes
			// (e.g. flipping a padding-free field back is impossible here, so
			// any success is a validation hole).
			t.Fatalf("header byte %d flip decoded successfully", off)
		}
	}
}

func TestLandmarkDisconnectedRejected(t *testing.T) {
	g, err := graph.New(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(3, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(g, graph.SortedPorts(g), DefaultOptions()); err == nil {
		t.Fatal("disconnected graph built successfully")
	}
}

// TestLandmarkSpaceSublinear pins the o(n²) claim on the serving topology
// family: total cluster entries stay well under n²/4 and the landmark tables
// are Θ(n^{3/2}) fields.
func TestLandmarkSpaceSublinear(t *testing.T) {
	const n = 1024
	g, err := gengraph.SparseConnected(n, 8, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	s, _ := buildOn(t, g)
	if ct := s.TotalClusterEntries(); ct >= n*n/4 {
		t.Fatalf("cluster tables hold %d entries — not sublinear in n² = %d", ct, n*n)
	}
	if got := len(s.EncodeTables()); got >= n*n {
		t.Fatalf("encoded tables are %d bytes, ≥ n² = %d", got, n*n)
	}
}

func TestLandmarkRouteRejectsBadLabels(t *testing.T) {
	g, err := gengraph.GnHalf(32, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	s, _ := buildOn(t, g)
	env := fakeEnv{}
	if _, _, err := s.Route(1, env, routing.Label{ID: 2}, 0, 0); err == nil {
		t.Fatal("label without Aux accepted")
	}
	if _, _, err := s.Route(1, env, routing.Label{ID: 0, Aux: []int{1, 1}}, 0, 0); err == nil {
		t.Fatal("out-of-range destination accepted")
	}
	// A destination outside node 1's cluster whose label names a non-landmark
	// must be rejected, not misrouted.
	nonLM := 0
	for x := 2; x <= g.N(); x++ {
		if s.lmIdx[x] < 0 {
			nonLM = x
			break
		}
	}
	for v := 2; v <= g.N(); v++ {
		if s.clusterPortTo(1, v) != 0 && nonLM != 0 {
			continue
		}
		if nonLM == 0 {
			t.Skip("every node is a landmark on this graph")
		}
		if _, _, err := s.Route(1, env, routing.Label{ID: v, Aux: []int{nonLM, 1}}, 0, 0); err == nil {
			t.Fatal("label naming a non-landmark accepted")
		}
		break
	}
}

// fakeEnv grants nothing: the neighbour check always misses, forcing Route
// into its table cases.
type fakeEnv struct{}

func (fakeEnv) Node() int                                     { return 0 }
func (fakeEnv) Degree() int                                   { return 0 }
func (fakeEnv) NeighborLabelByPort(int) (routing.Label, bool) { return routing.Label{}, false }
func (fakeEnv) PortOfNeighbor(int) (int, bool)                { return 0, false }
func (fakeEnv) KnownNeighborIDs() ([]int, bool)               { return nil, false }
