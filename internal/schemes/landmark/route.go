//rt:hotpath — landmark lookup path: every function here runs inside the
// serving engine's zero-alloc batch loop (serve/hot.go) and must not
// allocate, format strings on success paths, or range over maps.

package landmark

import (
	"fmt"

	"routetab/internal/routing"
)

// Route implements routing.Scheme. Cases, in order:
//
//  1. dest is a neighbour — model-II check, exact;
//  2. dest is in u's cluster table — stored first hop, exact from here on;
//  3. u is dest's landmark — the label's eport points into dest's cluster;
//  4. forward toward dest's landmark via the landmark table.
//
// Cases 1–3 strictly decrease d(·, dest); case 4 strictly decreases
// d(·, ℓ(dest)) and can only repeat until the landmark (or dest's cluster) is
// reached, so routes are loop-free with stretch ≤ 3.
func (s *Scheme) Route(u int, env routing.Env, dest routing.Label, hdr uint64, _ int) (int, uint64, error) {
	v := dest.ID
	if u < 1 || u > s.n || v < 1 || v > s.n || len(dest.Aux) != 2 {
		return 0, 0, fmt.Errorf("%w: %d -> %v", routing.ErrBadDestination, u, dest.ID)
	}
	if s.owned != nil && !s.owned.Has(u) {
		// Restricted scheme: u's per-source tables were dropped. The serving
		// layer rejects non-owned sources before routing; this guard keeps a
		// mis-shard from silently forwarding on zeroed tables.
		return 0, 0, fmt.Errorf("%w: %d", ErrNotOwned, u)
	}
	if port, ok := env.PortOfNeighbor(v); ok {
		return port, hdr, nil
	}
	if port := s.clusterPortTo(u, v); port > 0 {
		return int(port), hdr, nil
	}
	lm := dest.Aux[0]
	if u == lm {
		// We are dest's landmark: eport is the first hop of a shortest path
		// toward dest, whose next node lies inside dest's cluster.
		return dest.Aux[1], hdr, nil
	}
	if lm < 1 || lm > s.n || s.lmIdx[lm] < 0 {
		return 0, 0, fmt.Errorf("%w: label names non-landmark %d", routing.ErrBadDestination, lm)
	}
	port := s.lmPort[(u-1)*s.k+int(s.lmIdx[lm])]
	if port <= 0 {
		return 0, 0, fmt.Errorf("%w: %d -> %d via landmark %d", routing.ErrNoRoute, u, v, lm)
	}
	return int(port), hdr, nil
}

// clusterPortTo binary-searches u's cluster row for destination v and returns
// the stored port, or 0 on a miss.
func (s *Scheme) clusterPortTo(u, v int) int32 {
	lo, hi := s.clusterStart[u-1], s.clusterStart[u]
	t := int32(v)
	for lo < hi {
		mid := int32(uint32(lo+hi) >> 1)
		if d := s.clusterDst[mid]; d == t {
			return s.clusterPort[mid]
		} else if d < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return 0
}

// clusterDistTo binary-searches u's cluster row for v's exact distance, or 0
// on a miss (stored entries always have distance ≥ 2).
func (s *Scheme) clusterDistTo(u, v int) int32 {
	lo, hi := s.clusterStart[u-1], s.clusterStart[u]
	t := int32(v)
	for lo < hi {
		mid := int32(uint32(lo+hi) >> 1)
		if d := s.clusterDst[mid]; d == t {
			return s.clusterDist[mid]
		} else if d < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return 0
}

// EstimateDist returns an upper bound on d(u, v) computable from the tables
// alone, allocation-free: exact on a cluster hit in either direction,
// otherwise the better of the two landmark detours (≤ 3·d(u,v) whenever
// neither node clusters the other; callers wanting d = 1 exact must check
// adjacency themselves — serve.Snapshot.DistEstimate does).
func (s *Scheme) EstimateDist(u, v int) int {
	if u == v {
		return 0
	}
	if u < 1 || u > s.n || v < 1 || v > s.n {
		return -1
	}
	if d := s.clusterDistTo(u, v); d > 0 {
		return int(d)
	}
	if d := s.clusterDistTo(v, u); d > 0 {
		return int(d)
	}
	est := s.lmDist[(u-1)*s.k+int(s.homeIdx[v])] + s.homeDist[v]
	if alt := s.lmDist[(v-1)*s.k+int(s.homeIdx[u])] + s.homeDist[u]; alt < est {
		est = alt
	}
	return int(est)
}
