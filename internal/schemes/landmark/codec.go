package landmark

import (
	"encoding/binary"
	"fmt"

	"routetab/internal/graph"
	"routetab/internal/keyspace"
)

// Table encoding ("LMTB", version 1), little-endian throughout. The layout is
// a pure function of the built tables — two identical builds encode
// byte-identically — and every multi-byte field is range-checked on decode:
//
//	u32 magic "LMTB"   u32 version=1   u32 n   u32 k   u32 clusterTotal
//	k   × u32 landmark ids (sorted ascending)
//	n   × u16 homeIdx    (index into landmarks of ℓ(v))
//	n   × u16 homeDist   (d(v, ℓ(v)))
//	n   × u16 eport      (port at ℓ(v) toward v; 0 when v is a landmark)
//	n·k × u16 lmDist     (row-major exact distances to every landmark)
//	n·k × u16 lmPort     (row-major first ports toward every landmark)
//	n+1 × u32 clusterStart (CSR offsets, clusterStart[0] = 0)
//	ct  × u32 clusterDst
//	ct  × u16 clusterPort
//	ct  × u16 clusterDist
//
// Distances and ports fit u16 because Build rejects n > 65535; the encoder
// re-checks anyway so a silent clamp is impossible.
//
// Version 2 is the keyspace-restricted flavour (restrict.go): after the
// shared 20-byte header it inserts
//
//	u32 ownedCount
//	⌈n/64⌉ × u64 owned bitmap (bit u−1 for node u; bits beyond n zero)
//
// and then ships the same sections except that lmPort rows appear only for
// owned nodes (ascending node order) and clusterTotal counts owned rows only
// (non-owned CSR rows must be empty). lmDist stays full — DistEstimate reads
// both endpoints' rows. The version field is the sniff: a version-1 decoder
// rejects restricted tables outright instead of misreading them.
const (
	tablesMagic    = 0x42544d4c // "LMTB" little-endian
	tablesVersion  = 1
	tablesVersion2 = 2
	tablesHdrLen   = 20
)

// EncodedTablesLen returns the byte length of the version-1 encoding for the
// given shape, shared by the encoder and the serving layer's arena sizing.
func EncodedTablesLen(n, k, clusterTotal int) int {
	return tablesHdrLen + 4*k + 6*n + 4*n*k + 4*(n+1) + 8*clusterTotal
}

// EncodedTablesLenV2 returns the byte length of the version-2 (restricted)
// encoding: full lmDist, lmPort rows for ownedCount nodes only.
func EncodedTablesLenV2(n, k, clusterTotal, ownedCount int) int {
	words := (n + 63) / 64
	return tablesHdrLen + 4 + 8*words + 4*k + 6*n + 2*n*k + 2*ownedCount*k + 4*(n+1) + 8*clusterTotal
}

// EncodeTables serialises the scheme's tables deterministically: version 1
// for an unrestricted scheme, version 2 (owned bitmap, owned-only lmPort rows)
// for a restricted one.
func (s *Scheme) EncodeTables() []byte {
	n, k, ct := s.n, s.k, len(s.clusterDst)
	var buf []byte
	le := binary.LittleEndian
	if s.owned != nil {
		oc := s.owned.Count()
		buf = make([]byte, EncodedTablesLenV2(n, k, ct, oc))
		le.PutUint32(buf[4:], tablesVersion2)
		le.PutUint32(buf[tablesHdrLen:], uint32(oc))
	} else {
		buf = make([]byte, EncodedTablesLen(n, k, ct))
		le.PutUint32(buf[4:], tablesVersion)
	}
	le.PutUint32(buf[0:], tablesMagic)
	le.PutUint32(buf[8:], uint32(n))
	le.PutUint32(buf[12:], uint32(k))
	le.PutUint32(buf[16:], uint32(ct))
	off := tablesHdrLen
	if s.owned != nil {
		off += 4
		for _, w := range s.owned.Words() {
			le.PutUint64(buf[off:], w)
			off += 8
		}
	}
	putU32 := func(vals []int32) {
		for _, v := range vals {
			le.PutUint32(buf[off:], uint32(v))
			off += 4
		}
	}
	putU16 := func(vals []int32) {
		for _, v := range vals {
			if v < 0 || v > 0xFFFF {
				panic(fmt.Sprintf("landmark: value %d overflows u16 field", v))
			}
			le.PutUint16(buf[off:], uint16(v))
			off += 2
		}
	}
	putU32(s.landmarks)
	putU16(s.homeIdx[1:])
	putU16(s.homeDist[1:])
	putU16(s.eport[1:])
	putU16(s.lmDist)
	if s.owned != nil {
		for u := 1; u <= n; u++ {
			if s.owned.Has(u) {
				putU16(s.lmPort[(u-1)*k : u*k])
			}
		}
	} else {
		putU16(s.lmPort)
	}
	putU32(s.clusterStart)
	putU32(s.clusterDst)
	putU16(s.clusterPort)
	putU16(s.clusterDist)
	if off != len(buf) {
		panic("landmark: encode length mismatch")
	}
	return buf
}

// DecodeTables reconstructs a scheme from an encoding produced by
// EncodeTables against the same topology. Every field is validated: shapes,
// landmark ordering, index/distance ranges, port numbers against the actual
// degrees, CSR monotonicity, and per-row destination ordering — corrupt or
// foreign input yields ErrBadTables, never a scheme with out-of-range tables.
func DecodeTables(g *graph.Graph, ports *graph.Ports, data []byte) (*Scheme, error) {
	le := binary.LittleEndian
	if len(data) < tablesHdrLen {
		return nil, fmt.Errorf("%w: %d bytes < header", ErrBadTables, len(data))
	}
	if m := le.Uint32(data[0:]); m != tablesMagic {
		return nil, fmt.Errorf("%w: bad magic %08x", ErrBadTables, m)
	}
	version := le.Uint32(data[4:])
	if version != tablesVersion && version != tablesVersion2 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTables, version)
	}
	n := int(le.Uint32(data[8:]))
	k := int(le.Uint32(data[12:]))
	ct := int(le.Uint32(data[16:]))
	if n != g.N() {
		return nil, fmt.Errorf("%w: tables for n=%d, graph has n=%d", ErrBadTables, n, g.N())
	}
	if n < 1 || n > 65535 || k < 1 || k > n || ct < 0 {
		return nil, fmt.Errorf("%w: shape n=%d k=%d ct=%d", ErrBadTables, n, k, ct)
	}
	var owned *keyspace.Set
	if version == tablesVersion2 {
		// The owned section (count + bitmap) sits between the header and the
		// landmark list; the total-length check needs the count first.
		if len(data) < tablesHdrLen+4 {
			return nil, fmt.Errorf("%w: %d bytes < restricted header", ErrBadTables, len(data))
		}
		oc := int(le.Uint32(data[tablesHdrLen:]))
		if oc < 1 || oc > n {
			return nil, fmt.Errorf("%w: ownedCount %d out of 1..%d", ErrBadTables, oc, n)
		}
		if want := EncodedTablesLenV2(n, k, ct, oc); len(data) != want {
			return nil, fmt.Errorf("%w: %d bytes, want %d (v2)", ErrBadTables, len(data), want)
		}
		words := make([]uint64, (n+63)/64)
		for i := range words {
			words[i] = le.Uint64(data[tablesHdrLen+4+8*i:])
		}
		set, err := keyspace.FromWords(n, words)
		if err != nil {
			return nil, fmt.Errorf("%w: owned bitmap: %v", ErrBadTables, err)
		}
		if set.Count() != oc {
			return nil, fmt.Errorf("%w: owned bitmap popcount %d != ownedCount %d", ErrBadTables, set.Count(), oc)
		}
		owned = set
	} else if want := EncodedTablesLen(n, k, ct); len(data) != want {
		return nil, fmt.Errorf("%w: %d bytes, want %d", ErrBadTables, len(data), want)
	}
	if err := ports.Validate(g); err != nil {
		return nil, fmt.Errorf("landmark: %w", err)
	}
	s := &Scheme{
		n:            n,
		k:            k,
		landmarks:    make([]int32, k),
		homeIdx:      make([]int32, n+1),
		homeDist:     make([]int32, n+1),
		eport:        make([]int32, n+1),
		lmIdx:        make([]int32, n+1),
		lmPort:       make([]int32, n*k),
		lmDist:       make([]int32, n*k),
		clusterStart: make([]int32, n+1),
		clusterDst:   make([]int32, ct),
		clusterPort:  make([]int32, ct),
		clusterDist:  make([]int32, ct),
		owned:        owned,
	}
	off := tablesHdrLen
	if owned != nil {
		off += 4 + 8*len(owned.Words())
	}
	getU32 := func(dst []int32) {
		for i := range dst {
			dst[i] = int32(le.Uint32(data[off:]))
			off += 4
		}
	}
	getU16 := func(dst []int32) {
		for i := range dst {
			dst[i] = int32(le.Uint16(data[off:]))
			off += 2
		}
	}
	getU32(s.landmarks)
	getU16(s.homeIdx[1:])
	getU16(s.homeDist[1:])
	getU16(s.eport[1:])
	getU16(s.lmDist)
	if owned != nil {
		// lmPort rows are shipped for owned nodes only; non-owned rows stay
		// zero, matching what Restrict produced on the encoder side.
		for u := 1; u <= n; u++ {
			if owned.Has(u) {
				getU16(s.lmPort[(u-1)*k : u*k])
			}
		}
	} else {
		getU16(s.lmPort)
	}
	getU32(s.clusterStart)
	getU32(s.clusterDst)
	getU16(s.clusterPort)
	getU16(s.clusterDist)

	for v := range s.lmIdx {
		s.lmIdx[v] = -1
	}
	for j, a := range s.landmarks {
		if a < 1 || int(a) > n || (j > 0 && a <= s.landmarks[j-1]) {
			return nil, fmt.Errorf("%w: landmark list not sorted in range", ErrBadTables)
		}
		s.lmIdx[a] = int32(j)
	}
	for v := 1; v <= n; v++ {
		if s.homeIdx[v] >= int32(k) {
			return nil, fmt.Errorf("%w: homeIdx[%d] = %d ≥ k", ErrBadTables, v, s.homeIdx[v])
		}
		if s.homeDist[v] != s.lmDist[(v-1)*k+int(s.homeIdx[v])] {
			return nil, fmt.Errorf("%w: homeDist[%d] inconsistent with landmark row", ErrBadTables, v)
		}
		home := s.landmarks[s.homeIdx[v]]
		deg := int32(ports.Degree(int(home)))
		if int32(v) == home {
			if s.eport[v] != 0 || s.homeDist[v] != 0 {
				return nil, fmt.Errorf("%w: landmark %d has nonzero home fields", ErrBadTables, v)
			}
		} else if s.eport[v] < 1 || s.eport[v] > deg {
			return nil, fmt.Errorf("%w: eport[%d] = %d out of degree %d", ErrBadTables, v, s.eport[v], deg)
		}
	}
	for u := 1; u <= n; u++ {
		deg := int32(ports.Degree(u))
		hasPorts := owned == nil || owned.Has(u)
		for j := 0; j < k; j++ {
			at := (u-1)*k + j
			if int32(u) == s.landmarks[j] {
				if s.lmPort[at] != 0 || s.lmDist[at] != 0 {
					return nil, fmt.Errorf("%w: node %d self-landmark row nonzero", ErrBadTables, u)
				}
			} else if s.lmDist[at] < 1 || int(s.lmDist[at]) >= n {
				return nil, fmt.Errorf("%w: landmark row (%d,%d) dist=%d", ErrBadTables, u, j, s.lmDist[at])
			} else if hasPorts && (s.lmPort[at] < 1 || s.lmPort[at] > deg) {
				return nil, fmt.Errorf("%w: landmark row (%d,%d) port=%d out of degree %d", ErrBadTables, u, j, s.lmPort[at], deg)
			}
		}
	}
	if s.clusterStart[0] != 0 || s.clusterStart[n] != int32(ct) {
		return nil, fmt.Errorf("%w: cluster CSR endpoints", ErrBadTables)
	}
	for u := 1; u <= n; u++ {
		lo, hi := s.clusterStart[u-1], s.clusterStart[u]
		if lo > hi {
			return nil, fmt.Errorf("%w: cluster CSR not monotone at %d", ErrBadTables, u)
		}
		if owned != nil && !owned.Has(u) && lo != hi {
			return nil, fmt.Errorf("%w: non-owned node %d has %d cluster entries", ErrBadTables, u, hi-lo)
		}
		deg := int32(ports.Degree(u))
		for i := lo; i < hi; i++ {
			v := s.clusterDst[i]
			if v < 1 || int(v) > n || (i > lo && v <= s.clusterDst[i-1]) {
				return nil, fmt.Errorf("%w: cluster row %d destinations unsorted", ErrBadTables, u)
			}
			if s.clusterPort[i] < 1 || s.clusterPort[i] > deg || s.clusterDist[i] < 2 || int(s.clusterDist[i]) >= n {
				return nil, fmt.Errorf("%w: cluster entry (%d,%d) port=%d dist=%d", ErrBadTables, u, v, s.clusterPort[i], s.clusterDist[i])
			}
		}
	}
	s.buildLabels()
	return s, nil
}
