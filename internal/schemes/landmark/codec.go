package landmark

import (
	"encoding/binary"
	"fmt"

	"routetab/internal/graph"
)

// Table encoding ("LMTB", version 1), little-endian throughout. The layout is
// a pure function of the built tables — two identical builds encode
// byte-identically — and every multi-byte field is range-checked on decode:
//
//	u32 magic "LMTB"   u32 version=1   u32 n   u32 k   u32 clusterTotal
//	k   × u32 landmark ids (sorted ascending)
//	n   × u16 homeIdx    (index into landmarks of ℓ(v))
//	n   × u16 homeDist   (d(v, ℓ(v)))
//	n   × u16 eport      (port at ℓ(v) toward v; 0 when v is a landmark)
//	n·k × u16 lmDist     (row-major exact distances to every landmark)
//	n·k × u16 lmPort     (row-major first ports toward every landmark)
//	n+1 × u32 clusterStart (CSR offsets, clusterStart[0] = 0)
//	ct  × u32 clusterDst
//	ct  × u16 clusterPort
//	ct  × u16 clusterDist
//
// Distances and ports fit u16 because Build rejects n > 65535; the encoder
// re-checks anyway so a silent clamp is impossible.
const (
	tablesMagic   = 0x42544d4c // "LMTB" little-endian
	tablesVersion = 1
	tablesHdrLen  = 20
)

// EncodedTablesLen returns the byte length of the encoding for the given
// shape, shared by the encoder and the serving layer's arena sizing.
func EncodedTablesLen(n, k, clusterTotal int) int {
	return tablesHdrLen + 4*k + 6*n + 4*n*k + 4*(n+1) + 8*clusterTotal
}

// EncodeTables serialises the scheme's tables deterministically.
func (s *Scheme) EncodeTables() []byte {
	n, k, ct := s.n, s.k, len(s.clusterDst)
	buf := make([]byte, EncodedTablesLen(n, k, ct))
	le := binary.LittleEndian
	le.PutUint32(buf[0:], tablesMagic)
	le.PutUint32(buf[4:], tablesVersion)
	le.PutUint32(buf[8:], uint32(n))
	le.PutUint32(buf[12:], uint32(k))
	le.PutUint32(buf[16:], uint32(ct))
	off := tablesHdrLen
	putU32 := func(vals []int32) {
		for _, v := range vals {
			le.PutUint32(buf[off:], uint32(v))
			off += 4
		}
	}
	putU16 := func(vals []int32) {
		for _, v := range vals {
			if v < 0 || v > 0xFFFF {
				panic(fmt.Sprintf("landmark: value %d overflows u16 field", v))
			}
			le.PutUint16(buf[off:], uint16(v))
			off += 2
		}
	}
	putU32(s.landmarks)
	putU16(s.homeIdx[1:])
	putU16(s.homeDist[1:])
	putU16(s.eport[1:])
	putU16(s.lmDist)
	putU16(s.lmPort)
	putU32(s.clusterStart)
	putU32(s.clusterDst)
	putU16(s.clusterPort)
	putU16(s.clusterDist)
	if off != len(buf) {
		panic("landmark: encode length mismatch")
	}
	return buf
}

// DecodeTables reconstructs a scheme from an encoding produced by
// EncodeTables against the same topology. Every field is validated: shapes,
// landmark ordering, index/distance ranges, port numbers against the actual
// degrees, CSR monotonicity, and per-row destination ordering — corrupt or
// foreign input yields ErrBadTables, never a scheme with out-of-range tables.
func DecodeTables(g *graph.Graph, ports *graph.Ports, data []byte) (*Scheme, error) {
	le := binary.LittleEndian
	if len(data) < tablesHdrLen {
		return nil, fmt.Errorf("%w: %d bytes < header", ErrBadTables, len(data))
	}
	if m := le.Uint32(data[0:]); m != tablesMagic {
		return nil, fmt.Errorf("%w: bad magic %08x", ErrBadTables, m)
	}
	if v := le.Uint32(data[4:]); v != tablesVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTables, v)
	}
	n := int(le.Uint32(data[8:]))
	k := int(le.Uint32(data[12:]))
	ct := int(le.Uint32(data[16:]))
	if n != g.N() {
		return nil, fmt.Errorf("%w: tables for n=%d, graph has n=%d", ErrBadTables, n, g.N())
	}
	if n < 1 || n > 65535 || k < 1 || k > n || ct < 0 {
		return nil, fmt.Errorf("%w: shape n=%d k=%d ct=%d", ErrBadTables, n, k, ct)
	}
	if want := EncodedTablesLen(n, k, ct); len(data) != want {
		return nil, fmt.Errorf("%w: %d bytes, want %d", ErrBadTables, len(data), want)
	}
	if err := ports.Validate(g); err != nil {
		return nil, fmt.Errorf("landmark: %w", err)
	}
	s := &Scheme{
		n:            n,
		k:            k,
		landmarks:    make([]int32, k),
		homeIdx:      make([]int32, n+1),
		homeDist:     make([]int32, n+1),
		eport:        make([]int32, n+1),
		lmIdx:        make([]int32, n+1),
		lmPort:       make([]int32, n*k),
		lmDist:       make([]int32, n*k),
		clusterStart: make([]int32, n+1),
		clusterDst:   make([]int32, ct),
		clusterPort:  make([]int32, ct),
		clusterDist:  make([]int32, ct),
	}
	off := tablesHdrLen
	getU32 := func(dst []int32) {
		for i := range dst {
			dst[i] = int32(le.Uint32(data[off:]))
			off += 4
		}
	}
	getU16 := func(dst []int32) {
		for i := range dst {
			dst[i] = int32(le.Uint16(data[off:]))
			off += 2
		}
	}
	getU32(s.landmarks)
	getU16(s.homeIdx[1:])
	getU16(s.homeDist[1:])
	getU16(s.eport[1:])
	getU16(s.lmDist)
	getU16(s.lmPort)
	getU32(s.clusterStart)
	getU32(s.clusterDst)
	getU16(s.clusterPort)
	getU16(s.clusterDist)

	for v := range s.lmIdx {
		s.lmIdx[v] = -1
	}
	for j, a := range s.landmarks {
		if a < 1 || int(a) > n || (j > 0 && a <= s.landmarks[j-1]) {
			return nil, fmt.Errorf("%w: landmark list not sorted in range", ErrBadTables)
		}
		s.lmIdx[a] = int32(j)
	}
	for v := 1; v <= n; v++ {
		if s.homeIdx[v] >= int32(k) {
			return nil, fmt.Errorf("%w: homeIdx[%d] = %d ≥ k", ErrBadTables, v, s.homeIdx[v])
		}
		if s.homeDist[v] != s.lmDist[(v-1)*k+int(s.homeIdx[v])] {
			return nil, fmt.Errorf("%w: homeDist[%d] inconsistent with landmark row", ErrBadTables, v)
		}
		home := s.landmarks[s.homeIdx[v]]
		deg := int32(ports.Degree(int(home)))
		if int32(v) == home {
			if s.eport[v] != 0 || s.homeDist[v] != 0 {
				return nil, fmt.Errorf("%w: landmark %d has nonzero home fields", ErrBadTables, v)
			}
		} else if s.eport[v] < 1 || s.eport[v] > deg {
			return nil, fmt.Errorf("%w: eport[%d] = %d out of degree %d", ErrBadTables, v, s.eport[v], deg)
		}
	}
	for u := 1; u <= n; u++ {
		deg := int32(ports.Degree(u))
		for j := 0; j < k; j++ {
			at := (u-1)*k + j
			if int32(u) == s.landmarks[j] {
				if s.lmPort[at] != 0 || s.lmDist[at] != 0 {
					return nil, fmt.Errorf("%w: node %d self-landmark row nonzero", ErrBadTables, u)
				}
			} else if s.lmPort[at] < 1 || s.lmPort[at] > deg || s.lmDist[at] < 1 || int(s.lmDist[at]) >= n {
				return nil, fmt.Errorf("%w: landmark row (%d,%d) port=%d dist=%d", ErrBadTables, u, j, s.lmPort[at], s.lmDist[at])
			}
		}
	}
	if s.clusterStart[0] != 0 || s.clusterStart[n] != int32(ct) {
		return nil, fmt.Errorf("%w: cluster CSR endpoints", ErrBadTables)
	}
	for u := 1; u <= n; u++ {
		lo, hi := s.clusterStart[u-1], s.clusterStart[u]
		if lo > hi {
			return nil, fmt.Errorf("%w: cluster CSR not monotone at %d", ErrBadTables, u)
		}
		deg := int32(ports.Degree(u))
		for i := lo; i < hi; i++ {
			v := s.clusterDst[i]
			if v < 1 || int(v) > n || (i > lo && v <= s.clusterDst[i-1]) {
				return nil, fmt.Errorf("%w: cluster row %d destinations unsorted", ErrBadTables, u)
			}
			if s.clusterPort[i] < 1 || s.clusterPort[i] > deg || s.clusterDist[i] < 2 || int(s.clusterDist[i]) >= n {
				return nil, fmt.Errorf("%w: cluster entry (%d,%d) port=%d dist=%d", ErrBadTables, u, v, s.clusterPort[i], s.clusterDist[i])
			}
		}
	}
	s.buildLabels()
	return s, nil
}
