// Keyspace restriction: a shard group serves lookups only for sources it
// owns, so its tables need only those sources' per-source rows. Restrict
// drops, for every non-owned node u, the landmark-port row (the first hops u
// would forward on) and the entire cluster CSR row — together the dominant
// space terms, Θ(n·k + n²/k) of the full encoding. What stays global is
// everything a route *toward* any destination needs: the landmark list, every
// node's label fields (home landmark, home distance, eport), and the full
// lmDist matrix, which DistEstimate reads for both endpoints of a pair.
//
// The stretch-3 estimate bound survives restriction for owned sources: a
// cluster miss at an owned u still implies d(u,v) ≥ homeDist(v), so the
// landmark detour lmDist[u][ℓ(v)] + homeDist(v) ≤ 3·d(u,v). Estimates *from*
// non-owned sources (the degraded-detour neighbour scan) lose the cluster
// exactness and may exceed the bound — they steer detour choice, never a
// graded answer, and the serving layer rejects non-owned sources up front.
package landmark

import (
	"errors"
	"fmt"

	"routetab/internal/keyspace"
)

// ErrNotOwned reports a routing decision requested from a source node whose
// per-source tables were dropped by Restrict.
var ErrNotOwned = errors.New("landmark: source outside owned keyspace")

// Owned returns the scheme's owned-source set, or nil when the scheme holds
// every node's tables (an unrestricted build or a version-1 decode).
func (s *Scheme) Owned() *keyspace.Set { return s.owned }

// Restrict drops the per-source tables (landmark-port row and cluster row) of
// every node outside owned, in place. It applies to a freshly built,
// unrestricted scheme exactly once — re-restricting a restricted scheme would
// silently compound ownership, so it errors instead. The result is a pure
// function of (built scheme, owned): two members of the same group restrict
// identical builds to byte-identical encodings.
func (s *Scheme) Restrict(owned *keyspace.Set) error {
	if s.owned != nil {
		return fmt.Errorf("landmark: scheme already restricted to %v", s.owned)
	}
	if owned == nil {
		return fmt.Errorf("landmark: restrict to nil owned set")
	}
	if owned.N() != s.n {
		return fmt.Errorf("landmark: owned set over n=%d, scheme has n=%d", owned.N(), s.n)
	}
	if owned.Count() == 0 {
		return fmt.Errorf("landmark: owned set is empty")
	}
	for u := 1; u <= s.n; u++ {
		if owned.Has(u) {
			continue
		}
		row := s.lmPort[(u-1)*s.k : u*s.k]
		for i := range row {
			row[i] = 0
		}
	}
	// Rebuild the cluster CSR keeping only owned rows; entry order within a
	// row is unchanged, so the result is deterministic.
	ct := 0
	for u := 1; u <= s.n; u++ {
		if owned.Has(u) {
			ct += int(s.clusterStart[u] - s.clusterStart[u-1])
		}
	}
	dst := make([]int32, 0, ct)
	port := make([]int32, 0, ct)
	dist := make([]int32, 0, ct)
	start := make([]int32, s.n+1)
	for u := 1; u <= s.n; u++ {
		if owned.Has(u) {
			lo, hi := s.clusterStart[u-1], s.clusterStart[u]
			dst = append(dst, s.clusterDst[lo:hi]...)
			port = append(port, s.clusterPort[lo:hi]...)
			dist = append(dist, s.clusterDist[lo:hi]...)
		}
		start[u] = int32(len(dst))
	}
	s.clusterStart, s.clusterDst, s.clusterPort, s.clusterDist = start, dst, port, dist
	s.owned = owned.Clone()
	return nil
}
