package compact

import (
	"errors"
	"fmt"

	"routetab/internal/bitio"
	"routetab/internal/graph"
)

// ErrBadBlob indicates a malformed marshalled scheme.
var ErrBadBlob = errors.New("compact: malformed scheme blob")

// Marshal serialises the scheme into a self-contained byte blob: a header
// (magic, n, options) followed by each node's exact bit encoding, length-
// prefixed. The payload bits are identical to what FunctionBits charges —
// the marshalled size is the scheme's true storage cost plus O(n) framing.
func (s *Scheme) Marshal() ([]byte, error) {
	w := bitio.NewWriter(8 * s.n)
	if err := w.WriteBits(magic, 16); err != nil {
		return nil, err
	}
	if err := w.WriteShortSelfDelimiting(uint64(s.n)); err != nil {
		return nil, err
	}
	if err := w.WriteBits(uint64(s.opts.Mode), 4); err != nil {
		return nil, err
	}
	if err := w.WriteBits(uint64(s.opts.Strategy), 4); err != nil {
		return nil, err
	}
	if err := w.WriteBits(uint64(s.opts.Threshold), 4); err != nil {
		return nil, err
	}
	for u := 1; u <= s.n; u++ {
		enc := s.nodes[u].enc
		if err := w.WriteShortSelfDelimiting(uint64(enc.Len())); err != nil {
			return nil, err
		}
		r := bitio.ReaderFor(enc)
		for r.Remaining() > 0 {
			b, err := r.ReadBit()
			if err != nil {
				return nil, err
			}
			w.WriteBit(b)
		}
	}
	// Trailing bit count so Unmarshal knows where the stream ends.
	out := w.Bytes()
	return append(out, byte(w.Len()%8)), nil
}

const magic = 0xC0DE

// Unmarshal reconstructs a scheme from a Marshal blob and the graph it was
// built for. The graph supplies the neighbour knowledge the model II/IB
// decoder needs; a mismatched graph is detected by the per-node decoders.
func Unmarshal(blob []byte, g *graph.Graph) (*Scheme, error) {
	if len(blob) < 2 {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadBlob, len(blob))
	}
	trailer := int(blob[len(blob)-1])
	body := blob[:len(blob)-1]
	nbits := len(body) * 8
	if trailer > 0 {
		if trailer > 7 {
			return nil, fmt.Errorf("%w: trailer %d", ErrBadBlob, trailer)
		}
		nbits = nbits - 8 + trailer
	}
	r, err := bitio.NewReader(body, nbits)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadBlob, err)
	}
	m, err := r.ReadBits(16)
	if err != nil || m != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadBlob)
	}
	n64, err := r.ReadShortSelfDelimiting()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadBlob, err)
	}
	n := int(n64)
	if n != g.N() {
		return nil, fmt.Errorf("%w: blob for n=%d, graph n=%d", ErrBadBlob, n, g.N())
	}
	var opts Options
	if v, err := r.ReadBits(4); err == nil {
		opts.Mode = Mode(v)
	} else {
		return nil, fmt.Errorf("%w: %v", ErrBadBlob, err)
	}
	if v, err := r.ReadBits(4); err == nil {
		opts.Strategy = Strategy(v)
	} else {
		return nil, fmt.Errorf("%w: %v", ErrBadBlob, err)
	}
	if v, err := r.ReadBits(4); err == nil {
		opts.Threshold = Threshold(v)
	} else {
		return nil, fmt.Errorf("%w: %v", ErrBadBlob, err)
	}
	if err := opts.validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadBlob, err)
	}

	s := &Scheme{n: n, opts: opts, nodes: make([]*nodeData, n+1)}
	for u := 1; u <= n; u++ {
		sz64, err := r.ReadShortSelfDelimiting()
		if err != nil {
			return nil, fmt.Errorf("%w: node %d length: %v", ErrBadBlob, u, err)
		}
		enc := bitio.NewWriter(int(sz64))
		for i := uint64(0); i < sz64; i++ {
			b, err := r.ReadBit()
			if err != nil {
				return nil, fmt.Errorf("%w: node %d payload: %v", ErrBadBlob, u, err)
			}
			enc.WriteBit(b)
		}
		inter, cover, err := DecodeNode(enc, u, n, g.Neighbors(u), opts)
		if err != nil {
			return nil, fmt.Errorf("compact: unmarshal node %d: %w", u, err)
		}
		nd := &nodeData{enc: enc, cover: cover, inter: inter}
		if opts.Mode == ModeIB {
			nb := g.Neighbors(u)
			nd.isNb = make([]bool, n+1)
			nd.rank = make([]uint16, n+1)
			for i, v := range nb {
				nd.isNb[v] = true
				nd.rank[v] = uint16(i + 1)
			}
		}
		s.nodes[u] = nd
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d unconsumed bits", ErrBadBlob, r.Remaining())
	}
	return s, nil
}
