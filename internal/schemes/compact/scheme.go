package compact

import (
	"fmt"

	"routetab/internal/bitio"
	"routetab/internal/models"
	"routetab/internal/routing"
)

var _ routing.Scheme = (*Scheme)(nil)

// Name implements routing.Scheme.
func (s *Scheme) Name() string {
	return fmt.Sprintf("theorem1-compact(%s,%s,%s)", s.opts.modeName(), s.opts.strategyName(), s.opts.thresholdName())
}

func (o Options) modeName() string {
	if o.Mode == ModeIB {
		return "IB"
	}
	return "II"
}

func (o Options) strategyName() string {
	if o.Strategy == Greedy {
		return "greedy"
	}
	return "least-first"
}

func (o Options) thresholdName() string {
	if o.Threshold == ThresholdLog {
		return "n/log n"
	}
	return "n/loglog n"
}

// N implements routing.Scheme.
func (s *Scheme) N() int { return s.n }

// Options returns the build options.
func (s *Scheme) Options() Options { return s.opts }

// Requirements implements routing.Scheme: Theorem 1 needs IB ∨ II; the built
// instance commits to one of the two.
func (s *Scheme) Requirements() models.Requirements {
	if s.opts.Mode == ModeIB {
		return models.Requirements{FreePorts: true}
	}
	return models.Requirements{NeighborsKnown: true}
}

// Label implements routing.Scheme: no relabelling (the theorem holds under α).
func (s *Scheme) Label(u int) routing.Label { return routing.Label{ID: u} }

// LabelBits implements routing.Scheme.
func (s *Scheme) LabelBits(int) int { return 0 }

// FunctionBits implements routing.Scheme: the exact encoded size, including
// the self-stored neighbour vector under IB.
func (s *Scheme) FunctionBits(u int) int {
	if u < 1 || u > s.n {
		return 0
	}
	return s.nodes[u].enc.Len()
}

// Stats returns the per-node construction statistics.
func (s *Scheme) Stats(u int) (NodeStats, error) {
	if u < 1 || u > s.n {
		return NodeStats{}, fmt.Errorf("compact: node %d out of range", u)
	}
	return s.nodes[u].stats, nil
}

// Encoded returns node u's exact bit encoding (round-trip tests).
func (s *Scheme) Encoded(u int) (*bitio.Writer, error) {
	if u < 1 || u > s.n {
		return nil, fmt.Errorf("compact: node %d out of range", u)
	}
	return s.nodes[u].enc, nil
}

// Route implements routing.Scheme.
//
// Under II the direct-neighbour check and the index→label resolution use the
// environment's free neighbour knowledge; under IB they use the self-stored
// neighbour vector plus the sorted-port convention (the i-th smallest
// neighbour sits behind port i).
func (s *Scheme) Route(u int, env routing.Env, dest routing.Label, hdr uint64, _ int) (int, uint64, error) {
	if u < 1 || u > s.n || dest.ID < 1 || dest.ID > s.n {
		return 0, 0, fmt.Errorf("%w: %d→%d", routing.ErrNoRoute, u, dest.ID)
	}
	nd := s.nodes[u]
	if s.opts.Mode == ModeIB {
		if nd.isNb[dest.ID] {
			return int(nd.rank[dest.ID]), hdr, nil
		}
		idx := nd.inter[dest.ID]
		if idx == 0 {
			return 0, 0, fmt.Errorf("%w: %d→%d", routing.ErrNoRoute, u, dest.ID)
		}
		v := nd.cover[idx-1]
		return int(nd.rank[v]), hdr, nil
	}
	if port, ok := env.PortOfNeighbor(dest.ID); ok {
		return port, hdr, nil
	}
	idx := nd.inter[dest.ID]
	if idx == 0 {
		return 0, 0, fmt.Errorf("%w: %d→%d", routing.ErrNoRoute, u, dest.ID)
	}
	v := nd.cover[idx-1]
	port, ok := env.PortOfNeighbor(v)
	if !ok {
		return 0, 0, fmt.Errorf("%w: intermediate %d not resolvable at %d", routing.ErrNoRoute, v, u)
	}
	return port, hdr, nil
}
