package compact

import (
	"errors"
	"testing"

	"routetab/internal/graph"
	"routetab/internal/routing"
	"routetab/internal/shortestpath"
)

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	g := randomGraph(t, 48, 41)
	for _, opts := range []Options{
		DefaultOptions(),
		{Mode: ModeIB, Strategy: LeastFirst, Threshold: ThresholdLogLog},
		{Mode: ModeII, Strategy: Greedy, Threshold: ThresholdLog},
	} {
		s, err := Build(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := s.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		back, err := Unmarshal(blob, g)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if back.Options() != opts || back.N() != 48 {
			t.Fatalf("metadata changed: %+v", back.Options())
		}
		// Behavioural equality: the reloaded scheme routes identically.
		ports := graph.SortedPorts(g)
		sim, err := routing.NewSim(g, ports, back)
		if err != nil {
			t.Fatal(err)
		}
		dm, err := shortestpath.AllPairs(g)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := routing.VerifyAll(sim, dm, 16)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.AllDelivered() || rep.MaxStretch != 1 {
			t.Fatalf("%s reloaded: %s %v", s.Name(), rep, rep.Failures)
		}
		// Byte-exact size accounting survives.
		for u := 1; u <= 48; u++ {
			if back.FunctionBits(u) != s.FunctionBits(u) {
				t.Fatalf("node %d: bits %d → %d", u, s.FunctionBits(u), back.FunctionBits(u))
			}
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	g := randomGraph(t, 20, 42)
	s, err := Build(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       nil,
		"one byte":    {0x01},
		"bad magic":   append([]byte{0xFF, 0xFF}, blob[2:]...),
		"truncated":   blob[:len(blob)/2],
		"bad trailer": append(append([]byte{}, blob[:len(blob)-1]...), 9),
	}
	for name, data := range cases {
		if _, err := Unmarshal(data, g); !errors.Is(err, ErrBadBlob) {
			t.Errorf("%s: err = %v, want ErrBadBlob", name, err)
		}
	}
	// Wrong graph size.
	g2 := randomGraph(t, 21, 43)
	if _, err := Unmarshal(blob, g2); !errors.Is(err, ErrBadBlob) {
		t.Errorf("size mismatch: err = %v", err)
	}
}

func TestMarshalSizeIsTight(t *testing.T) {
	// The blob must not exceed the charged bits by more than the per-node
	// length prefixes and the small header.
	g := randomGraph(t, 64, 44)
	s, err := Build(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for u := 1; u <= 64; u++ {
		total += s.FunctionBits(u)
	}
	blob, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	overheadBits := len(blob)*8 - total
	if overheadBits > 64*32+64 {
		t.Fatalf("framing overhead %d bits for n=64", overheadBits)
	}
}
