// Package compact implements the Theorem 1 routing scheme: shortest-path
// routing on Kolmogorov random graphs with O(n) bits per node — 6n in the
// paper's accounting — valid when the port assignment may be chosen (IB) or
// neighbours are known (II).
//
// Construction (paper, proof of Theorem 1). Fix a node u and let A₀ be the
// nodes not adjacent to u. Pick intermediate nodes v₁, v₂, … among u's
// neighbours (Claim 1/Lemma 3 guarantee O(log n) suffice); A_t is the set of
// still-uncovered nodes adjacent to v_t. Two tables encode the intermediate
// choice for every w ∈ A₀, in increasing order of w:
//
//   - table 1 (unary): while the remaining mass m_t exceeds the threshold
//     (n/loglog n, or n/log n for the tighter 3n-bit variant), w ∈ A_t is
//     coded as 1^t 0; nodes deferred to table 2 are coded as a single 0.
//     Claim 1's geometric decay bounds this table by 4n bits.
//   - table 2 (fixed width): for each deferred node, the ⌈log(m+1)⌉-bit
//     index of a covering intermediate among v₁,…,v_m — at most
//     2n bits because fewer than n/loglog n nodes remain.
//
// Routing u→w: direct neighbours are routed without the table (they are known
// under II, or recoverable from the self-stored neighbour vector under IB
// with sorted ports); otherwise the table yields v_t and w is one hop behind
// it (random graphs have diameter 2, Lemma 2).
package compact

import (
	"errors"
	"fmt"
	"math"

	"routetab/internal/bitio"
	"routetab/internal/graph"
)

// Errors.
var (
	// ErrNotCoverable indicates some node is at distance > 2 from some u, so
	// the diameter-2 construction cannot apply (the graph is not random
	// enough; certify with internal/kolmo first).
	ErrNotCoverable = errors.New("compact: node not coverable through neighbours (distance > 2)")
	// ErrBadOption indicates an invalid Options combination.
	ErrBadOption = errors.New("compact: bad option")
)

// Mode selects which half of Theorem 1's "IB ∨ II" precondition the scheme
// relies on.
type Mode int

const (
	// ModeII assumes neighbours are known (model II): direct routes and
	// intermediate-index resolution use the free neighbour knowledge.
	ModeII Mode = iota + 1
	// ModeIB assumes the port assignment was chosen (model IB): the scheme
	// stores each node's neighbour vector (n−1 bits, charged) and relies on
	// sorted ports — the i-th smallest neighbour behind port i.
	ModeIB
)

// Strategy selects how intermediates are chosen.
type Strategy int

const (
	// LeastFirst is the paper's choice: v_i is the i-th least neighbour of
	// u (Lemma 3). The cover list is implicit, costing no storage.
	LeastFirst Strategy = iota + 1
	// Greedy picks the neighbour covering the most uncovered nodes at each
	// step — smaller tables, but the cover list must be stored explicitly
	// (the DESIGN.md ablation).
	Greedy
)

// Threshold selects when table 1 stops and defers to table 2.
type Threshold int

const (
	// ThresholdLogLog defers once fewer than n/loglog n nodes remain (the
	// paper's 6n-bit accounting).
	ThresholdLogLog Threshold = iota + 1
	// ThresholdLog defers once fewer than n/log n remain (the paper's
	// closing remark: "choosing l such that m_l is the first quantity
	// < n/log n shows |F(u)| < 3n").
	ThresholdLog
)

// Options configures Build.
type Options struct {
	Mode      Mode
	Strategy  Strategy
	Threshold Threshold
}

// DefaultOptions is the paper's construction under model II.
func DefaultOptions() Options {
	return Options{Mode: ModeII, Strategy: LeastFirst, Threshold: ThresholdLogLog}
}

func (o Options) validate() error {
	if o.Mode != ModeII && o.Mode != ModeIB {
		return fmt.Errorf("%w: mode %d", ErrBadOption, o.Mode)
	}
	if o.Strategy != LeastFirst && o.Strategy != Greedy {
		return fmt.Errorf("%w: strategy %d", ErrBadOption, o.Strategy)
	}
	if o.Threshold != ThresholdLogLog && o.Threshold != ThresholdLog {
		return fmt.Errorf("%w: threshold %d", ErrBadOption, o.Threshold)
	}
	return nil
}

// thresholdValue returns the table-1 cutoff mass for n nodes.
func (o Options) thresholdValue(n int) float64 {
	fn := float64(n)
	lg := math.Log2(fn)
	switch o.Threshold {
	case ThresholdLog:
		return fn / math.Max(lg, 1)
	default:
		return fn / math.Max(math.Log2(math.Max(lg, 2)), 1)
	}
}

// NodeStats reports the per-node construction outcome for the ablation
// benches.
type NodeStats struct {
	// CoverSize is m, the number of intermediates used.
	CoverSize int
	// Cutoff is l, the last level encoded in unary.
	Cutoff int
	// Table1Bits and Table2Bits are the exact table sizes.
	Table1Bits, Table2Bits int
	// Deferred is the number of table-2 entries.
	Deferred int
}

type nodeData struct {
	enc   *bitio.Writer
	cover []int    // intermediate labels v_1…v_m
	inter []uint16 // inter[v]: 1-based cover index for destination v; 0 = direct/self
	isNb  []bool   // ModeIB: stored neighbour vector
	rank  []uint16 // ModeIB: rank[v] = sorted-neighbour rank of v = port
	stats NodeStats
}

// Scheme is a built Theorem 1 routing scheme.
type Scheme struct {
	n     int
	opts  Options
	nodes []*nodeData
}

// Build constructs the scheme for g. The graph must have diameter ≤ 2 from
// every node through its neighbours (true for certified random graphs).
func Build(g *graph.Graph, opts Options) (*Scheme, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	n := g.N()
	s := &Scheme{n: n, opts: opts, nodes: make([]*nodeData, n+1)}
	for u := 1; u <= n; u++ {
		nd, err := buildNode(g, u, opts)
		if err != nil {
			return nil, err
		}
		s.nodes[u] = nd
	}
	return s, nil
}

func buildNode(g *graph.Graph, u int, opts Options) (*nodeData, error) {
	n := g.N()
	nb := g.Neighbors(u)
	isNb := make([]bool, n+1)
	for _, v := range nb {
		isNb[v] = true
	}
	var nonNb []int
	for v := 1; v <= n; v++ {
		if v != u && !isNb[v] {
			nonNb = append(nonNb, v)
		}
	}

	cover, level, err := coverLevels(g, u, nb, nonNb, opts.Strategy)
	if err != nil {
		return nil, err
	}

	// Find the unary cutoff l: the first level after which the remaining
	// mass drops below the threshold. Levels are 1-based.
	cut := cutoffLevel(level, nonNb, len(cover), opts.thresholdValue(n))

	nd := &nodeData{
		cover: cover,
		inter: make([]uint16, n+1),
		stats: NodeStats{CoverSize: len(cover), Cutoff: cut},
	}
	for _, w := range nonNb {
		nd.inter[w] = uint16(level[w])
	}
	if opts.Mode == ModeIB {
		nd.isNb = isNb
		nd.rank = make([]uint16, n+1)
		for i, v := range nb {
			nd.rank[v] = uint16(i + 1)
		}
	}

	if err := encodeNode(nd, u, n, nonNb, level, cut, opts); err != nil {
		return nil, err
	}
	return nd, nil
}

// coverLevels picks the intermediates and assigns every non-neighbour its
// 1-based cover level.
func coverLevels(g *graph.Graph, u int, nb, nonNb []int, strat Strategy) (cover []int, level []int, err error) {
	n := g.N()
	level = make([]int, n+1)
	remaining := len(nonNb)
	covered := make([]bool, n+1)

	switch strat {
	case LeastFirst:
		// The paper's rule: v_i is the i-th least neighbour, so the cover
		// list is exactly the shortest neighbour prefix that covers all
		// non-neighbours and never needs to be stored (the decoder rebuilds
		// it from the neighbour list). A level may be empty; its index is
		// still consumed, keeping level[w] = least i with v_i adjacent to w.
		for _, v := range nb {
			if remaining == 0 {
				break
			}
			lvl := len(cover) + 1
			cover = append(cover, v)
			for _, w := range nonNb {
				if !covered[w] && g.HasEdge(v, w) {
					covered[w] = true
					level[w] = lvl
					remaining--
				}
			}
		}
	case Greedy:
		for remaining > 0 {
			best, bestGain := 0, 0
			for _, v := range nb {
				gain := 0
				for _, w := range nonNb {
					if !covered[w] && g.HasEdge(v, w) {
						gain++
					}
				}
				if gain > bestGain {
					best, bestGain = v, gain
				}
			}
			if best == 0 {
				break
			}
			lvl := len(cover) + 1
			cover = append(cover, best)
			for _, w := range nonNb {
				if !covered[w] && g.HasEdge(best, w) {
					covered[w] = true
					level[w] = lvl
					remaining--
				}
			}
		}
	}
	if remaining > 0 {
		for _, w := range nonNb {
			if !covered[w] {
				return nil, nil, fmt.Errorf("%w: node %d from %d", ErrNotCoverable, w, u)
			}
		}
	}
	return cover, level, nil
}

// cutoffLevel returns the last level l whose pre-level remaining mass
// m_{l−1} is still ≥ threshold; levels beyond l defer to table 2.
func cutoffLevel(level []int, nonNb []int, m int, threshold float64) int {
	if m == 0 {
		return 0
	}
	// perLevel[t] = |A_t|.
	perLevel := make([]int, m+1)
	for _, w := range nonNb {
		perLevel[level[w]]++
	}
	remaining := len(nonNb)
	for t := 1; t <= m; t++ {
		if float64(remaining) < threshold {
			return t - 1
		}
		remaining -= perLevel[t]
	}
	return m
}

// encodeNode writes the exact storage representation and fills stats.
func encodeNode(nd *nodeData, u, n int, nonNb []int, level []int, cut int, opts Options) error {
	w := bitio.NewWriter(6 * n)
	// Header: m (needed by the decoder for table-2 field width).
	if err := w.WriteShortSelfDelimiting(uint64(len(nd.cover))); err != nil {
		return err
	}
	if opts.Strategy == Greedy {
		// Explicit cover list (the ablation's extra cost).
		width := bitio.CeilLogPlus1(n)
		for _, v := range nd.cover {
			if err := w.WriteBits(uint64(v), width); err != nil {
				return err
			}
		}
	}
	if opts.Mode == ModeIB {
		// Self-stored neighbour vector, n−1 bits (Theorem 1's "+ n−1").
		for v := 1; v <= n; v++ {
			if v == u {
				continue
			}
			w.WriteBit(nd.isNb[v])
		}
	}
	// Table 1.
	t1Start := w.Len()
	for _, x := range nonNb {
		if level[x] <= cut {
			if err := w.WriteUnary(level[x]); err != nil {
				return err
			}
		} else {
			if err := w.WriteUnary(0); err != nil {
				return err
			}
		}
	}
	nd.stats.Table1Bits = w.Len() - t1Start
	// Table 2.
	t2Start := w.Len()
	width := bitio.CeilLogPlus1(len(nd.cover))
	for _, x := range nonNb {
		if level[x] > cut {
			if err := w.WriteBits(uint64(level[x]), width); err != nil {
				return err
			}
			nd.stats.Deferred++
		}
	}
	nd.stats.Table2Bits = w.Len() - t2Start
	nd.enc = w
	return nil
}

// DecodeNode re-reads a node's encoded routing function and returns, for
// every destination, the 1-based cover index (0 for neighbours/self) plus the
// cover list. neighbors must be u's sorted neighbour list — free knowledge
// under II, self-stored under IB (where it is re-read from the stream). Used
// by the round-trip tests: the in-memory lookup tables must match what the
// bits say.
func DecodeNode(nd *bitio.Writer, u, n int, neighbors []int, opts Options) (inter []uint16, cover []int, err error) {
	if err := opts.validate(); err != nil {
		return nil, nil, err
	}
	r := bitio.ReaderFor(nd)
	m64, err := r.ReadShortSelfDelimiting()
	if err != nil {
		return nil, nil, err
	}
	m := int(m64)
	if opts.Strategy == Greedy {
		width := bitio.CeilLogPlus1(n)
		for i := 0; i < m; i++ {
			v, err := r.ReadBits(width)
			if err != nil {
				return nil, nil, err
			}
			cover = append(cover, int(v))
		}
	}
	isNb := make([]bool, n+1)
	if opts.Mode == ModeIB {
		var stored []int
		for v := 1; v <= n; v++ {
			if v == u {
				continue
			}
			b, err := r.ReadBit()
			if err != nil {
				return nil, nil, err
			}
			if b {
				stored = append(stored, v)
				isNb[v] = true
			}
		}
		neighbors = stored
	} else {
		for _, v := range neighbors {
			isNb[v] = true
		}
	}
	if opts.Strategy == LeastFirst {
		// The cover is the least-neighbour prefix of length m — implicit,
		// rebuilt here rather than read from the stream.
		if m > len(neighbors) {
			return nil, nil, fmt.Errorf("compact: cover size %d exceeds degree %d", m, len(neighbors))
		}
		cover = append(cover, neighbors[:m]...)
	}
	inter = make([]uint16, n+1)
	var deferred []int
	for v := 1; v <= n; v++ {
		if v == u || isNb[v] {
			continue
		}
		t, err := r.ReadUnary()
		if err != nil {
			return nil, nil, err
		}
		if t == 0 {
			deferred = append(deferred, v)
		} else {
			inter[v] = uint16(t)
		}
	}
	width := bitio.CeilLogPlus1(m)
	for _, v := range deferred {
		idx, err := r.ReadBits(width)
		if err != nil {
			return nil, nil, err
		}
		inter[v] = uint16(idx)
	}
	if r.Remaining() != 0 {
		return nil, nil, fmt.Errorf("compact: %d unconsumed bits", r.Remaining())
	}
	return inter, cover, nil
}
