package compact

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"routetab/internal/bitio"
	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/models"
	"routetab/internal/routing"
	"routetab/internal/shortestpath"
)

func randomGraph(t *testing.T, n int, seed int64) *graph.Graph {
	t.Helper()
	g, err := gengraph.GnHalf(n, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func verify(t *testing.T, g *graph.Graph, s *Scheme) *routing.Report {
	t.Helper()
	ports := graph.SortedPorts(g)
	sim, err := routing.NewSim(g, ports, s)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := shortestpath.AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := routing.VerifyAll(sim, dm, routing.DefaultHopLimit(g.N()))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestShortestPathModeII(t *testing.T) {
	g := randomGraph(t, 64, 1)
	s, err := Build(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := verify(t, g, s)
	if !rep.AllDelivered() {
		t.Fatalf("undelivered: %s %v", rep, rep.Failures)
	}
	if rep.MaxStretch != 1 {
		t.Fatalf("stretch = %v, want exactly 1 (shortest path)", rep.MaxStretch)
	}
}

func TestShortestPathModeIB(t *testing.T) {
	g := randomGraph(t, 64, 2)
	s, err := Build(g, Options{Mode: ModeIB, Strategy: LeastFirst, Threshold: ThresholdLogLog})
	if err != nil {
		t.Fatal(err)
	}
	rep := verify(t, g, s)
	if !rep.AllDelivered() || rep.MaxStretch != 1 {
		t.Fatalf("report = %s %v", rep, rep.Failures)
	}
}

func TestAllOptionCombinations(t *testing.T) {
	g := randomGraph(t, 48, 3)
	for _, mode := range []Mode{ModeII, ModeIB} {
		for _, strat := range []Strategy{LeastFirst, Greedy} {
			for _, th := range []Threshold{ThresholdLogLog, ThresholdLog} {
				opts := Options{Mode: mode, Strategy: strat, Threshold: th}
				s, err := Build(g, opts)
				if err != nil {
					t.Fatalf("%+v: %v", opts, err)
				}
				rep := verify(t, g, s)
				if !rep.AllDelivered() || rep.MaxStretch != 1 {
					t.Fatalf("%s: %s %v", s.Name(), rep, rep.Failures)
				}
			}
		}
	}
}

func TestSpaceIsLinearPerNode(t *testing.T) {
	// Theorem 1: |F(u)| ≤ 6n per node (paper's constant; we check ≤ 8n to
	// allow the header and small-n effects, and ≥ a fraction of n so the
	// accounting is not vacuous).
	for _, n := range []int{64, 128, 256} {
		g := randomGraph(t, n, int64(n))
		s, err := Build(g, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		sp, err := routing.MeasureSpace(s, models.IIAlpha)
		if err != nil {
			t.Fatal(err)
		}
		if sp.MaxFunctionBits > 8*n {
			t.Errorf("n=%d: max |F(u)| = %d > 8n", n, sp.MaxFunctionBits)
		}
		if sp.Total > 8*n*n {
			t.Errorf("n=%d: total = %d > 8n²", n, sp.Total)
		}
		if sp.Total < n*n/4 {
			t.Errorf("n=%d: total = %d suspiciously small", n, sp.Total)
		}
	}
}

func TestModeIBChargesNeighbourVector(t *testing.T) {
	g := randomGraph(t, 60, 5)
	ii, err := Build(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ib, err := Build(g, Options{Mode: ModeIB, Strategy: LeastFirst, Threshold: ThresholdLogLog})
	if err != nil {
		t.Fatal(err)
	}
	for u := 1; u <= 60; u++ {
		if ib.FunctionBits(u) != ii.FunctionBits(u)+59 {
			t.Fatalf("node %d: IB bits %d, II bits %d, want +%d", u, ib.FunctionBits(u), ii.FunctionBits(u), 59)
		}
	}
}

func TestLogThresholdSmallerTables(t *testing.T) {
	// The 3n variant (threshold n/log n) defers more nodes to table 2 and
	// must not be larger than the 6n variant by more than noise.
	g := randomGraph(t, 128, 6)
	loglog, err := Build(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	lg, err := Build(g, Options{Mode: ModeII, Strategy: LeastFirst, Threshold: ThresholdLog})
	if err != nil {
		t.Fatal(err)
	}
	spLoglog, err := routing.MeasureSpace(loglog, models.IIAlpha)
	if err != nil {
		t.Fatal(err)
	}
	spLog, err := routing.MeasureSpace(lg, models.IIAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if spLog.Total > spLoglog.Total*3/2 {
		t.Fatalf("n/log n variant (%d) much larger than n/loglog n (%d)", spLog.Total, spLoglog.Total)
	}
}

func TestRequirementsByMode(t *testing.T) {
	g := randomGraph(t, 32, 7)
	ii, err := Build(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !models.IIAlpha.Supports(ii.Requirements()) || models.IBAlpha.Supports(ii.Requirements()) {
		t.Error("ModeII requirements wrong")
	}
	ib, err := Build(g, Options{Mode: ModeIB, Strategy: LeastFirst, Threshold: ThresholdLogLog})
	if err != nil {
		t.Fatal(err)
	}
	if !models.IBAlpha.Supports(ib.Requirements()) || models.IAAlpha.Supports(ib.Requirements()) {
		t.Error("ModeIB requirements wrong")
	}
}

func TestEncodingRoundTrip(t *testing.T) {
	g := randomGraph(t, 50, 8)
	for _, opts := range []Options{
		DefaultOptions(),
		{Mode: ModeIB, Strategy: LeastFirst, Threshold: ThresholdLogLog},
		{Mode: ModeII, Strategy: Greedy, Threshold: ThresholdLog},
		{Mode: ModeIB, Strategy: Greedy, Threshold: ThresholdLog},
	} {
		s, err := Build(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		for u := 1; u <= 50; u++ {
			enc, err := s.Encoded(u)
			if err != nil {
				t.Fatal(err)
			}
			inter, cover, err := DecodeNode(enc, u, 50, g.Neighbors(u), opts)
			if err != nil {
				t.Fatalf("%s node %d: %v", s.Name(), u, err)
			}
			nd := s.nodes[u]
			if len(cover) != len(nd.cover) {
				t.Fatalf("node %d: decoded cover %v, want %v", u, cover, nd.cover)
			}
			for i := range cover {
				if cover[i] != nd.cover[i] {
					t.Fatalf("node %d: decoded cover %v, want %v", u, cover, nd.cover)
				}
			}
			for v := 1; v <= 50; v++ {
				if inter[v] != nd.inter[v] {
					t.Fatalf("node %d dest %d: decoded index %d, want %d", u, v, inter[v], nd.inter[v])
				}
			}
		}
	}
}

func TestTableOneGeometricDecay(t *testing.T) {
	// Claim 1: table 1 stays O(n) because level masses decay geometrically.
	n := 256
	g := randomGraph(t, n, 9)
	s, err := Build(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for u := 1; u <= n; u += 37 {
		st, err := s.Stats(u)
		if err != nil {
			t.Fatal(err)
		}
		if st.Table1Bits > 4*n {
			t.Errorf("node %d: table 1 = %d bits > 4n", u, st.Table1Bits)
		}
		if st.Table2Bits > 2*n {
			t.Errorf("node %d: table 2 = %d bits > 2n", u, st.Table2Bits)
		}
		budget := 6 * math.Log2(float64(n))
		if float64(st.CoverSize) > budget {
			t.Errorf("node %d: cover size %d > (c+3)log n = %.1f", u, st.CoverSize, budget)
		}
	}
	if _, err := s.Stats(0); err == nil {
		t.Error("Stats(0) accepted")
	}
}

func TestGreedyCoverNotLargerThanLeastFirst(t *testing.T) {
	g := randomGraph(t, 128, 10)
	lf, err := Build(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	gr, err := Build(g, Options{Mode: ModeII, Strategy: Greedy, Threshold: ThresholdLogLog})
	if err != nil {
		t.Fatal(err)
	}
	for u := 1; u <= 128; u++ {
		stLF, err := lf.Stats(u)
		if err != nil {
			t.Fatal(err)
		}
		stGR, err := gr.Stats(u)
		if err != nil {
			t.Fatal(err)
		}
		if stGR.CoverSize > stLF.CoverSize {
			t.Fatalf("node %d: greedy cover %d > least-first %d", u, stGR.CoverSize, stLF.CoverSize)
		}
	}
}

func TestUncoverableGraphRejected(t *testing.T) {
	g, err := gengraph.Chain(10) // diameter 9 ≫ 2
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(g, DefaultOptions()); !errors.Is(err, ErrNotCoverable) {
		t.Fatalf("err = %v, want ErrNotCoverable", err)
	}
}

func TestOptionValidation(t *testing.T) {
	g := randomGraph(t, 16, 11)
	bad := []Options{
		{},
		{Mode: ModeII},
		{Mode: ModeII, Strategy: LeastFirst},
		{Mode: 9, Strategy: LeastFirst, Threshold: ThresholdLogLog},
		{Mode: ModeII, Strategy: 9, Threshold: ThresholdLogLog},
		{Mode: ModeII, Strategy: LeastFirst, Threshold: 9},
	}
	for _, opts := range bad {
		if _, err := Build(g, opts); !errors.Is(err, ErrBadOption) {
			t.Errorf("%+v: err = %v, want ErrBadOption", opts, err)
		}
	}
	if _, _, err := DecodeNode(nil, 1, 16, nil, Options{}); !errors.Is(err, ErrBadOption) {
		t.Errorf("DecodeNode bad opts: err = %v", err)
	}
}

func TestRouteErrors(t *testing.T) {
	g := randomGraph(t, 20, 12)
	s, err := Build(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Route(0, nil, routing.Label{ID: 5}, 0, 0); !errors.Is(err, routing.ErrNoRoute) {
		t.Errorf("bad node: %v", err)
	}
	if _, _, err := s.Route(1, nil, routing.Label{ID: 99}, 0, 0); !errors.Is(err, routing.ErrNoRoute) {
		t.Errorf("bad dest: %v", err)
	}
	if s.FunctionBits(0) != 0 {
		t.Error("FunctionBits(0) should be 0")
	}
	if _, err := s.Encoded(99); err == nil {
		t.Error("Encoded(99) accepted")
	}
}

func TestCompleteGraphDegenerate(t *testing.T) {
	// On K_n there are no non-neighbours: tables are empty, routing direct.
	g, err := gengraph.Complete(12)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := verify(t, g, s)
	if !rep.AllDelivered() || rep.MaxStretch != 1 {
		t.Fatalf("report = %s", rep)
	}
	for u := 1; u <= 12; u++ {
		st, err := s.Stats(u)
		if err != nil {
			t.Fatal(err)
		}
		if st.CoverSize != 0 || st.Table1Bits != 0 || st.Table2Bits != 0 {
			t.Fatalf("node %d stats = %+v, want empty", u, st)
		}
	}
}

func TestStarGraph(t *testing.T) {
	// Star has diameter 2: leaves route everything through the centre.
	g, err := gengraph.Star(15)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := verify(t, g, s)
	if !rep.AllDelivered() || rep.MaxStretch != 1 {
		t.Fatalf("report = %s %v", rep, rep.Failures)
	}
}

func TestDecodeNodeRobustToTruncation(t *testing.T) {
	// Every strict prefix of a valid encoding must fail cleanly (error, not
	// panic) or — never — decode to a different table.
	g := randomGraph(t, 30, 13)
	s, err := Build(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	enc, err := s.Encoded(7)
	if err != nil {
		t.Fatal(err)
	}
	full := enc.Len()
	data := enc.Bytes()
	for cut := 0; cut < full; cut += 7 {
		r, err := bitio.NewReader(data, cut)
		if err != nil {
			t.Fatal(err)
		}
		m64, err := r.ReadShortSelfDelimiting()
		if err != nil {
			continue // truncated header: fine
		}
		_ = m64
		// Rebuild a truncated writer and attempt a decode.
		w := bitio.NewWriter(cut)
		r2, err := bitio.NewReader(data, cut)
		if err != nil {
			t.Fatal(err)
		}
		for r2.Remaining() > 0 {
			b, err := r2.ReadBit()
			if err != nil {
				t.Fatal(err)
			}
			w.WriteBit(b)
		}
		if _, _, err := DecodeNode(w, 7, 30, g.Neighbors(7), DefaultOptions()); err == nil && cut < full {
			t.Fatalf("truncation at %d/%d bits decoded without error", cut, full)
		}
	}
}

func TestDecodeNodeRejectsOversizeCover(t *testing.T) {
	// A header claiming a cover larger than the degree must be rejected.
	w := bitio.NewWriter(64)
	if err := w.WriteShortSelfDelimiting(50); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		w.WriteBit(false)
	}
	if _, _, err := DecodeNode(w, 1, 30, []int{2, 3}, DefaultOptions()); err == nil {
		t.Fatal("cover 50 on degree 2 accepted")
	}
}
