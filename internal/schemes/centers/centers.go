// Package centers implements the Theorem 3 routing scheme: stretch ≤ 1.5 on
// Kolmogorov random graphs with O(n log n) total bits, in model II.
//
// Construction (paper, proof of Theorem 3). Fix u* and let B = {u*} ∪ f(u*)
// be u* plus its first (c+3)·log n neighbours: by Lemmas 2 and 3 every node
// is directly adjacent to some node of B (or is in B). Each centre w ∈ B
// stores a full shortest-path routing function — the 6n-bit Theorem 1
// construction. Every other node stores only the ⌈log(n+1)⌉-bit label of an
// adjacent centre, and forwards every non-neighbour destination there.
//
// A route is 1 step (direct neighbour), or ≤ 1 + 2 = 3 steps via the centre
// against a true distance of 2 — stretch 1.5, the only possible value
// strictly between 1 and 2 on diameter-2 graphs (footnote 5).
package centers

import (
	"errors"
	"fmt"

	"routetab/internal/bitio"
	"routetab/internal/graph"
	"routetab/internal/kolmo"
	"routetab/internal/models"
	"routetab/internal/routing"
	"routetab/internal/schemes/compact"
)

// ErrNoAdjacentCenter indicates some node is not adjacent to (nor member of)
// the centre set — the graph violates the Lemma 3 cover property at u*.
var ErrNoAdjacentCenter = errors.New("centers: node has no adjacent centre")

// Scheme is a built Theorem 3 scheme.
type Scheme struct {
	n        int
	center   []int // center[v]: the centre a non-centre v forwards to; 0 for centres
	isCenter []bool
	inner    *compact.Scheme // Theorem 1 functions, used at centres only
	centers  []int
}

var _ routing.Scheme = (*Scheme)(nil)

// Build constructs the scheme around hub node u* (the paper's u; node 1 is
// the conventional choice).
func Build(g *graph.Graph, uStar int) (*Scheme, error) {
	n := g.N()
	if uStar < 1 || uStar > n {
		return nil, fmt.Errorf("centers: u* = %d out of range", uStar)
	}
	// B = {u*} ∪ minimal covering neighbour prefix of u* (Lemma 3 bounds it
	// by (c+3)·log n on random graphs; we take exactly the needed prefix).
	prefix, err := kolmo.CoverPrefix(g, uStar)
	if err != nil {
		return nil, fmt.Errorf("centers: %w", err)
	}
	centerSet := append([]int{uStar}, g.FirstNeighbors(uStar, prefix)...)
	isCenter := make([]bool, n+1)
	for _, b := range centerSet {
		isCenter[b] = true
	}

	inner, err := compact.Build(g, compact.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("centers: %w", err)
	}

	center := make([]int, n+1)
	for v := 1; v <= n; v++ {
		if isCenter[v] {
			continue
		}
		for _, w := range g.Neighbors(v) {
			if isCenter[w] {
				center[v] = w
				break
			}
		}
		if center[v] == 0 {
			return nil, fmt.Errorf("%w: node %d", ErrNoAdjacentCenter, v)
		}
	}
	return &Scheme{
		n:        n,
		center:   center,
		isCenter: isCenter,
		inner:    inner,
		centers:  centerSet,
	}, nil
}

// Name implements routing.Scheme.
func (s *Scheme) Name() string { return "theorem3-centers" }

// N implements routing.Scheme.
func (s *Scheme) N() int { return s.n }

// Centers returns the centre set B (copy).
func (s *Scheme) Centers() []int {
	out := make([]int, len(s.centers))
	copy(out, s.centers)
	return out
}

// Requirements implements routing.Scheme: model II.
func (s *Scheme) Requirements() models.Requirements {
	return models.Requirements{NeighborsKnown: true}
}

// Label implements routing.Scheme: original labels (α-compatible).
func (s *Scheme) Label(u int) routing.Label { return routing.Label{ID: u} }

// LabelBits implements routing.Scheme.
func (s *Scheme) LabelBits(int) int { return 0 }

// FunctionBits implements routing.Scheme: Theorem 1 bits at centres,
// ⌈log(n+1)⌉ + O(1) elsewhere.
func (s *Scheme) FunctionBits(u int) int {
	if u < 1 || u > s.n {
		return 0
	}
	if s.isCenter[u] {
		return s.inner.FunctionBits(u)
	}
	return bitio.CeilLogPlus1(s.n) + 1
}

// Route implements routing.Scheme.
func (s *Scheme) Route(u int, env routing.Env, dest routing.Label, hdr uint64, arrival int) (int, uint64, error) {
	if u < 1 || u > s.n || dest.ID < 1 || dest.ID > s.n {
		return 0, 0, fmt.Errorf("%w: %d→%d", routing.ErrNoRoute, u, dest.ID)
	}
	if port, ok := env.PortOfNeighbor(dest.ID); ok {
		return port, hdr, nil
	}
	if s.isCenter[u] {
		return s.inner.Route(u, env, dest, hdr, arrival)
	}
	port, ok := env.PortOfNeighbor(s.center[u])
	if !ok {
		return 0, 0, fmt.Errorf("%w: centre %d not resolvable at %d", routing.ErrNoRoute, s.center[u], u)
	}
	return port, hdr, nil
}
