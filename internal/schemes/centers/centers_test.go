package centers

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/models"
	"routetab/internal/routing"
	"routetab/internal/shortestpath"
)

func fixture(t *testing.T, n int, seed int64) (*graph.Graph, *Scheme, *routing.Sim, *shortestpath.Distances) {
	t.Helper()
	g, err := gengraph.GnHalf(n, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	ports := graph.SortedPorts(g)
	sim, err := routing.NewSim(g, ports, s)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := shortestpath.AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	return g, s, sim, dm
}

func TestStretchAtMostOnePointFive(t *testing.T) {
	_, _, sim, dm := fixture(t, 64, 1)
	rep, err := routing.VerifyAll(sim, dm, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllDelivered() {
		t.Fatalf("undelivered: %s %v", rep, rep.Failures)
	}
	if rep.MaxStretch > 1.5 {
		t.Fatalf("stretch = %v, want ≤ 1.5 (Theorem 3)", rep.MaxStretch)
	}
	if rep.MaxHops > 3 {
		t.Fatalf("maxHops = %d, want ≤ 3 on a diameter-2 graph", rep.MaxHops)
	}
}

func TestCenterSetIsLogarithmicCover(t *testing.T) {
	g, s, _, _ := fixture(t, 128, 2)
	centers := s.Centers()
	budget := 6*math.Log2(128) + 1
	if float64(len(centers)) > budget {
		t.Fatalf("|B| = %d > (c+3)log n + 1 = %v", len(centers), budget)
	}
	// Cover property: every node is in B or adjacent to a member of B.
	inB := map[int]bool{}
	for _, b := range centers {
		inB[b] = true
	}
	for v := 1; v <= 128; v++ {
		if inB[v] {
			continue
		}
		ok := false
		for _, b := range centers {
			if g.HasEdge(v, b) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("node %d not adjacent to any centre", v)
		}
	}
	// Centers() must be a copy.
	centers[0] = -1
	if s.Centers()[0] == -1 {
		t.Fatal("Centers exposes internal state")
	}
}

func TestSpaceIsNLogN(t *testing.T) {
	for _, n := range []int{64, 128, 256} {
		g, err := gengraph.GnHalf(n, rand.New(rand.NewSource(int64(n))))
		if err != nil {
			t.Fatal(err)
		}
		s, err := Build(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := routing.MeasureSpace(s, models.IIAlpha)
		if err != nil {
			t.Fatal(err)
		}
		// Paper: < (6c+20)·n·log n with c=3 → 38·n·log n; sanity ceiling.
		logn := math.Log2(float64(n))
		if float64(sp.Total) > 38*float64(n)*logn {
			t.Errorf("n=%d: total = %d > 38·n·log n", n, sp.Total)
		}
		// Non-centres store only ⌈log(n+1)⌉+1 bits.
		nonCenterBits := 0
		inB := map[int]bool{}
		for _, b := range s.Centers() {
			inB[b] = true
		}
		for u := 1; u <= n; u++ {
			if !inB[u] {
				nonCenterBits = s.FunctionBits(u)
				break
			}
		}
		wantLeaf := bitsLog(n) + 1
		if nonCenterBits != wantLeaf {
			t.Errorf("n=%d: non-centre bits = %d, want %d", n, nonCenterBits, wantLeaf)
		}
	}
}

func bitsLog(n int) int {
	l := 0
	for v := n; v > 0; v >>= 1 {
		l++
	}
	return l
}

func TestModelII(t *testing.T) {
	_, s, _, _ := fixture(t, 32, 3)
	for _, m := range models.All() {
		_, err := routing.MeasureSpace(s, m)
		if m.NeighborsFree() {
			if err != nil {
				t.Errorf("model %s rejected: %v", m, err)
			}
		} else if err == nil {
			t.Errorf("model %s accepted", m)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	g, err := gengraph.GnHalf(32, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(g, 0); err == nil {
		t.Error("u*=0 accepted")
	}
	if _, err := Build(g, 33); err == nil {
		t.Error("u*=33 accepted")
	}
	chain, err := gengraph.Chain(16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(chain, 1); err == nil {
		t.Error("chain accepted")
	}
}

func TestStarCenterChoice(t *testing.T) {
	// On a star with centre 1, B = {1} and every leaf points at it.
	g, err := gengraph.Star(20)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Centers()) != 1 || s.Centers()[0] != 1 {
		t.Fatalf("Centers = %v, want [1]", s.Centers())
	}
	ports := graph.SortedPorts(g)
	sim, err := routing.NewSim(g, ports, s)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := shortestpath.AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := routing.VerifyAll(sim, dm, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllDelivered() || rep.MaxStretch > 1.5 {
		t.Fatalf("report = %s %v", rep, rep.Failures)
	}
}

func TestRouteErrors(t *testing.T) {
	_, s, _, _ := fixture(t, 32, 5)
	if _, _, err := s.Route(0, nil, routing.Label{ID: 3}, 0, 0); !errors.Is(err, routing.ErrNoRoute) {
		t.Errorf("bad node: %v", err)
	}
	if _, _, err := s.Route(1, nil, routing.Label{ID: 0}, 0, 0); !errors.Is(err, routing.ErrNoRoute) {
		t.Errorf("bad dest: %v", err)
	}
	if s.FunctionBits(0) != 0 || s.LabelBits(5) != 0 {
		t.Error("bits accounting wrong on edge cases")
	}
	if s.Label(7).ID != 7 {
		t.Error("labels must be original")
	}
	if s.Name() == "" || s.N() != 32 {
		t.Error("metadata wrong")
	}
}
