// Package fullinfo implements full-information shortest-path routing: the
// routing function of node u must return, for each destination v, *all*
// edges incident to u on shortest paths from u to v (paper, Section 1).
//
// These schemes allow an alternative shortest path to be taken whenever an
// outgoing link is down — the failover capability internal/netsim exercises.
// Theorem 10 shows they need n³/4 − o(n³) bits on almost all graphs when
// relabelling is not allowed; the storage here is the matching trivial upper
// bound: for every (node, destination) pair a d(u)-bit port set, i.e.
// (n−1)·d(u) bits per node.
package fullinfo

import (
	"errors"
	"fmt"

	"routetab/internal/bitio"
	"routetab/internal/graph"
	"routetab/internal/models"
	"routetab/internal/routing"
	"routetab/internal/shortestpath"
)

// Errors.
var (
	// ErrDisconnected indicates unreachable pairs.
	ErrDisconnected = errors.New("fullinfo: graph is disconnected")
	// ErrAllPortsDown indicates every shortest-path port was excluded.
	ErrAllPortsDown = errors.New("fullinfo: all shortest-path ports excluded")
)

// Scheme stores, per node and destination, the bitmap of shortest-path ports.
type Scheme struct {
	n int
	// sets[u] is a (n+1)-row table; sets[u][v] is the port bitmap for
	// destination v (bit p−1 set ⇔ port p lies on a shortest path).
	sets [][][]uint64
	// degree[u] caches d(u) for the bit accounting.
	degree []int
	words  []int
}

var _ routing.Scheme = (*Scheme)(nil)

// Build constructs the scheme from all-pairs distances.
func Build(g *graph.Graph, ports *graph.Ports, dm *shortestpath.Distances) (*Scheme, error) {
	if err := ports.Validate(g); err != nil {
		return nil, fmt.Errorf("fullinfo: %w", err)
	}
	n := g.N()
	if dm.N() != n {
		return nil, fmt.Errorf("fullinfo: distance matrix for n=%d used with n=%d", dm.N(), n)
	}
	s := &Scheme{
		n:      n,
		sets:   make([][][]uint64, n+1),
		degree: make([]int, n+1),
		words:  make([]int, n+1),
	}
	for u := 1; u <= n; u++ {
		d := g.Degree(u)
		s.degree[u] = d
		words := (d + 63) / 64
		s.words[u] = words
		fe, err := shortestpath.FirstEdges(g, dm, u)
		if err != nil {
			return nil, err
		}
		rows := make([][]uint64, n+1)
		for v := 1; v <= n; v++ {
			if v == u {
				continue
			}
			if dm.Dist(u, v) == shortestpath.Unreachable {
				return nil, fmt.Errorf("%w: no path %d→%d", ErrDisconnected, u, v)
			}
			row := make([]uint64, words)
			for _, w := range fe[v] {
				port, err := ports.PortTo(u, w)
				if err != nil {
					return nil, err
				}
				row[(port-1)/64] |= 1 << uint((port-1)%64)
			}
			rows[v] = row
		}
		s.sets[u] = rows
	}
	return s, nil
}

// Name implements routing.Scheme.
func (s *Scheme) Name() string { return "fullinfo" }

// N implements routing.Scheme.
func (s *Scheme) N() int { return s.n }

// Requirements implements routing.Scheme: none — pure port tables.
func (s *Scheme) Requirements() models.Requirements { return models.Requirements{} }

// Label implements routing.Scheme: original labels (Theorem 10 is model α).
func (s *Scheme) Label(u int) routing.Label { return routing.Label{ID: u} }

// LabelBits implements routing.Scheme.
func (s *Scheme) LabelBits(int) int { return 0 }

// FunctionBits implements routing.Scheme: (n−1)·d(u) bits — one port bitmap
// per destination.
func (s *Scheme) FunctionBits(u int) int {
	if u < 1 || u > s.n {
		return 0
	}
	return (s.n - 1) * s.degree[u]
}

// Ports returns all shortest-path ports at u towards dest, in increasing
// order — the full information the scheme stores.
func (s *Scheme) Ports(u, dest int) ([]int, error) {
	if u < 1 || u > s.n || dest < 1 || dest > s.n || u == dest {
		return nil, fmt.Errorf("fullinfo: bad pair (%d,%d)", u, dest)
	}
	row := s.sets[u][dest]
	var out []int
	for p := 1; p <= s.degree[u]; p++ {
		if row[(p-1)/64]&(1<<uint((p-1)%64)) != 0 {
			out = append(out, p)
		}
	}
	return out, nil
}

// Route implements routing.Scheme: deterministic choice — the least
// shortest-path port.
func (s *Scheme) Route(u int, _ routing.Env, dest routing.Label, hdr uint64, _ int) (int, uint64, error) {
	ps, err := s.Ports(u, dest.ID)
	if err != nil || len(ps) == 0 {
		return 0, 0, fmt.Errorf("%w: %d→%d", routing.ErrNoRoute, u, dest.ID)
	}
	return ps[0], hdr, nil
}

// RouteAvoiding returns the least shortest-path port not in the down set —
// the failover behaviour full-information schemes exist for.
func (s *Scheme) RouteAvoiding(u, dest int, down map[int]bool) (int, error) {
	ps, err := s.Ports(u, dest)
	if err != nil {
		return 0, err
	}
	for _, p := range ps {
		if !down[p] {
			return p, nil
		}
	}
	return 0, fmt.Errorf("%w: %d→%d", ErrAllPortsDown, u, dest)
}

// EncodeNode packs node u's table into the exact bit representation whose
// length FunctionBits reports; used by the Theorem 10 experiments.
func (s *Scheme) EncodeNode(u int) (*bitio.Writer, error) {
	if u < 1 || u > s.n {
		return nil, fmt.Errorf("fullinfo: node %d out of range", u)
	}
	w := bitio.NewWriter((s.n - 1) * s.degree[u])
	for v := 1; v <= s.n; v++ {
		if v == u {
			continue
		}
		row := s.sets[u][v]
		for p := 1; p <= s.degree[u]; p++ {
			w.WriteBit(row[(p-1)/64]&(1<<uint((p-1)%64)) != 0)
		}
	}
	return w, nil
}

// DecodeNode is the inverse of EncodeNode: it reconstructs the per-
// destination port sets of node u given its degree.
func DecodeNode(enc *bitio.Writer, u, n, degree int) ([][]int, error) {
	r := bitio.ReaderFor(enc)
	out := make([][]int, n+1)
	for v := 1; v <= n; v++ {
		if v == u {
			continue
		}
		var ps []int
		for p := 1; p <= degree; p++ {
			b, err := r.ReadBit()
			if err != nil {
				return nil, err
			}
			if b {
				ps = append(ps, p)
			}
		}
		out[v] = ps
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("fullinfo: %d unconsumed bits", r.Remaining())
	}
	return out, nil
}
