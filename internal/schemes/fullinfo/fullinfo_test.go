package fullinfo

import (
	"errors"
	"math/rand"
	"testing"

	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/models"
	"routetab/internal/routing"
	"routetab/internal/shortestpath"
)

func fixture(t *testing.T, g *graph.Graph) (*Scheme, *graph.Ports, *shortestpath.Distances) {
	t.Helper()
	ports := graph.SortedPorts(g)
	dm, err := shortestpath.AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(g, ports, dm)
	if err != nil {
		t.Fatal(err)
	}
	return s, ports, dm
}

func TestShortestPathRouting(t *testing.T) {
	g, err := gengraph.GnHalf(40, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	s, ports, dm := fixture(t, g)
	sim, err := routing.NewSim(g, ports, s)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := routing.VerifyAll(sim, dm, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllDelivered() || rep.MaxStretch != 1 {
		t.Fatalf("report = %s %v", rep, rep.Failures)
	}
}

func TestPortsAreExactlyShortestPathEdges(t *testing.T) {
	// Full information property: the stored set equals every neighbour that
	// decreases the distance.
	g, err := gengraph.Gnp(30, 0.2, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Skip("sparse sample disconnected")
	}
	s, ports, dm := fixture(t, g)
	for u := 1; u <= 30; u++ {
		for v := 1; v <= 30; v++ {
			if u == v {
				continue
			}
			got, err := s.Ports(u, v)
			if err != nil {
				t.Fatal(err)
			}
			want := map[int]bool{}
			for _, w := range g.Neighbors(u) {
				if dm.Dist(w, v) == dm.Dist(u, v)-1 {
					p, err := ports.PortTo(u, w)
					if err != nil {
						t.Fatal(err)
					}
					want[p] = true
				}
			}
			if len(got) != len(want) {
				t.Fatalf("(%d,%d): ports %v, want %d ports", u, v, got, len(want))
			}
			for _, p := range got {
				if !want[p] {
					t.Fatalf("(%d,%d): port %d not on a shortest path", u, v, p)
				}
			}
		}
	}
}

func TestFailoverAvoidsDownPorts(t *testing.T) {
	// Square 1-2-4-3-1: from 1 to 4 both ports work; killing the first must
	// fall back to the second, still on a shortest path.
	g := graph.MustNew(4)
	for _, e := range [][2]int{{1, 2}, {2, 4}, {4, 3}, {3, 1}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	s, ports, _ := fixture(t, g)
	ps, err := s.Ports(1, 4)
	if err != nil || len(ps) != 2 {
		t.Fatalf("Ports(1,4) = %v, %v; want two", ps, err)
	}
	alt, err := s.RouteAvoiding(1, 4, map[int]bool{ps[0]: true})
	if err != nil || alt != ps[1] {
		t.Fatalf("RouteAvoiding = %d, %v; want %d", alt, err, ps[1])
	}
	if _, err := s.RouteAvoiding(1, 4, map[int]bool{ps[0]: true, ps[1]: true}); !errors.Is(err, ErrAllPortsDown) {
		t.Fatalf("all down: err = %v, want ErrAllPortsDown", err)
	}
	_ = ports
}

func TestSpaceIsCubic(t *testing.T) {
	// Σ_u (n−1)·d(u) = (n−1)·2m ≈ n³/2 on G(n,1/2).
	n := 48
	g, err := gengraph.GnHalf(n, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	s, _, _ := fixture(t, g)
	sp, err := routing.MeasureSpace(s, models.IAAlpha)
	if err != nil {
		t.Fatal(err)
	}
	want := (n - 1) * 2 * g.M()
	if sp.Total != want {
		t.Fatalf("total = %d, want (n−1)·2m = %d", sp.Total, want)
	}
	// Theorem 10 floor: ≥ n³/4 − o(n³); our sample should clear n³/5.
	if sp.Total < n*n*n/5 {
		t.Fatalf("total = %d below n³/5 — not Θ(n³)?", sp.Total)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g, err := gengraph.GnHalf(25, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	s, _, _ := fixture(t, g)
	for u := 1; u <= 25; u++ {
		enc, err := s.EncodeNode(u)
		if err != nil {
			t.Fatal(err)
		}
		if enc.Len() != s.FunctionBits(u) {
			t.Fatalf("node %d: encoding %d bits, FunctionBits %d", u, enc.Len(), s.FunctionBits(u))
		}
		sets, err := DecodeNode(enc, u, 25, g.Degree(u))
		if err != nil {
			t.Fatal(err)
		}
		for v := 1; v <= 25; v++ {
			if v == u {
				continue
			}
			want, err := s.Ports(u, v)
			if err != nil {
				t.Fatal(err)
			}
			got := sets[v]
			if len(got) != len(want) {
				t.Fatalf("node %d dest %d: %v vs %v", u, v, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("node %d dest %d: %v vs %v", u, v, got, want)
				}
			}
		}
	}
}

func TestValidation(t *testing.T) {
	g := graph.MustNew(4)
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	ports := graph.SortedPorts(g)
	dm, err := shortestpath.AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(g, ports, dm); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("disconnected: err = %v", err)
	}
	// Size-mismatched distance matrix.
	g2, err := gengraph.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(g2, graph.SortedPorts(g2), dm); err == nil {
		t.Error("mismatched dm accepted")
	}
}

func TestEdgeCases(t *testing.T) {
	g, err := gengraph.Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	s, _, _ := fixture(t, g)
	if _, err := s.Ports(1, 1); err == nil {
		t.Error("Ports(u,u) accepted")
	}
	if _, err := s.Ports(0, 1); err == nil {
		t.Error("Ports(0,·) accepted")
	}
	if _, _, err := s.Route(1, nil, routing.Label{ID: 1}, 0, 0); !errors.Is(err, routing.ErrNoRoute) {
		t.Errorf("self route: err = %v", err)
	}
	if s.FunctionBits(0) != 0 || s.LabelBits(3) != 0 || s.Label(3).ID != 3 {
		t.Error("accounting/labels wrong")
	}
	if _, err := s.EncodeNode(0); err == nil {
		t.Error("EncodeNode(0) accepted")
	}
	for _, m := range models.All() {
		if _, err := routing.MeasureSpace(s, m); err != nil {
			t.Errorf("model %s: %v", m, err)
		}
	}
}
