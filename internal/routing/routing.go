// Package routing defines the core abstractions of the reproduction: routing
// schemes made of per-node local routing functions, the strictly-local
// knowledge environment those functions run in, a message-forwarding
// simulator, and stretch/space measurement.
//
// A routing scheme (paper, Section 1) comprises a local routing function for
// every node: given a destination label (and, here, a small mutable message
// header plus the arrival port — both physically local information), the
// function picks an outgoing port. The space requirement of a scheme is the
// sum over all nodes of the bits needed to store its function, plus — in
// model γ — the bits of its label.
package routing

import (
	"errors"
	"fmt"

	"routetab/internal/bitio"
	"routetab/internal/models"
)

// Routing errors.
var (
	// ErrNoRoute indicates a local function could not produce a port.
	ErrNoRoute = errors.New("routing: no route to destination")
	// ErrNotGranted indicates a local function asked the environment for
	// knowledge its model does not grant (e.g. neighbour labels under IA).
	ErrNotGranted = errors.New("routing: knowledge not granted in this model")
	// ErrHopLimit indicates a message exceeded its hop budget.
	ErrHopLimit = errors.New("routing: hop limit exceeded")
	// ErrBadDestination indicates a destination label no node carries.
	ErrBadDestination = errors.New("routing: unknown destination label")
)

// Label is a node label. ID is the identity component — in every construction
// of this package it equals the node's original label in {1,…,n}; model-γ
// schemes (Theorem 2) append Aux fields, each an original node label, whose
// bits are charged to the space requirement.
type Label struct {
	ID  int
	Aux []int
}

// Equal reports label equality (ID and Aux).
func (l Label) Equal(o Label) bool {
	if l.ID != o.ID || len(l.Aux) != len(o.Aux) {
		return false
	}
	for i := range l.Aux {
		if l.Aux[i] != o.Aux[i] {
			return false
		}
	}
	return true
}

// Bits returns the exact storage cost of the label for an n-node network:
// (1+|Aux|) fields of ⌈log(n+1)⌉ bits each, matching Theorem 2's
// (1+(c+3)log n)·log n accounting.
func (l Label) Bits(n int) int {
	return (1 + len(l.Aux)) * bitio.CeilLogPlus1(n)
}

// Env is the strictly local knowledge available to a node's routing function
// while it decides. Port-indexed queries reflect the minimal knowledge of the
// introduction (a node can tell its ports apart); the neighbour queries are
// only granted in model II (or to schemes that store the neighbour vector
// themselves under IB, which is charged in FunctionBits).
type Env interface {
	// Node returns the executing node's original label.
	Node() int
	// Degree returns the number of ports.
	Degree() int
	// NeighborLabelByPort returns the label behind a port. Granted under II.
	NeighborLabelByPort(port int) (Label, bool)
	// PortOfNeighbor returns the port leading to the neighbour with the
	// given ID. Granted under II.
	PortOfNeighbor(id int) (int, bool)
	// KnownNeighborIDs returns the neighbours' IDs in increasing order.
	// Granted under II.
	KnownNeighborIDs() ([]int, bool)
}

// Scheme is a complete routing scheme for one graph.
type Scheme interface {
	// Name identifies the construction (e.g. "theorem1-compact").
	Name() string
	// N returns the number of nodes the scheme covers.
	N() int
	// Requirements states the model capabilities the scheme needs.
	Requirements() models.Requirements
	// Label returns the label of node u.
	Label(u int) Label
	// Route runs node u's local routing function: given the destination
	// label, the message header, and the arrival port (0 at the origin), it
	// returns the outgoing port and the updated header.
	//
	// Route is never called with the destination equal to u; delivery is
	// detected by the carrier when the message reaches the node whose label
	// matches.
	Route(u int, env Env, dest Label, hdr uint64, arrivalPort int) (port int, newHdr uint64, err error)
	// FunctionBits returns the exact storage size of F(u) in bits, including
	// any self-stored neighbour vector under IB.
	FunctionBits(u int) int
	// LabelBits returns the storage size of u's label (charged under γ).
	LabelBits(u int) int
}

// Space is a scheme's space requirement broken down per the paper's
// accounting.
type Space struct {
	// FunctionBits is Σ_u |F(u)|.
	FunctionBits int
	// LabelBits is Σ_u (label bits); charged only under γ.
	LabelBits int
	// Total is the model-dependent grand total.
	Total int
	// MaxFunctionBits is max_u |F(u)| (the per-node bound the theorems state).
	MaxFunctionBits int
}

// MeasureSpace sums a scheme's storage under the accounting rules of model m.
func MeasureSpace(s Scheme, m models.Model) (Space, error) {
	if !m.Valid() {
		return Space{}, fmt.Errorf("routing: invalid model %v", m)
	}
	if !m.Supports(s.Requirements()) {
		return Space{}, fmt.Errorf("routing: scheme %s not valid in model %s", s.Name(), m)
	}
	var sp Space
	for u := 1; u <= s.N(); u++ {
		fb := s.FunctionBits(u)
		sp.FunctionBits += fb
		if fb > sp.MaxFunctionBits {
			sp.MaxFunctionBits = fb
		}
		sp.LabelBits += s.LabelBits(u)
	}
	sp.Total = sp.FunctionBits
	if m.LabelBitsCharged() {
		sp.Total += sp.LabelBits
	}
	return sp, nil
}
