package routing

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"routetab/internal/gengraph"
	"routetab/internal/graph"
	"routetab/internal/models"
	"routetab/internal/shortestpath"
)

// tableScheme is a test fixture: a literal next-hop port table built from
// BFS trees, valid in every model (requirements empty).
type tableScheme struct {
	n    int
	next [][]int // next[u][v] = port at u towards v
	req  models.Requirements
}

func newTableScheme(t *testing.T, g *graph.Graph, ports *graph.Ports) *tableScheme {
	t.Helper()
	n := g.N()
	s := &tableScheme{n: n, next: make([][]int, n+1)}
	for u := 1; u <= n; u++ {
		res, err := shortestpath.BFS(g, u)
		if err != nil {
			t.Fatal(err)
		}
		s.next[u] = make([]int, n+1)
		for v := 1; v <= n; v++ {
			if v == u || res.Dist[v] == shortestpath.Unreachable {
				continue
			}
			// Walk back from v to the neighbour of u on the path.
			w := v
			for res.Parent[w] != u {
				w = res.Parent[w]
			}
			port, err := ports.PortTo(u, w)
			if err != nil {
				t.Fatal(err)
			}
			s.next[u][v] = port
		}
	}
	return s
}

func (s *tableScheme) Name() string                      { return "test-table" }
func (s *tableScheme) N() int                            { return s.n }
func (s *tableScheme) Requirements() models.Requirements { return s.req }
func (s *tableScheme) Label(u int) Label                 { return Label{ID: u} }
func (s *tableScheme) FunctionBits(u int) int            { return 10 * s.n }
func (s *tableScheme) LabelBits(u int) int               { return 0 }

func (s *tableScheme) Route(u int, _ Env, dest Label, hdr uint64, _ int) (int, uint64, error) {
	port := s.next[u][dest.ID]
	if port == 0 {
		return 0, 0, ErrNoRoute
	}
	return port, hdr, nil
}

// loopScheme always forwards over port 1: never delivers on a cycle.
type loopScheme struct{ n int }

func (s loopScheme) Name() string                      { return "loop" }
func (s loopScheme) N() int                            { return s.n }
func (s loopScheme) Requirements() models.Requirements { return models.Requirements{} }
func (s loopScheme) Label(u int) Label                 { return Label{ID: u} }
func (s loopScheme) FunctionBits(int) int              { return 1 }
func (s loopScheme) LabelBits(int) int                 { return 0 }
func (s loopScheme) Route(int, Env, Label, uint64, int) (int, uint64, error) {
	return 1, 0, nil
}

// nosyScheme reports what the environment granted it.
type nosyScheme struct {
	n       int
	req     models.Requirements
	granted *bool
}

func (s nosyScheme) Name() string                      { return "nosy" }
func (s nosyScheme) N() int                            { return s.n }
func (s nosyScheme) Requirements() models.Requirements { return s.req }
func (s nosyScheme) Label(u int) Label                 { return Label{ID: u} }
func (s nosyScheme) FunctionBits(int) int              { return 1 }
func (s nosyScheme) LabelBits(int) int                 { return 0 }
func (s nosyScheme) Route(u int, e Env, dest Label, hdr uint64, _ int) (int, uint64, error) {
	_, ok := e.KnownNeighborIDs()
	*s.granted = ok
	if port, ok := e.PortOfNeighbor(dest.ID); ok {
		return port, hdr, nil
	}
	return 1, hdr, nil
}

func chainFixture(t *testing.T, n int) (*graph.Graph, *graph.Ports) {
	t.Helper()
	g, err := gengraph.Chain(n)
	if err != nil {
		t.Fatal(err)
	}
	return g, graph.SortedPorts(g)
}

func TestLabelEqualAndBits(t *testing.T) {
	a := Label{ID: 3, Aux: []int{1, 2}}
	b := Label{ID: 3, Aux: []int{1, 2}}
	c := Label{ID: 3, Aux: []int{2, 1}}
	d := Label{ID: 4}
	if !a.Equal(b) || a.Equal(c) || a.Equal(d) || d.Equal(a) {
		t.Fatal("Label.Equal wrong")
	}
	// n=100 → ⌈log 101⌉ = 7 bits per field; 3 fields.
	if got := a.Bits(100); got != 21 {
		t.Fatalf("Bits = %d, want 21", got)
	}
	if got := d.Bits(100); got != 7 {
		t.Fatalf("Bits = %d, want 7", got)
	}
}

func TestSimRouteChain(t *testing.T) {
	g, ports := chainFixture(t, 8)
	scheme := newTableScheme(t, g, ports)
	sim, err := NewSim(g, ports, scheme)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.RouteByNode(1, 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Hops != 7 {
		t.Fatalf("hops = %d, want 7", tr.Hops)
	}
	if err := VerifyTraceIsWalk(g, tr); err != nil {
		t.Fatal(err)
	}
	// Route to self-adjacent and reverse direction.
	tr, err = sim.RouteByNode(5, 2, 100)
	if err != nil || tr.Hops != 3 {
		t.Fatalf("5→2: hops=%d err=%v", tr.Hops, err)
	}
}

func TestSimHopLimit(t *testing.T) {
	g, err := gengraph.Cycle(6)
	if err != nil {
		t.Fatal(err)
	}
	ports := graph.SortedPorts(g)
	sim, err := NewSim(g, ports, loopScheme{n: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Port 1 of node 1 leads to node 2; from 2 port 1 leads back to 1 — the
	// message ping-pongs and must hit the hop limit en route to node 4.
	if _, err := sim.RouteByNode(1, 4, 20); !errors.Is(err, ErrHopLimit) {
		t.Fatalf("err = %v, want ErrHopLimit", err)
	}
}

func TestSimValidation(t *testing.T) {
	g, ports := chainFixture(t, 5)
	scheme := newTableScheme(t, g, ports)
	g2, _ := chainFixture(t, 6)
	if _, err := NewSim(g2, ports, scheme); err == nil {
		t.Error("size mismatch accepted")
	}
	// Stale ports: mutate graph after building them.
	if err := g.AddEdge(1, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSim(g, ports, scheme); err == nil {
		t.Error("stale port table accepted")
	}
}

func TestSimRouteArgumentErrors(t *testing.T) {
	g, ports := chainFixture(t, 5)
	scheme := newTableScheme(t, g, ports)
	sim, err := NewSim(g, ports, scheme)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RouteByNode(0, 3, 10); err == nil {
		t.Error("source 0 accepted")
	}
	if _, err := sim.RouteByNode(1, 9, 10); err == nil {
		t.Error("destination 9 accepted")
	}
	if _, err := sim.Route(1, 999, 10); !errors.Is(err, ErrBadDestination) {
		t.Errorf("unknown label: err = %v, want ErrBadDestination", err)
	}
	// Routing to self is a zero-hop delivery.
	tr, err := sim.RouteByNode(3, 3, 10)
	if err != nil || tr.Hops != 0 {
		t.Errorf("self route: hops=%d err=%v", tr.Hops, err)
	}
}

func TestEnvGrantGating(t *testing.T) {
	g, err := gengraph.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	ports := graph.SortedPorts(g)

	var granted bool
	denied := nosyScheme{n: 5, granted: &granted}
	sim, err := NewSim(g, ports, denied)
	if err != nil {
		t.Fatal(err)
	}
	if sim.GrantsNeighborKnowledge() {
		t.Fatal("empty requirements should not grant II")
	}
	if _, err := sim.RouteByNode(1, 2, 10); err != nil {
		// Without the grant it forwards blindly over port 1 → node 2: fine.
		t.Fatalf("route: %v", err)
	}
	if granted {
		t.Fatal("environment leaked neighbour knowledge to an IA scheme")
	}

	allowed := nosyScheme{n: 5, req: models.Requirements{NeighborsKnown: true}, granted: &granted}
	sim, err = NewSim(g, ports, allowed)
	if err != nil {
		t.Fatal(err)
	}
	if !sim.GrantsNeighborKnowledge() {
		t.Fatal("II requirements should grant knowledge")
	}
	tr, err := sim.RouteByNode(1, 4, 10)
	if err != nil || tr.Hops != 1 {
		t.Fatalf("II route: hops=%d err=%v", tr.Hops, err)
	}
	if !granted {
		t.Fatal("environment denied knowledge to a II scheme")
	}
}

func TestEnvNeighborQueries(t *testing.T) {
	g, ports := chainFixture(t, 4)
	scheme := nosyScheme{n: 4, req: models.Requirements{NeighborsKnown: true}, granted: new(bool)}
	sim, err := NewSim(g, ports, scheme)
	if err != nil {
		t.Fatal(err)
	}
	e := env{sim: sim, node: 2}
	if e.Node() != 2 || e.Degree() != 2 {
		t.Fatalf("env basics: node=%d degree=%d", e.Node(), e.Degree())
	}
	ids, ok := e.KnownNeighborIDs()
	if !ok || len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("KnownNeighborIDs = %v, %t", ids, ok)
	}
	lbl, ok := e.NeighborLabelByPort(1)
	if !ok || lbl.ID != 1 {
		t.Fatalf("NeighborLabelByPort(1) = %v, %t", lbl, ok)
	}
	if _, ok := e.NeighborLabelByPort(5); ok {
		t.Fatal("invalid port granted")
	}
	port, ok := e.PortOfNeighbor(3)
	if !ok || port != 2 {
		t.Fatalf("PortOfNeighbor(3) = %d, %t", port, ok)
	}
	if _, ok := e.PortOfNeighbor(4); ok {
		t.Fatal("non-neighbour resolved to a port")
	}
	if _, ok := e.PortOfNeighbor(99); ok {
		t.Fatal("unknown ID resolved to a port")
	}
}

func TestMeasureSpace(t *testing.T) {
	g, ports := chainFixture(t, 6)
	scheme := newTableScheme(t, g, ports)
	sp, err := MeasureSpace(scheme, models.IAAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if sp.FunctionBits != 6*60 || sp.Total != 360 || sp.MaxFunctionBits != 60 {
		t.Fatalf("space = %+v", sp)
	}
	// γ charges labels; the table scheme has zero-bit labels.
	sp, err = MeasureSpace(scheme, models.IAGamma)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Total != 360 {
		t.Fatalf("γ total = %d", sp.Total)
	}
	// Model support enforcement.
	ii := nosyScheme{n: 6, req: models.Requirements{NeighborsKnown: true}, granted: new(bool)}
	if _, err := MeasureSpace(ii, models.IAAlpha); err == nil {
		t.Error("II scheme measured under IA")
	}
	if _, err := MeasureSpace(scheme, models.Model{}); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestVerifyAllChainStretchOne(t *testing.T) {
	g, ports := chainFixture(t, 7)
	scheme := newTableScheme(t, g, ports)
	sim, err := NewSim(g, ports, scheme)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := shortestpath.AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyAll(sim, dm, 100)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pairs != 42 || !rep.AllDelivered() {
		t.Fatalf("report = %s", rep)
	}
	if rep.MaxStretch != 1 || rep.MeanStretch != 1 {
		t.Fatalf("stretch = %v/%v, want 1/1", rep.MaxStretch, rep.MeanStretch)
	}
	if rep.MaxHops != 6 {
		t.Fatalf("maxHops = %d, want 6", rep.MaxHops)
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
}

func TestVerifySampled(t *testing.T) {
	g, err := gengraph.GnHalf(30, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	ports := graph.SortedPorts(g)
	scheme := newTableScheme(t, g, ports)
	sim, err := NewSim(g, ports, scheme)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := shortestpath.AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := VerifySampled(sim, dm, 200, rand.New(rand.NewSource(2)), 50)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pairs == 0 || !rep.AllDelivered() || rep.MaxStretch != 1 {
		t.Fatalf("report = %s", rep)
	}
}

func TestVerifyRecordsFailures(t *testing.T) {
	g, err := gengraph.Cycle(6)
	if err != nil {
		t.Fatal(err)
	}
	ports := graph.SortedPorts(g)
	sim, err := NewSim(g, ports, loopScheme{n: 6})
	if err != nil {
		t.Fatal(err)
	}
	dm, err := shortestpath.AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyAll(sim, dm, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AllDelivered() {
		t.Fatal("loop scheme delivered everything?")
	}
	if len(rep.Failures) == 0 || !strings.Contains(rep.Failures[0], "hop limit") {
		t.Fatalf("failures = %v", rep.Failures)
	}
	if len(rep.Failures) > 8 {
		t.Fatalf("failure list unbounded: %d", len(rep.Failures))
	}
}

func TestVerifyTraceIsWalkRejects(t *testing.T) {
	g, _ := chainFixture(t, 4)
	bad := &Trace{Source: 1, Dest: 3, Path: []int{1, 3}, Hops: 1}
	if err := VerifyTraceIsWalk(g, bad); err == nil {
		t.Error("non-edge step accepted")
	}
	bad = &Trace{Source: 1, Dest: 2, Path: []int{1, 2}, Hops: 5}
	if err := VerifyTraceIsWalk(g, bad); err == nil {
		t.Error("inconsistent hops accepted")
	}
	bad = &Trace{Source: 2, Dest: 2, Path: []int{1}, Hops: 0}
	if err := VerifyTraceIsWalk(g, bad); err == nil {
		t.Error("wrong start accepted")
	}
	bad = &Trace{Source: 1, Dest: 2, Path: []int{1}, Hops: 0}
	if err := VerifyTraceIsWalk(g, bad); err == nil {
		t.Error("wrong end accepted")
	}
	if err := VerifyTraceIsWalk(g, &Trace{}); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestDefaultHopLimit(t *testing.T) {
	if DefaultHopLimit(2) <= 4 {
		t.Fatal("hop limit too small for tiny graphs")
	}
	// Must dominate 2(c+3)log n for c=3 at n=1024: 2·6·10 = 120.
	if DefaultHopLimit(1024) < 120 {
		t.Fatalf("hop limit %d < 120 at n=1024", DefaultHopLimit(1024))
	}
}

func TestCheckModel(t *testing.T) {
	g, ports := chainFixture(t, 4)
	scheme := newTableScheme(t, g, ports)
	if err := CheckModel(scheme, models.IAAlpha); err != nil {
		t.Fatal(err)
	}
	ii := nosyScheme{n: 4, req: models.Requirements{NeighborsKnown: true}, granted: new(bool)}
	if err := CheckModel(ii, models.IBAlpha); err == nil {
		t.Fatal("II scheme passed under IB")
	}
}

func TestVerifyPairsParallelMatchesSequential(t *testing.T) {
	g, err := gengraph.GnHalf(40, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	ports := graph.SortedPorts(g)
	scheme := newTableScheme(t, g, ports)
	sim, err := NewSim(g, ports, scheme)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := shortestpath.AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	var pairs [][2]int
	for u := 1; u <= 40; u++ {
		for v := 1; v <= 40; v++ {
			if u != v {
				pairs = append(pairs, [2]int{u, v})
			}
		}
	}
	seq, err := VerifyPairs(sim, dm, pairs, 64)
	if err != nil {
		t.Fatal(err)
	}
	par, err := VerifyPairsParallel(sim, dm, pairs, 64)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Pairs != par.Pairs || seq.Delivered != par.Delivered ||
		seq.MaxStretch != par.MaxStretch || seq.MaxHops != par.MaxHops {
		t.Fatalf("sequential %s vs parallel %s", seq, par)
	}
	if diff := seq.MeanStretch - par.MeanStretch; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("mean stretch %v vs %v", seq.MeanStretch, par.MeanStretch)
	}
}

func TestVerifyPairsParallelRecordsFailures(t *testing.T) {
	g, err := gengraph.Cycle(8)
	if err != nil {
		t.Fatal(err)
	}
	ports := graph.SortedPorts(g)
	sim, err := NewSim(g, ports, loopScheme{n: 8})
	if err != nil {
		t.Fatal(err)
	}
	dm, err := shortestpath.AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	var pairs [][2]int
	for u := 1; u <= 8; u++ {
		for v := 1; v <= 8; v++ {
			if u != v {
				pairs = append(pairs, [2]int{u, v})
			}
		}
	}
	rep, err := VerifyPairsParallel(sim, dm, pairs, 6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AllDelivered() {
		t.Fatal("loop scheme delivered everything")
	}
	if len(rep.Failures) == 0 || len(rep.Failures) > 8 {
		t.Fatalf("failures = %d", len(rep.Failures))
	}
}

func TestFuncSchemeAdapter(t *testing.T) {
	g, ports := chainFixture(t, 6)
	table := newTableScheme(t, g, ports)
	fs := &FuncScheme{
		SchemeName: "wrapped-table",
		Nodes:      6,
		RouteFn: func(u int, env Env, dest Label, hdr uint64, arrival int) (int, uint64, error) {
			return table.Route(u, env, dest, hdr, arrival)
		},
		BitsFn: func(u int) int { return 7 },
	}
	if fs.Name() != "wrapped-table" || fs.N() != 6 {
		t.Fatal("metadata wrong")
	}
	sim, err := NewSim(g, ports, fs)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.RouteByNode(1, 6, 10)
	if err != nil || tr.Hops != 5 {
		t.Fatalf("route: %v %v", tr, err)
	}
	sp, err := MeasureSpace(fs, models.IAAlpha)
	if err != nil || sp.Total != 42 {
		t.Fatalf("space = %+v, %v", sp, err)
	}
	// Defaults: no name, no bits, no labels, no route func.
	empty := &FuncScheme{Nodes: 6}
	if empty.Name() != "func-scheme" || empty.FunctionBits(1) != 0 || empty.LabelBits(1) != 0 {
		t.Fatal("defaults wrong")
	}
	if empty.Label(3).ID != 3 {
		t.Fatal("default label wrong")
	}
	if _, _, err := empty.Route(1, nil, Label{ID: 2}, 0, 0); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("nil RouteFn: err = %v", err)
	}
	// Custom labels are charged under γ.
	labelled := &FuncScheme{
		Nodes:   6,
		LabelFn: func(u int) Label { return Label{ID: u, Aux: []int{u}} },
		RouteFn: fs.RouteFn,
	}
	if labelled.LabelBits(2) != (Label{ID: 2, Aux: []int{2}}).Bits(6) {
		t.Fatal("label bits wrong")
	}
}
