package routing

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"routetab/internal/graph"
	"routetab/internal/shortestpath"
)

// Report summarises the behaviour of a scheme over a set of source/
// destination pairs.
type Report struct {
	// Pairs is the number of (src ≠ dst) pairs routed.
	Pairs int
	// Delivered counts pairs whose message reached the destination.
	Delivered int
	// MaxStretch and MeanStretch compare hop counts against true distances.
	MaxStretch, MeanStretch float64
	// MaxHops is the longest route observed.
	MaxHops int
	// Failures lists up to 8 failed pairs with their errors.
	Failures []string
}

// AllDelivered reports whether every routed pair arrived.
func (r *Report) AllDelivered() bool { return r.Delivered == r.Pairs }

// String renders a one-line summary.
func (r *Report) String() string {
	return fmt.Sprintf("report{pairs=%d delivered=%d maxStretch=%.3f meanStretch=%.3f maxHops=%d}",
		r.Pairs, r.Delivered, r.MaxStretch, r.MeanStretch, r.MaxHops)
}

// VerifyAll routes every ordered pair (u, v), u ≠ v, and checks deliveries
// and stretch against the distance matrix. Disconnected pairs are skipped.
func VerifyAll(sim *Sim, dm *shortestpath.Distances, maxHops int) (*Report, error) {
	n := sim.g.N()
	pairs := make([][2]int, 0, n*(n-1))
	for u := 1; u <= n; u++ {
		for v := 1; v <= n; v++ {
			if u != v {
				pairs = append(pairs, [2]int{u, v})
			}
		}
	}
	return VerifyPairs(sim, dm, pairs, maxHops)
}

// VerifySampled routes `count` uniformly sampled ordered pairs.
func VerifySampled(sim *Sim, dm *shortestpath.Distances, count int, rng *rand.Rand, maxHops int) (*Report, error) {
	n := sim.g.N()
	if n < 2 {
		return &Report{}, nil
	}
	pairs := make([][2]int, 0, count)
	for len(pairs) < count {
		u := rng.Intn(n) + 1
		v := rng.Intn(n) + 1
		if u != v {
			pairs = append(pairs, [2]int{u, v})
		}
	}
	return VerifyPairs(sim, dm, pairs, maxHops)
}

// VerifyPairs routes the given ordered pairs and aggregates the report.
func VerifyPairs(sim *Sim, dm *shortestpath.Distances, pairs [][2]int, maxHops int) (*Report, error) {
	if dm.N() != sim.g.N() {
		return nil, fmt.Errorf("routing: distance matrix for n=%d used with n=%d", dm.N(), sim.g.N())
	}
	rep := &Report{}
	var stretchSum float64
	var stretchCnt int
	for _, p := range pairs {
		u, v := p[0], p[1]
		dist := dm.Dist(u, v)
		if dist == shortestpath.Unreachable {
			continue
		}
		rep.Pairs++
		tr, err := sim.RouteByNode(u, v, maxHops)
		if err != nil {
			if len(rep.Failures) < 8 {
				rep.Failures = append(rep.Failures, fmt.Sprintf("%d→%d: %v", u, v, err))
			}
			continue
		}
		rep.Delivered++
		if tr.Hops > rep.MaxHops {
			rep.MaxHops = tr.Hops
		}
		if dist > 0 {
			stretch := float64(tr.Hops) / float64(dist)
			stretchSum += stretch
			stretchCnt++
			if stretch > rep.MaxStretch {
				rep.MaxStretch = stretch
			}
		}
	}
	if stretchCnt > 0 {
		rep.MeanStretch = stretchSum / float64(stretchCnt)
	}
	return rep, nil
}

// VerifyPairsParallel is VerifyPairs with the routing fanned out over up to
// GOMAXPROCS workers. Safe because Sim.Route only reads shared state; used
// by the larger experiment sweeps.
func VerifyPairsParallel(sim *Sim, dm *shortestpath.Distances, pairs [][2]int, maxHops int) (*Report, error) {
	if dm.N() != sim.g.N() {
		return nil, fmt.Errorf("routing: distance matrix for n=%d used with n=%d", dm.N(), sim.g.N())
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers < 1 {
		workers = 1
	}
	type partial struct {
		rep        Report
		stretchSum float64
		stretchCnt int
	}
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := &parts[w]
			for i := w; i < len(pairs); i += workers {
				u, v := pairs[i][0], pairs[i][1]
				dist := dm.Dist(u, v)
				if dist == shortestpath.Unreachable {
					continue
				}
				p.rep.Pairs++
				tr, err := sim.RouteByNode(u, v, maxHops)
				if err != nil {
					if len(p.rep.Failures) < 8 {
						p.rep.Failures = append(p.rep.Failures, fmt.Sprintf("%d→%d: %v", u, v, err))
					}
					continue
				}
				p.rep.Delivered++
				if tr.Hops > p.rep.MaxHops {
					p.rep.MaxHops = tr.Hops
				}
				if dist > 0 {
					stretch := float64(tr.Hops) / float64(dist)
					p.stretchSum += stretch
					p.stretchCnt++
					if stretch > p.rep.MaxStretch {
						p.rep.MaxStretch = stretch
					}
				}
			}
		}()
	}
	wg.Wait()
	rep := &Report{}
	var stretchSum float64
	var stretchCnt int
	for i := range parts {
		p := &parts[i]
		rep.Pairs += p.rep.Pairs
		rep.Delivered += p.rep.Delivered
		if p.rep.MaxHops > rep.MaxHops {
			rep.MaxHops = p.rep.MaxHops
		}
		if p.rep.MaxStretch > rep.MaxStretch {
			rep.MaxStretch = p.rep.MaxStretch
		}
		stretchSum += p.stretchSum
		stretchCnt += p.stretchCnt
		if len(rep.Failures) < 8 {
			rep.Failures = append(rep.Failures, p.rep.Failures...)
		}
	}
	if len(rep.Failures) > 8 {
		rep.Failures = rep.Failures[:8]
	}
	if stretchCnt > 0 {
		rep.MeanStretch = stretchSum / float64(stretchCnt)
	}
	return rep, nil
}

// VerifyTraceIsWalk checks that a trace's path is a genuine walk in g whose
// consecutive nodes are adjacent — a structural sanity check used by tests.
func VerifyTraceIsWalk(g *graph.Graph, tr *Trace) error {
	if len(tr.Path) == 0 {
		return fmt.Errorf("routing: empty trace")
	}
	if tr.Path[0] != tr.Source {
		return fmt.Errorf("routing: trace starts at %d, not source %d", tr.Path[0], tr.Source)
	}
	if tr.Path[len(tr.Path)-1] != tr.Dest {
		return fmt.Errorf("routing: trace ends at %d, not destination %d", tr.Path[len(tr.Path)-1], tr.Dest)
	}
	if tr.Hops != len(tr.Path)-1 {
		return fmt.Errorf("routing: hops %d inconsistent with path length %d", tr.Hops, len(tr.Path))
	}
	for i := 1; i < len(tr.Path); i++ {
		if !g.HasEdge(tr.Path[i-1], tr.Path[i]) {
			return fmt.Errorf("routing: trace step %d: %d-%d is not an edge", i, tr.Path[i-1], tr.Path[i])
		}
	}
	return nil
}
