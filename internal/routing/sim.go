package routing

import (
	"fmt"

	"routetab/internal/graph"
	"routetab/internal/models"
)

// Sim forwards messages through a graph using only a scheme's local routing
// functions and the port tables — the carrier never consults global
// topology. It is the single-message reference simulator; internal/netsim
// runs the concurrent goroutine-per-node variant.
type Sim struct {
	g       *graph.Graph
	ports   *graph.Ports
	scheme  Scheme
	grantII bool
	labels  map[int]int // label ID → node (IDs are original labels, so identity)

	// envs pre-boxes one Env per node at construction: the serving hot path
	// (FirstHop) would otherwise box a fresh env value into the interface on
	// every lookup — the single heap allocation on an otherwise
	// allocation-free next-hop answer.
	envs []Env
}

// NewSim validates the pieces against each other and builds a simulator. The
// environment grants neighbour knowledge exactly when the scheme's
// requirements include it (II, or IB schemes that store the vector).
func NewSim(g *graph.Graph, ports *graph.Ports, scheme Scheme) (*Sim, error) {
	if scheme.N() != g.N() {
		return nil, fmt.Errorf("routing: scheme for n=%d used with n=%d", scheme.N(), g.N())
	}
	if err := ports.Validate(g); err != nil {
		return nil, fmt.Errorf("routing: %w", err)
	}
	req := scheme.Requirements()
	labels := make(map[int]int, g.N())
	for u := 1; u <= g.N(); u++ {
		labels[scheme.Label(u).ID] = u
	}
	if len(labels) != g.N() {
		return nil, fmt.Errorf("routing: scheme %s assigns non-unique label IDs", scheme.Name())
	}
	s := &Sim{
		g:       g,
		ports:   ports,
		scheme:  scheme,
		grantII: req.NeighborsKnown || req.NeighborsOrFreePorts,
		labels:  labels,
	}
	s.envs = make([]Env, g.N()+1)
	for u := 1; u <= g.N(); u++ {
		s.envs[u] = env{sim: s, node: u}
	}
	return s, nil
}

// Scheme returns the scheme under simulation.
func (s *Sim) Scheme() Scheme { return s.scheme }

// env implements Env for one node.
type env struct {
	sim  *Sim
	node int
}

var _ Env = env{}

func (e env) Node() int   { return e.node }
func (e env) Degree() int { return e.sim.ports.Degree(e.node) }

func (e env) NeighborLabelByPort(port int) (Label, bool) {
	if !e.sim.grantII {
		return Label{}, false
	}
	v, err := e.sim.ports.Neighbor(e.node, port)
	if err != nil {
		return Label{}, false
	}
	return e.sim.scheme.Label(v), true
}

func (e env) PortOfNeighbor(id int) (int, bool) {
	if !e.sim.grantII {
		return 0, false
	}
	node, ok := e.sim.labels[id]
	if !ok {
		return 0, false
	}
	// PortToOK, not PortTo: this probe misses on every non-neighbour
	// destination, and the serving hot path cannot afford a discarded
	// error allocation per miss.
	return e.sim.ports.PortToOK(e.node, node)
}

func (e env) KnownNeighborIDs() ([]int, bool) {
	if !e.sim.grantII {
		return nil, false
	}
	// Neighbour IDs are original labels, so the sorted adjacency list is
	// already in increasing ID order.
	nb := e.sim.g.Neighbors(e.node)
	out := make([]int, len(nb))
	for i, v := range nb {
		out[i] = e.sim.scheme.Label(v).ID
	}
	return out, true
}

// Trace records one delivered (or failed) routing attempt.
type Trace struct {
	Source, Dest int
	// Path lists the visited nodes, source first, destination last.
	Path []int
	// Hops is len(Path)−1: the number of edges traversed, counting repeats
	// (Theorem 5's walker legitimately revisits its origin).
	Hops int
}

// Route carries one message from src to the node labelled dst using only
// local decisions, up to maxHops edge traversals.
func (s *Sim) Route(src, dst int, maxHops int) (*Trace, error) {
	if src < 1 || src > s.g.N() {
		return nil, fmt.Errorf("%w: source %d", graph.ErrNodeRange, src)
	}
	destNode, ok := s.labels[dst]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrBadDestination, dst)
	}
	destLabel := s.scheme.Label(destNode)
	tr := &Trace{Source: src, Dest: destNode, Path: []int{src}}
	cur := src
	var hdr uint64
	arrival := 0
	for cur != destNode {
		if tr.Hops >= maxHops {
			return tr, fmt.Errorf("%w: %d hops from %d to %d", ErrHopLimit, tr.Hops, src, destNode)
		}
		port, newHdr, err := s.scheme.Route(cur, s.envs[cur], destLabel, hdr, arrival)
		if err != nil {
			return tr, fmt.Errorf("routing: at node %d: %w", cur, err)
		}
		next, err := s.ports.Neighbor(cur, port)
		if err != nil {
			return tr, fmt.Errorf("routing: at node %d: %w", cur, err)
		}
		// The arrival port at `next` is the port of the reverse edge.
		backPort, err := s.ports.PortTo(next, cur)
		if err != nil {
			return tr, fmt.Errorf("routing: reverse port %d→%d: %w", next, cur, err)
		}
		cur = next
		hdr = newHdr
		arrival = backPort
		tr.Path = append(tr.Path, cur)
		tr.Hops++
	}
	return tr, nil
}

// FirstHop asks src's local routing function for its first forwarding
// decision towards destNode and returns the neighbour behind the chosen
// port. Lower-bound experiments (Theorem 9) use this to read a scheme's
// answers without running the whole route.
func (s *Sim) FirstHop(src, destNode int) (int, error) {
	if src < 1 || src > s.g.N() {
		return 0, fmt.Errorf("%w: source %d", graph.ErrNodeRange, src)
	}
	if destNode < 1 || destNode > s.g.N() {
		return 0, fmt.Errorf("%w: destination %d", graph.ErrNodeRange, destNode)
	}
	destLabel := s.scheme.Label(destNode)
	port, _, err := s.scheme.Route(src, s.envs[src], destLabel, 0, 0)
	if err != nil {
		return 0, err
	}
	return s.ports.Neighbor(src, port)
}

// RouteByNode is Route addressed by destination node instead of label ID
// (identical in this package since IDs are original labels; kept for
// call-site clarity).
func (s *Sim) RouteByNode(src, destNode, maxHops int) (*Trace, error) {
	if destNode < 1 || destNode > s.g.N() {
		return nil, fmt.Errorf("%w: destination %d", graph.ErrNodeRange, destNode)
	}
	return s.Route(src, s.scheme.Label(destNode).ID, maxHops)
}

// GrantsNeighborKnowledge reports whether the simulator's environment grants
// model-II queries to this scheme.
func (s *Sim) GrantsNeighborKnowledge() bool { return s.grantII }

// DefaultHopLimit returns a generous hop budget: diameter-2 constructions
// need ≤ 4 hops, the Theorem 5 walker needs ≤ 2(c+3)log n; 16·(⌈log n⌉+1)+16
// dominates both for every c ≤ 5 used in the experiments.
func DefaultHopLimit(n int) int {
	lg := 0
	for v := n; v > 1; v >>= 1 {
		lg++
	}
	return 16*(lg+1) + 16
}

// CheckModel verifies a scheme/model pairing is coherent before measuring.
func CheckModel(s Scheme, m models.Model) error {
	if !m.Supports(s.Requirements()) {
		return fmt.Errorf("routing: scheme %s not valid in model %s", s.Name(), m)
	}
	return nil
}
