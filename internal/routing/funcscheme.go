package routing

import (
	"fmt"

	"routetab/internal/models"
)

// RouteFunc is a free-standing local routing function, the unit FuncScheme
// assembles.
type RouteFunc func(u int, env Env, dest Label, hdr uint64, arrival int) (port int, newHdr uint64, err error)

// FuncScheme adapts a plain function into a Scheme — the extension point for
// users experimenting with their own local routing functions against the
// library's carriers, verifiers, and space accounting.
type FuncScheme struct {
	// SchemeName identifies the scheme (default "func-scheme").
	SchemeName string
	// Nodes is the node count n.
	Nodes int
	// Needs states the model capabilities the function uses.
	Needs models.Requirements
	// RouteFn is the local routing function (required).
	RouteFn RouteFunc
	// BitsFn returns |F(u)| for accounting; nil charges 0.
	BitsFn func(u int) int
	// LabelFn returns node labels; nil means original labels.
	LabelFn func(u int) Label
}

var _ Scheme = (*FuncScheme)(nil)

// Name implements Scheme.
func (f *FuncScheme) Name() string {
	if f.SchemeName == "" {
		return "func-scheme"
	}
	return f.SchemeName
}

// N implements Scheme.
func (f *FuncScheme) N() int { return f.Nodes }

// Requirements implements Scheme.
func (f *FuncScheme) Requirements() models.Requirements { return f.Needs }

// Label implements Scheme.
func (f *FuncScheme) Label(u int) Label {
	if f.LabelFn != nil {
		return f.LabelFn(u)
	}
	return Label{ID: u}
}

// LabelBits implements Scheme.
func (f *FuncScheme) LabelBits(u int) int {
	if f.LabelFn == nil {
		return 0
	}
	return f.LabelFn(u).Bits(f.Nodes)
}

// FunctionBits implements Scheme.
func (f *FuncScheme) FunctionBits(u int) int {
	if f.BitsFn == nil {
		return 0
	}
	return f.BitsFn(u)
}

// Route implements Scheme.
func (f *FuncScheme) Route(u int, env Env, dest Label, hdr uint64, arrival int) (int, uint64, error) {
	if f.RouteFn == nil {
		return 0, 0, fmt.Errorf("%w: FuncScheme without RouteFn", ErrNoRoute)
	}
	return f.RouteFn(u, env, dest, hdr, arrival)
}
