package kolmo

import (
	"errors"
	"fmt"
	"math"

	"routetab/internal/graph"
	"routetab/internal/stats"
)

// ErrNotApplicable indicates a certification request on a degenerate graph
// (too few nodes for the asymptotic predicates to be meaningful).
var ErrNotApplicable = errors.New("kolmo: graph too small to certify")

// Certificate records which c·log n-randomness consequences a graph
// satisfies. The paper's constructions only need these three structural
// predicates, so a graph passing all of them behaves exactly like a
// Kolmogorov random graph for every theorem in the paper — whether or not
// its true C(E(G)|n) is large.
type Certificate struct {
	N int
	// C is the randomness parameter used (graphs are tested as c·log n-random).
	C float64

	// DeficiencyBits is n(n−1)/2 minus the best compressed size; ≤ C·log n
	// is required for the compressibility predicate.
	DeficiencyBits int
	// DeficiencyOK reports DeficiencyBits ≤ C·log₂ n.
	DeficiencyOK bool

	// MinDegree/MaxDegree are the extreme degrees; DegreeRadius is the
	// Lemma 1 deviation allowance around (n−1)/2.
	MinDegree, MaxDegree int
	DegreeRadius         float64
	DegreeOK             bool

	// DiameterIs2 reports the Lemma 2 predicate (every non-adjacent pair has
	// a common neighbour and the graph is incomplete).
	DiameterIs2 bool

	// MaxCoverPrefix is the largest, over all nodes u, minimal prefix length
	// m of u's sorted neighbour list such that every node is adjacent to u
	// or to one of u's first m neighbours; CoverBudget is the Lemma 3
	// allowance (c+3)·log₂ n.
	MaxCoverPrefix int
	CoverBudget    float64
	CoverOK        bool
}

// OK reports whether every predicate holds.
func (c *Certificate) OK() bool {
	return c.DeficiencyOK && c.DegreeOK && c.DiameterIs2 && c.CoverOK
}

// String renders a one-line summary.
func (c *Certificate) String() string {
	return fmt.Sprintf(
		"certificate{n=%d c=%.1f deficiency=%d(ok=%t) degree=[%d,%d]±%.0f(ok=%t) diam2=%t cover=%d≤%.0f(ok=%t)}",
		c.N, c.C, c.DeficiencyBits, c.DeficiencyOK,
		c.MinDegree, c.MaxDegree, c.DegreeRadius, c.DegreeOK,
		c.DiameterIs2, c.MaxCoverPrefix, c.CoverBudget, c.CoverOK)
}

// Certify checks graph g against the structural consequences of
// c·log n-randomness: compressibility (Definition 3 proxy), Lemma 1 degree
// concentration, Lemma 2 diameter 2, and Lemma 3 cover prefixes.
func Certify(g *graph.Graph, c float64) (*Certificate, error) {
	n := g.N()
	if n < 8 {
		return nil, fmt.Errorf("%w: n = %d", ErrNotApplicable, n)
	}
	cert := &Certificate{N: n, C: c}
	logn := math.Log2(float64(n))

	def, err := Deficiency(g)
	if err != nil {
		return nil, err
	}
	cert.DeficiencyBits = def
	cert.DeficiencyOK = float64(def) <= c*logn

	cert.MinDegree, cert.MaxDegree = DegreeExtremes(g)
	// Lemma 1 with δ(n) = c·log n; the extra +1 log-factor slack mirrors the
	// O(log n) description overhead in the proof.
	cert.DegreeRadius = stats.DegreeDeviationBound(n, c*logn, 1)
	mid := float64(n-1) / 2
	cert.DegreeOK = math.Abs(float64(cert.MinDegree)-mid) <= cert.DegreeRadius &&
		math.Abs(float64(cert.MaxDegree)-mid) <= cert.DegreeRadius

	cert.DiameterIs2 = DiameterIsTwo(g)

	cert.CoverBudget = (c + 3) * logn
	if prefix, coverErr := MaxCoverPrefix(g); coverErr != nil {
		// Some node is at distance > 2 from some u: the Lemma 3 predicate
		// fails outright (the graph is certainly not random).
		cert.MaxCoverPrefix = -1
		cert.CoverOK = false
	} else {
		cert.MaxCoverPrefix = prefix
		cert.CoverOK = float64(prefix) <= cert.CoverBudget
	}

	return cert, nil
}

// DegreeExtremes returns the minimum and maximum degree.
func DegreeExtremes(g *graph.Graph) (minDeg, maxDeg int) {
	n := g.N()
	if n == 0 {
		return 0, 0
	}
	minDeg, maxDeg = n, 0
	for u := 1; u <= n; u++ {
		d := g.Degree(u)
		if d < minDeg {
			minDeg = d
		}
		if d > maxDeg {
			maxDeg = d
		}
	}
	return minDeg, maxDeg
}

// DiameterIsTwo reports the Lemma 2 predicate: g is incomplete and every
// pair of distinct nodes is adjacent or shares a common neighbour. Runs in
// O(n³/64) via bitset intersection.
func DiameterIsTwo(g *graph.Graph) bool {
	n := g.N()
	if n < 3 {
		return false
	}
	incomplete := false
	for u := 1; u <= n; u++ {
		for v := u + 1; v <= n; v++ {
			if g.HasEdge(u, v) {
				continue
			}
			incomplete = true
			if g.FirstCommonNeighbor(u, v) == 0 {
				return false
			}
		}
	}
	return incomplete
}

// CoverPrefix returns the minimal m such that every node w ∉ N(u) ∪ {u} is
// adjacent to one of the first m (least-labelled) neighbours of u — the
// Lemma 3 quantity. Returns an error if no prefix covers (some node is at
// distance > 2 from u).
func CoverPrefix(g *graph.Graph, u int) (int, error) {
	n := g.N()
	nb := g.Neighbors(u)
	isNb := make([]bool, n+1)
	for _, v := range nb {
		isNb[v] = true
	}
	needed := 0
	for w := 1; w <= n; w++ {
		if w == u || isNb[w] {
			continue
		}
		// Least index i with nb[i] adjacent to w.
		found := false
		for i, v := range nb {
			if g.HasEdge(v, w) {
				if i+1 > needed {
					needed = i + 1
				}
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("kolmo: node %d at distance > 2 from %d", w, u)
		}
	}
	return needed, nil
}

// MaxCoverPrefix returns max_u CoverPrefix(g, u).
func MaxCoverPrefix(g *graph.Graph) (int, error) {
	maxPrefix := 0
	for u := 1; u <= g.N(); u++ {
		p, err := CoverPrefix(g, u)
		if err != nil {
			return 0, err
		}
		if p > maxPrefix {
			maxPrefix = p
		}
	}
	return maxPrefix, nil
}
