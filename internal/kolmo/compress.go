// Package kolmo approximates the Kolmogorov-complexity machinery of the
// paper with computable tools.
//
// C(E(G)|n) is uncomputable, but every real compressor upper-bounds it: if a
// compressor shrinks E(G) by more than δ(n) bits, G is certainly not
// δ-random (Definition 3). The package therefore provides
//
//   - compressors with exact bit-cost models (flate, order-0 entropy,
//     run-length) to measure the randomness deficiency of a graph,
//   - direct certification of the structural Lemma 1–3 predicates that
//     c·log n-random graphs provably satisfy, and
//   - the description-method framework (Codec) in which the paper's
//     incompressibility proofs are implemented as executable, round-tripping
//     encoder/decoder pairs (see internal/descmethods).
package kolmo

import (
	"bytes"
	"compress/flate"
	"fmt"
	"math"

	"routetab/internal/bitio"
	"routetab/internal/graph"
)

// Compressor upper-bounds the Kolmogorov complexity of a bit string.
type Compressor interface {
	// Name identifies the compressor in reports.
	Name() string
	// CompressedBits returns the exact size in bits of the compressor's
	// self-contained description of the first nbits bits of data.
	CompressedBits(data []byte, nbits int) (int, error)
}

// FlateCompressor measures DEFLATE (LZ77+Huffman) output size at maximum
// compression. Its byte-level framing adds O(1) overhead, which is irrelevant
// at the Θ(n²)-bit string lengths the experiments use.
type FlateCompressor struct{}

var _ Compressor = FlateCompressor{}

// Name implements Compressor.
func (FlateCompressor) Name() string { return "flate" }

// CompressedBits implements Compressor.
func (FlateCompressor) CompressedBits(data []byte, nbits int) (int, error) {
	if nbits < 0 || nbits > len(data)*8 {
		return 0, fmt.Errorf("kolmo: %d bits in %d bytes", nbits, len(data))
	}
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestCompression)
	if err != nil {
		return 0, fmt.Errorf("kolmo: flate init: %w", err)
	}
	if _, err := w.Write(data[:(nbits+7)/8]); err != nil {
		return 0, fmt.Errorf("kolmo: flate write: %w", err)
	}
	if err := w.Close(); err != nil {
		return 0, fmt.Errorf("kolmo: flate close: %w", err)
	}
	return buf.Len() * 8, nil
}

// Order0Compressor charges the empirical zeroth-order bit entropy
// n·H(p₁) plus a self-delimiting header carrying the one-count. It is the
// information-theoretic cost of the Chernoff-style enumerative codes the
// paper uses in Lemma 1 and Claim 1 (index into the ensemble of strings with
// a given weight).
type Order0Compressor struct{}

var _ Compressor = Order0Compressor{}

// Name implements Compressor.
func (Order0Compressor) Name() string { return "order0" }

// CompressedBits implements Compressor.
func (Order0Compressor) CompressedBits(data []byte, nbits int) (int, error) {
	r, err := bitio.NewReader(data, nbits)
	if err != nil {
		return 0, fmt.Errorf("kolmo: %w", err)
	}
	ones := 0
	for r.Remaining() > 0 {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b {
			ones++
		}
	}
	if nbits == 0 {
		return 0, nil
	}
	p := float64(ones) / float64(nbits)
	h := binaryEntropy(p)
	body := int(math.Ceil(float64(nbits) * h))
	header := bitio.ShortSelfDelimitingLen(uint64(ones))
	return body + header, nil
}

// RLECompressor charges a run-length code: each maximal run of equal bits
// costs one self-delimiting length. Cheap on the paper's structured contrast
// graphs (complete graph, chain), expensive on random strings.
type RLECompressor struct{}

var _ Compressor = RLECompressor{}

// Name implements Compressor.
func (RLECompressor) Name() string { return "rle" }

// CompressedBits implements Compressor.
func (RLECompressor) CompressedBits(data []byte, nbits int) (int, error) {
	r, err := bitio.NewReader(data, nbits)
	if err != nil {
		return 0, fmt.Errorf("kolmo: %w", err)
	}
	if nbits == 0 {
		return 0, nil
	}
	cost := 1 // leading bit value
	prev, err := r.ReadBit()
	if err != nil {
		return 0, err
	}
	run := uint64(1)
	for r.Remaining() > 0 {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == prev {
			run++
			continue
		}
		cost += bitio.ShortSelfDelimitingLen(run)
		prev = b
		run = 1
	}
	cost += bitio.ShortSelfDelimitingLen(run)
	return cost, nil
}

// DefaultCompressors returns the standard ensemble used for certification.
func DefaultCompressors() []Compressor {
	return []Compressor{FlateCompressor{}, Order0Compressor{}, RLECompressor{}}
}

// Deficiency returns the randomness deficiency of G under the best of the
// given compressors: n(n−1)/2 − min_c |c(E(G))|. Positive deficiency of more
// than δ(n) bits certifies that G is *not* δ-random; deficiency ≤ 0 means no
// compressor in the ensemble can exploit any structure (the computable proxy
// for Definition 3's incompressibility).
func Deficiency(g *graph.Graph, compressors ...Compressor) (int, error) {
	if len(compressors) == 0 {
		compressors = DefaultCompressors()
	}
	data := g.EncodeBytes()
	nbits := graph.EdgeCodeLen(g.N())
	best := math.MaxInt
	for _, c := range compressors {
		size, err := c.CompressedBits(data, nbits)
		if err != nil {
			return 0, fmt.Errorf("kolmo: %s: %w", c.Name(), err)
		}
		if size < best {
			best = size
		}
	}
	return nbits - best, nil
}

// binaryEntropy returns H(p) in bits.
func binaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}
